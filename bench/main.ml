(* The benchmark harness: regenerates every table and figure of the paper's
   evaluation (§VIII) on the synthetic substrate, runs the ablations called
   out in DESIGN.md, machine-checks the Theorem 1 reduction, and times the
   core operations with Bechamel.

   Usage:
     bench/main.exe                 run everything
     bench/main.exe <target> ...    run selected targets:
       table1 fig8 fig9 fig10 fig11 ablation-opt ablation-k
       ablation-expandcost theorem1 micro parallel ...
     bench/main.exe parallel --smoke    reduced session count (CI) *)

open Bionav_util
open Bionav_core
module Engine = Bionav_engine.Engine
module Q = Bionav_workload.Queries
module E = Bionav_workload.Experiment
module R = Bionav_workload.Report
module Npc_mes = Bionav_npc.Mes
module Npc_red = Bionav_npc.Reduction

let workload_seed = 11

(* Set by the [--smoke] flag: shrink file-writing benches to CI size. *)
let smoke_mode = ref false

let workload = lazy (Q.build ~seed:workload_seed ())

let runs = lazy (E.run_all (Lazy.force workload))

let say fmt = Printf.printf (fmt ^^ "\n%!")

let paper_note lines =
  List.iter (fun l -> say "  | %s" l) lines;
  say ""

(* ------------------------------------------------------------------ *)
(* Table I and Figs. 8-11                                             *)
(* ------------------------------------------------------------------ *)

let table1 () =
  print_string (R.table1 (Lazy.force workload));
  say "";
  paper_note
    [
      "Paper Table I: 10 PubMed queries, 110-713 results, navigation trees";
      "of a few thousand nodes (3,940 for prothymosin) with heavy duplication";
      "(30,895 attached citations for 313 distinct), targets at MeSH levels";
      "2-6 with L(target) well below LT(target).";
    ]

let fig8 () =
  print_string (R.fig8 (Lazy.force runs));
  say "";
  paper_note
    [
      "Paper Fig. 8: BioNav beats static navigation on every query, often by";
      "an order of magnitude; average improvement 85%, minimum 67% for the";
      "'ice nucleation' query (shallow, low-selectivity target).";
    ]

let fig9 () =
  print_string (R.fig9 (Lazy.force runs));
  say "";
  paper_note
    [
      "Paper Fig. 9: EXPAND counts are close for the two methods (so Fig. 8's";
      "gap comes from selective reveals, not fewer clicks); worst case is";
      "'ice nucleation' with 8 BioNav expands vs 3 static.";
    ]

let fig10 () =
  print_string (R.fig10 (Lazy.force runs));
  say "";
  paper_note
    [
      "Paper Fig. 10: average Heuristic-ReducedOpt time per EXPAND is tens to";
      "a few hundred ms (2008 hardware, Java/Oracle); dominated by the";
      "exponential Opt-EdgeCut on the <= 10-supernode reduced tree.";
    ]

let fig11 () =
  let all = Lazy.force runs in
  let prothymosin =
    List.find
      (fun r -> r.E.query.Q.spec.Q.name = "prothymosin")
      all
  in
  print_string (R.fig11 prothymosin);
  say "";
  paper_note
    [
      "Paper Fig. 11: per-EXPAND times for 'prothymosin' fall from ~240 ms to";
      "~60 ms across 5 expansions (reduced trees of 6-10 partitions): the";
      "MeSH hierarchy narrows as navigation descends.";
    ]

(* ------------------------------------------------------------------ *)
(* Footnote 2: the paged static interface                              *)
(* ------------------------------------------------------------------ *)

let baseline_paged () =
  say "%s" (Table.section "Footnote 2: paged static interface ('more' button)");
  say "";
  say "The paper's footnote 2 argues a paged interface \"does not considerably";
  say "change\" the static cost. Under the oracle protocol we measure the";
  say "opposite: count-ranked pages of 10 find the (high-count) path nodes";
  say "early, so paging helps a target-seeking user substantially - though";
  say "BioNav still wins on most queries, and unlike paging it also prunes by";
  say "selectivity and skips levels. An honest deviation, recorded in";
  say "EXPERIMENTS.md.";
  say "";
  let w = Lazy.force workload in
  let rows =
    List.map
      (fun q ->
        let static = E.run_strategy q Navigation.Static in
        let paged = E.run_strategy q (Navigation.Static_paged { page_size = 10 }) in
        let bionav = E.run_strategy q (Navigation.bionav ()) in
        [
          q.Q.spec.Q.name;
          string_of_int static.Simulate.navigation_cost;
          string_of_int paged.Simulate.navigation_cost;
          string_of_int bionav.Simulate.navigation_cost;
        ])
      w.Q.queries
  in
  print_string
    (Table.render ~header:[ "Query"; "Static"; "Paged(10)"; "BioNav" ]
       [ Table.Left; Right; Right; Right ]
       rows);
  say ""

(* ------------------------------------------------------------------ *)
(* Stability: Fig. 8 across independent corpora                         *)
(* ------------------------------------------------------------------ *)

let stability () =
  say "%s" (Table.section "Stability: average improvement across independent corpora");
  say "";
  say "The paper evaluates one MEDLINE snapshot; the synthetic substrate lets";
  say "us rebuild the whole world from different seeds and check that the";
  say "headline number is not a seed artifact.";
  say "";
  let seeds = [ 11; 23; 37; 51; 73 ] in
  let improvements =
    List.map
      (fun seed ->
        let w = if seed = workload_seed then Lazy.force workload else Q.build ~seed () in
        let rs = E.run_all w in
        let imp = 100. *. E.average_improvement rs in
        say "  seed %3d: average improvement %.0f%%" seed imp;
        imp)
      seeds
  in
  let arr = Array.of_list improvements in
  say "";
  say "  mean %.1f%%  stddev %.1f%%  (paper: 85%%)" (Stats.mean arr) (Stats.stddev arr);
  say ""

(* ------------------------------------------------------------------ *)
(* Ablation A: heuristic vs Opt-EdgeCut on small trees                 *)
(* ------------------------------------------------------------------ *)

let random_comp_tree seed n =
  let rng = Rng.create seed in
  let parent = Array.init n (fun i -> if i = 0 then -1 else Rng.int rng i) in
  let next = ref 0 in
  let results =
    Array.init n (fun _ ->
        let k = 1 + Rng.int rng 9 in
        let l = List.init k (fun j -> !next + j) in
        next := !next + (k / 2) + 1;
        Docset.of_list l)
  in
  let totals = Array.init n (fun i -> Docset.cardinal results.(i) * (2 + Rng.int rng 25)) in
  Comp_tree.make ~parent ~results ~totals ()

(* Objective value of an explicit first cut under the shared cost model. *)
let evaluate_cut st ctx cut_children =
  let full = Cost_model.full_mask ctx in
  let lower = List.map (fun v -> Cost_model.subtree_mask ctx ~mask:full v) cut_children in
  let lowered = List.fold_left ( lor ) 0 lower in
  let upper = full land lnot lowered in
  List.fold_left
    (fun acc m ->
      acc +. 1.
      +. (Cost_model.branch_probability ctx ~parent_mask:full ~branch_mask:m
         *. Opt_edgecut.cost_mask st m))
    (Cost_model.branch_probability ctx ~parent_mask:full ~branch_mask:upper
    *. Opt_edgecut.cost_mask st upper)
    lower

let ablation_opt () =
  say "%s" (Table.section "Ablation A: Heuristic-ReducedOpt vs Opt-EdgeCut (small trees)");
  say "";
  say "The paper could not evaluate Opt-EdgeCut beyond ~10 nodes; here both";
  say "run on random 6-12-node component trees and the heuristic's first-cut";
  say "objective is compared with the optimum (k = 6 forces real reduction).";
  say "";
  let trials = 200 in
  let ratios = ref [] in
  let optimal_hits = ref 0 in
  for seed = 1 to trials do
    let n = 6 + (seed mod 7) in
    let tree = random_comp_tree seed n in
    let ctx = Cost_model.create tree in
    let st = Opt_edgecut.init ctx in
    let opt = Opt_edgecut.solve_mask st (Cost_model.full_mask ctx) in
    let heur = Heuristic.best_cut ~k:6 tree in
    let heur_obj = evaluate_cut st ctx heur.Heuristic.cut_children in
    if heur_obj <= opt.Opt_edgecut.cost +. 1e-9 then incr optimal_hits;
    ratios := (heur_obj /. opt.Opt_edgecut.cost) :: !ratios
  done;
  let rs = Array.of_list !ratios in
  say "  trials:                     %d" trials;
  say "  heuristic found optimum:    %d (%.0f%%)" !optimal_hits
    (100. *. float_of_int !optimal_hits /. float_of_int trials);
  say "  mean cost ratio (heur/opt): %.3f" (Stats.mean rs);
  say "  95th percentile ratio:      %.3f" (Stats.percentile rs 95.);
  say "  worst ratio:                %.3f" (Stats.maximum rs);
  say ""

(* ------------------------------------------------------------------ *)
(* Ablation B: reduction budget k                                      *)
(* ------------------------------------------------------------------ *)

let ablation_k () =
  say "%s" (Table.section "Ablation B: effect of the reduction budget k");
  say "";
  say "The paper fixes k = 10 (the largest reduced tree Opt-EdgeCut handles";
  say "in real time). Sweeping k trades navigation quality for EXPAND time.";
  say "";
  let w = Lazy.force workload in
  let rows =
    List.map
      (fun k ->
        let rs = E.run_all ~k w in
        let improvement = 100. *. E.average_improvement rs in
        let mean_ms =
          Stats.mean (Array.of_list (List.map (fun r -> E.mean_expand_ms r.E.bionav) rs))
        in
        let mean_expands =
          Stats.mean
            (Array.of_list (List.map (fun r -> float_of_int r.E.bionav.Simulate.expands) rs))
        in
        [
          string_of_int k;
          Printf.sprintf "%.0f%%" improvement;
          Printf.sprintf "%.1f" mean_expands;
          Printf.sprintf "%.2f ms" mean_ms;
        ])
      [ 4; 6; 8; 10; 12 ]
  in
  print_string
    (Table.render
       ~header:[ "k"; "avg improvement"; "avg EXPANDs"; "avg time/EXPAND" ]
       [ Table.Right; Right; Right; Right ]
       rows);
  say ""

(* ------------------------------------------------------------------ *)
(* Ablation C: the EXPAND model-cost constant                          *)
(* ------------------------------------------------------------------ *)

let ablation_expandcost () =
  say "%s" (Table.section "Ablation C: EXPAND model cost vs reveal width (paper SIII remark)");
  say "";
  say "\"Increasing this cost leads to more concepts revealed for each";
  say "EXPAND.\" The sweep regenerates that trade-off under the conditional";
  say "cost recursion (default 16, see DESIGN.md).";
  say "";
  let w = Lazy.force workload in
  let rows =
    List.map
      (fun ec ->
        let params = { Probability.default_params with Probability.expand_cost = ec } in
        let rs = E.run_all ~params w in
        let improvement = 100. *. E.average_improvement rs in
        let expands =
          Stats.mean
            (Array.of_list (List.map (fun r -> float_of_int r.E.bionav.Simulate.expands) rs))
        in
        let revealed =
          Stats.mean
            (Array.of_list (List.map (fun r -> float_of_int r.E.bionav.Simulate.revealed) rs))
        in
        let per_expand = if expands > 0. then revealed /. expands else 0. in
        [
          Printf.sprintf "%.0f" ec;
          Printf.sprintf "%.0f%%" improvement;
          Printf.sprintf "%.1f" expands;
          Printf.sprintf "%.1f" per_expand;
        ])
      [ 1.; 2.; 4.; 8.; 16.; 32. ]
  in
  print_string
    (Table.render
       ~header:[ "expand cost"; "avg improvement"; "avg EXPANDs"; "reveals/EXPAND" ]
       [ Table.Right; Right; Right; Right ]
       rows);
  say ""

(* ------------------------------------------------------------------ *)
(* Ablation D: plan reuse across expansions (paper SVI-B remark)       *)
(* ------------------------------------------------------------------ *)

let ablation_reuse () =
  say "%s" (Table.section "Ablation D: Opt-EdgeCut plan reuse (paper SVI-B remark)");
  say "";
  say "\"Once Opt-EdgeCut is executed for T, the costs (and optimal EdgeCuts)";
  say "for all possible I(n)s are also computed and hence there is no need to";
  say "call the algorithm again for subsequent expansions.\" Follow-up";
  say "expansions of an upper component become memo lookups:";
  say "";
  let w = Lazy.force workload in
  let rows =
    List.map
      (fun q ->
        let fresh = E.run_strategy q (Navigation.bionav ()) in
        let reused = E.run_strategy q (Navigation.bionav ~reuse:true ()) in
        [
          q.Q.spec.Q.name;
          Printf.sprintf "%.2f ms" (E.mean_expand_ms fresh);
          Printf.sprintf "%.2f ms" (E.mean_expand_ms reused);
          string_of_int fresh.Simulate.navigation_cost;
          string_of_int reused.Simulate.navigation_cost;
        ])
      w.Q.queries
  in
  print_string
    (Table.render
       ~header:[ "Query"; "fresh ms/EXPAND"; "reuse ms/EXPAND"; "fresh cost"; "reuse cost" ]
       [ Table.Left; Right; Right; Right; Right ]
       rows);
  say "";
  say "Reuse trades per-EXPAND latency for granularity: follow-up cuts of the";
  say "upper subtree stay at the original supernode resolution instead of";
  say "re-partitioning the shrunken component (the paper's Fig. 11 timings";
  say "show their system re-ran the heuristic each time, our default).";
  say ""

(* ------------------------------------------------------------------ *)
(* Theorem 1: executable MES -> TED reduction                          *)
(* ------------------------------------------------------------------ *)

let theorem1 () =
  say "%s" (Table.section "Theorem 1: MAXIMUM EDGE SUBGRAPH <=p TED (executable check)");
  say "";
  say "For random weighted graphs, the optimal MES weight must equal the";
  say "optimal within-component duplicate count of the reduced TED instance";
  say "(star navigation tree, w shared elements per edge of weight w).";
  say "";
  let rng = Rng.create 2009 in
  let checked = ref 0 and ok = ref 0 in
  for n = 2 to 7 do
    for _ = 1 to 20 do
      let g = Npc_mes.random rng ~n_vertices:n ~edge_prob:0.5 ~max_weight:5 in
      for k = 1 to n - 1 do
        incr checked;
        if Npc_red.verify_equivalence g ~k then incr ok
      done
    done
  done;
  say "  instances checked: %d (graphs up to 7 vertices, all k)" !checked;
  say "  equivalences held: %d" !ok;
  if !checked <> !ok then say "  *** MISMATCH: the reduction is broken ***";
  say "";
  (* One worked example. *)
  let g = Npc_mes.make ~n_vertices:4 ~edges:[ (0, 1, 3); (1, 2, 2); (2, 3, 4); (0, 3, 1) ] in
  let subset, w = Npc_mes.solve g ~k:2 in
  let ted, j = Npc_red.reduce g ~k:2 in
  let dup = Option.get (Bionav_npc.Ted.best_duplicates ted ~components:j) in
  say "  example: C4 with weights 3,2,4,1; k = 2";
  say "    MES optimum: vertices {%s}, weight %d"
    (String.concat "," (List.map string_of_int subset))
    w;
  say "    TED optimum with %d components: %d duplicates" j dup;
  say ""

(* ------------------------------------------------------------------ *)
(* Monte-Carlo: the stochastic SIII user                                *)
(* ------------------------------------------------------------------ *)

let montecarlo () =
  say "%s" (Table.section "Monte-Carlo: expected session cost of the stochastic SIII user");
  say "";
  say "The oracle protocol (Fig. 8) fixes a target. Sampling the cost";
  say "model's own probabilistic user (explore ~ P_e, keep expanding ~ P_x)";
  say "measures the expected cost the EdgeCut optimization claims to";
  say "minimize, with no target assumed (200 users per query/strategy).";
  say "";
  let w = Lazy.force workload in
  let rows =
    List.map
      (fun q ->
        let run strategy =
          Stochastic_user.sample ~walks:200 ~seed:5 (fun () -> Engine.start strategy q.Q.nav)
        in
        let st = run Navigation.Static in
        let bn = run (Navigation.bionav ()) in
        [
          q.Q.spec.Q.name;
          Printf.sprintf "%.0f" st.Stochastic_user.mean_cost;
          Printf.sprintf "%.0f" bn.Stochastic_user.mean_cost;
          Printf.sprintf "%.0f%%"
            (100. *. (1. -. (bn.Stochastic_user.mean_cost /. st.Stochastic_user.mean_cost)));
        ])
      w.Q.queries
  in
  print_string
    (Table.render
       ~header:[ "Query"; "static E[cost]"; "bionav E[cost]"; "improvement" ]
       [ Table.Left; Right; Right; Right ]
       rows);
  say ""

(* ------------------------------------------------------------------ *)
(* Ablation F: the P_x thresholds (paper SIV: 50 and 10)                *)
(* ------------------------------------------------------------------ *)

let ablation_thresholds () =
  say "%s" (Table.section "Ablation F: EXPAND-probability thresholds (paper SIV: 50/10)");
  say "";
  let w = Lazy.force workload in
  let rows =
    List.map
      (fun (upper, lower) ->
        let params =
          { Probability.default_params with
            Probability.upper_threshold = upper; lower_threshold = lower }
        in
        let rs = E.run_all ~params w in
        [
          Printf.sprintf "%d / %d" upper lower;
          Printf.sprintf "%.0f%%" (100. *. E.average_improvement rs);
          Printf.sprintf "%.1f"
            (Stats.mean
               (Array.of_list
                  (List.map (fun r -> float_of_int r.E.bionav.Simulate.expands) rs)));
        ])
      [ (25, 5); (50, 10); (100, 20); (200, 40) ]
  in
  print_string
    (Table.render
       ~header:[ "upper/lower"; "avg improvement"; "avg EXPANDs" ]
       [ Table.Left; Right; Right ]
       rows);
  say ""

(* ------------------------------------------------------------------ *)
(* Ablation E: query-concept selectivity realism                       *)
(* ------------------------------------------------------------------ *)

let ablation_selectivity () =
  say "%s" (Table.section "Ablation E: research-line selectivity (organic literature mass)");
  say "";
  say "The workload plants untagged citations about each query's research";
  say "lines (organic_mult per tagged one); organic_mult = 0 makes every line";
  say "concept maximally selective (L ~ LT), concentrating the EXPLORE mass -";
  say "the regime where a naive expected-cost reading of the paper's formula";
  say "degenerates to one-concept reveals (see DESIGN.md). Under the shipped";
  say "conditional recursion the sweep is flat: the algorithm is robust to";
  say "selectivity skew in the corpus.";
  say "";
  let rows =
    List.map
      (fun mult ->
        let config = { Q.default_config with Q.organic_mult = mult } in
        let w =
          if mult = Q.default_config.Q.organic_mult then Lazy.force workload
          else Q.build ~config ~seed:workload_seed ()
        in
        let rs = E.run_all w in
        let expands =
          Stats.mean
            (Array.of_list (List.map (fun r -> float_of_int r.E.bionav.Simulate.expands) rs))
        in
        let revealed =
          Stats.mean
            (Array.of_list (List.map (fun r -> float_of_int r.E.bionav.Simulate.revealed) rs))
        in
        [
          string_of_int mult;
          Printf.sprintf "%.0f%%" (100. *. E.average_improvement rs);
          Printf.sprintf "%.1f" expands;
          Printf.sprintf "%.1f" (if expands > 0. then revealed /. expands else 0.);
        ])
      [ 0; 1; 3; 6 ]
  in
  print_string
    (Table.render
       ~header:[ "organic_mult"; "avg improvement"; "avg EXPANDs"; "reveals/EXPAND" ]
       [ Table.Right; Right; Right; Right ]
       rows);
  say ""

(* ------------------------------------------------------------------ *)
(* Corpus calibration                                                  *)
(* ------------------------------------------------------------------ *)

let calibration () =
  say "%s" (Table.section "Corpus calibration vs paper/MeSH/MEDLINE statistics");
  say "";
  let w = Lazy.force workload in
  let report = Bionav_corpus.Calibration.compute w.Q.medline in
  say "%s" (Format.asprintf "%a" Bionav_corpus.Calibration.pp report);
  say "";
  List.iter
    (fun (name, ok) -> say "  [%s] %s" (if ok then "ok" else "MISS") name)
    (Bionav_corpus.Calibration.within_paper_bands report);
  say ""

(* ------------------------------------------------------------------ *)
(* The exponential wall of Opt-EdgeCut                                 *)
(* ------------------------------------------------------------------ *)

let opt_wall () =
  say "%s" (Table.section "Opt-EdgeCut's exponential wall (paper SVIII-A)");
  say "";
  say "\"The optimal algorithm, Opt-EdgeCut, was not evaluated, because its";
  say "execution times are prohibiting even for relatively small (e.g., 30";
  say "nodes) navigation trees.\" Reproduced: time per solve vs tree size";
  say "(random trees, averaged over 5 instances; cuts counted on one).";
  say "";
  let rows =
    List.map
      (fun n ->
        let times =
          Array.init 5 (fun i ->
              let tree = random_comp_tree ((n * 100) + i) n in
              let (_ : Opt_edgecut.solution), ms =
                Timing.time (fun () -> Opt_edgecut.solve tree)
              in
              ms)
        in
        let cuts = Opt_edgecut.count_valid_cuts (random_comp_tree (n * 100) n) in
        [
          string_of_int n;
          string_of_int cuts;
          Printf.sprintf "%.3f ms" (Stats.mean times);
          Printf.sprintf "%.3f ms" (Stats.maximum times);
        ])
      [ 6; 8; 10; 12; 14; 16 ]
  in
  print_string
    (Table.render
       ~header:[ "nodes"; "valid root cuts"; "mean solve"; "max solve" ]
       [ Table.Right; Right; Right; Right ]
       rows);
  say "";
  say "Each +2 nodes multiplies the work severalfold; at the paper's 30-node";
  say "example the enumeration is out of reach, which is what motivates the";
  say "k-partition reduction (Heuristic-ReducedOpt runs on <= 10 supernodes).";
  say ""

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                          *)
(* ------------------------------------------------------------------ *)

let micro () =
  let open Bechamel in
  say "%s" (Table.section "Bechamel micro-benchmarks (core operations)");
  say "";
  (* Small-scale fixtures so the whole suite stays fast. *)
  let small = Q.build ~config:Q.small_config ~seed:7 () in
  let q = List.hd small.Q.queries in
  let nav = q.Q.nav in
  let active = Active_tree.create nav in
  let comp, _ = Active_tree.comp_tree active 0 in
  let opt_tree = random_comp_tree 3 10 in
  let sets =
    List.init 32 (fun i -> Docset.of_list (List.init 100 (fun j -> (i * 37) + j)))
  in
  let tests =
    [
      (* Table I path: building the navigation tree from the database. *)
      Test.make ~name:"table1/nav-tree-build"
        (Staged.stage (fun () -> ignore (Nav_tree.of_database small.Q.database q.Q.result)));
      (* Fig. 8 path: one full oracle navigation per strategy. *)
      Test.make ~name:"fig8/bionav-navigate"
        (Staged.stage (fun () ->
             ignore
               (Simulate.to_target
                  (Engine.start (Navigation.bionav ()) nav)
                  ~target:q.Q.target_node)));
      Test.make ~name:"fig8/static-navigate"
        (Staged.stage (fun () ->
             ignore
               (Simulate.to_target (Engine.start Navigation.Static nav)
                  ~target:q.Q.target_node)));
      (* Figs. 10/11 path: a single EXPAND's cut computation and its parts. *)
      Test.make ~name:"fig10/heuristic-best-cut"
        (Staged.stage (fun () -> ignore (Heuristic.best_cut comp)));
      Test.make ~name:"fig11/k-partition"
        (Staged.stage (fun () -> ignore (Partition.run_k comp ~k:10)));
      Test.make ~name:"fig11/opt-edgecut-10"
        (Staged.stage (fun () -> ignore (Opt_edgecut.solve opt_tree)));
      Test.make ~name:"core/intset-union-many"
        (Staged.stage (fun () -> ignore (Docset.union_many sets)));
    ]
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None () in
  let rows =
    List.map
      (fun test ->
        let results = Benchmark.all cfg instances test in
        let analysis = Analyze.all ols (List.hd instances) results in
        (* One OLS result per sub-test; these tests have exactly one. *)
        let ns =
          Hashtbl.fold
            (fun _ v acc ->
              match Analyze.OLS.estimates v with Some (e :: _) -> e | _ -> acc)
            analysis 0.
        in
        [ Test.name test; Printf.sprintf "%.3f ms" (ns /. 1e6) ])
      tests
  in
  print_string (Table.render ~header:[ "operation"; "time/run" ] [ Table.Left; Right ] rows);
  say ""

(* ------------------------------------------------------------------ *)
(* Prefetch: plan cache + speculation under repeated Zipf traffic      *)
(* ------------------------------------------------------------------ *)

(* Repeat traffic drawn Zipf-style over the workload queries (rank 0 most
   popular), each session an oracle navigation to the query's target —
   exactly the regime the prefetch subsystem is built for: repeat sessions
   of a query replay identical expand sequences, so memoized plans serve
   them at O(1). Run once with prefetch off and once with it on, compare
   expand latency percentiles and report the plan-cache hit rate. *)
let prefetch_bench () =
  say "%s" (Table.section "Prefetch: plan cache + speculation (repeated Zipf workload)");
  say "";
  let w = Q.build ~config:Q.small_config ~seed:workload_seed () in
  let queries = Array.of_list w.Q.queries in
  let n_sessions = 60 in
  let run_traffic ~prefetch =
    Metrics.reset ();
    let config =
      { Engine.default_config with
        Engine.prefetch =
          (if prefetch then Some Bionav_prefetch.Prefetch.default_config else None) }
    in
    let engine = Engine.create ~config ~database:w.Q.database ~eutils:w.Q.eutils () in
    let zipf = Zipf.create ~exponent:1.0 (Array.length queries) in
    let rng = Rng.create 42 in
    for _ = 1 to n_sessions do
      let q = queries.(Zipf.draw zipf rng) in
      match Engine.search engine q.Q.keyword with
      | Ok (Engine.Session s) ->
          (* Bulk driving runs under [run_locked]: the engine drains the
             session's speculation backlog when the lock is released. *)
          Engine.run_locked s (fun () ->
              ignore (Simulate.to_target (Engine.navigation s) ~target:q.Q.target_node));
          ignore (Engine.close engine (Engine.session_id s) : bool)
      | Ok Engine.No_results | Error _ -> ()
    done;
    let hist = Metrics.histogram "bionav_expand_latency_ms" in
    let speculations, plans_cached =
      match Engine.prefetch engine with
      | None -> (0, 0)
      | Some pf ->
          ( Bionav_prefetch.Speculator.executed (Bionav_prefetch.Prefetch.speculator pf),
            Bionav_prefetch.Plan_cache.length (Bionav_prefetch.Prefetch.plans pf) )
    in
    ( Metrics.percentile hist 50.,
      Metrics.percentile hist 95.,
      Metrics.count hist,
      Engine.plan_cache_hit_rate engine,
      speculations,
      plans_cached )
  in
  let off_p50, off_p95, off_expands, _, _, _ = run_traffic ~prefetch:false in
  let on_p50, on_p95, on_expands, hit_rate, speculations, plans_cached =
    run_traffic ~prefetch:true
  in
  print_string
    (Table.render
       ~header:[ "prefetch"; "EXPANDs"; "p50/EXPAND"; "p95/EXPAND"; "plan hit rate" ]
       [ Table.Left; Right; Right; Right; Right ]
       [
         [ "off"; string_of_int off_expands; Printf.sprintf "%.3f ms" off_p50;
           Printf.sprintf "%.3f ms" off_p95; "-" ];
         [ "on"; string_of_int on_expands; Printf.sprintf "%.3f ms" on_p50;
           Printf.sprintf "%.3f ms" on_p95; Printf.sprintf "%.0f%%" (100. *. hit_rate) ];
       ]);
  say "";
  say "  %d sessions over %d queries (Zipf, exponent 1.0); %d speculative"
    n_sessions (Array.length queries) speculations;
  say "  precomputations ran, %d plans cached." plans_cached;
  let json =
    Printf.sprintf
      "{\n\
      \  \"sessions\": %d,\n\
      \  \"queries\": %d,\n\
      \  \"off\": { \"expands\": %d, \"expand_p50_ms\": %.4f, \"expand_p95_ms\": %.4f },\n\
      \  \"on\": { \"expands\": %d, \"expand_p50_ms\": %.4f, \"expand_p95_ms\": %.4f,\n\
      \          \"plan_cache_hit_rate\": %.4f, \"speculations\": %d, \"plans_cached\": %d }\n\
       }\n"
      n_sessions (Array.length queries) off_expands off_p50 off_p95 on_expands on_p50
      on_p95 hit_rate speculations plans_cached
  in
  let path = "BENCH_prefetch.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  say "  wrote %s" path;
  say "";
  if hit_rate < 0.5 then begin
    say "  *** FAIL: plan-cache hit rate %.0f%% below the 50%% floor ***"
      (100. *. hit_rate);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Chaos: the Zipf workload under a seeded fault plan                   *)
(* ------------------------------------------------------------------ *)

module Resil = Bionav_resilience

(* The prefetch bench's repeat traffic, replayed on a simulated clock
   with a deterministic fault plan injected into the engine's backend
   guard: esearch calls fail 15% of the time, every op can draw a
   20-200 ms virtual latency spike, and EXPANDs run under a 50 ms
   budget, degrading to a static-style cut when a spike ate it. The
   whole run is seeded (workload, Zipf draws, fault plan, backoff
   jitter) and time is virtual, so two runs must produce byte-identical
   event traces. Gates: zero exceptions escaping the engine, trace
   determinism, and a degraded fraction at most 50%. *)
let chaos_bench () =
  say "%s" (Table.section "Chaos: Zipf workload under a seeded fault plan");
  say "";
  let w = Q.build ~config:Q.small_config ~seed:workload_seed () in
  let queries = Array.of_list w.Q.queries in
  let n_sessions = 60 in
  let expand_budget_ms = 50. in
  let chaos_config =
    { Resil.Chaos.seed = 5;
      (* esearch only runs on tree-cache misses (one per distinct query),
         so the per-call failure rate is high enough that some retries
         and possibly give-ups show up in a 60-session run. *)
      error_rate = 0.3;
      delay_rate = 0.25;
      delay_ms = (20., 200.);
      fail_ops = [ "esearch" ] }
  in
  let run_once () =
    Metrics.reset ();
    let clock = Resil.Clock.simulated () in
    let chaos = Resil.Chaos.create chaos_config in
    let config =
      { Engine.default_config with
        Engine.clock;
        expand_budget_ms = Some expand_budget_ms;
        (* A tree cache big enough for the whole workload would absorb
           all but the first esearch per query; capacity 1 keeps the
           guarded backend under fire for most sessions. *)
        cache_capacity = 1;
        prefetch = Some Bionav_prefetch.Prefetch.default_config }
    in
    let engine = Engine.create ~config ~chaos ~database:w.Q.database ~eutils:w.Q.eutils () in
    let zipf = Zipf.create ~exponent:1.0 (Array.length queries) in
    let rng = Rng.create 42 in
    let trace = Buffer.create 4096 in
    let crashes = ref 0 in
    let search_errors = ref 0 in
    let expands = ref 0 in
    let degraded = ref 0 in
    (* Trace lines carry only seeded quantities and virtual timestamps —
       never wall-clock readings — or byte-identity across runs breaks. *)
    let event i qi fmt =
      Printf.ksprintf
        (fun s ->
          Buffer.add_string trace
            (Printf.sprintf "s%02d q=%d %s t=%.3f\n" i qi s (Resil.Clock.now_ms clock)))
        fmt
    in
    for i = 1 to n_sessions do
      let qi = Zipf.draw zipf rng in
      let q = queries.(qi) in
      match Engine.search engine q.Q.keyword with
      | Ok (Engine.Session s) -> (
          (match Simulate.to_target (Engine.navigation s) ~target:q.Q.target_node with
          | _cost ->
              let st = Navigation.stats (Engine.navigation s) in
              let d =
                List.length
                  (List.filter (fun r -> r.Navigation.degraded) st.Navigation.history)
              in
              expands := !expands + st.Navigation.expands;
              degraded := !degraded + d;
              event i qi "ok expands=%d degraded=%d" st.Navigation.expands d
          | exception e ->
              incr crashes;
              event i qi "CRASH %s" (Printexc.to_string e));
          ignore (Engine.close engine (Engine.session_id s) : bool))
      | Ok Engine.No_results -> event i qi "no-results"
      | Error msg ->
          incr search_errors;
          event i qi "unavailable %s" msg
      | exception e ->
          incr crashes;
          event i qi "CRASH %s" (Printexc.to_string e)
    done;
    ( Buffer.contents trace,
      !crashes,
      !search_errors,
      !expands,
      !degraded,
      Resil.Chaos.injected_failures chaos,
      Resil.Chaos.injected_delays chaos,
      Metrics.value (Metrics.counter "bionav_resilience_retries_total"),
      Metrics.value (Metrics.counter "bionav_resilience_giveups_total") )
  in
  let trace1, crashes, search_errors, expands, degraded, failures, delays, retries, giveups =
    run_once ()
  in
  let trace2, _, _, _, _, _, _, _, _ = run_once () in
  let deterministic = String.equal trace1 trace2 in
  let degraded_fraction =
    if expands = 0 then 0. else float_of_int degraded /. float_of_int expands
  in
  print_string
    (Table.render
       ~header:[ "metric"; "value" ]
       [ Table.Left; Right ]
       [
         [ "sessions"; string_of_int n_sessions ];
         [ "crashes (escaped exceptions)"; string_of_int crashes ];
         [ "backend unavailable"; string_of_int search_errors ];
         [ "EXPANDs"; string_of_int expands ];
         [ "degraded EXPANDs"; string_of_int degraded ];
         [ "degraded fraction"; Printf.sprintf "%.1f%%" (100. *. degraded_fraction) ];
         [ "injected failures"; string_of_int failures ];
         [ "injected delays"; string_of_int delays ];
         [ "retries"; string_of_int retries ];
         [ "give-ups"; string_of_int giveups ];
         [ "trace deterministic"; (if deterministic then "yes" else "NO") ];
       ]);
  say "";
  let json =
    Printf.sprintf
      "{\n\
      \  \"sessions\": %d,\n\
      \  \"chaos_seed\": %d,\n\
      \  \"expand_budget_ms\": %.1f,\n\
      \  \"crashes\": %d,\n\
      \  \"backend_unavailable\": %d,\n\
      \  \"expands\": %d,\n\
      \  \"degraded_expands\": %d,\n\
      \  \"degraded_fraction\": %.4f,\n\
      \  \"injected_failures\": %d,\n\
      \  \"injected_delays\": %d,\n\
      \  \"retries\": %d,\n\
      \  \"giveups\": %d,\n\
      \  \"trace_deterministic\": %b\n\
       }\n"
      n_sessions chaos_config.Resil.Chaos.seed expand_budget_ms crashes search_errors
      expands degraded degraded_fraction failures delays retries giveups deterministic
  in
  let path = "BENCH_chaos.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  say "  wrote %s" path;
  say "";
  if crashes > 0 then begin
    say "  *** FAIL: %d exception(s) escaped the engine under fault injection ***" crashes;
    exit 1
  end;
  if not deterministic then begin
    say "  *** FAIL: two runs under the same fault plan diverged ***";
    exit 1
  end;
  if degraded_fraction > 0.5 then begin
    say "  *** FAIL: degraded fraction %.0f%% above the 50%% ceiling ***"
      (100. *. degraded_fraction);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Docset: arena interning + memoized set algebra                       *)
(* ------------------------------------------------------------------ *)

(* Minimal scanner for the flat ["key": number] baseline files this bench
   writes: no JSON dependency, no nesting needed. *)
let scan_json_number text key =
  let needle = Printf.sprintf "\"%s\"" key in
  let rec find i =
    if i + String.length needle > String.length text then None
    else if String.sub text i (String.length needle) = needle then Some (i + String.length needle)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some i ->
      let i = ref i in
      while
        !i < String.length text
        && (match text.[!i] with ':' | ' ' | '\t' | '\n' -> true | _ -> false)
      do
        incr i
      done;
      let start = !i in
      while
        !i < String.length text
        && (match text.[!i] with '0' .. '9' | '.' | '-' | 'e' | '+' -> true | _ -> false)
      do
        incr i
      done;
      if !i = start then None else float_of_string_opt (String.sub text start (!i - start))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* The Zipf serving workload with prefetch off — every EXPAND pays the
   full Heuristic-ReducedOpt cut, whose hot loop is exactly the docset
   cardinality path — plus Intset-vs-Docset micro comparisons on the
   workload's own result sets, and the arena's interning economics.
   Gated against bench/docset_baseline.json when present. *)
let docset_bench () =
  say "%s" (Table.section "Docset: arena interning + memoized set algebra");
  say "";
  let w = Q.build ~config:Q.small_config ~seed:workload_seed () in
  let queries = Array.of_list w.Q.queries in
  let n_sessions = 60 in
  Metrics.reset ();
  let engine = Engine.create ~database:w.Q.database ~eutils:w.Q.eutils () in
  let zipf = Zipf.create ~exponent:1.0 (Array.length queries) in
  let rng = Rng.create 42 in
  for _ = 1 to n_sessions do
    let q = queries.(Zipf.draw zipf rng) in
    match Engine.search engine q.Q.keyword with
    | Ok (Engine.Session s) ->
        ignore (Simulate.to_target (Engine.navigation s) ~target:q.Q.target_node);
        ignore (Engine.close engine (Engine.session_id s) : bool)
    | Ok Engine.No_results | Error _ -> ()
  done;
  let hist = Metrics.histogram "bionav_expand_latency_ms" in
  let expand_p50 = Metrics.percentile hist 50. in
  let expand_p95 = Metrics.percentile hist 95. in
  let expands = Metrics.count hist in
  let st = Engine.docset_stats engine in
  let dedup_rate =
    if st.Docset_arena.intern_requests = 0 then 0.
    else float_of_int st.Docset_arena.dedup_hits /. float_of_int st.Docset_arena.intern_requests
  in
  (* Set-op micro: the same attachment-shaped sets through both layers.
     Docset's second pass over identical operands is the memoized regime
     the navigation stack actually runs in. *)
  let reps = 200 in
  let lists = List.init 32 (fun i -> List.init 100 (fun j -> (i * 37) + j)) in
  let isets = List.map Intset.of_list lists in
  (* One shared arena, as Nav_tree/Comp_tree hold their sets in practice:
     the steady state is memo hits, not first computations. *)
  let micro_arena = Docset_arena.create () in
  let dsets = List.map (Docset.of_list_in micro_arena) lists in
  let dsets_shared = Docset.union_many dsets :: dsets in
  ignore (Docset.union_many dsets_shared : Docset.t);
  let intset_union_ms = Timing.repeat_ms reps (fun () -> ignore (Intset.union_many isets)) in
  let docset_union_ms =
    Timing.repeat_ms reps (fun () -> ignore (Docset.union_many dsets_shared))
  in
  let ipairs = Array.of_list isets and dpairs = Array.of_list dsets in
  let n = Array.length ipairs in
  let intset_inter_ms =
    Timing.repeat_ms reps (fun () ->
        for i = 0 to n - 2 do
          ignore (Intset.inter_cardinal ipairs.(i) ipairs.(i + 1) : int)
        done)
  in
  let docset_inter_ms =
    Timing.repeat_ms reps (fun () ->
        for i = 0 to n - 2 do
          ignore (Docset.inter_cardinal dpairs.(i) dpairs.(i + 1) : int)
        done)
  in
  let speedup a b = if b > 0. then a /. b else 0. in
  print_string
    (Table.render
       ~header:[ "metric"; "value" ]
       [ Table.Left; Right ]
       [
         [ "EXPANDs (prefetch off)"; string_of_int expands ];
         [ "expand p50"; Printf.sprintf "%.3f ms" expand_p50 ];
         [ "expand p95"; Printf.sprintf "%.3f ms" expand_p95 ];
         [ "interned sets (live arenas)"; string_of_int st.Docset_arena.sets ];
         [ "resident bytes"; string_of_int st.Docset_arena.bytes ];
         [ "dense / sparse"; Printf.sprintf "%d / %d" st.Docset_arena.dense st.Docset_arena.sparse ];
         [ "dedup hit rate"; Printf.sprintf "%.0f%%" (100. *. dedup_rate) ];
         [ "op-memo hits"; string_of_int st.Docset_arena.memo_hits ];
         [ "union_many intset"; Printf.sprintf "%.4f ms" intset_union_ms ];
         [ "union_many docset (memoized)"; Printf.sprintf "%.4f ms" docset_union_ms ];
         [ "union_many speedup"; Printf.sprintf "%.1fx" (speedup intset_union_ms docset_union_ms) ];
         [ "inter_cardinal intset"; Printf.sprintf "%.4f ms" intset_inter_ms ];
         [ "inter_cardinal docset (memoized)"; Printf.sprintf "%.4f ms" docset_inter_ms ];
         [ "inter_cardinal speedup";
           Printf.sprintf "%.1fx" (speedup intset_inter_ms docset_inter_ms) ];
       ]);
  say "";
  let json =
    Printf.sprintf
      "{\n\
      \  \"sessions\": %d,\n\
      \  \"expands\": %d,\n\
      \  \"expand_p50_ms\": %.4f,\n\
      \  \"expand_p95_ms\": %.4f,\n\
      \  \"interned_sets\": %d,\n\
      \  \"resident_bytes\": %d,\n\
      \  \"dense_sets\": %d,\n\
      \  \"sparse_sets\": %d,\n\
      \  \"dedup_hit_rate\": %.4f,\n\
      \  \"memo_hits\": %d,\n\
      \  \"union_many_intset_ms\": %.5f,\n\
      \  \"union_many_docset_ms\": %.5f,\n\
      \  \"inter_cardinal_intset_ms\": %.5f,\n\
      \  \"inter_cardinal_docset_ms\": %.5f\n\
       }\n"
      n_sessions expands expand_p50 expand_p95 st.Docset_arena.sets st.Docset_arena.bytes
      st.Docset_arena.dense st.Docset_arena.sparse dedup_rate st.Docset_arena.memo_hits
      intset_union_ms docset_union_ms intset_inter_ms docset_inter_ms
  in
  let path = "BENCH_docset.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  say "  wrote %s" path;
  say "";
  (* Regression gates against the committed baseline. Latency gets a wide
     multiplier (CI machines vary); the structural gates are tight. *)
  let baseline_path = "bench/docset_baseline.json" in
  if Sys.file_exists baseline_path then begin
    let baseline = read_file baseline_path in
    let fail = ref false in
    let gate name ok detail =
      if not ok then begin
        say "  *** FAIL: %s (%s) ***" name detail;
        fail := true
      end
    in
    (match scan_json_number baseline "expand_p50_ms" with
    | Some b when b > 0. ->
        gate "expand p50 regressed"
          (expand_p50 <= 2.5 *. b)
          (Printf.sprintf "%.3f ms vs baseline %.3f ms (2.5x budget)" expand_p50 b)
    | Some _ | None -> ());
    (match scan_json_number baseline "dedup_hit_rate" with
    | Some b ->
        gate "dedup hit rate regressed"
          (dedup_rate >= b -. 0.15)
          (Printf.sprintf "%.2f vs baseline %.2f (-0.15 budget)" dedup_rate b)
    | None -> ());
    (match scan_json_number baseline "memo_hits" with
    | Some b ->
        gate "op memoization stopped firing"
          (float_of_int st.Docset_arena.memo_hits >= 0.5 *. b)
          (Printf.sprintf "%d vs baseline %.0f (0.5x budget)" st.Docset_arena.memo_hits b)
    | None -> ());
    if !fail then exit 1;
    say "  baseline gates passed (%s)" baseline_path
  end
  else say "  no %s — gates skipped" baseline_path

(* ------------------------------------------------------------------ *)
(* Multicore scaling: the Zipf workload across 1/2/4 worker domains    *)
(* ------------------------------------------------------------------ *)

type parallel_run = {
  pr_domains : int;
  pr_expands : int;  (** Summed from each domain's session stats. *)
  pr_metric_count : int;  (** The expand-latency histogram's count. *)
  pr_elapsed_ms : float;
  pr_throughput : float;  (** EXPANDs per second, wall-clock. *)
  pr_worst_p95 : float;  (** Worst per-domain p95 expand latency, ms. *)
  pr_crashes : int;
}

(* The docset bench's Zipf serving workload, replayed across a pool of
   1, 2 and 4 domains against one sharded engine per pool size. The
   session list is pre-drawn once and partitioned round-robin, so every
   pool replays identical work: expand totals must agree run to run (and
   with the committed baseline) to the last record — the "no expand lost
   or duplicated" gate. The histogram-vs-local-count and crash gates
   always apply; the scaling gates (>= 1.8x at 4 domains, monotone
   throughput, per-domain p95 within 2x of single-domain) only where
   there are >= 4 cores to scale onto — the JSON records which regime
   produced it. *)
let parallel_bench () =
  say "%s" (Table.section "Parallel: Zipf workload across 1/2/4 worker domains");
  say "";
  let smoke = !smoke_mode in
  let w = Q.build ~config:Q.small_config ~seed:workload_seed () in
  let queries = Array.of_list w.Q.queries in
  let n_sessions = if smoke then 24 else 96 in
  let shards = 16 in
  let zipf = Zipf.create ~exponent:1.0 (Array.length queries) in
  let rng = Rng.create 42 in
  let draws = Array.init n_sessions (fun _ -> Zipf.draw zipf rng) in
  let run_with pr_domains =
    Metrics.reset ();
    let config = { Engine.default_config with Engine.shards } in
    let engine = Engine.create ~config ~database:w.Q.database ~eutils:w.Q.eutils () in
    (* Warm the tree cache before the clock starts, so the timed region
       measures navigation work, not first-hit tree builds — those land
       on whichever domain wins the race and would skew the scaling
       comparison. *)
    ignore (Engine.warm engine (Array.to_list (Array.map (fun q -> q.Q.keyword) queries)));
    (* Warming records its own EXPAND latencies; the drift gate below
       compares against the histogram's growth from here. *)
    let warm_count = Metrics.count (Metrics.histogram "bionav_expand_latency_ms") in
    let crashes = Atomic.make 0 in
    (* Domain [d] serves sessions d, d+pool, d+2*pool, ... Bulk driving
       (Simulate + stats reads) runs under [Engine.run_locked], the same
       discipline the web handler uses. *)
    let worker d () =
      let expands = ref 0 and lats = ref [] in
      (try
         let i = ref d in
         while !i < n_sessions do
           let q = queries.(draws.(!i)) in
           (match Engine.search engine q.Q.keyword with
           | Ok (Engine.Session s) ->
               Engine.run_locked s (fun () ->
                   let nav = Engine.navigation s in
                   ignore (Simulate.to_target nav ~target:q.Q.target_node);
                   let st = Navigation.stats nav in
                   expands := !expands + st.Navigation.expands;
                   List.iter
                     (fun r -> lats := r.Navigation.elapsed_ms :: !lats)
                     st.Navigation.history);
               ignore (Engine.close engine (Engine.session_id s) : bool)
           | Ok Engine.No_results | Error _ -> ());
           i := !i + pr_domains
         done
       with e ->
         say "  domain %d crashed: %s" d (Printexc.to_string e);
         Atomic.incr crashes);
      (!expands, !lats)
    in
    let t0 = Timing.now_ms () in
    let per_domain =
      if pr_domains = 1 then [| worker 0 () |]
      else
        Array.map Domain.join (Array.init pr_domains (fun d -> Domain.spawn (worker d)))
    in
    let pr_elapsed_ms = Timing.now_ms () -. t0 in
    let pr_expands = Array.fold_left (fun acc (e, _) -> acc + e) 0 per_domain in
    let pr_metric_count =
      Metrics.count (Metrics.histogram "bionav_expand_latency_ms") - warm_count
    in
    let pr_worst_p95 =
      Array.fold_left
        (fun acc (_, lats) ->
          match lats with
          | [] -> acc
          | l -> Float.max acc (Stats.percentile (Array.of_list l) 95.))
        0. per_domain
    in
    let pr_throughput =
      if pr_elapsed_ms > 0. then 1000. *. float_of_int pr_expands /. pr_elapsed_ms else 0.
    in
    { pr_domains; pr_expands; pr_metric_count; pr_elapsed_ms; pr_throughput;
      pr_worst_p95; pr_crashes = Atomic.get crashes }
  in
  let runs = List.map run_with [ 1; 2; 4 ] in
  let r1 = List.nth runs 0 and r2 = List.nth runs 1 and r4 = List.nth runs 2 in
  let cores = Domain.recommended_domain_count () in
  let gates_enforced = cores >= 2 in
  let gates_4 = cores >= 4 in
  let speedup r = if r1.pr_throughput > 0. then r.pr_throughput /. r1.pr_throughput else 0. in
  print_string
    (Table.render
       ~header:[ "domains"; "EXPANDs"; "elapsed"; "EXPANDs/s"; "worst p95"; "speedup" ]
       [ Table.Right; Right; Right; Right; Right; Right ]
       (List.map
          (fun r ->
            [
              string_of_int r.pr_domains;
              string_of_int r.pr_expands;
              Printf.sprintf "%.0f ms" r.pr_elapsed_ms;
              Printf.sprintf "%.0f" r.pr_throughput;
              Printf.sprintf "%.3f ms" r.pr_worst_p95;
              Printf.sprintf "%.2fx" (speedup r);
            ])
          runs));
  say "";
  say "  cores: %d — scaling gates %s" cores
    (if not gates_enforced then "recorded only (need >= 2 cores)"
     else if gates_4 then "fully enforced"
     else "enforced through 2 domains (need >= 4 cores for the rest)");
  if not gates_enforced then
    (* Loud and on stderr: a green exit on a 1-core box proves nothing
       about scaling, and the JSON must not be mistaken for a baseline. *)
    Printf.eprintf
      "\n\
       ================================================================\n\
       WARNING: gates_enforced: false — only %d core(s) available.\n\
       Scaling numbers below are NOT meaningful and the committed\n\
       BENCH_parallel.json baseline will NOT be overwritten (results\n\
       go to BENCH_parallel.local.json instead).\n\
       ================================================================\n\n"
      cores;
  say "";
  let json =
    Printf.sprintf
      "{\n\
      \  \"sessions\": %d,\n\
      \  \"shards\": %d,\n\
      \  \"smoke\": %b,\n\
      \  \"cores\": %d,\n\
      \  \"gates_enforced\": %b,\n\
      \  \"expands\": %d,\n\
      \  \"crashes\": %d,\n\
      \  \"elapsed_ms_1\": %.2f,\n\
      \  \"elapsed_ms_2\": %.2f,\n\
      \  \"elapsed_ms_4\": %.2f,\n\
      \  \"throughput_1\": %.2f,\n\
      \  \"throughput_2\": %.2f,\n\
      \  \"throughput_4\": %.2f,\n\
      \  \"p95_ms_1\": %.4f,\n\
      \  \"p95_ms_2\": %.4f,\n\
      \  \"p95_ms_4\": %.4f,\n\
      \  \"speedup_2x\": %.3f,\n\
      \  \"speedup_4x\": %.3f\n\
       }\n"
      n_sessions shards smoke cores gates_enforced r1.pr_expands
      (r1.pr_crashes + r2.pr_crashes + r4.pr_crashes)
      r1.pr_elapsed_ms r2.pr_elapsed_ms r4.pr_elapsed_ms r1.pr_throughput r2.pr_throughput
      r4.pr_throughput r1.pr_worst_p95 r2.pr_worst_p95 r4.pr_worst_p95 (speedup r2) (speedup r4)
  in
  (* A run that couldn't enforce the gates must not clobber a committed
     baseline produced by one that could. *)
  let path = if gates_enforced then "BENCH_parallel.json" else "BENCH_parallel.local.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  say "  wrote %s" path;
  say "";
  let fail = ref false in
  let gate name ok detail =
    if not ok then begin
      say "  *** FAIL: %s (%s) ***" name detail;
      fail := true
    end
  in
  (* Correctness gates — always enforced, on every run. *)
  List.iter
    (fun r ->
      gate
        (Printf.sprintf "crash at %d domains" r.pr_domains)
        (r.pr_crashes = 0)
        (Printf.sprintf "%d domain(s) died" r.pr_crashes);
      gate
        (Printf.sprintf "metrics drift at %d domains" r.pr_domains)
        (r.pr_metric_count = r.pr_expands)
        (Printf.sprintf "histogram count %d vs %d locally-counted EXPANDs" r.pr_metric_count
           r.pr_expands);
      gate
        (Printf.sprintf "expand record lost/duplicated at %d domains" r.pr_domains)
        (r.pr_expands = r1.pr_expands)
        (Printf.sprintf "%d EXPANDs vs %d serial" r.pr_expands r1.pr_expands))
    runs;
  (* Scaling gates — only meaningful with cores to scale onto. The 0.95
     monotone tolerance absorbs scheduler noise without letting a real
     regression through. Monotone 1->2 already engages on 2-core CI
     runners; the 4-domain gates need 4 cores. *)
  if gates_enforced then
    gate "throughput not monotone 1->2"
      (r2.pr_throughput >= 0.95 *. r1.pr_throughput)
      (Printf.sprintf "%.0f/s vs %.0f/s" r2.pr_throughput r1.pr_throughput);
  if gates_4 then begin
    gate "4-domain speedup below 1.8x"
      (speedup r4 >= 1.8)
      (Printf.sprintf "%.2fx" (speedup r4));
    gate "throughput not monotone 2->4"
      (r4.pr_throughput >= 0.95 *. r2.pr_throughput)
      (Printf.sprintf "%.0f/s vs %.0f/s" r4.pr_throughput r2.pr_throughput);
    if r1.pr_worst_p95 > 0. then
      gate "per-domain p95 blew past 2x single-domain"
        (r4.pr_worst_p95 <= 2. *. r1.pr_worst_p95)
        (Printf.sprintf "%.3f ms vs %.3f ms" r4.pr_worst_p95 r1.pr_worst_p95)
  end;
  (* Structural gate against the committed baseline: the workload is
     deterministic, so the expand total must match exactly. *)
  let baseline_path = "bench/parallel_baseline.json" in
  if Sys.file_exists baseline_path then begin
    let baseline = read_file baseline_path in
    let key = if smoke then "smoke_expands" else "expands" in
    (match scan_json_number baseline key with
    | Some b ->
        gate "expand total diverged from baseline"
          (float_of_int r1.pr_expands = b)
          (Printf.sprintf "%d vs baseline %.0f (%s)" r1.pr_expands b key)
    | None -> say "  no %S in %s — baseline gate skipped" key baseline_path);
    if not !fail then say "  baseline gates passed (%s)" baseline_path
  end
  else say "  no %s — baseline gate skipped" baseline_path;
  if !fail then exit 1

(* ------------------------------------------------------------------ *)
(* Contention: mixed read/write traffic on the epoch-snapshot read path *)
(* ------------------------------------------------------------------ *)

type contention_run = {
  cn_domains : int;
  cn_reads : int;  (** Snapshot walks completed in the mixed phase. *)
  cn_writes : int;  (** EXPAND/BACKTRACK actions in the mixed phase. *)
  cn_elapsed_ms : float;
  cn_ops_s : float;
  cn_acqs : int;  (** Shard-lock acquisitions over the whole pool run. *)
  cn_read_acqs : int;  (** Acquisitions during the pure-read phase. *)
  cn_wait_p50 : float;
  cn_wait_p95 : float;
  cn_hold_p50 : float;
  cn_hold_p95 : float;
  cn_crashes : int;
  cn_inconsistent : int;  (** Snapshots that failed a structural check. *)
}

(* Walk a published snapshot from the root and verify it is one
   consistent epoch: the children edges reach exactly the captured node
   set, the visible components partition the navigation tree's nodes,
   and each node's cached cardinal matches its result set. A torn mix
   of epochs (a node listing a child the other epoch hid, a stale
   member array) trips one of these. *)
let consistent_snapshot snap =
  try
    let nav_size = Nav_tree.size (Bionav_search.Nav_snapshot.nav snap) in
    let seen = ref 0 and members = ref 0 and ok = ref true in
    let rec go id =
      incr seen;
      let v = Bionav_search.Nav_snapshot.get snap id in
      members := !members + Array.length v.Bionav_search.Nav_snapshot.members;
      if
        v.Bionav_search.Nav_snapshot.distinct
        <> Docset.cardinal v.Bionav_search.Nav_snapshot.results
      then ok := false;
      List.iter go v.Bionav_search.Nav_snapshot.children
    in
    go (Bionav_search.Nav_snapshot.root snap);
    !ok
    && !seen = Bionav_search.Nav_snapshot.node_count snap
    && !members = nav_size
  with _ -> false

(* The tentpole's proof bench: one sharded engine, a pool of sessions
   under mixed Zipf traffic — 70% lock-free snapshot walks, 20%
   EXPANDs, 10% BACKTRACKs, with a /metrics-style scrape every 64th op
   — replayed across 1/2/4 domains, then a pure-read phase. Because
   reads never touch the shard mutex, the pure-read phase must add
   {e zero} lock acquisitions (enforced on every box, any core count);
   with >= 2 cores, mixed-phase throughput must also be monotone in the
   pool size. Lock wait/hold histograms land in the JSON so a regression
   that re-locks the read path is visible even before it costs. *)
let contention_bench () =
  say "%s" (Table.section "Contention: mixed read/write Zipf traffic, 1/2/4 domains");
  say "";
  let smoke = !smoke_mode in
  let w = Q.build ~config:Q.small_config ~seed:workload_seed () in
  let queries = Array.of_list w.Q.queries in
  let n_sessions = 16 in
  let shards = 8 in
  let mixed_ops = if smoke then 1200 else 4800 in
  let read_ops = if smoke then 400 else 1600 in
  let run_with cn_domains =
    Metrics.reset ();
    let config = { Engine.default_config with Engine.shards } in
    let engine = Engine.create ~config ~database:w.Q.database ~eutils:w.Q.eutils () in
    let zipf = Zipf.create ~exponent:1.0 (Array.length queries) in
    let setup_rng = Rng.create 7 in
    let sessions =
      Array.of_list
        (List.filter_map
           (fun _ ->
             let q = queries.(Zipf.draw zipf setup_rng) in
             match Engine.search engine q.Q.keyword with
             | Ok (Engine.Session s) -> Some s
             | Ok Engine.No_results | Error _ -> None)
           (List.init n_sessions Fun.id))
    in
    let crashes = Atomic.make 0 in
    let inconsistent = Atomic.make 0 in
    let reads = Atomic.make 0 in
    let writes = Atomic.make 0 in
    let acq = Metrics.counter "bionav_shard_lock_acquisitions_total" in
    let mixed_worker d () =
      try
        let rng = Rng.create (100 + d) in
        for op = 1 to mixed_ops / cn_domains do
          let s = Rng.choice rng sessions in
          if op mod 64 = 0 then ignore (String.length (Engine.metrics_text engine));
          let r = Rng.float rng 1.0 in
          if r < 0.7 then begin
            let snap = Engine.snapshot s in
            if not (consistent_snapshot snap) then Atomic.incr inconsistent;
            Atomic.incr reads
          end
          else if r < 0.9 then begin
            let snap = Engine.snapshot s in
            let expandable =
              List.filter
                (fun id ->
                  (Bionav_search.Nav_snapshot.get snap id)
                    .Bionav_search.Nav_snapshot.expandable)
                (Bionav_search.Nav_snapshot.visible snap)
            in
            (match expandable with
            | [] -> ignore (Engine.backtrack s : bool)
            | l -> (
                (* A concurrent expand/backtrack may have hidden the
                   node since the snapshot; losing that race is part of
                   the workload, not a crash. *)
                try ignore (Engine.expand s (Rng.choice_list rng l) : int list)
                with Invalid_argument _ -> ()));
            Atomic.incr writes
          end
          else begin
            ignore (Engine.backtrack s : bool);
            Atomic.incr writes
          end
        done
      with e ->
        say "  mixed domain %d crashed: %s" d (Printexc.to_string e);
        Atomic.incr crashes
    in
    let read_worker d () =
      try
        let rng = Rng.create (500 + d) in
        for op = 1 to read_ops / cn_domains do
          let s = Rng.choice rng sessions in
          if op mod 64 = 0 then ignore (String.length (Engine.metrics_text engine));
          let snap = Engine.snapshot s in
          if not (consistent_snapshot snap) then Atomic.incr inconsistent
        done
      with e ->
        say "  read domain %d crashed: %s" d (Printexc.to_string e);
        Atomic.incr crashes
    in
    let run_pool worker =
      if cn_domains = 1 then worker 0 ()
      else
        Array.iter Domain.join
          (Array.init cn_domains (fun d -> Domain.spawn (worker d)))
    in
    let t0 = Timing.now_ms () in
    run_pool mixed_worker;
    let cn_elapsed_ms = Timing.now_ms () -. t0 in
    (* Pure-read phase: every acquisition the lock counter picks up from
       here on is a read path that regressed onto the mutex. *)
    let acq_before_reads = Metrics.value acq in
    run_pool read_worker;
    let cn_read_acqs = Metrics.value acq - acq_before_reads in
    let wait = Metrics.histogram "bionav_shard_lock_wait_ms" in
    let hold = Metrics.histogram "bionav_shard_lock_hold_ms" in
    let ops = Atomic.get reads + Atomic.get writes in
    { cn_domains;
      cn_reads = Atomic.get reads;
      cn_writes = Atomic.get writes;
      cn_elapsed_ms;
      cn_ops_s =
        (if cn_elapsed_ms > 0. then 1000. *. float_of_int ops /. cn_elapsed_ms else 0.);
      cn_acqs = Metrics.value acq;
      cn_read_acqs;
      cn_wait_p50 = Metrics.percentile wait 50.;
      cn_wait_p95 = Metrics.percentile wait 95.;
      cn_hold_p50 = Metrics.percentile hold 50.;
      cn_hold_p95 = Metrics.percentile hold 95.;
      cn_crashes = Atomic.get crashes;
      cn_inconsistent = Atomic.get inconsistent }
  in
  let runs = List.map run_with [ 1; 2; 4 ] in
  let r1 = List.nth runs 0 and r2 = List.nth runs 1 and r4 = List.nth runs 2 in
  let cores = Domain.recommended_domain_count () in
  let gates_enforced = cores >= 2 in
  print_string
    (Table.render
       ~header:
         [ "domains"; "reads"; "writes"; "ops/s"; "lock acqs"; "read-phase acqs";
           "wait p95"; "hold p95" ]
       [ Table.Right; Right; Right; Right; Right; Right; Right; Right ]
       (List.map
          (fun r ->
            [
              string_of_int r.cn_domains;
              string_of_int r.cn_reads;
              string_of_int r.cn_writes;
              Printf.sprintf "%.0f" r.cn_ops_s;
              string_of_int r.cn_acqs;
              string_of_int r.cn_read_acqs;
              Printf.sprintf "%.4f ms" r.cn_wait_p95;
              Printf.sprintf "%.4f ms" r.cn_hold_p95;
            ])
          runs));
  say "";
  say "  cores: %d — scaling gates %s; the zero-lock read gate always applies" cores
    (if gates_enforced then "enforced" else "recorded only (need >= 2 cores)");
  if not gates_enforced then
    Printf.eprintf
      "\nWARNING: gates_enforced: false — only %d core(s); contention scaling\n\
       numbers are not meaningful (the read-path lock gate still applies).\n\n"
      cores;
  say "";
  let pool_json r =
    Printf.sprintf
      "    { \"domains\": %d, \"reads\": %d, \"writes\": %d, \"elapsed_ms\": %.2f,\n\
      \      \"ops_per_s\": %.2f, \"lock_acquisitions\": %d,\n\
      \      \"read_phase_acquisitions\": %d,\n\
      \      \"lock_wait_p50_ms\": %.5f, \"lock_wait_p95_ms\": %.5f,\n\
      \      \"lock_hold_p50_ms\": %.5f, \"lock_hold_p95_ms\": %.5f,\n\
      \      \"crashes\": %d, \"inconsistent_snapshots\": %d }"
      r.cn_domains r.cn_reads r.cn_writes r.cn_elapsed_ms r.cn_ops_s r.cn_acqs
      r.cn_read_acqs r.cn_wait_p50 r.cn_wait_p95 r.cn_hold_p50 r.cn_hold_p95 r.cn_crashes
      r.cn_inconsistent
  in
  let json =
    Printf.sprintf
      "{\n\
      \  \"sessions\": %d,\n\
      \  \"shards\": %d,\n\
      \  \"smoke\": %b,\n\
      \  \"cores\": %d,\n\
      \  \"gates_enforced\": %b,\n\
      \  \"mixed_ops\": %d,\n\
      \  \"read_ops\": %d,\n\
      \  \"pools\": [\n%s\n  ]\n\
       }\n"
      n_sessions shards smoke cores gates_enforced mixed_ops read_ops
      (String.concat ",\n" (List.map pool_json runs))
  in
  let path = "BENCH_contention.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  say "  wrote %s" path;
  say "";
  let fail = ref false in
  let gate name ok detail =
    if not ok then begin
      say "  *** FAIL: %s (%s) ***" name detail;
      fail := true
    end
  in
  (* Correctness gates — always enforced, on every box. *)
  List.iter
    (fun r ->
      gate
        (Printf.sprintf "crash at %d domains" r.cn_domains)
        (r.cn_crashes = 0)
        (Printf.sprintf "%d domain(s) died" r.cn_crashes);
      gate
        (Printf.sprintf "torn snapshot at %d domains" r.cn_domains)
        (r.cn_inconsistent = 0)
        (Printf.sprintf "%d inconsistent snapshot(s)" r.cn_inconsistent);
      gate
        (Printf.sprintf "read path took the shard lock at %d domains" r.cn_domains)
        (r.cn_read_acqs = 0)
        (Printf.sprintf "%d acquisition(s) during the pure-read phase" r.cn_read_acqs))
    runs;
  (* Scaling gates — mixed-phase throughput must not degrade as domains
     are added, since reads never contend. *)
  if gates_enforced then begin
    gate "ops/s not monotone 1->2"
      (r2.cn_ops_s >= 0.95 *. r1.cn_ops_s)
      (Printf.sprintf "%.0f/s vs %.0f/s" r2.cn_ops_s r1.cn_ops_s);
    if cores >= 4 then
      gate "ops/s not monotone 2->4"
        (r4.cn_ops_s >= 0.95 *. r2.cn_ops_s)
        (Printf.sprintf "%.0f/s vs %.0f/s" r4.cn_ops_s r2.cn_ops_s)
  end;
  if !fail then exit 1

(* ------------------------------------------------------------------ *)
(* Segment store: streaming bulk ingest + cold-cache serving           *)
(* ------------------------------------------------------------------ *)

module Seg_store = Bionav_segstore.Store
module Seg_ingest = Bionav_segstore.Ingest
module Seg_bridge = Bionav_segstore.Bridge
module DB = Bionav_store.Database
module Syn = Bionav_mesh.Synthetic
module Gen = Bionav_corpus.Generator

(* Both segstore targets contribute fragments to one artifact, so
   `bench/main.exe ingest coldexpand` produces a single
   BENCH_ingest.json covering ingest and serving. *)
let segstore_json : (string * string) list ref = ref []

let write_segstore_json () =
  let json =
    Printf.sprintf "{\n%s\n}\n"
      (String.concat ",\n"
         (List.map
            (fun (k, v) -> Printf.sprintf "  \"%s\": %s" k v)
            (List.rev !segstore_json)))
  in
  let path = "BENCH_ingest.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  say "  wrote %s" path

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let bench_seg_dir name =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ()) ("bionav_bench_" ^ name)
  in
  rm_rf dir;
  dir

(* The out-of-core promise, measured: stream a synthetic corpus that
   never exists in memory through the run-spill/merge pipeline and gate
   the process peak-RSS growth against the configured memory budget
   (run buffer during ingest + the block-cache budget the sealed
   segments will be served under, which is sized at a tenth of the
   segment bytes so the corpus is always >= 10x the cache). The fixed
   allowance absorbs runtime/minor-heap noise; a pipeline that
   materialized the corpus would blow past it by an order of
   magnitude. *)
let ingest_bench () =
  say "%s" (Table.section "Segment store: streaming bulk ingest (bounded peak RSS)");
  say "";
  let smoke = !smoke_mode in
  let n_citations = if smoke then 40_000 else 300_000 in
  let run_budget_pairs = if smoke then 1 lsl 17 else 1 lsl 20 in
  let config = { Seg_ingest.run_budget_pairs; segment_max_bytes = 8 * 1024 * 1024 } in
  let hierarchy = Syn.generate ~params:Syn.small_params ~seed:71 () in
  let dir = bench_seg_dir "ingest" in
  let peak0 = Procinfo.peak_rss_bytes () in
  let t0 = Timing.now_ms () in
  let summary =
    Seg_ingest.ingest_generated ~config ~dir
      ~params:{ Gen.small_params with Gen.n_citations }
      ~seed:72 hierarchy
  in
  let elapsed_ms = Timing.now_ms () -. t0 in
  let peak1 = Procinfo.peak_rss_bytes () in
  let peak_delta = peak1 - peak0 in
  let run_buffer_bytes = run_budget_pairs * 8 in
  let cache_budget_bytes = max 1 (summary.Seg_ingest.bytes / 10) in
  let allowance = 48 * 1024 * 1024 in
  let rss_ceiling = (2 * (run_buffer_bytes + cache_budget_bytes)) + allowance in
  let per_s x = if elapsed_ms > 0. then 1000. *. float_of_int x /. elapsed_ms else 0. in
  let mib x = float_of_int x /. (1024. *. 1024.) in
  print_string
    (Table.render
       ~header:[ "metric"; "value" ]
       [ Table.Left; Right ]
       [
         [ "citations"; string_of_int summary.Seg_ingest.n_citations ];
         [ "associations"; string_of_int summary.Seg_ingest.n_associations ];
         [ "runs spilled"; string_of_int summary.Seg_ingest.runs_spilled ];
         [ "segments sealed"; string_of_int summary.Seg_ingest.n_segments ];
         [ "segment bytes"; Printf.sprintf "%.1f MiB" (mib summary.Seg_ingest.bytes) ];
         [ "elapsed"; Printf.sprintf "%.0f ms" elapsed_ms ];
         [ "citations/s"; Printf.sprintf "%.0f" (per_s summary.Seg_ingest.n_citations) ];
         [ "associations/s"; Printf.sprintf "%.0f" (per_s summary.Seg_ingest.n_associations) ];
         [ "run buffer"; Printf.sprintf "%.1f MiB" (mib run_buffer_bytes) ];
         [ "cache budget (bytes/10)"; Printf.sprintf "%.1f MiB" (mib cache_budget_bytes) ];
         [ "corpus / cache ratio";
           Printf.sprintf "%.1fx"
             (float_of_int summary.Seg_ingest.bytes /. float_of_int cache_budget_bytes) ];
         [ "peak RSS before"; Printf.sprintf "%.1f MiB" (mib peak0) ];
         [ "peak RSS after"; Printf.sprintf "%.1f MiB" (mib peak1) ];
         [ "peak RSS growth"; Printf.sprintf "%.1f MiB" (mib peak_delta) ];
         [ "RSS ceiling (2x budget + slack)"; Printf.sprintf "%.1f MiB" (mib rss_ceiling) ];
       ]);
  say "";
  let rss_ok = peak_delta <= rss_ceiling in
  let ratio_ok = summary.Seg_ingest.bytes >= 10 * cache_budget_bytes in
  segstore_json :=
    ( "ingest",
      Printf.sprintf
        "{\n\
        \    \"smoke\": %b,\n\
        \    \"citations\": %d,\n\
        \    \"associations\": %d,\n\
        \    \"runs_spilled\": %d,\n\
        \    \"segments\": %d,\n\
        \    \"segment_bytes\": %d,\n\
        \    \"elapsed_ms\": %.2f,\n\
        \    \"citations_per_s\": %.1f,\n\
        \    \"run_buffer_bytes\": %d,\n\
        \    \"cache_budget_bytes\": %d,\n\
        \    \"peak_rss_before_bytes\": %d,\n\
        \    \"peak_rss_after_bytes\": %d,\n\
        \    \"peak_rss_growth_bytes\": %d,\n\
        \    \"rss_ceiling_bytes\": %d,\n\
        \    \"corpus_at_least_10x_cache\": %b,\n\
        \    \"rss_gate_ok\": %b\n\
        \  }"
        smoke summary.Seg_ingest.n_citations summary.Seg_ingest.n_associations
        summary.Seg_ingest.runs_spilled summary.Seg_ingest.n_segments
        summary.Seg_ingest.bytes elapsed_ms
        (per_s summary.Seg_ingest.n_citations)
        run_buffer_bytes cache_budget_bytes peak0 peak1 peak_delta rss_ceiling ratio_ok
        rss_ok )
    :: !segstore_json;
  write_segstore_json ();
  say "";
  if not ratio_ok then begin
    say "  *** FAIL: corpus %d bytes below 10x the cache budget %d ***"
      summary.Seg_ingest.bytes cache_budget_bytes;
    exit 1
  end;
  if not rss_ok then begin
    say "  *** FAIL: ingest peak RSS grew %.1f MiB, ceiling %.1f MiB ***" (mib peak_delta)
      (mib rss_ceiling);
    exit 1
  end

(* Serve expand traffic against freshly sealed segments with a stone-cold
   block cache and hold the backend to byte-identity with the in-memory
   association table: same navigation trees (per-node concepts and result
   sets compared with Docset.equal), same oracle traces. Cold p95 comes
   from the expand-latency histogram of the segstore run. *)
let coldexpand_bench () =
  say "%s" (Table.section "Segment store: cold-cache expand traffic vs in-memory");
  say "";
  let w = Q.build ~config:Q.small_config ~seed:workload_seed () in
  let dir = bench_seg_dir "coldexpand" in
  let ingest_summary = Seg_ingest.ingest_medline ~dir w.Q.medline in
  say "  ingested %d citations into %d segment(s), %d bytes"
    ingest_summary.Seg_ingest.n_citations ingest_summary.Seg_ingest.n_segments
    ingest_summary.Seg_ingest.bytes;
  say "";
  (* Structural byte-identity, checked off the serving path: the same
     result sets must attach the same concepts with the same citation
     sets on both backends. *)
  let store = Seg_store.open_dir dir in
  let ext_db = Seg_bridge.database store (DB.hierarchy w.Q.database) in
  let results_identical = ref true in
  List.iter
    (fun q ->
      let nav_mem = Nav_tree.of_database w.Q.database q.Q.result in
      let nav_ext = Nav_tree.of_database ext_db q.Q.result in
      if Nav_tree.size nav_mem <> Nav_tree.size nav_ext then results_identical := false
      else
        for node = 0 to Nav_tree.size nav_mem - 1 do
          if
            Nav_tree.concept_id nav_mem node <> Nav_tree.concept_id nav_ext node
            || not
                 (Docset.equal (Nav_tree.results nav_mem node)
                    (Nav_tree.results nav_ext node))
          then results_identical := false
        done)
    w.Q.queries;
  (* Engine-level runs: one backend at a time, each from a fresh engine,
     tracing every oracle navigation. The segstore engine opens its own
     store, so its block cache starts empty — every first-touch decode
     in the trace is a cold read. *)
  let run_backend config =
    Metrics.reset ();
    let engine = Engine.create ~config ~database:w.Q.database ~eutils:w.Q.eutils () in
    let buf = Buffer.create 4096 in
    List.iter
      (fun q ->
        match Engine.search engine q.Q.keyword with
        | Ok (Engine.Session s) ->
            let outcome = Simulate.to_target (Engine.navigation s) ~target:q.Q.target_node in
            Buffer.add_string buf
              (Printf.sprintf "%s cost=%d expands=%d revealed=%d [%s]\n" q.Q.spec.Q.name
                 outcome.Simulate.navigation_cost outcome.Simulate.expands
                 outcome.Simulate.revealed
                 (String.concat ";"
                    (List.map
                       (fun (r : Navigation.expand_record) ->
                         Printf.sprintf "%d:%d" r.Navigation.node r.Navigation.n_revealed)
                       outcome.Simulate.history)));
            ignore (Engine.close engine (Engine.session_id s) : bool)
        | Ok Engine.No_results | Error _ ->
            Buffer.add_string buf (Printf.sprintf "%s no-results\n" q.Q.spec.Q.name))
      w.Q.queries;
    let hist = Metrics.histogram "bionav_expand_latency_ms" in
    let hits = Metrics.value (Metrics.counter "bionav_segstore_block_cache_hits_total") in
    let misses =
      Metrics.value (Metrics.counter "bionav_segstore_block_cache_misses_total")
    in
    ( Buffer.contents buf,
      Metrics.count hist,
      Metrics.percentile hist 50.,
      Metrics.percentile hist 95.,
      hits,
      misses )
  in
  let mem_trace, mem_expands, mem_p50, mem_p95, _, _ =
    run_backend Engine.default_config
  in
  let cold_trace, cold_expands, cold_p50, cold_p95, hits, misses =
    run_backend { Engine.default_config with Engine.segstore = Some (Seg_store.spec dir) }
  in
  let trace_identical = String.equal mem_trace cold_trace in
  print_string
    (Table.render
       ~header:[ "backend"; "EXPANDs"; "p50/EXPAND"; "p95/EXPAND" ]
       [ Table.Left; Right; Right; Right ]
       [
         [ "in-memory"; string_of_int mem_expands; Printf.sprintf "%.3f ms" mem_p50;
           Printf.sprintf "%.3f ms" mem_p95 ];
         [ "segstore (cold)"; string_of_int cold_expands; Printf.sprintf "%.3f ms" cold_p50;
           Printf.sprintf "%.3f ms" cold_p95 ];
       ]);
  say "";
  say "  block cache: %d hit(s), %d miss(es); traces %s; result sets %s" hits misses
    (if trace_identical then "byte-identical" else "DIVERGED")
    (if !results_identical then "byte-identical" else "DIVERGED");
  say "";
  let p95_ceiling_ms = 100. in
  let p95_ok = cold_p95 <= p95_ceiling_ms in
  segstore_json :=
    ( "coldexpand",
      Printf.sprintf
        "{\n\
        \    \"queries\": %d,\n\
        \    \"segments\": %d,\n\
        \    \"segment_bytes\": %d,\n\
        \    \"mem_expands\": %d,\n\
        \    \"mem_expand_p50_ms\": %.4f,\n\
        \    \"mem_expand_p95_ms\": %.4f,\n\
        \    \"cold_expands\": %d,\n\
        \    \"cold_expand_p50_ms\": %.4f,\n\
        \    \"cold_expand_p95_ms\": %.4f,\n\
        \    \"cold_p95_ceiling_ms\": %.1f,\n\
        \    \"block_cache_hits\": %d,\n\
        \    \"block_cache_misses\": %d,\n\
        \    \"traces_identical\": %b,\n\
        \    \"results_identical\": %b\n\
        \  }"
        (List.length w.Q.queries) ingest_summary.Seg_ingest.n_segments
        ingest_summary.Seg_ingest.bytes mem_expands mem_p50 mem_p95 cold_expands cold_p50
        cold_p95 p95_ceiling_ms hits misses trace_identical !results_identical )
    :: !segstore_json;
  write_segstore_json ();
  say "";
  if not (trace_identical && !results_identical) then begin
    say "  *** FAIL: segstore backend diverged from the in-memory backend ***";
    exit 1
  end;
  if not p95_ok then begin
    say "  *** FAIL: cold expand p95 %.3f ms above the %.0f ms ceiling ***" cold_p95
      p95_ceiling_ms;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Serve: the readiness-loop serving tier under open-loop load         *)
(* ------------------------------------------------------------------ *)

module Http = Bionav_web.Http
module App = Bionav_web.App

(* A minimal keep-alive HTTP client: one descriptor plus a pending
   buffer for bytes read past the current response. Strictly
   request-response per connection, so the pending buffer is normally
   empty between calls. *)
type serve_client = { cfd : Unix.file_descr; pending : Buffer.t }

let client_write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let client_connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  (try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
  { cfd = fd; pending = Buffer.create 512 }

let client_close c = try Unix.close c.cfd with Unix.Unix_error _ -> ()

let find_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i =
    if i + nn > nh then None
    else if String.sub hay i nn = needle then Some i
    else go (i + 1)
  in
  go 0

(* Read exactly one response off a keep-alive connection: headers to
   the blank line, then Content-Length body bytes; anything beyond
   stays pending. Returns the status code. *)
let client_read_response c =
  let chunk = Bytes.create 8192 in
  let fill () =
    let n = Unix.read c.cfd chunk 0 8192 in
    if n = 0 then failwith "server closed mid-response";
    Buffer.add_subbytes c.pending chunk 0 n
  in
  let rec header_end () =
    match find_substring (Buffer.contents c.pending) "\r\n\r\n" with
    | Some i -> i
    | None ->
        fill ();
        header_end ()
  in
  let hdr_end = header_end () in
  let head = String.sub (Buffer.contents c.pending) 0 hdr_end in
  let status = Scanf.sscanf head "HTTP/1.1 %d" Fun.id in
  let clen =
    match find_substring (String.lowercase_ascii head) "content-length:" with
    | None -> 0
    | Some i ->
        let rest = String.sub head (i + 15) (String.length head - i - 15) in
        Scanf.sscanf (String.trim rest) "%d" Fun.id
  in
  let total = hdr_end + 4 + clen in
  while Buffer.length c.pending < total do
    fill ()
  done;
  let all = Buffer.contents c.pending in
  let leftover = String.sub all total (String.length all - total) in
  Buffer.clear c.pending;
  Buffer.add_string c.pending leftover;
  status

let client_get c target =
  client_write_all c.cfd ("GET " ^ target ^ " HTTP/1.1\r\nHost: bench\r\n\r\n");
  client_read_response c

(* Phase A's client half runs in a forked process: with RLIMIT_NOFILE
   at 20k, parent and child each get their own descriptor budget, so
   10k connections cost the server process 10k fds, not 20k. The fork
   happens before the server domain is spawned (forking a multi-domain
   OCaml process is not safe). *)
let idle_child ~ctrl_r ~report_w =
  let ic = Unix.in_channel_of_descr ctrl_r in
  (try
     let line = input_line ic in
     Scanf.sscanf line "port %d target %d" (fun port target ->
         let conns =
           Array.init target (fun _ ->
               let c = client_connect port in
               (* One request per connection: each socket proves the
                  full accept/parse/respond/idle cycle, and the
                  request-response round trip paces the connect burst
                  so the listen backlog never overflows. *)
               let status = client_get c "/healthz" in
               if status <> 200 then failwith (Printf.sprintf "healthz -> %d" status);
               c)
         in
         client_write_all report_w "opened\n";
         (match input_line ic with _ -> ());
         Array.iter client_close conns)
   with e ->
     (try client_write_all report_w ("error " ^ Printexc.to_string e ^ "\n")
      with _ -> ());
     Unix._exit 1);
  Unix._exit 0

let spawn_serve_domain ~config ~max_requests handler =
  let port_box = Atomic.make 0 in
  let d =
    Domain.spawn (fun () ->
        Http.serve ~config ~on_ready:(fun ~port -> Atomic.set port_box port) ~max_requests
          ~port:0 handler)
  in
  while Atomic.get port_box = 0 do
    Unix.sleepf 0.002
  done;
  (d, Atomic.get port_box)

let percentile_of_sorted sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (ceil (p /. 100. *. float_of_int n)) - 1 |> max 0))

let serve_bench () =
  say "%s" (Table.section "Serve: keep-alive readiness loop under open-loop load");
  let w = Lazy.force workload in
  let smoke = !smoke_mode in
  let cores = Domain.recommended_domain_count () in
  let gates_enforced = cores >= 2 in
  let app =
    App.create
      ~config:{ Engine.default_config with Engine.shards = 2; max_sessions = 256 }
      ~database:w.Q.database ~eutils:w.Q.eutils ()
  in
  let handler = App.handle app in
  let engine = App.engine app in
  (* Pre-create one session per workload query; the open-loop phase
     draws Zipf-distributed /session hits over them, the way a heavy
     head of popular result sets dominates real traffic. *)
  let sids =
    List.filter_map
      (fun q ->
        match Engine.search engine q.Q.spec.Q.name with
        | Ok (Engine.Session s) -> Some (Engine.session_id s)
        | Ok Engine.No_results | Error _ -> None)
      w.Q.queries
    |> Array.of_list
  in
  if Array.length sids = 0 then begin
    say "  *** FAIL: no sessions could be created ***";
    exit 1
  end;
  let nofile = Bionav_web.Poll.raise_nofile_limit () in
  (* --- phase A: concurrent idle keep-alive connections ---------------- *)
  let idle_target = if smoke then 200 else 10_000 in
  let probe_count = 5 in
  say "  phase A: %d idle keep-alive connections on one domain (nofile %d)" idle_target
    nofile;
  flush stdout;
  flush stderr;
  let ctrl_r, ctrl_w = Unix.pipe () in
  let report_r, report_w = Unix.pipe () in
  let child =
    match Unix.fork () with
    | 0 ->
        Unix.close ctrl_w;
        Unix.close report_r;
        idle_child ~ctrl_r ~report_w
    | pid ->
        Unix.close ctrl_r;
        Unix.close report_w;
        pid
  in
  let idle_config =
    { Http.default_server_config with
      Http.domains = 1;
      max_connections = idle_target + 64;
      backlog = 1024;
      idle_timeout_ms = 120_000.;
      max_inflight = idle_target + 64;
    }
  in
  let server, port =
    spawn_serve_domain ~config:idle_config ~max_requests:(idle_target + probe_count) handler
  in
  client_write_all ctrl_w (Printf.sprintf "port %d target %d\n" port idle_target);
  let report_ic = Unix.in_channel_of_descr report_r in
  let child_report = input_line report_ic in
  if child_report <> "opened" then begin
    say "  *** FAIL: idle-connection client: %s ***" child_report;
    exit 1
  end;
  (* Let the listener's periodic sweep refresh the idle gauge. *)
  Unix.sleepf 0.3;
  let open_conns = Metrics.gauge_value (Metrics.gauge "bionav_serve_open_connections") in
  let idle_conns = Metrics.gauge_value (Metrics.gauge "bionav_serve_idle_connections") in
  (* Probe latency while all those idle sockets sit in the poll set:
     the cost of an idle connection is what this measures. *)
  let probe = client_connect port in
  let probe_lat = Array.make probe_count 0. in
  let probe_ok = ref true in
  for i = 0 to probe_count - 1 do
    let t0 = Unix.gettimeofday () in
    let status = client_get probe "/healthz" in
    probe_lat.(i) <- (Unix.gettimeofday () -. t0) *. 1000.;
    if status <> 200 then probe_ok := false
  done;
  client_close probe;
  client_write_all ctrl_w "quit\n";
  ignore (Unix.waitpid [] child);
  Domain.join server;
  (try Unix.close ctrl_w with Unix.Unix_error _ -> ());
  (try Unix.close report_r with Unix.Unix_error _ -> ());
  Array.sort compare probe_lat;
  let probe_worst = probe_lat.(probe_count - 1) in
  say "  open %d  idle %d  probe worst %.3f ms" (int_of_float open_conns)
    (int_of_float idle_conns) probe_worst;
  (* --- phase B: open-loop latency (coordinated-omission-safe) --------- *)
  let rate = if smoke then 100. else 500. in
  let duration_s = if smoke then 1.0 else 5.0 in
  let n_reqs = int_of_float (rate *. duration_s) in
  let n_client_threads = 8 in
  say "  phase B: open loop at %.0f req/s for %.1f s (%d requests, Zipf over %d sessions)"
    rate duration_s n_reqs (Array.length sids);
  let zipf = Zipf.create ~exponent:1.0 (Array.length sids) in
  let rng = Rng.create 77 in
  let draws = Array.init n_reqs (fun _ -> Zipf.draw zipf rng) in
  let open_config =
    { Http.default_server_config with
      Http.domains = 2;
      max_connections = 256;
      queue_capacity = 1024;
      (* No admission shedding in this phase: a shed request never
         reaches a worker, so it would not count against the server's
         request budget and the run would never terminate. *)
      max_inflight = 1_000_000;
    }
  in
  let server, port = spawn_serve_domain ~config:open_config ~max_requests:n_reqs handler in
  let latencies = Array.make n_reqs 0. in
  let errors = Atomic.make 0 in
  let interval_s = 1. /. rate in
  let start = Unix.gettimeofday () +. 0.05 in
  let client k =
    let c = client_connect port in
    let i = ref k in
    while !i < n_reqs do
      let intended = start +. (float_of_int !i *. interval_s) in
      let now = Unix.gettimeofday () in
      if intended > now then Thread.delay (intended -. now);
      let status = client_get c ("/session?sid=" ^ sids.(draws.(!i))) in
      (* Coordinated-omission-safe: latency from the *intended* send
         time, so a stalled server inflates the tail instead of
         silently thinning the schedule. *)
      latencies.(!i) <- (Unix.gettimeofday () -. intended) *. 1000.;
      if status <> 200 then Atomic.incr errors;
      i := !i + n_client_threads
    done;
    client_close c
  in
  let threads = List.init n_client_threads (fun k -> Thread.create client k) in
  List.iter Thread.join threads;
  Domain.join server;
  let wall_s = Unix.gettimeofday () -. start in
  let sorted = Array.copy latencies in
  Array.sort compare sorted;
  let p50 = percentile_of_sorted sorted 50. in
  let p99 = percentile_of_sorted sorted 99. in
  let error_count = Atomic.get errors in
  let error_rate = float_of_int error_count /. float_of_int n_reqs in
  let open_throughput = float_of_int n_reqs /. wall_s in
  say "  p50 %.3f ms  p99 %.3f ms  errors %d/%d  %.0f req/s" p50 p99 error_count n_reqs
    open_throughput;
  (* --- phase C: saturation throughput, 1 vs 2 worker domains ---------- *)
  let sat_reqs = if smoke then 400 else 4_000 in
  let sat_threads = 4 in
  say "  phase C: closed-loop saturation, %d requests, 1 vs 2 worker domains" sat_reqs;
  let saturation domains =
    let config =
      { Http.default_server_config with
        Http.domains;
        max_connections = 64;
        queue_capacity = 1024;
        max_inflight = 1_000_000;
      }
    in
    let server, port = spawn_serve_domain ~config ~max_requests:sat_reqs handler in
    let per_thread = sat_reqs / sat_threads in
    let t0 = Unix.gettimeofday () in
    let client _ =
      let c = client_connect port in
      for _ = 1 to per_thread do
        ignore (client_get c "/healthz")
      done;
      client_close c
    in
    let threads = List.init sat_threads (fun k -> Thread.create client k) in
    List.iter Thread.join threads;
    Domain.join server;
    float_of_int sat_reqs /. (Unix.gettimeofday () -. t0)
  in
  let thr1 = saturation 1 in
  let thr2 = saturation 2 in
  say "  1 worker %.0f req/s   2 workers %.0f req/s   (%s)" thr1 thr2
    (if gates_enforced then "monotone gate enforced"
     else "recorded only (need >= 2 cores)");
  (* --- JSON + gates ---------------------------------------------------- *)
  let p99_ceiling_ms = 250. in
  let error_budget = 0.01 in
  let conn_gate_ok = int_of_float open_conns >= idle_target in
  let idle_gate_ok = int_of_float idle_conns >= idle_target in
  let json =
    Printf.sprintf
      "{\n\
       \  \"bench\": \"serve\",\n\
       \  \"smoke\": %b,\n\
       \  \"cores\": %d,\n\
       \  \"gates_enforced\": %b,\n\
       \  \"nofile_limit\": %d,\n\
       \  \"idle\": {\n\
       \    \"target\": %d,\n\
       \    \"open_connections\": %d,\n\
       \    \"idle_connections\": %d,\n\
       \    \"probe_ok\": %b,\n\
       \    \"probe_worst_ms\": %.3f\n\
       \  },\n\
       \  \"open_loop\": {\n\
       \    \"rate_rps\": %.0f,\n\
       \    \"duration_s\": %.1f,\n\
       \    \"requests\": %d,\n\
       \    \"client_connections\": %d,\n\
       \    \"errors\": %d,\n\
       \    \"error_rate\": %.4f,\n\
       \    \"p50_ms\": %.3f,\n\
       \    \"p99_ms\": %.3f,\n\
       \    \"p99_ceiling_ms\": %.0f,\n\
       \    \"throughput_rps\": %.1f\n\
       \  },\n\
       \  \"saturation\": {\n\
       \    \"requests\": %d,\n\
       \    \"workers_1_rps\": %.1f,\n\
       \    \"workers_2_rps\": %.1f\n\
       \  }\n\
       }\n"
      smoke cores gates_enforced nofile idle_target (int_of_float open_conns)
      (int_of_float idle_conns) !probe_ok probe_worst rate duration_s n_reqs
      n_client_threads error_count error_rate p50 p99 p99_ceiling_ms open_throughput
      sat_reqs thr1 thr2
  in
  let path = "BENCH_serve.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  say "  wrote %s" path;
  say "";
  let fail = ref false in
  let gate name ok detail =
    if not ok then begin
      say "  *** FAIL: %s (%s) ***" name detail;
      fail := true
    end
  in
  (* Correctness gates — always enforced, on every run. *)
  gate "idle connection target missed" conn_gate_ok
    (Printf.sprintf "%d open vs %d target" (int_of_float open_conns) idle_target);
  gate "idle gauge below target" idle_gate_ok
    (Printf.sprintf "%d idle vs %d target" (int_of_float idle_conns) idle_target);
  gate "probe failed amid idle connections" !probe_ok "non-200 probe response";
  gate "error budget blown"
    (error_rate <= error_budget)
    (Printf.sprintf "%.4f vs %.4f budget" error_rate error_budget);
  (* Latency/scaling gates — need real parallelism to be meaningful. *)
  if gates_enforced then begin
    gate "open-loop p99 above ceiling" (p99 <= p99_ceiling_ms)
      (Printf.sprintf "%.3f ms vs %.0f ms" p99 p99_ceiling_ms);
    gate "throughput not monotone 1->2 workers"
      (thr2 >= 0.9 *. thr1)
      (Printf.sprintf "%.0f/s vs %.0f/s" thr2 thr1)
  end;
  if !fail then exit 1
  else
    say "  all serve gates green%s"
      (if gates_enforced then "" else " (scaling gates recorded only)")

(* ------------------------------------------------------------------ *)
(* CSV export of the headline artifacts                                 *)
(* ------------------------------------------------------------------ *)

let csv () =
  let w = Lazy.force workload in
  let rs = Lazy.force runs in
  let dir = "results" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let write name content =
    let path = Filename.concat dir name in
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc content);
    say "wrote %s" path
  in
  write "table1.csv" (R.table1_csv w);
  write "fig8.csv" (R.fig8_csv rs);
  write "fig9.csv" (R.fig9_csv rs);
  write "fig10.csv" (R.fig10_csv rs);
  let prothymosin = List.find (fun r -> r.E.query.Q.spec.Q.name = "prothymosin") rs in
  write "fig11.csv" (R.fig11_csv prothymosin)


(* ------------------------------------------------------------------ *)
(* Adaptive: learned probabilities — overhead gates + cost reduction   *)
(* ------------------------------------------------------------------ *)

module Adaptive = Bionav_adaptive.Adaptive

(* Expand every session of every workload query to exhaustion through the
   engine and report (expands, wall ms): the EXPAND hot path with
   whatever evidence plumbing the config enables. *)
let adaptive_drain_workload w ~fuel ~adaptive =
  (* Pin a strategy whose params fingerprint is NOT the default so
     [Engine.effective_strategy] never substitutes the learned model:
     both arms then compute identical cuts and the measured delta is
     purely the evidence pipeline (observes + periodic model rebuilds). *)
  let pinned =
    Navigation.bionav
      ~params:{ Probability.default_params with Probability.upper_threshold = 51 }
      ()
  in
  let config =
    if adaptive then
      { Engine.default_config with Engine.adaptive = Some Adaptive.default_config }
    else Engine.default_config
  in
  let engine =
    Engine.create ~config ~database:w.Q.database ~eutils:w.Q.eutils ()
  in
  let expands = ref 0 in
  let t0 = Timing.now_ms () in
  List.iter
    (fun q ->
      match Engine.search engine ~strategy:pinned q.Q.keyword with
      | Ok (Engine.Session s) ->
          let rec loop fuel =
            if fuel > 0 then begin
              let active = Navigation.active (Engine.navigation s) in
              match
                List.find_opt (Active_tree.is_expandable active) (Active_tree.visible active)
              with
              | None -> ()
              | Some n ->
                  ignore (Engine.expand s n : int list);
                  incr expands;
                  loop (fuel - 1)
            end
          in
          loop fuel;
          ignore (Engine.close engine (Engine.session_id s) : bool)
      | Ok Engine.No_results | Error _ -> ())
    w.Q.queries;
  (!expands, Timing.now_ms () -. t0)

let adaptive_bench () =
  say "== adaptive: learned probability model (overhead gates + cost) ==";
  say "";
  let smoke = !smoke_mode in
  let w =
    if smoke then Q.build ~config:Q.small_config ~seed:workload_seed ()
    else Lazy.force workload
  in
  (* 1. Online observe: O(1) amortized counter bumps (one model rebuild
     every refresh_every observations). *)
  let ad = Adaptive.create () in
  let n_obs = if smoke then 50_000 else 400_000 in
  let n_concepts = 512 in
  let t0 = Timing.now_ms () in
  for i = 0 to n_obs - 1 do
    let concept = i mod n_concepts in
    match i mod 3 with
    | 0 -> Adaptive.observe_expand ad ~concept
    | 1 -> Adaptive.observe_show ad ~concept
    | _ -> Adaptive.observe_ignore ad ~concept
  done;
  let observe_us = (Timing.now_ms () -. t0) *. 1000. /. float_of_int n_obs in
  say "  observe: %.3f us/call over %d observations (%d concepts, refresh every %d)"
    observe_us n_obs n_concepts Adaptive.default_config.Adaptive.refresh_every;
  (* 2. The EXPAND hot path, engine-driven, static vs adaptive config.
     Interleave and keep the best of a few reps per arm to shed noise. *)
  let reps = 2 in
  (* Full-size sessions have thousands of expandable nodes; 150 EXPANDs per
     session is plenty of hot-path samples and keeps the arm comparable. *)
  let fuel = if smoke then 100_000 else 150 in
  let best arm =
    let best = ref infinity and expands = ref 0 in
    for _ = 1 to reps do
      let e, ms = adaptive_drain_workload w ~fuel ~adaptive:arm in
      expands := e;
      if ms < !best then best := ms
    done;
    (!expands, !best)
  in
  let off_expands, off_ms = best false in
  let on_expands, on_ms = best true in
  let off_us = off_ms *. 1000. /. float_of_int (max 1 off_expands) in
  let on_us = on_ms *. 1000. /. float_of_int (max 1 on_expands) in
  let overhead_us = on_us -. off_us in
  print_string
    (Table.render
       ~header:[ "adaptive"; "EXPANDs"; "us/EXPAND" ]
       [ Table.Left; Right; Right ]
       [
         [ "off"; string_of_int off_expands; Printf.sprintf "%.1f" off_us ];
         [ "on"; string_of_int on_expands; Printf.sprintf "%.1f" on_us ];
       ]);
  say "  evidence overhead on the expand path: %+.1f us/EXPAND" overhead_us;
  say "";
  (* 3. Does learning pay? Mean simulated navigation cost, static vs
     learned, per stochastic-user population. *)
  let train = if smoke then 60 else 120 in
  let eval_walks = if smoke then 60 else 120 in
  let runs = E.learned_vs_static ~train ~eval_walks ~seed:42 w in
  print_string
    (Table.render
       ~header:[ "population"; "static cost"; "learned cost"; "reduction" ]
       [ Table.Left; Right; Right; Right ]
       (List.map
          (fun (r : E.adaptive_run) ->
            [
              r.E.population;
              Printf.sprintf "%.2f" r.E.static_mean_cost;
              Printf.sprintf "%.2f" r.E.learned_mean_cost;
              Printf.sprintf "%+.1f%%" (100. *. r.E.cost_reduction);
            ])
          runs));
  say "  %d training sessions, %d evaluation walks per population." train eval_walks;
  say "";
  let wins = List.length (List.filter (fun r -> r.E.cost_reduction > 0.) runs) in
  let json =
    Printf.sprintf
      "{\n\
      \  \"smoke\": %b,\n\
      \  \"observe_us\": %.4f,\n\
      \  \"expand\": { \"off_us\": %.2f, \"on_us\": %.2f, \"overhead_us\": %.2f },\n\
      \  \"populations\": [%s],\n\
      \  \"populations_improved\": %d\n\
       }\n"
      smoke observe_us off_us on_us overhead_us
      (String.concat ", "
         (List.map
            (fun (r : E.adaptive_run) ->
              Printf.sprintf
                "{ \"name\": \"%s\", \"static\": %.3f, \"learned\": %.3f, \"reduction\": %.4f }"
                r.E.population r.E.static_mean_cost r.E.learned_mean_cost r.E.cost_reduction)
            runs))
      wins
  in
  let path = "BENCH_adaptive.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  say "  wrote %s" path;
  say "";
  (* Gates: observing must stay off the hot path's back, and learning must
     actually win on most populations. *)
  if observe_us > 20. then begin
    say "  *** FAIL: %.2f us/observe above the 20 us gate ***" observe_us;
    exit 1
  end;
  if overhead_us > 250. then begin
    say "  *** FAIL: %.1f us/EXPAND evidence overhead above the 250 us gate ***" overhead_us;
    exit 1
  end;
  if wins < 2 then begin
    say "  *** FAIL: learned model beat static on only %d of %d populations ***" wins
      (List.length runs);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Navigation spaces: derivation latency + plan cache under churn      *)
(* ------------------------------------------------------------------ *)

(* Refinement churn: repeat sessions of every workload query EXPAND the
   root, refine into the first revealed component, drill one EXPAND in the
   derived space, facet it, and unrefine back out — the access pattern the
   frame stack adds on top of plain TOPDOWN. Round 1 derives every space
   cold; later rounds revisit identical space ids, so their cuts must come
   out of the plan cache (the hit rate is gated). The per-dimension
   derivation histograms time the derive step itself, and the workload's
   refinement-vs-TOPDOWN simulation supplies the cost comparison. *)
let navspace_bench () =
  say "%s" (Table.section "Navigation spaces: derivation, refinement churn, facet cost");
  say "";
  let w = Q.build ~config:Q.small_config ~seed:workload_seed () in
  let queries = Array.of_list w.Q.queries in
  Metrics.reset ();
  let rounds = if !smoke_mode then 3 else 8 in
  let engine =
    Engine.create
      ~config:
        { Engine.default_config with
          Engine.prefetch = Some Bionav_prefetch.Prefetch.default_config }
      ~database:w.Q.database ~eutils:w.Q.eutils ()
  in
  let sessions = ref 0 and refines = ref 0 and facets = ref 0 in
  for _ = 1 to rounds do
    Array.iter
      (fun (q : Q.query) ->
        match Engine.search engine q.Q.keyword with
        | Ok (Engine.Session s) ->
            incr sessions;
            (match Engine.expand s (Nav_tree.root (Engine.session_nav s)) with
            | [] -> ()
            | node :: _ -> (
                match Engine.refine s node with
                | (_ : int) ->
                    incr refines;
                    ignore
                      (Engine.expand s (Nav_tree.root (Engine.session_nav s)) : int list);
                    (match Engine.facet s with
                    | (_ : int) ->
                        incr facets;
                        ignore (Engine.unrefine s : bool)
                    | exception Invalid_argument _ -> ());
                    ignore (Engine.unrefine s : bool)
                | exception Invalid_argument _ -> ()));
            ignore (Engine.close engine (Engine.session_id s) : bool)
        | Ok Engine.No_results | Error _ -> ())
      queries
  done;
  let dhist = Metrics.histogram "bionav_space_derivation_ms_descriptor" in
  let qhist = Metrics.histogram "bionav_space_derivation_ms_qualifier" in
  let hit_rate = Engine.plan_cache_hit_rate engine in
  print_string
    (Table.render
       ~header:[ "dimension"; "derivations"; "p50"; "p95" ]
       [ Table.Left; Right; Right; Right ]
       [
         [ "descriptor"; string_of_int (Metrics.count dhist);
           Printf.sprintf "%.3f ms" (Metrics.percentile dhist 50.);
           Printf.sprintf "%.3f ms" (Metrics.percentile dhist 95.) ];
         [ "qualifier"; string_of_int (Metrics.count qhist);
           Printf.sprintf "%.3f ms" (Metrics.percentile qhist 50.);
           Printf.sprintf "%.3f ms" (Metrics.percentile qhist 95.) ];
       ]);
  say "";
  say "  %d sessions over %d rounds: %d refinements, %d facet cuts;" !sessions rounds
    !refines !facets;
  say "  plan-cache hit rate under refinement churn: %.0f%%" (100. *. hit_rate);
  say "";
  let space_runs = E.refinement_vs_topdown w in
  print_string (R.space_table space_runs);
  say "";
  let mean f =
    match space_runs with
    | [] -> 0.
    | _ ->
        List.fold_left (fun acc r -> acc +. float_of_int (f r)) 0. space_runs
        /. float_of_int (List.length space_runs)
  in
  let td_mean = mean (fun (r : E.space_run) -> r.E.topdown_cost) in
  let refine_mean = mean (fun (r : E.space_run) -> r.E.refine_cost) in
  let facet_mean = mean (fun (r : E.space_run) -> r.E.facet_cost) in
  let json =
    Printf.sprintf
      "{\n\
      \  \"smoke\": %b,\n\
      \  \"rounds\": %d,\n\
      \  \"sessions\": %d,\n\
      \  \"refinements\": %d,\n\
      \  \"facet_cuts\": %d,\n\
      \  \"derivation\": {\n\
      \    \"descriptor\": { \"count\": %d, \"p50_ms\": %.4f, \"p95_ms\": %.4f },\n\
      \    \"qualifier\": { \"count\": %d, \"p50_ms\": %.4f, \"p95_ms\": %.4f }\n\
      \  },\n\
      \  \"plan_cache_hit_rate\": %.4f,\n\
      \  \"cost\": { \"topdown_mean\": %.2f, \"refine_mean\": %.2f, \"facet_mean\": %.2f },\n\
      \  \"per_query\": [%s]\n\
       }\n"
      !smoke_mode rounds !sessions !refines !facets (Metrics.count dhist)
      (Metrics.percentile dhist 50.) (Metrics.percentile dhist 95.)
      (Metrics.count qhist) (Metrics.percentile qhist 50.) (Metrics.percentile qhist 95.)
      hit_rate td_mean refine_mean facet_mean
      (String.concat ", "
         (List.map
            (fun (r : E.space_run) ->
              Printf.sprintf
                "{ \"query\": \"%s\", \"topdown\": %d, \"refine\": %d, \"facet\": %d }"
                r.E.space_query.Q.spec.Q.name r.E.topdown_cost r.E.refine_cost
                r.E.facet_cost)
            space_runs))
  in
  let path = "BENCH_navspace.json" in
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc json);
  say "  wrote %s" path;
  say "";
  if !refines = 0 then begin
    say "  *** FAIL: the churn loop performed no refinements ***";
    exit 1
  end;
  if hit_rate < 0.5 then begin
    say "  *** FAIL: plan-cache hit rate %.0f%% below the 50%% floor ***" (100. *. hit_rate);
    exit 1
  end

let targets =
  [
    ("table1", table1);
    ("fig8", fig8);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("baseline-paged", baseline_paged);
    ("ablation-opt", ablation_opt);
    ("ablation-k", ablation_k);
    ("ablation-expandcost", ablation_expandcost);
    ("ablation-reuse", ablation_reuse);
    ("ablation-selectivity", ablation_selectivity);
    ("ablation-thresholds", ablation_thresholds);
    ("montecarlo", montecarlo);
    ("theorem1", theorem1);
    ("stability", stability);
    ("opt-wall", opt_wall);
    ("calibration", calibration);
    ("micro", micro);
    ("prefetch", prefetch_bench);
    ("chaos", chaos_bench);
    ("docset", docset_bench);
    ("parallel", parallel_bench);
    ("contention", contention_bench);
    ("ingest", ingest_bench);
    ("coldexpand", coldexpand_bench);
    ("serve", serve_bench);
    ("adaptive", adaptive_bench);
    ("navspace", navspace_bench);
    ("csv", csv);
  ]

(* "csv", "prefetch", "chaos", "docset", "parallel", "contention",
   "ingest" and "coldexpand" write files rather than (only) printing;
   keep them out of the default everything-run so
   `bench/main.exe > bench_output.txt` stays pure. *)
let default_targets =
  List.filter
    (fun (n, _) ->
      not
        (List.mem n
           [ "csv"; "prefetch"; "chaos"; "docset"; "parallel"; "contention"; "ingest";
             "coldexpand"; "serve"; "adaptive"; "navspace" ]))
    targets

let () =
  let args = match Array.to_list Sys.argv with _ :: args -> args | [] -> [] in
  let flags, names = List.partition (fun a -> a = "--smoke") args in
  if flags <> [] then smoke_mode := true;
  let requested = match names with [] -> List.map fst default_targets | _ -> names in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f ()
      | None ->
          say "unknown bench target %S; available: %s" name
            (String.concat " " (List.map fst targets));
          exit 2)
    requested
