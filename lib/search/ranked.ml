open Bionav_util
module Medline = Bionav_corpus.Medline
module Citation = Bionav_corpus.Citation

type t = {
  index : Inverted_index.t;
  n_docs : int;
  (* Per-document term frequencies (title counted twice) and lengths. *)
  tf : (string, (int, int) Hashtbl.t) Hashtbl.t;
  doc_len : int array;
}

let build medline =
  let index = Inverted_index.build medline in
  let n_docs = Medline.size medline in
  let tf : (string, (int, int) Hashtbl.t) Hashtbl.t = Hashtbl.create (1 lsl 14) in
  let doc_len = Array.make n_docs 0 in
  let bump doc tok w =
    let per_doc =
      match Hashtbl.find_opt tf tok with
      | Some h -> h
      | None ->
          let h = Hashtbl.create 8 in
          Hashtbl.add tf tok h;
          h
    in
    Hashtbl.replace per_doc doc (w + Option.value ~default:0 (Hashtbl.find_opt per_doc doc))
  in
  Array.iter
    (fun c ->
      let id = Citation.id c in
      let title_tokens = Tokenizer.tokens c.Citation.title in
      let body_tokens = Tokenizer.tokens c.Citation.abstract in
      List.iter (fun tok -> bump id tok 2) title_tokens;
      List.iter (fun tok -> bump id tok 1) body_tokens;
      doc_len.(id) <- (2 * List.length title_tokens) + List.length body_tokens)
    (Medline.citations medline);
  { index; n_docs; tf; doc_len }

let index t = t.index

let idf t tok =
  let df = Inverted_index.document_frequency t.index tok in
  if df = 0 then 0. else log (float_of_int t.n_docs /. float_of_int df)

let term_frequency t tok doc =
  match Hashtbl.find_opt t.tf tok with
  | None -> 0
  | Some per_doc -> Option.value ~default:0 (Hashtbl.find_opt per_doc doc)

let score t ~query doc =
  if doc < 0 || doc >= t.n_docs then invalid_arg "Ranked.score: document out of range";
  let toks = Tokenizer.unique_tokens query in
  let raw =
    List.fold_left
      (fun acc tok -> acc +. (float_of_int (term_frequency t tok doc) *. idf t tok))
      0. toks
  in
  if raw = 0. then 0. else raw /. sqrt (float_of_int (max 1 t.doc_len.(doc)))

let by_score_desc t ~query docs =
  let scored = List.map (fun d -> (d, score t ~query d)) docs in
  List.sort (fun (da, a) (db, b) -> if a = b then Int.compare da db else Float.compare b a) scored

let search ?(limit = 20) t query =
  let candidates = Inverted_index.query_and t.index query in
  let ranked = by_score_desc t ~query (Docset.elements candidates) in
  List.filteri (fun i _ -> i < limit) ranked

let rank t ~query results = List.map fst (by_score_desc t ~query (Docset.elements results))
