(** Inverted index over citation text.

    The PubMed-query stand-in: each citation's title and abstract are
    tokenized and indexed; queries are conjunctions (PubMed's default AND
    semantics) with an OR mode for completeness. Posting lists are
    {!Bionav_util.Intset.t}, so query evaluation is linear merges. *)

type t

val build : Bionav_corpus.Medline.t -> t
(** Index every citation's title and abstract. *)

val n_terms : t -> int

val postings : t -> string -> Bionav_util.Intset.t
(** Citations containing the (normalized) term; empty for unknown terms. *)

val query_and : t -> string -> Bionav_util.Intset.t
(** All citations containing every token of the query string. An empty or
    all-stop-word query returns the empty set. *)

val query_or : t -> string -> Bionav_util.Intset.t

val document_frequency : t -> string -> int
