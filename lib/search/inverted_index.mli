(** Inverted index over citation text.

    The PubMed-query stand-in: each citation's title and abstract are
    tokenized and indexed; queries are conjunctions (PubMed's default AND
    semantics) with an OR mode for completeness. Posting lists are
    {!Bionav_util.Docset.t} handles interned in one long-lived index
    arena: structurally equal lists share storage, and query evaluation
    is memoized there, so repeated queries are O(1) table hits. *)

type t

val build : Bionav_corpus.Medline.t -> t
(** Index every citation's title and abstract. *)

val arena : t -> Bionav_util.Docset_arena.t
(** The index's arena, for observability ({!Bionav_util.Docset_arena.stats}). *)

val n_terms : t -> int

val postings : t -> string -> Bionav_util.Docset.t
(** Citations containing the (normalized) term; empty for unknown terms. *)

val query_and : t -> string -> Bionav_util.Docset.t
(** All citations containing every token of the query string. An empty or
    all-stop-word query returns the empty set. *)

val query_or : t -> string -> Bionav_util.Docset.t

val document_frequency : t -> string -> int
