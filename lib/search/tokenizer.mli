(** Text tokenization for keyword retrieval.

    Lowercased alphanumeric runs; tokens shorter than 2 characters and a
    small stop-word list are dropped — the minimal normalization a PubMed
    stand-in needs so that "Cell Proliferation" and "cell proliferation"
    match. *)

val tokens : string -> string list
(** All tokens in order, duplicates preserved. *)

val unique_tokens : string -> string list
(** Distinct tokens, sorted. *)

val is_stop_word : string -> bool
