open Bionav_util
module Medline = Bionav_corpus.Medline
module Citation = Bionav_corpus.Citation

type t = {
  arena : Docset_arena.t;  (* owns postings and every query result *)
  table : (string, Docset.t) Hashtbl.t;
}

let build medline =
  let buckets : (string, int list ref) Hashtbl.t = Hashtbl.create (1 lsl 16) in
  Array.iter
    (fun c ->
      let id = Citation.id c in
      let text = c.Citation.title ^ " " ^ c.Citation.abstract in
      List.iter
        (fun tok ->
          match Hashtbl.find_opt buckets tok with
          | Some l -> if (match !l with x :: _ -> x <> id | [] -> true) then l := id :: !l
          | None -> Hashtbl.add buckets tok (ref [ id ]))
        (Tokenizer.tokens text))
    (Medline.citations medline);
  (* One long-lived arena for the whole index: terms sharing a posting list
     share one physical set, and query evaluation below interns its
     intermediate results here, so repeated queries are memo hits. *)
  let arena = Docset_arena.create () in
  let table = Hashtbl.create (Hashtbl.length buckets) in
  Hashtbl.iter
    (fun tok l ->
      (* Ids were appended in increasing order (deduplicated adjacently), so
         the reversed list is sorted strictly increasing. *)
      Hashtbl.add table tok
        (Docset.of_sorted_array_unchecked_in arena (Array.of_list (List.rev !l))))
    buckets;
  { arena; table }

let arena t = t.arena

let n_terms t = Hashtbl.length t.table

let postings t term =
  let tok = String.lowercase_ascii (String.trim term) in
  match Hashtbl.find_opt t.table tok with
  | Some s -> s
  | None -> Docset.in_arena t.arena Docset.empty

let query_tokens q = Tokenizer.unique_tokens q

let query_and t q =
  match query_tokens q with
  | [] -> Docset.in_arena t.arena Docset.empty
  | first :: rest ->
      List.fold_left (fun acc tok -> Docset.inter acc (postings t tok)) (postings t first) rest

let query_or t q =
  Docset.in_arena t.arena (Docset.union_many (List.map (postings t) (query_tokens q)))

let document_frequency t term = Docset.cardinal (postings t term)
