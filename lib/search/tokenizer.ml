let stop_words =
  [
    "a"; "an"; "and"; "are"; "as"; "at"; "be"; "by"; "for"; "from"; "has";
    "in"; "is"; "it"; "its"; "of"; "on"; "or"; "that"; "the"; "to"; "was";
    "were"; "with"; "these"; "this"; "however";
  ]

let stop_table =
  let tbl = Hashtbl.create 64 in
  List.iter (fun w -> Hashtbl.replace tbl w ()) stop_words;
  tbl

let is_stop_word w = Hashtbl.mem stop_table w

let is_token_char = function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '+' | '-' -> true | _ -> false

let tokens text =
  let n = String.length text in
  let acc = ref [] in
  let start = ref (-1) in
  let flush stop =
    if !start >= 0 then begin
      let tok = String.lowercase_ascii (String.sub text !start (stop - !start)) in
      if String.length tok >= 2 && not (is_stop_word tok) then acc := tok :: !acc;
      start := -1
    end
  in
  for i = 0 to n - 1 do
    if is_token_char text.[i] then begin
      if !start < 0 then start := i
    end
    else flush i
  done;
  flush n;
  List.rev !acc

let unique_tokens text = List.sort_uniq String.compare (tokens text)
