(** Immutable, epoch-versioned views of a navigation session.

    The lock-free read path of DESIGN.md §12: after every mutating
    navigation action (EXPAND, SHOWRESULTS, BACKTRACK) the engine
    {!capture}s the session's visible tree — while still holding the
    shard lock — into a self-contained snapshot and publishes it through
    an [Atomic.t], RCU-style. Readers (HTML rendering, result paging,
    metrics, speculative ranking) work entirely off the snapshot they
    [Atomic.get] and never touch the shard lock; a reader holding epoch
    [e] keeps a consistent view even as the session advances past it.

    Consistency guarantees of one snapshot:
    - every visible node has a {!vnode}, and the {!vnode.members} of all
      visible nodes partition the navigation tree's node set;
    - {!vnode.distinct} equals the cardinality of {!vnode.results};
    - {!vnode.parent} / {!vnode.children} describe one coherent
      Definition-5 embedding (children are relevance-ranked);
    - all docsets live in a single private {e frozen} arena
      ({!Bionav_util.Docset_arena.freeze}), so reading them from any
      number of domains is safe and any attempted mutation raises.

    The snapshot also pins [nav], the underlying navigation tree, whose
    post-build state is immutable except for its arena's memo tables —
    pure reads on it (labels, counts, component-tree extraction) are
    domain-safe. *)

type vnode = {
  id : int;  (** Navigation node id (dense, preorder). *)
  label : string;
  weight : float;
      (** Explore mass [Σ |L|/|LT|] of the component — the relevance
          signal, precomputed so ranking needs no tree walk. *)
  distinct : int;  (** Distinct citations of the component. *)
  expandable : bool;  (** Component has ≥ 2 nodes (the ">>>" affordance). *)
  parent : int;  (** Visible parent in the embedding; -1 for the root. *)
  children : int list;  (** Visible children, relevance-ranked. *)
  members : int array;  (** Component members, ascending navigation ids. *)
  member_set : Bionav_util.Docset.t;
      (** [members] interned in the snapshot arena — plan caches key on
          its O(1) fingerprint, which is content-based and therefore
          consistent with live-arena member sets. *)
  results : Bionav_util.Docset.t;
      (** Distinct citations of the component, in the snapshot arena. *)
}

type t

val capture :
  epoch:int ->
  query:string ->
  ?space:string ->
  ?refine_depth:int ->
  Bionav_core.Navigation.t ->
  t
(** Build a snapshot of the session's current visible tree. Must be
    called while holding whatever lock serializes mutation of the
    session (the engine's shard lock): capture reads the active tree and
    interns into the navigation arena's memo tables. The returned
    snapshot's private arena is frozen before return. [space] (default
    ["descriptor"]) is the identity of the navigation space the session's
    top frame was derived along; [refine_depth] (default 0) the depth of
    its refinement stack. *)

val epoch : t -> int
val query : t -> string

val space : t -> string
(** Identity of the navigation space this snapshot was captured from
    (e.g. ["descriptor"], ["descriptor>refine:42"]). A reader holding a
    snapshot never observes a mixed-space tree: epoch {e and} space
    advance together atomically, and consumers that act on a snapshot
    (speculation ranking) re-check the space id before committing work
    against the live session. *)

val refine_depth : t -> int
(** Depth of the session's refinement stack at capture (0 = base space). *)

val model_fingerprint : t -> string
(** Fingerprint of the probability model the session's strategy was using
    at capture — the plan-cache key component that keeps speculation
    ranked off this snapshot from storing plans under a stale model. *)

val stats : t -> Bionav_core.Navigation.stats
(** Cost accounting as of the capture. *)

val distinct_results : t -> int
(** The query result size (distinct citations in the whole tree). *)

val root : t -> int

val visible : t -> int list
(** Visible navigation nodes in preorder (the root first). *)

val find : t -> int -> vnode option
val get : t -> int -> vnode
(** @raise Invalid_argument if the node was not visible at capture. *)

val mem : t -> int -> bool
val iter : t -> (vnode -> unit) -> unit
val node_count : t -> int

val arena : t -> Bionav_util.Docset_arena.t
(** The snapshot's private arena; always frozen. *)

val nav : t -> Bionav_core.Nav_tree.t
(** The underlying navigation tree (shared with the live session). *)
