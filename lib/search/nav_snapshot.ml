open Bionav_util
open Bionav_core

type vnode = {
  id : int;
  label : string;
  weight : float;
  distinct : int;
  expandable : bool;
  parent : int;
  children : int list;
  members : int array;
  member_set : Docset.t;
  results : Docset.t;
}

type t = {
  epoch : int;
  query : string;
  space : string;
  refine_depth : int;
  model_fingerprint : string;
  stats : Navigation.stats;
  distinct_results : int;
  root : int;
  order : int list;
  index : (int, vnode) Hashtbl.t;
  arena : Docset_arena.t;
  nav : Nav_tree.t;
}

let capture ~epoch ~query ?(space = "descriptor") ?(refine_depth = 0) navigation =
  let active = Navigation.active navigation in
  let nav = Active_tree.nav active in
  let arena = Docset_arena.create () in
  let order = Active_tree.visible active in
  let index = Hashtbl.create (max 16 (List.length order)) in
  List.iter
    (fun id ->
      (* Component member lists come out ascending and strictly
         increasing, so they intern without a sort. *)
      let members = Array.of_list (Active_tree.component active id) in
      let member_set = Docset.of_sorted_array_unchecked_in arena (Array.copy members) in
      let results =
        Docset.of_sorted_array_unchecked_in arena
          (Docset.to_array (Active_tree.component_results active id))
      in
      Hashtbl.replace index id
        {
          id;
          label = Nav_tree.label nav id;
          weight = Relevance.component_weight active id;
          distinct = Docset.cardinal results;
          expandable = Active_tree.is_expandable active id;
          parent = Active_tree.visible_parent active id;
          children = Relevance.ranked_children active id;
          members;
          member_set;
          results;
        })
    order;
  Docset_arena.freeze arena;
  {
    epoch;
    query;
    space;
    refine_depth;
    model_fingerprint = Navigation.model_fingerprint (Navigation.strategy navigation);
    stats = Navigation.stats navigation;
    distinct_results = Nav_tree.distinct_results nav;
    root = Nav_tree.root nav;
    order;
    index;
    arena;
    nav;
  }

let epoch t = t.epoch
let query t = t.query
let space t = t.space
let refine_depth t = t.refine_depth
let model_fingerprint t = t.model_fingerprint
let stats t = t.stats
let distinct_results t = t.distinct_results
let root t = t.root
let visible t = t.order
let arena t = t.arena
let nav t = t.nav
let find t id = Hashtbl.find_opt t.index id

let get t id =
  match find t id with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Nav_snapshot.get: node %d is not visible" id)

let mem t id = Hashtbl.mem t.index id

let iter t f = List.iter (fun id -> f (get t id)) t.order

let node_count t = Hashtbl.length t.index
