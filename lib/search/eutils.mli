(** A local stand-in for the Entrez Programming Utilities (paper §VII).

    BioNav's on-line path uses exactly three eutils operations: ESearch
    (keyword query -> citation IDs), ESummary (IDs -> display metadata) and
    the concept associations. This facade exposes those operations over the
    synthetic corpus, so the navigation subsystem is written against the
    same interface the real system would use. *)

type t

val create : Bionav_corpus.Medline.t -> t
(** Builds the inverted index eagerly. *)

val esearch : t -> string -> Bionav_util.Docset.t
(** Keyword query (AND semantics) -> citation id set. *)

val esearch_count : t -> string -> int
(** Result count only (PubMed's [rettype=count]). *)

val esearch_paged :
  ?retstart:int -> ?retmax:int -> ?sort:[ `Id | `Relevance ] -> t -> string -> int list
(** The real ESearch's paging interface: ids from [retstart] (default 0),
    at most [retmax] (default 20), ordered by ascending id or by TF-IDF
    relevance (default [`Id], like PubMed's default date-ish order). *)

val esearch_mh :
  ?qualifier:string -> t -> string -> Bionav_util.Docset.t
(** PubMed's [term\[mh\]] field search: citations {e annotated} with the
    concept whose label matches exactly, optionally
    restricted to those carrying the given qualifier on that concept
    ("Histones/metabolism"). Returns the empty set for unknown labels;
    @raise Invalid_argument for an unknown qualifier name. *)

val esummary : t -> int list -> string list
(** One formatted summary line per requested id, in request order.
    @raise Invalid_argument on an unknown id. *)

val citation : t -> int -> Bionav_corpus.Citation.t
(** Full record fetch (EFetch-like). @raise Invalid_argument on unknown id. *)

val concepts_of : t -> int -> Bionav_util.Docset.t
(** Concept associations of one citation. *)

val medline : t -> Bionav_corpus.Medline.t

val index : t -> Inverted_index.t
(** The underlying inverted index — its {!Inverted_index.arena} carries
    the search-side docset statistics. *)
