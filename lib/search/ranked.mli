(** Ranked retrieval over the inverted index.

    PubMed returns relevance-sorted results; BioNav only consumes the id
    set, but the CLI and SHOWRESULTS displays are far more useful with a
    ranking. Standard TF-IDF with cosine-style length normalization:

    {v score(d, q) = Σ_{t ∈ q} tf(t, d) · idf(t) / sqrt(len d) v}

    with [tf] the term count in the document's title+abstract (title
    occurrences weighted double) and [idf(t) = ln(N / df(t))]. *)

type t

val build : Bionav_corpus.Medline.t -> t
(** Extends the boolean index with term-frequency vectors. *)

val index : t -> Inverted_index.t
(** The underlying boolean index (shared). *)

val score : t -> query:string -> int -> float
(** Relevance of one citation; 0 when no query term occurs. *)

val search : ?limit:int -> t -> string -> (int * float) list
(** AND-semantics candidates ranked by descending score (ties broken by
    ascending id); [limit] defaults to 20. *)

val rank : t -> query:string -> Bionav_util.Docset.t -> int list
(** Order an externally-produced result set (e.g. a component's citations)
    by descending relevance. *)
