open Bionav_util
module Medline = Bionav_corpus.Medline
module Citation = Bionav_corpus.Citation

type t = { medline : Medline.t; index : Inverted_index.t; ranked : Ranked.t Lazy.t }

let create medline =
  {
    medline;
    index = Inverted_index.build medline;
    (* Term-frequency vectors are only needed for relevance-sorted paging;
       build them on first use. *)
    ranked = lazy (Ranked.build medline);
  }

let esearch_counter = Metrics.counter "bionav_esearch_total"
let esearch_hist = Metrics.histogram "bionav_esearch_ms"

let esearch t query =
  Metrics.incr esearch_counter;
  let result, elapsed_ms = Timing.time (fun () -> Inverted_index.query_and t.index query) in
  Metrics.observe esearch_hist elapsed_ms;
  result

let esearch_paged ?(retstart = 0) ?(retmax = 20) ?(sort = `Id) t query =
  if retstart < 0 || retmax < 0 then invalid_arg "Eutils.esearch_paged: negative paging";
  let results = esearch t query in
  let ordered =
    match sort with
    | `Id -> Docset.elements results
    | `Relevance -> Ranked.rank (Lazy.force t.ranked) ~query results
  in
  ordered
  |> List.filteri (fun i _ -> i >= retstart && i < retstart + retmax)

let esearch_count t query = Docset.cardinal (esearch t query)

let esearch_mh ?qualifier t label =
  (* Corpus postings are plain Intsets; results are interned in the index
     arena like every other search answer. *)
  let intern s = Docset.of_intset_in (Inverted_index.arena t.index) s in
  let hierarchy = Medline.hierarchy t.medline in
  match Bionav_mesh.Hierarchy.find_by_label hierarchy (String.trim label) with
  | None -> intern Intset.empty
  | Some concept -> (
      let annotated = Medline.postings t.medline concept in
      match qualifier with
      | None -> intern annotated
      | Some qname -> (
          match Bionav_mesh.Qualifiers.find_by_name qname with
          | None -> invalid_arg (Printf.sprintf "Eutils.esearch_mh: unknown qualifier %S" qname)
          | Some q ->
              intern
                (Intset.of_list
                   (Intset.fold
                      (fun id acc ->
                        let c = Medline.citation t.medline id in
                        match List.assoc_opt concept c.Citation.qualified with
                        | Some qs when List.mem q qs -> id :: acc
                        | Some _ | None -> acc)
                      annotated []))))

let check_id t id =
  if id < 0 || id >= Medline.size t.medline then
    invalid_arg (Printf.sprintf "Eutils: unknown citation id %d" id)

let citation t id =
  check_id t id;
  Medline.citation t.medline id

let esummary t ids = List.map (fun id -> Citation.summary (citation t id)) ids

let concepts_of t id =
  check_id t id;
  Docset.of_intset_in (Inverted_index.arena t.index)
    (Citation.concepts (Medline.citation t.medline id))

let medline t = t.medline
let index t = t.index
