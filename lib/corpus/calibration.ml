open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy

type report = {
  n_concepts : int;
  hierarchy_height : int;
  hierarchy_max_width : int;
  top_level_subtrees : int;
  n_citations : int;
  mean_annotations : float;
  median_annotations : float;
  mean_major_topics : float;
  concepts_with_citations : int;
  singleton_concepts : int;
  gini_citation_counts : float;
  depth_mean_annotation : float;
}

(* Gini coefficient of a non-negative sample (0 = equal, 1 = concentrated). *)
let gini xs =
  let xs = Array.copy xs in
  Array.sort compare xs;
  let n = Array.length xs in
  let total = Array.fold_left ( +. ) 0. xs in
  if n = 0 || total <= 0. then 0.
  else begin
    let weighted = ref 0. in
    Array.iteri (fun i x -> weighted := !weighted +. (float_of_int (i + 1) *. x)) xs;
    ((2. *. !weighted) /. (float_of_int n *. total)) -. (float_of_int (n + 1) /. float_of_int n)
  end

let compute medline =
  let h = Medline.hierarchy medline in
  let citations = Medline.citations medline in
  let n_citations = Array.length citations in
  let annotation_counts =
    Array.map (fun c -> float_of_int (Intset.cardinal (Citation.concepts c))) citations
  in
  let major_counts =
    Array.map (fun c -> float_of_int (List.length c.Citation.major_topics)) citations
  in
  let populated = ref 0 and singleton = ref 0 in
  let per_concept = Array.make (Hierarchy.size h) 0. in
  for concept = 0 to Hierarchy.size h - 1 do
    let n = Medline.concept_count medline concept in
    per_concept.(concept) <- float_of_int n;
    if n > 0 then incr populated;
    if n = 1 then incr singleton
  done;
  let depth_sum = ref 0. and assoc_count = ref 0 in
  Array.iter
    (fun c ->
      Intset.iter
        (fun concept ->
          depth_sum := !depth_sum +. float_of_int (Hierarchy.depth h concept);
          incr assoc_count)
        (Citation.concepts c))
    citations;
  {
    n_concepts = Hierarchy.size h;
    hierarchy_height = Hierarchy.height h;
    hierarchy_max_width = Hierarchy.max_width h;
    top_level_subtrees = List.length (Hierarchy.children h (Hierarchy.root h));
    n_citations;
    mean_annotations = Stats.mean annotation_counts;
    median_annotations = Stats.median annotation_counts;
    mean_major_topics = Stats.mean major_counts;
    concepts_with_citations = !populated;
    singleton_concepts = !singleton;
    gini_citation_counts = gini per_concept;
    depth_mean_annotation =
      (if !assoc_count = 0 then 0. else !depth_sum /. float_of_int !assoc_count);
  }

let pp ppf r =
  Format.fprintf ppf
    "@[<v>concepts: %d (height %d, max width %d, %d top-level subtrees)@,\
     citations: %d@,\
     annotations/citation: mean %.1f, median %.1f (major topics %.2f)@,\
     concepts with citations: %d (%d singletons)@,\
     citation-count gini: %.3f@,\
     mean association depth: %.2f@]"
    r.n_concepts r.hierarchy_height r.hierarchy_max_width r.top_level_subtrees r.n_citations
    r.mean_annotations r.median_annotations r.mean_major_topics r.concepts_with_citations
    r.singleton_concepts r.gini_citation_counts r.depth_mean_annotation

let within_paper_bands r =
  [
    ("hierarchy height 8-11 (MeSH: 11)", r.hierarchy_height >= 8 && r.hierarchy_height <= 11);
    ( "mean annotations 40-120 (PubMed indexing: ~90)",
      r.mean_annotations >= 40. && r.mean_annotations <= 120. );
    ("major topics 1-3", r.mean_major_topics >= 1. && r.mean_major_topics <= 3.);
    ( "most concepts populated at full scale",
      float_of_int r.concepts_with_citations >= 0.5 *. float_of_int r.n_concepts );
    ("citation mass concentrated (gini > 0.5)", r.gini_citation_counts > 0.5);
    ( "associations shallow-biased (mean depth below mid-height)",
      r.depth_mean_annotation < float_of_int r.hierarchy_height /. 2. +. 1.5 );
  ]
