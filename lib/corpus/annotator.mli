(** The concept-annotation model: which MeSH concepts a citation is
    associated with.

    Paper §VII infers associations by querying PubMed once per concept
    (~90 concepts per citation on average, a superset of the ~20 explicit
    MEDLINE annotations). We reproduce the *statistical structure* of those
    associations, which is what the navigation cost model consumes:

    - {b topical core}: each citation has 1-3 major topics; the citation is
      associated with each topic and all of its ancestors (a deep concept
      therefore contributes a whole root-to-concept chain — the source of
      duplicate citations across sibling subtrees);
    - {b related spread}: a few siblings/nearby concepts of each topic join
      with moderate probability (research papers touch neighbouring
      concepts);
    - {b background check tags}: shallow, extremely common concepts
      ("Humans"-like) drawn depth-biased toward the top of the hierarchy.

    The expected association-set size is a parameter; the paper-calibrated
    default targets ≈90. *)

type params = {
  related_per_topic : float;  (** Mean number of related concepts per topic. *)
  background_mean : float;  (** Mean number of background concepts. *)
  background_depth_decay : float;
    (** P(depth d) ∝ decay^d for background concepts; < 1 biases shallow. *)
}

val default_params : params
(** Calibrated so that, on a MeSH-sized hierarchy, the mean association-set
    size is ≈90 (ancestors included). *)

val light_params : params
(** Smaller sets (≈25) for fast tests on small hierarchies. *)

type t

val create :
  ?params:params -> Bionav_mesh.Hierarchy.t -> Bionav_util.Rng.t -> t
(** Precomputes the depth-biased background sampler. *)

val annotate : t -> major_topics:int list -> Bionav_util.Intset.t
(** The full association set for a citation with the given major topics.
    Always contains every major topic and each of its strict ancestors
    except the hierarchy root (the root is implicit). *)

val draw_background : t -> int
(** Expose one background concept draw (for calibration tests). *)
