(** A MEDLINE-like citation record.

    The real system stores PubMed citations; we generate records carrying
    exactly the fields BioNav touches: an identifier (PMID stand-in), display
    metadata for SHOWRESULTS (title, authors, journal, year), free text for
    keyword retrieval, and the associated MeSH concepts (paper §VII: the
    ~90-concept-per-citation PubMed indexing, which includes the ~20 explicit
    MEDLINE annotations). *)

type t = {
  id : int;  (** Dense citation identifier (PMID stand-in). *)
  title : string;
  abstract : string;
  authors : string list;
  journal : string;
  year : int;
  major_topics : int list;
    (** The citation's primary MeSH concepts (MEDLINE-style annotation). *)
  concepts : Bionav_util.Intset.t;
    (** Full concept association set (PubMed-indexing-style: major topics,
        their ancestors, related concepts, and background check tags). *)
  qualified : (int * Bionav_mesh.Qualifiers.t list) list;
    (** Qualifier (subheading) annotations per concept, e.g.
        [(histones, [metabolism; genetics])]. Only concepts of [concepts]
        appear; concepts without qualifiers are omitted. The qualifier-facet
        navigation dimension partitions result sets by these annotations;
        the nbib codec round-trips them. *)
}

val id : t -> int
val concepts : t -> Bionav_util.Intset.t
val summary : t -> string
(** One-line ESummary-style rendering: authors, title, journal, year. *)

val pp : Format.formatter -> t -> unit
