open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy
module Qualifiers = Bionav_mesh.Qualifiers

(* --- writing ----------------------------------------------------------- *)

let wrap_width = 74

(* Emit "TAG - value" with MEDLINE-style continuation lines. *)
let emit_field buf tag value =
  let words = String.split_on_char ' ' value in
  let prefix = Printf.sprintf "%-4s- " tag in
  let continuation = String.make 6 ' ' in
  let line = Buffer.create 80 in
  Buffer.add_string line prefix;
  let col = ref (String.length prefix) in
  List.iteri
    (fun i word ->
      let extra = String.length word + if i = 0 then 0 else 1 in
      if i > 0 && !col + extra > wrap_width then begin
        Buffer.add_buffer buf line;
        Buffer.add_char buf '\n';
        Buffer.clear line;
        Buffer.add_string line continuation;
        col := String.length continuation
      end
      else if i > 0 then begin
        Buffer.add_char line ' ';
        incr col
      end;
      Buffer.add_string line word;
      col := !col + String.length word)
    words;
  Buffer.add_buffer buf line;
  Buffer.add_char buf '\n'

let citation_to_string hierarchy (c : Citation.t) =
  let buf = Buffer.create 512 in
  emit_field buf "PMID" (string_of_int c.Citation.id);
  emit_field buf "TI" c.Citation.title;
  emit_field buf "AB" c.Citation.abstract;
  List.iter (fun a -> emit_field buf "AU" a) c.Citation.authors;
  emit_field buf "JT" c.Citation.journal;
  emit_field buf "DP" (string_of_int c.Citation.year);
  Intset.iter
    (fun concept ->
      let star = if List.mem concept c.Citation.major_topics then "*" else "" in
      let qualifiers =
        match List.assoc_opt concept c.Citation.qualified with
        | None -> ""
        | Some qs -> String.concat "" (List.map (fun q -> "/" ^ Qualifiers.name q) qs)
      in
      emit_field buf "MH" (star ^ Hierarchy.label hierarchy concept ^ qualifiers))
    (Citation.concepts c);
  Buffer.contents buf

let to_string medline =
  let hierarchy = Medline.hierarchy medline in
  String.concat "\n"
    (Array.to_list (Array.map (citation_to_string hierarchy) (Medline.citations medline)))

(* --- parsing ----------------------------------------------------------- *)

type raw_field = { tag : string; value : string }

let citation_of_record ?(on_unknown_mh = `Fail) ~hierarchy ~id fields =
  let title = ref "" and abstract = ref "" and journal = ref "" and year = ref 1900 in
  let authors = ref [] and majors = ref [] and concepts = ref [] in
  let qualified = ref [] in
  List.iter
    (fun f ->
      match f.tag with
      | "PMID" -> ()
      | "TI" -> title := f.value
      | "AB" -> abstract := f.value
      | "AU" -> authors := f.value :: !authors
      | "JT" -> journal := f.value
      | "DP" -> (
          (* MEDLINE dates may be "2003 Jun"; the leading year suffices. *)
          match String.split_on_char ' ' f.value with
          | y :: _ -> (
              match int_of_string_opt y with
              | Some v -> year := v
              | None -> invalid_arg (Printf.sprintf "Nbib: bad DP value %S" f.value))
          | [] -> ())
      | "MH" -> (
          let is_major = String.length f.value > 0 && f.value.[0] = '*' in
          let value =
            if is_major then String.sub f.value 1 (String.length f.value - 1) else f.value
          in
          (* "Histones/metabolism/genetics": slash-separated qualifiers. *)
          let label, qualifier_names =
            match String.split_on_char '/' value with
            | label :: qs -> (label, qs)
            | [] -> (value, [])
          in
          match Hierarchy.find_by_label hierarchy label with
          | Some concept ->
              concepts := concept :: !concepts;
              if is_major then majors := concept :: !majors;
              let qs =
                List.filter_map
                  (fun qname ->
                    match Qualifiers.find_by_name qname with
                    | Some q -> Some q
                    | None ->
                        invalid_arg (Printf.sprintf "Nbib: unknown qualifier %S" qname))
                  qualifier_names
              in
              if qs <> [] then qualified := (concept, qs) :: !qualified
          | None -> (
              match on_unknown_mh with
              | `Skip -> ()
              | `Fail -> invalid_arg (Printf.sprintf "Nbib: unknown MeSH heading %S" label)))
      | _ -> ())
    fields;
  let concepts = Intset.of_list !concepts in
  let major_topics =
    match List.sort_uniq Int.compare !majors with
    | [] -> ( match Intset.elements concepts with c :: _ -> [ c ] | [] -> [])
    | ms -> ms
  in
  {
    Citation.id;
    title = !title;
    abstract = !abstract;
    authors = List.rev !authors;
    journal = !journal;
    year = !year;
    major_topics;
    concepts;
    qualified = List.rev !qualified;
  }

(* The streaming core: fold physical lines into logical fields
   (continuations start with a space), flush a record at each PMID line
   and at end of input, and hand each completed citation to [f]. One
   record of parser state is live at a time, so memory is bounded by the
   largest record, not the input. Citation ids are assigned densely in
   record order. *)
let fold_line_seq ?on_unknown_mh ~hierarchy lines ~init ~f =
  let acc = ref init in
  let next_id = ref 0 in
  let fields = ref [] (* current record, reversed *) in
  let field = ref None (* field still accepting continuation lines *) in
  let seen_record = ref false in
  let flush_field () =
    match !field with
    | None -> ()
    | Some fl ->
        fields := { fl with value = String.trim fl.value } :: !fields;
        field := None
  in
  let flush_record () =
    flush_field ();
    match List.rev !fields with
    | [] -> ()
    | fs ->
        let c = citation_of_record ?on_unknown_mh ~hierarchy ~id:!next_id fs in
        incr next_id;
        fields := [];
        acc := f !acc c
  in
  Seq.iter
    (fun line ->
      if String.length line > 0 && line.[0] = ' ' then (
        match !field with
        | Some fl -> field := Some { fl with value = fl.value ^ " " ^ String.trim line }
        | None -> ())
      else if String.trim line = "" then flush_field ()
      else
        match String.index_opt line '-' with
        | Some k when k <= 5 ->
            let tag = String.trim (String.sub line 0 k) in
            let value = String.sub line (k + 1) (String.length line - k - 1) in
            if tag = "PMID" then begin
              flush_record ();
              seen_record := true;
              field := Some { tag; value }
            end
            else begin
              if not !seen_record then
                invalid_arg (Printf.sprintf "Nbib: field %S before the first PMID" tag);
              flush_field ();
              field := Some { tag; value }
            end
        | Some _ | None -> invalid_arg (Printf.sprintf "Nbib: malformed line %S" line))
    lines;
  flush_record ();
  (!acc, !next_id)

let lines_of_channel ic =
  let rec next () =
    match In_channel.input_line ic with
    | Some line -> Seq.Cons (line, next)
    | None -> Seq.Nil
  in
  next

let fold_channel ?on_unknown_mh ~hierarchy ic ~init ~f =
  fst (fold_line_seq ?on_unknown_mh ~hierarchy (lines_of_channel ic) ~init ~f)

let fold_file ?on_unknown_mh ~hierarchy path ~init ~f =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> fold_channel ?on_unknown_mh ~hierarchy ic ~init ~f)

let collect ?on_unknown_mh ~hierarchy lines =
  let rev_citations, n =
    fold_line_seq ?on_unknown_mh ~hierarchy lines ~init:[] ~f:(fun acc c -> c :: acc)
  in
  if n = 0 then invalid_arg "Nbib.of_string: no records";
  Medline.make hierarchy (Array.of_list (List.rev rev_citations))

let of_string ?on_unknown_mh ~hierarchy text =
  collect ?on_unknown_mh ~hierarchy (List.to_seq (String.split_on_char '\n' text))

let save medline path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string medline))

let load ?on_unknown_mh ~hierarchy path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (* Line-at-a-time off the channel: no whole-file slurp. The citations
       still accumulate here because a [Medline.t] is the fully resident
       corpus; bulk ingest uses {!fold_file} and never collects. *)
    (fun () -> collect ?on_unknown_mh ~hierarchy (lines_of_channel ic))
