open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy

type t = {
  hierarchy : Hierarchy.t;
  citations : Citation.t array;
  postings : Intset.t array;
}

let make hierarchy citations =
  Array.iteri
    (fun i c ->
      if Citation.id c <> i then
        invalid_arg (Printf.sprintf "Medline.make: citation at index %d has id %d" i (Citation.id c)))
    citations;
  let n_concepts = Hierarchy.size hierarchy in
  let buckets = Array.make n_concepts [] in
  (* Citations are scanned in increasing id order, so each bucket is built
     already sorted (descending, reversed once at the end). *)
  Array.iter
    (fun c ->
      let id = Citation.id c in
      Intset.iter
        (fun concept ->
          if concept < 0 || concept >= n_concepts then
            invalid_arg (Printf.sprintf "Medline.make: citation %d references concept %d" id concept);
          buckets.(concept) <- id :: buckets.(concept))
        (Citation.concepts c))
    citations;
  let postings =
    Array.map
      (fun bucket ->
        Intset.of_sorted_array_unchecked (Array.of_list (List.rev bucket)))
      buckets
  in
  { hierarchy; citations; postings }

let hierarchy t = t.hierarchy
let size t = Array.length t.citations
let citation t i = t.citations.(i)
let citations t = t.citations
let postings t concept = t.postings.(concept)
let postings_in arena t concept = Docset.of_intset_in arena t.postings.(concept)
let iter_postings t concept f = Intset.iter f t.postings.(concept)
let iter_citation_concepts t id f = Intset.iter f (Citation.concepts t.citations.(id))
let concept_count t concept = Intset.cardinal t.postings.(concept)

let mean_annotations t =
  if size t = 0 then 0.
  else
    let total =
      Array.fold_left (fun acc c -> acc + Intset.cardinal (Citation.concepts c)) 0 t.citations
    in
    float_of_int total /. float_of_int (size t)

let concepts_with_citations t =
  Array.fold_left (fun acc p -> if Intset.is_empty p then acc else acc + 1) 0 t.postings
