(** Corpus calibration: quantitative checks that the synthetic substrate has
    the statistics the paper's evaluation depends on.

    DESIGN.md's substitution table claims the synthetic MeSH/MEDLINE
    reproduce the structural properties of the real ones; this module
    computes those properties so the claim is measurable (and is exercised
    by `bench calibration` and by tests rather than asserted in prose). *)

type report = {
  n_concepts : int;
  hierarchy_height : int;
  hierarchy_max_width : int;
  top_level_subtrees : int;
  n_citations : int;
  mean_annotations : float;  (** Paper: ≈90 per citation (PubMed indexing). *)
  median_annotations : float;
  mean_major_topics : float;  (** Paper: ≈20 explicit MEDLINE annotations
                                  (we model 1-3 majors + closure). *)
  concepts_with_citations : int;
  singleton_concepts : int;  (** Concepts with exactly one citation. *)
  gini_citation_counts : float;
      (** Inequality of per-concept citation counts in [0, 1]; real
          literature concentration is high (≈0.9). *)
  depth_mean_annotation : float;
      (** Mean hierarchy depth over all (citation, concept) associations;
          shallow-biased in real indexing because of check tags and
          ancestor closure. *)
}

val compute : Medline.t -> report
(** One pass over the corpus; cost O(total associations). *)

val pp : Format.formatter -> report -> unit

val within_paper_bands : report -> (string * bool) list
(** Named checks against the calibration bands derived from the paper and
    MeSH/MEDLINE statistics (height ≈ 11, annotations within 40-120, strong
    concentration, etc.); each pair is (check name, passed). *)
