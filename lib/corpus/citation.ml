type t = {
  id : int;
  title : string;
  abstract : string;
  authors : string list;
  journal : string;
  year : int;
  major_topics : int list;
  concepts : Bionav_util.Intset.t;
  qualified : (int * Bionav_mesh.Qualifiers.t list) list;
}

let id t = t.id
let concepts t = t.concepts

let summary t =
  let authors =
    match t.authors with
    | [] -> "Anonymous"
    | [ a ] -> a
    | a :: _ -> a ^ " et al."
  in
  Printf.sprintf "%s. %s %s (%d)" authors t.title t.journal t.year

let pp ppf t = Format.fprintf ppf "[%d] %s" t.id (summary t)
