(** Generation of citation text (titles, abstracts, author names, journals).

    Keyword retrieval in the reproduction works over this generated text, so
    the generator guarantees the property the evaluation needs: a citation's
    title and abstract contain the tokens of its major-topic concept labels,
    which makes topic labels usable as search keywords (the way "prothymosin"
    retrieves prothymosin papers on PubMed). Background words are drawn from
    a Zipf-weighted scientific filler vocabulary. *)

type t

val create : Bionav_util.Rng.t -> t

val title : t -> topic_labels:string list -> string
(** A title embedding every topic label. *)

val abstract : t -> topic_labels:string list -> string
(** 60-140 words; repeats topic labels a few times amid filler. *)

val authors : t -> string list
(** 1-6 plausible author names. *)

val journal : t -> string
val year : t -> int
(** Between 1975 and 2008 (the paper's MEDLINE snapshot era), skewed recent. *)
