open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy

type params = {
  related_per_topic : float;
  background_mean : float;
  background_depth_decay : float;
}

let default_params =
  { related_per_topic = 6.0; background_mean = 45.0; background_depth_decay = 0.55 }

let light_params =
  { related_per_topic = 3.0; background_mean = 10.0; background_depth_decay = 0.6 }

type t = {
  params : params;
  hierarchy : Hierarchy.t;
  rng : Rng.t;
  by_depth : int array array;  (** Non-root nodes grouped by depth (index 1..). *)
  depth_cdf : float array;  (** Cumulative background-depth distribution. *)
}

let create ?(params = default_params) hierarchy rng =
  let h = Hierarchy.height hierarchy in
  let by_depth =
    Array.init (h + 1) (fun d ->
        if d = 0 then [||] else Array.of_list (Hierarchy.nodes_at_depth hierarchy d))
  in
  let weights =
    Array.init (h + 1) (fun d ->
        if d = 0 || Array.length by_depth.(d) = 0 then 0.
        else Float.pow params.background_depth_decay (float_of_int d))
  in
  let total = Array.fold_left ( +. ) 0. weights in
  let depth_cdf = Array.make (h + 1) 0. in
  let acc = ref 0. in
  for d = 0 to h do
    acc := !acc +. (weights.(d) /. total);
    depth_cdf.(d) <- !acc
  done;
  { params; hierarchy; rng; by_depth; depth_cdf }

let draw_background t =
  let u = Rng.float t.rng 1.0 in
  let d = ref 0 in
  while !d < Array.length t.depth_cdf - 1 && t.depth_cdf.(!d) < u do
    incr d
  done;
  (* Guard against numerically empty depths. *)
  let d = if Array.length t.by_depth.(!d) = 0 then 1 else !d in
  Rng.choice t.rng t.by_depth.(d)

(* Siblings and uncle-level concepts near a topic. *)
let related_candidates t topic =
  let h = t.hierarchy in
  let parent = Hierarchy.parent h topic in
  if parent = -1 then []
  else begin
    let siblings = List.filter (fun c -> c <> topic) (Hierarchy.children h parent) in
    let children = Hierarchy.children h topic in
    let uncles =
      let gp = Hierarchy.parent h parent in
      if gp = -1 then [] else List.filter (fun c -> c <> parent) (Hierarchy.children h gp)
    in
    siblings @ children @ uncles
  end

let poissonish rng mean =
  (* Geometric with matching mean: adequate dispersion for this model. *)
  if mean <= 0. then 0 else Rng.geometric rng (1. /. (1. +. mean))

let annotate t ~major_topics =
  let h = t.hierarchy in
  let root = Hierarchy.root h in
  let acc = ref [] in
  let add c = if c <> root then acc := c :: !acc in
  List.iter
    (fun topic ->
      add topic;
      List.iter add (Hierarchy.ancestors h topic);
      let candidates = Array.of_list (related_candidates t topic) in
      if Array.length candidates > 0 then begin
        let k = poissonish t.rng t.params.related_per_topic in
        let chosen = Rng.sample t.rng k candidates in
        Array.iter
          (fun c ->
            add c;
            (* Related concepts also pull in their ancestor chains, like a
               genuine PubMed association would. *)
            List.iter add (Hierarchy.ancestors h c))
          chosen
      end)
    major_topics;
  let n_background = poissonish t.rng t.params.background_mean in
  for _ = 1 to n_background do
    let c = draw_background t in
    add c;
    List.iter add (Hierarchy.ancestors h c)
  done;
  Intset.of_list !acc
