(** Corpus generation: assembles citations from the topic model, the text
    generator and the annotator.

    Research literature clusters around topics: many citations share a small
    set of popular concepts and a long tail of concepts has few citations.
    The generator draws each citation's 1-3 major topics from a Zipf
    distribution over mid-to-deep concepts, then synthesizes text embedding
    the topic labels and the full association set via {!Annotator}.

    {b Seeded groups} let the evaluation workload plant literatures the way
    real ones look to PubMed. A group is a set of citations about a small
    cluster of related concepts (the "lines of research" the paper describes
    for prothymosin), optionally tagged with a free-text token — a
    substance/gene name like "prothymosin" that is {e not itself a concept
    label}. Searching for the tag retrieves exactly the group, while the
    cluster concepts also occur in other (untagged) citations, so no concept
    has query selectivity ≈ 1 — matching the paper's workload where targets
    like "Histones" have [L(n) = 40] against [LT(n) = 20,691]. *)

type seeded_group = {
  tag : string option;
      (** Token(s) injected into each citation's title and abstract; [None]
          plants topical mass without a retrieval handle. *)
  cluster : int list;  (** The research-line concepts (non-root). *)
  count : int;  (** Number of citations in the group. *)
  topics_per_citation : int * int;  (** Min/max cluster concepts per citation. *)
}

type params = {
  n_citations : int;
  topics_min_depth : int;  (** Major topics are at least this deep. *)
  topic_zipf_exponent : float;
  annotator_params : Annotator.params;
  seeded_groups : seeded_group list;
      (** Groups are carved out of [n_citations]; the rest is organic. *)
}

val default_params : params
(** 60k citations, paper-calibrated annotator, no seeded groups. *)

val small_params : params
(** 1.5k citations, light annotator; for tests and examples. *)

val generate :
  ?params:params -> seed:int -> Bionav_mesh.Hierarchy.t -> Medline.t
(** Deterministic in [seed]. @raise Invalid_argument if a cluster concept is
    out of range, a group is malformed, or group counts exceed
    [n_citations]. *)

val iter :
  ?params:params ->
  seed:int ->
  Bionav_mesh.Hierarchy.t ->
  f:(Citation.t -> unit) ->
  unit
(** Stream the same corpus {!generate} builds, one citation at a time in id
    order, without materializing the array — the shape segment-store bulk
    ingest consumes. [iter ~params ~seed h ~f] visits exactly the citations
    of [generate ~params ~seed h]. *)
