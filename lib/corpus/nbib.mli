(** Reading and writing citations in the MEDLINE "nbib" text format.

    PubMed exports citations as tagged flat records:

    {v
      PMID- 12345
      TI  - Prothymosin alpha in apoptosis.
      AB  - The abstract text, possibly wrapped
            onto continuation lines.
      AU  - Smith J
      JT  - J Biol Chem
      DP  - 2003
      MH  - Histones
      MH  - *Apoptosis
    v}

    [MH] lines carry the MeSH annotations ([*] marks a major topic); on
    import they are resolved against a hierarchy by exact label. This gives
    the repository a bridge to real exported MEDLINE data: citations written
    by {!to_string} round-trip, and hand-made nbib files can be imported as
    a corpus. Citation ids are renumbered densely in record order on import
    (the original PMID is not preserved). *)

val citation_to_string : Bionav_mesh.Hierarchy.t -> Citation.t -> string
(** One record, fields in canonical order, 80-column wrapped values. *)

val to_string : Medline.t -> string
(** All records, blank-line separated. *)

val of_string :
  ?on_unknown_mh:[ `Skip | `Fail ] ->
  hierarchy:Bionav_mesh.Hierarchy.t ->
  string ->
  Medline.t
(** Parse records (separated by [PMID-] lines). [on_unknown_mh] controls
    what happens to an MH label absent from the hierarchy (default [`Fail]).
    Citations keep ancestor closure of their annotations implicit — only
    the listed labels are attached, exactly as in a real MEDLINE export.
    @raise Invalid_argument on malformed records. *)

val save : Medline.t -> string -> unit

val load :
  ?on_unknown_mh:[ `Skip | `Fail ] ->
  hierarchy:Bionav_mesh.Hierarchy.t ->
  string ->
  Medline.t
