(** Reading and writing citations in the MEDLINE "nbib" text format.

    PubMed exports citations as tagged flat records:

    {v
      PMID- 12345
      TI  - Prothymosin alpha in apoptosis.
      AB  - The abstract text, possibly wrapped
            onto continuation lines.
      AU  - Smith J
      JT  - J Biol Chem
      DP  - 2003
      MH  - Histones
      MH  - *Apoptosis
    v}

    [MH] lines carry the MeSH annotations ([*] marks a major topic); on
    import they are resolved against a hierarchy by exact label. This gives
    the repository a bridge to real exported MEDLINE data: citations written
    by {!to_string} round-trip, and hand-made nbib files can be imported as
    a corpus. Citation ids are renumbered densely in record order on import
    (the original PMID is not preserved). *)

val citation_to_string : Bionav_mesh.Hierarchy.t -> Citation.t -> string
(** One record, fields in canonical order, 80-column wrapped values. *)

val to_string : Medline.t -> string
(** All records, blank-line separated. *)

val of_string :
  ?on_unknown_mh:[ `Skip | `Fail ] ->
  hierarchy:Bionav_mesh.Hierarchy.t ->
  string ->
  Medline.t
(** Parse records (separated by [PMID-] lines). [on_unknown_mh] controls
    what happens to an MH label absent from the hierarchy (default [`Fail]).
    Citations keep ancestor closure of their annotations implicit — only
    the listed labels are attached, exactly as in a real MEDLINE export.
    @raise Invalid_argument on malformed records. *)

val save : Medline.t -> string -> unit

val load :
  ?on_unknown_mh:[ `Skip | `Fail ] ->
  hierarchy:Bionav_mesh.Hierarchy.t ->
  string ->
  Medline.t
(** Like {!of_string} but reading the file line-at-a-time (no whole-file
    slurp); the resulting corpus is still fully resident. *)

val fold_file :
  ?on_unknown_mh:[ `Skip | `Fail ] ->
  hierarchy:Bionav_mesh.Hierarchy.t ->
  string ->
  init:'a ->
  f:('a -> Citation.t -> 'a) ->
  'a
(** Stream the file record-at-a-time: each completed citation (ids dense
    in record order) is folded into [f] and then dropped, so memory is
    bounded by the largest single record — the parser the segment-store
    bulk ingest drives. @raise Invalid_argument on malformed records. *)

val fold_channel :
  ?on_unknown_mh:[ `Skip | `Fail ] ->
  hierarchy:Bionav_mesh.Hierarchy.t ->
  in_channel ->
  init:'a ->
  f:('a -> Citation.t -> 'a) ->
  'a
(** {!fold_file} over an already-open channel (reads to EOF). *)
