open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy
module Qualifiers = Bionav_mesh.Qualifiers

type seeded_group = {
  tag : string option;
  cluster : int list;
  count : int;
  topics_per_citation : int * int;
}

type params = {
  n_citations : int;
  topics_min_depth : int;
  topic_zipf_exponent : float;
  annotator_params : Annotator.params;
  seeded_groups : seeded_group list;
}

let default_params =
  {
    n_citations = 60_000;
    topics_min_depth = 2;
    topic_zipf_exponent = 1.05;
    annotator_params = Annotator.default_params;
    seeded_groups = [];
  }

let small_params =
  {
    n_citations = 1_500;
    topics_min_depth = 2;
    topic_zipf_exponent = 1.0;
    annotator_params = Annotator.light_params;
    seeded_groups = [];
  }

(* Zipf-popularity assignment over eligible topic concepts: rank order is a
   random permutation, so popularity is independent of node ids. *)
type topic_model = { eligible : int array; dist : Zipf.t }

let topic_model p rng hierarchy =
  let eligible =
    Array.of_list
      (List.filter
         (fun c -> Hierarchy.depth hierarchy c >= p.topics_min_depth)
         (List.init (Hierarchy.size hierarchy) Fun.id))
  in
  if Array.length eligible = 0 then
    invalid_arg "Generator: hierarchy has no concepts deep enough for topics";
  Rng.shuffle rng eligible;
  { eligible; dist = Zipf.create ~exponent:p.topic_zipf_exponent (Array.length eligible) }

let draw_topic tm rng = tm.eligible.(Zipf.draw tm.dist rng)

let validate_groups p hierarchy =
  let total =
    List.fold_left
      (fun acc g ->
        if g.count < 0 then invalid_arg "Generator: negative group count";
        let lo, hi = g.topics_per_citation in
        if lo < 1 || hi < lo then invalid_arg "Generator: bad topics_per_citation bounds";
        if g.cluster = [] then invalid_arg "Generator: empty cluster";
        List.iter
          (fun c ->
            if c <= 0 || c >= Hierarchy.size hierarchy then
              invalid_arg (Printf.sprintf "Generator: cluster concept %d out of range" c))
          g.cluster;
        acc + g.count)
      0 p.seeded_groups
  in
  if total > p.n_citations then invalid_arg "Generator: seeded group counts exceed corpus size"

(* Scatter group memberships over distinct random citation slots. *)
let group_assignment p rng =
  let slots = Array.make p.n_citations None in
  let order = Array.init p.n_citations Fun.id in
  Rng.shuffle rng order;
  let next = ref 0 in
  List.iter
    (fun g ->
      for _ = 1 to g.count do
        slots.(order.(!next)) <- Some g;
        incr next
      done)
    p.seeded_groups;
  slots

let organic_topic_count rng =
  (* 1 topic: 50%, 2 topics: 35%, 3 topics: 15%. *)
  let u = Rng.float rng 1.0 in
  if u < 0.5 then 1 else if u < 0.85 then 2 else 3

let iter ?(params = default_params) ~seed hierarchy ~f =
  let p = params in
  validate_groups p hierarchy;
  let rng = Rng.create seed in
  let text = Text_gen.create (Rng.split rng) in
  let annotator = Annotator.create ~params:p.annotator_params hierarchy (Rng.split rng) in
  let tm = topic_model p (Rng.split rng) hierarchy in
  (* With no seeded groups the assignment is all-None; skip the two
     O(n_citations) arrays so streaming generation is O(1) resident in
     the corpus size. The split is taken either way, so the parent rng's
     draw stream — and therefore every citation — is byte-identical to
     the grouped path's. *)
  let groups =
    let grng = Rng.split rng in
    if p.seeded_groups = [] then fun _ -> None
    else begin
      let slots = group_assignment p grng in
      fun id -> slots.(id)
    end
  in
  for id = 0 to p.n_citations - 1 do
    f
      ( let major_topics, tag =
          match groups id with
          | None ->
              let n = organic_topic_count rng in
              (List.sort_uniq Int.compare (List.init n (fun _ -> draw_topic tm rng)), None)
          | Some g ->
              let lo, hi = g.topics_per_citation in
              let cluster = Array.of_list g.cluster in
              let k = min (Rng.int_in rng lo hi) (Array.length cluster) in
              let from_cluster = Array.to_list (Rng.sample rng k cluster) in
              (* Seeded citations keep a foot in the organic literature. *)
              let extra = if Rng.bernoulli rng 0.3 then [ draw_topic tm rng ] else [] in
              (List.sort_uniq Int.compare (from_cluster @ extra), g.tag)
        in
        let topic_labels = List.map (Hierarchy.label hierarchy) major_topics in
        let embedded = match tag with None -> topic_labels | Some t -> t :: topic_labels in
        let concepts = Annotator.annotate annotator ~major_topics in
        (* MEDLINE-style subheadings on the major topics: most carry one or
           two qualifiers ("Histones/metabolism"). *)
        let qualified =
          List.filter_map
            (fun topic ->
              if Rng.bernoulli rng 0.6 then begin
                let k = Rng.int_in rng 1 2 in
                let qs =
                  List.sort_uniq Int.compare
                    (List.init k (fun _ -> Rng.int rng Qualifiers.count))
                in
                Some (topic, qs)
              end
              else None)
            major_topics
        in
        {
          Citation.id;
          title = Text_gen.title text ~topic_labels:embedded;
          abstract = Text_gen.abstract text ~topic_labels:embedded;
          authors = Text_gen.authors text;
          journal = Text_gen.journal text;
          year = Text_gen.year text;
          major_topics;
          concepts;
          qualified;
        } )
  done

let generate ?(params = default_params) ~seed hierarchy =
  let acc = ref [] in
  iter ~params ~seed hierarchy ~f:(fun c -> acc := c :: !acc);
  Medline.make hierarchy (Array.of_list (List.rev !acc))
