(** The corpus container: a hierarchy plus a set of citations, with the
    per-concept posting lists BioNav's navigation-tree construction needs.

    This is the in-memory stand-in for the MEDLINE database. *)

type t

val make : Bionav_mesh.Hierarchy.t -> Citation.t array -> t
(** Builds posting lists (concept -> citation set) eagerly. Citation ids
    must equal their array index. @raise Invalid_argument otherwise. *)

val hierarchy : t -> Bionav_mesh.Hierarchy.t
val size : t -> int
(** Number of citations. *)

val citation : t -> int -> Citation.t
val citations : t -> Citation.t array
(** The underlying array; treat as read-only. *)

val postings : t -> int -> Bionav_util.Intset.t
(** [postings t concept] = set of citation ids associated with [concept]. *)

val postings_in : Bionav_util.Docset_arena.t -> t -> int -> Bionav_util.Docset.t
(** {!postings} interned into a caller-supplied arena — the
    {!Bionav_util.Docset} face of the corpus boundary. *)

val iter_postings : t -> int -> (int -> unit) -> unit
(** Visit the concept's citations in increasing id order without handing
    out the underlying set. *)

val iter_citation_concepts : t -> int -> (int -> unit) -> unit
(** Visit a citation's annotation concepts in increasing id order — the
    streaming shape bulk ingest consumes. *)

val concept_count : t -> int -> int
(** [concept_count t concept] = |postings| — the corpus-wide citation count
    [LT(n)] used by the EXPLORE-probability estimate. *)

val mean_annotations : t -> float
(** Average association-set size per citation (calibration metric; the paper
    reports ≈90 for PubMed indexing). *)

val concepts_with_citations : t -> int
(** Number of concepts with a non-empty posting list. *)
