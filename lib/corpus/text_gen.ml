open Bionav_util

type t = { rng : Rng.t; vocab_dist : Zipf.t }

let filler_vocab =
  [|
    "study"; "analysis"; "results"; "expression"; "cells"; "protein"; "gene";
    "role"; "effect"; "activity"; "binding"; "levels"; "response"; "function";
    "pathway"; "mechanism"; "treatment"; "patients"; "clinical"; "human";
    "mouse"; "rat"; "vitro"; "vivo"; "induced"; "mediated"; "dependent";
    "associated"; "increased"; "decreased"; "significant"; "observed";
    "suggest"; "demonstrate"; "evidence"; "novel"; "potential"; "specific";
    "regulation"; "signaling"; "receptor"; "kinase"; "transcription";
    "apoptosis"; "proliferation"; "differentiation"; "inhibition";
    "activation"; "expression"; "mutation"; "polymorphism"; "sequence";
    "domain"; "complex"; "interaction"; "structure"; "membrane"; "nuclear";
    "cytoplasmic"; "tissue"; "tumor"; "cancer"; "disease"; "therapy";
    "dose"; "assay"; "model"; "method"; "approach"; "data"; "group";
    "control"; "compared"; "versus"; "however"; "furthermore"; "these";
    "findings"; "indicate"; "important"; "critical"; "essential"; "required";
  |]

let journals =
  [|
    "J Biol Chem"; "Proc Natl Acad Sci USA"; "Nature"; "Science"; "Cell";
    "J Clin Invest"; "Cancer Res"; "Mol Cell Biol"; "Nucleic Acids Res";
    "Biochemistry"; "FEBS Lett"; "Endocrinology"; "J Immunol"; "Blood";
    "Am J Physiol"; "Brain Res"; "J Neurosci"; "Genetics"; "Lancet";
    "N Engl J Med";
  |]

let surnames =
  [|
    "Smith"; "Chen"; "Garcia"; "Kim"; "Tanaka"; "Muller"; "Ivanov"; "Rossi";
    "Kumar"; "Johnson"; "Lee"; "Wang"; "Brown"; "Davis"; "Martinez"; "Sato";
    "Nguyen"; "Patel"; "Silva"; "Kowalski"; "Hansen"; "Dubois"; "Novak";
    "Petropoulos"; "Hristidis"; "Kashyap"; "Tavoulari";
  |]

let initials = [| "A"; "B"; "C"; "D"; "E"; "F"; "G"; "H"; "J"; "K"; "L"; "M"; "N"; "P"; "R"; "S"; "T"; "V"; "W"; "Y" |]

let create rng = { rng; vocab_dist = Zipf.create ~exponent:1.05 (Array.length filler_vocab) }

let filler_word t = filler_vocab.(Zipf.draw t.vocab_dist t.rng)

let sentence t ~words ~embed =
  let buf = Buffer.create 128 in
  let n_embed = List.length embed in
  let embed_positions =
    (* Spread embedded phrases roughly evenly through the sentence. *)
    List.mapi (fun i _ -> (i * words) / max 1 n_embed) embed
  in
  let remaining = ref (List.combine embed_positions embed) in
  for w = 0 to words - 1 do
    (match !remaining with
    | (pos, phrase) :: rest when pos = w ->
        Buffer.add_string buf phrase;
        Buffer.add_char buf ' ';
        remaining := rest
    | _ -> ());
    Buffer.add_string buf (filler_word t);
    if w < words - 1 then Buffer.add_char buf ' '
  done;
  (* Flush any phrases not yet emitted (can happen when words < n_embed). *)
  List.iter
    (fun (_, phrase) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf phrase)
    !remaining;
  Buffer.contents buf

let title t ~topic_labels =
  let words = Rng.int_in t.rng 6 12 in
  String.capitalize_ascii (sentence t ~words ~embed:topic_labels)

let abstract t ~topic_labels =
  let n_sentences = Rng.int_in t.rng 4 8 in
  let sentences =
    List.init n_sentences (fun i ->
        let embed =
          (* Topic labels recur in roughly half the sentences. *)
          if i = 0 || Rng.bernoulli t.rng 0.5 then topic_labels else []
        in
        let words = Rng.int_in t.rng 12 22 in
        String.capitalize_ascii (sentence t ~words ~embed) ^ ".")
  in
  String.concat " " sentences

let authors t =
  let n = Rng.int_in t.rng 1 6 in
  List.init n (fun _ ->
      Printf.sprintf "%s %s%s" (Rng.choice t.rng surnames) (Rng.choice t.rng initials)
        (if Rng.bernoulli t.rng 0.5 then Rng.choice t.rng initials else ""))

let journal t = Rng.choice t.rng journals

let year t =
  (* Quadratic skew toward recent years. *)
  let u = Rng.float t.rng 1.0 in
  let span = float_of_int (2008 - 1975) in
  1975 + int_of_float (span *. sqrt u)
