(** Umbrella library: one [(libraries bionav)] entry pulls in the whole
    system under short aliases. *)

module Util = Bionav_util
module Mesh = Bionav_mesh
module Corpus = Bionav_corpus
module Store = Bionav_store
module Search = Bionav_search
module Core = Bionav_core
module Prefetch = Bionav_prefetch
module Engine = Bionav_engine
module Npc = Bionav_npc
module Workload = Bionav_workload
module Web = Bionav_web
