open Bionav_util
open Bionav_core
module Eutils = Bionav_search.Eutils
module Nav_snapshot = Bionav_search.Nav_snapshot
module Prefetch = Bionav_prefetch.Prefetch
module Speculator = Bionav_prefetch.Speculator
module Warmer = Bionav_prefetch.Warmer
module Snapshot = Bionav_store.Snapshot
module Clock = Bionav_resilience.Clock
module Adaptive = Bionav_adaptive.Adaptive
module Guard = Bionav_resilience.Guard
module Deadline = Bionav_resilience.Deadline
module Chaos = Bionav_resilience.Chaos

exception Backend_unavailable of string

type config = {
  max_sessions : int;
  session_ttl_ms : float option;
  cache_capacity : int;
  prefetch : Prefetch.config option;
  clock : Clock.t;
  expand_budget_ms : float option;
  resilience : Guard.config option;
  shards : int;
  segstore : Bionav_segstore.Store.spec option;
  adaptive : Adaptive.config option;
}

let default_config =
  {
    max_sessions = 256;
    session_ttl_ms = None;
    cache_capacity = 32;
    prefetch = None;
    clock = Clock.real;
    expand_budget_ms = None;
    resilience = Some Guard.default_config;
    shards = 1;
    segstore = None;
    adaptive = None;
  }

(* A session is pinned to the shard that created it ([home]): its
   navigation tree came out of that shard's cache and the tree's arena is
   mutated on every expand, so all mutation happens under [home.lock].
   Reads go through [snapshot]: an immutable epoch-versioned view
   republished (RCU-style) after every mutation, consumed with
   [Atomic.get] and no lock (DESIGN.md §12). *)
type session = {
  sid : string;
  query : string;
  nav : Nav_tree.t;
  navigation : Navigation.t;
  home : shard;
  snapshot : Nav_snapshot.t Atomic.t;
  pending_spec : int list Atomic.t;
      (* nodes revealed since the last speculation pass; appended (under
         the shard lock) by the expand observer, drained off-lock *)
  seen_concepts : (int, unit) Hashtbl.t;
      (* concepts revealed to this session but not (yet) engaged with;
         mutated under the shard lock, flushed as IGNORE evidence when
         the session ends *)
  mutable epoch : int;  (* bumped under the shard lock at each publish *)
  mutable tick : int;  (* recency clock value of the last touch *)
  mutable last_use_ms : float;  (* config.clock time of the last touch, for TTLs *)
}

and shard = {
  snum : int;
  lock : Mutex.t;
  lock_owner : int Atomic.t;  (* domain id holding [lock]; -1 when free *)
  swaiters : Metrics.gauge;  (* per-shard lock queue depth *)
  cache : Nav_cache.t;
  sprefetch : Prefetch.t option;
  sguard : Guard.t option;
  sadaptive : Adaptive.t option;  (* engine-wide learned model, shared by all shards *)
  srun_search : string -> Docset.t;
  sessions : (string, session) Hashtbl.t;
  shard_max : int;  (* per-shard session bound *)
  sarena_stats : Docset_arena.stats Atomic.t;
      (* aggregate over this shard's reachable arenas, refreshed on lock
         release so the metrics scrape never takes the lock *)
  mutable sclock : int;
  mutable sevictions : int;
}

type t = {
  config : config;
  database : Bionav_store.Database.t;
  store : Bionav_segstore.Store.t option;
  eutils : Eutils.t;
  search_lock : Mutex.t;  (* confines the inverted index's shared arena *)
  shards : shard array;
  next_sid : int Atomic.t;
  adaptive : Adaptive.t option;
      (* engine-wide (cross-shard) learned probability model; its own
         internal lock makes observes from any shard safe *)
}

let started_counter = Metrics.counter "bionav_sessions_started_total"
let evicted_counter = Metrics.counter "bionav_sessions_evicted_total"
let closed_counter = Metrics.counter "bionav_sessions_closed_total"
let expired_counter = Metrics.counter "bionav_sessions_expired_total"
let live_gauge = Metrics.gauge "bionav_sessions_live"
let lock_acq_counter = Metrics.counter "bionav_shard_lock_acquisitions_total"
let lock_wait_hist = Metrics.histogram "bionav_shard_lock_wait_ms"
let lock_hold_hist = Metrics.histogram "bionav_shard_lock_hold_ms"

(* --- the shard lock ----------------------------------------------------- *)

let zero_arena_stats =
  Docset_arena.
    {
      sets = 0;
      bytes = 0;
      dense = 0;
      sparse = 0;
      intern_requests = 0;
      dedup_hits = 0;
      memo_hits = 0;
    }

let add_arena_stats acc (st : Docset_arena.stats) =
  Docset_arena.
    {
      sets = acc.sets + st.sets;
      bytes = acc.bytes + st.bytes;
      dense = acc.dense + st.dense;
      sparse = acc.sparse + st.sparse;
      intern_requests = acc.intern_requests + st.intern_requests;
      dedup_hits = acc.dedup_hits + st.dedup_hits;
      memo_hits = acc.memo_hits + st.memo_hits;
    }

(* Aggregate stats over the arenas this shard can reach (cached trees +
   live sessions, physically deduplicated). Called under the shard lock. *)
let shard_arena_stats shard =
  let arenas = ref [] in
  let note a = if not (List.memq a !arenas) then arenas := a :: !arenas in
  Nav_cache.fold_trees shard.cache (fun nav () -> note (Nav_tree.arena nav)) ();
  Hashtbl.iter (fun _ s -> note (Nav_tree.arena s.nav)) shard.sessions;
  List.fold_left (fun acc a -> add_arena_stats acc (Docset_arena.stats a)) zero_arena_stats !arenas

(* Every acquisition of a shard lock goes through here: it detects
   same-domain re-entry (the mutexes are non-reentrant, so that would
   deadlock), maintains the wait/hold histograms and the per-shard
   queue-depth gauge, and refreshes the shard's published arena stats on
   the way out. *)
let with_shard shard f =
  let me = Ownership.self_id () in
  if Atomic.get shard.lock_owner = me then
    invalid_arg
      (Printf.sprintf
         "Engine: reentrant use of shard %d's lock from domain %d (run_locked inside \
          run_locked?)"
         shard.snum me);
  Metrics.add shard.swaiters 1.;
  let t0 = Timing.now_ms () in
  Mutex.lock shard.lock;
  let t1 = Timing.now_ms () in
  Metrics.add shard.swaiters (-1.);
  Metrics.observe lock_wait_hist (t1 -. t0);
  Metrics.incr lock_acq_counter;
  Atomic.set shard.lock_owner me;
  let release () =
    Atomic.set shard.sarena_stats (shard_arena_stats shard);
    Atomic.set shard.lock_owner (-1);
    Metrics.observe lock_hold_hist (Timing.now_ms () -. t1);
    Mutex.unlock shard.lock
  in
  match f () with
  | v ->
      release ();
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      release ();
      Printexc.raise_with_backtrace e bt

let create ?(config = default_config) ?chaos ?snapshot ~database ~eutils () =
  if config.max_sessions < 1 then invalid_arg "Engine.create: max_sessions must be >= 1";
  if config.shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  (match config.expand_budget_ms with
  | Some b when b < 0. -> invalid_arg "Engine.create: expand_budget_ms must be >= 0"
  | Some _ | None -> ());
  (* A chaos plan is one stateful fault stream: sharding the engine would
     race the draws and silently skew the plan. Refuse instead of
     silently confining it to shard 0 (which dropped it for every other
     shard's traffic). *)
  (match chaos with
  | Some _ when config.shards > 1 ->
      invalid_arg "Engine.create: a chaos plan requires shards = 1"
  | Some _ | None -> ());
  (* With a segment store configured, associations come off the mapped
     segments and the passed database contributes only its hierarchy. *)
  let store, database =
    match config.segstore with
    | None -> (None, database)
    | Some spec ->
        let st =
          Bionav_segstore.Store.open_dir
            ~config:spec.Bionav_segstore.Store.spec_config
            spec.Bionav_segstore.Store.dir
        in
        let db_citations = Bionav_store.Database.n_citations database in
        if Bionav_segstore.Store.n_citations st <> db_citations then
          invalid_arg
            (Printf.sprintf
               "Engine.create: segment store has %d citations but the database has %d"
               (Bionav_segstore.Store.n_citations st)
               db_citations);
        ( Some st,
          Bionav_segstore.Bridge.database st (Bionav_store.Database.hierarchy database) )
  in
  let search_lock = Mutex.create () in
  let index_arena = Bionav_search.Inverted_index.arena (Eutils.index eutils) in
  let adaptive =
    Option.map
      (fun cfg -> Adaptive.create ~config:cfg ~now_ms:(fun () -> Clock.now_ms config.clock) ())
      config.adaptive
  in
  let make_shard snum =
    let guard =
      match (config.resilience, chaos) with
      | None, None -> None
      | cfg, chaos ->
          let gconfig = Option.value cfg ~default:Guard.default_config in
          Some (Guard.create ?chaos ~config:gconfig ~clock:config.clock ())
    in
    let run_search query =
      (* esearch interns into the process-wide index arena: serialized
         across shards, and the arena is adopted by whichever domain got
         the lock. Only tree-cache misses pay this. *)
      let locked () =
        Mutex.protect search_lock (fun () ->
            Docset_arena.adopt index_arena;
            Eutils.esearch eutils query)
      in
      match guard with
      | None -> locked ()
      | Some g -> (
          match Guard.call g ~op:"esearch" locked with
          | Ok ids -> ids
          | Error e -> raise (Backend_unavailable (Guard.error_message e)))
    in
    let build query = Nav_tree.of_database database (run_search query) in
    {
      snum;
      lock = Mutex.create ();
      lock_owner = Atomic.make (-1);
      swaiters = Metrics.gauge (Printf.sprintf "bionav_shard_lock_waiters_s%d" snum);
      cache = Nav_cache.create ~capacity:config.cache_capacity ~build ();
      sprefetch =
        Option.map (fun pc -> Prefetch.create ~config:pc ~clock:config.clock ()) config.prefetch;
      sguard = guard;
      sadaptive = adaptive;
      srun_search = run_search;
      sessions = Hashtbl.create 64;
      shard_max = max 1 (config.max_sessions / config.shards);
      sarena_stats = Atomic.make zero_arena_stats;
      sclock = 0;
      sevictions = 0;
    }
  in
  let t =
    {
      config;
      database;
      store;
      eutils;
      search_lock;
      shards = Array.init config.shards make_shard;
      next_sid = Atomic.make 0;
      adaptive;
    }
  in
  (match snapshot with
  | None -> ()
  | Some path ->
      let entries = Snapshot.load ~db:database path in
      let n = ref 0 in
      Array.iter
        (fun shard ->
          n :=
            Warmer.apply ~db:database ~trees:shard.cache
              ?plans:(Option.map Prefetch.plans shard.sprefetch)
              ?model:(Option.map Adaptive.model t.adaptive)
              entries)
        t.shards;
      Logs.info (fun m -> m "engine: warm-started %d quer%s from %s" !n
                     (if !n = 1 then "y" else "ies") path));
  t

let eutils t = t.eutils
let config t = t.config
let prefetch t = t.shards.(0).sprefetch
let guard t = t.shards.(0).sguard
let resilience_clock t = t.config.clock
let shard_count t = Array.length t.shards
let segstore t = t.store

let shard_of_sid t sid = t.shards.(Hashtbl.hash sid mod Array.length t.shards)
let adaptive t = t.adaptive

let learn t events =
  match t.adaptive with
  | None -> false
  | Some ad ->
      Adaptive.learn ad events;
      true

(* --- adaptive evidence -------------------------------------------------- *)

let concept_of s node = Nav_tree.concept_id s.nav node

(* The session engaged with [node] (expanded it or listed its results):
   record the evidence and stop counting the concept as merely seen. *)
let note_engaged s observe node =
  match s.home.sadaptive with
  | None -> ()
  | Some ad ->
      let concept = concept_of s node in
      if concept >= 0 then begin
        Hashtbl.remove s.seen_concepts concept;
        observe ad ~concept
      end

let note_revealed s revealed =
  match s.home.sadaptive with
  | None -> ()
  | Some _ ->
      List.iter
        (fun node ->
          let concept = concept_of s node in
          if concept >= 0 then Hashtbl.replace s.seen_concepts concept ())
        revealed

(* The session is over: whatever it was shown and never engaged with is
   IGNORE evidence. Called under the shard lock on every exit path
   (close, LRU eviction, TTL sweep). *)
let flush_ignores s =
  match s.home.sadaptive with
  | None -> ()
  | Some ad ->
      Hashtbl.iter (fun concept () -> Adaptive.observe_ignore ad ~concept) s.seen_concepts;
      Hashtbl.reset s.seen_concepts

(* --- strategies -------------------------------------------------------- *)

let validate_strategy = function
  | Navigation.Static_paged { page_size } when page_size < 1 ->
      Error (Printf.sprintf "page_size must be >= 1 (got %d)" page_size)
  | s -> Ok s

let strategy_of_name ?(page_size = 10) name =
  match name with
  | None | Some "bionav" -> Ok (Navigation.bionav ())
  | Some "static" -> Ok Navigation.Static
  | Some "paged" -> validate_strategy (Navigation.Static_paged { page_size })
  | Some "optimal" -> Ok (Navigation.optimal ())
  | Some s -> Error (Printf.sprintf "unknown strategy %S" s)

(* With learning enabled, cost-model strategies get the engine's current
   learned model — unless the caller pinned a non-default one (an A/B arm
   or an explicit [~params] stays untouched). The session holds the model
   value it started with for its whole life, so its plans stay internally
   consistent; only {e new} sessions see refreshed evidence. *)
let effective_strategy t strategy =
  match t.adaptive with
  | None -> strategy
  | Some ad -> (
      let default_fp = Probability.default_model.Probability.fingerprint in
      match strategy with
      | Navigation.Heuristic { k; model; reuse } when String.equal model.Probability.fingerprint default_fp ->
          Navigation.Heuristic { k; model = Adaptive.model ad; reuse }
      | Navigation.Optimal { model } when String.equal model.Probability.fingerprint default_fp ->
          Navigation.Optimal { model = Adaptive.model ad }
      | s -> s)

(* --- session store ----------------------------------------------------- *)

let session_id s = s.sid
let session_query s = s.query
let session_nav s = s.nav
let navigation s = s.navigation
let snapshot s = Atomic.get s.snapshot

let session_count t =
  Array.fold_left (fun acc shard -> acc + Hashtbl.length shard.sessions) 0 t.shards

let eviction_count t = Array.fold_left (fun acc shard -> acc + shard.sevictions) 0 t.shards

(* Reads other shards' table sizes without their locks: an int-field read
   per table, tolerable staleness for a gauge. *)
let publish_live t = Metrics.set live_gauge (float_of_int (session_count t))

let touch t s =
  let shard = s.home in
  shard.sclock <- shard.sclock + 1;
  s.tick <- shard.sclock;
  s.last_use_ms <- Clock.now_ms t.config.clock

(* A session of [query] just left this shard. If it was the shard's last
   one for that query, cancel the shard's queued speculation — a dead
   session must not leave pending work behind. Cached plans stay: they
   are keyed by exact component and remain correct for future sessions.
   Prefetch state is shard-local, so only this shard's sessions matter. *)
let release_query shard query =
  match shard.sprefetch with
  | None -> ()
  | Some pf ->
      let norm = Nav_cache.normalize query in
      let still_live =
        Hashtbl.fold
          (fun _ s acc -> acc || String.equal norm (Nav_cache.normalize s.query))
          shard.sessions false
      in
      if not still_live then ignore (Prefetch.drop_query pf query : int)

let evict_lru shard =
  let victim =
    Hashtbl.fold
      (fun _ s acc ->
        match acc with Some best when best.tick <= s.tick -> acc | Some _ | None -> Some s)
      shard.sessions None
  in
  match victim with
  | Some s ->
      flush_ignores s;
      Hashtbl.remove shard.sessions s.sid;
      shard.sevictions <- shard.sevictions + 1;
      Metrics.incr evicted_counter;
      release_query shard s.query;
      Logs.debug (fun m -> m "engine: evicted session %s (shard %d full)" s.sid shard.snum)
  | None -> ()

type search_outcome = No_results | Session of session

(* The budget factory handed to Navigation.set_budget: runs at EXPAND
   entry. The deadline starts first so an injected latency spike (the
   "expand" half of the fault plan) eats into it — that is exactly the
   overload signal that triggers degradation. *)
let expand_budget_factory t shard () =
  let deadline =
    Option.map
      (fun budget_ms -> Deadline.start ~clock:t.config.clock ~budget_ms)
      t.config.expand_budget_ms
  in
  (match shard.sguard with None -> () | Some g -> Guard.inject g ~op:"expand");
  match deadline with
  | None -> fun () -> false
  | Some d -> fun () -> Deadline.expired d

let search t ?(strategy = Navigation.bionav ()) query =
  match validate_strategy strategy with
  | Error msg -> Error msg
  | Ok strategy ->
      if String.trim query = "" then Error "empty query"
      else begin
        let strategy = effective_strategy t strategy in
        (* The sid is allocated before the (fallible) tree build so the
           shard — and therefore the lock and cache — can be chosen up
           front; a failed search burns an id, which stays monotonic. *)
        let sid = Printf.sprintf "s%d" (Atomic.fetch_and_add t.next_sid 1) in
        let shard = shard_of_sid t sid in
        with_shard shard (fun () ->
            match Nav_cache.get shard.cache query with
            | exception Backend_unavailable msg -> Error msg
            | nav ->
                Docset_arena.adopt (Nav_tree.arena nav);
                if Nav_tree.distinct_results nav = 0 then Ok No_results
                else begin
                  while Hashtbl.length shard.sessions >= shard.shard_max do
                    evict_lru shard
                  done;
                  let navigation = Navigation.start strategy nav in
                  let s =
                    {
                      sid;
                      query;
                      nav;
                      navigation;
                      home = shard;
                      snapshot =
                        Atomic.make (Nav_snapshot.capture ~epoch:0 ~query navigation);
                      pending_spec = Atomic.make [];
                      seen_concepts = Hashtbl.create 16;
                      epoch = 0;
                      tick = 0;
                      last_use_ms = 0.;
                    }
                  in
                  touch t s;
                  Hashtbl.replace shard.sessions sid s;
                  if Option.is_some shard.sguard || Option.is_some t.config.expand_budget_ms
                  then
                    Navigation.set_budget s.navigation (Some (expand_budget_factory t shard));
                  (match shard.sprefetch with
                  | Some pf ->
                      Prefetch.attach_plans pf ~query s.navigation;
                      (match Navigation.strategy s.navigation with
                      | Navigation.Heuristic _ ->
                          (* Record reveals only; ranking runs off-lock
                             against the published snapshot (see
                             [drain_speculation]). *)
                          Navigation.set_on_expand s.navigation
                            (Some
                               (fun ~node:_ ~revealed ->
                                 Atomic.set s.pending_spec
                                   (revealed @ Atomic.get s.pending_spec)))
                      | Navigation.Optimal _ | Navigation.Static
                      | Navigation.Static_paged _ ->
                          ())
                  | None -> ());
                  Metrics.incr started_counter;
                  publish_live t;
                  Ok (Session s)
                end)
      end

let find_session t sid =
  let shard = shard_of_sid t sid in
  with_shard shard (fun () ->
      match Hashtbl.find_opt shard.sessions sid with
      | Some s ->
          touch t s;
          Some s
      | None -> None)

let close t sid =
  let shard = shard_of_sid t sid in
  with_shard shard (fun () ->
      match Hashtbl.find_opt shard.sessions sid with
      | Some s ->
          flush_ignores s;
          Hashtbl.remove shard.sessions sid;
          Metrics.incr closed_counter;
          release_query shard s.query;
          publish_live t;
          true
      | None -> false)

let sweep ?now_ms t =
  match t.config.session_ttl_ms with
  | None -> 0
  | Some ttl ->
      let now = match now_ms with Some n -> n | None -> Clock.now_ms t.config.clock in
      let total = ref 0 in
      Array.iter
        (fun shard ->
          with_shard shard (fun () ->
              let expired =
                Hashtbl.fold
                  (fun _ s acc -> if now -. s.last_use_ms > ttl then s :: acc else acc)
                  shard.sessions []
              in
              List.iter
                (fun s ->
                  flush_ignores s;
                  Hashtbl.remove shard.sessions s.sid)
                expired;
              List.iter (fun s -> release_query shard s.query) expired;
              total := !total + List.length expired))
        t.shards;
      let n = !total in
      if n > 0 then begin
        Metrics.incr ~by:n expired_counter;
        publish_live t;
        Logs.debug (fun m -> m "engine: expired %d idle session(s)" n)
      end;
      n

(* --- navigation actions ------------------------------------------------ *)

(* Re-capture and publish the session's snapshot. Runs under the shard
   lock: capture reads the live active tree and interns into its arena's
   memo tables; the Atomic.set is the RCU-style publication point. *)
let publish s =
  s.epoch <- s.epoch + 1;
  Atomic.set s.snapshot (Nav_snapshot.capture ~epoch:s.epoch ~query:s.query s.navigation)

(* Speculation, engine-driven: the expand observer only records revealed
   nodes, and this drains them — ranking (the expensive comp-tree +
   probability work) runs with no lock against the just-published
   snapshot; only the queue append and the budgeted tick re-enter the
   shard lock. Nodes that were hidden again or expanded meanwhile simply
   rank out (they are absent or non-expandable in the snapshot). *)
let drain_speculation s =
  match s.home.sprefetch with
  | None -> ()
  | Some pf -> (
      match Atomic.exchange s.pending_spec [] with
      | [] -> ()
      | revealed -> (
          match Navigation.strategy s.navigation with
          | Navigation.Heuristic { k; model; _ } ->
              let snap = Atomic.get s.snapshot in
              let revealed = List.sort_uniq Int.compare revealed in
              let ranked = Speculator.rank_snapshot ~model snap revealed in
              let budget = (Prefetch.config pf).Prefetch.budget_per_action in
              if ranked <> [] || budget > 0 then
                with_shard s.home (fun () ->
                    Speculator.enqueue_ranked (Prefetch.speculator pf) ~query:s.query snap
                      ~k ~model ranked;
                    ignore (Prefetch.tick pf ~budget : int))
          | Navigation.Optimal _ | Navigation.Static | Navigation.Static_paged _ -> ()))

let run_locked s f =
  let r =
    with_shard s.home (fun () ->
        Docset_arena.adopt (Nav_tree.arena s.nav);
        let r = f () in
        publish s;
        r)
  in
  drain_speculation s;
  r

let expand s node =
  run_locked s (fun () ->
      let revealed = Navigation.expand s.navigation node in
      note_engaged s Adaptive.observe_expand node;
      note_revealed s revealed;
      revealed)

let show_results s node =
  run_locked s (fun () ->
      let results = Navigation.show_results s.navigation node in
      note_engaged s Adaptive.observe_show node;
      results)

let backtrack s = run_locked s (fun () -> Navigation.backtrack s.navigation)

(* --- detached sessions -------------------------------------------------- *)

let start strategy nav =
  (match validate_strategy strategy with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Engine.start: " ^ msg));
  Metrics.incr started_counter;
  Navigation.start strategy nav

(* --- prefetch & warm start ---------------------------------------------- *)

let prefetch_tick t ~budget =
  Array.fold_left
    (fun acc shard ->
      match shard.sprefetch with
      | None -> acc
      | Some pf ->
          acc
          + with_shard shard (fun () ->
                (* Speculation jobs compute cuts on trees cached in this
                   shard; run_job adopts each job's arena itself. *)
                Prefetch.tick pf ~budget))
    0 t.shards

type prefetch_domain = { stop_flag : bool Atomic.t; handle : unit Domain.t }

let spawn_prefetch_domain ?(interval_s = 0.01) t ~budget =
  let stop_flag = Atomic.make false in
  let handle =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_flag) do
          ignore (prefetch_tick t ~budget : int);
          Unix.sleepf interval_s
        done)
  in
  { stop_flag; handle }

let stop_prefetch_domain pd =
  Atomic.set pd.stop_flag true;
  Domain.join pd.handle

let warm t queries =
  let model = Option.map Adaptive.model t.adaptive in
  let entries = Warmer.build ~db:t.database ~run:t.shards.(0).srun_search ?model queries in
  Array.iter
    (fun shard ->
      with_shard shard (fun () ->
          ignore
            (Warmer.apply ~db:t.database ~trees:shard.cache
               ?plans:(Option.map Prefetch.plans shard.sprefetch)
               ?model entries
              : int)))
    t.shards;
  entries

let save_snapshot t entries path = Snapshot.save ~db:t.database entries path

(* --- observability ------------------------------------------------------ *)

let cache_hit_rate t =
  let hits, lookups =
    Array.fold_left
      (fun (h, l) shard ->
        let sh = Nav_cache.hits shard.cache and sm = Nav_cache.misses shard.cache in
        (h + sh, l + sh + sm))
      (0, 0) t.shards
  in
  if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups

let plan_cache_hit_rate t =
  let hits, lookups =
    Array.fold_left
      (fun (h, l) shard ->
        match shard.sprefetch with
        | None -> (h, l)
        | Some pf ->
            let plans = Prefetch.plans pf in
            let ph = Bionav_prefetch.Plan_cache.hits plans
            and pm = Bionav_prefetch.Plan_cache.misses plans in
            (h + ph, l + ph + pm))
      (0, 0) t.shards
  in
  if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups

let docset_sets_gauge = Metrics.gauge "bionav_docset_live_sets"
let docset_bytes_gauge = Metrics.gauge "bionav_docset_resident_bytes"
let docset_dense_gauge = Metrics.gauge "bionav_docset_live_dense"
let docset_sparse_gauge = Metrics.gauge "bionav_docset_live_sparse"
let docset_dedup_gauge = Metrics.gauge "bionav_docset_dedup_hit_rate"

(* Aggregate docset stats without any shard lock: the inverted index's
   arena is read directly (pure reads are domain-safe; its plain stat
   fields may lag the writer by a beat — monitoring tolerance), and each
   shard contributes the aggregate it published at its last lock
   release. The scrape path therefore never contends with navigation. *)
let docset_stats t =
  let acc =
    add_arena_stats zero_arena_stats
      (Docset_arena.stats (Bionav_search.Inverted_index.arena (Eutils.index t.eutils)))
  in
  Array.fold_left
    (fun acc shard -> add_arena_stats acc (Atomic.get shard.sarena_stats))
    acc t.shards

let publish_docset t =
  let st = docset_stats t in
  Metrics.set docset_sets_gauge (float_of_int st.Docset_arena.sets);
  Metrics.set docset_bytes_gauge (float_of_int st.Docset_arena.bytes);
  Metrics.set docset_dense_gauge (float_of_int st.Docset_arena.dense);
  Metrics.set docset_sparse_gauge (float_of_int st.Docset_arena.sparse);
  Metrics.set docset_dedup_gauge
    (if st.Docset_arena.intern_requests = 0 then 0.
     else float_of_int st.Docset_arena.dedup_hits /. float_of_int st.Docset_arena.intern_requests)

let metrics_text t =
  publish_live t;
  publish_docset t;
  Option.iter Bionav_segstore.Store.publish_metrics t.store;
  Procinfo.publish ();
  Metrics.dump ()
