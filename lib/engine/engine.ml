open Bionav_util
open Bionav_core
module Eutils = Bionav_search.Eutils
module Nav_snapshot = Bionav_search.Nav_snapshot
module Prefetch = Bionav_prefetch.Prefetch
module Speculator = Bionav_prefetch.Speculator
module Warmer = Bionav_prefetch.Warmer
module Snapshot = Bionav_store.Snapshot
module Clock = Bionav_resilience.Clock
module Adaptive = Bionav_adaptive.Adaptive
module Guard = Bionav_resilience.Guard
module Deadline = Bionav_resilience.Deadline
module Chaos = Bionav_resilience.Chaos

exception Backend_unavailable of string

type config = {
  max_sessions : int;
  session_ttl_ms : float option;
  cache_capacity : int;
  prefetch : Prefetch.config option;
  clock : Clock.t;
  expand_budget_ms : float option;
  resilience : Guard.config option;
  shards : int;
  segstore : Bionav_segstore.Store.spec option;
  adaptive : Adaptive.config option;
}

let default_config =
  {
    max_sessions = 256;
    session_ttl_ms = None;
    cache_capacity = 32;
    prefetch = None;
    clock = Clock.real;
    expand_budget_ms = None;
    resilience = Some Guard.default_config;
    shards = 1;
    segstore = None;
    adaptive = None;
  }

(* One navigation space the session is (or was) navigating: the tree
   derived along [fdim] for [fid]'s result set, and the Navigation.t
   driving it. The base space of a session is the bottom frame; every
   [refine]/[facet] pushes a new frame, [unrefine] pops it. *)
type frame = {
  fid : string;
      (* the space identity: a deterministic derivation path like
         "descriptor" or "descriptor>refine:42>facets" — equal paths mean
         equal member sets, so caches may key on it *)
  fdim : Bionav_core.Nav_space.dimension;
  fkey : string;
      (* cache/speculation key of this space: the bare query for the base
         descriptor frame (legacy-compatible with warm start and the plan
         cache), [normalize query ^ "\x1f" ^ fid] for derived spaces *)
  fnav : Nav_tree.t;
  fnavigation : Navigation.t;
}

(* A session is pinned to the shard that created it ([home]): its
   navigation trees came out of that shard's cache and the active tree's
   arena is mutated on every expand, so all mutation happens under
   [home.lock]. Reads go through [snapshot]: an immutable epoch-versioned
   view of the {e top} frame republished (RCU-style) after every
   mutation, consumed with [Atomic.get] and no lock (DESIGN.md §12).
   [frames] is itself an Atomic so the off-lock speculation drain can
   check which space is live without the lock; it is only written under
   the shard lock and is never empty. *)
type session = {
  sid : string;
  query : string;
  sstrategy : Navigation.strategy;
      (* the effective base strategy; per-frame strategies derive from it *)
  frames : frame list Atomic.t;  (* top frame first *)
  home : shard;
  snapshot : Nav_snapshot.t Atomic.t;
  pending_spec : int list Atomic.t;
      (* nodes revealed since the last speculation pass; appended (under
         the shard lock) by the expand observer, drained off-lock *)
  seen_concepts : (int, unit) Hashtbl.t;
      (* concepts revealed to this session but not (yet) engaged with;
         mutated under the shard lock, flushed as IGNORE evidence when
         the session ends *)
  mutable epoch : int;  (* bumped under the shard lock at each publish *)
  mutable tick : int;  (* recency clock value of the last touch *)
  mutable last_use_ms : float;  (* config.clock time of the last touch, for TTLs *)
}

and shard = {
  snum : int;
  lock : Mutex.t;
  lock_owner : int Atomic.t;  (* domain id holding [lock]; -1 when free *)
  swaiters : Metrics.gauge;  (* per-shard lock queue depth *)
  cache : Nav_cache.t;
  sprefetch : Prefetch.t option;
  sguard : Guard.t option;
  sadaptive : Adaptive.t option;  (* engine-wide learned model, shared by all shards *)
  sderiver : Nav_space.deriver;  (* derives refined/faceted spaces; used under the lock *)
  sbudget : (unit -> unit -> bool) option;
      (* the EXPAND budget factory handed to Navigation.set_budget, when
         a guard or a budget is configured. The deadline starts first so
         an injected latency spike (the "expand" half of a fault plan)
         eats into it — exactly the overload signal that triggers
         degradation. *)
  srun_search : string -> Docset.t;
  sessions : (string, session) Hashtbl.t;
  shard_max : int;  (* per-shard session bound *)
  sarena_stats : Docset_arena.stats Atomic.t;
      (* aggregate over this shard's reachable arenas, refreshed on lock
         release so the metrics scrape never takes the lock *)
  mutable sclock : int;
  mutable sevictions : int;
}

type t = {
  config : config;
  database : Bionav_store.Database.t;
  store : Bionav_segstore.Store.t option;
  eutils : Eutils.t;
  search_lock : Mutex.t;  (* confines the inverted index's shared arena *)
  shards : shard array;
  next_sid : int Atomic.t;
  adaptive : Adaptive.t option;
      (* engine-wide (cross-shard) learned probability model; its own
         internal lock makes observes from any shard safe *)
}

let started_counter = Metrics.counter "bionav_sessions_started_total"
let evicted_counter = Metrics.counter "bionav_sessions_evicted_total"
let closed_counter = Metrics.counter "bionav_sessions_closed_total"
let expired_counter = Metrics.counter "bionav_sessions_expired_total"
let live_gauge = Metrics.gauge "bionav_sessions_live"
let lock_acq_counter = Metrics.counter "bionav_shard_lock_acquisitions_total"
let refinements_counter = Metrics.counter "bionav_refinements_total"
let refine_depth_gauge = Metrics.gauge "bionav_refine_depth"
let lock_wait_hist = Metrics.histogram "bionav_shard_lock_wait_ms"
let lock_hold_hist = Metrics.histogram "bionav_shard_lock_hold_ms"

(* --- the shard lock ----------------------------------------------------- *)

let zero_arena_stats =
  Docset_arena.
    {
      sets = 0;
      bytes = 0;
      dense = 0;
      sparse = 0;
      intern_requests = 0;
      dedup_hits = 0;
      memo_hits = 0;
    }

let add_arena_stats acc (st : Docset_arena.stats) =
  Docset_arena.
    {
      sets = acc.sets + st.sets;
      bytes = acc.bytes + st.bytes;
      dense = acc.dense + st.dense;
      sparse = acc.sparse + st.sparse;
      intern_requests = acc.intern_requests + st.intern_requests;
      dedup_hits = acc.dedup_hits + st.dedup_hits;
      memo_hits = acc.memo_hits + st.memo_hits;
    }

(* Aggregate stats over the arenas this shard can reach (cached trees +
   every frame of every live session, physically deduplicated). Called
   under the shard lock. *)
let shard_arena_stats shard =
  let arenas = ref [] in
  let note a = if not (List.memq a !arenas) then arenas := a :: !arenas in
  Nav_cache.fold_trees shard.cache (fun nav () -> note (Nav_tree.arena nav)) ();
  Hashtbl.iter
    (fun _ s -> List.iter (fun fr -> note (Nav_tree.arena fr.fnav)) (Atomic.get s.frames))
    shard.sessions;
  List.fold_left (fun acc a -> add_arena_stats acc (Docset_arena.stats a)) zero_arena_stats !arenas

(* Every acquisition of a shard lock goes through here: it detects
   same-domain re-entry (the mutexes are non-reentrant, so that would
   deadlock), maintains the wait/hold histograms and the per-shard
   queue-depth gauge, and refreshes the shard's published arena stats on
   the way out. *)
let with_shard shard f =
  let me = Ownership.self_id () in
  if Atomic.get shard.lock_owner = me then
    invalid_arg
      (Printf.sprintf
         "Engine: reentrant use of shard %d's lock from domain %d (run_locked inside \
          run_locked?)"
         shard.snum me);
  Metrics.add shard.swaiters 1.;
  let t0 = Timing.now_ms () in
  Mutex.lock shard.lock;
  let t1 = Timing.now_ms () in
  Metrics.add shard.swaiters (-1.);
  Metrics.observe lock_wait_hist (t1 -. t0);
  Metrics.incr lock_acq_counter;
  Atomic.set shard.lock_owner me;
  let release () =
    Atomic.set shard.sarena_stats (shard_arena_stats shard);
    Atomic.set shard.lock_owner (-1);
    Metrics.observe lock_hold_hist (Timing.now_ms () -. t1);
    Mutex.unlock shard.lock
  in
  match f () with
  | v ->
      release ();
      v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      release ();
      Printexc.raise_with_backtrace e bt

let create ?(config = default_config) ?chaos ?snapshot ~database ~eutils () =
  if config.max_sessions < 1 then invalid_arg "Engine.create: max_sessions must be >= 1";
  if config.shards < 1 then invalid_arg "Engine.create: shards must be >= 1";
  (match config.expand_budget_ms with
  | Some b when b < 0. -> invalid_arg "Engine.create: expand_budget_ms must be >= 0"
  | Some _ | None -> ());
  (* A chaos plan is one stateful fault stream: sharding the engine would
     race the draws and silently skew the plan. Refuse instead of
     silently confining it to shard 0 (which dropped it for every other
     shard's traffic). *)
  (match chaos with
  | Some _ when config.shards > 1 ->
      invalid_arg "Engine.create: a chaos plan requires shards = 1"
  | Some _ | None -> ());
  (* With a segment store configured, associations come off the mapped
     segments and the passed database contributes only its hierarchy. *)
  let store, database =
    match config.segstore with
    | None -> (None, database)
    | Some spec ->
        let st =
          Bionav_segstore.Store.open_dir
            ~config:spec.Bionav_segstore.Store.spec_config
            spec.Bionav_segstore.Store.dir
        in
        let db_citations = Bionav_store.Database.n_citations database in
        if Bionav_segstore.Store.n_citations st <> db_citations then
          invalid_arg
            (Printf.sprintf
               "Engine.create: segment store has %d citations but the database has %d"
               (Bionav_segstore.Store.n_citations st)
               db_citations);
        ( Some st,
          Bionav_segstore.Bridge.database st (Bionav_store.Database.hierarchy database) )
  in
  let search_lock = Mutex.create () in
  let index_arena = Bionav_search.Inverted_index.arena (Eutils.index eutils) in
  let adaptive =
    Option.map
      (fun cfg -> Adaptive.create ~config:cfg ~now_ms:(fun () -> Clock.now_ms config.clock) ())
      config.adaptive
  in
  let make_shard snum =
    let guard =
      match (config.resilience, chaos) with
      | None, None -> None
      | cfg, chaos ->
          let gconfig = Option.value cfg ~default:Guard.default_config in
          Some (Guard.create ?chaos ~config:gconfig ~clock:config.clock ())
    in
    let run_search query =
      (* esearch interns into the process-wide index arena: serialized
         across shards, and the arena is adopted by whichever domain got
         the lock. Only tree-cache misses pay this. *)
      let locked () =
        Mutex.protect search_lock (fun () ->
            Docset_arena.adopt index_arena;
            Eutils.esearch eutils query)
      in
      match guard with
      | None -> locked ()
      | Some g -> (
          match Guard.call g ~op:"esearch" locked with
          | Ok ids -> ids
          | Error e -> raise (Backend_unavailable (Guard.error_message e)))
    in
    let build query = Nav_tree.of_database database (run_search query) in
    let budget_factory () =
      let deadline =
        Option.map
          (fun budget_ms -> Deadline.start ~clock:config.clock ~budget_ms)
          config.expand_budget_ms
      in
      (match guard with None -> () | Some g -> Guard.inject g ~op:"expand");
      match deadline with None -> fun () -> false | Some d -> fun () -> Deadline.expired d
    in
    {
      snum;
      lock = Mutex.create ();
      lock_owner = Atomic.make (-1);
      swaiters = Metrics.gauge (Printf.sprintf "bionav_shard_lock_waiters_s%d" snum);
      cache = Nav_cache.create ~capacity:config.cache_capacity ~build ();
      sprefetch =
        Option.map (fun pc -> Prefetch.create ~config:pc ~clock:config.clock ()) config.prefetch;
      sguard = guard;
      sadaptive = adaptive;
      sderiver = Nav_space.deriver ~medline:(Eutils.medline eutils) database;
      sbudget =
        (if Option.is_some guard || Option.is_some config.expand_budget_ms then
           Some budget_factory
         else None);
      srun_search = run_search;
      sessions = Hashtbl.create 64;
      shard_max = max 1 (config.max_sessions / config.shards);
      sarena_stats = Atomic.make zero_arena_stats;
      sclock = 0;
      sevictions = 0;
    }
  in
  let t =
    {
      config;
      database;
      store;
      eutils;
      search_lock;
      shards = Array.init config.shards make_shard;
      next_sid = Atomic.make 0;
      adaptive;
    }
  in
  (match snapshot with
  | None -> ()
  | Some path ->
      let entries = Snapshot.load ~db:database path in
      let n = ref 0 in
      Array.iter
        (fun shard ->
          n :=
            Warmer.apply ~db:database ~trees:shard.cache
              ?plans:(Option.map Prefetch.plans shard.sprefetch)
              ?model:(Option.map Adaptive.model t.adaptive)
              entries)
        t.shards;
      Logs.info (fun m -> m "engine: warm-started %d quer%s from %s" !n
                     (if !n = 1 then "y" else "ies") path));
  t

let eutils t = t.eutils
let config t = t.config
let prefetch t = t.shards.(0).sprefetch
let guard t = t.shards.(0).sguard
let resilience_clock t = t.config.clock
let shard_count t = Array.length t.shards
let segstore t = t.store

let shard_of_sid t sid = t.shards.(Hashtbl.hash sid mod Array.length t.shards)
let adaptive t = t.adaptive

let learn t events =
  match t.adaptive with
  | None -> false
  | Some ad ->
      Adaptive.learn ad events;
      true

(* --- frames -------------------------------------------------------------- *)

let top_frame s =
  match Atomic.get s.frames with
  | fr :: _ -> fr
  | [] -> assert false (* the frame stack is never empty *)

let refine_depth s = List.length (Atomic.get s.frames) - 1
let space_id s = (top_frame s).fid

(* --- adaptive evidence -------------------------------------------------- *)

(* Learned evidence is keyed by MeSH concept id, so only frames navigating
   the descriptor dimension feed it — a facet frame's "concepts" are
   synthetic qualifier-page ids that would poison the evidence store. *)
let descriptor_frame fr = fr.fdim = Nav_space.Descriptor

(* The session engaged with [node] (expanded it or listed its results):
   record the evidence and stop counting the concept as merely seen. *)
let note_engaged s observe node =
  match s.home.sadaptive with
  | None -> ()
  | Some ad ->
      let fr = top_frame s in
      if descriptor_frame fr then begin
        let concept = Nav_tree.concept_id fr.fnav node in
        if concept >= 0 then begin
          Hashtbl.remove s.seen_concepts concept;
          observe ad ~concept
        end
      end

let note_revealed s revealed =
  match s.home.sadaptive with
  | None -> ()
  | Some _ ->
      let fr = top_frame s in
      if descriptor_frame fr then
        List.iter
          (fun node ->
            let concept = Nav_tree.concept_id fr.fnav node in
            if concept >= 0 then Hashtbl.replace s.seen_concepts concept ())
          revealed

(* The session is over: whatever it was shown and never engaged with is
   IGNORE evidence. Called under the shard lock on every exit path
   (close, LRU eviction, TTL sweep). *)
let flush_ignores s =
  match s.home.sadaptive with
  | None -> ()
  | Some ad ->
      Hashtbl.iter (fun concept () -> Adaptive.observe_ignore ad ~concept) s.seen_concepts;
      Hashtbl.reset s.seen_concepts

(* --- strategies -------------------------------------------------------- *)

let validate_strategy = function
  | Navigation.Static_paged { page_size } when page_size < 1 ->
      Error (Printf.sprintf "page_size must be >= 1 (got %d)" page_size)
  | s -> Ok s

let strategy_of_name ?(page_size = 10) name =
  match name with
  | None | Some "bionav" -> Ok (Navigation.bionav ())
  | Some "static" -> Ok Navigation.Static
  | Some "paged" -> validate_strategy (Navigation.Static_paged { page_size })
  | Some "optimal" -> Ok (Navigation.optimal ())
  | Some "faceted" -> Ok (Navigation.faceted ())
  | Some s -> Error (Printf.sprintf "unknown strategy %S" s)

(* With learning enabled, cost-model strategies get the engine's current
   learned model — unless the caller pinned a non-default one (an A/B arm
   or an explicit [~params] stays untouched). The session holds the model
   value it started with for its whole life, so its plans stay internally
   consistent; only {e new} sessions see refreshed evidence. *)
let substitute_learned adaptive strategy =
  match adaptive with
  | None -> strategy
  | Some ad -> (
      let default_fp = Probability.default_model.Probability.fingerprint in
      match strategy with
      | Navigation.Heuristic { k; model; reuse } when String.equal model.Probability.fingerprint default_fp ->
          Navigation.Heuristic { k; model = Adaptive.model ad; reuse }
      | Navigation.Optimal { model } when String.equal model.Probability.fingerprint default_fp ->
          Navigation.Optimal { model = Adaptive.model ad }
      | s -> s)

let effective_strategy t strategy = substitute_learned t.adaptive strategy

(* The strategy a frame runs: the session's base strategy, mapped to the
   frame's dimension. A descriptor frame of a Faceted-base session runs
   plain Heuristic (with the learned model when the engine is adaptive);
   a facet frame of a Heuristic-base session runs Faceted under the
   facet-tuned cost model. Model-free strategies pass through. *)
let frame_strategy adaptive base = function
  | Nav_space.Descriptor -> (
      match base with
      | Navigation.Faceted { k; reuse; _ } ->
          substitute_learned adaptive (Navigation.bionav ~k ~reuse ())
      | s -> s)
  | Nav_space.Qualifier_facet -> (
      match base with
      | Navigation.Heuristic { k; reuse; _ } | Navigation.Faceted { k; reuse; _ } ->
          Navigation.faceted ~k ~reuse ()
      | Navigation.Optimal _ -> Navigation.Optimal { model = Probability.facet_model }
      | (Navigation.Static | Navigation.Static_paged _) as s -> s)

(* --- session store ----------------------------------------------------- *)

let session_id s = s.sid
let session_query s = s.query
let session_nav s = (top_frame s).fnav
let navigation s = (top_frame s).fnavigation
let snapshot s = Atomic.get s.snapshot

let session_count t =
  Array.fold_left (fun acc shard -> acc + Hashtbl.length shard.sessions) 0 t.shards

let eviction_count t = Array.fold_left (fun acc shard -> acc + shard.sevictions) 0 t.shards

(* Reads other shards' table sizes without their locks: an int-field read
   per table, tolerable staleness for a gauge. *)
let publish_live t = Metrics.set live_gauge (float_of_int (session_count t))

let touch t s =
  let shard = s.home in
  shard.sclock <- shard.sclock + 1;
  s.tick <- shard.sclock;
  s.last_use_ms <- Clock.now_ms t.config.clock

(* A session of [query] just left this shard. If it was the shard's last
   one for that query, cancel the shard's queued speculation — a dead
   session must not leave pending work behind. Cached plans stay: they
   are keyed by exact component and remain correct for future sessions.
   Prefetch state is shard-local, so only this shard's sessions matter. *)
let release_query shard query =
  match shard.sprefetch with
  | None -> ()
  | Some pf ->
      let norm = Nav_cache.normalize query in
      let still_live =
        Hashtbl.fold
          (fun _ s acc -> acc || String.equal norm (Nav_cache.normalize s.query))
          shard.sessions false
      in
      if not still_live then ignore (Prefetch.drop_query pf query : int)

(* Derived frames speculate under their own composite keys; drop those
   too when the leaving session was the last one holding the space open
   on this shard. The base frame's key is the bare query and goes through
   [release_query]'s normalized comparison. *)
let release_frames shard s =
  (match shard.sprefetch with
  | None -> ()
  | Some pf ->
      List.iter
        (fun fr ->
          if not (String.equal fr.fkey s.query) then begin
            let shared =
              Hashtbl.fold
                (fun _ other acc ->
                  acc
                  || (other != s
                     && List.exists
                          (fun f2 -> String.equal f2.fkey fr.fkey)
                          (Atomic.get other.frames)))
                shard.sessions false
            in
            if not shared then ignore (Prefetch.drop_query pf fr.fkey : int)
          end)
        (Atomic.get s.frames));
  release_query shard s.query

let evict_lru shard =
  let victim =
    Hashtbl.fold
      (fun _ s acc ->
        match acc with Some best when best.tick <= s.tick -> acc | Some _ | None -> Some s)
      shard.sessions None
  in
  match victim with
  | Some s ->
      flush_ignores s;
      Hashtbl.remove shard.sessions s.sid;
      shard.sevictions <- shard.sevictions + 1;
      Metrics.incr evicted_counter;
      release_frames shard s;
      Logs.debug (fun m -> m "engine: evicted session %s (shard %d full)" s.sid shard.snum)
  | None -> ()

type search_outcome = No_results | Session of session

(* Wire a frame's navigation into the engine services: the EXPAND budget,
   the plan cache (keyed by the frame's space key) and the speculation
   observer. Shared by the base frame ([search]) and every derived frame
   ([refine]/[facet]). The observer only records reveals into
   [pending_spec]; ranking runs off-lock against the published snapshot
   (see [drain_speculation]). *)
let wire_frame shard ~fkey ~pending_spec navigation =
  (match shard.sbudget with
  | None -> ()
  | Some factory -> Navigation.set_budget navigation (Some factory));
  match shard.sprefetch with
  | Some pf -> (
      Prefetch.attach_plans pf ~query:fkey navigation;
      match Navigation.strategy navigation with
      | Navigation.Heuristic _ | Navigation.Faceted _ ->
          Navigation.set_on_expand navigation
            (Some
               (fun ~node:_ ~revealed ->
                 Atomic.set pending_spec (revealed @ Atomic.get pending_spec)))
      | Navigation.Optimal _ | Navigation.Static | Navigation.Static_paged _ -> ())
  | None -> ()

(* Fetch or derive a navigation space for a derived frame, through the
   shard's tree cache under the frame's composite key — so revisiting a
   refinement path is a cache hit, not a re-derivation. Runs under the
   shard lock. *)
let derived_space shard ~fkey ~dim subset =
  match Nav_cache.find shard.cache fkey with
  | Some nav -> nav
  | None ->
      let nav = Nav_space.derive shard.sderiver dim subset in
      Nav_cache.put shard.cache fkey nav;
      nav

let frame_key query fid = Nav_cache.normalize query ^ "\x1f" ^ fid

let search t ?(strategy = Navigation.bionav ()) query =
  match validate_strategy strategy with
  | Error msg -> Error msg
  | Ok strategy ->
      if String.trim query = "" then Error "empty query"
      else begin
        let strategy = effective_strategy t strategy in
        (* The sid is allocated before the (fallible) tree build so the
           shard — and therefore the lock and cache — can be chosen up
           front; a failed search burns an id, which stays monotonic. *)
        let sid = Printf.sprintf "s%d" (Atomic.fetch_and_add t.next_sid 1) in
        let shard = shard_of_sid t sid in
        with_shard shard (fun () ->
            match Nav_cache.get shard.cache query with
            | exception Backend_unavailable msg -> Error msg
            | nav ->
                Docset_arena.adopt (Nav_tree.arena nav);
                if Nav_tree.distinct_results nav = 0 then Ok No_results
                else begin
                  while Hashtbl.length shard.sessions >= shard.shard_max do
                    evict_lru shard
                  done;
                  (* A Faceted base strategy starts the session in the
                     qualifier-facet space of the full result set; the
                     descriptor tree built above stays cached for later
                     refinements. Everything else starts on descriptors. *)
                  let base =
                    match strategy with
                    | Navigation.Faceted _ ->
                        let fid = "qualifier" in
                        let fkey = frame_key query fid in
                        let subset = Nav_tree.subtree_results nav (Nav_tree.root nav) in
                        let fnav =
                          derived_space shard ~fkey ~dim:Nav_space.Qualifier_facet subset
                        in
                        { fid; fdim = Nav_space.Qualifier_facet; fkey; fnav;
                          fnavigation = Navigation.start strategy fnav }
                    | _ ->
                        { fid = "descriptor"; fdim = Nav_space.Descriptor; fkey = query;
                          fnav = nav; fnavigation = Navigation.start strategy nav }
                  in
                  Docset_arena.adopt (Nav_tree.arena base.fnav);
                  let s =
                    {
                      sid;
                      query;
                      sstrategy = strategy;
                      frames = Atomic.make [ base ];
                      home = shard;
                      snapshot =
                        Atomic.make
                          (Nav_snapshot.capture ~epoch:0 ~query ~space:base.fid
                             ~refine_depth:0 base.fnavigation);
                      pending_spec = Atomic.make [];
                      seen_concepts = Hashtbl.create 16;
                      epoch = 0;
                      tick = 0;
                      last_use_ms = 0.;
                    }
                  in
                  touch t s;
                  Hashtbl.replace shard.sessions sid s;
                  wire_frame shard ~fkey:base.fkey ~pending_spec:s.pending_spec
                    base.fnavigation;
                  Metrics.incr started_counter;
                  publish_live t;
                  Ok (Session s)
                end)
      end

let find_session t sid =
  let shard = shard_of_sid t sid in
  with_shard shard (fun () ->
      match Hashtbl.find_opt shard.sessions sid with
      | Some s ->
          touch t s;
          Some s
      | None -> None)

let close t sid =
  let shard = shard_of_sid t sid in
  with_shard shard (fun () ->
      match Hashtbl.find_opt shard.sessions sid with
      | Some s ->
          flush_ignores s;
          Hashtbl.remove shard.sessions sid;
          Metrics.incr closed_counter;
          release_frames shard s;
          publish_live t;
          true
      | None -> false)

let sweep ?now_ms t =
  match t.config.session_ttl_ms with
  | None -> 0
  | Some ttl ->
      let now = match now_ms with Some n -> n | None -> Clock.now_ms t.config.clock in
      let total = ref 0 in
      Array.iter
        (fun shard ->
          with_shard shard (fun () ->
              let expired =
                Hashtbl.fold
                  (fun _ s acc -> if now -. s.last_use_ms > ttl then s :: acc else acc)
                  shard.sessions []
              in
              List.iter
                (fun s ->
                  flush_ignores s;
                  Hashtbl.remove shard.sessions s.sid)
                expired;
              List.iter (fun s -> release_frames shard s) expired;
              total := !total + List.length expired))
        t.shards;
      let n = !total in
      if n > 0 then begin
        Metrics.incr ~by:n expired_counter;
        publish_live t;
        Logs.debug (fun m -> m "engine: expired %d idle session(s)" n)
      end;
      n

(* --- navigation actions ------------------------------------------------ *)

(* Re-capture and publish the session's snapshot from its top frame. Runs
   under the shard lock: capture reads the live active tree and interns
   into its arena's memo tables; the Atomic.set is the RCU-style
   publication point. Epoch and space id advance together in the one
   atomic store, so a reader never observes a mixed-space view. *)
let publish s =
  s.epoch <- s.epoch + 1;
  let fr = top_frame s in
  Atomic.set s.snapshot
    (Nav_snapshot.capture ~epoch:s.epoch ~query:s.query ~space:fr.fid
       ~refine_depth:(refine_depth s) fr.fnavigation)

(* Speculation, engine-driven: the expand observer only records revealed
   nodes, and this drains them — ranking (the expensive comp-tree +
   probability work) runs with no lock against the just-published
   snapshot; only the queue append and the budgeted tick re-enter the
   shard lock. Nodes that were hidden again or expanded meanwhile simply
   rank out (they are absent or non-expandable in the snapshot), and a
   snapshot whose space no longer matches the live top frame (the session
   refined or unrefined concurrently) is dropped wholesale — speculation
   stays within the active space. *)
let drain_speculation s =
  match s.home.sprefetch with
  | None -> ()
  | Some pf -> (
      match Atomic.exchange s.pending_spec [] with
      | [] -> ()
      | revealed -> (
          let fr = top_frame s in
          match Navigation.strategy fr.fnavigation with
          | Navigation.Heuristic { k; model; _ } | Navigation.Faceted { k; model; _ } ->
              let snap = Atomic.get s.snapshot in
              if String.equal (Nav_snapshot.space snap) fr.fid then begin
                let revealed = List.sort_uniq Int.compare revealed in
                let ranked = Speculator.rank_snapshot ~model snap revealed in
                let budget = (Prefetch.config pf).Prefetch.budget_per_action in
                if ranked <> [] || budget > 0 then
                  with_shard s.home (fun () ->
                      (* Re-check under the lock: enqueue only if the frame
                         is still the live top (space ids are unique within
                         a session's stack, so fid equality suffices). *)
                      if String.equal (top_frame s).fid fr.fid then begin
                        Speculator.enqueue_ranked (Prefetch.speculator pf) ~query:fr.fkey
                          snap ~k ~model ranked;
                        ignore (Prefetch.tick pf ~budget : int)
                      end)
              end
          | Navigation.Optimal _ | Navigation.Static | Navigation.Static_paged _ -> ()))

let run_locked s f =
  let r =
    with_shard s.home (fun () ->
        Docset_arena.adopt (Nav_tree.arena (top_frame s).fnav);
        let r = f () in
        publish s;
        r)
  in
  drain_speculation s;
  r

let expand s node =
  run_locked s (fun () ->
      let revealed = Navigation.expand (navigation s) node in
      note_engaged s Adaptive.observe_expand node;
      note_revealed s revealed;
      revealed)

let show_results s node =
  run_locked s (fun () ->
      let results = Navigation.show_results (navigation s) node in
      note_engaged s Adaptive.observe_show node;
      results)

let backtrack s = run_locked s (fun () -> Navigation.backtrack (navigation s))

(* --- navigation spaces: refine / facet / unrefine ----------------------- *)

(* Push a derived frame: resolve the space through the tree cache (a
   revisited path is a Plan_cache-style hit, not a re-derivation), start
   a navigation on it under the dimension-mapped strategy, wire it into
   budget/plans/speculation, and publish. Pending speculation of the old
   frame is cleared — speculation stays within the active space. *)
let push_frame s ~fid ~dim subset =
  let shard = s.home in
  let fkey = frame_key s.query fid in
  let fnav = derived_space shard ~fkey ~dim subset in
  Docset_arena.adopt (Nav_tree.arena fnav);
  let fnavigation = Navigation.start (frame_strategy shard.sadaptive s.sstrategy dim) fnav in
  let fr = { fid; fdim = dim; fkey; fnav; fnavigation } in
  wire_frame shard ~fkey ~pending_spec:s.pending_spec fnavigation;
  Atomic.set s.pending_spec [];
  Atomic.set s.frames (fr :: Atomic.get s.frames);
  Metrics.incr refinements_counter;
  Metrics.set refine_depth_gauge (float_of_int (refine_depth s));
  fr

let refine s node =
  run_locked s (fun () ->
      let fr = top_frame s in
      let active = Navigation.active fr.fnavigation in
      if not (Active_tree.is_visible active node) then
        invalid_arg (Printf.sprintf "Engine.refine: node %d is not visible" node);
      if node = Nav_tree.root fr.fnav then
        invalid_arg "Engine.refine: refining on the root would not narrow the result set";
      let concept = Nav_tree.concept_id fr.fnav node in
      (* Narrow to the node's full navigation subtree L(n) — a property of
         the tree alone (not of the session's expansion state), so equal
         space ids always mean equal member sets and the cache stays
         sound. *)
      let subset = Nav_tree.subtree_results fr.fnav node in
      note_engaged s Adaptive.observe_show node;
      let fid = Printf.sprintf "%s>refine:%d" fr.fid concept in
      let fr' = push_frame s ~fid ~dim:Nav_space.Descriptor subset in
      Nav_tree.distinct_results fr'.fnav)

let facet s =
  run_locked s (fun () ->
      let fr = top_frame s in
      if fr.fdim = Nav_space.Qualifier_facet then
        invalid_arg "Engine.facet: the session is already in a qualifier-facet space";
      let subset = Nav_tree.subtree_results fr.fnav (Nav_tree.root fr.fnav) in
      let fid = fr.fid ^ ">facets" in
      let fr' = push_frame s ~fid ~dim:Nav_space.Qualifier_facet subset in
      (* Number of qualifier pages (every non-root node of the flat facet
         tree is a page). *)
      Nav_tree.size fr'.fnav - 1)

let unrefine s =
  run_locked s (fun () ->
      match Atomic.get s.frames with
      | [] | [ _ ] -> false
      | popped :: rest ->
          Atomic.set s.pending_spec [];
          Atomic.set s.frames rest;
          (* Cancel the popped space's queued speculation unless another
             session on this shard still navigates it. Plans stay cached:
             revisiting the space serves them again. *)
          (match s.home.sprefetch with
          | Some pf when not (String.equal popped.fkey s.query) ->
              let shared =
                Hashtbl.fold
                  (fun _ other acc ->
                    acc
                    || List.exists
                         (fun f2 -> String.equal f2.fkey popped.fkey)
                         (Atomic.get other.frames))
                  s.home.sessions false
              in
              if not shared then ignore (Prefetch.drop_query pf popped.fkey : int)
          | Some _ | None -> ());
          Metrics.set refine_depth_gauge (float_of_int (refine_depth s));
          true)

(* --- detached sessions -------------------------------------------------- *)

let start strategy nav =
  (match validate_strategy strategy with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Engine.start: " ^ msg));
  Metrics.incr started_counter;
  Navigation.start strategy nav

(* --- prefetch & warm start ---------------------------------------------- *)

let prefetch_tick t ~budget =
  Array.fold_left
    (fun acc shard ->
      match shard.sprefetch with
      | None -> acc
      | Some pf ->
          acc
          + with_shard shard (fun () ->
                (* Speculation jobs compute cuts on trees cached in this
                   shard; run_job adopts each job's arena itself. *)
                Prefetch.tick pf ~budget))
    0 t.shards

type prefetch_domain = { stop_flag : bool Atomic.t; handle : unit Domain.t }

let spawn_prefetch_domain ?(interval_s = 0.01) t ~budget =
  let stop_flag = Atomic.make false in
  let handle =
    Domain.spawn (fun () ->
        while not (Atomic.get stop_flag) do
          ignore (prefetch_tick t ~budget : int);
          Unix.sleepf interval_s
        done)
  in
  { stop_flag; handle }

let stop_prefetch_domain pd =
  Atomic.set pd.stop_flag true;
  Domain.join pd.handle

let warm t queries =
  let model = Option.map Adaptive.model t.adaptive in
  let entries = Warmer.build ~db:t.database ~run:t.shards.(0).srun_search ?model queries in
  Array.iter
    (fun shard ->
      with_shard shard (fun () ->
          ignore
            (Warmer.apply ~db:t.database ~trees:shard.cache
               ?plans:(Option.map Prefetch.plans shard.sprefetch)
               ?model entries
              : int)))
    t.shards;
  entries

let save_snapshot t entries path = Snapshot.save ~db:t.database entries path

(* --- observability ------------------------------------------------------ *)

let cache_hit_rate t =
  let hits, lookups =
    Array.fold_left
      (fun (h, l) shard ->
        let sh = Nav_cache.hits shard.cache and sm = Nav_cache.misses shard.cache in
        (h + sh, l + sh + sm))
      (0, 0) t.shards
  in
  if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups

let plan_cache_hit_rate t =
  let hits, lookups =
    Array.fold_left
      (fun (h, l) shard ->
        match shard.sprefetch with
        | None -> (h, l)
        | Some pf ->
            let plans = Prefetch.plans pf in
            let ph = Bionav_prefetch.Plan_cache.hits plans
            and pm = Bionav_prefetch.Plan_cache.misses plans in
            (h + ph, l + ph + pm))
      (0, 0) t.shards
  in
  if lookups = 0 then 0. else float_of_int hits /. float_of_int lookups

let docset_sets_gauge = Metrics.gauge "bionav_docset_live_sets"
let docset_bytes_gauge = Metrics.gauge "bionav_docset_resident_bytes"
let docset_dense_gauge = Metrics.gauge "bionav_docset_live_dense"
let docset_sparse_gauge = Metrics.gauge "bionav_docset_live_sparse"
let docset_dedup_gauge = Metrics.gauge "bionav_docset_dedup_hit_rate"

(* Aggregate docset stats without any shard lock: the inverted index's
   arena is read directly (pure reads are domain-safe; its plain stat
   fields may lag the writer by a beat — monitoring tolerance), and each
   shard contributes the aggregate it published at its last lock
   release. The scrape path therefore never contends with navigation. *)
let docset_stats t =
  let acc =
    add_arena_stats zero_arena_stats
      (Docset_arena.stats (Bionav_search.Inverted_index.arena (Eutils.index t.eutils)))
  in
  Array.fold_left
    (fun acc shard -> add_arena_stats acc (Atomic.get shard.sarena_stats))
    acc t.shards

let publish_docset t =
  let st = docset_stats t in
  Metrics.set docset_sets_gauge (float_of_int st.Docset_arena.sets);
  Metrics.set docset_bytes_gauge (float_of_int st.Docset_arena.bytes);
  Metrics.set docset_dense_gauge (float_of_int st.Docset_arena.dense);
  Metrics.set docset_sparse_gauge (float_of_int st.Docset_arena.sparse);
  Metrics.set docset_dedup_gauge
    (if st.Docset_arena.intern_requests = 0 then 0.
     else float_of_int st.Docset_arena.dedup_hits /. float_of_int st.Docset_arena.intern_requests)

let metrics_text t =
  publish_live t;
  publish_docset t;
  Option.iter Bionav_segstore.Store.publish_metrics t.store;
  Procinfo.publish ();
  Metrics.dump ()
