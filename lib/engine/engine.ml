open Bionav_util
open Bionav_core
module Eutils = Bionav_search.Eutils

type config = {
  max_sessions : int;
  session_ttl_ms : float option;
  cache_capacity : int;
}

let default_config = { max_sessions = 256; session_ttl_ms = None; cache_capacity = 32 }

type session = {
  sid : string;
  query : string;
  nav : Nav_tree.t;
  navigation : Navigation.t;
  mutable tick : int;  (* recency clock value of the last touch *)
  mutable last_use_ms : float;  (* wall clock of the last touch, for TTLs *)
}

type t = {
  config : config;
  eutils : Eutils.t;
  cache : Nav_cache.t;
  sessions : (string, session) Hashtbl.t;
  mutable next_sid : int;
  mutable clock : int;
  mutable evictions : int;
}

let started_counter = Metrics.counter "bionav_sessions_started_total"
let evicted_counter = Metrics.counter "bionav_sessions_evicted_total"
let closed_counter = Metrics.counter "bionav_sessions_closed_total"
let expired_counter = Metrics.counter "bionav_sessions_expired_total"
let live_gauge = Metrics.gauge "bionav_sessions_live"

let create ?(config = default_config) ~database ~eutils () =
  if config.max_sessions < 1 then invalid_arg "Engine.create: max_sessions must be >= 1";
  let build query = Nav_tree.of_database database (Eutils.esearch eutils query) in
  {
    config;
    eutils;
    cache = Nav_cache.create ~capacity:config.cache_capacity ~build ();
    sessions = Hashtbl.create 64;
    next_sid = 0;
    clock = 0;
    evictions = 0;
  }

let eutils t = t.eutils
let config t = t.config

(* --- strategies -------------------------------------------------------- *)

let validate_strategy = function
  | Navigation.Static_paged { page_size } when page_size < 1 ->
      Error (Printf.sprintf "page_size must be >= 1 (got %d)" page_size)
  | s -> Ok s

let strategy_of_name ?(page_size = 10) name =
  match name with
  | None | Some "bionav" -> Ok (Navigation.bionav ())
  | Some "static" -> Ok Navigation.Static
  | Some "paged" -> validate_strategy (Navigation.Static_paged { page_size })
  | Some "optimal" -> Ok (Navigation.Optimal { params = Probability.default_params })
  | Some s -> Error (Printf.sprintf "unknown strategy %S" s)

(* --- session store ----------------------------------------------------- *)

let session_id s = s.sid
let session_query s = s.query
let session_nav s = s.nav
let navigation s = s.navigation

let session_count t = Hashtbl.length t.sessions
let eviction_count t = t.evictions

let publish_live t = Metrics.set live_gauge (float_of_int (Hashtbl.length t.sessions))

let touch t s =
  t.clock <- t.clock + 1;
  s.tick <- t.clock;
  s.last_use_ms <- Timing.now_ms ()

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ s acc ->
        match acc with Some best when best.tick <= s.tick -> acc | Some _ | None -> Some s)
      t.sessions None
  in
  match victim with
  | Some s ->
      Hashtbl.remove t.sessions s.sid;
      t.evictions <- t.evictions + 1;
      Metrics.incr evicted_counter;
      Logs.debug (fun m -> m "engine: evicted session %s (store full)" s.sid)
  | None -> ()

type search_outcome = No_results | Session of session

let search t ?(strategy = Navigation.bionav ()) query =
  match validate_strategy strategy with
  | Error msg -> Error msg
  | Ok strategy ->
      if String.trim query = "" then Error "empty query"
      else begin
        let nav = Nav_cache.get t.cache query in
        if Nav_tree.distinct_results nav = 0 then Ok No_results
        else begin
          while Hashtbl.length t.sessions >= t.config.max_sessions do
            evict_lru t
          done;
          let sid = Printf.sprintf "s%d" t.next_sid in
          t.next_sid <- t.next_sid + 1;
          let s =
            {
              sid;
              query;
              nav;
              navigation = Navigation.start strategy nav;
              tick = 0;
              last_use_ms = 0.;
            }
          in
          touch t s;
          Hashtbl.replace t.sessions sid s;
          Metrics.incr started_counter;
          publish_live t;
          Ok (Session s)
        end
      end

let find_session t sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some s ->
      touch t s;
      Some s
  | None -> None

let close t sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some _ ->
      Hashtbl.remove t.sessions sid;
      Metrics.incr closed_counter;
      publish_live t;
      true
  | None -> false

let sweep ?now_ms t =
  match t.config.session_ttl_ms with
  | None -> 0
  | Some ttl ->
      let now = match now_ms with Some n -> n | None -> Timing.now_ms () in
      let expired =
        Hashtbl.fold
          (fun sid s acc -> if now -. s.last_use_ms > ttl then sid :: acc else acc)
          t.sessions []
      in
      List.iter (Hashtbl.remove t.sessions) expired;
      let n = List.length expired in
      if n > 0 then begin
        Metrics.incr ~by:n expired_counter;
        publish_live t;
        Logs.debug (fun m -> m "engine: expired %d idle session(s)" n)
      end;
      n

(* --- navigation actions ------------------------------------------------ *)

let expand s node = Navigation.expand s.navigation node
let show_results s node = Navigation.show_results s.navigation node
let backtrack s = Navigation.backtrack s.navigation

(* --- detached sessions -------------------------------------------------- *)

let start strategy nav =
  (match validate_strategy strategy with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Engine.start: " ^ msg));
  Metrics.incr started_counter;
  Navigation.start strategy nav

(* --- observability ------------------------------------------------------ *)

let cache_hit_rate t = Nav_cache.hit_rate t.cache

let metrics_text t =
  publish_live t;
  Metrics.dump ()
