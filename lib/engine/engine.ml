open Bionav_util
open Bionav_core
module Eutils = Bionav_search.Eutils
module Prefetch = Bionav_prefetch.Prefetch
module Warmer = Bionav_prefetch.Warmer
module Snapshot = Bionav_store.Snapshot
module Clock = Bionav_resilience.Clock
module Guard = Bionav_resilience.Guard
module Deadline = Bionav_resilience.Deadline
module Chaos = Bionav_resilience.Chaos

exception Backend_unavailable of string

type config = {
  max_sessions : int;
  session_ttl_ms : float option;
  cache_capacity : int;
  prefetch : Prefetch.config option;
  clock : Clock.t;
  expand_budget_ms : float option;
  resilience : Guard.config option;
}

let default_config =
  {
    max_sessions = 256;
    session_ttl_ms = None;
    cache_capacity = 32;
    prefetch = None;
    clock = Clock.real;
    expand_budget_ms = None;
    resilience = Some Guard.default_config;
  }

type session = {
  sid : string;
  query : string;
  nav : Nav_tree.t;
  navigation : Navigation.t;
  mutable tick : int;  (* recency clock value of the last touch *)
  mutable last_use_ms : float;  (* config.clock time of the last touch, for TTLs *)
}

type t = {
  config : config;
  database : Bionav_store.Database.t;
  eutils : Eutils.t;
  guard : Guard.t option;
  run_search : string -> Docset.t;
  cache : Nav_cache.t;
  prefetch : Prefetch.t option;
  sessions : (string, session) Hashtbl.t;
  mutable next_sid : int;
  mutable clock : int;
  mutable evictions : int;
}

let started_counter = Metrics.counter "bionav_sessions_started_total"
let evicted_counter = Metrics.counter "bionav_sessions_evicted_total"
let closed_counter = Metrics.counter "bionav_sessions_closed_total"
let expired_counter = Metrics.counter "bionav_sessions_expired_total"
let live_gauge = Metrics.gauge "bionav_sessions_live"

let create ?(config = default_config) ?chaos ?snapshot ~database ~eutils () =
  if config.max_sessions < 1 then invalid_arg "Engine.create: max_sessions must be >= 1";
  (match config.expand_budget_ms with
  | Some b when b < 0. -> invalid_arg "Engine.create: expand_budget_ms must be >= 0"
  | Some _ | None -> ());
  let guard =
    match (config.resilience, chaos) with
    | None, None -> None
    | cfg, chaos ->
        let gconfig = Option.value cfg ~default:Guard.default_config in
        Some (Guard.create ?chaos ~config:gconfig ~clock:config.clock ())
  in
  let run_search query =
    match guard with
    | None -> Eutils.esearch eutils query
    | Some g -> (
        match Guard.call g ~op:"esearch" (fun () -> Eutils.esearch eutils query) with
        | Ok ids -> ids
        | Error e -> raise (Backend_unavailable (Guard.error_message e)))
  in
  let build query = Nav_tree.of_database database (run_search query) in
  let t =
    {
      config;
      database;
      eutils;
      guard;
      run_search;
      cache = Nav_cache.create ~capacity:config.cache_capacity ~build ();
      prefetch =
        Option.map (fun pc -> Prefetch.create ~config:pc ~clock:config.clock ()) config.prefetch;
      sessions = Hashtbl.create 64;
      next_sid = 0;
      clock = 0;
      evictions = 0;
    }
  in
  (match snapshot with
  | None -> ()
  | Some path ->
      let entries = Snapshot.load ~db:database path in
      let n =
        Warmer.apply ~db:database ~trees:t.cache
          ?plans:(Option.map Prefetch.plans t.prefetch)
          entries
      in
      Logs.info (fun m -> m "engine: warm-started %d quer%s from %s" n
                     (if n = 1 then "y" else "ies") path));
  t

let eutils t = t.eutils
let config t = t.config
let prefetch t = t.prefetch
let guard t = t.guard
let resilience_clock t = t.config.clock

(* --- strategies -------------------------------------------------------- *)

let validate_strategy = function
  | Navigation.Static_paged { page_size } when page_size < 1 ->
      Error (Printf.sprintf "page_size must be >= 1 (got %d)" page_size)
  | s -> Ok s

let strategy_of_name ?(page_size = 10) name =
  match name with
  | None | Some "bionav" -> Ok (Navigation.bionav ())
  | Some "static" -> Ok Navigation.Static
  | Some "paged" -> validate_strategy (Navigation.Static_paged { page_size })
  | Some "optimal" -> Ok (Navigation.Optimal { params = Probability.default_params })
  | Some s -> Error (Printf.sprintf "unknown strategy %S" s)

(* --- session store ----------------------------------------------------- *)

let session_id s = s.sid
let session_query s = s.query
let session_nav s = s.nav
let navigation s = s.navigation

let session_count t = Hashtbl.length t.sessions
let eviction_count t = t.evictions

let publish_live t = Metrics.set live_gauge (float_of_int (Hashtbl.length t.sessions))

let touch t s =
  t.clock <- t.clock + 1;
  s.tick <- t.clock;
  s.last_use_ms <- Clock.now_ms t.config.clock

(* A session of [query] just left the store. If it was the last one for
   that query, cancel its queued speculation — a dead session must not
   leave pending work behind. Cached plans stay: they are keyed by exact
   component and remain correct for future sessions of the same query. *)
let release_query t query =
  match t.prefetch with
  | None -> ()
  | Some pf ->
      let norm = Nav_cache.normalize query in
      let still_live =
        Hashtbl.fold
          (fun _ s acc -> acc || String.equal norm (Nav_cache.normalize s.query))
          t.sessions false
      in
      if not still_live then ignore (Prefetch.drop_query pf query : int)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ s acc ->
        match acc with Some best when best.tick <= s.tick -> acc | Some _ | None -> Some s)
      t.sessions None
  in
  match victim with
  | Some s ->
      Hashtbl.remove t.sessions s.sid;
      t.evictions <- t.evictions + 1;
      Metrics.incr evicted_counter;
      release_query t s.query;
      Logs.debug (fun m -> m "engine: evicted session %s (store full)" s.sid)
  | None -> ()

type search_outcome = No_results | Session of session

(* The budget factory handed to Navigation.set_budget: runs at EXPAND
   entry. The deadline starts first so an injected latency spike (the
   "expand" half of the fault plan) eats into it — that is exactly the
   overload signal that triggers degradation. *)
let expand_budget_factory t () =
  let deadline =
    Option.map
      (fun budget_ms -> Deadline.start ~clock:t.config.clock ~budget_ms)
      t.config.expand_budget_ms
  in
  (match t.guard with None -> () | Some g -> Guard.inject g ~op:"expand");
  match deadline with
  | None -> fun () -> false
  | Some d -> fun () -> Deadline.expired d

let search t ?(strategy = Navigation.bionav ()) query =
  match validate_strategy strategy with
  | Error msg -> Error msg
  | Ok strategy ->
      if String.trim query = "" then Error "empty query"
      else begin
        match Nav_cache.get t.cache query with
        | exception Backend_unavailable msg -> Error msg
        | nav ->
        if Nav_tree.distinct_results nav = 0 then Ok No_results
        else begin
          while Hashtbl.length t.sessions >= t.config.max_sessions do
            evict_lru t
          done;
          let sid = Printf.sprintf "s%d" t.next_sid in
          t.next_sid <- t.next_sid + 1;
          let s =
            {
              sid;
              query;
              nav;
              navigation = Navigation.start strategy nav;
              tick = 0;
              last_use_ms = 0.;
            }
          in
          touch t s;
          Hashtbl.replace t.sessions sid s;
          if Option.is_some t.guard || Option.is_some t.config.expand_budget_ms then
            Navigation.set_budget s.navigation (Some (expand_budget_factory t));
          (match t.prefetch with
          | Some pf -> Prefetch.attach pf ~query s.navigation
          | None -> ());
          Metrics.incr started_counter;
          publish_live t;
          Ok (Session s)
        end
      end

let find_session t sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some s ->
      touch t s;
      Some s
  | None -> None

let close t sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some s ->
      Hashtbl.remove t.sessions sid;
      Metrics.incr closed_counter;
      release_query t s.query;
      publish_live t;
      true
  | None -> false

let sweep ?now_ms t =
  match t.config.session_ttl_ms with
  | None -> 0
  | Some ttl ->
      let now = match now_ms with Some n -> n | None -> Clock.now_ms t.config.clock in
      let expired =
        Hashtbl.fold
          (fun _ s acc -> if now -. s.last_use_ms > ttl then s :: acc else acc)
          t.sessions []
      in
      List.iter (fun s -> Hashtbl.remove t.sessions s.sid) expired;
      List.iter (fun s -> release_query t s.query) expired;
      let n = List.length expired in
      if n > 0 then begin
        Metrics.incr ~by:n expired_counter;
        publish_live t;
        Logs.debug (fun m -> m "engine: expired %d idle session(s)" n)
      end;
      n

(* --- navigation actions ------------------------------------------------ *)

let expand s node = Navigation.expand s.navigation node
let show_results s node = Navigation.show_results s.navigation node
let backtrack s = Navigation.backtrack s.navigation

(* --- detached sessions -------------------------------------------------- *)

let start strategy nav =
  (match validate_strategy strategy with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Engine.start: " ^ msg));
  Metrics.incr started_counter;
  Navigation.start strategy nav

(* --- prefetch & warm start ---------------------------------------------- *)

let prefetch_tick t ~budget =
  match t.prefetch with None -> 0 | Some pf -> Prefetch.tick pf ~budget

let warm t queries =
  let entries = Warmer.build ~db:t.database ~run:t.run_search queries in
  ignore
    (Warmer.apply ~db:t.database ~trees:t.cache
       ?plans:(Option.map Prefetch.plans t.prefetch)
       entries
      : int);
  entries

let save_snapshot t entries path = Snapshot.save ~db:t.database entries path

(* --- observability ------------------------------------------------------ *)

let cache_hit_rate t = Nav_cache.hit_rate t.cache

let plan_cache_hit_rate t =
  match t.prefetch with
  | None -> 0.
  | Some pf ->
      let plans = Prefetch.plans pf in
      let h = Bionav_prefetch.Plan_cache.hits plans
      and m = Bionav_prefetch.Plan_cache.misses plans in
      if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let docset_sets_gauge = Metrics.gauge "bionav_docset_live_sets"
let docset_bytes_gauge = Metrics.gauge "bionav_docset_resident_bytes"
let docset_dense_gauge = Metrics.gauge "bionav_docset_live_dense"
let docset_sparse_gauge = Metrics.gauge "bionav_docset_live_sparse"
let docset_dedup_gauge = Metrics.gauge "bionav_docset_dedup_hit_rate"

(* The arenas alive right now: the inverted index's long-lived arena plus
   one per cached navigation tree. Session trees come out of the cache, so
   walking cache + sessions with physical dedup covers every arena the
   engine can reach. *)
let live_arenas t =
  let arenas = ref [ Bionav_search.Inverted_index.arena (Eutils.index t.eutils) ] in
  let note a = if not (List.memq a !arenas) then arenas := a :: !arenas in
  Nav_cache.fold_trees t.cache (fun nav () -> note (Nav_tree.arena nav)) ();
  Hashtbl.iter (fun _ s -> note (Nav_tree.arena s.nav)) t.sessions;
  !arenas

let publish_docset t =
  let sets, bytes, dense, sparse, requests, hits =
    List.fold_left
      (fun (s, b, d, sp, rq, h) arena ->
        let st = Docset_arena.stats arena in
        ( s + st.Docset_arena.sets,
          b + st.Docset_arena.bytes,
          d + st.Docset_arena.dense,
          sp + st.Docset_arena.sparse,
          rq + st.Docset_arena.intern_requests,
          h + st.Docset_arena.dedup_hits ))
      (0, 0, 0, 0, 0, 0) (live_arenas t)
  in
  Metrics.set docset_sets_gauge (float_of_int sets);
  Metrics.set docset_bytes_gauge (float_of_int bytes);
  Metrics.set docset_dense_gauge (float_of_int dense);
  Metrics.set docset_sparse_gauge (float_of_int sparse);
  Metrics.set docset_dedup_gauge
    (if requests = 0 then 0. else float_of_int hits /. float_of_int requests)

let docset_stats t =
  List.fold_left
    (fun acc arena ->
      let st = Docset_arena.stats arena in
      Docset_arena.
        {
          sets = acc.sets + st.sets;
          bytes = acc.bytes + st.bytes;
          dense = acc.dense + st.dense;
          sparse = acc.sparse + st.sparse;
          intern_requests = acc.intern_requests + st.intern_requests;
          dedup_hits = acc.dedup_hits + st.dedup_hits;
          memo_hits = acc.memo_hits + st.memo_hits;
        })
    Docset_arena.
      { sets = 0; bytes = 0; dense = 0; sparse = 0; intern_requests = 0; dedup_hits = 0; memo_hits = 0 }
    (live_arenas t)

let metrics_text t =
  publish_live t;
  publish_docset t;
  Metrics.dump ()
