open Bionav_util
open Bionav_core
module Eutils = Bionav_search.Eutils
module Prefetch = Bionav_prefetch.Prefetch
module Warmer = Bionav_prefetch.Warmer
module Snapshot = Bionav_store.Snapshot

type config = {
  max_sessions : int;
  session_ttl_ms : float option;
  cache_capacity : int;
  prefetch : Prefetch.config option;
}

let default_config =
  { max_sessions = 256; session_ttl_ms = None; cache_capacity = 32; prefetch = None }

type session = {
  sid : string;
  query : string;
  nav : Nav_tree.t;
  navigation : Navigation.t;
  mutable tick : int;  (* recency clock value of the last touch *)
  mutable last_use_ms : float;  (* wall clock of the last touch, for TTLs *)
}

type t = {
  config : config;
  database : Bionav_store.Database.t;
  eutils : Eutils.t;
  cache : Nav_cache.t;
  prefetch : Prefetch.t option;
  sessions : (string, session) Hashtbl.t;
  mutable next_sid : int;
  mutable clock : int;
  mutable evictions : int;
}

let started_counter = Metrics.counter "bionav_sessions_started_total"
let evicted_counter = Metrics.counter "bionav_sessions_evicted_total"
let closed_counter = Metrics.counter "bionav_sessions_closed_total"
let expired_counter = Metrics.counter "bionav_sessions_expired_total"
let live_gauge = Metrics.gauge "bionav_sessions_live"

let create ?(config = default_config) ?snapshot ~database ~eutils () =
  if config.max_sessions < 1 then invalid_arg "Engine.create: max_sessions must be >= 1";
  let build query = Nav_tree.of_database database (Eutils.esearch eutils query) in
  let t =
    {
      config;
      database;
      eutils;
      cache = Nav_cache.create ~capacity:config.cache_capacity ~build ();
      prefetch = Option.map (fun pc -> Prefetch.create ~config:pc ()) config.prefetch;
      sessions = Hashtbl.create 64;
      next_sid = 0;
      clock = 0;
      evictions = 0;
    }
  in
  (match snapshot with
  | None -> ()
  | Some path ->
      let entries = Snapshot.load ~db:database path in
      let n =
        Warmer.apply ~db:database ~trees:t.cache
          ?plans:(Option.map Prefetch.plans t.prefetch)
          entries
      in
      Logs.info (fun m -> m "engine: warm-started %d quer%s from %s" n
                     (if n = 1 then "y" else "ies") path));
  t

let eutils t = t.eutils
let config t = t.config
let prefetch t = t.prefetch

(* --- strategies -------------------------------------------------------- *)

let validate_strategy = function
  | Navigation.Static_paged { page_size } when page_size < 1 ->
      Error (Printf.sprintf "page_size must be >= 1 (got %d)" page_size)
  | s -> Ok s

let strategy_of_name ?(page_size = 10) name =
  match name with
  | None | Some "bionav" -> Ok (Navigation.bionav ())
  | Some "static" -> Ok Navigation.Static
  | Some "paged" -> validate_strategy (Navigation.Static_paged { page_size })
  | Some "optimal" -> Ok (Navigation.Optimal { params = Probability.default_params })
  | Some s -> Error (Printf.sprintf "unknown strategy %S" s)

(* --- session store ----------------------------------------------------- *)

let session_id s = s.sid
let session_query s = s.query
let session_nav s = s.nav
let navigation s = s.navigation

let session_count t = Hashtbl.length t.sessions
let eviction_count t = t.evictions

let publish_live t = Metrics.set live_gauge (float_of_int (Hashtbl.length t.sessions))

let touch t s =
  t.clock <- t.clock + 1;
  s.tick <- t.clock;
  s.last_use_ms <- Timing.now_ms ()

(* A session of [query] just left the store. If it was the last one for
   that query, cancel its queued speculation — a dead session must not
   leave pending work behind. Cached plans stay: they are keyed by exact
   component and remain correct for future sessions of the same query. *)
let release_query t query =
  match t.prefetch with
  | None -> ()
  | Some pf ->
      let norm = Nav_cache.normalize query in
      let still_live =
        Hashtbl.fold
          (fun _ s acc -> acc || String.equal norm (Nav_cache.normalize s.query))
          t.sessions false
      in
      if not still_live then ignore (Prefetch.drop_query pf query : int)

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun _ s acc ->
        match acc with Some best when best.tick <= s.tick -> acc | Some _ | None -> Some s)
      t.sessions None
  in
  match victim with
  | Some s ->
      Hashtbl.remove t.sessions s.sid;
      t.evictions <- t.evictions + 1;
      Metrics.incr evicted_counter;
      release_query t s.query;
      Logs.debug (fun m -> m "engine: evicted session %s (store full)" s.sid)
  | None -> ()

type search_outcome = No_results | Session of session

let search t ?(strategy = Navigation.bionav ()) query =
  match validate_strategy strategy with
  | Error msg -> Error msg
  | Ok strategy ->
      if String.trim query = "" then Error "empty query"
      else begin
        let nav = Nav_cache.get t.cache query in
        if Nav_tree.distinct_results nav = 0 then Ok No_results
        else begin
          while Hashtbl.length t.sessions >= t.config.max_sessions do
            evict_lru t
          done;
          let sid = Printf.sprintf "s%d" t.next_sid in
          t.next_sid <- t.next_sid + 1;
          let s =
            {
              sid;
              query;
              nav;
              navigation = Navigation.start strategy nav;
              tick = 0;
              last_use_ms = 0.;
            }
          in
          touch t s;
          Hashtbl.replace t.sessions sid s;
          (match t.prefetch with
          | Some pf -> Prefetch.attach pf ~query s.navigation
          | None -> ());
          Metrics.incr started_counter;
          publish_live t;
          Ok (Session s)
        end
      end

let find_session t sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some s ->
      touch t s;
      Some s
  | None -> None

let close t sid =
  match Hashtbl.find_opt t.sessions sid with
  | Some s ->
      Hashtbl.remove t.sessions sid;
      Metrics.incr closed_counter;
      release_query t s.query;
      publish_live t;
      true
  | None -> false

let sweep ?now_ms t =
  match t.config.session_ttl_ms with
  | None -> 0
  | Some ttl ->
      let now = match now_ms with Some n -> n | None -> Timing.now_ms () in
      let expired =
        Hashtbl.fold
          (fun _ s acc -> if now -. s.last_use_ms > ttl then s :: acc else acc)
          t.sessions []
      in
      List.iter (fun s -> Hashtbl.remove t.sessions s.sid) expired;
      List.iter (fun s -> release_query t s.query) expired;
      let n = List.length expired in
      if n > 0 then begin
        Metrics.incr ~by:n expired_counter;
        publish_live t;
        Logs.debug (fun m -> m "engine: expired %d idle session(s)" n)
      end;
      n

(* --- navigation actions ------------------------------------------------ *)

let expand s node = Navigation.expand s.navigation node
let show_results s node = Navigation.show_results s.navigation node
let backtrack s = Navigation.backtrack s.navigation

(* --- detached sessions -------------------------------------------------- *)

let start strategy nav =
  (match validate_strategy strategy with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Engine.start: " ^ msg));
  Metrics.incr started_counter;
  Navigation.start strategy nav

(* --- prefetch & warm start ---------------------------------------------- *)

let prefetch_tick t ~budget =
  match t.prefetch with None -> 0 | Some pf -> Prefetch.tick pf ~budget

let warm t queries =
  let entries =
    Warmer.build ~db:t.database ~run:(fun q -> Eutils.esearch t.eutils q) queries
  in
  ignore
    (Warmer.apply ~db:t.database ~trees:t.cache
       ?plans:(Option.map Prefetch.plans t.prefetch)
       entries
      : int);
  entries

let save_snapshot t entries path = Snapshot.save ~db:t.database entries path

(* --- observability ------------------------------------------------------ *)

let cache_hit_rate t = Nav_cache.hit_rate t.cache

let plan_cache_hit_rate t =
  match t.prefetch with
  | None -> 0.
  | Some pf ->
      let plans = Prefetch.plans pf in
      let h = Bionav_prefetch.Plan_cache.hits plans
      and m = Bionav_prefetch.Plan_cache.misses plans in
      if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let metrics_text t =
  publish_live t;
  Metrics.dump ()
