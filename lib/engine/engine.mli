(** The serving engine: one owner for the whole query→navigate pipeline.

    Every entry point (web app, CLI, bench harness, workload experiments)
    used to hand-wire query → {!Bionav_core.Nav_tree} →
    {!Bionav_core.Navigation} itself, and the web app's session table grew
    without bound. The engine consolidates that pipeline:

    + {b query normalization and tree caching} — queries go through
      {!Bionav_core.Nav_cache} (trimmed, lowercased, LRU-bounded);
    + {b session lifecycle} — sessions get a monotonic id and live in a
      bounded store: at [max_sessions] the least recently used session is
      evicted (counted), sessions can be {!close}d explicitly, and a TTL
      {!sweep} expires idle ones;
    + {b strategy dispatch} — strategies are validated at construction
      ({!strategy_of_name}), so a malformed [page_size] is a clean error
      instead of an exception at EXPAND time;
    + {b observability} — every stage records into
      {!Bionav_util.Metrics}; {!metrics_text} renders the registry for
      the web [/metrics] route and the CLI [--metrics] dump.

    This is the seam scaling work plugs into: entry points talk to the
    engine, never to [Navigation.start] directly.

    {b Concurrency} (DESIGN.md §11–§12): the store is sharded
    [config.shards] ways by session-id hash. Each shard owns a mutex, a
    tree cache, prefetch state and a backend guard; sessions — and the
    navigation trees and docset arenas behind them — are confined to
    their shard and only {e mutated} under its lock, with the arena
    {!Bionav_util.Docset_arena.adopt}ed by the locking domain. The one
    cross-shard structure, the inverted index's arena, is confined by an
    internal search lock taken only on tree-cache misses.

    Reads never take the shard lock: every mutating action republishes
    an immutable {!Bionav_search.Nav_snapshot} of the session (frozen
    arena, epoch-versioned), and {!snapshot} hands it out with one
    [Atomic.get]. The shard mutex covers only session-table mutation,
    tree/plan-cache writes, speculation enqueueing and snapshot
    publication; rendering, result paging, metrics scraping and
    speculative {e ranking} all run lock-free. Lock behaviour is
    instrumented: [bionav_shard_lock_wait_ms] / [_hold_ms] histograms,
    [bionav_shard_lock_acquisitions_total], and a
    [bionav_shard_lock_waiters_s<N>] queue-depth gauge per shard. Shard
    mutexes are non-reentrant; acquiring one twice from the same domain
    ({!run_locked} inside {!run_locked}, or {!expand} inside
    {!run_locked}) raises [Invalid_argument] instead of deadlocking.

    {b Resilience} ({!Bionav_resilience}): every backend call (the
    ESearch keyword lookup) runs under a {!Bionav_resilience.Guard} —
    retry with backoff, circuit breaker, optional fault injection — and
    a failed call surfaces as an [Error] from {!search}, never an
    exception. All timing (session TTLs, EXPAND deadlines, speculation
    job TTLs, retry backoff) reads [config.clock], so a simulated clock
    makes the whole engine's time behaviour test-controlled. With
    [expand_budget_ms] set, an EXPAND whose budget is exhausted before
    the cut computation starts degrades to a static-style cut (see
    {!Bionav_core.Navigation.set_budget}). *)

exception Backend_unavailable of string
(** The guarded backend gave up (retries exhausted or circuit open).
    Raised by {!warm}; {!search} catches it internally. *)

type config = {
  max_sessions : int;  (** Bound on live sessions (>= 1). Default 256. *)
  session_ttl_ms : float option;
      (** Idle time after which {!sweep} expires a session. Default
          [None] (no TTL). *)
  cache_capacity : int;  (** Navigation-tree cache entries. Default 32. *)
  prefetch : Bionav_prefetch.Prefetch.config option;
      (** Enable the plan cache + speculator ({!Bionav_prefetch}); every
          Heuristic session is attached to it. Default [None] (off). *)
  clock : Bionav_resilience.Clock.t;
      (** The clock behind every engine timing decision. Default the
          real clock. *)
  expand_budget_ms : float option;
      (** Per-EXPAND time budget (>= 0): once exhausted, Heuristic
          sessions serve a degraded static-style cut instead of running
          the solver. Default [None] (no budget). *)
  resilience : Bionav_resilience.Guard.config option;
      (** Retry/breaker policy for backend calls. Default
          [Some Guard.default_config]; [None] disables the guard (calls
          go straight to the backend) unless chaos is injected. *)
  shards : int;
      (** Session-store shards (>= 1, default 1). Sessions are hashed to
          a shard by session id; each shard has its own mutex, tree
          cache, prefetch state and guard, so expands on sessions in
          different shards proceed in parallel while every navigation
          tree stays confined to the shard that built it (the same query
          may therefore be built once per shard). The per-shard session
          bound is [max 1 (max_sessions / shards)]. A chaos plan requires
          [shards = 1] (see {!create}). *)
  segstore : Bionav_segstore.Store.spec option;
      (** Serve associations from an out-of-core segment store instead of
          the in-memory table: {!create} opens the store and rebinds the
          database's association backend through
          {!Bionav_segstore.Bridge}. The passed database still supplies
          the hierarchy (and its citation count is cross-checked against
          the store's). Default [None] (in-memory). *)
  adaptive : Bionav_adaptive.Adaptive.config option;
      (** Learn EXPLORE/EXPAND probabilities from live navigation
          behaviour ({!Bionav_adaptive.Adaptive}): cost-model sessions
          started with the default static model get the engine's current
          learned model instead, live actions feed the evidence store,
          and [bionav learn] / {!learn} bulk-ingest transcripts. Default
          [None] — the paper's static model, byte-identical behaviour. *)
}

val default_config : config

type t

val create :
  ?config:config ->
  ?chaos:Bionav_resilience.Chaos.t ->
  ?snapshot:string ->
  database:Bionav_store.Database.t ->
  eutils:Bionav_search.Eutils.t ->
  unit ->
  t
(** [snapshot] is a {!Bionav_store.Snapshot} path to warm-start from:
    navigation trees are rebuilt into the tree cache and — when prefetch
    is enabled — root cuts seed the plan cache. [chaos] injects a fault
    plan into the backend guard (forcing a guard into existence even
    when [config.resilience] is [None]): backend calls draw failures and
    latency spikes from it, EXPANDs draw latency spikes (op ["expand"]).
    A chaos plan is one stateful fault stream, so it requires
    [config.shards = 1] — sharding would race the draws and silently
    skew the plan.

    With [config.segstore] set, the association backend is the opened
    segment store and [database] contributes only its hierarchy; the
    store must describe the same corpus (citation counts are checked).
    @raise Invalid_argument if [config.max_sessions < 1], a negative
    [expand_budget_ms], [chaos] combined with [config.shards > 1], a
    segment store that is corrupt or disagrees with [database], or
    the snapshot is corrupt or from a different database; [Sys_error]
    if unreadable. *)

val eutils : t -> Bionav_search.Eutils.t
val config : t -> config

val prefetch : t -> Bionav_prefetch.Prefetch.t option
(** Shard 0's prefetch facade, when enabled (prefetch state is
    per-shard; shard 0 is the whole engine when [shards = 1]). *)

val guard : t -> Bionav_resilience.Guard.t option
(** Shard 0's backend guard (for breaker/chaos introspection), when
    enabled. *)

val shard_count : t -> int
(** [config.shards]. *)

val segstore : t -> Bionav_segstore.Store.t option
(** The opened segment store, when [config.segstore] was set. *)

val adaptive : t -> Bionav_adaptive.Adaptive.t option
(** The engine's learned-probability state, when [config.adaptive] was
    set. Shared across shards; safe to inspect from any domain. *)

val learn : t -> Bionav_core.Session_log.event list -> bool
(** Bulk-ingest one session transcript into the learned model and refresh
    it ({!Bionav_adaptive.Adaptive.learn}); [false] when the engine runs
    the static model ([config.adaptive = None]). New sessions pick up the
    refreshed model; running sessions keep the model they started with
    (their plan-cache keys carry its fingerprint, so no stale plan is
    ever served to a refreshed session). *)

val resilience_clock : t -> Bionav_resilience.Clock.t
(** [config.clock] — the clock every engine timing decision reads. *)

(* --- strategies ------------------------------------------------------- *)

val validate_strategy :
  Bionav_core.Navigation.strategy -> (Bionav_core.Navigation.strategy, string) result
(** [Error] for [Static_paged] with [page_size < 1]. *)

val strategy_of_name :
  ?page_size:int -> string option -> (Bionav_core.Navigation.strategy, string) result
(** Parse a user-supplied strategy name: [None] or [Some "bionav"] is the
    paper's Heuristic-ReducedOpt, plus ["static"], ["paged"] (with
    [page_size], default 10, validated >= 1), ["optimal"] and ["faceted"]
    (start in the (descriptor × qualifier) facet space; see {!facet}).
    Anything else — including an invalid page size — is [Error].
    Strategies built here carry the static default model; {!search}
    substitutes the learned model when the engine is adaptive. *)

(* --- sessions --------------------------------------------------------- *)

type session
(** A live navigation session: a {e stack of navigation spaces} (derived
    trees), of which the top frame is the one being navigated. {!search}
    installs the base space ("descriptor", or "qualifier" for a [Faceted]
    strategy); {!refine} and {!facet} push derived spaces; {!unrefine}
    pops. *)

val session_id : session -> string
val session_query : session -> string

val session_nav : session -> Bionav_core.Nav_tree.t
(** The {e top} frame's navigation tree. *)

val navigation : session -> Bionav_core.Navigation.t
(** The {e top} frame's navigation state. The value changes identity
    across {!refine}/{!facet}/{!unrefine}; do not cache it across
    space-changing actions. *)

val space_id : session -> string
(** Identity of the active navigation space: a derivation path such as
    ["descriptor"], ["descriptor>refine:42"] or
    ["descriptor>refine:42>facets"]. Deterministic — equal paths on equal
    queries denote equal spaces, which is what makes re-derivation
    cacheable. *)

val refine_depth : session -> int
(** Frames above the base space (0 = unrefined). *)

val snapshot : session -> Bionav_search.Nav_snapshot.t
(** The session's latest published snapshot — one [Atomic.get], no lock.
    Safe from any domain; the view is internally consistent as of the
    epoch it carries, and stays valid (immutable) even as the session
    advances. This is the read path: render, page results and rank from
    it instead of locking. *)

type search_outcome =
  | No_results  (** The query matched no citations; no session created. *)
  | Session of session

val search :
  t -> ?strategy:Bionav_core.Navigation.strategy -> string -> (search_outcome, string) result
(** Run the pipeline: validate the strategy (default {!Bionav_core.Navigation.bionav}),
    fetch or build the navigation tree through the cache, and — if the
    query has results — create a session under a fresh monotonic id
    ("s0", "s1", ...), evicting the least recently used session first
    when the store is full. [Error] on a blank query, invalid strategy,
    or an unavailable backend (guard gave up / circuit open) — backend
    faults never escape as exceptions. *)

val find_session : t -> string -> session option
(** Refreshes the session's recency and idle clock. *)

val close : t -> string -> bool
(** Explicitly end a session; [false] if the id is unknown. *)

val sweep : ?now_ms:float -> t -> int
(** Expire sessions idle longer than [config.session_ttl_ms]; returns the
    number closed (0 when no TTL is configured). [now_ms] defaults to
    [config.clock]'s now — prefer driving a simulated clock over passing
    an explicit [now_ms]. *)

val session_count : t -> int
val eviction_count : t -> int
(** LRU evictions (not explicit closes or TTL expiries) since creation. *)

(* --- navigation actions ----------------------------------------------- *)

val expand : session -> int -> int list
val show_results : session -> int -> Bionav_util.Docset.t
val backtrack : session -> bool
(** Each action takes the session's shard lock, adopts the tree's docset
    arena for the calling domain (so any worker domain may serve any
    session), and republishes the session {!snapshot} before releasing
    the lock. The docset returned by {!show_results} lives in the live
    arena but is safe to iterate after the lock is released (pure arena
    reads are domain-safe). *)

val refine : session -> int -> int
(** Query-by-navigation: narrow the live result set to the full
    navigation subtree [L(n)] of the given visible node, derive the
    descriptor space of that subset (through the shard's tree cache —
    revisiting a refinement path is a cache hit, not a re-derivation),
    and push it as the session's new top frame. Returns the refined
    space's distinct result count. Pending speculation of the previous
    space is cancelled; the snapshot republishes with the new space id
    and an advanced epoch in one atomic store.
    @raise Invalid_argument if the node is not visible or is the root. *)

val facet : session -> int
(** Derive the (descriptor × qualifier) facet space of the current
    result set and push it: one page per MeSH qualifier (primary-qualifier
    assignment, an exact partition — no citation lost or duplicated)
    plus an "(unqualified)" page. Returns the number of non-empty facet
    pages. @raise Invalid_argument if the session is already in a facet
    space. *)

val unrefine : session -> bool
(** Pop the top navigation space, restoring the one beneath it exactly
    as it was left (same tree, same expansion state, same cost
    accounting); [false] at the base space. The epoch still advances —
    snapshots are never reused across space changes. *)

val run_locked : session -> (unit -> 'a) -> 'a
(** Run [f] holding the session's shard lock with the tree's arena
    adopted — for bulk drivers (simulation replay) that make many tree
    reads/expands as one atom — then republish the session {!snapshot}.
    Inside [f], use the raw {!Bionav_core.Navigation} operations,
    {b never} {!expand}/{!show_results}/{!backtrack} or a nested
    [run_locked]: the shard mutex is not reentrant, and re-entry from
    the owning domain raises [Invalid_argument]. For pure reads, prefer
    {!snapshot} — it needs no lock at all. *)

(* --- detached sessions ------------------------------------------------ *)

val start :
  Bionav_core.Navigation.strategy -> Bionav_core.Nav_tree.t -> Bionav_core.Navigation.t
(** A session outside any store, for simulation and benchmarking
    ({!Bionav_core.Simulate}, {!Bionav_core.Stochastic_user}). This is
    the one sanctioned wrapper over [Navigation.start]: it validates the
    strategy (@raise Invalid_argument on a bad one) and counts the
    session. *)

(* --- prefetch & warm start -------------------------------------------- *)

val prefetch_tick : t -> budget:int -> int
(** Run up to [budget] queued speculation jobs {e per shard} (idle-time
    pacing, e.g. between requests in the serve loop), each shard ticked
    under its own lock; 0 when prefetch is disabled. *)

type prefetch_domain

val spawn_prefetch_domain : ?interval_s:float -> t -> budget:int -> prefetch_domain
(** Spawn a background domain calling {!prefetch_tick} every
    [interval_s] seconds (default 0.01). Each tick takes the shard locks
    in turn, so speculation never races request-serving domains over
    shard state. Stop it with {!stop_prefetch_domain} before discarding
    the engine. *)

val stop_prefetch_domain : prefetch_domain -> unit
(** Signal the domain to stop and join it. *)

val warm : t -> string list -> Bionav_store.Snapshot.entry list
(** Run each query through the engine's own search path, build its
    navigation tree and root cut ({!Bionav_prefetch.Warmer.build}), and
    seed the live caches. Returns the entries so the caller can persist
    them with {!save_snapshot}. Works with prefetch disabled (trees are
    still warmed; root cuts are only kept when the plan cache exists). *)

val save_snapshot : t -> Bionav_store.Snapshot.entry list -> string -> unit
(** Persist warm-start entries against this engine's database. *)

(* --- observability ---------------------------------------------------- *)

val cache_hit_rate : t -> float

val plan_cache_hit_rate : t -> float
(** Plan-cache hits / lookups; 0 when prefetch is disabled or before the
    first lookup. *)

val docset_stats : t -> Bionav_util.Docset_arena.stats
(** Aggregate {!Bionav_util.Docset_arena.stats} over every arena the
    engine can reach: the inverted index's long-lived arena plus one per
    cached navigation tree (deduplicated physically — session trees come
    out of the cache). Lock-free: the index arena is read directly and
    each shard contributes the aggregate it published at its last lock
    release, so the figures may lag in-flight work by one lock cycle. *)

val metrics_text : t -> string
(** Refresh the engine gauges — live session count plus the docset-arena
    gauges ([bionav_docset_live_sets], [bionav_docset_resident_bytes],
    [bionav_docset_live_dense]/[_sparse], [bionav_docset_dedup_hit_rate],
    aggregated as in {!docset_stats}), the segment-store cache gauges
    when one is open, and the process peak-RSS gauge
    ([bionav_process_peak_rss_bytes]) — and render the whole process
    metrics registry ({!Bionav_util.Metrics.dump}). *)
