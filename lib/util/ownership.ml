exception Violation of string

type t = { mutable owner : int; mutable frozen : bool; name : string }

type state = Live of int | Frozen

let enforce =
  let from_env =
    match Sys.getenv_opt "BIONAV_OWNERSHIP" with
    | Some ("1" | "on" | "true") -> true
    | Some _ | None -> false
  in
  Atomic.make from_env

let set_enforced b = Atomic.set enforce b

let enforced () = Atomic.get enforce

let self_id () = (Domain.self () :> int)

let create ?(name = "anonymous") () = { owner = self_id (); frozen = false; name }

let owner t = t.owner

let is_frozen t = t.frozen

let state t = if t.frozen then Frozen else Live t.owner

let freeze t = t.frozen <- true

let frozen_violation t =
  raise
    (Violation
       (Printf.sprintf "%s: domain %d mutating a frozen structure" t.name (self_id ())))

let adopt t = if t.frozen then frozen_violation t else t.owner <- self_id ()

let check t =
  if t.frozen then frozen_violation t
  else if Atomic.get enforce then begin
    let me = self_id () in
    if t.owner <> me then
      raise
        (Violation
           (Printf.sprintf "%s: domain %d mutating structure owned by domain %d" t.name me
              t.owner))
  end
