exception Violation of string

type t = { mutable owner : int; name : string }

let enforce =
  let from_env =
    match Sys.getenv_opt "BIONAV_OWNERSHIP" with
    | Some ("1" | "on" | "true") -> true
    | Some _ | None -> false
  in
  Atomic.make from_env

let set_enforced b = Atomic.set enforce b

let enforced () = Atomic.get enforce

let self_id () = (Domain.self () :> int)

let create ?(name = "anonymous") () = { owner = self_id (); name }

let owner t = t.owner

let adopt t = t.owner <- self_id ()

let check t =
  if Atomic.get enforce then begin
    let me = self_id () in
    if t.owner <> me then
      raise
        (Violation
           (Printf.sprintf "%s: domain %d mutating structure owned by domain %d" t.name me
              t.owner))
  end
