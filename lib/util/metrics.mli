(** A process-wide registry of named counters, gauges and latency
    histograms.

    The paper's execution-time experiments (Figs. 10 and 11) measure
    per-EXPAND latency offline; a serving system needs the same numbers
    always-on. Subsystems register metrics by name at module
    initialization and record into them on the hot path; the web app's
    [/metrics] route and the CLI's [--metrics] flag render one plaintext
    dump of everything.

    Design constraints:

    - {b One registry per process.} Two lookups of the same name return
      the same metric, so call sites never thread handles around.
    - {b No allocation on the hot path.} Counters bump an [Atomic.t];
      histograms bump preallocated [int]/[float] arrays. Creation
      (registry lookup) allocates and takes the registry mutex; keep it
      at module top level.
    - {b Fixed-bucket histograms.} Observations land in a bucket of a
      fixed, sorted bound array (default: log-spaced 0.01 ms - 10 s), so
      recording is O(buckets) worst case with no stored samples;
      percentiles are linearly interpolated within the winning bucket.
    - {b Domain-safe, lock-free recording.} Counters and gauges are
      atomics ([add] is a CAS loop). Each histogram keeps one bucket
      shard per recording domain (assigned via domain-local storage the
      first time a domain observes), so [observe] touches only
      single-writer state and never contends; [count]/[sum]/
      [percentile]/[dump] aggregate the shards at scrape time. A scrape
      racing live recorders may read a shard mid-update (monitoring
      tolerance); once a recording domain has been joined, totals read
      from the joining domain are exact. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find-or-create. @raise Invalid_argument if the name is malformed
    (empty, or containing spaces, quotes, braces or newlines) or already
    registered as a different metric kind. *)

val gauge : string -> gauge
(** Find-or-create; same naming rules as {!counter}. *)

val histogram : ?buckets:float array -> string -> histogram
(** Find-or-create; [buckets] are strictly increasing upper bounds (an
    implicit overflow bucket is appended) and default to
    {!default_latency_buckets}. On a second lookup of an existing
    histogram the [buckets] argument is ignored. *)

val default_latency_buckets : float array
(** Log-spaced milliseconds: 0.01, 0.025, 0.05, ... 5000, 10000. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1; must be >= 0). *)

val value : counter -> int

val set : gauge -> float -> unit

val add : gauge -> float -> unit
(** Adjust a gauge by a (possibly negative) delta — the idiom for
    level-style gauges maintained incrementally (queue depths, in-flight
    work) where recomputing the absolute value on every transition would
    cost a scan. *)

val gauge_value : gauge -> float

val observe : histogram -> float -> unit
(** Record one observation (e.g. a latency in milliseconds). *)

val count : histogram -> int
val sum : histogram -> float

val percentile : histogram -> float -> float
(** [percentile h p] for [p] in [0, 100], estimated from the buckets:
    linear interpolation between the winning bucket's bounds (the first
    bucket interpolates from 0, the overflow bucket up to the maximum
    observation). 0 when the histogram is empty. *)

val dump : unit -> string
(** Plaintext rendering of every registered metric, sorted by name, in a
    Prometheus-like format: counters and gauges as [name value] lines,
    histograms as [name_count], [name_sum] and
    [name{quantile="0.5|0.95|0.99"}] lines. *)

val reset : unit -> unit
(** Zero every registered metric (registrations survive). For tests. *)
