(* "VmHWM:     12345 kB" — the kernel reports kilobytes. *)
let parse_vmhwm line =
  let prefix = "VmHWM:" in
  let plen = String.length prefix in
  if String.length line > plen && String.sub line 0 plen = prefix then
    let rest = String.trim (String.sub line plen (String.length line - plen)) in
    match String.split_on_char ' ' rest with
    | kb :: _ -> Option.map (fun v -> v * 1024) (int_of_string_opt kb)
    | [] -> None
  else None

let read_proc_status () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec scan () =
            match In_channel.input_line ic with
            | None -> None
            | Some line -> ( match parse_vmhwm line with Some v -> Some v | None -> scan ())
          in
          scan ())

(* The OCaml heap's own high-water mark: undercounts mmap'd and malloc'd
   memory but is available everywhere and stays monotone. *)
let gc_peak_bytes () = Gc.((quick_stat ()).top_heap_words) * (Sys.word_size / 8)

(* Decided once: if /proc/self/status yields a VmHWM at first call, it
   will keep doing so for the process lifetime. *)
let chosen_source =
  lazy (match read_proc_status () with Some _ -> `Proc_status | None -> `Gc_heap)

let source () = Lazy.force chosen_source

let peak_rss_bytes () =
  match Lazy.force chosen_source with
  | `Gc_heap -> gc_peak_bytes ()
  | `Proc_status -> (
      match read_proc_status () with Some v -> v | None -> gc_peak_bytes ())

let peak_rss_gauge = Metrics.gauge "bionav_process_peak_rss_bytes"
let publish () = Metrics.set peak_rss_gauge (float_of_int (peak_rss_bytes ()))
