(** Bit-twiddling helpers shared by the mask-based solvers.

    Component and reduced trees are addressed as bitmasks of node indices
    (at most [Cost_model.max_size] = 30 bits in practice, but every
    function here is correct for the full 63-bit OCaml integer range). *)

val popcount : int -> int
(** Number of set bits, by divide-and-conquer (SWAR) rather than a
    per-bit loop: each 32-bit half is folded in five constant-time steps.
    Requires a non-negative argument (all masks are). *)

val lowest_bit : int -> int
(** [lowest_bit m] is the index of the least significant set bit of [m].
    @raise Invalid_argument on 0. *)
