(* Domain-safety model (see the interface): counters and gauges are
   lock-free atomics; histograms shard their buckets per domain and
   aggregate at scrape time, so the record path never takes a lock and
   never contends with other domains. The registry itself is guarded by
   one mutex, but registration happens at module initialization, not on
   the hot path. *)

type counter = { count : int Atomic.t }

type gauge = { cell : float Atomic.t }

(* One histogram shard, written by exactly one domain. [acc] is
   [| sum; min; max |], flat so updating never allocates a boxed float. *)
type shard = {
  counts : int array;  (* length bounds + 1; the last is the overflow bucket *)
  mutable total : int;
  acc : float array;
}

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  mutable shards : shard array;  (* indexed by the domain's slot *)
  hlock : Mutex.t;  (* guards shard-array growth and reset, never recording *)
}

(* Every domain gets a small dense slot the first time it records into any
   histogram; slots are never reused, so a shard has a single writer for
   the whole process lifetime and its plain mutable fields are race-free.
   Aggregation reads may observe a shard mid-update (a total without its
   bucket, say) — acceptable for monitoring; joining a domain publishes
   all its writes, so post-join totals are exact. *)
let next_slot = Atomic.make 0

let slot_key = Domain.DLS.new_key (fun () -> Atomic.fetch_and_add next_slot 1)

let my_slot () = Domain.DLS.get slot_key

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

let default_latency_buckets =
  [|
    0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.;
    2500.; 5000.; 10000.;
  |]

let check_name name =
  let bad c = c = ' ' || c = '"' || c = '{' || c = '}' || c = '\n' in
  if name = "" || String.exists bad name then
    invalid_arg (Printf.sprintf "Metrics: malformed metric name %S" name)

let kind_error name = invalid_arg (Printf.sprintf "Metrics: %S registered as another kind" name)

let find_or_register name f =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> m
      | None ->
          let m = f () in
          Hashtbl.replace registry name m;
          m)

let counter name =
  check_name name;
  match find_or_register name (fun () -> Counter { count = Atomic.make 0 }) with
  | Counter c -> c
  | Gauge _ | Histogram _ -> kind_error name

let gauge name =
  check_name name;
  match find_or_register name (fun () -> Gauge { cell = Atomic.make 0. }) with
  | Gauge g -> g
  | Counter _ | Histogram _ -> kind_error name

let check_buckets bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty buckets";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done

let new_shard n_bounds =
  { counts = Array.make (n_bounds + 1) 0; total = 0; acc = [| 0.; infinity; neg_infinity |] }

let histogram ?(buckets = default_latency_buckets) name =
  check_name name;
  match
    find_or_register name (fun () ->
        check_buckets buckets;
        Histogram { bounds = Array.copy buckets; shards = [||]; hlock = Mutex.create () })
  with
  | Histogram h -> h
  | Counter _ | Gauge _ -> kind_error name

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  ignore (Atomic.fetch_and_add c.count by : int)

let value c = Atomic.get c.count

let set g v = Atomic.set g.cell v

let rec add g delta =
  let old = Atomic.get g.cell in
  if not (Atomic.compare_and_set g.cell old (old +. delta)) then add g delta

let gauge_value g = Atomic.get g.cell

(* The caller's own shard; grows the shard array under the lock on first
   use. Growth copies shard {e references}, so a domain that raced us and
   read the old array still records into shards the aggregate walk sees. *)
let own_shard h =
  let slot = my_slot () in
  let shards = h.shards in
  if slot < Array.length shards then shards.(slot)
  else
    Mutex.protect h.hlock (fun () ->
        if slot < Array.length h.shards then h.shards.(slot)
        else begin
          let grown = Array.init (slot + 1) (fun i ->
              if i < Array.length h.shards then h.shards.(i)
              else new_shard (Array.length h.bounds))
          in
          h.shards <- grown;
          grown.(slot)
        end)

let observe h v =
  let s = own_shard h in
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  s.counts.(i) <- s.counts.(i) + 1;
  s.total <- s.total + 1;
  s.acc.(0) <- s.acc.(0) +. v;
  if v < s.acc.(1) then s.acc.(1) <- v;
  if v > s.acc.(2) then s.acc.(2) <- v

(* --- scrape-time aggregation ------------------------------------------- *)

let fold_shards h f init = Array.fold_left f init h.shards

let count h = fold_shards h (fun acc s -> acc + s.total) 0

let sum h = if count h = 0 then 0. else fold_shards h (fun acc s -> acc +. s.acc.(0)) 0.

let agg_counts h =
  let out = Array.make (Array.length h.bounds + 1) 0 in
  Array.iter
    (fun s -> Array.iteri (fun i c -> out.(i) <- out.(i) + c) s.counts)
    h.shards;
  out

let agg_max h = fold_shards h (fun acc s -> Float.max acc s.acc.(2)) neg_infinity

let percentile h p =
  let total = count h in
  if total = 0 then 0.
  else begin
    let counts = agg_counts h in
    let p = Float.max 0. (Float.min 100. p) in
    let rank = p /. 100. *. float_of_int total in
    let n = Array.length h.bounds in
    let rec find i cum =
      let cum' = cum + counts.(i) in
      if float_of_int cum' >= rank || i = n then (i, cum)
      else find (i + 1) cum'
    in
    let i, cum_before = find 0 0 in
    let lo = if i = 0 then 0. else h.bounds.(i - 1) in
    let hi = if i < n then h.bounds.(i) else Float.max lo (agg_max h) in
    if counts.(i) = 0 then lo
    else begin
      let frac = (rank -. float_of_int cum_before) /. float_of_int counts.(i) in
      lo +. (Float.max 0. (Float.min 1. frac) *. (hi -. lo))
    end
  end

let dump () =
  let entries =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  in
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name (value c))
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%s %g\n" name (gauge_value g))
      | Histogram h ->
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name (count h));
          Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" name (sum h));
          List.iter
            (fun (label, p) ->
              Buffer.add_string buf
                (Printf.sprintf "%s{quantile=\"%s\"} %g\n" name label (percentile h p)))
            [ ("0.5", 50.); ("0.95", 95.); ("0.99", 99.) ])
    (List.sort (fun (a, _) (b, _) -> compare a b) entries);
  Buffer.contents buf

let reset () =
  let metrics =
    Mutex.protect registry_lock (fun () ->
        Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  in
  List.iter
    (fun m ->
      match m with
      | Counter c -> Atomic.set c.count 0
      | Gauge g -> Atomic.set g.cell 0.
      | Histogram h ->
          Mutex.protect h.hlock (fun () ->
              Array.iter
                (fun s ->
                  Array.fill s.counts 0 (Array.length s.counts) 0;
                  s.total <- 0;
                  s.acc.(0) <- 0.;
                  s.acc.(1) <- infinity;
                  s.acc.(2) <- neg_infinity)
                h.shards))
    metrics
