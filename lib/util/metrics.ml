type counter = { mutable count : int }

(* Gauges and histogram accumulators live in flat float arrays so that
   updating them never allocates a boxed float. *)
type gauge = { cell : float array (* [| value |] *) }

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : int array;  (* length bounds + 1; the last is the overflow bucket *)
  mutable total : int;
  acc : float array;  (* [| sum; min; max |] *)
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let default_latency_buckets =
  [|
    0.01; 0.025; 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.;
    2500.; 5000.; 10000.;
  |]

let check_name name =
  let bad c = c = ' ' || c = '"' || c = '{' || c = '}' || c = '\n' in
  if name = "" || String.exists bad name then
    invalid_arg (Printf.sprintf "Metrics: malformed metric name %S" name)

let kind_error name = invalid_arg (Printf.sprintf "Metrics: %S registered as another kind" name)

let counter name =
  check_name name;
  match Hashtbl.find_opt registry name with
  | Some (Counter c) -> c
  | Some _ -> kind_error name
  | None ->
      let c = { count = 0 } in
      Hashtbl.replace registry name (Counter c);
      c

let gauge name =
  check_name name;
  match Hashtbl.find_opt registry name with
  | Some (Gauge g) -> g
  | Some _ -> kind_error name
  | None ->
      let g = { cell = [| 0. |] } in
      Hashtbl.replace registry name (Gauge g);
      g

let check_buckets bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty buckets";
  for i = 1 to Array.length bounds - 1 do
    if bounds.(i) <= bounds.(i - 1) then
      invalid_arg "Metrics.histogram: buckets must be strictly increasing"
  done

let histogram ?(buckets = default_latency_buckets) name =
  check_name name;
  match Hashtbl.find_opt registry name with
  | Some (Histogram h) -> h
  | Some _ -> kind_error name
  | None ->
      check_buckets buckets;
      let h =
        {
          bounds = Array.copy buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          total = 0;
          acc = [| 0.; infinity; neg_infinity |];
        }
      in
      Hashtbl.replace registry name (Histogram h);
      h

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: negative increment";
  c.count <- c.count + by

let value c = c.count

let set g v = g.cell.(0) <- v
let add g delta = g.cell.(0) <- g.cell.(0) +. delta
let gauge_value g = g.cell.(0)

let observe h v =
  let n = Array.length h.bounds in
  let rec bucket i = if i >= n || v <= h.bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.total <- h.total + 1;
  h.acc.(0) <- h.acc.(0) +. v;
  if v < h.acc.(1) then h.acc.(1) <- v;
  if v > h.acc.(2) then h.acc.(2) <- v

let count h = h.total
let sum h = if h.total = 0 then 0. else h.acc.(0)

let percentile h p =
  if h.total = 0 then 0.
  else begin
    let p = Float.max 0. (Float.min 100. p) in
    let rank = p /. 100. *. float_of_int h.total in
    let n = Array.length h.bounds in
    let rec find i cum =
      let cum' = cum + h.counts.(i) in
      if float_of_int cum' >= rank || i = n then (i, cum)
      else find (i + 1) cum'
    in
    let i, cum_before = find 0 0 in
    let lo = if i = 0 then 0. else h.bounds.(i - 1) in
    let hi = if i < n then h.bounds.(i) else Float.max lo h.acc.(2) in
    if h.counts.(i) = 0 then lo
    else begin
      let frac = (rank -. float_of_int cum_before) /. float_of_int h.counts.(i) in
      lo +. (Float.max 0. (Float.min 1. frac) *. (hi -. lo))
    end
  end

let dump () =
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) registry [] in
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      match Hashtbl.find registry name with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name c.count)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%s %g\n" name g.cell.(0))
      | Histogram h ->
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.total);
          Buffer.add_string buf (Printf.sprintf "%s_sum %g\n" name (sum h));
          List.iter
            (fun (label, p) ->
              Buffer.add_string buf
                (Printf.sprintf "%s{quantile=\"%s\"} %g\n" name label (percentile h p)))
            [ ("0.5", 50.); ("0.95", 95.); ("0.99", 99.) ])
    (List.sort compare names);
  Buffer.contents buf

let reset () =
  Hashtbl.iter
    (fun _ m ->
      match m with
      | Counter c -> c.count <- 0
      | Gauge g -> g.cell.(0) <- 0.
      | Histogram h ->
          Array.fill h.counts 0 (Array.length h.counts) 0;
          h.total <- 0;
          h.acc.(0) <- 0.;
          h.acc.(1) <- infinity;
          h.acc.(2) <- neg_infinity)
    registry
