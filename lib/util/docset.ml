module A = Docset_arena

type t = { arena : A.t; id : A.id }

let arena s = s.arena
let id s = s.id

(* One process-wide arena backs [empty] and any construction that does not
   name an arena. Sets built here migrate lazily: binary operations rebase
   into the left operand's arena, so shared-arena consumers are unaffected. *)
let shared = A.create ()

let empty = { arena = shared; id = A.empty_id }

let is_empty s = s.id = A.empty_id

(* --- construction -------------------------------------------------------- *)

let sort_dedup a =
  let a = Array.copy a in
  Array.sort Int.compare a;
  let n = Array.length a in
  if n = 0 then a
  else begin
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> a.(!k - 1) then begin
        a.(!k) <- a.(i);
        incr k
      end
    done;
    if !k = n then a else Array.sub a 0 !k
  end

let of_sorted_array_unchecked_in arena a = { arena; id = A.intern_unchecked arena a }
let of_array_in arena a = of_sorted_array_unchecked_in arena (sort_dedup a)
let of_list_in arena l = of_array_in arena (Array.of_list l)
let singleton_in arena x = of_sorted_array_unchecked_in arena [| x |]
let of_intset_in arena s = of_sorted_array_unchecked_in arena (Intset.to_array s)

let of_sorted_array_unchecked a = of_sorted_array_unchecked_in (A.create ()) a
let of_array a = of_array_in (A.create ()) a
let of_list l = of_list_in (A.create ()) l
let singleton x = singleton_in (A.create ()) x
let of_intset s = of_intset_in (A.create ()) s

let in_arena arena s =
  if s.arena == arena then s
  else { arena; id = A.intern_unchecked arena (A.to_array s.arena s.id) }

let consolidate sets =
  let n = Array.length sets in
  if n = 0 then sets
  else begin
    let target = ref None in
    Array.iter
      (fun s -> if !target = None && not (is_empty s) then target := Some s.arena)
      sets;
    match !target with
    | None -> sets
    | Some arena -> Array.map (in_arena arena) sets
  end

(* --- queries ------------------------------------------------------------- *)

let cardinal s = A.cardinal s.arena s.id
let fingerprint s = A.fingerprint s.arena s.id
let mem x s = A.mem s.arena s.id x
let choose s = A.choose s.arena s.id
let to_array s = A.to_array s.arena s.id
let to_intset s = Intset.of_sorted_array_unchecked (to_array s)
let iter f s = A.iter s.arena s.id f
let fold f s init = A.fold s.arena s.id f init
let elements s = fold (fun x acc -> x :: acc) s [] |> List.rev
let equal_array s a = A.equal_array s.arena s.id a

let equal a b =
  if a.arena == b.arena then a.id = b.id
  else
    fingerprint a = fingerprint b
    && cardinal a = cardinal b
    && A.equal_array a.arena a.id (to_array b)

let compare a b =
  if a.arena == b.arena && a.id = b.id then 0
  else
    let c = Int.compare (fingerprint a) (fingerprint b) in
    if c <> 0 then c
    else
      let aa = to_array a and ba = to_array b in
      let c = Int.compare (Array.length aa) (Array.length ba) in
      if c <> 0 then c
      else begin
        let r = ref 0 and i = ref 0 in
        while !r = 0 && !i < Array.length aa do
          r := Int.compare aa.(!i) ba.(!i);
          incr i
        done;
        !r
      end

(* --- set algebra ---------------------------------------------------------- *)

let binop f a b =
  let b = in_arena a.arena b in
  { arena = a.arena; id = f a.arena a.id b.id }

let union a b = if is_empty a then b else if is_empty b then a else binop A.union a b
let inter a b = if is_empty a || is_empty b then empty else binop A.inter a b
let diff a b = if is_empty a then empty else if is_empty b then a else binop A.diff a b

let union_many sets =
  match List.filter (fun s -> not (is_empty s)) sets with
  | [] -> empty
  | first :: _ as live ->
      let arena = first.arena in
      let ids = List.map (fun s -> (in_arena arena s).id) live in
      { arena; id = A.union_many arena ids }

let inter_cardinal a b =
  if is_empty a || is_empty b then 0
  else
    let b = in_arena a.arena b in
    A.inter_cardinal a.arena a.id b.id

let union_cardinal a b = cardinal a + cardinal b - inter_cardinal a b
let subset a b = inter_cardinal a b = cardinal a

let pp fmt s =
  Format.fprintf fmt "{";
  let first = ref true in
  iter
    (fun x ->
      if !first then first := false else Format.fprintf fmt ",@ ";
      Format.pp_print_int fmt x)
    s;
  Format.fprintf fmt "}"
