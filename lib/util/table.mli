(** ASCII table rendering for benchmark and experiment reports.

    The benchmark harness regenerates the paper's tables and figures as text;
    this module provides consistent column alignment and simple horizontal
    bar charts for the figure-shaped outputs. *)

type align = Left | Right

val render : ?header:string list -> align list -> string list list -> string
(** [render ~header aligns rows] lays out rows in columns. The [aligns] list
    gives per-column alignment; missing entries default to [Left]. *)

val bar_chart :
  ?width:int -> title:string -> (string * float) list -> string
(** [bar_chart ~title series] renders a horizontal bar chart scaled to the
    maximum value; [width] is the maximum bar width in characters
    (default 50). *)

val grouped_bar_chart :
  ?width:int ->
  title:string ->
  series_names:string * string ->
  (string * float * float) list ->
  string
(** Two bars per row (e.g. static vs BioNav), sharing one scale. *)

val section : string -> string
(** A prominent section header line. *)
