(** Monotonic wall-clock timing for the execution-time experiments
    (paper Figs. 10 and 11). *)

val now_ms : unit -> float
(** Wall-clock milliseconds since the epoch (the clock every other
    function here reads; exposed for session timestamps and TTLs). *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the elapsed
    wall-clock time in milliseconds. *)

val time_ms : (unit -> unit) -> float
(** Elapsed milliseconds of a unit computation. *)

val repeat_ms : int -> (unit -> unit) -> float
(** [repeat_ms n f] runs [f] [n] times and returns the mean elapsed
    milliseconds per run. Requires [n > 0]. *)
