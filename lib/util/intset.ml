type t = int array
(* Invariant: strictly increasing. *)

let check_sorted a =
  let ok = ref true in
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then ok := false
  done;
  !ok

let empty = [||]

let is_empty t = Array.length t = 0

let singleton x = [| x |]

let dedup_sorted a =
  let n = Array.length a in
  if n = 0 then [||]
  else begin
    let out = Array.make n a.(0) in
    let k = ref 1 in
    for i = 1 to n - 1 do
      if a.(i) <> out.(!k - 1) then begin
        out.(!k) <- a.(i);
        incr k
      end
    done;
    if !k = n then out else Array.sub out 0 !k
  end

let of_array a =
  let b = Array.copy a in
  Array.sort compare b;
  dedup_sorted b

let of_list l = of_array (Array.of_list l)

let of_sorted_array_unchecked a =
  assert (check_sorted a);
  a

let cardinal = Array.length

let mem x t =
  let lo = ref 0 and hi = ref (Array.length t - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if t.(mid) = x then found := true
    else if t.(mid) < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let union a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin out.(!k) <- x; incr i end
      else if y < x then begin out.(!k) <- y; incr j end
      else begin out.(!k) <- x; incr i; incr j end;
      incr k
    done;
    while !i < na do out.(!k) <- a.(!i); incr i; incr k done;
    while !j < nb do out.(!k) <- b.(!j); incr j; incr k done;
    if !k = na + nb then out else Array.sub out 0 !k
  end

let inter a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else begin out.(!k) <- x; incr i; incr j; incr k end
  done;
  if !k = Array.length out then out else Array.sub out 0 !k

let inter_cardinal a b =
  let na = Array.length a and nb = Array.length b in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else begin incr i; incr j; incr k end
  done;
  !k

let diff a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin out.(!k) <- x; incr i; incr k end
    else if y < x then incr j
    else begin incr i; incr j end
  done;
  while !i < na do out.(!k) <- a.(!i); incr i; incr k done;
  if !k = na then out else Array.sub out 0 !k

let add x t = if mem x t then t else union (singleton x) t

let remove x t = if mem x t then diff t (singleton x) else t

(* Heap-based k-way merge: a binary min-heap of (head value, source, cursor)
   emits the global minimum per step, so total work is O(N log k) with one
   output pass and no intermediate merge arrays. *)
let union_many_heap sets =
  let srcs = Array.of_list sets in
  let k = Array.length srcs in
  let total = Array.fold_left (fun acc s -> acc + Array.length s) 0 srcs in
  (* heap.(i) = (current head value, source index); idx.(s) = cursor into
     source s. Invariant: every live source appears exactly once. *)
  let heap = Array.make k (0, 0) in
  let idx = Array.make k 0 in
  let hn = ref 0 in
  let swap i j =
    let tmp = heap.(i) in
    heap.(i) <- heap.(j);
    heap.(j) <- tmp
  in
  let rec sift_up i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if fst heap.(i) < fst heap.(p) then begin
        swap i p;
        sift_up p
      end
    end
  in
  let rec sift_down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < !hn && fst heap.(l) < fst heap.(!m) then m := l;
    if r < !hn && fst heap.(r) < fst heap.(!m) then m := r;
    if !m <> i then begin
      swap i !m;
      sift_down !m
    end
  in
  Array.iteri
    (fun s src ->
      if Array.length src > 0 then begin
        heap.(!hn) <- (src.(0), s);
        incr hn;
        sift_up (!hn - 1)
      end)
    srcs;
  let out = Array.make total 0 in
  let n = ref 0 in
  while !hn > 0 do
    let v, s = heap.(0) in
    if !n = 0 || out.(!n - 1) <> v then begin
      out.(!n) <- v;
      incr n
    end;
    idx.(s) <- idx.(s) + 1;
    if idx.(s) < Array.length srcs.(s) then begin
      heap.(0) <- (srcs.(s).(idx.(s)), s);
      sift_down 0
    end
    else begin
      decr hn;
      if !hn > 0 then begin
        heap.(0) <- heap.(!hn);
        sift_down 0
      end
    end
  done;
  if !n = total then out else Array.sub out 0 !n

let union_many sets =
  (* Pairwise balanced merging is cache-friendlier for few operands; the
     heap wins once the merge tree gets deep. *)
  let k = List.length sets in
  if k > 8 then union_many_heap sets
  else
    let rec round = function
      | [] -> empty
      | [ s ] -> s
      | sets ->
          let rec pair acc = function
            | [] -> acc
            | [ s ] -> s :: acc
            | a :: b :: rest -> pair (union a b :: acc) rest
          in
          round (pair [] sets)
    in
    round sets

let subset a b = inter_cardinal a b = cardinal a

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let elements t = Array.to_list t

let to_array t = Array.copy t

let iter f t = Array.iter f t

let fold f t init = Array.fold_left (fun acc x -> f x acc) init t

let choose t = if is_empty t then raise Not_found else t.(0)

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";")
       Format.pp_print_int)
    (elements t)
