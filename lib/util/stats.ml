let sum xs = Array.fold_left ( +. ) 0. xs

let sum_int xs = Array.fold_left ( + ) 0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0. else sum xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) ** 2.)) 0. xs in
    acc /. float_of_int n

let stddev xs = sqrt (variance xs)

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then 0.
  else begin
    let ys = sorted_copy xs in
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then ys.(lo)
    else
      let frac = rank -. float_of_int lo in
      ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let median xs = percentile xs 50.

let minimum xs = Array.fold_left min infinity xs
let maximum xs = Array.fold_left max neg_infinity xs

let entropy weights =
  let total = sum weights in
  if total <= 0. then 0.
  else
    Array.fold_left
      (fun acc w ->
        if w <= 0. then acc
        else
          let p = w /. total in
          acc -. (p *. log p))
      0. weights

let normalized_entropy weights =
  let positive = Array.fold_left (fun n w -> if w > 0. then n + 1 else n) 0 weights in
  if positive < 2 then 0.
  else
    let h = entropy weights in
    let hmax = log (float_of_int positive) in
    min 1.0 (h /. hmax)

let harmonic n =
  let acc = ref 0. in
  for i = 1 to n do
    acc := !acc +. (1. /. float_of_int i)
  done;
  !acc

let histogram ~bins xs =
  assert (bins > 0);
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let lo = minimum xs and hi = maximum xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = if b >= bins then bins - 1 else b in
        counts.(b) <- counts.(b) + 1)
      xs;
    Array.init bins (fun b ->
        (lo +. (float_of_int b *. width), lo +. (float_of_int (b + 1) *. width), counts.(b)))
  end
