(** Immutable set handles over {!Docset_arena} storage.

    A [Docset.t] is an (arena, id) pair: the universal result-set type of
    the navigation stack. Two handles in the same arena are equal iff
    their ids are equal (O(1)); handles from different arenas compare by
    content fingerprint first, full scan only on fingerprint collision.

    Arena discipline: {!of_list} and friends intern into a private
    per-value arena (convenient for construction and tests); the [_in]
    variants intern into a caller-supplied arena so that sets built for
    one navigation tree share storage and memo tables. Binary operations
    between handles from different arenas rebase the right operand into
    the left operand's arena. *)

type t

val arena : t -> Docset_arena.t
val id : t -> Docset_arena.id

val empty : t
(** The empty set, in a process-wide shared arena. *)

val is_empty : t -> bool

(* --- construction (private mini-arena per value) ----------------------- *)

val singleton : int -> t

val of_list : int list -> t
(** Sorts and deduplicates. *)

val of_array : int array -> t
(** Sorts and deduplicates; does not mutate its argument. *)

val of_sorted_array_unchecked : int array -> t
(** The caller guarantees sorted strictly increasing; the array may be
    adopted and must not be mutated afterwards. *)

val of_intset : Intset.t -> t

(* --- construction into a shared arena ---------------------------------- *)

val of_list_in : Docset_arena.t -> int list -> t
val of_array_in : Docset_arena.t -> int array -> t
val of_sorted_array_unchecked_in : Docset_arena.t -> int array -> t
val of_intset_in : Docset_arena.t -> Intset.t -> t
val singleton_in : Docset_arena.t -> int -> t

val in_arena : Docset_arena.t -> t -> t
(** Rebase a handle into [arena] (no-op if it already lives there). *)

val consolidate : t array -> t array
(** Rebase every handle into one shared arena (the first non-empty
    handle's arena) so subsequent cross-element set algebra is memoized
    in one place. Used by constructors that accept per-node set arrays. *)

(* --- queries ------------------------------------------------------------ *)

val cardinal : t -> int
(** O(1). *)

val fingerprint : t -> int
(** Content hash; equal sets have equal fingerprints in any arena. O(1). *)

val mem : int -> t -> bool
val choose : t -> int
(** Smallest element. @raise Not_found if empty. *)

val equal : t -> t -> bool
(** O(1) within an arena; cross-arena compares fingerprints then content. *)

val compare : t -> t -> int
(** Total order consistent with {!equal} (fingerprint-major; content order
    on collision). Not the subset order. *)

val equal_array : t -> int array -> bool
(** Contains exactly the elements of this sorted array; allocation-free. *)

val elements : t -> int list
val to_array : t -> int array
(** Fresh copy; safe to mutate. *)

val to_intset : t -> Intset.t
val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

(* --- set algebra (memoized in the left operand's arena) ----------------- *)

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val union_many : t list -> t
(** Folds memoized unions in the first non-empty operand's arena. *)

val inter_cardinal : t -> t -> int
(** Allocation-free (SWAR popcount on bitset pairs); memoized. *)

val union_cardinal : t -> t -> int
val subset : t -> t -> bool

val pp : Format.formatter -> t -> unit
