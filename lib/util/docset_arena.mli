(** Per-query arenas of interned integer sets.

    Navigation passes the same citation sets up and down the stack: the
    [I(n)] sets of ancestor chains overlap massively, component trees copy
    node result lists out of the navigation tree, and the cost model's hot
    loop re-unions the same subtrees for every candidate cut. An arena
    stores each {e distinct} set exactly once (structural interning), picks
    a density-appropriate physical representation per set — sorted array
    for sparse sets, packed bitset for dense ones — and memoizes set
    algebra on interned ids, so repeated unions, intersections and
    distinct-count queries are O(1) table hits after first computation.

    Ids are only meaningful within their arena. {!Docset} wraps (arena, id)
    pairs into self-contained handles; this module is the storage layer.

    {b Concurrency model.} Writers are confined to one domain at a
    time: the arena carries an {!Ownership} stamp, mutating operations
    (interning, set algebra, live memoizing "reads" like
    {!inter_cardinal}) check it, and the engine {!adopt}s an arena
    under the shard lock before touching it from a worker domain. With
    [BIONAV_OWNERSHIP=1] a cross-domain mutation raises
    {!Ownership.Violation} instead of corrupting the tables.

    Pure reads ({!cardinal}, {!mem}, {!iter}, {!to_array},
    {!fingerprint}, …) are safe from {e any} domain {e concurrently
    with the single writer}: interned sets are immutable once published,
    and the backing arrays are grown copy-then-publish through
    [Atomic]s (slot stores happen before the set count is advanced, so
    a reader never observes a half-initialized slot). Only the memo
    tables remain writer-private — which is why {!inter_cardinal} is a
    mutating call on a live arena.

    A {!freeze}d arena rejects all further mutation (unconditionally,
    not just under [BIONAV_OWNERSHIP]) and in exchange every operation
    that doesn't intern — including {!inter_cardinal}, which switches
    to lookup-only memo reads — becomes safe from any number of domains
    with no lock. The engine freezes each published navigation
    snapshot's arena (DESIGN.md §12). *)

type t

type id = int
(** Dense arena-local set identifier. Equal ids denote the same physical
    (and therefore structurally equal) set. *)

val create : unit -> t
(** A fresh arena owned by the calling domain. *)

val adopt : t -> unit
(** Transfer ownership to the calling domain. Call only while holding
    the lock that serializes access to this arena (see {!Ownership.adopt}). *)

val owner_domain : t -> int
(** Id of the domain currently owning this arena. *)

val freeze : t -> unit
(** Irreversibly seal the arena: every mutating operation (interning,
    set algebra, {!adopt}) raises {!Ownership.Violation} from then on,
    and all remaining operations — including {!inter_cardinal} — become
    safe to call from any domain without synchronization. Call while
    still holding exclusive access; freezing is the arena's last
    mutation. *)

val is_frozen : t -> bool

val empty_id : id
(** The empty set, pre-interned in every arena (id 0). *)

val intern : t -> int array -> id
(** Intern a {b sorted, strictly increasing} array (not adopted — the
    arena copies or repacks). Returns the existing id when a structurally
    equal set is already interned. @raise Invalid_argument if the array is
    not strictly increasing. *)

val intern_unchecked : t -> int array -> id
(** [intern] without the sortedness check; the caller must guarantee it.
    The array must not be mutated afterwards (it may be adopted). *)

val cardinal : t -> id -> int
(** O(1). *)

val fingerprint : t -> id -> int
(** Content hash, computed once at intern time; equal sets have equal
    fingerprints in {e any} arena. O(1). *)

val mem : t -> id -> int -> bool
val choose : t -> id -> int
(** Smallest element. @raise Not_found on the empty set. *)

val to_array : t -> id -> int array
(** Fresh sorted array; safe to mutate. *)

val iter : t -> id -> (int -> unit) -> unit
(** Ascending. *)

val fold : t -> id -> (int -> 'a -> 'a) -> 'a -> 'a
(** Ascending. *)

val equal_array : t -> id -> int array -> bool
(** Does the interned set contain exactly the elements of this sorted
    array? Allocation-free. *)

val union : t -> id -> id -> id
val inter : t -> id -> id -> id
val diff : t -> id -> id -> id
(** Memoized per (operation, operand pair): the first call materializes
    and interns the result, repeats are table hits. *)

val union_many : t -> id list -> id
(** Fold of memoized {!union}s over the de-duplicated, ascending operand
    ids — deterministic, so overlapping calls share memo entries. *)

val inter_cardinal : t -> id -> id -> int
(** [cardinal (inter a b)] without materializing the intersection:
    SWAR popcount over word pairs for bitset operands, merge-count for
    sorted ones. Memoized on live arenas (a mutating call); on frozen
    arenas the memo is consulted read-only and misses recompute. *)

val union_cardinal : t -> id -> id -> int
(** [cardinal a + cardinal b - inter_cardinal a b], allocation-free. *)

val subset : t -> id -> id -> bool

type stats = {
  sets : int;  (** Distinct sets interned (including the empty set). *)
  bytes : int;  (** Resident payload bytes across all representations. *)
  dense : int;  (** Sets stored as packed bitsets. *)
  sparse : int;  (** Sets stored as sorted arrays. *)
  intern_requests : int;  (** Total [intern] calls. *)
  dedup_hits : int;  (** Intern calls answered by an existing set. *)
  memo_hits : int;  (** Set-algebra calls answered from the op memo. *)
}

val stats : t -> stats

val dedup_hit_rate : t -> float
(** [dedup_hits / intern_requests], 0 when nothing was interned. *)
