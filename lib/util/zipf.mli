(** Zipf-distributed sampling.

    Citation counts per MeSH concept, token frequencies in generated abstracts
    and background annotation noise all follow heavy-tailed distributions; a
    Zipf law with exponent around 1 is the standard model. The sampler
    precomputes the cumulative distribution and answers draws by binary
    search, so sampling is O(log n). *)

type t

val create : ?exponent:float -> int -> t
(** [create ~exponent n] prepares a sampler over ranks [0 .. n-1] where rank
    [r] has probability proportional to [1 / (r+1)^exponent]. Default
    exponent is [1.0]. Requires [n > 0]. *)

val size : t -> int
(** Number of ranks. *)

val exponent : t -> float

val draw : t -> Rng.t -> int
(** Sample a rank. Rank 0 is the most likely. *)

val prob : t -> int -> float
(** [prob t r] is the probability of rank [r]. *)

val expected_counts : t -> int -> float array
(** [expected_counts t total] is the expected number of occurrences of each
    rank among [total] independent draws. Useful for calibration tests. *)
