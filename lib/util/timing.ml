let now_ms () = Unix.gettimeofday () *. 1e3

let time f =
  let t0 = now_ms () in
  let result = f () in
  let t1 = now_ms () in
  (result, t1 -. t0)

let time_ms f =
  let (), ms = time f in
  ms

let repeat_ms n f =
  assert (n > 0);
  let t0 = now_ms () in
  for _ = 1 to n do
    f ()
  done;
  (now_ms () -. t0) /. float_of_int n
