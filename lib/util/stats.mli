(** Small numerical-statistics toolkit used by the cost model, the corpus
    calibration tests and the benchmark reports. *)

val mean : float array -> float
(** Arithmetic mean; 0. for an empty array. *)

val variance : float array -> float
(** Population variance; 0. for arrays of length < 2. *)

val stddev : float array -> float

val median : float array -> float
(** 0. for an empty array. Does not mutate its argument. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0,100], nearest-rank with linear
    interpolation. 0. for an empty array. *)

val minimum : float array -> float
val maximum : float array -> float

val sum : float array -> float
val sum_int : int array -> int

val entropy : float array -> float
(** Shannon entropy (natural log) of a non-negative weight vector; the vector
    is normalized internally. Zero weights contribute nothing. 0. if the
    total weight is 0. *)

val normalized_entropy : float array -> float
(** [entropy w / log n] where [n] is the number of strictly positive weights;
    by convention 0. when fewer than two weights are positive. Values lie in
    [0,1]. *)

val harmonic : int -> float
(** [harmonic n] is the n-th harmonic number. *)

val histogram : bins:int -> float array -> (float * float * int) array
(** [histogram ~bins xs] returns [(lo, hi, count)] triples covering
    [min xs, max xs]. Empty array for empty input. Requires [bins > 0]. *)
