type id = int

(* Physical representation of one interned set. The density split follows
   the hybrid posting-list design from the IR literature: a set whose
   packed bitset over its own span is smaller than its sorted array is
   stored as the bitset (32 payload bits per word so popcounts stay in
   Bits.pop32 territory), everything else as the sorted array. The choice
   is deterministic in the content, so structurally equal sets always pack
   identically and interning can compare representations directly. *)
type repr =
  | Sparse of int array  (* sorted strictly increasing *)
  | Dense of { base : int; words : int array; card : int }
      (* bit [i] of [words.(w)] set <=> [base + 32*w + i] is a member;
         [base] is a multiple of 32 and elements are non-negative *)

(* Storage uses the OCaml 5 publication idiom so that pure reads need no
   lock even while a (serialized) writer interns new sets: a writer that
   needs room first publishes a grown copy of [reprs]/[fps] via
   Atomic.set, then fills the new slot with plain stores, and only then
   publishes the slot via [Atomic.set n]. A reader that loads [n] first
   and the arrays second therefore always sees fully-initialized slots
   for every id below the [n] it read. Ids at or above that [n] simply
   don't exist yet from the reader's point of view.

   The memo/intern hashtables are NOT covered by this protocol: they are
   plain tables serialized by ownership while the arena is live, and
   become safely readable by everyone once the arena is {!freeze}d
   (frozen arenas never insert — see [inter_cardinal]). *)
type t = {
  own : Ownership.t;
  reprs : repr array Atomic.t;
  fps : int array Atomic.t;
  n : int Atomic.t;
  intern_tbl : (int, id list ref) Hashtbl.t;  (* fingerprint -> candidate ids *)
  op_memo : (int * id * id, id) Hashtbl.t;
  count_memo : (id * id, int) Hashtbl.t;  (* normalized pair -> |a inter b| *)
  mutable bytes : int;
  mutable dense_count : int;
  mutable sparse_count : int;
  mutable intern_requests : int;
  mutable dedup_hits : int;
  mutable memo_hits : int;
}

let empty_id = 0

(* Process-wide monotonic counters; per-arena levels live in [stats] and
   are published as gauges by whoever owns the live arenas (the engine). *)
let interned_counter = Metrics.counter "bionav_docset_interned_sets_total"
let dedup_counter = Metrics.counter "bionav_docset_dedup_hits_total"
let memo_counter = Metrics.counter "bionav_docset_memo_hits_total"
let dense_counter = Metrics.counter "bionav_docset_dense_sets_total"
let sparse_counter = Metrics.counter "bionav_docset_sparse_sets_total"

let word_bits = 32

let fp_seed = 0x1505

let fp_prime = 0x100000001b3

let fingerprint_of_array a =
  Array.fold_left (fun h x -> (h lxor x) * fp_prime land max_int) fp_seed a

let create () =
  let reprs = Array.make 16 (Sparse [||]) in
  let fps = Array.make 16 0 in
  reprs.(0) <- Sparse [||];
  fps.(0) <- fingerprint_of_array [||];
  let t =
    {
      own = Ownership.create ~name:"Docset_arena" ();
      reprs = Atomic.make reprs;
      fps = Atomic.make fps;
      n = Atomic.make 1;
      intern_tbl = Hashtbl.create 64;
      op_memo = Hashtbl.create 128;
      count_memo = Hashtbl.create 128;
      bytes = 0;
      dense_count = 0;
      sparse_count = 0;
      intern_requests = 0;
      dedup_hits = 0;
      memo_hits = 0;
    }
  in
  (* The empty set is pre-interned as id 0 without counting as a request. *)
  Hashtbl.replace t.intern_tbl fps.(0) (ref [ 0 ]);
  t.sparse_count <- t.sparse_count + 1;
  t

(* --- representation helpers ------------------------------------------- *)

let repr_cardinal = function Sparse a -> Array.length a | Dense d -> d.card

let repr_bytes = function
  | Sparse a -> (8 * Array.length a) + 24
  | Dense d -> (8 * Array.length d.words) + 40

let repr_iter r f =
  match r with
  | Sparse a -> Array.iter f a
  | Dense { base; words; _ } ->
      Array.iteri
        (fun wi word ->
          let w = ref word in
          while !w <> 0 do
            let b = !w land - !w in
            f (base + (word_bits * wi) + Bits.popcount (b - 1));
            w := !w land lnot b
          done)
        words

let repr_to_array r =
  match r with
  | Sparse a -> Array.copy a
  | Dense d ->
      let out = Array.make d.card 0 in
      let k = ref 0 in
      repr_iter r (fun x ->
          out.(!k) <- x;
          incr k);
      out

let repr_mem r x =
  match r with
  | Sparse a ->
      let lo = ref 0 and hi = ref (Array.length a - 1) in
      let found = ref false in
      while (not !found) && !lo <= !hi do
        let mid = (!lo + !hi) / 2 in
        if a.(mid) = x then found := true
        else if a.(mid) < x then lo := mid + 1
        else hi := mid - 1
      done;
      !found
  | Dense { base; words; _ } ->
      let idx = x - base in
      idx >= 0
      && idx < word_bits * Array.length words
      && words.(idx / word_bits) land (1 lsl (idx mod word_bits)) <> 0

(* Structural equality between an interned representation and a candidate
   sorted array, allocation-free. *)
let repr_equal_array r a =
  match r with
  | Sparse b ->
      Array.length a = Array.length b
      &&
      let ok = ref true in
      for i = 0 to Array.length a - 1 do
        if a.(i) <> b.(i) then ok := false
      done;
      !ok
  | Dense d ->
      Array.length a = d.card && Array.for_all (fun x -> repr_mem r x) a

(* Pack a sorted strictly-increasing array into the denser of the two
   representations. Negative elements force the sorted array. *)
let pack a =
  let n = Array.length a in
  if n = 0 then Sparse [||]
  else begin
    let lo = a.(0) and hi = a.(n - 1) in
    if lo < 0 then Sparse a
    else begin
      let base = lo / word_bits * word_bits in
      let n_words = ((hi - base) / word_bits) + 1 in
      (* The bitset wins when its word count (plus header) undercuts the
         element count: density above ~1/32 across the span. *)
      if n_words + 4 >= n then Sparse a
      else begin
        let words = Array.make n_words 0 in
        Array.iter
          (fun x ->
            let idx = x - base in
            words.(idx / word_bits) <-
              words.(idx / word_bits) lor (1 lsl (idx mod word_bits)))
          a;
        Dense { base; words; card = n }
      end
    end
  end

(* --- read-side access (lock-free) -------------------------------------- *)

(* Load [n] before the arrays: the writer publishes grown arrays before
   bumping [n], so any id that passes this bound check has a valid slot
   in the arrays fetched afterwards. *)
let check_id t id =
  if id < 0 || id >= Atomic.get t.n then
    invalid_arg (Printf.sprintf "Docset_arena: unknown id %d" id)

let get_repr t id = (Atomic.get t.reprs).(id)

let get_fp t id = (Atomic.get t.fps).(id)

(* --- interning --------------------------------------------------------- *)

let grow t n =
  if n = Array.length (Atomic.get t.reprs) then begin
    let cap = 2 * n in
    let reprs = Array.make cap (Sparse [||]) in
    Array.blit (Atomic.get t.reprs) 0 reprs 0 n;
    Atomic.set t.reprs reprs;
    let fps = Array.make cap 0 in
    Array.blit (Atomic.get t.fps) 0 fps 0 n;
    Atomic.set t.fps fps
  end

let adopt t = Ownership.adopt t.own

let owner_domain t = Ownership.owner t.own

let freeze t = Ownership.freeze t.own

let is_frozen t = Ownership.is_frozen t.own

let intern_unchecked t a =
  Ownership.check t.own;
  t.intern_requests <- t.intern_requests + 1;
  Metrics.incr interned_counter;
  if Array.length a = 0 then begin
    t.dedup_hits <- t.dedup_hits + 1;
    Metrics.incr dedup_counter;
    empty_id
  end
  else begin
    let fp = fingerprint_of_array a in
    let bucket =
      match Hashtbl.find_opt t.intern_tbl fp with
      | Some b -> b
      | None ->
          let b = ref [] in
          Hashtbl.add t.intern_tbl fp b;
          b
    in
    match List.find_opt (fun id -> repr_equal_array (get_repr t id) a) !bucket with
    | Some id ->
        t.dedup_hits <- t.dedup_hits + 1;
        Metrics.incr dedup_counter;
        id
    | None ->
        let id = Atomic.get t.n in
        grow t id;
        let r = pack a in
        (* Fill the slot with plain stores, then publish it via [n]. *)
        (Atomic.get t.reprs).(id) <- r;
        (Atomic.get t.fps).(id) <- fp;
        Atomic.set t.n (id + 1);
        bucket := id :: !bucket;
        t.bytes <- t.bytes + repr_bytes r;
        (match r with
        | Dense _ ->
            t.dense_count <- t.dense_count + 1;
            Metrics.incr dense_counter
        | Sparse _ ->
            t.sparse_count <- t.sparse_count + 1;
            Metrics.incr sparse_counter);
        id
  end

let intern t a =
  for i = 1 to Array.length a - 1 do
    if a.(i - 1) >= a.(i) then
      invalid_arg "Docset_arena.intern: array must be sorted strictly increasing"
  done;
  intern_unchecked t (Array.copy a)

(* --- accessors --------------------------------------------------------- *)

let cardinal t id =
  check_id t id;
  repr_cardinal (get_repr t id)

let fingerprint t id =
  check_id t id;
  get_fp t id

let mem t id x =
  check_id t id;
  repr_mem (get_repr t id) x

let to_array t id =
  check_id t id;
  repr_to_array (get_repr t id)

let iter t id f =
  check_id t id;
  repr_iter (get_repr t id) f

let fold t id f init =
  check_id t id;
  let acc = ref init in
  repr_iter (get_repr t id) (fun x -> acc := f x !acc);
  !acc

let choose t id =
  check_id t id;
  match get_repr t id with
  | Sparse [||] -> raise Not_found
  | Sparse a -> a.(0)
  | Dense { base; words; _ } ->
      let rec first wi =
        if wi = Array.length words then raise Not_found
        else if words.(wi) = 0 then first (wi + 1)
        else base + (word_bits * wi) + Bits.popcount ((words.(wi) land -words.(wi)) - 1)
      in
      first 0

let equal_array t id a =
  check_id t id;
  repr_equal_array (get_repr t id) a

(* --- set algebra ------------------------------------------------------- *)

(* Merge two sorted arrays; [keep_left_only]/[keep_both]/[keep_right_only]
   select union, intersection or difference. *)
let merge ~left ~both ~right a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (na + nb) 0 in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let push x =
    out.(!k) <- x;
    incr k
  in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then begin
      if left then push x;
      incr i
    end
    else if y < x then begin
      if right then push y;
      incr j
    end
    else begin
      if both then push x;
      incr i;
      incr j
    end
  done;
  if left then
    while !i < na do
      push a.(!i);
      incr i
    done;
  if right then
    while !j < nb do
      push b.(!j);
      incr j
    done;
  if !k = na + nb then out else Array.sub out 0 !k

let op_union = 0
let op_inter = 1
let op_diff = 2

let binop t op a b =
  Ownership.check t.own;
  check_id t a;
  check_id t b;
  (* Union and intersection are commutative: normalize the key. *)
  let ka, kb = if op <> op_diff && a > b then (b, a) else (a, b) in
  match Hashtbl.find_opt t.op_memo (op, ka, kb) with
  | Some r ->
      t.memo_hits <- t.memo_hits + 1;
      Metrics.incr memo_counter;
      r
  | None ->
      let aa = repr_to_array (get_repr t a) and ba = repr_to_array (get_repr t b) in
      let out =
        if op = op_union then merge ~left:true ~both:true ~right:true aa ba
        else if op = op_inter then merge ~left:false ~both:true ~right:false aa ba
        else merge ~left:true ~both:false ~right:false aa ba
      in
      let r = intern_unchecked t out in
      Hashtbl.add t.op_memo (op, ka, kb) r;
      r

let union t a b =
  if a = empty_id then b else if b = empty_id then a else if a = b then a else binop t op_union a b

let inter t a b =
  if a = empty_id || b = empty_id then empty_id
  else if a = b then a
  else binop t op_inter a b

let diff t a b = if a = empty_id || a = b then empty_id else if b = empty_id then a else binop t op_diff a b

let union_many t ids =
  let ids = List.sort_uniq Int.compare ids in
  List.fold_left (fun acc id -> union t acc id) empty_id ids

(* Allocation-free intersection cardinality: the cost model's hot loop.
   Dense/dense pairs fold SWAR popcounts over the overlapping word range;
   sparse/dense probes the bitset per element; sparse/sparse merge-counts. *)
let inter_cardinal_raw t a b =
  match (get_repr t a, get_repr t b) with
  | Sparse aa, Sparse ba ->
      let na = Array.length aa and nb = Array.length ba in
      let i = ref 0 and j = ref 0 and k = ref 0 in
      while !i < na && !j < nb do
        let x = aa.(!i) and y = ba.(!j) in
        if x < y then incr i
        else if y < x then incr j
        else begin
          incr i;
          incr j;
          incr k
        end
      done;
      !k
  | Dense da, Dense db ->
      let lo = max da.base db.base in
      let hi =
        min
          (da.base + (word_bits * Array.length da.words))
          (db.base + (word_bits * Array.length db.words))
      in
      let count = ref 0 in
      let w = ref lo in
      while !w < hi do
        let wa = da.words.((!w - da.base) / word_bits)
        and wb = db.words.((!w - db.base) / word_bits) in
        count := !count + Bits.popcount (wa land wb);
        w := !w + word_bits
      done;
      !count
  | Sparse aa, (Dense _ as d) ->
      let count = ref 0 in
      Array.iter (fun x -> if repr_mem d x then incr count) aa;
      !count
  | (Dense _ as d), Sparse ba ->
      let count = ref 0 in
      Array.iter (fun x -> if repr_mem d x then incr count) ba;
      !count

let inter_cardinal t a b =
  check_id t a;
  check_id t b;
  if a = empty_id || b = empty_id then 0
  else if a = b then repr_cardinal (get_repr t a)
  else if Ownership.is_frozen t.own then begin
    (* Frozen arena: nobody inserts into [count_memo] anymore, so a
       lookup is race-free from any domain. Misses recompute without
       memoizing — correctness over a cold counter. *)
    let ka, kb = if a > b then (b, a) else (a, b) in
    match Hashtbl.find_opt t.count_memo (ka, kb) with
    | Some c -> c
    | None -> inter_cardinal_raw t a b
  end
  else begin
    (* Even the live "read" path mutates: memo insertion and hit stats. *)
    Ownership.check t.own;
    let ka, kb = if a > b then (b, a) else (a, b) in
    match Hashtbl.find_opt t.count_memo (ka, kb) with
    | Some c ->
        t.memo_hits <- t.memo_hits + 1;
        Metrics.incr memo_counter;
        c
    | None ->
        let c = inter_cardinal_raw t a b in
        Hashtbl.add t.count_memo (ka, kb) c;
        c
  end

let union_cardinal t a b = cardinal t a + cardinal t b - inter_cardinal t a b

let subset t a b = inter_cardinal t a b = cardinal t a

(* --- observability ----------------------------------------------------- *)

type stats = {
  sets : int;
  bytes : int;
  dense : int;
  sparse : int;
  intern_requests : int;
  dedup_hits : int;
  memo_hits : int;
}

let stats t =
  {
    sets = Atomic.get t.n;
    bytes = t.bytes;
    dense = t.dense_count;
    sparse = t.sparse_count;
    intern_requests = t.intern_requests;
    dedup_hits = t.dedup_hits;
    memo_hits = t.memo_hits;
  }

let dedup_hit_rate (t : t) =
  if t.intern_requests = 0 then 0.
  else float_of_int t.dedup_hits /. float_of_int t.intern_requests
