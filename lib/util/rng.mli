(** Deterministic pseudo-random number generation.

    All randomness in the repository flows through this module so that corpus
    generation, workload construction and property tests are reproducible
    from a single integer seed. The generator is SplitMix64 (Steele, Lea,
    Flood 2014): tiny state, excellent statistical quality for simulation
    purposes, and trivially splittable. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created with the
    same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. Requires [bound > 0.]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)

val choice : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniformly random element. Requires a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample : t -> int -> 'a array -> 'a array
(** [sample t k arr] draws [min k (Array.length arr)] distinct elements
    without replacement, in random order. *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success of a
    Bernoulli(p) process; 0-based. Requires [0. < p <= 1.]. *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Box-Muller normal variate. *)
