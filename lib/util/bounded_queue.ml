type 'a t = {
  items : 'a Queue.t;
  capacity : int;
  lock : Mutex.t;
  not_empty : Condition.t;
  mutable closed : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bounded_queue.create: capacity must be >= 1";
  {
    items = Queue.create ();
    capacity;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    closed = false;
  }

let try_push t x =
  Mutex.protect t.lock (fun () ->
      if t.closed || Queue.length t.items >= t.capacity then false
      else begin
        Queue.push x t.items;
        Condition.signal t.not_empty;
        true
      end)

let pop_opt t =
  Mutex.protect t.lock (fun () ->
      while Queue.is_empty t.items && not t.closed do
        Condition.wait t.not_empty t.lock
      done;
      if Queue.is_empty t.items then None else Some (Queue.pop t.items))

let close t =
  Mutex.protect t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.not_empty)

let length t = Mutex.protect t.lock (fun () -> Queue.length t.items)
