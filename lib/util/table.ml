type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?header aligns rows =
  let all_rows = match header with None -> rows | Some h -> h :: rows in
  let ncols = List.fold_left (fun m r -> max m (List.length r)) 0 all_rows in
  if ncols = 0 then ""
  else begin
    let widths = Array.make ncols 0 in
    List.iter
      (fun row ->
        List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row)
      all_rows;
    let align_of i = match List.nth_opt aligns i with Some a -> a | None -> Left in
    let render_row row =
      let cells =
        List.mapi (fun i cell -> pad (align_of i) widths.(i) cell) row
      in
      String.concat "  " cells
    in
    let buf = Buffer.create 256 in
    (match header with
    | Some h ->
        Buffer.add_string buf (render_row h);
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (Array.fold_left ( + ) (2 * (ncols - 1)) widths) '-');
        Buffer.add_char buf '\n'
    | None -> ());
    List.iter
      (fun row ->
        Buffer.add_string buf (render_row row);
        Buffer.add_char buf '\n')
      rows;
    Buffer.contents buf
  end

let bar ~width ~scale v =
  let n = if scale <= 0. then 0 else int_of_float (Float.round (v /. scale *. float_of_int width)) in
  String.make (max 0 n) '#'

let bar_chart ?(width = 50) ~title series =
  let label_w = List.fold_left (fun m (l, _) -> max m (String.length l)) 0 series in
  let scale = List.fold_left (fun m (_, v) -> max m v) 0. series in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (label, v) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s  %s %.6g\n" (pad Left label_w label) (bar ~width ~scale v) v))
    series;
  Buffer.contents buf

let grouped_bar_chart ?(width = 50) ~title ~series_names series =
  let name_a, name_b = series_names in
  let label_w = List.fold_left (fun m (l, _, _) -> max m (String.length l)) 0 series in
  let tag_w = max (String.length name_a) (String.length name_b) in
  let scale = List.fold_left (fun m (_, a, b) -> max m (max a b)) 0. series in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  List.iter
    (fun (label, a, b) ->
      Buffer.add_string buf
        (Printf.sprintf "  %s  %s %s %.6g\n" (pad Left label_w label)
           (pad Left tag_w name_a) (bar ~width ~scale a) a);
      Buffer.add_string buf
        (Printf.sprintf "  %s  %s %s %.6g\n" (pad Left label_w "")
           (pad Left tag_w name_b) (bar ~width ~scale b) b))
    series;
  Buffer.contents buf

let section title =
  let line = String.make (String.length title + 4) '=' in
  Printf.sprintf "%s\n= %s =\n%s" line title line
