(** Single-owner discipline for mutable structures shared across domains.

    Docset arenas (and the trees built over them) are deliberately
    unsynchronized: interning, op memos and count memos are plain
    hashtables mutated on the expand hot path. Rather than lock them,
    the concurrency model confines each arena to one domain at a time —
    the engine transfers an arena to the domain that holds its shard
    lock. An [Ownership.t] stamp makes that protocol checkable: the
    structure records its owning domain id, mutators call {!check}, and
    a lock-protected handover calls {!adopt}.

    Checks are off by default (zero-cost beyond a bool read) and
    enabled in debug builds via the [BIONAV_OWNERSHIP] environment
    variable ([1]/[on]/[true]) or {!set_enforced}. A violation raises
    {!Violation} rather than silently corrupting shared state. *)

exception Violation of string
(** Raised by {!check} when enforcement is on and the calling domain is
    not the current owner. *)

type t

val create : ?name:string -> unit -> t
(** A stamp owned by the calling domain. [name] labels {!Violation}
    messages (default ["anonymous"]). *)

val owner : t -> int
(** Id of the domain that currently owns the structure. *)

val adopt : t -> unit
(** Transfer ownership to the calling domain. Correct only while the
    caller holds whatever lock serializes access to the structure (the
    engine's shard lock); adoption itself is just a stamp update, not a
    synchronization. *)

val check : t -> unit
(** No-op when enforcement is off or the caller owns the stamp.
    @raise Violation otherwise. *)

val set_enforced : bool -> unit
(** Toggle enforcement process-wide (tests, debug builds). *)

val enforced : unit -> bool
