(** Single-owner discipline for mutable structures shared across domains.

    Docset arenas (and the trees built over them) are deliberately
    unsynchronized: interning, op memos and count memos are plain
    hashtables mutated on the expand hot path. Rather than lock them,
    the concurrency model confines each arena to one domain at a time —
    the engine transfers an arena to the domain that holds its shard
    lock. An [Ownership.t] stamp makes that protocol checkable: the
    structure records its owning domain id, mutators call {!check}, and
    a lock-protected handover calls {!adopt}.

    A stamp can also be {!freeze}d, ending its mutable life entirely.
    Frozen structures belong to no domain: {!check} and {!adopt} raise
    {!Violation} {e unconditionally} — freezing is a published
    invariant, not a debug aid — which makes a frozen structure safe to
    read from any number of domains at once, since no correct code path
    can mutate it anymore. The engine freezes each navigation snapshot's
    arena before publishing it to lock-free readers (DESIGN.md §12).

    Live-state checks are off by default (zero-cost beyond a bool read)
    and enabled in debug builds via the [BIONAV_OWNERSHIP] environment
    variable ([1]/[on]/[true]) or {!set_enforced}. A violation raises
    {!Violation} rather than silently corrupting shared state. *)

exception Violation of string
(** Raised by {!check} when the structure is frozen, or when enforcement
    is on and the calling domain is not the current owner. *)

val self_id : unit -> int
(** The calling domain's id, as stored in stamps. *)

type t

type state =
  | Live of int  (** Mutable, confined to the domain with this id. *)
  | Frozen  (** Immutable forever; readable from any domain. *)

val create : ?name:string -> unit -> t
(** A live stamp owned by the calling domain. [name] labels {!Violation}
    messages (default ["anonymous"]). *)

val owner : t -> int
(** Id of the domain that currently owns the structure. Meaningless once
    frozen (see {!state}). *)

val state : t -> state

val adopt : t -> unit
(** Transfer ownership to the calling domain. Correct only while the
    caller holds whatever lock serializes access to the structure (the
    engine's shard lock); adoption itself is just a stamp update, not a
    synchronization. @raise Violation if the stamp is frozen. *)

val freeze : t -> unit
(** Irreversibly seal the structure. After this, {!check} and {!adopt}
    raise {!Violation} regardless of {!enforced}. The caller must still
    own the structure (or otherwise have exclusive access) when calling:
    freezing is the last mutation. *)

val is_frozen : t -> bool

val check : t -> unit
(** No-op when the stamp is live and either enforcement is off or the
    caller owns it. @raise Violation when frozen (always) or when
    enforcement is on and the caller is a foreign domain. *)

val set_enforced : bool -> unit
(** Toggle live-state enforcement process-wide (tests, debug builds).
    Does not affect frozen stamps, which always raise. *)

val enforced : unit -> bool
