type t = { cdf : float array; exponent : float }

let create ?(exponent = 1.0) n =
  assert (n > 0);
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for r = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (r + 1)) exponent);
    cdf.(r) <- !acc
  done;
  let total = !acc in
  for r = 0 to n - 1 do
    cdf.(r) <- cdf.(r) /. total
  done;
  { cdf; exponent }

let size t = Array.length t.cdf

let exponent t = t.exponent

let draw t rng =
  let u = Rng.float rng 1.0 in
  (* Smallest index whose cdf value is >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let prob t r =
  assert (r >= 0 && r < size t);
  if r = 0 then t.cdf.(0) else t.cdf.(r) -. t.cdf.(r - 1)

let expected_counts t total =
  Array.init (size t) (fun r -> float_of_int total *. prob t r)
