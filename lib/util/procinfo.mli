(** Process resource sampling.

    The bulk-ingest path promises bounded peak memory regardless of
    corpus size; that promise is only worth something if it is measured
    where the benchmarks and the serving metrics can see it. This module
    samples the process peak resident set size and republishes it as the
    [bionav_process_peak_rss_bytes] gauge (scraped via the engine's
    [/metrics] rendering).

    On Linux the figure is the kernel's [VmHWM] high-water mark from
    [/proc/self/status] — true peak RSS, monotone over the process
    lifetime, including every malloc'd and mmap'd resident page. Where
    [/proc] is unavailable the fallback is the OCaml heap's own
    high-water mark ([Gc.quick_stat].top_heap_words), which undercounts
    non-heap memory but preserves the monotone-peak contract. *)

val peak_rss_bytes : unit -> int
(** Peak resident set size of this process, in bytes. Monotone
    non-decreasing over the process lifetime. Never raises. *)

val source : unit -> [ `Proc_status | `Gc_heap ]
(** Where {!peak_rss_bytes} reads from on this system (decided once, at
    first call). *)

val publish : unit -> unit
(** Refresh the [bionav_process_peak_rss_bytes] gauge from
    {!peak_rss_bytes}. *)
