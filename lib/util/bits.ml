(* SWAR popcount on one 32-bit half: pair sums, nibble sums, then one
   multiply to fold the byte counts into the top byte. The final mask is
   needed because OCaml ints are wider than 32 bits, so the multiply's
   high bytes (dropped by overflow on real 32-bit registers) survive. *)
let pop32 x =
  let x = x - ((x lsr 1) land 0x55555555) in
  let x = (x land 0x33333333) + ((x lsr 2) land 0x33333333) in
  let x = (x + (x lsr 4)) land 0x0F0F0F0F in
  ((x * 0x01010101) lsr 24) land 0x3F

(* OCaml ints are 63-bit, so the 64-bit SWAR constants do not fit in a
   literal; split into two 32-bit halves instead. *)
let popcount x = pop32 (x land 0xFFFFFFFF) + pop32 ((x lsr 32) land 0x7FFFFFFF)

let lowest_bit m =
  if m = 0 then invalid_arg "Bits.lowest_bit: zero mask";
  (* [m land -m] isolates the lowest set bit; subtracting 1 turns it into
     a mask of all lower positions, whose popcount is the bit's index. *)
  popcount ((m land -m) - 1)
