(** A small bounded least-recently-used cache.

    The on-line system builds one navigation tree per user query; repeated
    queries (the common case in exploratory search) should not pay the
    construction again, so the navigation subsystem keeps a bounded cache.
    Capacities are small (tens of entries), so eviction scans are O(n) by
    design — no intrusive lists to maintain. *)

type ('k, 'v) t

val create : capacity:int -> ('k, 'v) t
(** Requires [capacity >= 1]. *)

val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Refreshes the entry's recency on a hit. *)

val mem : ('k, 'v) t -> 'k -> bool
(** Does not refresh recency. *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Like {!find} but side-effect free: no recency refresh, no hit/miss
    accounting. For callers probing "is this already cached?" without
    distorting the statistics (e.g. speculation that skips known work). *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Inserts or replaces; evicts the least recently used entry when full. *)

val remove : ('k, 'v) t -> 'k -> unit
val clear : ('k, 'v) t -> unit

val fold : ('k, 'v) t -> ('v -> 'a -> 'a) -> 'a -> 'a
(** Fold over the cached values in unspecified order, without touching
    recency or hit/miss accounting (observability walks). Structural
    mutation from inside the fold callback — {!add}, {!remove},
    {!clear} — raises [Invalid_argument] rather than leaving iteration
    behavior unspecified; non-structural reads ({!find}, {!peek},
    {!mem}) remain allowed. *)

val hits : ('k, 'v) t -> int
val misses : ('k, 'v) t -> int
(** Counted by {!find} only. *)

val evictions : ('k, 'v) t -> int
(** Capacity evictions since creation ({!remove} and {!clear} do not
    count). *)

val reset_counters : ('k, 'v) t -> unit
(** Zero {!hits}, {!misses} and {!evictions}; entries are untouched.
    Lets a holder that {!clear}s the cache report statistics of the
    post-clear regime instead of the whole lifetime. *)

val find_or_add : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** [find_or_add t k f] returns the cached value or computes, caches and
    returns [f ()]. *)
