(** A bounded multi-producer multi-consumer queue (mutex + condition).

    The web layer's listener/worker handoff: the listener
    {!try_push}es accepted connections and sheds when the queue is
    full (backpressure becomes a 503, never an unbounded buffer);
    worker domains block in {!pop_opt} until work arrives or the queue
    is {!close}d for shutdown. *)

type 'a t

val create : capacity:int -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue without blocking; [false] when the queue is full or closed
    (the caller sheds the item). *)

val pop_opt : 'a t -> 'a option
(** Block until an item is available and dequeue it. [None] once the
    queue is closed {e and} drained — the consumer's signal to exit.
    Items pushed before {!close} are still delivered. *)

val close : 'a t -> unit
(** Reject further pushes and wake all blocked consumers. Idempotent. *)

val length : 'a t -> int
(** Instantaneous occupancy (racy under concurrency; for metrics). *)
