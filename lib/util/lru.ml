type ('k, 'v) entry = { value : 'v; mutable last_use : int }

type ('k, 'v) t = {
  capacity : int;
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable iterating : bool;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Lru.create: capacity must be >= 1";
  {
    capacity;
    table = Hashtbl.create capacity;
    clock = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    iterating = false;
  }

let guard_iteration t op =
  if t.iterating then
    invalid_arg (Printf.sprintf "Lru.%s: structural mutation during fold" op)

let capacity t = t.capacity
let length t = Hashtbl.length t.table

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let find t k =
  match Hashtbl.find_opt t.table k with
  | Some e ->
      e.last_use <- tick t;
      t.hits <- t.hits + 1;
      Some e.value
  | None ->
      t.misses <- t.misses + 1;
      None

let mem t k = Hashtbl.mem t.table k

let peek t k =
  match Hashtbl.find_opt t.table k with Some e -> Some e.value | None -> None

let evict_lru t =
  let victim =
    Hashtbl.fold
      (fun k e acc ->
        match acc with
        | Some (_, best) when best <= e.last_use -> acc
        | Some _ | None -> Some (k, e.last_use))
      t.table None
  in
  match victim with
  | Some (k, _) ->
      Hashtbl.remove t.table k;
      t.evictions <- t.evictions + 1
  | None -> ()

let add t k v =
  guard_iteration t "add";
  if not (Hashtbl.mem t.table k) && Hashtbl.length t.table >= t.capacity then evict_lru t;
  Hashtbl.replace t.table k { value = v; last_use = tick t }

let remove t k =
  guard_iteration t "remove";
  Hashtbl.remove t.table k

let fold t f acc =
  t.iterating <- true;
  Fun.protect
    ~finally:(fun () -> t.iterating <- false)
    (fun () -> Hashtbl.fold (fun _ e acc -> f e.value acc) t.table acc)

let clear t =
  guard_iteration t "clear";
  Hashtbl.reset t.table

let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0

let find_or_add t k f =
  match find t k with
  | Some v -> v
  | None ->
      let v = f () in
      add t k v;
      v
