type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let copy t = { state = t.state }

(* Non-negative 62-bit integer: OCaml ints are 63-bit, so drop two top bits. *)
let positive_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  assert (bound > 0);
  (* Rejection sampling to avoid modulo bias. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec draw () =
    let v = positive_int t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let float t bound =
  assert (bound > 0.);
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false
  else if p >= 1. then true
  else float t 1.0 < p

let choice t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample t k arr =
  let n = Array.length arr in
  let k = min k n in
  let copy = Array.copy arr in
  (* Partial Fisher-Yates: the first k slots end up a uniform sample. *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k

let geometric t p =
  assert (p > 0. && p <= 1.);
  if p >= 1. then 0
  else
    let u = float t 1.0 in
    let u = if u <= 0. then epsilon_float else u in
    int_of_float (Float.floor (log u /. log (1. -. p)))

let gaussian t ~mean ~stddev =
  let u1 =
    let u = float t 1.0 in
    if u <= 0. then epsilon_float else u
  in
  let u2 = float t 1.0 in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mean +. (stddev *. z)
