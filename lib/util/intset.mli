(** Immutable sets of non-negative integers, stored as sorted arrays.

    Result lists in BioNav are sets of citation identifiers. Navigation-cost
    computation repeatedly needs distinct counts of unions across component
    subtrees, so the representation is optimized for fast merge and
    cardinality: a sorted, duplicate-free [int array]. *)

type t

val empty : t
val is_empty : t -> bool
val singleton : int -> t

val of_list : int list -> t
(** Sorts and deduplicates. *)

val of_array : int array -> t
(** Sorts and deduplicates; does not mutate its argument. *)

val of_sorted_array_unchecked : int array -> t
(** Adopts the array without copying. The caller must guarantee it is sorted
    strictly increasing; violations are detected only in debug assertions. *)

val cardinal : t -> int
val mem : int -> t -> bool
val add : int -> t -> t
val remove : int -> t -> t

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t

val union_many : t list -> t
(** k-way merge, O(N log k): pairwise balanced merging for small k,
    heap-based merge (one output pass, no intermediate arrays) for
    large k. *)

val inter_cardinal : t -> t -> int
(** [inter_cardinal a b] = [cardinal (inter a b)] without allocating. *)

val subset : t -> t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val elements : t -> int list
val to_array : t -> int array
(** Fresh copy; safe to mutate. *)

val iter : (int -> unit) -> t -> unit
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val choose : t -> int
(** Smallest element. @raise Not_found if empty. *)

val pp : Format.formatter -> t -> unit
