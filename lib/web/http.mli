(** The HTTP/1.1 serving tier: keep-alive with pipelining, a readiness
    loop over poll(2), and per-peer admission control.

    Only GET is supported. The {!serve} entry point runs a single
    listener domain that owns every socket: it accepts, reads, parses
    (incrementally, via {!Parser}) and writes, so an idle keep-alive
    connection costs a few hundred bytes of state instead of a parked
    domain. With [domains = 1] parsed requests run inline on the
    listener (sequential handler semantics, byte-for-byte the responses
    of the pre-keep-alive server when [keep_alive = false]); with
    [domains > 1] ready parsed requests are handed to a fixed pool of
    worker domains over a bounded queue and the rendered responses come
    back to the listener for writing — the handler must then be safe to
    call from multiple domains concurrently (the engine's sharded
    sessions and domain-safe metrics are). No external dependencies
    beyond [Unix] and a small poll(2) stub ({!Poll}).

    Hardened against misbehaving peers: request lines and header lines
    are length-bounded even while incomplete (400 past the bound), a
    peer that stalls mid-request gets a 408 after [read_timeout_ms], an
    idle keep-alive connection is closed silently after
    [idle_timeout_ms], connections beyond [max_connections] are shed
    with an immediate 503, and {!Admission} sheds rate-limited or
    over-capacity requests with a 503 before they reach a worker.

    Metrics: the legacy hardening counters
    ([bionav_resilience_request_timeouts_total],
    [bionav_resilience_oversized_requests_total],
    [bionav_resilience_shed_connections_total],
    [bionav_web_queue_depth]) plus the serving-tier family —
    [bionav_serve_open_connections], [bionav_serve_idle_connections],
    [bionav_serve_requests_total], [bionav_serve_keepalive_reuses_total],
    [bionav_serve_parse_errors_total], [bionav_serve_idle_closed_total],
    [bionav_serve_queue_wait_ms] and the {!Admission} shed counters. *)

type response = { status : int; content_type : string; body : string }

val ok : ?content_type:string -> string -> response
(** 200 with text/html by default. *)

val not_found : string -> response
val bad_request : string -> response

type handler = path:string -> query:(string * string) list -> response

type server_config = {
  backlog : int;  (** [Unix.listen] backlog (>= 1). Default 128. *)
  read_timeout_ms : float;
      (** Deadline for completing a started request; a stalled peer
          times out with a 408. 0 disables. Default 5000. *)
  max_request_line : int;
      (** Bound on the request line and each header line, in bytes
          (>= 1); longer gets a 400. Default 8192. *)
  max_connections : int;
      (** Cap on concurrently open connections (>= 1); accepts beyond
          it are shed with an immediate 503. Default 1024. *)
  domains : int;
      (** Worker domains (>= 1). 1 (the default) runs handlers inline
          on the listener; N > 1 spawns N workers fed parsed requests
          by the listener. *)
  queue_capacity : int;
      (** Bound on the listener→worker request queue (>= 1, default
          64); parsed requests beyond it are shed with a 503, the queue
          depth is published as [bionav_web_queue_depth]. Unused when
          [domains = 1]. *)
  keep_alive : bool;
      (** Allow connection reuse (default [true]). [false] forces
          [Connection: close] on every response regardless of what the
          client asked for. *)
  idle_timeout_ms : float;
      (** Close a connection silently after this long with no request
          in progress (counted in [bionav_serve_idle_closed_total]).
          0 disables. Default 30000. *)
  max_requests_per_conn : int;
      (** Requests served on one connection before the server forces
          [Connection: close] (>= 1). Default 1000. *)
  rate_limit : float;
      (** Per-peer admission rate, requests/second ({!Admission} token
          bucket). 0 disables the bucket. Default 0. *)
  rate_burst : int;
      (** Token-bucket capacity per peer (>= 1). Default 64. *)
  max_inflight : int;
      (** Global cap on requests admitted but not yet answered (>= 1).
          Default 1024. *)
  clock : Bionav_resilience.Clock.t;
      (** Time source for idle/read deadlines and admission refill;
          inject a simulated clock to test timeout policy
          deterministically. Default {!Clock.real}. *)
}

val default_server_config : server_config

val url_decode : string -> string
(** Percent- and [+]-decoding ([x-www-form-urlencoded]); malformed
    escapes — a lone ["%"], or ["%"] followed by fewer than two hex
    digits, including truncated at end-of-string — pass through
    verbatim. Never raises. *)

val url_decode_component : plus_as_space:bool -> string -> string
(** {!url_decode} with the [+]→space rule optional: pass [false] for
    path components, where ["+"] is an ordinary character. *)

val parse_target : string -> string * (string * string) list
(** Split a request target into path and decoded query parameters:
    ["/a?x=1&y=b%20c"] -> [("/a", [("x","1"); ("y","b c")])]. The path
    is percent-decoded without the [+]→space rule. Repeated keys are
    all kept, in request order, so [List.assoc] sees the first
    occurrence — the behavior every route in {!App} relies on. *)

val parse_request_line : string -> (string * string) option
(** ["GET /x HTTP/1.1"] -> [Some ("GET", "/x")]; [None] if malformed. *)

(** Incremental, resumable HTTP/1.1 request parsing over a
    per-connection buffer.

    {!Parser.parse} is a pure function of the buffer prefix: feed it
    however many bytes have arrived; [Incomplete] means "keep the bytes
    and call again when more arrive", [Complete (req, consumed)] means
    the first [consumed] bytes form one full request head (shift the
    rest down and re-parse for pipelining). Because the result depends
    only on the accumulated prefix, any fragmentation of the byte
    stream parses to the same request sequence as the whole buffer —
    the property the qcheck suite checks. Bounds are enforced on
    incomplete input too, so a drip-fed oversized line errors now, not
    after its newline arrives. *)
module Parser : sig
  type version = Http_10 | Http_11 | Http_other

  type request = {
    meth : string;
    target : string;
    version : version;
    keep_alive : bool;
        (** [Connection] semantics already resolved: an explicit
            [close] wins, an explicit [keep-alive] wins over the
            version default, otherwise HTTP/1.1 keeps and anything
            else closes. *)
  }

  type error = Bad_request_line | Line_too_long | Too_many_headers

  type outcome = Complete of request * int | Incomplete | Error of error

  val parse : ?max_line:int -> ?max_headers:int -> Bytes.t -> len:int -> outcome
  (** Parse the first request head in [buf[0..len)]. [max_line] bounds
      the request line and each header line (default
      [default_server_config.max_request_line]); [max_headers] bounds
      the header count (default {!max_header_lines}). Blank lines
      before the request line are skipped (RFC 7230 §3.5). *)
end

val render_response : response -> string
(** Full HTTP/1.1 response bytes with [Connection: close] — exactly the
    bytes the pre-keep-alive server emitted. *)

val render_response_keep : keep_alive:bool -> response -> string
(** {!render_response} with the [Connection] header chosen by the
    caller; [~keep_alive:false] is byte-identical to
    {!render_response}. *)

val max_header_lines : int
(** Default header-count bound (128). *)

val handle_connection : ?config:server_config -> handler -> Unix.file_descr -> unit
(** Legacy one-shot path: serve exactly one request on a connected
    descriptor — read under the config's deadline and length bounds,
    run the handler, write a [Connection: close] response. Never raises
    for peer misbehaviour (timeout, oversized or malformed request,
    handler exception — each maps to an error response); does {e not}
    close the descriptor. Exposed so tests can drive the full
    read/respond path over a [Unix.socketpair]. *)

val serve_connection : ?config:server_config -> handler -> Unix.file_descr -> unit
(** Serve one established connection to completion with blocking reads:
    the keep-alive request/response loop over {!Parser}, answering
    pipelined requests in order until the client closes, sends
    [Connection: close], exhausts [max_requests_per_conn], or times
    out — [idle_timeout_ms] between requests closes silently,
    [read_timeout_ms] mid-request answers 408 (both via [SO_RCVTIMEO]).
    This is the single-connection semantics of {!serve} in a form a
    socketpair test can drive; it does {e not} apply admission control
    and does {e not} close the descriptor. *)

val shed_connection : Unix.file_descr -> unit
(** Best-effort 503 and close — load shedding for connections beyond
    [max_connections]. *)

val serve :
  ?host:string ->
  ?config:server_config ->
  ?on_ready:(port:int -> unit) ->
  ?max_requests:int ->
  port:int ->
  handler ->
  unit
(** The readiness-loop server. One listener domain owns the listening
    socket and every connection: poll(2) readiness drives non-blocking
    accepts, reads, incremental parsing and writes; complete parsed
    requests pass {!Admission} and run either inline ([domains = 1]) or
    on the worker pool, whose rendered responses return to the listener
    for in-order writing. Exceptions from the handler produce a 500 and
    are logged; socket errors on one connection do not kill the server.
    [on_ready] fires once the socket is listening, with the actual
    bound port (pass [port:0] to let the kernel pick — the way tests
    avoid port races). With [max_requests:n] the server stops after [n]
    handler-served requests, drains the workers, flushes and closes all
    connections and returns — without it, the loop never returns
    normally. @raise Invalid_argument on a malformed [config] or
    [max_requests < 1]; [Unix.Unix_error] if binding fails. *)
