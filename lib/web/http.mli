(** A minimal HTTP/1.1 server — just enough to serve the navigation
    interface locally, with the parsing layer exposed for tests.

    Only GET is supported. With [domains = 1] connections are handled
    sequentially in the accept loop; with [domains > 1] a listener
    domain accepts and hands descriptors to a fixed pool of worker
    domains over a bounded queue (the handler must then be safe to call
    from multiple domains concurrently — the engine's sharded sessions
    and domain-safe metrics are). No external dependencies beyond
    [Unix].

    Hardened against misbehaving peers: every read carries a socket
    deadline ([SO_RCVTIMEO]; a peer that stops mid-request gets a 408
    instead of hanging the accept loop), request lines and header lines
    are length-bounded (400 past the bound), accept bursts beyond
    [max_connections] are shed with an immediate 503, and the listen
    backlog is configurable. The failure paths are counted in
    [bionav_resilience_request_timeouts_total],
    [bionav_resilience_oversized_requests_total] and
    [bionav_resilience_shed_connections_total]. *)

type response = { status : int; content_type : string; body : string }

val ok : ?content_type:string -> string -> response
(** 200 with text/html by default. *)

val not_found : string -> response
val bad_request : string -> response

type handler = path:string -> query:(string * string) list -> response

type server_config = {
  backlog : int;  (** [Unix.listen] backlog (>= 1). Default 128. *)
  read_timeout_ms : float;
      (** Per-read socket deadline; a stalled peer times out with a 408.
          0 disables the deadline. Default 5000. *)
  max_request_line : int;
      (** Bound on the request line and each header line, in bytes
          (>= 1); longer gets a 400. Default 8192. *)
  max_connections : int;
      (** Connections served per accept burst (>= 1); the rest of the
          burst is shed with a 503. Default 64. *)
  domains : int;
      (** Worker domains (>= 1). 1 (the default) serves sequentially in
          the accept loop; N > 1 spawns N workers fed by the listener. *)
  queue_capacity : int;
      (** Bound on the listener→worker handoff queue (>= 1, default
          64); accepted connections beyond it are shed with a 503
          ([bionav_resilience_shed_connections_total]), the queue depth
          is published as [bionav_web_queue_depth]. Unused when
          [domains = 1]. *)
}

val default_server_config : server_config

val url_decode : string -> string
(** Percent- and [+]-decoding ([x-www-form-urlencoded]); malformed
    escapes — a lone ["%"], or ["%"] followed by fewer than two hex
    digits, including truncated at end-of-string — pass through
    verbatim. Never raises. *)

val url_decode_component : plus_as_space:bool -> string -> string
(** {!url_decode} with the [+]→space rule optional: pass [false] for
    path components, where ["+"] is an ordinary character. *)

val parse_target : string -> string * (string * string) list
(** Split a request target into path and decoded query parameters:
    ["/a?x=1&y=b%20c"] -> [("/a", [("x","1"); ("y","b c")])]. The path
    is percent-decoded without the [+]→space rule. Repeated keys are
    all kept, in request order, so [List.assoc] sees the first
    occurrence — the behavior every route in {!App} relies on. *)

val parse_request_line : string -> (string * string) option
(** ["GET /x HTTP/1.1"] -> [Some ("GET", "/x")]; [None] if malformed. *)

val render_response : response -> string
(** Full HTTP/1.1 response bytes. *)

val handle_connection : ?config:server_config -> handler -> Unix.file_descr -> unit
(** Serve one connection on a connected descriptor: read the request
    under the config's deadline and length bounds, run the handler,
    write the response. Never raises for peer misbehaviour (timeout,
    oversized or malformed request, handler exception — each maps to an
    error response); does {e not} close the descriptor. Exposed so tests
    can drive the full read/respond path over a [Unix.socketpair]. *)

val shed_connection : Unix.file_descr -> unit
(** Best-effort 503 and close — load shedding for connections beyond
    [max_connections]. *)

val serve :
  ?host:string ->
  ?config:server_config ->
  ?on_ready:(port:int -> unit) ->
  ?max_requests:int ->
  port:int ->
  handler ->
  unit
(** Accept loop (listener + worker pool when [config.domains > 1]).
    Exceptions from the handler produce a 500 and are logged; socket
    errors on one connection do not kill the server. [on_ready] fires
    once the socket is listening, with the actual bound port (pass
    [port:0] to let the kernel pick — the way tests avoid port races).
    With [max_requests:n] the server stops accepting after dispatching
    [n] connections, drains the workers and returns — without it, the
    loop never returns normally. @raise Invalid_argument on a malformed
    [config] or [max_requests < 1]; [Unix.Unix_error] if binding
    fails. *)
