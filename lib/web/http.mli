(** A minimal HTTP/1.1 server — just enough to serve the navigation
    interface locally, with the parsing layer exposed for tests.

    Only GET is supported; connections are handled sequentially (the
    navigation workload is single-user interactive). No external
    dependencies beyond [Unix]. *)

type response = { status : int; content_type : string; body : string }

val ok : ?content_type:string -> string -> response
(** 200 with text/html by default. *)

val not_found : string -> response
val bad_request : string -> response

type handler = path:string -> query:(string * string) list -> response

val url_decode : string -> string
(** Percent- and [+]-decoding; malformed escapes pass through verbatim. *)

val parse_target : string -> string * (string * string) list
(** Split a request target into path and decoded query parameters:
    ["/a?x=1&y=b%20c"] -> [("/a", [("x","1"); ("y","b c")])]. *)

val parse_request_line : string -> (string * string) option
(** ["GET /x HTTP/1.1"] -> [Some ("GET", "/x")]; [None] if malformed. *)

val render_response : response -> string
(** Full HTTP/1.1 response bytes. *)

val serve : ?host:string -> port:int -> handler -> unit
(** Accept loop; never returns normally. Exceptions from the handler
    produce a 500 and are logged; socket errors on one connection do not
    kill the server. @raise Unix.Unix_error if binding fails. *)
