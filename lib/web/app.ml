open Bionav_util
module Engine = Bionav_engine.Engine
module Nav_snapshot = Bionav_search.Nav_snapshot
module Eutils = Bionav_search.Eutils

type t = { engine : Engine.t; suggestions : string list }

let create ?(suggestions = []) ?config ?snapshot ~database ~eutils () =
  { engine = Engine.create ?config ?snapshot ~database ~eutils (); suggestions }

let session_count t = Engine.session_count t.engine
let engine t = t.engine

let results_page_size = 20

(* --- rendering -------------------------------------------------------- *)

let home t =
  let suggestions =
    match t.suggestions with
    | [] -> ""
    | qs ->
        Html.tag "p"
          (Html.text "Try: "
          ^ String.concat ", "
              (List.map (fun q -> Html.link ~href:(Html.url "/search" [ ("q", q) ]) q) qs))
  in
  Http.ok
    (Html.page ~title:"BioNav"
       (Html.tag "h1" (Html.text "BioNav")
       ^ Html.tag "p"
           (Html.text
              "Search the corpus, then navigate the results through cost-optimized \
               expansions of the concept hierarchy.")
       ^ "<form action=\"/search\" method=\"get\">\
          <input name=\"q\" size=\"40\" placeholder=\"keyword query\">\
          <select name=\"strategy\">\
          <option value=\"bionav\">BioNav</option>\
          <option value=\"static\">Static</option>\
          <option value=\"paged\">Paged</option>\
          <option value=\"faceted\">Faceted (qualifiers)</option>\
          </select>\
          <button type=\"submit\">Search</button></form>"
       ^ suggestions))

(* Render entirely from a published snapshot: no shard lock is held, and
   the page is a consistent view of one epoch even while other domains
   advance the session. *)
let render_tree ~sid snap =
  let rec render_node (v : Nav_snapshot.vnode) =
    let expand_link =
      if v.Nav_snapshot.expandable then
        " "
        ^ Html.tag ~attrs:
            [ ("class", "expand");
              ("href",
               Html.url "/expand" [ ("sid", sid); ("node", string_of_int v.Nav_snapshot.id) ]) ]
            "a" "&gt;&gt;&gt;"
      else ""
    in
    let show_link =
      " "
      ^ Html.link
          ~href:(Html.url "/show" [ ("sid", sid); ("node", string_of_int v.Nav_snapshot.id) ])
          "[show]"
    in
    let refine_link =
      if v.Nav_snapshot.id = Nav_snapshot.root snap then ""
      else
        " "
        ^ Html.link
            ~href:
              (Html.url "/refine" [ ("sid", sid); ("node", string_of_int v.Nav_snapshot.id) ])
            "[refine]"
    in
    Html.tag "li"
      (Html.text v.Nav_snapshot.label
      ^ Html.tag ~attrs:[ ("class", "count") ] "span"
          (Printf.sprintf " (%d)" v.Nav_snapshot.distinct)
      ^ expand_link ^ show_link ^ refine_link
      ^
      match v.Nav_snapshot.children with
      | [] -> ""
      | children ->
          Html.tag "ul"
            (String.concat ""
               (List.map (fun c -> render_node (Nav_snapshot.get snap c)) children)))
  in
  let stats = Nav_snapshot.stats snap in
  let depth = Nav_snapshot.refine_depth snap in
  let unrefine_link =
    if depth > 0 then
      " " ^ Html.link ~href:(Html.url "/unrefine" [ ("sid", sid) ]) "[undo refine]"
    else ""
  in
  Html.tag ~attrs:[ ("class", "bar") ] "div"
    (Html.text (Printf.sprintf "query: %s — " (Nav_snapshot.query snap))
    ^ Html.text
        (Printf.sprintf "%d results, cost so far %d (%d EXPANDs, %d concepts)"
           (Nav_snapshot.distinct_results snap)
           (Bionav_core.Navigation.navigation_cost stats)
           stats.Bionav_core.Navigation.expands stats.Bionav_core.Navigation.revealed)
    ^ Html.tag ~attrs:[ ("class", "space") ] "span"
        (Html.text
           (Printf.sprintf " — space: %s (depth %d)" (Nav_snapshot.space snap) depth))
    ^ " " ^ Html.link ~href:(Html.url "/back" [ ("sid", sid) ]) "[backtrack]"
    ^ " " ^ Html.link ~href:(Html.url "/facets" [ ("sid", sid) ]) "[facets]"
    ^ unrefine_link
    ^ " " ^ Html.link ~href:"/" "[new search]")
  ^ Html.tag "ul" (render_node (Nav_snapshot.get snap (Nav_snapshot.root snap)))

let session_page s =
  let snap = Engine.snapshot s in
  Http.ok
    (Html.page ~title:("BioNav: " ^ Nav_snapshot.query snap)
       (render_tree ~sid:(Engine.session_id s) snap))

(* --- parameter helpers ------------------------------------------------- *)

let param query name = List.assoc_opt name query

(* Look the session up (a narrow lock on its shard's table, which also
   refreshes recency) and hand it to [f] with no lock held: read routes
   work off the published snapshot, mutating routes go through the
   [Engine] actions which take the lock themselves. *)
let with_session t query f =
  match param query "sid" with
  | None -> Http.bad_request "missing sid"
  | Some sid -> (
      match Engine.find_session t.engine sid with
      | None -> Http.not_found "no such session"
      | Some s -> f s)

(* Validate the node against the snapshot the route will act on. A
   mutation racing us between validation and action is caught by the
   action itself (Navigation raises on a no-longer-visible node). *)
let with_visible_node snap query f =
  match Option.bind (param query "node") int_of_string_opt with
  | None -> Http.bad_request "missing or malformed node"
  | Some node ->
      if node < 0 || node >= Bionav_core.Nav_tree.size (Nav_snapshot.nav snap) then
        Http.bad_request "node out of range"
      else (
        match Nav_snapshot.find snap node with
        | None -> Http.bad_request "node not visible"
        | Some v -> f node v)

(* --- routes ------------------------------------------------------------ *)

let search t query =
  match param query "q" with
  | None | Some "" -> Http.bad_request "missing query"
  | Some q -> (
      let page_size = Option.bind (param query "page_size") int_of_string_opt in
      if param query "page_size" <> None && page_size = None then
        Http.bad_request "malformed page_size"
      else
        match Engine.strategy_of_name ?page_size (param query "strategy") with
        | Error msg -> Http.bad_request msg
        | Ok strategy -> (
            match Engine.search t.engine ~strategy q with
            | Error msg -> Http.bad_request msg
            | Ok Engine.No_results ->
                Http.ok
                  (Html.page ~title:"BioNav"
                     (Html.tag "p" (Html.text (Printf.sprintf "No results for %S." q))
                     ^ Html.link ~href:"/" "back"))
            | Ok (Engine.Session s) -> session_page s))

let expand t query =
  with_session t query (fun s ->
      with_visible_node (Engine.snapshot s) query (fun node _v ->
          match Engine.expand s node with
          | (_ : int list) -> session_page s
          | exception Invalid_argument _ -> Http.bad_request "node not visible"))

let back t query =
  with_session t query (fun s ->
      ignore (Engine.backtrack s : bool);
      session_page s)

(* Query-by-navigation: narrow the session to the node's subtree results
   and re-derive the tree inside the same session. The engine validates
   visibility again under its lock, so a racing mutation degrades to a
   clean 400 rather than a torn refinement. *)
let refine t query =
  with_session t query (fun s ->
      with_visible_node (Engine.snapshot s) query (fun node _v ->
          match Engine.refine s node with
          | (_ : int) -> session_page s
          | exception Invalid_argument msg -> Http.bad_request msg))

let unrefine t query =
  with_session t query (fun s ->
      ignore (Engine.unrefine s : bool);
      session_page s)

let facets t query =
  with_session t query (fun s ->
      match Engine.facet s with
      | (_ : int) -> session_page s
      | exception Invalid_argument msg -> Http.bad_request msg)

let citation_items t citations =
  Docset.fold
    (fun id acc ->
      Html.tag ~attrs:[ ("class", "citation") ] "div"
        (Html.text (List.hd (Eutils.esummary (Engine.eutils t.engine) [ id ])))
    :: acc)
    citations []

let show_page_links ~sid ~node ~page ~pages =
  let link p label =
    Html.link
      ~href:
        (Html.url "/show"
           [ ("sid", sid); ("node", string_of_int node); ("page", string_of_int p) ])
      label
  in
  String.concat " "
    ((if page > 0 then [ link (page - 1) "[prev]" ] else [])
    @ [ Html.text (Printf.sprintf "page %d of %d" (page + 1) (max 1 pages)) ]
    @ (if page + 1 < pages then [ link (page + 1) "[next]" ] else []))

(* SHOWRESULTS. Without [page]: the paper's action — charge the cost,
   list every citation (a mutation, so it goes through the engine lock
   and republishes). With [page=N] (0-based): a lock-free paged read of
   the already-published component results — browsing pages costs
   neither lock acquisitions nor SHOWRESULTS charges. *)
let show t query =
  with_session t query (fun s ->
      let snap = Engine.snapshot s in
      with_visible_node snap query (fun node v ->
          let sid = Engine.session_id s in
          let page = Option.bind (param query "page") int_of_string_opt in
          if param query "page" <> None && page = None then
            Http.bad_request "malformed page"
          else
            match page with
            | Some p when p < 0 -> Http.bad_request "page out of range"
            | Some p ->
                let all = Docset.to_array v.Nav_snapshot.results in
                let total = Array.length all in
                let pages = (total + results_page_size - 1) / results_page_size in
                let from = p * results_page_size in
                let slice =
                  if from >= total then [||]
                  else Array.sub all from (min results_page_size (total - from))
                in
                let items =
                  List.rev
                    (citation_items t (Docset.of_sorted_array_unchecked slice))
                in
                Http.ok
                  (Html.page
                     ~title:(Printf.sprintf "BioNav: %s" v.Nav_snapshot.label)
                     (Html.tag "h2"
                        (Html.text
                           (Printf.sprintf "%s — %d citations" v.Nav_snapshot.label total))
                     ^ Html.link ~href:(Html.url "/session" [ ("sid", sid) ]) "[back to tree]"
                     ^ Html.tag ~attrs:[ ("class", "pager") ] "div"
                         (show_page_links ~sid ~node ~page:p ~pages)
                     ^ String.concat "" items))
            | None -> (
                match Engine.show_results s node with
                | exception Invalid_argument _ -> Http.bad_request "node not visible"
                | citations ->
                    (* The docset lives in the live arena; iterating it
                       after the lock was released is a pure, domain-safe
                       read. *)
                    let items = citation_items t citations in
                    Http.ok
                      (Html.page
                         ~title:(Printf.sprintf "BioNav: %s" v.Nav_snapshot.label)
                         (Html.tag "h2"
                            (Html.text
                               (Printf.sprintf "%s — %d citations" v.Nav_snapshot.label
                                  (Docset.cardinal citations)))
                         ^ Html.link
                             ~href:(Html.url "/session" [ ("sid", sid) ])
                             "[back to tree]"
                         ^ Html.tag ~attrs:[ ("class", "pager") ] "div"
                             (show_page_links ~sid ~node ~page:0
                                ~pages:
                                  ((Docset.cardinal citations + results_page_size - 1)
                                  / results_page_size))
                         ^ String.concat "" (List.rev items))))))

let metrics t =
  Http.ok ~content_type:"text/plain; charset=utf-8" (Engine.metrics_text t.engine)

let prefetch_status t =
  let body =
    match Engine.prefetch t.engine with
    | None -> "prefetch: disabled\n"
    | Some pf ->
        let plans = Bionav_prefetch.Prefetch.plans pf in
        let spec = Bionav_prefetch.Prefetch.speculator pf in
        let module P = Bionav_prefetch.Plan_cache in
        let module S = Bionav_prefetch.Speculator in
        Printf.sprintf
          "prefetch: enabled\n\
           plans_cached: %d\n\
           plan_hits: %d\n\
           plan_misses: %d\n\
           plan_hit_rate: %.3f\n\
           speculation_queue: %d\n\
           speculations_executed: %d\n\
           speculations_dropped: %d\n"
          (P.length plans) (P.hits plans) (P.misses plans)
          (Engine.plan_cache_hit_rate t.engine)
          (S.queue_length spec) (S.executed spec) (S.dropped spec)
  in
  Http.ok ~content_type:"text/plain; charset=utf-8" body

let adaptive_status t =
  let body =
    match Engine.adaptive t.engine with
    | None -> "adaptive: disabled (static paper model)\n"
    | Some ad -> "adaptive: enabled\n" ^ Bionav_adaptive.Adaptive.status_text ad
  in
  Http.ok ~content_type:"text/plain; charset=utf-8" body

(* Constant-work liveness probe: no session lookup, no rendering —
   cheap enough that the serve bench can use it to measure pure
   serving-tier overhead, and load balancers can poll it without
   perturbing the engine. *)
let healthz t =
  Http.ok ~content_type:"text/plain; charset=utf-8"
    (Printf.sprintf "ok shards=%d sessions=%d\n"
       (Engine.shard_count t.engine)
       (Engine.session_count t.engine))

let handle t ~path ~query =
  match path with
  | "/" -> home t
  | "/search" -> search t query
  | "/session" -> with_session t query session_page
  | "/expand" -> expand t query
  | "/back" -> back t query
  | "/show" -> show t query
  | "/refine" -> refine t query
  | "/unrefine" -> unrefine t query
  | "/facets" -> facets t query
  | "/metrics" -> metrics t
  | "/prefetch" -> prefetch_status t
  | "/adaptive" -> adaptive_status t
  | "/healthz" -> healthz t
  | _ -> Http.not_found "no such page"
