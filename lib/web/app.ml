open Bionav_util
open Bionav_core
module Engine = Bionav_engine.Engine
module Eutils = Bionav_search.Eutils

type t = { engine : Engine.t; suggestions : string list }

let create ?(suggestions = []) ?config ?snapshot ~database ~eutils () =
  { engine = Engine.create ?config ?snapshot ~database ~eutils (); suggestions }

let session_count t = Engine.session_count t.engine
let engine t = t.engine

(* --- rendering -------------------------------------------------------- *)

let home t =
  let suggestions =
    match t.suggestions with
    | [] -> ""
    | qs ->
        Html.tag "p"
          (Html.text "Try: "
          ^ String.concat ", "
              (List.map (fun q -> Html.link ~href:(Html.url "/search" [ ("q", q) ]) q) qs))
  in
  Http.ok
    (Html.page ~title:"BioNav"
       (Html.tag "h1" (Html.text "BioNav")
       ^ Html.tag "p"
           (Html.text
              "Search the corpus, then navigate the results through cost-optimized \
               expansions of the concept hierarchy.")
       ^ "<form action=\"/search\" method=\"get\">\
          <input name=\"q\" size=\"40\" placeholder=\"keyword query\">\
          <select name=\"strategy\">\
          <option value=\"bionav\">BioNav</option>\
          <option value=\"static\">Static</option>\
          <option value=\"paged\">Paged</option>\
          </select>\
          <button type=\"submit\">Search</button></form>"
       ^ suggestions))

let render_tree s =
  let sid = Engine.session_id s in
  let session = Engine.navigation s in
  let active = Navigation.active session in
  let nav = Engine.session_nav s in
  (* Index the visualization once: visible nodes grouped under their
     visible parent. Filtering the full visible list per rendered node is
     quadratic in the reveal count and dominated large sessions. *)
  let children_index = Hashtbl.create 64 in
  List.iter
    (fun v ->
      match Active_tree.visible_parent active v with
      | -1 -> ()
      | p ->
          let siblings = Option.value ~default:[] (Hashtbl.find_opt children_index p) in
          Hashtbl.replace children_index p (v :: siblings))
    (Active_tree.visible active);
  let children_of node =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt children_index node))
  in
  let rec render_node node =
    let children = Relevance.rank_visible active (children_of node) in
    let expand_link =
      if Active_tree.is_expandable active node then
        " "
        ^ Html.tag ~attrs:
            [ ("class", "expand");
              ("href", Html.url "/expand" [ ("sid", sid); ("node", string_of_int node) ]) ]
            "a" "&gt;&gt;&gt;"
      else ""
    in
    let show_link =
      " "
      ^ Html.link ~href:(Html.url "/show" [ ("sid", sid); ("node", string_of_int node) ]) "[show]"
    in
    Html.tag "li"
      (Html.text (Nav_tree.label nav node)
      ^ Html.tag ~attrs:[ ("class", "count") ] "span"
          (Printf.sprintf " (%d)" (Active_tree.component_distinct active node))
      ^ expand_link ^ show_link
      ^
      match children with
      | [] -> ""
      | _ -> Html.tag "ul" (String.concat "" (List.map render_node children)))
  in
  let stats = Navigation.stats session in
  Html.tag ~attrs:[ ("class", "bar") ] "div"
    (Html.text (Printf.sprintf "query: %s — " (Engine.session_query s))
    ^ Html.text
        (Printf.sprintf "%d results, cost so far %d (%d EXPANDs, %d concepts)"
           (Nav_tree.distinct_results nav)
           (Navigation.navigation_cost stats)
           stats.Navigation.expands stats.Navigation.revealed)
    ^ " " ^ Html.link ~href:(Html.url "/back" [ ("sid", sid) ]) "[backtrack]"
    ^ " " ^ Html.link ~href:"/" "[new search]")
  ^ Html.tag "ul" (render_node (Nav_tree.root nav))

let session_page s =
  Http.ok (Html.page ~title:("BioNav: " ^ Engine.session_query s) (render_tree s))

(* --- parameter helpers ------------------------------------------------- *)

let param query name = List.assoc_opt name query

(* Session-scoped routes run their whole body — visibility checks, the
   navigation action, rendering (which touches arena memo tables even on
   reads) — as one atom under the session's shard lock, so concurrent
   worker domains never interleave on a tree. Inside [f], use the raw
   [Navigation] operations, never [Engine.expand]/[show_results]/
   [backtrack]: the shard mutex is not reentrant. *)
let with_session t query f =
  match param query "sid" with
  | None -> Http.bad_request "missing sid"
  | Some sid -> (
      match Engine.find_session t.engine sid with
      | None -> Http.not_found "no such session"
      | Some s -> Engine.run_locked s (fun () -> f s))

let with_visible_node s query f =
  match Option.bind (param query "node") int_of_string_opt with
  | None -> Http.bad_request "missing or malformed node"
  | Some node ->
      let nav = Engine.session_nav s in
      if node < 0 || node >= Nav_tree.size nav then Http.bad_request "node out of range"
      else if not (Active_tree.is_visible (Navigation.active (Engine.navigation s)) node) then
        Http.bad_request "node not visible"
      else f node

(* --- routes ------------------------------------------------------------ *)

let search t query =
  match param query "q" with
  | None | Some "" -> Http.bad_request "missing query"
  | Some q -> (
      let page_size = Option.bind (param query "page_size") int_of_string_opt in
      if param query "page_size" <> None && page_size = None then
        Http.bad_request "malformed page_size"
      else
        match Engine.strategy_of_name ?page_size (param query "strategy") with
        | Error msg -> Http.bad_request msg
        | Ok strategy -> (
            match Engine.search t.engine ~strategy q with
            | Error msg -> Http.bad_request msg
            | Ok Engine.No_results ->
                Http.ok
                  (Html.page ~title:"BioNav"
                     (Html.tag "p" (Html.text (Printf.sprintf "No results for %S." q))
                     ^ Html.link ~href:"/" "back"))
            | Ok (Engine.Session s) -> Engine.run_locked s (fun () -> session_page s)))

let show t query =
  with_session t query (fun s ->
      with_visible_node s query (fun node ->
          let nav = Engine.session_nav s in
          let citations = Navigation.show_results (Engine.navigation s) node in
          let items =
            Docset.fold
              (fun id acc ->
                Html.tag ~attrs:[ ("class", "citation") ] "div"
                  (Html.text (List.hd (Eutils.esummary (Engine.eutils t.engine) [ id ])))
                :: acc)
              citations []
          in
          Http.ok
            (Html.page
               ~title:(Printf.sprintf "BioNav: %s" (Nav_tree.label nav node))
               (Html.tag "h2"
                  (Html.text
                     (Printf.sprintf "%s — %d citations" (Nav_tree.label nav node)
                        (Docset.cardinal citations)))
               ^ Html.link
                   ~href:(Html.url "/session" [ ("sid", Engine.session_id s) ])
                   "[back to tree]"
               ^ String.concat "" (List.rev items)))))

let metrics t =
  Http.ok ~content_type:"text/plain; charset=utf-8" (Engine.metrics_text t.engine)

let prefetch_status t =
  let body =
    match Engine.prefetch t.engine with
    | None -> "prefetch: disabled\n"
    | Some pf ->
        let plans = Bionav_prefetch.Prefetch.plans pf in
        let spec = Bionav_prefetch.Prefetch.speculator pf in
        let module P = Bionav_prefetch.Plan_cache in
        let module S = Bionav_prefetch.Speculator in
        Printf.sprintf
          "prefetch: enabled\n\
           plans_cached: %d\n\
           plan_hits: %d\n\
           plan_misses: %d\n\
           plan_hit_rate: %.3f\n\
           speculation_queue: %d\n\
           speculations_executed: %d\n\
           speculations_dropped: %d\n"
          (P.length plans) (P.hits plans) (P.misses plans)
          (Engine.plan_cache_hit_rate t.engine)
          (S.queue_length spec) (S.executed spec) (S.dropped spec)
  in
  Http.ok ~content_type:"text/plain; charset=utf-8" body

let handle t ~path ~query =
  match path with
  | "/" -> home t
  | "/search" -> search t query
  | "/session" -> with_session t query session_page
  | "/expand" ->
      with_session t query (fun s ->
          with_visible_node s query (fun node ->
              ignore (Navigation.expand (Engine.navigation s) node);
              session_page s))
  | "/back" ->
      with_session t query (fun s ->
          ignore (Navigation.backtrack (Engine.navigation s));
          session_page s)
  | "/show" -> show t query
  | "/metrics" -> metrics t
  | "/prefetch" -> prefetch_status t
  | _ -> Http.not_found "no such page"
