open Bionav_util
open Bionav_core
module Eutils = Bionav_search.Eutils
module Database = Bionav_store.Database

type session = { query : string; nav : Nav_tree.t; session : Navigation.t }

type t = {
  eutils : Eutils.t;
  cache : Nav_cache.t;
  suggestions : string list;
  sessions : (string, session) Hashtbl.t;
  mutable next_session : int;
}

let create ?(suggestions = []) ~database ~eutils () =
  let build query = Nav_tree.of_database database (Eutils.esearch eutils query) in
  {
    eutils;
    cache = Nav_cache.create ~build ();
    suggestions;
    sessions = Hashtbl.create 16;
    next_session = 0;
  }

let session_count t = Hashtbl.length t.sessions

(* --- rendering -------------------------------------------------------- *)

let home t =
  let suggestions =
    match t.suggestions with
    | [] -> ""
    | qs ->
        Html.tag "p"
          (Html.text "Try: "
          ^ String.concat ", "
              (List.map (fun q -> Html.link ~href:(Html.url "/search" [ ("q", q) ]) q) qs))
  in
  Http.ok
    (Html.page ~title:"BioNav"
       (Html.tag "h1" (Html.text "BioNav")
       ^ Html.tag "p"
           (Html.text
              "Search the corpus, then navigate the results through cost-optimized \
               expansions of the concept hierarchy.")
       ^ "<form action=\"/search\" method=\"get\">\
          <input name=\"q\" size=\"40\" placeholder=\"keyword query\">\
          <select name=\"strategy\">\
          <option value=\"bionav\">BioNav</option>\
          <option value=\"static\">Static</option>\
          <option value=\"paged\">Paged</option>\
          </select>\
          <button type=\"submit\">Search</button></form>"
       ^ suggestions))

let strategy_of_param = function
  | Some "static" -> Some Navigation.Static
  | Some "paged" -> Some (Navigation.Static_paged { page_size = 10 })
  | Some "optimal" -> Some (Navigation.Optimal { params = Probability.default_params })
  | Some "bionav" | None -> Some (Navigation.bionav ())
  | Some _ -> None

let render_tree s sid =
  let active = Navigation.active s.session in
  let nav = s.nav in
  let rec render_node node =
    let children =
      List.filter
        (fun v -> Active_tree.visible_parent active v = node)
        (Active_tree.visible active)
    in
    let children = Relevance.rank_visible active children in
    let expand_link =
      if Active_tree.is_expandable active node then
        " "
        ^ Html.tag ~attrs:
            [ ("class", "expand");
              ("href", Html.url "/expand" [ ("sid", sid); ("node", string_of_int node) ]) ]
            "a" "&gt;&gt;&gt;"
      else ""
    in
    let show_link =
      " "
      ^ Html.link ~href:(Html.url "/show" [ ("sid", sid); ("node", string_of_int node) ]) "[show]"
    in
    Html.tag "li"
      (Html.text (Nav_tree.label nav node)
      ^ Html.tag ~attrs:[ ("class", "count") ] "span"
          (Printf.sprintf " (%d)" (Active_tree.component_distinct active node))
      ^ expand_link ^ show_link
      ^
      match children with
      | [] -> ""
      | _ -> Html.tag "ul" (String.concat "" (List.map render_node children)))
  in
  let stats = Navigation.stats s.session in
  Html.tag ~attrs:[ ("class", "bar") ] "div"
    (Html.text (Printf.sprintf "query: %s — " s.query)
    ^ Html.text
        (Printf.sprintf "%d results, cost so far %d (%d EXPANDs, %d concepts)"
           (Nav_tree.distinct_results s.nav)
           (Navigation.navigation_cost stats)
           stats.Navigation.expands stats.Navigation.revealed)
    ^ " " ^ Html.link ~href:(Html.url "/back" [ ("sid", sid) ]) "[backtrack]"
    ^ " " ^ Html.link ~href:"/" "[new search]")
  ^ Html.tag "ul" (render_node (Nav_tree.root s.nav))

let session_page s sid =
  Http.ok (Html.page ~title:("BioNav: " ^ s.query) (render_tree s sid))

(* --- parameter helpers ------------------------------------------------- *)

let param query name = List.assoc_opt name query

let with_session t query f =
  match param query "sid" with
  | None -> Http.bad_request "missing sid"
  | Some sid -> (
      match Hashtbl.find_opt t.sessions sid with
      | None -> Http.not_found "no such session"
      | Some s -> f sid s)

let with_visible_node s query f =
  match Option.bind (param query "node") int_of_string_opt with
  | None -> Http.bad_request "missing or malformed node"
  | Some node ->
      if node < 0 || node >= Nav_tree.size s.nav then Http.bad_request "node out of range"
      else if not (Active_tree.is_visible (Navigation.active s.session) node) then
        Http.bad_request "node not visible"
      else f node

(* --- routes ------------------------------------------------------------ *)

let search t query =
  match param query "q" with
  | None | Some "" -> Http.bad_request "missing query"
  | Some q -> (
      match strategy_of_param (param query "strategy") with
      | None -> Http.bad_request "unknown strategy"
      | Some strategy ->
          let nav = Nav_cache.get t.cache q in
          if Nav_tree.distinct_results nav = 0 then
            Http.ok
              (Html.page ~title:"BioNav"
                 (Html.tag "p" (Html.text (Printf.sprintf "No results for %S." q))
                 ^ Html.link ~href:"/" "back"))
          else begin
            let sid = Printf.sprintf "s%d" t.next_session in
            t.next_session <- t.next_session + 1;
            let s = { query = q; nav; session = Navigation.start strategy nav } in
            Hashtbl.replace t.sessions sid s;
            session_page s sid
          end)

let show t query =
  with_session t query (fun sid s ->
      with_visible_node s query (fun node ->
          let citations = Navigation.show_results s.session node in
          let items =
            Intset.fold
              (fun id acc ->
                Html.tag ~attrs:[ ("class", "citation") ] "div"
                  (Html.text (List.hd (Eutils.esummary t.eutils [ id ])))
                :: acc)
              citations []
          in
          Http.ok
            (Html.page
               ~title:(Printf.sprintf "BioNav: %s" (Nav_tree.label s.nav node))
               (Html.tag "h2"
                  (Html.text
                     (Printf.sprintf "%s — %d citations" (Nav_tree.label s.nav node)
                        (Intset.cardinal citations)))
               ^ Html.link ~href:(Html.url "/session" [ ("sid", sid) ]) "[back to tree]"
               ^ String.concat "" (List.rev items)))))

let handle t ~path ~query =
  match path with
  | "/" -> home t
  | "/search" -> search t query
  | "/session" -> with_session t query (fun sid s -> session_page s sid)
  | "/expand" ->
      with_session t query (fun sid s ->
          with_visible_node s query (fun node ->
              ignore (Navigation.expand s.session node);
              session_page s sid))
  | "/back" ->
      with_session t query (fun sid s ->
          ignore (Navigation.backtrack s.session);
          session_page s sid)
  | "/show" -> show t query
  | _ -> Http.not_found "no such page"
