external poll_stub :
  Unix.file_descr array -> int array -> int array -> int -> int -> int
  = "bionav_poll_stub"

external raise_nofile_stub : unit -> int = "bionav_raise_nofile_stub"

let pollin = 1
let pollout = 2
let pollerr = 4

type set = {
  mutable fds : Unix.file_descr array;
  mutable events : int array;
  mutable revents : int array;
  mutable n : int;
}

let create ?(initial_capacity = 64) () =
  let cap = max 1 initial_capacity in
  {
    fds = Array.make cap Unix.stdin;
    events = Array.make cap 0;
    revents = Array.make cap 0;
    n = 0;
  }

let clear s = s.n <- 0

let grow s =
  let cap = 2 * Array.length s.fds in
  let fds = Array.make cap Unix.stdin in
  let events = Array.make cap 0 in
  let revents = Array.make cap 0 in
  Array.blit s.fds 0 fds 0 s.n;
  Array.blit s.events 0 events 0 s.n;
  s.fds <- fds;
  s.events <- events;
  s.revents <- revents

let add s fd ev =
  if s.n = Array.length s.fds then grow s;
  s.fds.(s.n) <- fd;
  s.events.(s.n) <- ev;
  s.revents.(s.n) <- 0;
  s.n <- s.n + 1

let length s = s.n

let wait s ~timeout_ms = poll_stub s.fds s.events s.revents s.n timeout_ms

let ready s i =
  if i < 0 || i >= s.n then invalid_arg "Poll.ready: index out of range";
  (s.fds.(i), s.revents.(i))

let raise_nofile_limit () = raise_nofile_stub ()
