(** A thin poll(2) binding for the readiness loop.

    [Unix.select] tops out at [FD_SETSIZE] (1024) descriptors; the
    serving tier holds tens of thousands of idle keep-alive connections
    on one domain, so readiness comes from poll(2) via a small C stub.

    The interface is deliberately allocation-free on the hot path: the
    caller owns three parallel arrays (descriptors, wanted events,
    reported events) and {!wait} fills the third in place. {!Set} grows
    the arrays geometrically so a steady-state loop never reallocates. *)

val pollin : int
(** Wanted/reported: readable. *)

val pollout : int
(** Wanted/reported: writable. *)

val pollerr : int
(** Reported only: error, hangup, or invalid descriptor. *)

type set
(** A reusable poll set: parallel [fds]/[events]/[revents] arrays plus a
    length. Not thread-safe — one set per polling domain. *)

val create : ?initial_capacity:int -> unit -> set

val clear : set -> unit
(** Forget all registered descriptors (capacity is retained). *)

val add : set -> Unix.file_descr -> int -> unit
(** [add s fd events] registers [fd] with the wanted-event mask
    (a bitwise-or of {!pollin} / {!pollout}). *)

val length : set -> int

val wait : set -> timeout_ms:int -> int
(** Block until at least one registered descriptor is ready, the timeout
    (milliseconds; [-1] = forever, [0] = non-blocking) expires, or a
    signal arrives. Returns the number of ready descriptors (0 on
    timeout or [EINTR]); reported events are then readable through
    {!ready}. *)

val ready : set -> int -> Unix.file_descr * int
(** [ready s i] is the [i]-th registered descriptor and its reported
    event mask after {!wait} ([0] if nothing was reported for it). *)

val raise_nofile_limit : unit -> int
(** Best-effort raise of the soft [RLIMIT_NOFILE] to the hard ceiling;
    returns the resulting soft limit ([-1] if it could not be read). *)
