/* poll(2) for the readiness loop, plus the RLIMIT_NOFILE raise the
   serve bench needs to hold tens of thousands of sockets.

   The OCaml runtime's own Unix.select is a fixed-size fd_set away from
   useless at >= 1024 descriptors; poll has no such ceiling. On Unix,
   Unix.file_descr is represented as an immediate int, so descriptors
   cross the FFI as plain Int_val/Val_int.

   The events/revents encoding is a tiny bitmask owned by poll.ml:
     1 = readable wanted/ready (POLLIN)
     2 = writable wanted/ready (POLLOUT)
     4 = error/hangup reported (POLLERR | POLLHUP | POLLNVAL; revents only)
*/

#include <errno.h>
#include <poll.h>
#include <stdlib.h>
#include <string.h>
#include <sys/resource.h>

#include <caml/alloc.h>
#include <caml/fail.h>
#include <caml/memory.h>
#include <caml/mlvalues.h>
#include <caml/threads.h>

#define BIONAV_POLL_IN 1
#define BIONAV_POLL_OUT 2
#define BIONAV_POLL_ERR 4

CAMLprim value bionav_poll_stub(value v_fds, value v_events, value v_revents,
                                value v_n, value v_timeout_ms)
{
  CAMLparam5(v_fds, v_events, v_revents, v_n, v_timeout_ms);
  int n = Int_val(v_n);
  int timeout = Int_val(v_timeout_ms);
  struct pollfd *pfds;
  int ready, i;

  if (n < 0 || n > Wosize_val(v_fds) || n > Wosize_val(v_events)
      || n > Wosize_val(v_revents))
    caml_invalid_argument("Poll.wait: n out of range");

  pfds = (struct pollfd *)malloc(n ? n * sizeof(struct pollfd) : 1);
  if (pfds == NULL) caml_raise_out_of_memory();

  for (i = 0; i < n; i++) {
    int ev = Int_val(Field(v_events, i));
    pfds[i].fd = Int_val(Field(v_fds, i));
    pfds[i].events = (short)(((ev & BIONAV_POLL_IN) ? POLLIN : 0)
                             | ((ev & BIONAV_POLL_OUT) ? POLLOUT : 0));
    pfds[i].revents = 0;
  }

  caml_release_runtime_system();
  ready = poll(pfds, (nfds_t)n, timeout);
  caml_acquire_runtime_system();

  if (ready < 0) {
    int err = errno;
    free(pfds);
    if (err == EINTR) CAMLreturn(Val_int(0));
    caml_failwith("Poll.wait: poll failed");
  }

  for (i = 0; i < n; i++) {
    int re = 0;
    if (pfds[i].revents & POLLIN) re |= BIONAV_POLL_IN;
    if (pfds[i].revents & POLLOUT) re |= BIONAV_POLL_OUT;
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) re |= BIONAV_POLL_ERR;
    Field(v_revents, i) = Val_int(re);
  }
  free(pfds);
  CAMLreturn(Val_int(ready));
}

/* Raise the soft RLIMIT_NOFILE to its hard ceiling (best effort) and
   return the resulting soft limit. Lets the bench hold >= 10k idle
   connections without asking the operator to ulimit first. */
CAMLprim value bionav_raise_nofile_stub(value v_unit)
{
  CAMLparam1(v_unit);
  struct rlimit rl;
  if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
    CAMLreturn(Val_int(-1));
  if (rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &rl);
    if (getrlimit(RLIMIT_NOFILE, &rl) != 0)
      CAMLreturn(Val_int(-1));
  }
  if (rl.rlim_cur > (rlim_t)Max_long) CAMLreturn(Val_long(Max_long));
  CAMLreturn(Val_long((long)rl.rlim_cur));
}
