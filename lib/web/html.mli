(** Minimal HTML generation for the web interface: escaping and the handful
    of combinators the pages need. No templating dependency — the paper's
    interface is a tree of links and counts. *)

val escape : string -> string
(** Escape ampersand, angle brackets and both quote characters. *)

val tag : ?attrs:(string * string) list -> string -> string -> string
(** [tag ~attrs name body]: attribute values are escaped; [body] is trusted
    (already-rendered) HTML. *)

val text : string -> string
(** Escaped text node. *)

val link : href:string -> string -> string
(** Anchor with escaped label. *)

val page : title:string -> string -> string
(** Full document with the BioNav stylesheet; [body] is trusted HTML. *)

val url : string -> (string * string) list -> string
(** [url path params] percent-encodes parameter values. *)
