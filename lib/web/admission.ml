module Clock = Bionav_resilience.Clock
module Metrics = Bionav_util.Metrics

let shed_rate_limited_total = "bionav_serve_shed_rate_limited_total"
let shed_overload_total = "bionav_serve_shed_overload_total"

type config = { rate : float; burst : int; max_inflight : int }

let default_config = { rate = 0.; burst = 64; max_inflight = 1024 }

let validate_config c =
  if c.rate < 0. then invalid_arg "Admission: rate must be >= 0";
  if c.burst < 1 then invalid_arg "Admission: burst must be >= 1";
  if c.max_inflight < 1 then invalid_arg "Admission: max_inflight must be >= 1"

type bucket = { mutable tokens : float; mutable last_ms : float }

type t = {
  clock : Clock.t;
  config : config;
  buckets : (string, bucket) Hashtbl.t;
  mutable inflight : int;
  mu : Mutex.t;
}

type decision = Admit | Shed_rate_limited | Shed_overload

let create ?(clock = Clock.real) config =
  validate_config config;
  { clock; config; buckets = Hashtbl.create 64; inflight = 0; mu = Mutex.create () }

(* The bucket table is peer-keyed and unauthenticated input names the
   keys, so bound it: once it outgrows the cap, drop every bucket that
   has refilled to burst — those peers are indistinguishable from new
   ones anyway. *)
let max_buckets = 8192

let sweep_full t =
  if Hashtbl.length t.buckets > max_buckets then begin
    let full =
      Hashtbl.fold
        (fun peer b acc ->
          if b.tokens >= float_of_int t.config.burst then peer :: acc else acc)
        t.buckets []
    in
    List.iter (Hashtbl.remove t.buckets) full
  end

let refill t b ~now =
  let burst = float_of_int t.config.burst in
  let dt = max 0. (now -. b.last_ms) in
  b.tokens <- Float.min burst (b.tokens +. (dt /. 1000.) *. t.config.rate);
  b.last_ms <- now

let bucket_for t peer ~now =
  match Hashtbl.find_opt t.buckets peer with
  | Some b -> refill t b ~now; b
  | None ->
      sweep_full t;
      let b = { tokens = float_of_int t.config.burst; last_ms = now } in
      Hashtbl.add t.buckets peer b;
      b

let admit t ~peer =
  Mutex.protect t.mu (fun () ->
      if t.inflight >= t.config.max_inflight then begin
        Metrics.incr (Metrics.counter shed_overload_total);
        Shed_overload
      end
      else if t.config.rate <= 0. then begin
        t.inflight <- t.inflight + 1;
        Admit
      end
      else begin
        let now = Clock.now_ms t.clock in
        let b = bucket_for t peer ~now in
        if b.tokens >= 1. then begin
          b.tokens <- b.tokens -. 1.;
          t.inflight <- t.inflight + 1;
          Admit
        end
        else begin
          Metrics.incr (Metrics.counter shed_rate_limited_total);
          Shed_rate_limited
        end
      end)

let release t =
  Mutex.protect t.mu (fun () -> t.inflight <- max 0 (t.inflight - 1))

let inflight t = Mutex.protect t.mu (fun () -> t.inflight)

let peek_tokens t ~peer =
  Mutex.protect t.mu (fun () ->
      if t.config.rate <= 0. then float_of_int t.config.burst
      else begin
        let now = Clock.now_ms t.clock in
        let b = bucket_for t peer ~now in
        b.tokens
      end)
