(** The BioNav web application (paper Fig. 7: "BioNav Web Interface").

    A handler over the on-line subsystem: keyword search creates a
    navigation session; EXPAND / SHOWRESULTS / BACKTRACK are links. The
    handler is pure request-in/response-out (no sockets), so the whole
    interface is unit-testable; {!Http.serve} provides the transport.

    Routes (all GET):
    - [/] — search form (with optional suggested queries);
    - [/search?q=...&strategy=bionav|static|paged|optimal] — run the query,
      create a session, show its tree;
    - [/session?sid=...] — render a session's active tree;
    - [/expand?sid=...&node=...] — EXPAND a visible node;
    - [/show?sid=...&node=...] — SHOWRESULTS on a visible node;
    - [/back?sid=...] — BACKTRACK. *)

type t

val create :
  ?suggestions:string list ->
  database:Bionav_store.Database.t ->
  eutils:Bionav_search.Eutils.t ->
  unit ->
  t
(** Navigation trees are cached per query ({!Bionav_core.Nav_cache}). *)

val handle : t -> Http.handler
(** 404 on unknown routes, 400 on missing/invalid parameters. *)

val session_count : t -> int
(** Live sessions (for tests and monitoring). *)
