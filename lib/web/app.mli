(** The BioNav web application (paper Fig. 7: "BioNav Web Interface").

    A handler over the serving engine ({!Bionav_engine.Engine}): keyword
    search creates an engine-managed navigation session (bounded store,
    LRU eviction); EXPAND / SHOWRESULTS / BACKTRACK are links. The
    handler is pure request-in/response-out (no sockets), so the whole
    interface is unit-testable; {!Http.serve} provides the transport.

    Routes (all GET):
    - [/] — search form (with optional suggested queries);
    - [/search?q=...&strategy=bionav|static|paged|optimal&page_size=N] —
      run the query, create a session, show its tree (400 on an unknown
      strategy or [page_size < 1]);
    - [/session?sid=...] — render a session's active tree;
    - [/expand?sid=...&node=...] — EXPAND a visible node;
    - [/show?sid=...&node=...] — SHOWRESULTS on a visible node;
    - [/back?sid=...] — BACKTRACK;
    - [/metrics] — plaintext dump of the process metrics registry
      (expand latency percentiles, cache, session and prefetch counters);
    - [/prefetch] — plaintext prefetch status: plan-cache size and hit
      rate, speculation queue depth and executed/dropped counts (or
      ["prefetch: disabled"]);
    - [/healthz] — constant-work liveness probe (shard and session
      counts), cheap enough for load balancers and the serve bench to
      poll without perturbing the engine. *)

type t

val create :
  ?suggestions:string list ->
  ?config:Bionav_engine.Engine.config ->
  ?snapshot:string ->
  database:Bionav_store.Database.t ->
  eutils:Bionav_search.Eutils.t ->
  unit ->
  t
(** [config] bounds the session store and the navigation-tree cache
    (defaults: {!Bionav_engine.Engine.default_config}); [snapshot] is a
    warm-start snapshot path passed through to
    {!Bionav_engine.Engine.create}. *)

val handle : t -> Http.handler
(** 404 on unknown routes, 400 on missing/invalid parameters. *)

val session_count : t -> int
(** Live sessions (for tests and monitoring). *)

val engine : t -> Bionav_engine.Engine.t
(** The app's engine — so a server can drive engine-level concerns the
    handler does not (background prefetch ticks, sweeps). *)
