let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | '\'' -> Buffer.add_string buf "&#39;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let tag ?(attrs = []) name body =
  let attr_str =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf " %s=\"%s\"" k (escape v)) attrs)
  in
  Printf.sprintf "<%s%s>%s</%s>" name attr_str body name

let text = escape

let link ~href label = tag ~attrs:[ ("href", href) ] "a" (escape label)

let stylesheet =
  "body{font-family:sans-serif;margin:2em;max-width:60em}\
   ul{list-style:none;padding-left:1.2em}\
   .count{color:#666;font-size:0.9em}\
   .expand{color:#a00;text-decoration:none;font-weight:bold}\
   .citation{margin:0.3em 0;color:#222}\
   .bar{background:#eee;padding:0.5em;margin-bottom:1em}"

let page ~title body =
  Printf.sprintf
    "<!DOCTYPE html><html><head><meta charset=\"utf-8\"><title>%s</title><style>%s</style></head><body>%s</body></html>"
    (escape title) stylesheet body

let hex_digit n = "0123456789ABCDEF".[n]

let percent_encode s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | 'A' .. 'Z' | 'a' .. 'z' | '0' .. '9' | '-' | '_' | '.' | '~' -> Buffer.add_char buf c
      | ' ' -> Buffer.add_char buf '+'
      | c ->
          let code = Char.code c in
          Buffer.add_char buf '%';
          Buffer.add_char buf (hex_digit (code lsr 4));
          Buffer.add_char buf (hex_digit (code land 0xf)))
    s;
  Buffer.contents buf

let url path params =
  match params with
  | [] -> path
  | _ ->
      path ^ "?"
      ^ String.concat "&"
          (List.map (fun (k, v) -> percent_encode k ^ "=" ^ percent_encode v) params)
