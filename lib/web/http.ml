module Metrics = Bionav_util.Metrics
module Bounded_queue = Bionav_util.Bounded_queue
module Clock = Bionav_resilience.Clock

type response = { status : int; content_type : string; body : string }

let ok ?(content_type = "text/html; charset=utf-8") body = { status = 200; content_type; body }

let not_found body = { status = 404; content_type = "text/plain; charset=utf-8"; body }

let bad_request body = { status = 400; content_type = "text/plain; charset=utf-8"; body }

type handler = path:string -> query:(string * string) list -> response

type server_config = {
  backlog : int;
  read_timeout_ms : float;
  max_request_line : int;
  max_connections : int;
  domains : int;
  queue_capacity : int;
  keep_alive : bool;
  idle_timeout_ms : float;
  max_requests_per_conn : int;
  rate_limit : float;
  rate_burst : int;
  max_inflight : int;
  clock : Clock.t;
}

let default_server_config =
  {
    backlog = 128;
    read_timeout_ms = 5_000.;
    max_request_line = 8192;
    max_connections = 1024;
    domains = 1;
    queue_capacity = 64;
    keep_alive = true;
    idle_timeout_ms = 30_000.;
    max_requests_per_conn = 1000;
    rate_limit = 0.;
    rate_burst = 64;
    max_inflight = 1024;
    clock = Clock.real;
  }

let validate_server_config c =
  if c.backlog < 1 then invalid_arg "Http: backlog must be >= 1";
  if c.read_timeout_ms < 0. then invalid_arg "Http: read_timeout_ms must be >= 0";
  if c.max_request_line < 1 then invalid_arg "Http: max_request_line must be >= 1";
  if c.max_connections < 1 then invalid_arg "Http: max_connections must be >= 1";
  if c.domains < 1 then invalid_arg "Http: domains must be >= 1";
  if c.queue_capacity < 1 then invalid_arg "Http: queue_capacity must be >= 1";
  if c.idle_timeout_ms < 0. then invalid_arg "Http: idle_timeout_ms must be >= 0";
  if c.max_requests_per_conn < 1 then invalid_arg "Http: max_requests_per_conn must be >= 1";
  if c.rate_limit < 0. then invalid_arg "Http: rate_limit must be >= 0";
  if c.rate_burst < 1 then invalid_arg "Http: rate_burst must be >= 1";
  if c.max_inflight < 1 then invalid_arg "Http: max_inflight must be >= 1"

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Malformed escapes — a lone ['%'], or ['%'] followed by fewer than two
   hex digits (including at end-of-string) — pass through verbatim
   rather than erroring: the decoder never fails, the handler decides
   what a weird parameter means. [plus_as_space] is the
   [x-www-form-urlencoded] rule and applies to query components only; in
   a path, ['+'] is an ordinary character. *)
let url_decode_component ~plus_as_space s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | '+' when plus_as_space ->
          Buffer.add_char buf ' ';
          go (i + 1)
      | '%' when i + 2 < n -> (
          match (hex_value s.[i + 1], hex_value s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
              go (i + 3)
          | _ ->
              Buffer.add_char buf '%';
              go (i + 1))
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0;
  Buffer.contents buf

let url_decode s = url_decode_component ~plus_as_space:true s

let parse_target target =
  match String.index_opt target '?' with
  | None -> (url_decode_component ~plus_as_space:false target, [])
  | Some k ->
      let path = String.sub target 0 k in
      let query_str = String.sub target (k + 1) (String.length target - k - 1) in
      let params =
        String.split_on_char '&' query_str
        |> List.filter (fun p -> p <> "")
        |> List.map (fun pair ->
               match String.index_opt pair '=' with
               | None -> (url_decode pair, "")
               | Some e ->
                   ( url_decode (String.sub pair 0 e),
                     url_decode (String.sub pair (e + 1) (String.length pair - e - 1)) ))
      in
      (url_decode_component ~plus_as_space:false path, params)

let parse_request_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ meth; target; _version ] -> Some (meth, target)
  | _ -> None

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let render_response_keep ~keep_alive r =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: %s\r\n\r\n%s"
    r.status (status_text r.status) r.content_type (String.length r.body)
    (if keep_alive then "keep-alive" else "close")
    r.body

let render_response r = render_response_keep ~keep_alive:false r

let max_header_lines = 128

(* --- incremental request parser ---------------------------------------- *)

module Parser = struct
  type version = Http_10 | Http_11 | Http_other

  type request = { meth : string; target : string; version : version; keep_alive : bool }

  type error = Bad_request_line | Line_too_long | Too_many_headers

  type outcome = Complete of request * int | Incomplete | Error of error

  let version_of = function
    | "HTTP/1.1" -> Http_11
    | "HTTP/1.0" -> Http_10
    | _ -> Http_other

  let find_nl buf ~len from =
    let rec go i =
      if i >= len then -1 else if Bytes.get buf i = '\n' then i else go (i + 1)
    in
    go from

  let line_of buf start nl =
    let stop = if nl > start && Bytes.get buf (nl - 1) = '\r' then nl - 1 else nl in
    Bytes.sub_string buf start (stop - start)

  (* RFC 7230 §3.5 robustness: ignore blank lines before the request
     line (a keep-alive client may emit a stray CRLF between requests). *)
  let rec skip_blank buf ~len i =
    if i >= len then i
    else
      match Bytes.get buf i with
      | '\n' -> skip_blank buf ~len (i + 1)
      | '\r' when i + 1 < len && Bytes.get buf (i + 1) = '\n' -> skip_blank buf ~len (i + 2)
      | _ -> i

  (* Every bound is enforced on /incomplete/ input too: a line that has
     already outgrown [max_line] is an error now, not after the attacker
     deigns to send the newline. *)
  let parse ?(max_line = default_server_config.max_request_line)
      ?(max_headers = max_header_lines) buf ~len =
    let start = skip_blank buf ~len 0 in
    match find_nl buf ~len start with
    | -1 -> if len - start > max_line then Error Line_too_long else Incomplete
    | nl when nl - start > max_line -> Error Line_too_long
    | nl -> (
        match String.split_on_char ' ' (String.trim (line_of buf start nl)) with
        | [ meth; target; vstr ] when meth <> "" && target <> "" ->
            let version = version_of vstr in
            let conn_close = ref false in
            let conn_keep = ref false in
            let rec headers i nheaders =
              if nheaders > max_headers then Error Too_many_headers
              else
                match find_nl buf ~len i with
                | -1 -> if len - i > max_line then Error Line_too_long else Incomplete
                | nl2 when nl2 - i > max_line -> Error Line_too_long
                | nl2 ->
                    let line = line_of buf i nl2 in
                    if line = "" then begin
                      let keep_alive =
                        if !conn_close then false
                        else if !conn_keep then true
                        else version = Http_11
                      in
                      Complete ({ meth; target; version; keep_alive }, nl2 + 1)
                    end
                    else begin
                      (match String.index_opt line ':' with
                      | Some c
                        when String.lowercase_ascii (String.trim (String.sub line 0 c))
                             = "connection" ->
                          String.sub line (c + 1) (String.length line - c - 1)
                          |> String.split_on_char ','
                          |> List.iter (fun tok ->
                                 match String.lowercase_ascii (String.trim tok) with
                                 | "close" -> conn_close := true
                                 | "keep-alive" -> conn_keep := true
                                 | _ -> ())
                      | Some _ | None -> ());
                      headers (nl2 + 1) (nheaders + 1)
                    end
            in
            headers (nl + 1) 0
        | _ -> Error Bad_request_line)
end

(* --- metrics ------------------------------------------------------------ *)

let timeouts_counter = Metrics.counter "bionav_resilience_request_timeouts_total"
let oversized_counter = Metrics.counter "bionav_resilience_oversized_requests_total"
let shed_counter = Metrics.counter "bionav_resilience_shed_connections_total"
let queue_gauge = Metrics.gauge "bionav_web_queue_depth"
let open_conns_gauge = Metrics.gauge "bionav_serve_open_connections"
let idle_conns_gauge = Metrics.gauge "bionav_serve_idle_connections"
let serve_requests_counter = Metrics.counter "bionav_serve_requests_total"
let keepalive_reuse_counter = Metrics.counter "bionav_serve_keepalive_reuses_total"
let parse_errors_counter = Metrics.counter "bionav_serve_parse_errors_total"
let idle_closed_counter = Metrics.counter "bionav_serve_idle_closed_total"
let queue_wait_hist = Metrics.histogram "bionav_serve_queue_wait_ms"

(* --- hardened connection I/O (legacy one-shot path) --------------------- *)

exception Request_too_long
exception Read_timeout

(* One LF-terminated line straight off the descriptor, at most [limit]
   bytes before the terminator. Byte-at-a-time reads are plenty for a
   request line and let SO_RCVTIMEO bound every wait: a peer that stops
   mid-line raises [Read_timeout] instead of hanging the accept loop. *)
let read_line_bounded fd ~limit =
  let buf = Buffer.create 128 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> if Buffer.length buf = 0 then raise End_of_file else Buffer.contents buf
    | _ -> (
        match Bytes.get byte 0 with
        | '\n' -> Buffer.contents buf
        | c ->
            if Buffer.length buf >= limit then raise Request_too_long;
            Buffer.add_char buf c;
            go ())
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> raise Read_timeout
  in
  go ()

(* The request line is all we need; headers are read and dropped, each
   under the same length bound, and capped in number so a drip-feed of
   headers cannot occupy the server indefinitely. *)
let read_request fd ~limit =
  let line = read_line_bounded fd ~limit in
  let rec drain n =
    if n >= max_header_lines then raise Request_too_long;
    match read_line_bounded fd ~limit with
    | "" | "\r" -> ()
    | _ -> drain (n + 1)
    | exception End_of_file -> ()
  in
  drain 0;
  line

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let run_handler handler (req : Parser.request) =
  let path, query = parse_target req.Parser.target in
  try handler ~path ~query
  with e ->
    Logs.err (fun m -> m "handler error on %s: %s" path (Printexc.to_string e));
    { status = 500; content_type = "text/plain"; body = "internal error" }

let method_not_allowed =
  { status = 405; content_type = "text/plain"; body = "only GET is supported" }

let handle_connection ?(config = default_server_config) handler client =
  validate_server_config config;
  if config.read_timeout_ms > 0. then
    (try Unix.setsockopt_float client Unix.SO_RCVTIMEO (config.read_timeout_ms /. 1000.)
     with Unix.Unix_error _ -> ());
  let response =
    match read_request client ~limit:config.max_request_line with
    | exception Request_too_long ->
        Metrics.incr oversized_counter;
        bad_request "request too long"
    | exception Read_timeout ->
        Metrics.incr timeouts_counter;
        { status = 408; content_type = "text/plain; charset=utf-8"; body = "request timeout" }
    | exception End_of_file -> bad_request "empty request"
    | line -> (
        match parse_request_line line with
        | None -> bad_request "malformed request line"
        | Some (meth, _) when meth <> "GET" -> method_not_allowed
        | Some (_, target) -> (
            let path, query = parse_target target in
            try handler ~path ~query
            with e ->
              Logs.err (fun m -> m "handler error on %s: %s" path (Printexc.to_string e));
              { status = 500; content_type = "text/plain"; body = "internal error" }))
  in
  write_all client (render_response response)

let shed_connection client =
  Metrics.incr shed_counter;
  (try
     write_all client
       (render_response
          { status = 503;
            content_type = "text/plain; charset=utf-8";
            body = "server overloaded, try again" })
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

(* --- keep-alive connection driver (blocking; socketpair-testable) ------- *)

let recv_capacity config = max 16384 (2 * config.max_request_line)

(* A response carries [Connection: keep-alive] only if the server allows
   it, the request asked for (or defaulted to) it, and this response
   does not exhaust the per-connection budget. *)
let effective_keep config ~served (req : Parser.request) =
  config.keep_alive && req.Parser.keep_alive && served + 1 < config.max_requests_per_conn

let timeout_response =
  { status = 408; content_type = "text/plain; charset=utf-8"; body = "request timeout" }

let overload_response =
  { status = 503; content_type = "text/plain; charset=utf-8"; body = "server overloaded, try again" }

let rate_limited_response =
  { status = 503; content_type = "text/plain; charset=utf-8"; body = "rate limited, slow down" }

(* Serve one established connection to completion with blocking reads:
   the keep-alive request/response loop over the incremental parser,
   with SO_RCVTIMEO bounding each wait — [idle_timeout_ms] between
   requests (expiry closes silently), [read_timeout_ms] mid-request
   (expiry answers 408). This is the single-connection semantics of the
   readiness loop in a form a socketpair test can drive; it does not
   close [fd]. *)
let serve_connection ?(config = default_server_config) handler fd =
  validate_server_config config;
  let cap = recv_capacity config in
  let buf = Bytes.create cap in
  let rlen = ref 0 in
  let served = ref 0 in
  let set_deadline ms =
    try Unix.setsockopt_float fd Unix.SO_RCVTIMEO (if ms > 0. then ms /. 1000. else 0.)
    with Unix.Unix_error _ -> ()
  in
  let send ~keep resp =
    write_all fd (render_response_keep ~keep_alive:keep resp);
    incr served
  in
  let rec step () =
    match Parser.parse ~max_line:config.max_request_line buf ~len:!rlen with
    | Parser.Error e ->
        Metrics.incr parse_errors_counter;
        (match e with
        | Parser.Line_too_long | Parser.Too_many_headers ->
            Metrics.incr oversized_counter;
            send ~keep:false (bad_request "request too long")
        | Parser.Bad_request_line -> send ~keep:false (bad_request "malformed request line"))
    | Parser.Complete (req, consumed) ->
        let rest = !rlen - consumed in
        if rest > 0 then Bytes.blit buf consumed buf 0 rest;
        rlen := rest;
        let keep = effective_keep config ~served:!served req in
        Metrics.incr serve_requests_counter;
        if !served > 0 then Metrics.incr keepalive_reuse_counter;
        send ~keep
          (if req.Parser.meth <> "GET" then method_not_allowed else run_handler handler req);
        if keep then step ()
    | Parser.Incomplete ->
        if !rlen >= cap then begin
          Metrics.incr parse_errors_counter;
          Metrics.incr oversized_counter;
          send ~keep:false (bad_request "request too long")
        end
        else begin
          let idle = !rlen = 0 in
          set_deadline (if idle then config.idle_timeout_ms else config.read_timeout_ms);
          match Unix.read fd buf !rlen (cap - !rlen) with
          | 0 ->
              if !rlen > 0 then begin
                Metrics.incr parse_errors_counter;
                send ~keep:false (bad_request "truncated request")
              end
          | n ->
              rlen := !rlen + n;
              step ()
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
              if idle then Metrics.incr idle_closed_counter
              else begin
                Metrics.incr timeouts_counter;
                send ~keep:false timeout_response
              end
        end
  in
  try step () with
  | Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ()
  | Sys_error _ -> ()

(* --- readiness-loop server ---------------------------------------------- *)

(* Per-connection state owned exclusively by the listener domain. An
   idle connection is this record plus a drained 256-byte read buffer —
   a few hundred bytes, not a parked domain. *)
type conn = {
  fd : Unix.file_descr;
  peer : string;
  mutable buf : Bytes.t;
  mutable rlen : int;
  outq : string Queue.t;
  mutable out_off : int;
  mutable busy : bool;
  mutable served : int;
  mutable last_activity_ms : float;
  mutable close_after_write : bool;
  mutable eof : bool;
  mutable closed : bool;
}

type pending = { p_conn : conn; p_req : Parser.request; p_keep : bool; p_enqueued_ms : float }

let initial_rbuf = 256

let serve ?(host = "127.0.0.1") ?(config = default_server_config) ?on_ready ?max_requests
    ~port handler =
  validate_server_config config;
  (match max_requests with
  | Some n when n < 1 -> invalid_arg "Http.serve: max_requests must be >= 1"
  | Some _ | None -> ());
  let clock = config.clock in
  let cap = recv_capacity config in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock config.backlog;
  Unix.set_nonblock sock;
  let port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  Logs.app (fun m ->
      m "bionav listening on http://%s:%d (%d domain%s, keep-alive %s)" host port
        config.domains
        (if config.domains = 1 then "" else "s")
        (if config.keep_alive then "on" else "off"));
  (match on_ready with Some f -> f ~port | None -> ());
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 1024 in
  let adm =
    Admission.create ~clock
      { Admission.rate = config.rate_limit;
        burst = config.rate_burst;
        max_inflight = config.max_inflight }
  in
  let inline = config.domains = 1 in
  let queue : pending Bounded_queue.t = Bounded_queue.create ~capacity:config.queue_capacity in
  let completions_mu = Mutex.create () in
  let completions : (conn * string * bool) list ref = ref [] in
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let wake () =
    try ignore (Unix.write_substring wake_w "w" 0 1) with Unix.Unix_error _ -> ()
  in
  let completed = ref 0 in
  let running = ref true in
  let budget_ok () = match max_requests with None -> true | Some n -> !completed < n in
  let close_conn c =
    if not c.closed then begin
      c.closed <- true;
      Hashtbl.remove conns c.fd;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      Metrics.set open_conns_gauge (float_of_int (Hashtbl.length conns))
    end
  in
  let rec flush_conn c =
    if not c.closed then
      match Queue.peek_opt c.outq with
      | None -> if c.close_after_write || (c.eof && not c.busy) then close_conn c
      | Some s -> (
          let remaining = String.length s - c.out_off in
          match Unix.write_substring c.fd s c.out_off remaining with
          | n when n = remaining ->
              ignore (Queue.pop c.outq);
              c.out_off <- 0;
              flush_conn c
          | n -> c.out_off <- c.out_off + n
          | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
          | exception Unix.Unix_error (_, _, _) -> close_conn c)
  in
  let respond_direct c ~keep resp =
    Queue.push (render_response_keep ~keep_alive:keep resp) c.outq;
    c.served <- c.served + 1;
    if not keep then c.close_after_write <- true
  in
  let consume c n =
    let rest = c.rlen - n in
    if rest > 0 then Bytes.blit c.buf n c.buf 0 rest;
    c.rlen <- rest;
    (* Shrink a grown buffer once drained so parked keep-alive
       connections pay the idle footprint, not their largest request. *)
    if rest = 0 && Bytes.length c.buf > 4096 then c.buf <- Bytes.create initial_rbuf
  in
  let rec dispatch c =
    if (not c.closed) && (not c.busy) && not c.close_after_write then
      match Parser.parse ~max_line:config.max_request_line c.buf ~len:c.rlen with
      | Parser.Incomplete ->
          if c.rlen >= cap then begin
            Metrics.incr parse_errors_counter;
            Metrics.incr oversized_counter;
            respond_direct c ~keep:false (bad_request "request too long")
          end
      | Parser.Error e ->
          Metrics.incr parse_errors_counter;
          (match e with
          | Parser.Bad_request_line ->
              respond_direct c ~keep:false (bad_request "malformed request line")
          | Parser.Line_too_long | Parser.Too_many_headers ->
              Metrics.incr oversized_counter;
              respond_direct c ~keep:false (bad_request "request too long"))
      | Parser.Complete (req, consumed) -> (
          consume c consumed;
          c.last_activity_ms <- Clock.now_ms clock;
          let keep = effective_keep config ~served:c.served req in
          if req.Parser.meth <> "GET" then begin
            Metrics.incr serve_requests_counter;
            respond_direct c ~keep method_not_allowed;
            dispatch c
          end
          else
            match Admission.admit adm ~peer:c.peer with
            | Admission.Shed_rate_limited ->
                respond_direct c ~keep rate_limited_response;
                dispatch c
            | Admission.Shed_overload ->
                Metrics.incr shed_counter;
                respond_direct c ~keep overload_response;
                dispatch c
            | Admission.Admit ->
                Metrics.incr serve_requests_counter;
                if c.served > 0 then Metrics.incr keepalive_reuse_counter;
                c.busy <- true;
                if inline then begin
                  let resp = run_handler handler req in
                  apply_completion (c, render_response_keep ~keep_alive:keep resp, keep)
                end
                else begin
                  let p =
                    { p_conn = c; p_req = req; p_keep = keep;
                      p_enqueued_ms = Clock.now_ms clock }
                  in
                  if Bounded_queue.try_push queue p then
                    Metrics.set queue_gauge (float_of_int (Bounded_queue.length queue))
                  else begin
                    Admission.release adm;
                    c.busy <- false;
                    Metrics.incr shed_counter;
                    Metrics.incr (Metrics.counter Admission.shed_overload_total);
                    respond_direct c ~keep overload_response;
                    dispatch c
                  end
                end)
  and apply_completion (c, rendered, keep) =
    Admission.release adm;
    incr completed;
    if not (budget_ok ()) then running := false;
    if not c.closed then begin
      c.busy <- false;
      Queue.push rendered c.outq;
      c.served <- c.served + 1;
      if not keep then c.close_after_write <- true;
      flush_conn c;
      if not c.closed then begin
        dispatch c;
        flush_conn c
      end
    end
  in
  let worker () =
    let rec loop () =
      match Bounded_queue.pop_opt queue with
      | None -> ()
      | Some p ->
          Metrics.observe queue_wait_hist (Float.max 0. (Clock.now_ms clock -. p.p_enqueued_ms));
          let resp = run_handler handler p.p_req in
          let rendered = render_response_keep ~keep_alive:p.p_keep resp in
          Mutex.protect completions_mu (fun () ->
              completions := (p.p_conn, rendered, p.p_keep) :: !completions);
          wake ();
          loop ()
    in
    loop ()
  in
  let workers =
    if inline then [||] else Array.init config.domains (fun _ -> Domain.spawn worker)
  in
  let grow c =
    let nb = Bytes.create (min cap (2 * Bytes.length c.buf)) in
    Bytes.blit c.buf 0 nb 0 c.rlen;
    c.buf <- nb
  in
  let handle_readable c =
    let rec rd () =
      if (not c.closed) && c.rlen < cap && not c.eof then begin
        if c.rlen = Bytes.length c.buf then grow c;
        match Unix.read c.fd c.buf c.rlen (Bytes.length c.buf - c.rlen) with
        | 0 -> c.eof <- true
        | n ->
            c.rlen <- c.rlen + n;
            c.last_activity_ms <- Clock.now_ms clock;
            rd ()
        | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
        | exception Unix.Unix_error (_, _, _) -> close_conn c
      end
    in
    rd ();
    if not c.closed then begin
      dispatch c;
      if not c.closed then flush_conn c
    end
  in
  let accept_ready () =
    let continue = ref true in
    while !continue do
      match Unix.accept sock with
      | client, addr ->
          if Hashtbl.length conns >= config.max_connections then shed_connection client
          else begin
            Unix.set_nonblock client;
            (try Unix.setsockopt client Unix.TCP_NODELAY true with Unix.Unix_error _ -> ());
            let peer =
              match addr with
              | Unix.ADDR_INET (a, _) -> Unix.string_of_inet_addr a
              | Unix.ADDR_UNIX p -> "unix:" ^ p
            in
            let c =
              { fd = client; peer; buf = Bytes.create initial_rbuf; rlen = 0;
                outq = Queue.create (); out_off = 0; busy = false; served = 0;
                last_activity_ms = Clock.now_ms clock; close_after_write = false;
                eof = false; closed = false }
            in
            Hashtbl.replace conns client c;
            Metrics.set open_conns_gauge (float_of_int (Hashtbl.length conns))
          end
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EMFILE | ENFILE), _, _) ->
          continue := false
      | exception Unix.Unix_error ((ECONNABORTED | EINTR), _, _) -> ()
    done
  in
  let wake_buf = Bytes.create 256 in
  let drain_wake () =
    let rec go () =
      match Unix.read wake_r wake_buf 0 256 with
      | 0 -> ()
      | _ -> go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ()
    in
    go ()
  in
  let drain_completions () =
    let comps =
      Mutex.protect completions_mu (fun () ->
          let l = !completions in
          completions := [];
          List.rev l)
    in
    List.iter apply_completion comps
  in
  let sweep now =
    let idle_count = ref 0 in
    let to_idle_close = ref [] in
    let to_timeout = ref [] in
    Hashtbl.iter
      (fun _ c ->
        if not c.closed then
          if (not c.busy) && c.rlen = 0 && Queue.is_empty c.outq then begin
            incr idle_count;
            if config.idle_timeout_ms > 0. && now -. c.last_activity_ms > config.idle_timeout_ms
            then to_idle_close := c :: !to_idle_close
          end
          else if
            (not c.busy) && c.rlen > 0 && config.read_timeout_ms > 0.
            && now -. c.last_activity_ms > config.read_timeout_ms
          then to_timeout := c :: !to_timeout)
      conns;
    Metrics.set idle_conns_gauge (float_of_int !idle_count);
    List.iter
      (fun c ->
        Metrics.incr idle_closed_counter;
        close_conn c)
      !to_idle_close;
    List.iter
      (fun c ->
        Metrics.incr timeouts_counter;
        respond_direct c ~keep:false timeout_response;
        flush_conn c)
      !to_timeout
  in
  let pset = Poll.create ~initial_capacity:1024 () in
  let reg : conn option array ref = ref (Array.make 1024 None) in
  let reg_n = ref 0 in
  let reg_push co =
    if !reg_n = Array.length !reg then begin
      let nr = Array.make (2 * Array.length !reg) None in
      Array.blit !reg 0 nr 0 !reg_n;
      reg := nr
    end;
    !reg.(!reg_n) <- co;
    incr reg_n
  in
  let last_sweep = ref (Clock.now_ms clock) in
  while !running do
    Poll.clear pset;
    reg_n := 0;
    Poll.add pset sock Poll.pollin;
    reg_push None;
    Poll.add pset wake_r Poll.pollin;
    reg_push None;
    Hashtbl.iter
      (fun _ c ->
        let ev =
          (if (not c.busy) && (not c.close_after_write) && (not c.eof) && c.rlen < cap then
             Poll.pollin
           else 0)
          lor (if Queue.is_empty c.outq then 0 else Poll.pollout)
        in
        Poll.add pset c.fd ev;
        reg_push (Some c))
      conns;
    ignore (Poll.wait pset ~timeout_ms:100);
    let n = Poll.length pset in
    for i = 0 to n - 1 do
      if !running then begin
        let _fd, re = Poll.ready pset i in
        if re <> 0 then
          match !reg.(i) with
          | None -> if i = 0 then accept_ready () else drain_wake ()
          | Some c ->
              if not c.closed then begin
                if re land Poll.pollout <> 0 then flush_conn c;
                if (not c.closed) && re land Poll.pollin <> 0 then handle_readable c;
                if (not c.closed) && re land Poll.pollerr <> 0 && re land Poll.pollin = 0
                then close_conn c
              end
      end
    done;
    drain_completions ();
    let now = Clock.now_ms clock in
    if now -. !last_sweep >= 100. then begin
      last_sweep := now;
      sweep now
    end
  done;
  (try Unix.close sock with Unix.Unix_error _ -> ());
  if not inline then begin
    Bounded_queue.close queue;
    Array.iter Domain.join workers;
    drain_completions ()
  end;
  let remaining = Hashtbl.fold (fun _ c acc -> c :: acc) conns [] in
  List.iter
    (fun c ->
      (try Unix.clear_nonblock c.fd with Unix.Unix_error _ -> ());
      (try
         while not (Queue.is_empty c.outq) do
           let s = Queue.peek c.outq in
           let n = Unix.write_substring c.fd s c.out_off (String.length s - c.out_off) in
           if c.out_off + n >= String.length s then begin
             ignore (Queue.pop c.outq);
             c.out_off <- 0
           end
           else c.out_off <- c.out_off + n
         done
       with Unix.Unix_error _ -> ());
      close_conn c)
    remaining;
  (try Unix.close wake_r with Unix.Unix_error _ -> ());
  try Unix.close wake_w with Unix.Unix_error _ -> ()
