type response = { status : int; content_type : string; body : string }

let ok ?(content_type = "text/html; charset=utf-8") body = { status = 200; content_type; body }

let not_found body = { status = 404; content_type = "text/plain; charset=utf-8"; body }

let bad_request body = { status = 400; content_type = "text/plain; charset=utf-8"; body }

type handler = path:string -> query:(string * string) list -> response

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let url_decode s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | '+' ->
          Buffer.add_char buf ' ';
          go (i + 1)
      | '%' when i + 2 < n -> (
          match (hex_value s.[i + 1], hex_value s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
              go (i + 3)
          | _ ->
              Buffer.add_char buf '%';
              go (i + 1))
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0;
  Buffer.contents buf

let parse_target target =
  match String.index_opt target '?' with
  | None -> (url_decode target, [])
  | Some k ->
      let path = String.sub target 0 k in
      let query_str = String.sub target (k + 1) (String.length target - k - 1) in
      let params =
        String.split_on_char '&' query_str
        |> List.filter (fun p -> p <> "")
        |> List.map (fun pair ->
               match String.index_opt pair '=' with
               | None -> (url_decode pair, "")
               | Some e ->
                   ( url_decode (String.sub pair 0 e),
                     url_decode (String.sub pair (e + 1) (String.length pair - e - 1)) ))
      in
      (url_decode path, params)

let parse_request_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ meth; target; _version ] -> Some (meth, target)
  | _ -> None

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 500 -> "Internal Server Error"
  | _ -> "Status"

let render_response r =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    r.status (status_text r.status) r.content_type (String.length r.body) r.body

let read_request_line ic =
  (* The request line is all we need; headers are read and dropped. *)
  let line = input_line ic in
  let rec drain () =
    match input_line ic with
    | "" | "\r" -> ()
    | _ -> drain ()
    | exception End_of_file -> ()
  in
  drain ();
  line

let handle_connection handler client =
  let ic = Unix.in_channel_of_descr client in
  let oc = Unix.out_channel_of_descr client in
  let response =
    match parse_request_line (read_request_line ic) with
    | None -> bad_request "malformed request line"
    | Some (meth, _) when meth <> "GET" ->
        { status = 405; content_type = "text/plain"; body = "only GET is supported" }
    | Some (_, target) -> (
        let path, query = parse_target target in
        try handler ~path ~query
        with e ->
          Logs.err (fun m -> m "handler error on %s: %s" path (Printexc.to_string e));
          { status = 500; content_type = "text/plain"; body = "internal error" })
    | exception End_of_file -> bad_request "empty request"
  in
  output_string oc (render_response response);
  flush oc

let serve ?(host = "127.0.0.1") ~port handler =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock 16;
  Logs.app (fun m -> m "bionav listening on http://%s:%d" host port);
  while true do
    let client, _addr = Unix.accept sock in
    (try handle_connection handler client
     with e -> Logs.err (fun m -> m "connection error: %s" (Printexc.to_string e)));
    try Unix.close client with Unix.Unix_error _ -> ()
  done
