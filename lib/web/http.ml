module Metrics = Bionav_util.Metrics
module Bounded_queue = Bionav_util.Bounded_queue

type response = { status : int; content_type : string; body : string }

let ok ?(content_type = "text/html; charset=utf-8") body = { status = 200; content_type; body }

let not_found body = { status = 404; content_type = "text/plain; charset=utf-8"; body }

let bad_request body = { status = 400; content_type = "text/plain; charset=utf-8"; body }

type handler = path:string -> query:(string * string) list -> response

type server_config = {
  backlog : int;
  read_timeout_ms : float;
  max_request_line : int;
  max_connections : int;
  domains : int;
  queue_capacity : int;
}

let default_server_config =
  {
    backlog = 128;
    read_timeout_ms = 5_000.;
    max_request_line = 8192;
    max_connections = 64;
    domains = 1;
    queue_capacity = 64;
  }

let validate_server_config c =
  if c.backlog < 1 then invalid_arg "Http: backlog must be >= 1";
  if c.read_timeout_ms < 0. then invalid_arg "Http: read_timeout_ms must be >= 0";
  if c.max_request_line < 1 then invalid_arg "Http: max_request_line must be >= 1";
  if c.max_connections < 1 then invalid_arg "Http: max_connections must be >= 1";
  if c.domains < 1 then invalid_arg "Http: domains must be >= 1";
  if c.queue_capacity < 1 then invalid_arg "Http: queue_capacity must be >= 1"

let hex_value c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

(* Malformed escapes — a lone ['%'], or ['%'] followed by fewer than two
   hex digits (including at end-of-string) — pass through verbatim
   rather than erroring: the decoder never fails, the handler decides
   what a weird parameter means. [plus_as_space] is the
   [x-www-form-urlencoded] rule and applies to query components only; in
   a path, ['+'] is an ordinary character. *)
let url_decode_component ~plus_as_space s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then ()
    else
      match s.[i] with
      | '+' when plus_as_space ->
          Buffer.add_char buf ' ';
          go (i + 1)
      | '%' when i + 2 < n -> (
          match (hex_value s.[i + 1], hex_value s.[i + 2]) with
          | Some hi, Some lo ->
              Buffer.add_char buf (Char.chr ((hi lsl 4) lor lo));
              go (i + 3)
          | _ ->
              Buffer.add_char buf '%';
              go (i + 1))
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0;
  Buffer.contents buf

let url_decode s = url_decode_component ~plus_as_space:true s

let parse_target target =
  match String.index_opt target '?' with
  | None -> (url_decode_component ~plus_as_space:false target, [])
  | Some k ->
      let path = String.sub target 0 k in
      let query_str = String.sub target (k + 1) (String.length target - k - 1) in
      let params =
        String.split_on_char '&' query_str
        |> List.filter (fun p -> p <> "")
        |> List.map (fun pair ->
               match String.index_opt pair '=' with
               | None -> (url_decode pair, "")
               | Some e ->
                   ( url_decode (String.sub pair 0 e),
                     url_decode (String.sub pair (e + 1) (String.length pair - e - 1)) ))
      in
      (url_decode_component ~plus_as_space:false path, params)

let parse_request_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ meth; target; _version ] -> Some (meth, target)
  | _ -> None

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

let render_response r =
  Printf.sprintf
    "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    r.status (status_text r.status) r.content_type (String.length r.body) r.body

(* --- hardened connection I/O ------------------------------------------- *)

let timeouts_counter = Metrics.counter "bionav_resilience_request_timeouts_total"
let oversized_counter = Metrics.counter "bionav_resilience_oversized_requests_total"
let shed_counter = Metrics.counter "bionav_resilience_shed_connections_total"

exception Request_too_long
exception Read_timeout

(* One LF-terminated line straight off the descriptor, at most [limit]
   bytes before the terminator. Byte-at-a-time reads are plenty for a
   request line and let SO_RCVTIMEO bound every wait: a peer that stops
   mid-line raises [Read_timeout] instead of hanging the accept loop. *)
let read_line_bounded fd ~limit =
  let buf = Buffer.create 128 in
  let byte = Bytes.create 1 in
  let rec go () =
    match Unix.read fd byte 0 1 with
    | 0 -> if Buffer.length buf = 0 then raise End_of_file else Buffer.contents buf
    | _ -> (
        match Bytes.get byte 0 with
        | '\n' -> Buffer.contents buf
        | c ->
            if Buffer.length buf >= limit then raise Request_too_long;
            Buffer.add_char buf c;
            go ())
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> raise Read_timeout
  in
  go ()

let max_header_lines = 128

(* The request line is all we need; headers are read and dropped, each
   under the same length bound, and capped in number so a drip-feed of
   headers cannot occupy the server indefinitely. *)
let read_request fd ~limit =
  let line = read_line_bounded fd ~limit in
  let rec drain n =
    if n >= max_header_lines then raise Request_too_long;
    match read_line_bounded fd ~limit with
    | "" | "\r" -> ()
    | _ -> drain (n + 1)
    | exception End_of_file -> ()
  in
  drain 0;
  line

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let rec go off = if off < n then go (off + Unix.write fd b off (n - off)) in
  go 0

let handle_connection ?(config = default_server_config) handler client =
  validate_server_config config;
  if config.read_timeout_ms > 0. then
    (try Unix.setsockopt_float client Unix.SO_RCVTIMEO (config.read_timeout_ms /. 1000.)
     with Unix.Unix_error _ -> ());
  let response =
    match read_request client ~limit:config.max_request_line with
    | exception Request_too_long ->
        Metrics.incr oversized_counter;
        bad_request "request too long"
    | exception Read_timeout ->
        Metrics.incr timeouts_counter;
        { status = 408; content_type = "text/plain; charset=utf-8"; body = "request timeout" }
    | exception End_of_file -> bad_request "empty request"
    | line -> (
        match parse_request_line line with
        | None -> bad_request "malformed request line"
        | Some (meth, _) when meth <> "GET" ->
            { status = 405; content_type = "text/plain"; body = "only GET is supported" }
        | Some (_, target) -> (
            let path, query = parse_target target in
            try handler ~path ~query
            with e ->
              Logs.err (fun m -> m "handler error on %s: %s" path (Printexc.to_string e));
              { status = 500; content_type = "text/plain"; body = "internal error" }))
  in
  write_all client (render_response response)

let shed_connection client =
  Metrics.incr shed_counter;
  (try
     write_all client
       (render_response
          { status = 503;
            content_type = "text/plain; charset=utf-8";
            body = "server overloaded, try again" })
   with Unix.Unix_error _ | Sys_error _ -> ());
  try Unix.close client with Unix.Unix_error _ -> ()

let queue_gauge = Metrics.gauge "bionav_web_queue_depth"

let serve_and_close ~config handler client =
  (try handle_connection ~config handler client
   with e -> Logs.err (fun m -> m "connection error: %s" (Printexc.to_string e)));
  try Unix.close client with Unix.Unix_error _ -> ()

let serve ?(host = "127.0.0.1") ?(config = default_server_config) ?on_ready ?max_requests
    ~port handler =
  validate_server_config config;
  (match max_requests with
  | Some n when n < 1 -> invalid_arg "Http.serve: max_requests must be >= 1"
  | Some _ | None -> ());
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen sock config.backlog;
  let port =
    match Unix.getsockname sock with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  Logs.app (fun m ->
      m "bionav listening on http://%s:%d (%d domain%s)" host port config.domains
        (if config.domains = 1 then "" else "s"));
  (match on_ready with Some f -> f ~port | None -> ());
  (* Accept one connection blocking, then sweep whatever else the kernel
     already queued: the first [max_connections] of a burst are served in
     arrival order, the rest are shed with an immediate 503 instead of
     waiting behind a queue they would probably time out of anyway. *)
  let accept_burst first =
    let batch = ref [ first ] in
    let n = ref 1 in
    Unix.set_nonblock sock;
    (try
       while true do
         let c, _addr = Unix.accept sock in
         if !n < config.max_connections then begin
           batch := c :: !batch;
           incr n
         end
         else shed_connection c
       done
     with Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> ());
    Unix.clear_nonblock sock;
    List.rev !batch
  in
  let served = ref 0 in
  let budget_left () = match max_requests with None -> true | Some n -> !served < n in
  if config.domains = 1 then begin
    (* Sequential path, byte-for-byte the pre-multicore behavior. *)
    while budget_left () do
      let client, _addr = Unix.accept sock in
      List.iter
        (fun client ->
          serve_and_close ~config handler client;
          incr served)
        (accept_burst client)
    done;
    try Unix.close sock with Unix.Unix_error _ -> ()
  end
  else begin
    (* Listener + fixed pool of worker domains over a bounded queue. The
       listener never blocks on a slow client; workers run the unchanged
       [handle_connection], so the 400/408 hardening semantics are
       identical, and both shedding paths (accept burst overflow, queue
       full) answer 503 from the listener domain. *)
    let queue : Unix.file_descr Bounded_queue.t =
      Bounded_queue.create ~capacity:config.queue_capacity
    in
    let workers =
      Array.init config.domains (fun _ ->
          Domain.spawn (fun () ->
              let rec loop () =
                match Bounded_queue.pop_opt queue with
                | None -> ()
                | Some client ->
                    serve_and_close ~config handler client;
                    loop ()
              in
              loop ()))
    in
    while budget_left () do
      let client, _addr = Unix.accept sock in
      List.iter
        (fun client ->
          if Bounded_queue.try_push queue client then begin
            incr served;
            Metrics.set queue_gauge (float_of_int (Bounded_queue.length queue))
          end
          else shed_connection client)
        (accept_burst client)
    done;
    Bounded_queue.close queue;
    Array.iter Domain.join workers;
    try Unix.close sock with Unix.Unix_error _ -> ()
  end
