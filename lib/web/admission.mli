(** Per-peer admission control for the serving tier.

    Two independent policies gate every parsed request before it is
    handed to a worker:

    - a token bucket per remote peer ([rate] tokens/second, capacity
      [burst]) so one greedy client cannot starve polite ones; and
    - a global in-flight cap ([max_inflight]) so total concurrency
      stays bounded no matter how many peers show up.

    Decisions are pure bucket arithmetic on the injected
    {!Bionav_resilience.Clock}, so tests drive refill deterministically
    with a simulated clock. Shed decisions increment the
    [bionav_serve_shed_rate_limited_total] /
    [bionav_serve_shed_overload_total] counters as a side effect; the
    caller renders the 503. *)

type config = {
  rate : float;  (** Per-peer refill, tokens/second. [0.] disables the bucket. *)
  burst : int;  (** Bucket capacity (initial tokens for a new peer). *)
  max_inflight : int;  (** Global cap on admitted-but-unreleased requests. *)
}

val default_config : config
(** [{ rate = 0.; burst = 64; max_inflight = 1024 }] — bucket off,
    overload cap on. *)

type t

type decision =
  | Admit  (** Request admitted; caller must {!release} when done. *)
  | Shed_rate_limited  (** Peer's bucket is empty — respond 503. *)
  | Shed_overload  (** Global in-flight cap reached — respond 503. *)

val create : ?clock:Bionav_resilience.Clock.t -> config -> t
(** Raises [Invalid_argument] on [rate < 0.], [burst < 1], or
    [max_inflight < 1]. The clock defaults to {!Clock.real}. *)

val admit : t -> peer:string -> decision
(** Charge one token to [peer]'s bucket and claim one in-flight slot.
    Only [Admit] consumes either; a shed decision leaves all state
    untouched except the shed counter. Thread-safe. *)

val release : t -> unit
(** Return the in-flight slot claimed by a successful {!admit}. *)

val inflight : t -> int
(** Currently admitted-but-unreleased requests. *)

val peek_tokens : t -> peer:string -> float
(** [peer]'s token balance after refill at the clock's current time —
    observability for tests; does not consume anything. *)

val shed_rate_limited_total : string
(** Metric name incremented on [Shed_rate_limited]. *)

val shed_overload_total : string
(** Metric name incremented on [Shed_overload]. *)
