(** Learned EXPLORE/EXPAND probabilities behind the pluggable
    {!Bionav_core.Probability.model} interface.

    The paper fixes its probability estimates a priori (§IV); this module
    closes ROADMAP item 4's loop: per-concept expand/show/ignore evidence
    (live from engine actions, or bulk from {!Bionav_core.Session_log}
    transcripts) is smoothed toward the paper's model as a Bayesian prior
    and materialized into an immutable model value. Each refresh bumps the
    model's fingerprint (["learned/<params>/e<epoch>"]), so every
    fingerprint-keyed plan cache invalidates stale cuts instead of serving
    them.

    Concurrency: [observe_*] are O(1) amortized (an evidence-table-sized
    model rebuild every [refresh_every] observations) and thread-safe —
    designed to be called from engine actions under the shard lock. The
    current model is published through an [Atomic]; readers never block. *)

type config = {
  params : Bionav_core.Probability.params;  (** The prior (static) model. *)
  half_life_ms : float option;
      (** Evidence half-life; [None] (default) never decays. *)
  prior_strength : float;
      (** Pseudo-observation mass of the paper's estimates (default 8):
          how much evidence it takes to move a probability. *)
  explore_boost : float;
      (** Asymptotic EXPLORE-weight multiplier for concepts users always
          engage with (default 4; must be ≥ 1). *)
  refresh_every : int;
      (** Observations between automatic model refreshes (default 64). *)
}

val default_config : config

type t

val create : ?config:config -> ?now_ms:(unit -> float) -> unit -> t
(** [now_ms] (default {!Bionav_util.Timing.now_ms}) is the decay clock —
    tests and the engine inject virtual clocks. The initial model (epoch
    0, no evidence) computes probabilities identical to
    [Probability.static ~params:config.params ()].
    @raise Invalid_argument on invalid [config]. *)

val config : t -> config
val evidence : t -> Evidence.t

val model : t -> Bionav_core.Probability.model
(** The current learned model — an immutable snapshot; hold on to it for
    a session so the session's plans stay internally consistent. *)

val observe_expand : t -> concept:int -> unit
val observe_show : t -> concept:int -> unit
val observe_ignore : t -> concept:int -> unit
(** Online evidence: O(1) amortized, safe under the engine shard lock. *)

val learn : t -> Bionav_core.Session_log.event list -> unit
(** Bulk-ingest one session transcript and refresh the model. A revealed
    concept the session never engaged with counts as ignored. *)

val refresh : t -> unit
(** Force a model rebuild/publication now (bumps the epoch). *)

val observations : t -> int

val top_concepts : t -> int -> (int * Evidence.counts * float) list
(** The [n] most-engaged concepts with their evidence and EXPLORE lift —
    diagnostics for [bionav learn] and the web status page. *)

val status_text : t -> string
(** Human-readable status (fingerprint, observation/concept counts,
    configuration, top concepts) for CLI/web surfacing. *)
