type counts = { expands : float; shows : float; ignores : float }

let zero = { expands = 0.; shows = 0.; ignores = 0. }

type cell = {
  mutable expands : float;
  mutable shows : float;
  mutable ignores : float;
  mutable stamp_ms : float;
}

type t = {
  half_life_ms : float option;
  cells : (int, cell) Hashtbl.t;
  lock : Mutex.t;
  mutable observations : int;
}

(* Counts decayed this far below one observation are noise from a relevance
   standpoint; flooring them to exactly zero makes "fully decayed" and
   "never observed" indistinguishable — the property the zero-evidence
   equivalence tests pin. *)
let floor_eps = 1e-9

let create ?half_life_ms () =
  (match half_life_ms with
  | Some hl when not (hl > 0.) ->
      invalid_arg (Printf.sprintf "Evidence.create: half_life_ms must be > 0 (got %g)" hl)
  | Some _ | None -> ());
  { half_life_ms; cells = Hashtbl.create 256; lock = Mutex.create (); observations = 0 }

let half_life_ms t = t.half_life_ms

(* Lazy exponential decay: a cell is only aged when touched, so [observe]
   stays O(1) regardless of how much wall-clock passed. *)
let decay_cell t cell ~now_ms =
  (match t.half_life_ms with
  | None -> ()
  | Some hl ->
      let dt = now_ms -. cell.stamp_ms in
      if dt > 0. then begin
        let f = Float.exp (-.Float.log 2. *. dt /. hl) in
        let aged v = if v *. f < floor_eps then 0. else v *. f in
        cell.expands <- aged cell.expands;
        cell.shows <- aged cell.shows;
        cell.ignores <- aged cell.ignores
      end);
  if now_ms > cell.stamp_ms then cell.stamp_ms <- now_ms

let cell_of t ~now_ms concept =
  match Hashtbl.find_opt t.cells concept with
  | Some c ->
      decay_cell t c ~now_ms;
      c
  | None ->
      let c = { expands = 0.; shows = 0.; ignores = 0.; stamp_ms = now_ms } in
      Hashtbl.replace t.cells concept c;
      c

let observe_with t ~now_ms ~concept f =
  Mutex.protect t.lock (fun () ->
      f (cell_of t ~now_ms concept);
      t.observations <- t.observations + 1)

let observe_expand t ~now_ms ~concept =
  observe_with t ~now_ms ~concept (fun c -> c.expands <- c.expands +. 1.)

let observe_show t ~now_ms ~concept =
  observe_with t ~now_ms ~concept (fun c -> c.shows <- c.shows +. 1.)

let observe_ignore t ~now_ms ~concept =
  observe_with t ~now_ms ~concept (fun c -> c.ignores <- c.ignores +. 1.)

let counts t ~now_ms ~concept =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.cells concept with
      | None -> zero
      | Some c ->
          decay_cell t c ~now_ms;
          { expands = c.expands; shows = c.shows; ignores = c.ignores })

let fold t ~now_ms f acc =
  Mutex.protect t.lock (fun () ->
      Hashtbl.fold
        (fun concept c acc ->
          decay_cell t c ~now_ms;
          if c.expands = 0. && c.shows = 0. && c.ignores = 0. then acc
          else f concept { expands = c.expands; shows = c.shows; ignores = c.ignores } acc)
        t.cells acc)

let observations t = Mutex.protect t.lock (fun () -> t.observations)

let concept_count t ~now_ms = fold t ~now_ms (fun _ _ acc -> acc + 1) 0

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.cells;
      t.observations <- 0)
