open Bionav_core

type config = {
  params : Probability.params;
  half_life_ms : float option;
  prior_strength : float;
  explore_boost : float;
  refresh_every : int;
}

let default_config =
  {
    params = Probability.default_params;
    half_life_ms = None;
    prior_strength = 8.;
    explore_boost = 4.;
    refresh_every = 64;
  }

type t = {
  config : config;
  evidence : Evidence.t;
  now_ms : unit -> float;
  model : Probability.model Atomic.t;
  pending : int Atomic.t;  (* observations since the last model refresh *)
  epoch : int Atomic.t;  (* bumped per refresh; part of the fingerprint *)
  refresh_lock : Mutex.t;
}

let observe_counter = Bionav_util.Metrics.counter "bionav_adaptive_observations_total"
let refresh_counter = Bionav_util.Metrics.counter "bionav_adaptive_refreshes_total"
let concepts_gauge = Bionav_util.Metrics.gauge "bionav_adaptive_concepts"

let epsilon = 1e-12

(* The learned model, materialized. Evidence is frozen into an immutable
   per-concept table at build time (decayed to the build instant), so the
   closures handed to Cost_model are pure — domain-safe to evaluate under
   no lock, deterministic for plan caching, and unaffected by concurrent
   observes until the next refresh swaps the whole model.

   - EXPLORE: each node's IDF-like weight |L|/|LT| is multiplied by the
     concept's engagement lift
       (prior + boost * engaged) / (prior + engaged + ignored)
     — 1 with no evidence, -> boost for concepts users reliably engage
     with, -> prior / (prior + ignored) < 1 for concepts users are shown
     and walk past. Branch probabilities are ratios of EXPLORE masses, so
     lifts steer cuts toward subtrees users actually visit.
   - EXPAND: the paper's estimate acts as a Bayesian prior with
     [prior_strength] pseudo-observations, shrunk toward the empirical
     expand rate e / (e + s) over the component's concepts:
       (prior * p_static + e) / (prior + e + s).
     Components that genuinely cannot be expanded (a single underlying
     concept) stay at 0 regardless of evidence. *)
let build_model cfg evidence ~now_ms ~epoch =
  let params = cfg.params in
  let table =
    Evidence.fold evidence ~now_ms
      (fun concept c acc ->
        let engaged = c.Evidence.expands +. c.Evidence.shows in
        let lift =
          (cfg.prior_strength +. (cfg.explore_boost *. engaged))
          /. (cfg.prior_strength +. engaged +. c.Evidence.ignores)
        in
        Hashtbl.replace acc concept (lift, c.Evidence.expands, c.Evidence.shows);
        acc)
      (Hashtbl.create 256)
  in
  let lift concept =
    if concept < 0 then 1.
    else match Hashtbl.find_opt table concept with Some (l, _, _) -> l | None -> 1.
  in
  let expand_evidence concept =
    if concept < 0 then (0., 0.)
    else match Hashtbl.find_opt table concept with Some (_, e, s) -> (e, s) | None -> (0., 0.)
  in
  let weight tree i = Probability.explore_weight tree i *. lift (Comp_tree.concept tree i) in
  let normalizer tree =
    let acc = ref 0. in
    for i = 0 to Comp_tree.size tree - 1 do
      acc := !acc +. weight tree i
    done;
    Float.max epsilon !acc
  in
  let explore ~norm tree members =
    let w = List.fold_left (fun acc i -> acc +. weight tree i) 0. members in
    Float.min 1.0 (w /. Float.max epsilon norm)
  in
  let expand tree ~members ~distinct =
    let p0 = Probability.expand params tree ~members ~distinct in
    let underlying =
      List.fold_left (fun acc i -> acc + Comp_tree.multiplicity tree i) 0 members
    in
    if underlying <= 1 then 0.
    else begin
      let e = ref 0. and s = ref 0. in
      List.iter
        (fun i ->
          Array.iter
            (fun c ->
              let ec, sc = expand_evidence c in
              e := !e +. ec;
              s := !s +. sc)
            (Comp_tree.sub_concepts tree i))
        members;
      let n = !e +. !s in
      if n <= 0. then p0
      else
        Float.max 0.
          (Float.min 1.0 (((cfg.prior_strength *. p0) +. !e) /. (cfg.prior_strength +. n)))
    end
  in
  Bionav_util.Metrics.set concepts_gauge (float_of_int (Hashtbl.length table));
  Probability.make_model ~params
    ~fingerprint:
      (Printf.sprintf "learned/%s/e%d" (Probability.params_fingerprint params) epoch)
    ~normalizer ~explore ~expand

let create ?(config = default_config) ?(now_ms = Bionav_util.Timing.now_ms) () =
  if config.prior_strength <= 0. then
    invalid_arg "Adaptive.create: prior_strength must be > 0";
  if config.explore_boost < 1. then invalid_arg "Adaptive.create: explore_boost must be >= 1";
  if config.refresh_every < 1 then invalid_arg "Adaptive.create: refresh_every must be >= 1";
  Probability.validate_params config.params;
  let evidence = Evidence.create ?half_life_ms:config.half_life_ms () in
  {
    config;
    evidence;
    now_ms;
    model = Atomic.make (build_model config evidence ~now_ms:(now_ms ()) ~epoch:0);
    pending = Atomic.make 0;
    epoch = Atomic.make 0;
    refresh_lock = Mutex.create ();
  }

let config t = t.config
let evidence t = t.evidence
let model t = Atomic.get t.model
let observations t = Evidence.observations t.evidence

let refresh t =
  Mutex.protect t.refresh_lock (fun () ->
      let epoch = Atomic.fetch_and_add t.epoch 1 + 1 in
      Atomic.set t.pending 0;
      Atomic.set t.model (build_model t.config t.evidence ~now_ms:(t.now_ms ()) ~epoch);
      Bionav_util.Metrics.incr refresh_counter)

(* The amortization that keeps [observe_*] off the hot path's back: the
   O(evidence) model rebuild runs every [refresh_every] observations; each
   observation itself is an O(1) counter bump. *)
let bump t =
  Bionav_util.Metrics.incr observe_counter;
  if Atomic.fetch_and_add t.pending 1 + 1 >= t.config.refresh_every then refresh t

let observe_expand t ~concept =
  Evidence.observe_expand t.evidence ~now_ms:(t.now_ms ()) ~concept;
  bump t

let observe_show t ~concept =
  Evidence.observe_show t.evidence ~now_ms:(t.now_ms ()) ~concept;
  bump t

let observe_ignore t ~concept =
  Evidence.observe_ignore t.evidence ~now_ms:(t.now_ms ()) ~concept;
  bump t

(* Transcript ingest with session-scoped ignore semantics: a concept some
   EXPAND revealed counts as ignored only if the session ended without the
   user ever engaging (expanding or listing) it. *)
let learn t events =
  let now_ms = t.now_ms () in
  let seen = Hashtbl.create 32 and engaged = Hashtbl.create 32 in
  let engage concept =
    Hashtbl.replace engaged concept ();
    Hashtbl.remove seen concept
  in
  List.iter
    (fun (e : Session_log.event) ->
      match e with
      | Session_log.Expanded { concept; revealed } ->
          engage concept;
          Evidence.observe_expand t.evidence ~now_ms ~concept;
          List.iter
            (fun c -> if not (Hashtbl.mem engaged c) then Hashtbl.replace seen c ())
            revealed
      | Session_log.Shown { concept; _ } ->
          engage concept;
          Evidence.observe_show t.evidence ~now_ms ~concept
      | Session_log.Backtracked -> ()
      | Session_log.Refined { concept } ->
          (* Narrowing the whole session to a concept's subtree is the
             strongest engagement signal a session can emit. *)
          engage concept;
          Evidence.observe_show t.evidence ~now_ms ~concept
      | Session_log.Unrefined | Session_log.Faceted -> ())
    events;
  Hashtbl.iter (fun concept () -> Evidence.observe_ignore t.evidence ~now_ms ~concept) seen;
  refresh t

let top_concepts t n =
  let now_ms = t.now_ms () in
  let all =
    Evidence.fold t.evidence ~now_ms
      (fun concept c acc ->
        let engaged = c.Evidence.expands +. c.Evidence.shows in
        let lift =
          (t.config.prior_strength +. (t.config.explore_boost *. engaged))
          /. (t.config.prior_strength +. engaged +. c.Evidence.ignores)
        in
        (concept, c, lift) :: acc)
      []
  in
  let by_engagement (_, (a : Evidence.counts), _) (_, (b : Evidence.counts), _) =
    Float.compare (b.expands +. b.shows) (a.expands +. a.shows)
  in
  List.filteri (fun i _ -> i < n) (List.sort by_engagement all)

let status_text t =
  let buf = Buffer.create 256 in
  let m = model t in
  Buffer.add_string buf
    (Printf.sprintf "model: %s\nobservations: %d\nconcepts: %d\nhalf_life_ms: %s\n"
       m.Probability.fingerprint (observations t)
       (Evidence.concept_count t.evidence ~now_ms:(t.now_ms ()))
       (match t.config.half_life_ms with None -> "none" | Some hl -> Printf.sprintf "%g" hl));
  Buffer.add_string buf
    (Printf.sprintf "prior_strength: %g\nexplore_boost: %g\nrefresh_every: %d\n"
       t.config.prior_strength t.config.explore_boost t.config.refresh_every);
  List.iter
    (fun (concept, (c : Evidence.counts), lift) ->
      Buffer.add_string buf
        (Printf.sprintf "concept %d: expands=%.2f shows=%.2f ignores=%.2f lift=%.3f\n" concept
           c.expands c.shows c.ignores lift))
    (top_concepts t 10);
  Buffer.contents buf
