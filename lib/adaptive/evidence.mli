(** Per-concept navigation evidence with exponential time-decay.

    One cell per hierarchy concept aggregates how often sessions EXPANDed
    it, SHOWRESULTSed it, or revealed-and-ignored it. Counts age with a
    configurable half-life ("MeSH Concept Relevance and Knowledge
    Evolution": concept relevance drifts, so stale behaviour must stop
    steering cuts); decay is applied {e lazily} on touch, so every
    [observe_*] is O(1) no matter how much wall-clock passed — cheap
    enough to call from engine actions under the shard lock. A count
    decayed below [1e-9] snaps to exactly zero, making "fully decayed"
    indistinguishable from "never observed". All operations are
    thread-safe behind an internal mutex (engine shards observe from
    several domains). *)

type counts = { expands : float; shows : float; ignores : float }

val zero : counts

type t

val create : ?half_life_ms:float -> unit -> t
(** No [half_life_ms] (the default) means evidence never decays.
    @raise Invalid_argument if [half_life_ms <= 0]. *)

val half_life_ms : t -> float option

val observe_expand : t -> now_ms:float -> concept:int -> unit
val observe_show : t -> now_ms:float -> concept:int -> unit
val observe_ignore : t -> now_ms:float -> concept:int -> unit
(** One observation each: the concept's component was expanded, its
    results were listed, or it was revealed to a user who engaged with it
    in no way before the session ended. *)

val counts : t -> now_ms:float -> concept:int -> counts
(** The concept's evidence decayed to [now_ms]; {!zero} when unseen. *)

val fold : t -> now_ms:float -> (int -> counts -> 'a -> 'a) -> 'a -> 'a
(** Fold over every concept with non-zero (post-decay) evidence. *)

val observations : t -> int
(** Raw number of [observe_*] calls — monotone, never decays. *)

val concept_count : t -> now_ms:float -> int
(** Concepts with non-zero evidence after decay to [now_ms]. *)

val clear : t -> unit
