type t = {
  concepts : Concept.t array;
  parent : int array;
  children : int list array;
  depth : int array;
  subtree_size : int array;
}

let validate concepts parent =
  let n = Array.length concepts in
  if n = 0 then invalid_arg "Hierarchy.build: empty concept array";
  if Array.length parent <> n then invalid_arg "Hierarchy.build: parent length mismatch";
  if parent.(0) <> -1 then invalid_arg "Hierarchy.build: root parent must be -1";
  for i = 0 to n - 1 do
    if Concept.id concepts.(i) <> i then
      invalid_arg (Printf.sprintf "Hierarchy.build: concept %d has id %d" i (Concept.id concepts.(i)));
    if i > 0 && not (parent.(i) >= 0 && parent.(i) < i) then
      invalid_arg (Printf.sprintf "Hierarchy.build: node %d has parent %d" i parent.(i))
  done;
  for i = 1 to n - 1 do
    let tn = Concept.tree_number concepts.(i) in
    let ptn = Concept.tree_number concepts.(parent.(i)) in
    match Tree_number.parent tn with
    | Some expected when Tree_number.equal expected ptn -> ()
    | _ ->
        invalid_arg
          (Printf.sprintf "Hierarchy.build: node %d tree number %s inconsistent with parent %s"
             i
             (Tree_number.to_string tn)
             (Tree_number.to_string ptn))
  done

let build concepts ~parent =
  validate concepts parent;
  let n = Array.length concepts in
  let children = Array.make n [] in
  (* Reverse iteration keeps each child list in ascending id order. *)
  for i = n - 1 downto 1 do
    children.(parent.(i)) <- i :: children.(parent.(i))
  done;
  let depth = Array.make n 0 in
  for i = 1 to n - 1 do
    depth.(i) <- depth.(parent.(i)) + 1
  done;
  let subtree_size = Array.make n 1 in
  for i = n - 1 downto 1 do
    subtree_size.(parent.(i)) <- subtree_size.(parent.(i)) + subtree_size.(i)
  done;
  { concepts; parent = Array.copy parent; children; depth; subtree_size }

let of_parents ?labels parent =
  let n = Array.length parent in
  let label_of = match labels with Some f -> f | None -> Printf.sprintf "node-%d" in
  let tree_numbers = Array.make n Tree_number.root in
  let child_counter = Array.make n 0 in
  for i = 1 to n - 1 do
    let p = parent.(i) in
    if not (p >= 0 && p < i) then
      invalid_arg (Printf.sprintf "Hierarchy.of_parents: node %d has parent %d" i p);
    tree_numbers.(i) <- Tree_number.child tree_numbers.(p) child_counter.(p);
    child_counter.(p) <- child_counter.(p) + 1
  done;
  let concepts =
    Array.init n (fun i ->
        Concept.make ~id:i ~label:(label_of i) ~tree_number:tree_numbers.(i))
  in
  build concepts ~parent

let size t = Array.length t.concepts
let root _ = 0
let concept t i = t.concepts.(i)
let label t i = Concept.label t.concepts.(i)
let parent t i = t.parent.(i)
let children t i = t.children.(i)
let depth t i = t.depth.(i)
let is_leaf t i = t.children.(i) = []
let subtree_size t i = t.subtree_size.(i)

let height t = Array.fold_left max 0 t.depth

let max_width t =
  let counts = Array.make (height t + 1) 0 in
  Array.iter (fun d -> counts.(d) <- counts.(d) + 1) t.depth;
  Array.fold_left max 0 counts

let ancestors t i =
  (* Nearest ancestor first, root last. *)
  let rec up acc j =
    let p = t.parent.(j) in
    if p = -1 then List.rev acc else up (p :: acc) p
  in
  up [] i

let path_from_root t i =
  let rec up acc j = if j = -1 then acc else up (j :: acc) t.parent.(j) in
  up [] i

let is_ancestor t a b =
  if a = b then false
  else if t.depth.(a) >= t.depth.(b) then false
  else
    let rec climb j = if j = -1 then false else if j = a then true else climb t.parent.(j) in
    climb t.parent.(b)

let iter_subtree t n f =
  let rec go i =
    f i;
    List.iter go t.children.(i)
  in
  go n

let descendants t n =
  let acc = ref [] in
  iter_subtree t n (fun i -> if i <> n then acc := i :: !acc);
  List.rev !acc

let fold_postorder t n f =
  let rec go i = f i (List.map go t.children.(i)) in
  go n

let find_by_label t label =
  let n = size t in
  let rec scan i =
    if i >= n then None
    else if String.equal (Concept.label t.concepts.(i)) label then Some i
    else scan (i + 1)
  in
  scan 0

let find_by_tree_number t tn =
  let n = size t in
  let rec scan i =
    if i >= n then None
    else if Tree_number.equal (Concept.tree_number t.concepts.(i)) tn then Some i
    else scan (i + 1)
  in
  scan 0

let nodes_at_depth t d =
  let acc = ref [] in
  for i = size t - 1 downto 0 do
    if t.depth.(i) = d then acc := i :: !acc
  done;
  !acc

let pp_stats ppf t =
  Format.fprintf ppf "hierarchy: %d nodes, height %d, max width %d" (size t) (height t)
    (max_width t)
