let record_separator = "*NEWRECORD"

type record = { mh : string option; mns : string list }

let empty_record = { mh = None; mns = [] }

let parse_field line =
  match String.index_opt line '=' with
  | None -> None
  | Some k ->
      let key = String.trim (String.sub line 0 k) in
      let value = String.trim (String.sub line (k + 1) (String.length line - k - 1)) in
      Some (key, value)

let parse_records text =
  let lines = String.split_on_char '\n' text in
  let flush records current = if current == empty_record then records else current :: records in
  let records, last =
    List.fold_left
      (fun (records, current) raw ->
        let line = String.trim raw in
        if line = "" then (records, current)
        else if line = record_separator then (flush records current, empty_record)
        else
          match parse_field line with
          | Some ("MH", value) when value <> "" -> (records, { current with mh = Some value })
          | Some ("MN", value) when value <> "" ->
              (records, { current with mns = value :: current.mns })
          | Some _ | None -> (records, current))
      ([], empty_record) lines
  in
  List.rev (flush records last)

let of_string ?root_label text =
  let records = parse_records text in
  let entries =
    List.concat_map
      (fun r ->
        match (r.mh, r.mns) with
        | Some mh, (_ :: _ as mns) ->
            List.map
              (fun mn ->
                (* Validate eagerly for a precise error message. *)
                ignore (Tree_number.of_string mn);
                Printf.sprintf "%s|%s" mn mh)
              (List.rev mns)
        | Some _, [] | None, _ -> [])
      records
  in
  if entries = [] then invalid_arg "Mesh_ascii.of_string: no descriptor records with MN fields";
  Flat_file.of_string ?root_label (String.concat "\n" entries)

let to_string h =
  (* Group tree numbers by label in first-appearance (preorder) order. *)
  let order = ref [] in
  let groups : (string, string list) Hashtbl.t = Hashtbl.create 256 in
  Hierarchy.iter_subtree h (Hierarchy.root h) (fun i ->
      if i <> Hierarchy.root h then begin
        let label = Hierarchy.label h i in
        let mn = Tree_number.to_string (Concept.tree_number (Hierarchy.concept h i)) in
        (match Hashtbl.find_opt groups label with
        | None ->
            order := label :: !order;
            Hashtbl.add groups label [ mn ]
        | Some mns -> Hashtbl.replace groups label (mn :: mns))
      end);
  let buf = Buffer.create 4096 in
  List.iteri
    (fun idx label ->
      Buffer.add_string buf record_separator;
      Buffer.add_char buf '\n';
      Buffer.add_string buf "RECTYPE = D\n";
      Buffer.add_string buf (Printf.sprintf "MH = %s\n" label);
      List.iter
        (fun mn -> Buffer.add_string buf (Printf.sprintf "MN = %s\n" mn))
        (List.rev (Hashtbl.find groups label));
      Buffer.add_string buf (Printf.sprintf "UI = D%06d\n\n" (idx + 1)))
    (List.rev !order);
  Buffer.contents buf

let load ?root_label path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string ?root_label (really_input_string ic (in_channel_length ic)))

let save h path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string h))
