(* (name, NLM abbreviation), per the 2008 MeSH qualifier list. *)
let table =
  [|
    ("administration & dosage", "AD");
    ("adverse effects", "AE");
    ("analysis", "AN");
    ("anatomy & histology", "AH");
    ("antagonists & inhibitors", "AI");
    ("biosynthesis", "BI");
    ("blood", "BL");
    ("chemistry", "CH");
    ("classification", "CL");
    ("complications", "CO");
    ("cytology", "CY");
    ("diagnosis", "DI");
    ("drug effects", "DE");
    ("embryology", "EM");
    ("enzymology", "EN");
    ("epidemiology", "EP");
    ("etiology", "ET");
    ("genetics", "GE");
    ("growth & development", "GD");
    ("immunology", "IM");
    ("metabolism", "ME");
    ("microbiology", "MI");
    ("mortality", "MO");
    ("pathology", "PA");
    ("pharmacology", "PD");
    ("physiology", "PH");
    ("physiopathology", "PP");
    ("prevention & control", "PC");
    ("secretion", "SE");
    ("surgery", "SU");
    ("therapeutic use", "TU");
    ("therapy", "TH");
    ("toxicity", "TO");
    ("ultrastructure", "UL");
  |]

type t = int

let count = Array.length table

let check id =
  if id < 0 || id >= count then invalid_arg (Printf.sprintf "Qualifiers: bad id %d" id)

let name id =
  check id;
  fst table.(id)

let abbreviation id =
  check id;
  snd table.(id)

let index_by f =
  let tbl = Hashtbl.create count in
  Array.iteri (fun i entry -> Hashtbl.replace tbl (String.lowercase_ascii (f entry)) i) table;
  tbl

let by_name = index_by fst
let by_abbrev = index_by snd

(* Decode-bounds discipline (same as Codec/Segstore): qualifier names and
   abbreviations come off untrusted wire formats (nbib imports, query
   strings), so bound the work done on a candidate before normalizing it.
   The longest legitimate entry is 26 bytes; anything past [max_input_length]
   cannot match and is rejected without allocating a lowercased copy. *)
let max_input_length = 64

let lookup tbl s =
  if String.length s > max_input_length then None
  else Hashtbl.find_opt tbl (String.lowercase_ascii (String.trim s))

let find_by_name s = lookup by_name s

let find_by_abbreviation s = lookup by_abbrev s

let all () = List.init count Fun.id
