(** Synthetic MeSH-like hierarchy generation.

    Substitutes for the real MeSH 2008 release (paper §VII downloads it from
    NLM; ~48,000 descriptors). The generator reproduces the structural
    properties the BioNav algorithms are sensitive to:

    - a fixed set of top-level categories under a single root;
    - a per-level node-count profile shaped like MeSH: a bushy upper region
      ("the MeSH hierarchy is quite bushy on the upper levels", §I) peaking
      around depths 4-6 and thinning toward the maximum depth (≈11 in
      MeSH tree numbers);
    - Zipf-skewed parent assignment, so a few concepts gather large child
      sets while most stay narrow.

    Generation is deterministic given the seed. *)

type params = {
  target_size : int;  (** Total number of nodes, root included (±rounding). *)
  max_depth : int;  (** Deepest level generated (MeSH: 11). *)
  top_fanout : int;
      (** Children of the root. BioNav anchors the MeSH forest under a
          single root whose children are the ~112 per-category subtrees
          (A01..A17, B01.., C01.., ...), which is why the paper's root
          expansion shows 98 children. *)
  parent_skew : float;
      (** Zipf exponent of the per-level parent-popularity distribution;
          higher values concentrate children on fewer parents. *)
}

val default_params : params
(** 48k nodes, depth 11, 112 top-level subtrees — MeSH-2008-like. *)

val small_params : params
(** A few hundred nodes, depth 8; for fast tests and examples. *)

val level_counts : params -> int array
(** The per-level node budget the generator will aim for (index 0 = depth
    1). Exposed for calibration tests. *)

val generate : ?params:params -> seed:int -> unit -> Hierarchy.t
