(** Generation of biomedical-flavoured concept labels.

    Synthetic hierarchies need distinct, human-readable labels so that the
    interactive CLI and examples feel like real MeSH navigation. Labels are
    composed from curated biomedical morphemes (prefix + stem + suffix, with
    an optional qualifier), and an allocator guarantees uniqueness within one
    generator instance. *)

type t

val create : Bionav_util.Rng.t -> t
(** A fresh allocator drawing from the given generator. *)

val top_level_categories : string array
(** The 16 MeSH-like top-level category names, e.g. "Diseases",
    "Chemicals and Drugs". *)

val fresh : t -> string
(** A fresh label, distinct from all labels previously produced by [t]. *)

val fresh_at_depth : t -> int -> string
(** Depth-flavoured label: shallow concepts get broad-sounding labels
    ("... Phenomena"), deep ones get specific-sounding ones. Still unique. *)
