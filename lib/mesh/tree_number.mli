(** MeSH-style tree numbers.

    Every MeSH descriptor carries one or more tree numbers encoding its
    position in the hierarchy, e.g. ["C04.588.33"]: dot-separated segments
    where each prefix names an ancestor. BioNav's navigation-tree
    construction relies on these identifiers to place query results in the
    hierarchy, so we reproduce the encoding faithfully: a leading category
    letter segment followed by numeric segments. *)

type t

val root : t
(** The distinguished empty tree number for the hierarchy root. *)

val of_string : string -> t
(** Parses ["C04.588.33"]. @raise Invalid_argument on malformed input
    (empty segments, non-alphanumeric characters). *)

val to_string : t -> string
(** [to_string root] is [""]. *)

val child : t -> int -> t
(** [child t i] extends [t] with segment index [i] (0-based). Top-level
    children of the root get letter segments ["A"], ["B"], ... ["Z"],
    ["A1"], ...; deeper segments are zero-padded 3-digit numbers following
    MeSH convention. *)

val parent : t -> t option
(** [None] for the root. *)

val depth : t -> int
(** Number of segments; the root has depth 0. *)

val is_ancestor : t -> t -> bool
(** [is_ancestor a b] iff [a] is a strict prefix of [b]. *)

val compare : t -> t -> int
(** Lexicographic over segments; ancestors sort before descendants. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
