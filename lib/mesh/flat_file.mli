(** Reading and writing hierarchies in a MeSH-flat-file-like text format.

    The real BioNav populates its database from the MeSH files published by
    NLM (paper §VII). We mirror that pipeline with a minimal line format:

    {v <tree-number>|<label> v}

    one line per non-root concept, in any order. The root is implicit. *)

val to_string : Hierarchy.t -> string
(** Serialize; lines appear in preorder. *)

val of_string : ?root_label:string -> string -> Hierarchy.t
(** Parse. Lines may be in any order; blank lines and lines starting with
    ['#'] are ignored. Missing intermediate tree numbers are an error. The
    implicit root is labelled [root_label] (default ["MeSH"]).
    @raise Invalid_argument on malformed or inconsistent input. *)

val save : Hierarchy.t -> string -> unit
(** [save h path] writes the flat file. *)

val load : ?root_label:string -> string -> Hierarchy.t
(** @raise Sys_error / Invalid_argument. *)
