(** Reading and writing the NLM MeSH ASCII ("d-file") record format.

    The real BioNav populates its database from the MeSH files published by
    the National Library of Medicine (paper §VII). Descriptor records look
    like

    {v
      *NEWRECORD
      RECTYPE = D
      MH = Calcimycin
      MN = D03.633.100.221.173
      UI = D000001
    v}

    A descriptor may carry several [MN] lines (it occupies several positions
    in the MeSH forest); each position becomes one hierarchy node labelled
    with the descriptor's [MH] heading. Records without any [MN] (e.g.
    qualifier records, RECTYPE = Q) are skipped, as are unknown fields. *)

val of_string : ?root_label:string -> string -> Hierarchy.t
(** Parse a d-file. Positions may appear in any order, but every non-top
    position must have its parent position present in some record.
    @raise Invalid_argument on malformed records or missing parents. *)

val to_string : Hierarchy.t -> string
(** Serialize: one record per distinct label, carrying all its tree
    numbers, with stable [UI] identifiers derived from record order. *)

val load : ?root_label:string -> string -> Hierarchy.t
val save : Hierarchy.t -> string -> unit
