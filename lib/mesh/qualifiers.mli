(** MeSH qualifiers (subheadings).

    Real MEDLINE annotations are descriptor/qualifier pairs —
    "Histones/metabolism", "Apoptosis/drug effects" — drawn from a small
    controlled list of ~80 subheadings. BioNav's navigation ignores
    qualifiers (it works at descriptor granularity), but a faithful corpus
    and the nbib import/export need them. This module fixes a standard
    subset of the NLM 2008 qualifier list with the official two-letter
    abbreviations. *)

type t = int
(** Dense qualifier id, [0 .. count - 1]. *)

val count : int
val name : t -> string
(** Lowercase subheading, e.g. "metabolism". @raise Invalid_argument on a
    bad id. *)

val abbreviation : t -> string
(** NLM two-letter code, e.g. "ME". *)

val find_by_name : string -> t option
(** Case-insensitive. *)

val find_by_abbreviation : string -> t option
(** Case-insensitive. *)

val all : unit -> t list
