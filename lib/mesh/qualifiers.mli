(** MeSH qualifiers (subheadings).

    Real MEDLINE annotations are descriptor/qualifier pairs —
    "Histones/metabolism", "Apoptosis/drug effects" — drawn from a small
    controlled list of ~80 subheadings. The paper's TOPDOWN navigation
    works at descriptor granularity, but the qualifier axis feeds the
    {!Bionav_core.Nav_space.Qualifier_facet} navigation dimension (one
    facet page per subheading), and a faithful corpus and the nbib
    import/export need them too. This module fixes a standard subset of
    the NLM 2008 qualifier list with the official two-letter
    abbreviations. *)

type t = int
(** Dense qualifier id, [0 .. count - 1]. *)

val count : int
val name : t -> string
(** Lowercase subheading, e.g. "metabolism". @raise Invalid_argument on a
    bad id. *)

val abbreviation : t -> string
(** NLM two-letter code, e.g. "ME". *)

val find_by_name : string -> t option
(** Case-insensitive, surrounding whitespace ignored. Inputs longer than
    {!max_input_length} are rejected ([None]) before any normalization
    work — the same bounded-decode discipline the binary codecs apply to
    untrusted input. *)

val find_by_abbreviation : string -> t option
(** Case-insensitive; same input bounds as {!find_by_name}. *)

val max_input_length : int
(** Longest candidate string {!find_by_name} / {!find_by_abbreviation}
    will consider (64; the longest real entry is 26 bytes). *)

val all : unit -> t list
