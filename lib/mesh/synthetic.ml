open Bionav_util

type params = {
  target_size : int;
  max_depth : int;
  top_fanout : int;
  parent_skew : float;
}

let default_params = { target_size = 48_000; max_depth = 11; top_fanout = 112; parent_skew = 0.8 }

let small_params = { target_size = 400; max_depth = 8; top_fanout = 8; parent_skew = 0.8 }

let category_label i =
  let base = Labels.top_level_categories in
  let n = Array.length base in
  if i < n then base.(i) else Printf.sprintf "%s %d" base.(i mod n) (1 + (i / n))

(* MeSH-2008-like per-level node-count shape (depths 1..11): a bushy upper
   region peaking around depths 4-6, thinning toward depth 11. Normalized
   fractions of the total node budget. *)
let mesh_level_shape =
  [| 0.0004; 0.003; 0.028; 0.125; 0.23; 0.23; 0.17; 0.10; 0.06; 0.034; 0.0196 |]

(* Per-level node counts for the requested parameters: the MeSH shape is
   truncated/renormalized to [max_depth] levels and scaled to
   [target_size - 1] non-root nodes, with level 1 pinned to [top_fanout]. *)
let level_counts p =
  let levels = min p.max_depth (Array.length mesh_level_shape) in
  let shape = Array.sub mesh_level_shape 0 levels in
  let total_shape = Array.fold_left ( +. ) 0. shape in
  let budget = p.target_size - 1 - p.top_fanout in
  let counts =
    Array.mapi
      (fun i frac ->
        if i = 0 then p.top_fanout
        else max 1 (int_of_float (Float.round (float_of_int budget *. frac /. total_shape))))
      shape
  in
  (* Monotone feasibility is not required (a level may be narrower than the
     one above), but every level needs at least one node to host children. *)
  counts

let generate ?(params = default_params) ~seed () =
  let p = params in
  assert (p.target_size > p.top_fanout && p.max_depth >= 2 && p.top_fanout >= 1);
  let rng = Rng.create seed in
  let label_gen = Labels.create (Rng.split rng) in
  let counts = level_counts p in
  let rev_parents = ref [] and rev_labels = ref [] in
  let count = ref 0 in
  let push ~parent ~label =
    let id = !count in
    rev_parents := parent :: !rev_parents;
    rev_labels := label :: !rev_labels;
    incr count;
    id
  in
  let root = push ~parent:(-1) ~label:"MeSH" in
  let level1 =
    Array.init counts.(0) (fun i -> push ~parent:root ~label:(category_label i))
  in
  (* Parent choice within the previous level is Zipf-skewed: a few concepts
     gather many children (the bushiness the paper calls out at the upper
     levels) while most stay narrow. *)
  let previous = ref level1 in
  (try
     for d = 1 to Array.length counts - 1 do
       let parents = !previous in
       if Array.length parents = 0 then raise Exit;
       let skew = Zipf.create ~exponent:p.parent_skew (Array.length parents) in
       (* A fixed random orientation of the skew per level. *)
       let order = Array.copy parents in
       Rng.shuffle rng order;
       let level =
         Array.init counts.(d) (fun _ ->
             let parent = order.(Zipf.draw skew rng) in
             push ~parent ~label:(Labels.fresh_at_depth label_gen (d + 1)))
       in
       previous := level
     done
   with Exit -> ());
  let labels = Array.of_list (List.rev !rev_labels) in
  let parents = Array.of_list (List.rev !rev_parents) in
  Hierarchy.of_parents ~labels:(fun i -> labels.(i)) parents
