type t = string list
(* Segments in root-to-node order; [] is the root. *)

let root = []

let valid_segment s =
  String.length s > 0
  && String.for_all (function 'A' .. 'Z' | '0' .. '9' -> true | _ -> false) s

let of_string s =
  if s = "" then []
  else begin
    let segments = String.split_on_char '.' s in
    List.iter
      (fun seg ->
        if not (valid_segment seg) then
          invalid_arg (Printf.sprintf "Tree_number.of_string: bad segment %S in %S" seg s))
      segments;
    segments
  end

let to_string t = String.concat "." t

(* "A", "B" ... "Z", then "A1", "B1", ... for pathological fanouts. *)
let letter_segment i =
  let letter = Char.chr (Char.code 'A' + (i mod 26)) in
  let round = i / 26 in
  if round = 0 then String.make 1 letter
  else Printf.sprintf "%c%d" letter round

let child t i =
  assert (i >= 0);
  match t with
  | [] -> [ letter_segment i ]
  | _ -> t @ [ Printf.sprintf "%03d" i ]

let parent t =
  match t with
  | [] -> None
  | _ ->
      let rec drop_last = function
        | [] -> assert false
        | [ _ ] -> []
        | x :: rest -> x :: drop_last rest
      in
      Some (drop_last t)

let depth t = List.length t

let rec is_ancestor a b =
  match (a, b) with
  | [], [] -> false
  | [], _ :: _ -> true
  | _ :: _, [] -> false
  | x :: a', y :: b' -> String.equal x y && is_ancestor a' b'

let compare = List.compare String.compare

let equal a b = compare a b = 0

let pp ppf t = Format.pp_print_string ppf (to_string t)
