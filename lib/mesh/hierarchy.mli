(** The concept hierarchy (paper Definition 1): a labelled rooted tree of
    concepts. Node 0 is always the root. Parent/children links, depths and
    subtree sizes are precomputed, so the navigation algorithms get O(1)
    structural queries over a ~48k-node tree. *)

type t

val build : Concept.t array -> parent:int array -> t
(** [build concepts ~parent] constructs the hierarchy. Requirements, checked
    eagerly: [concepts.(i).id = i]; [parent.(0) = -1]; [0 <= parent.(i) < i]
    for [i > 0] (parents precede children, which guarantees acyclicity and a
    single root); tree numbers consistent with the parent links.
    @raise Invalid_argument when a requirement fails. *)

val of_parents : ?labels:(int -> string) -> int array -> t
(** Convenience for tests and synthetic fixtures: builds concepts with
    generated tree numbers from a parent array alone. [labels] defaults to
    ["node-<i>"]. *)

val size : t -> int
(** Number of nodes, root included. *)

val root : t -> int
val concept : t -> int -> Concept.t
val label : t -> int -> string
val parent : t -> int -> int
(** -1 for the root. *)

val children : t -> int -> int list
val depth : t -> int -> int
val is_leaf : t -> int -> bool
val subtree_size : t -> int -> int
(** Number of nodes in the subtree rooted at the argument (itself included). *)

val height : t -> int
(** Maximum depth over all nodes; a single-node tree has height 0. *)

val max_width : t -> int
(** Maximum number of nodes at any single depth. *)

val ancestors : t -> int -> int list
(** Strict ancestors, nearest first; [ancestors t root = []]. *)

val path_from_root : t -> int -> int list
(** Root-to-node path, both endpoints included. *)

val is_ancestor : t -> int -> int -> bool
(** [is_ancestor t a b] iff [a] is a strict ancestor of [b]. *)

val descendants : t -> int -> int list
(** All strict descendants in preorder. *)

val iter_subtree : t -> int -> (int -> unit) -> unit
(** Preorder visit of the subtree rooted at the argument, root included. *)

val fold_postorder : t -> int -> (int -> 'a list -> 'a) -> 'a
(** [fold_postorder t n f] combines each node with the already-folded values
    of its children (left to right). *)

val find_by_label : t -> string -> int option
(** First node (smallest id) with the exact label. *)

val find_by_tree_number : t -> Tree_number.t -> int option

val nodes_at_depth : t -> int -> int list

val pp_stats : Format.formatter -> t -> unit
(** One-line summary: size, height, max width. *)
