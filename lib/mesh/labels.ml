type t = { rng : Bionav_util.Rng.t; seen : (string, unit) Hashtbl.t }

let create rng = { rng; seen = Hashtbl.create 4096 }

let top_level_categories =
  [|
    "Anatomy";
    "Organisms";
    "Diseases";
    "Chemicals and Drugs";
    "Analytical, Diagnostic and Therapeutic Techniques";
    "Psychiatry and Psychology";
    "Biological Sciences";
    "Natural Sciences";
    "Anthropology, Education, Sociology";
    "Technology, Industry, Agriculture";
    "Humanities";
    "Information Science";
    "Named Groups";
    "Health Care";
    "Publication Characteristics";
    "Geographicals";
  |]

let prefixes =
  [|
    "Cardio"; "Neuro"; "Hemo"; "Hepato"; "Nephro"; "Dermato"; "Osteo"; "Myo";
    "Cyto"; "Histo"; "Immuno"; "Onco"; "Gastro"; "Pneumo"; "Angio"; "Chondro";
    "Endo"; "Exo"; "Hyper"; "Hypo"; "Inter"; "Intra"; "Trans"; "Peri";
    "Thermo"; "Chemo"; "Radio"; "Photo"; "Electro"; "Magneto"; "Glyco"; "Lipo";
  |]

let stems =
  [|
    "blast"; "cyte"; "gen"; "plasm"; "soma"; "thel"; "vascul"; "neur";
    "path"; "troph"; "phag"; "lys"; "kinas"; "zym"; "globul"; "peptid";
    "nucle"; "chondri"; "fibr"; "granul"; "capill"; "membran"; "recept";
    "transport"; "channel"; "factor"; "protein"; "enzym"; "hormon"; "antigen";
  |]

let suffixes =
  [|
    "osis"; "itis"; "emia"; "oma"; "pathy"; "genesis"; "trophy"; "plasia";
    "ase"; "in"; "ide"; "ate"; "ol"; "one"; "ium"; "an"; "ysis"; "ion";
  |]

let qualifiers =
  [|
    "Metabolism"; "Genetics"; "Physiology"; "Pathology"; "Immunology";
    "Pharmacology"; "Chemistry"; "Regulation"; "Signaling"; "Expression";
    "Differentiation"; "Transport"; "Binding"; "Inhibitors"; "Agonists";
    "Antagonists"; "Receptors"; "Processes"; "Phenomena"; "Disorders";
  |]

let broad_tails = [| "Phenomena"; "Processes"; "Sciences"; "Systems"; "Disorders" |]

let capitalize s = String.capitalize_ascii s

let base_word t =
  let open Bionav_util in
  let p = Rng.choice t.rng prefixes in
  let s = Rng.choice t.rng stems in
  let x = Rng.choice t.rng suffixes in
  capitalize (String.lowercase_ascii (p ^ s ^ x))

let uniquify t candidate =
  if not (Hashtbl.mem t.seen candidate) then begin
    Hashtbl.add t.seen candidate ();
    candidate
  end
  else begin
    let rec try_index i =
      let attempt = Printf.sprintf "%s %d" candidate i in
      if Hashtbl.mem t.seen attempt then try_index (i + 1)
      else begin
        Hashtbl.add t.seen attempt ();
        attempt
      end
    in
    try_index 2
  end

let fresh t =
  let open Bionav_util in
  let candidate =
    if Rng.bernoulli t.rng 0.4 then
      Printf.sprintf "%s, %s" (base_word t) (Rng.choice t.rng qualifiers)
    else base_word t
  in
  uniquify t candidate

let fresh_at_depth t d =
  let open Bionav_util in
  let candidate =
    if d <= 2 && Rng.bernoulli t.rng 0.6 then
      Printf.sprintf "%s %s" (base_word t) (Rng.choice t.rng broad_tails)
    else if d >= 5 && Rng.bernoulli t.rng 0.5 then
      Printf.sprintf "%s, %s" (base_word t) (Rng.choice t.rng qualifiers)
    else base_word t
  in
  uniquify t candidate
