let to_string h =
  let buf = Buffer.create 4096 in
  Hierarchy.iter_subtree h (Hierarchy.root h) (fun i ->
      if i <> Hierarchy.root h then
        Buffer.add_string buf
          (Printf.sprintf "%s|%s\n"
             (Tree_number.to_string (Concept.tree_number (Hierarchy.concept h i)))
             (Hierarchy.label h i)));
  Buffer.contents buf

let parse_line lineno line =
  match String.index_opt line '|' with
  | None -> invalid_arg (Printf.sprintf "Flat_file: line %d: missing '|': %S" lineno line)
  | Some k ->
      let tn_str = String.sub line 0 k in
      let label = String.sub line (k + 1) (String.length line - k - 1) in
      if label = "" then
        invalid_arg (Printf.sprintf "Flat_file: line %d: empty label" lineno);
      (Tree_number.of_string tn_str, label)

let of_string ?(root_label = "MeSH") text =
  let entries =
    String.split_on_char '\n' text
    |> List.mapi (fun i line -> (i + 1, String.trim line))
    |> List.filter (fun (_, line) -> line <> "" && not (String.length line > 0 && line.[0] = '#'))
    |> List.map (fun (i, line) -> parse_line i line)
  in
  (* Sort by tree number so every parent precedes its children. *)
  let entries = List.sort (fun (a, _) (b, _) -> Tree_number.compare a b) entries in
  let tbl = Hashtbl.create 1024 in
  Hashtbl.add tbl (Tree_number.to_string Tree_number.root) 0;
  let n = List.length entries in
  let concepts =
    Array.make (n + 1) (Concept.make ~id:0 ~label:root_label ~tree_number:Tree_number.root)
  in
  let parent = Array.make (n + 1) (-1) in
  List.iteri
    (fun idx (tn, label) ->
      let id = idx + 1 in
      let key = Tree_number.to_string tn in
      if Hashtbl.mem tbl key then
        invalid_arg (Printf.sprintf "Flat_file: duplicate tree number %s" key);
      let parent_tn =
        match Tree_number.parent tn with
        | Some p -> p
        | None -> invalid_arg "Flat_file: a non-root line parsed as root"
      in
      let parent_id =
        match Hashtbl.find_opt tbl (Tree_number.to_string parent_tn) with
        | Some p -> p
        | None ->
            invalid_arg
              (Printf.sprintf "Flat_file: %s has no parent entry %s" key
                 (Tree_number.to_string parent_tn))
      in
      Hashtbl.add tbl key id;
      concepts.(id) <- Concept.make ~id ~label ~tree_number:tn;
      parent.(id) <- parent_id)
    entries;
  Hierarchy.build concepts ~parent

let save h path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string h))

let load ?root_label path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      of_string ?root_label text)
