(** A MeSH concept (descriptor): the unit node of the concept hierarchy
    (paper Definition 1 labels nodes with a descriptive label and a unique
    identifier). *)

type t = {
  id : int;  (** Unique, dense identifier: index into the hierarchy arrays. *)
  label : string;  (** Descriptive label, e.g. "Cell Proliferation". *)
  tree_number : Tree_number.t;  (** Position encoding in the hierarchy. *)
}

val make : id:int -> label:string -> tree_number:Tree_number.t -> t
val id : t -> int
val label : t -> string
val tree_number : t -> Tree_number.t
val depth : t -> int
(** Depth in the hierarchy, derived from the tree number (root = 0). *)

val equal : t -> t -> bool
val compare : t -> t -> int
(** Ordered by id. *)

val pp : Format.formatter -> t -> unit
