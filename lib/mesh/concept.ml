type t = { id : int; label : string; tree_number : Tree_number.t }

let make ~id ~label ~tree_number =
  assert (id >= 0);
  { id; label; tree_number }

let id t = t.id
let label t = t.label
let tree_number t = t.tree_number
let depth t = Tree_number.depth t.tree_number

let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id

let pp ppf t =
  Format.fprintf ppf "#%d %s [%a]" t.id t.label Tree_number.pp t.tree_number
