(** The §VIII-A/B experiment: oracle navigation to each query's target under
    BioNav (Heuristic-ReducedOpt) and the static baseline, with timing. *)

type run = {
  query : Queries.query;
  static : Bionav_core.Simulate.outcome;
  bionav : Bionav_core.Simulate.outcome;
}

val improvement : run -> float
(** [1 - bionav_cost / static_cost], in [0, 1] when BioNav wins. *)

val mean_expand_ms : Bionav_core.Simulate.outcome -> float
(** Average per-EXPAND cut-computation time (0 for a run with no expands). *)

val run_strategy :
  Queries.query -> Bionav_core.Navigation.strategy -> Bionav_core.Simulate.outcome
(** One oracle navigation to the query's target under an arbitrary
    strategy (used by the baseline comparisons). *)

val run_query :
  ?k:int -> ?params:Bionav_core.Probability.params -> Queries.query -> run

val run_all :
  ?k:int -> ?params:Bionav_core.Probability.params -> Queries.t -> run list

val average_improvement : run list -> float
