(** The §VIII-A/B experiment: oracle navigation to each query's target under
    BioNav (Heuristic-ReducedOpt) and the static baseline, with timing. *)

type run = {
  query : Queries.query;
  static : Bionav_core.Simulate.outcome;
  bionav : Bionav_core.Simulate.outcome;
}

val improvement : run -> float
(** [1 - bionav_cost / static_cost], in [0, 1] when BioNav wins. *)

val mean_expand_ms : Bionav_core.Simulate.outcome -> float
(** Average per-EXPAND cut-computation time (0 for a run with no expands). *)

val run_strategy :
  Queries.query -> Bionav_core.Navigation.strategy -> Bionav_core.Simulate.outcome
(** One oracle navigation to the query's target under an arbitrary
    strategy (used by the baseline comparisons). *)

val run_query :
  ?k:int -> ?params:Bionav_core.Probability.params -> Queries.query -> run

val run_all :
  ?k:int -> ?params:Bionav_core.Probability.params -> Queries.t -> run list

val average_improvement : run list -> float

(* --- navigation spaces -------------------------------------------------- *)

type space_run = {
  space_query : Queries.query;
  topdown_cost : int;  (** Plain Heuristic-ReducedOpt drill to the target. *)
  refine_cost : int;
      (** Refine-hybrid: one root EXPAND, query-by-navigation refinement at
          the target's component (charged 1), then drill the derived space. *)
  refine_result_size : int;  (** Result-set size after the refinement. *)
  facet_cost : int;
      (** Cost of isolating the qualifier-facet page holding the largest
          share of the target's citations, in the facet space. *)
  facet_pages : int;  (** Non-root nodes of the facet space. *)
}

val refinement_vs_topdown : ?k:int -> Queries.t -> space_run list
(** The navigation-space experiment: for each workload query, compare the
    paper's TOPDOWN cost against (a) a refine-hybrid plan that narrows the
    result set by query-by-navigation and re-derives, and (b) the
    qualifier-facet route to the target's dominant facet page. Both derived
    spaces go through {!Bionav_core.Nav_space.derive}. *)

(* --- learned vs static ------------------------------------------------- *)

type population = {
  pop_name : string;
  pop_exponent : float;
  pop_depth : [ `Deep | `Shallow | `Any ];
}

val populations : population list
(** Three stochastic-user populations, distributions over navigation
    targets: [focused] (Zipf 1.6 over deep concepts), [shallow] (Zipf 1.3
    over near-root concepts), [diffuse] (near-uniform over the tree). *)

type adaptive_run = {
  population : string;
  trained_sessions : int;
  eval_sessions : int;
  static_mean_cost : float;
  learned_mean_cost : float;
  cost_reduction : float;
}

val learned_vs_static :
  ?k:int ->
  ?train:int ->
  ?eval_walks:int ->
  ?seed:int ->
  ?config:Bionav_adaptive.Adaptive.config ->
  Queries.t ->
  adaptive_run list
(** For each population: record [train] goal-directed sessions (targets
    drawn from the population, transcripts through
    {!Bionav_core.Session_log}), learn a model from them
    ({!Bionav_adaptive.Adaptive.learn}), then compare mean simulated
    navigation cost over [eval_walks] fresh target draws under the static
    paper model vs the learned one. [cost_reduction > 0] means learning
    won; deterministic in [seed]. *)
