open Bionav_util
module Simulate = Bionav_core.Simulate
module Navigation = Bionav_core.Navigation

let name_of (r : Experiment.run) = r.Experiment.query.Queries.spec.Queries.name

let table1 (w : Queries.t) =
  let header =
    [
      "Keyword(s)"; "#Results"; "TreeSize"; "MaxWidth"; "Height"; "Cit.w/Dup";
      "TgtLevel"; "L(tgt)"; "LT(tgt)"; "Target Concept";
    ]
  in
  let rows =
    List.map
      (fun q ->
        [
          q.Queries.spec.Queries.name;
          string_of_int (Queries.result_count q);
          string_of_int (Queries.tree_size q);
          string_of_int (Queries.max_width q);
          string_of_int (Queries.tree_height q);
          string_of_int (Queries.citations_with_duplicates q);
          string_of_int (Queries.target_level q);
          string_of_int (Queries.target_l q);
          string_of_int (Queries.target_lt q);
          q.Queries.spec.Queries.target_name;
        ])
      w.Queries.queries
  in
  Table.section "Table I: Query workload"
  ^ "\n"
  ^ Table.render ~header
      [ Table.Left; Right; Right; Right; Right; Right; Right; Right; Right; Left ]
      rows

let fig8 runs =
  let series =
    List.map
      (fun r ->
        ( name_of r,
          float_of_int r.Experiment.static.Simulate.navigation_cost,
          float_of_int r.Experiment.bionav.Simulate.navigation_cost ))
      runs
  in
  let rows =
    List.map
      (fun r ->
        [
          name_of r;
          string_of_int r.Experiment.static.Simulate.navigation_cost;
          string_of_int r.Experiment.bionav.Simulate.navigation_cost;
          Printf.sprintf "%.0f%%" (100. *. Experiment.improvement r);
        ])
      runs
  in
  Table.section "Fig. 8: Navigation cost (concepts revealed + EXPAND actions)"
  ^ "\n"
  ^ Table.render ~header:[ "Query"; "Static"; "BioNav"; "Improvement" ]
      [ Table.Left; Right; Right; Right ]
      rows
  ^ Printf.sprintf "Average improvement: %.0f%% (paper: 85%%)\n\n"
      (100. *. Experiment.average_improvement runs)
  ^ Table.grouped_bar_chart ~title:"Navigation cost" ~series_names:("static", "bionav") series

let fig9 runs =
  let rows =
    List.map
      (fun r ->
        [
          name_of r;
          string_of_int r.Experiment.static.Simulate.expands;
          string_of_int r.Experiment.bionav.Simulate.expands;
        ])
      runs
  in
  Table.section "Fig. 9: Number of EXPAND actions"
  ^ "\n"
  ^ Table.render ~header:[ "Query"; "Static"; "BioNav" ] [ Table.Left; Right; Right ] rows

let fig10 runs =
  let series =
    List.map (fun r -> (name_of r, Experiment.mean_expand_ms r.Experiment.bionav)) runs
  in
  Table.section "Fig. 10: Heuristic-ReducedOpt average execution time per EXPAND (ms)"
  ^ "\n"
  ^ Table.bar_chart ~title:"avg ms per EXPAND" series

let space_table (runs : Experiment.space_run list) =
  let rows =
    List.map
      (fun (r : Experiment.space_run) ->
        let vs cost =
          if r.Experiment.topdown_cost <= 0 then "-"
          else
            Printf.sprintf "%+.0f%%"
              (100.
              *. (1. -. (float_of_int cost /. float_of_int r.Experiment.topdown_cost)))
        in
        [
          r.Experiment.space_query.Queries.spec.Queries.name;
          string_of_int r.Experiment.topdown_cost;
          string_of_int r.Experiment.refine_cost;
          vs r.Experiment.refine_cost;
          string_of_int r.Experiment.refine_result_size;
          string_of_int r.Experiment.facet_cost;
          vs r.Experiment.facet_cost;
          string_of_int r.Experiment.facet_pages;
        ])
      runs
  in
  let mean f =
    match runs with
    | [] -> 0.
    | _ ->
        List.fold_left (fun acc r -> acc +. f r) 0. runs /. float_of_int (List.length runs)
  in
  let mean_saving cost_of =
    mean (fun (r : Experiment.space_run) ->
        if r.Experiment.topdown_cost <= 0 then 0.
        else 1. -. (float_of_int (cost_of r) /. float_of_int r.Experiment.topdown_cost))
  in
  Table.section "Navigation spaces: refinement & qualifier facets vs TOPDOWN"
  ^ "\n"
  ^ Table.render
      ~header:
        [ "Query"; "TOPDOWN"; "Refine"; "vs TD"; "|L| after"; "Facet"; "vs TD"; "Pages" ]
      [ Table.Left; Right; Right; Right; Right; Right; Right; Right ]
      rows
  ^ Printf.sprintf "Mean refine-hybrid saving: %+.0f%%; mean facet-route saving: %+.0f%%\n"
      (100. *. mean_saving (fun r -> r.Experiment.refine_cost))
      (100. *. mean_saving (fun r -> r.Experiment.facet_cost))

(* Minimal CSV quoting: labels may contain commas ("Mice, Transgenic"). *)
let csv_cell s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let csv_of_rows rows =
  String.concat "\n" (List.map (fun row -> String.concat "," (List.map csv_cell row)) rows)
  ^ "\n"

let table1_csv (w : Queries.t) =
  csv_of_rows
    ([ "query"; "results"; "tree_size"; "max_width"; "height"; "citations_with_duplicates";
       "target_level"; "target_l"; "target_lt"; "target_concept" ]
    :: List.map
         (fun q ->
           [
             q.Queries.spec.Queries.name;
             string_of_int (Queries.result_count q);
             string_of_int (Queries.tree_size q);
             string_of_int (Queries.max_width q);
             string_of_int (Queries.tree_height q);
             string_of_int (Queries.citations_with_duplicates q);
             string_of_int (Queries.target_level q);
             string_of_int (Queries.target_l q);
             string_of_int (Queries.target_lt q);
             q.Queries.spec.Queries.target_name;
           ])
         w.Queries.queries)

let fig8_csv runs =
  csv_of_rows
    ([ "query"; "static_cost"; "bionav_cost"; "improvement" ]
    :: List.map
         (fun r ->
           [
             name_of r;
             string_of_int r.Experiment.static.Simulate.navigation_cost;
             string_of_int r.Experiment.bionav.Simulate.navigation_cost;
             Printf.sprintf "%.4f" (Experiment.improvement r);
           ])
         runs)

let fig9_csv runs =
  csv_of_rows
    ([ "query"; "static_expands"; "bionav_expands" ]
    :: List.map
         (fun r ->
           [
             name_of r;
             string_of_int r.Experiment.static.Simulate.expands;
             string_of_int r.Experiment.bionav.Simulate.expands;
           ])
         runs)

let fig10_csv runs =
  csv_of_rows
    ([ "query"; "mean_expand_ms" ]
    :: List.map
         (fun r -> [ name_of r; Printf.sprintf "%.4f" (Experiment.mean_expand_ms r.Experiment.bionav) ])
         runs)

let space_table_csv (runs : Experiment.space_run list) =
  csv_of_rows
    ([ "query"; "topdown_cost"; "refine_cost"; "refine_result_size"; "facet_cost";
       "facet_pages" ]
    :: List.map
         (fun (r : Experiment.space_run) ->
           [
             r.Experiment.space_query.Queries.spec.Queries.name;
             string_of_int r.Experiment.topdown_cost;
             string_of_int r.Experiment.refine_cost;
             string_of_int r.Experiment.refine_result_size;
             string_of_int r.Experiment.facet_cost;
             string_of_int r.Experiment.facet_pages;
           ])
         runs)

let fig11_csv (r : Experiment.run) =
  csv_of_rows
    ([ "step"; "partitions"; "elapsed_ms"; "revealed" ]
    :: List.mapi
         (fun i (rec_ : Navigation.expand_record) ->
           [
             string_of_int (i + 1);
             string_of_int rec_.Navigation.reduced_size;
             Printf.sprintf "%.4f" rec_.Navigation.elapsed_ms;
             string_of_int rec_.Navigation.n_revealed;
           ])
         r.Experiment.bionav.Simulate.history)

let fig11 (r : Experiment.run) =
  let rows =
    List.mapi
      (fun i (rec_ : Navigation.expand_record) ->
        [
          Printf.sprintf "EXPAND %d" (i + 1);
          Printf.sprintf "%d partitions" rec_.Navigation.reduced_size;
          Printf.sprintf "%.2f ms" rec_.Navigation.elapsed_ms;
          Printf.sprintf "%d revealed" rec_.Navigation.n_revealed;
        ])
      r.Experiment.bionav.Simulate.history
  in
  Table.section (Printf.sprintf "Fig. 11: per-EXPAND execution time for %S" (name_of r))
  ^ "\n"
  ^ Table.render ~header:[ "Step"; "Reduced tree"; "Time"; "Revealed" ]
      [ Table.Left; Right; Right; Right ]
      rows
