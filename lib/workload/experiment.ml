module Simulate = Bionav_core.Simulate
module Navigation = Bionav_core.Navigation
module Probability = Bionav_core.Probability
module Active_tree = Bionav_core.Active_tree
module Session_log = Bionav_core.Session_log
module Adaptive = Bionav_adaptive.Adaptive
module Engine = Bionav_engine.Engine
module Rng = Bionav_util.Rng
module Zipf = Bionav_util.Zipf
module Stats = Bionav_util.Stats

type run = { query : Queries.query; static : Simulate.outcome; bionav : Simulate.outcome }

let improvement r =
  let s = float_of_int r.static.Simulate.navigation_cost in
  let b = float_of_int r.bionav.Simulate.navigation_cost in
  if s <= 0. then 0. else 1. -. (b /. s)

let mean_expand_ms (o : Simulate.outcome) =
  match o.Simulate.history with
  | [] -> 0.
  | h ->
      List.fold_left (fun acc (r : Navigation.expand_record) -> acc +. r.elapsed_ms) 0. h
      /. float_of_int (List.length h)

let run_strategy (q : Queries.query) strategy =
  Simulate.to_target (Engine.start strategy q.Queries.nav) ~target:q.Queries.target_node

let run_query ?k ?params (q : Queries.query) =
  let target = q.Queries.target_node in
  let run strategy = Simulate.to_target (Engine.start strategy q.Queries.nav) ~target in
  let static = run Navigation.Static in
  let bionav = run (Navigation.bionav ?k ?params ()) in
  { query = q; static; bionav }

let run_all ?k ?params (w : Queries.t) = List.map (run_query ?k ?params) w.Queries.queries

let average_improvement runs =
  match runs with
  | [] -> 0.
  | _ ->
      List.fold_left (fun acc r -> acc +. improvement r) 0. runs
      /. float_of_int (List.length runs)

(* --- navigation spaces: refinement & facets vs TOPDOWN ------------------- *)

type space_run = {
  space_query : Queries.query;
  topdown_cost : int;
  refine_cost : int;
  refine_result_size : int;
  facet_cost : int;
  facet_pages : int;
}

let refinement_vs_topdown ?k (w : Queries.t) =
  let module Nav_tree = Bionav_core.Nav_tree in
  let module Nav_space = Bionav_core.Nav_space in
  let deriver = Nav_space.deriver ~medline:w.Queries.medline w.Queries.database in
  List.map
    (fun (q : Queries.query) ->
      let nav = q.Queries.nav in
      let target = q.Queries.target_node in
      let topdown =
        Simulate.to_target (Engine.start (Navigation.bionav ?k ()) nav) ~target
      in
      (* Refine-hybrid: EXPAND the root once, then query-by-navigation into
         the component holding the target — its subtree result set becomes
         the live result set and a fresh, much smaller descriptor space is
         derived over it — and finish the drill-down there. The refinement
         itself charges 1 action, like an EXPAND. *)
      let session = Engine.start (Navigation.bionav ?k ()) nav in
      let active = Navigation.active session in
      ignore (Navigation.expand session (Nav_tree.root nav) : int list);
      let refine_cost, refine_result_size =
        if Active_tree.is_visible active target then
          ( Navigation.navigation_cost (Navigation.stats session),
            Nav_tree.distinct_results nav )
        else begin
          let anchor = Active_tree.component_root_of active target in
          let subset = Nav_tree.subtree_results nav anchor in
          let pre = Navigation.navigation_cost (Navigation.stats session) in
          let nav' = Nav_space.derive deriver Nav_space.Descriptor subset in
          let size = Bionav_util.Docset.cardinal subset in
          match Nav_tree.node_of_concept nav' (Nav_tree.concept_id nav target) with
          | None -> (pre + 1, size)
          | Some target' ->
              let o =
                Simulate.to_target
                  (Engine.start (Navigation.bionav ?k ()) nav')
                  ~target:target'
              in
              (pre + 1 + o.Simulate.navigation_cost, size)
        end
      in
      (* Facet: derive the qualifier space over the whole result set and
         isolate the page holding the largest share of the target's
         citations — the facet analogue of "get me to the relevant slice". *)
      let universe = Nav_tree.subtree_results nav (Nav_tree.root nav) in
      let fnav = Nav_space.derive deriver Nav_space.Qualifier_facet universe in
      let target_results = Nav_tree.subtree_results nav target in
      let best = ref (Nav_tree.root fnav) and best_overlap = ref (-1) in
      for i = 1 to Nav_tree.size fnav - 1 do
        let overlap =
          Bionav_util.Docset.inter_cardinal (Nav_tree.subtree_results fnav i) target_results
        in
        if overlap > !best_overlap then begin
          best := i;
          best_overlap := overlap
        end
      done;
      let facet =
        Simulate.to_target (Engine.start (Navigation.faceted ?k ()) fnav) ~target:!best
      in
      {
        space_query = q;
        topdown_cost = topdown.Simulate.navigation_cost;
        refine_cost;
        refine_result_size;
        facet_cost = facet.Simulate.navigation_cost;
        facet_pages = Nav_tree.size fnav - 1;
      })
    w.Queries.queries

(* --- learned vs static (the Bionav_adaptive experiment) ----------------- *)

(* A stochastic-user population is a distribution over navigation targets:
   users draw a goal concept (Zipf over a population-specific pool —
   biomedical navigation is famously heavy-tailed) and navigate to it.
   Three deliberately different populations:
   - focused: most sessions chase a handful of deep, specific concepts
     (a research group mining its own niche);
   - shallow: traffic concentrates on a few broad, near-root categories
     (survey-style browsing);
   - diffuse: targets spread almost uniformly over the whole tree — the
     closest real behaviour gets to the paper's static assumptions, so
     learning has the least to add here. *)
type population = {
  pop_name : string;
  pop_exponent : float;  (* Zipf exponent of the target draw *)
  pop_depth : [ `Deep | `Shallow | `Any ];  (* hierarchy-depth slice of the pool *)
}

let populations =
  [
    { pop_name = "focused"; pop_exponent = 1.6; pop_depth = `Deep };
    { pop_name = "shallow"; pop_exponent = 1.3; pop_depth = `Shallow };
    { pop_name = "diffuse"; pop_exponent = 0.3; pop_depth = `Any };
  ]

type adaptive_run = {
  population : string;
  trained_sessions : int;
  eval_sessions : int;
  static_mean_cost : float;
  learned_mean_cost : float;
  cost_reduction : float;  (* 1 - learned/static; > 0 when learning wins *)
}

(* The population's target pool on one query tree, in a population-seeded
   order (rank 0 of the Zipf draw = that population's favourite concept,
   which must not correlate with tree preorder). *)
let target_pool hierarchy (q : Queries.query) pop ~seed =
  let module Nav_tree = Bionav_core.Nav_tree in
  let nav = q.Queries.nav in
  let depth node =
    Bionav_mesh.Hierarchy.depth hierarchy (Nav_tree.concept_id nav node)
  in
  let all = List.init (Nav_tree.size nav - 1) (fun i -> i + 1) in
  let sliced =
    let keep =
      match pop.pop_depth with
      | `Deep -> fun n -> depth n >= 4
      | `Shallow -> fun n -> depth n <= 2
      | `Any -> fun _ -> true
    in
    match List.filter keep all with [] -> all | l -> l
  in
  let pool = Array.of_list sliced in
  let rng = Rng.create seed in
  for i = Array.length pool - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  pool

let draw_target pools zipfs rng qi = (Array.get pools qi).(Zipf.draw (Array.get zipfs qi) rng)

(* Drive one recorded session to [target] exactly as Simulate.to_target
   would, through the Session_log recorder so the transcript carries v2
   outcomes (revealed concepts, listing sizes) for Adaptive.learn. *)
let drill_recorded session ~target =
  let recorder = Session_log.record session in
  let active = Navigation.active session in
  let rec step n =
    if n <= 1000 && not (Active_tree.is_visible active target) then begin
      let root = Active_tree.component_root_of active target in
      if Session_log.expand recorder root <> [] then step (n + 1)
    end
  in
  step 0;
  if Active_tree.is_visible active target then
    ignore (Session_log.show_results recorder target : Bionav_util.Docset.t);
  Session_log.events recorder

let run_population ?k ~train ~eval_walks ~seed ~config (w : Queries.t) pop =
  let queries = Array.of_list w.Queries.queries in
  let nq = Array.length queries in
  let pools =
    Array.mapi
      (fun qi q ->
        target_pool w.Queries.hierarchy q pop
          ~seed:((seed * 131) + (qi * 17) + Hashtbl.hash pop.pop_name))
      queries
  in
  let zipfs =
    Array.map
      (fun pool -> Zipf.create ~exponent:pop.pop_exponent (Array.length pool))
      pools
  in
  let ad = Adaptive.create ~config () in
  let rng_train = Rng.create ((seed * 2) + 1) in
  for i = 0 to train - 1 do
    let qi = i mod nq in
    let q = queries.(qi) in
    let target = draw_target pools zipfs rng_train qi in
    let session = Engine.start (Navigation.bionav ?k ()) q.Queries.nav in
    Adaptive.learn ad (drill_recorded session ~target)
  done;
  let model = Adaptive.model ad in
  let rng_eval = Rng.create ((seed * 2) + 2) in
  let static_costs = Array.make eval_walks 0. in
  let learned_costs = Array.make eval_walks 0. in
  for i = 0 to eval_walks - 1 do
    let qi = i mod nq in
    let q = queries.(qi) in
    let target = draw_target pools zipfs rng_eval qi in
    let cost strategy =
      let o = Simulate.to_target (Engine.start strategy q.Queries.nav) ~target in
      float_of_int o.Simulate.navigation_cost
    in
    static_costs.(i) <- cost (Navigation.bionav ?k ());
    learned_costs.(i) <- cost (Navigation.bionav ?k ~model ())
  done;
  let static_mean_cost = Stats.mean static_costs in
  let learned_mean_cost = Stats.mean learned_costs in
  {
    population = pop.pop_name;
    trained_sessions = train;
    eval_sessions = eval_walks;
    static_mean_cost;
    learned_mean_cost;
    cost_reduction =
      (if static_mean_cost <= 0. then 0. else 1. -. (learned_mean_cost /. static_mean_cost));
  }

let learned_vs_static ?k ?(train = 120) ?(eval_walks = 120) ?(seed = 42)
    ?(config = Adaptive.default_config) (w : Queries.t) =
  List.map (run_population ?k ~train ~eval_walks ~seed ~config w) populations
