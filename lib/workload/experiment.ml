module Simulate = Bionav_core.Simulate
module Navigation = Bionav_core.Navigation
module Probability = Bionav_core.Probability
module Engine = Bionav_engine.Engine

type run = { query : Queries.query; static : Simulate.outcome; bionav : Simulate.outcome }

let improvement r =
  let s = float_of_int r.static.Simulate.navigation_cost in
  let b = float_of_int r.bionav.Simulate.navigation_cost in
  if s <= 0. then 0. else 1. -. (b /. s)

let mean_expand_ms (o : Simulate.outcome) =
  match o.Simulate.history with
  | [] -> 0.
  | h ->
      List.fold_left (fun acc (r : Navigation.expand_record) -> acc +. r.elapsed_ms) 0. h
      /. float_of_int (List.length h)

let run_strategy (q : Queries.query) strategy =
  Simulate.to_target (Engine.start strategy q.Queries.nav) ~target:q.Queries.target_node

let run_query ?k ?params (q : Queries.query) =
  let target = q.Queries.target_node in
  let run strategy = Simulate.to_target (Engine.start strategy q.Queries.nav) ~target in
  let static = run Navigation.Static in
  let bionav = run (Navigation.bionav ?k ?params ()) in
  { query = q; static; bionav }

let run_all ?k ?params (w : Queries.t) = List.map (run_query ?k ?params) w.Queries.queries

let average_improvement runs =
  match runs with
  | [] -> 0.
  | _ ->
      List.fold_left (fun acc r -> acc +. improvement r) 0. runs
      /. float_of_int (List.length runs)
