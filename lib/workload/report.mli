(** Text renderings of the paper's tables and figures over experiment
    results. Each function regenerates one artifact of §VIII; the benchmark
    harness prints them with paper-vs-measured commentary. *)

val table1 : Queries.t -> string
(** Table I: the query workload and its navigation-tree characteristics. *)

val fig8 : Experiment.run list -> string
(** Fig. 8: overall navigation cost (#concepts revealed + #EXPANDs), static
    vs Heuristic-ReducedOpt, with per-query and average improvement. *)

val fig9 : Experiment.run list -> string
(** Fig. 9: number of EXPAND actions per query, both methods. *)

val fig10 : Experiment.run list -> string
(** Fig. 10: average Heuristic-ReducedOpt execution time per EXPAND (ms). *)

val fig11 : Experiment.run -> string
(** Fig. 11: per-EXPAND execution time for one query (the paper shows
    "prothymosin"), annotated with the reduced-tree partition counts. *)

val space_table : Experiment.space_run list -> string
(** The navigation-space comparison: per query, TOPDOWN cost vs the
    refine-hybrid and qualifier-facet routes, with per-row and mean
    savings. *)

(** {2 Machine-readable exports}

    The same data as comma-separated values (header row included), for
    replotting the figures outside the repository. *)

val table1_csv : Queries.t -> string
val fig8_csv : Experiment.run list -> string
val fig9_csv : Experiment.run list -> string
val fig10_csv : Experiment.run list -> string
val fig11_csv : Experiment.run -> string
val space_table_csv : Experiment.space_run list -> string
