open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy
module Synthetic = Bionav_mesh.Synthetic
module Annotator = Bionav_corpus.Annotator
module Generator = Bionav_corpus.Generator
module Medline = Bionav_corpus.Medline
module Database = Bionav_store.Database
module Eutils = Bionav_search.Eutils
module Nav_tree = Bionav_core.Nav_tree

type spec = {
  name : string;
  target_name : string;
  result_size : int;
  n_lines : int;
  target_depth : int;
  target_frac : float;
}

let paper_specs =
  [
    { name = "LbetaT2"; target_name = "Mice, Transgenic"; result_size = 110;
      n_lines = 3; target_depth = 3; target_frac = 0.50 };
    { name = "melibiose permease"; target_name = "Substrate Specificity"; result_size = 134;
      n_lines = 3; target_depth = 3; target_frac = 0.35 };
    { name = "varenicline"; target_name = "Nicotinic Agonists"; result_size = 148;
      n_lines = 2; target_depth = 4; target_frac = 0.40 };
    { name = "Na+/I- symporter"; target_name = "Perchloric Acid"; result_size = 166;
      n_lines = 3; target_depth = 5; target_frac = 0.15 };
    { name = "prothymosin"; target_name = "Histones"; result_size = 313;
      n_lines = 4; target_depth = 5; target_frac = 0.13 };
    { name = "ice nucleation"; target_name = "Plants, Genetically Modified"; result_size = 357;
      n_lines = 3; target_depth = 2; target_frac = 0.06 };
    { name = "vardenafil"; target_name = "Phosphodiesterase Inhibitors"; result_size = 486;
      n_lines = 2; target_depth = 4; target_frac = 0.45 };
    { name = "dyslexia genetics"; target_name = "Polymorphism, Single Nucleotide";
      result_size = 545; n_lines = 3; target_depth = 4; target_frac = 0.30 };
    { name = "syntaxin 1A"; target_name = "GABA Plasma Membrane Transport Protein";
      result_size = 666; n_lines = 4; target_depth = 6; target_frac = 0.10 };
    { name = "follistatin"; target_name = "Follicle Stimulating Hormone"; result_size = 713;
      n_lines = 3; target_depth = 5; target_frac = 0.25 };
  ]

type query = {
  spec : spec;
  keyword : string;
  cluster : int list;
  result : Docset.t;
  nav : Nav_tree.t;
  target_concept : int;
  target_node : int;
  target_mesh_depth : int;
}

type t = {
  hierarchy : Hierarchy.t;
  medline : Medline.t;
  database : Database.t;
  eutils : Eutils.t;
  queries : query list;
}

type config = {
  hierarchy_params : Synthetic.params;
  n_citations : int;
  annotator_params : Annotator.params;
  organic_mult : int;
      (** Untagged citations planted per tagged one, giving the research-line
          concepts corpus mass beyond the query result (keeps selectivities
          realistic). *)
  specs : spec list;
}

let default_config =
  {
    hierarchy_params = Synthetic.default_params;
    n_citations = 60_000;
    annotator_params = Annotator.default_params;
    organic_mult = 3;
    specs = paper_specs;
  }

let small_config =
  {
    hierarchy_params = { Synthetic.default_params with target_size = 6_000; max_depth = 9;
                         top_fanout = 40 };
    n_citations = 4_000;
    annotator_params = Annotator.light_params;
    organic_mult = 3;
    specs =
      [
        { name = "prothymosin"; target_name = "Histones"; result_size = 120;
          n_lines = 3; target_depth = 4; target_frac = 0.15 };
        { name = "vardenafil"; target_name = "Phosphodiesterase Inhibitors"; result_size = 80;
          n_lines = 2; target_depth = 3; target_frac = 0.40 };
        { name = "ice nucleation"; target_name = "Plants, Genetically Modified";
          result_size = 150; n_lines = 3; target_depth = 2; target_frac = 0.08 };
      ];
  }

(* Research-line concepts are specific: depth 4-7 (clamped to the hierarchy's
   height). Each query's lines are pairwise distinct across the workload. *)
let pick_clusters rng hierarchy specs =
  let height = Hierarchy.height hierarchy in
  let lo = min 4 (max 2 (height - 2)) and hi = min 7 (max 3 height) in
  let eligible =
    List.filter
      (fun c ->
        let d = Hierarchy.depth hierarchy c in
        d >= lo && d <= hi)
      (List.init (Hierarchy.size hierarchy) Fun.id)
  in
  let needed = List.fold_left (fun acc s -> acc + s.n_lines) 0 specs in
  if List.length eligible < needed then
    failwith "Queries.build: hierarchy too small for the requested workload";
  let pool = Array.of_list eligible in
  Rng.shuffle rng pool;
  let next = ref 0 in
  List.map
    (fun spec ->
      let cluster = List.init spec.n_lines (fun i -> pool.(!next + i)) in
      next := !next + spec.n_lines;
      cluster)
    specs

(* Post-hoc target choice: a navigation node at the requested depth with
   L(n) closest to the requested fraction of the result size, hierarchically
   unrelated to the query's research lines. Depth is relaxed outward
   (±1, ±2, ...) if no candidate exists at the exact level. *)
let choose_target hierarchy nav ~cluster ~spec =
  let desired = spec.target_frac *. float_of_int (Nav_tree.distinct_results nav) in
  let unrelated node =
    let c = Nav_tree.concept_id nav node in
    List.for_all
      (fun line ->
        c <> line
        && (not (Hierarchy.is_ancestor hierarchy c line))
        && not (Hierarchy.is_ancestor hierarchy line c))
      cluster
  in
  let candidates_at depth =
    let acc = ref [] in
    for node = Nav_tree.size nav - 1 downto 1 do
      if
        Hierarchy.depth hierarchy (Nav_tree.concept_id nav node) = depth
        && Nav_tree.result_count nav node > 0
        && unrelated node
      then acc := node :: !acc
    done;
    !acc
  in
  let score node = Float.abs (float_of_int (Nav_tree.result_count nav node) -. desired) in
  let best_of = function
    | [] -> None
    | nodes ->
        Some (List.fold_left (fun b n -> if score n < score b then n else b) (List.hd nodes) nodes)
  in
  let rec relax delta =
    if delta > 6 then failwith ("Queries.build: no target candidate for " ^ spec.name)
    else
      let at_depths =
        List.concat_map candidates_at
          (List.sort_uniq Int.compare
             [ spec.target_depth - delta; spec.target_depth + delta ])
      in
      match best_of at_depths with Some n -> n | None -> relax (delta + 1)
  in
  relax 0

let build ?(config = default_config) ~seed () =
  let rng = Rng.create seed in
  let hierarchy = Synthetic.generate ~params:config.hierarchy_params ~seed:(seed * 7 + 1) () in
  let clusters = pick_clusters (Rng.split rng) hierarchy config.specs in
  let seeded_groups =
    List.concat
      (List.map2
         (fun spec cluster ->
           [
             {
               Generator.tag = Some spec.name;
               cluster;
               count = spec.result_size;
               topics_per_citation = (1, 2);
             };
             {
               Generator.tag = None;
               cluster;
               count = spec.result_size * config.organic_mult;
               topics_per_citation = (1, 2);
             };
           ])
         config.specs clusters)
  in
  let gen_params =
    {
      Generator.default_params with
      n_citations = config.n_citations;
      annotator_params = config.annotator_params;
      seeded_groups;
    }
  in
  let medline = Generator.generate ~params:gen_params ~seed:(seed * 13 + 2) hierarchy in
  let database = Database.of_medline medline in
  let eutils = Eutils.create medline in
  let queries =
    List.map2
      (fun spec cluster ->
        let keyword = spec.name in
        let result = Eutils.esearch eutils keyword in
        if Docset.is_empty result then
          failwith (Printf.sprintf "Queries.build: empty result for %s" spec.name);
        let nav = Nav_tree.of_database database result in
        let target_node = choose_target hierarchy nav ~cluster ~spec in
        let target_concept = Nav_tree.concept_id nav target_node in
        {
          spec;
          keyword;
          cluster;
          result;
          nav;
          target_concept;
          target_node;
          target_mesh_depth = Hierarchy.depth hierarchy target_concept;
        })
      config.specs clusters
  in
  { hierarchy; medline; database; eutils; queries }

let result_count q = Docset.cardinal q.result
let tree_size q = Nav_tree.size q.nav - 1
let max_width q = Nav_tree.max_width q.nav
let tree_height q = Nav_tree.height q.nav
let citations_with_duplicates q = Nav_tree.total_attached q.nav
let target_level q = q.target_mesh_depth
let target_l q = Nav_tree.result_count q.nav q.target_node
let target_lt q = Nav_tree.total q.nav q.target_node
