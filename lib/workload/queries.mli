(** The evaluation workload (paper Table I).

    The paper evaluates on 10 real PubMed queries chosen with biomedical
    collaborators, each paired with a "target concept" a researcher would
    navigate to. We reproduce the workload's {e statistical shape} on the
    synthetic corpus: each query has a query concept whose label token is
    the search keyword (so the result size is controlled by forcing that
    many citations to carry the concept as a major topic), and a target
    concept selected {e post hoc} from the query's navigation tree to match
    the paper's target characteristics — hierarchy depth, attached-count
    fraction [L(target)/|result|], and a hierarchically unrelated position
    (the paper's targets, e.g. "Histones" for "prothymosin", are not
    ancestors or descendants of the query concept). *)

type spec = {
  name : string;
      (** The paper's query keyword — also used verbatim as the free-text
          tag planted in the seeded citations, so the search for it is the
          literal paper query. *)
  target_name : string;  (** The paper's target concept, for labelling. *)
  result_size : int;  (** Intended citation count of the query result. *)
  n_lines : int;  (** Number of research-line concepts (prothymosin: 4). *)
  target_depth : int;  (** Hierarchy depth of the target concept. *)
  target_frac : float;  (** Desired [L(target) / result_size]. *)
}

val paper_specs : spec list
(** The 10 Table I rows. Result sizes span ~110-713 citations, target
    depths 2-7, target fractions 0.06-0.5 — shaped after the paper's
    workload ("ice nucleation" pairs a large result with a shallow,
    low-selectivity target; "prothymosin" has the multi-topic literature). *)

type query = {
  spec : spec;
  keyword : string;  (** The string actually searched (AND over tokens). *)
  cluster : int list;  (** The query's research-line concepts. *)
  result : Bionav_util.Docset.t;
  nav : Bionav_core.Nav_tree.t;
  target_concept : int;  (** Hierarchy id of the chosen target. *)
  target_node : int;  (** The target's navigation-tree node. *)
  target_mesh_depth : int;  (** Hierarchy depth of the target concept. *)
}

type t = {
  hierarchy : Bionav_mesh.Hierarchy.t;
  medline : Bionav_corpus.Medline.t;
  database : Bionav_store.Database.t;
  eutils : Bionav_search.Eutils.t;
  queries : query list;
}

type config = {
  hierarchy_params : Bionav_mesh.Synthetic.params;
  n_citations : int;
  annotator_params : Bionav_corpus.Annotator.params;
  organic_mult : int;
      (** Untagged citations planted per tagged one, giving the research-line
          concepts corpus mass beyond the query result (keeps selectivities
          realistic). *)
  specs : spec list;
}

val default_config : config
(** Full scale: 48k concepts, 60k citations, the 10 paper specs. Building
    takes a few seconds. *)

val small_config : config
(** Test scale: ~6k concepts, 4k citations, 3 queries with scaled-down
    result sizes. *)

val build : ?config:config -> seed:int -> unit -> t
(** Deterministic in [seed]. @raise Failure if a target matching a spec
    cannot be found even after relaxation (does not happen for the shipped
    configurations). *)

(* Table I columns, per query: *)

val result_count : query -> int
val tree_size : query -> int
(** Navigation-tree nodes, root excluded (the paper counts concept nodes
    with results). *)

val max_width : query -> int
val tree_height : query -> int
val citations_with_duplicates : query -> int
val target_level : query -> int
val target_l : query -> int
val target_lt : query -> int
