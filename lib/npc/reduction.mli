(** The Theorem 1 construction: MAXIMUM EDGE SUBGRAPH ≤p TED.

    For a weighted graph [G = (V, E)] the reduction builds a star-shaped
    navigation tree with an empty root and one child per vertex. For each
    edge [(u, v)] of weight [w], [w] fresh universe elements are created and
    placed in both [u]'s and [v]'s multisets, so keeping [u] and [v] in the
    same component manufactures exactly [w] duplicates. Choosing [k]
    vertices in MES corresponds to cutting the other [|V| - k] star edges —
    an EdgeCut with [|V| - k + 1] components whose within-component
    duplicates equal the chosen subgraph's edge weight.

    [verify_equivalence] executes both exhaustive solvers and checks the
    correspondence — a machine-checked witness (on small instances) that
    the construction preserves optima in both directions. *)

val reduce : Mes.instance -> k:int -> Ted.instance * int
(** [(ted, j)]: the TED instance and the component count [j = n - k + 1]
    corresponding to MES parameter [k]. Requires [0 <= k <= n] and [n ≥ 1];
    [k = n] maps to [j = 1], which TED cannot express (a cut needs ≥ 2
    components), so [k] must also satisfy [k < n].
    @raise Invalid_argument otherwise. *)

val mes_of_ted_cut : Mes.instance -> Ted.instance -> int list -> int list
(** Translate a TED cut (cut children of the star) back to the MES vertex
    choice: the vertices whose star children were {e not} cut. *)

val verify_equivalence : Mes.instance -> k:int -> bool
(** Exhaustively checks [optimal MES weight = optimal TED duplicates] for
    the reduced instance. Exponential in [n]; keep [n ≤ ~12]. *)
