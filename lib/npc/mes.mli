(** MAXIMUM EDGE SUBGRAPH (a.k.a. densest-k-subgraph, decision form): the
    known NP-complete problem the paper reduces to TED in Theorem 1.

    Given an edge-weighted graph and an integer [k], choose [k] vertices
    maximizing the total weight of edges with both endpoints chosen. *)

type instance = {
  n_vertices : int;
  edges : (int * int * int) list;  (** (u, v, weight), u ≠ v, weight ≥ 1. *)
}

val make : n_vertices:int -> edges:(int * int * int) list -> instance
(** Validates vertex ranges, rejects self-loops, non-positive weights and
    duplicate (unordered) vertex pairs. @raise Invalid_argument. *)

val subset_weight : instance -> int list -> int
(** Total weight of edges internal to the vertex subset. *)

val solve : instance -> k:int -> int list * int
(** Exhaustive optimum: a best [k]-subset (ascending) and its weight.
    Exponential — intended for the ≤ ~16-vertex instances of the reduction
    check. Requires [0 <= k <= n_vertices]. *)

val decision : instance -> k:int -> weight:int -> bool
(** Is there a [k]-subset of weight ≥ [weight]? *)

val random :
  Bionav_util.Rng.t -> n_vertices:int -> edge_prob:float -> max_weight:int -> instance
(** Erdős–Rényi-style random instance for property tests. *)
