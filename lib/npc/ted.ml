type instance = { parent : int array; elements : int list array }

let make ~parent ~elements =
  let n = Array.length parent in
  if n = 0 then invalid_arg "Ted.make: empty tree";
  if Array.length elements <> n then invalid_arg "Ted.make: elements length mismatch";
  if parent.(0) <> -1 then invalid_arg "Ted.make: node 0 must be the root";
  for i = 1 to n - 1 do
    if not (parent.(i) >= 0 && parent.(i) < i) then
      invalid_arg (Printf.sprintf "Ted.make: node %d has parent %d" i parent.(i))
  done;
  { parent = Array.copy parent; elements = Array.copy elements }

let star multisets =
  let n = Array.length multisets in
  let parent = Array.make (n + 1) 0 in
  parent.(0) <- -1;
  let elements = Array.make (n + 1) [] in
  Array.iteri (fun i ms -> elements.(i + 1) <- ms) multisets;
  make ~parent ~elements

let size t = Array.length t.parent

let children t v =
  let acc = ref [] in
  for i = Array.length t.parent - 1 downto 1 do
    if t.parent.(i) = v then acc := i :: !acc
  done;
  !acc

let subtree_nodes t v =
  let rec go v = v :: List.concat_map go (children t v) in
  go v

let duplicates_of_group t group =
  let counts = Hashtbl.create 16 in
  let total = ref 0 in
  List.iter
    (fun node ->
      List.iter
        (fun e ->
          incr total;
          Hashtbl.replace counts e (1 + Option.value ~default:0 (Hashtbl.find_opt counts e)))
        t.elements.(node))
    group;
  !total - Hashtbl.length counts

let duplicates_within t components =
  List.fold_left (fun acc g -> acc + duplicates_of_group t g) 0 components

let is_ancestor t a b =
  let rec climb x = if x = -1 then false else if x = a then true else climb t.parent.(x) in
  a <> b && climb t.parent.(b)

let is_valid_cut t cut =
  cut <> []
  && List.for_all (fun v -> v > 0 && v < size t) cut
  && List.for_all
       (fun v -> List.for_all (fun v' -> v = v' || not (is_ancestor t v v')) cut)
       cut

let cut_components t cut =
  assert (is_valid_cut t cut);
  let owned = Array.make (size t) false in
  let lowers =
    List.map
      (fun v ->
        let nodes = subtree_nodes t v in
        List.iter (fun x -> owned.(x) <- true) nodes;
        nodes)
      (List.sort Int.compare cut)
  in
  let upper =
    List.filter (fun x -> not owned.(x)) (List.init (size t) Fun.id)
  in
  upper :: lowers

(* All antichains of exactly [k] non-root nodes. *)
let antichains_of_size t k =
  let rec options v =
    (* Antichains within the subtree of v, including the empty one. *)
    let per_child = List.map options (children t v) in
    let combos =
      List.fold_left
        (fun acc opts -> List.concat_map (fun a -> List.map (fun b -> a @ b) opts) acc)
        [ [] ] per_child
    in
    if v = 0 then combos else [ v ] :: combos
  in
  List.filter (fun c -> List.length c = k) (options 0)

let best_duplicates t ~components =
  if components < 2 then invalid_arg "Ted.best_duplicates: need at least 2 components";
  let cuts = antichains_of_size t (components - 1) in
  List.fold_left
    (fun best cut ->
      let d = duplicates_within t (cut_components t cut) in
      match best with Some b when b >= d -> best | _ -> Some d)
    None cuts

let decision t ~components ~duplicates =
  match best_duplicates t ~components with
  | None -> false
  | Some d -> d >= duplicates
