let reduce (mes : Mes.instance) ~k =
  let n = mes.Mes.n_vertices in
  if n < 1 then invalid_arg "Reduction.reduce: empty graph";
  if k < 0 || k >= n then invalid_arg "Reduction.reduce: k must satisfy 0 <= k < n";
  let multisets = Array.make n [] in
  let next_element = ref 0 in
  List.iter
    (fun (u, v, w) ->
      (* w fresh shared elements per unit of edge weight. *)
      for _ = 1 to w do
        let e = !next_element in
        incr next_element;
        multisets.(u) <- e :: multisets.(u);
        multisets.(v) <- e :: multisets.(v)
      done)
    mes.Mes.edges;
  (Ted.star multisets, n - k + 1)

let mes_of_ted_cut (mes : Mes.instance) ted cut =
  let n = mes.Mes.n_vertices in
  if Ted.size ted <> n + 1 then invalid_arg "Reduction.mes_of_ted_cut: size mismatch";
  (* Star child i+1 stands for vertex i; kept vertices are the uncut ones. *)
  let cut_set = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace cut_set c ()) cut;
  List.filter (fun v -> not (Hashtbl.mem cut_set (v + 1))) (List.init n Fun.id)

let verify_equivalence mes ~k =
  let ted, j = reduce mes ~k in
  let _, mes_opt = Mes.solve mes ~k in
  match Ted.best_duplicates ted ~components:j with
  | None -> false
  | Some ted_opt -> ted_opt = mes_opt
