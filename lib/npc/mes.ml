type instance = { n_vertices : int; edges : (int * int * int) list }

let make ~n_vertices ~edges =
  if n_vertices < 0 then invalid_arg "Mes.make: negative vertex count";
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n_vertices || v < 0 || v >= n_vertices then
        invalid_arg (Printf.sprintf "Mes.make: edge (%d,%d) out of range" u v);
      if u = v then invalid_arg (Printf.sprintf "Mes.make: self-loop at %d" u);
      if w < 1 then invalid_arg (Printf.sprintf "Mes.make: edge (%d,%d) has weight %d" u v w);
      let key = (min u v, max u v) in
      if Hashtbl.mem seen key then
        invalid_arg (Printf.sprintf "Mes.make: duplicate edge (%d,%d)" u v);
      Hashtbl.add seen key ())
    edges;
  { n_vertices; edges }

let subset_weight t subset =
  let chosen = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace chosen v ()) subset;
  List.fold_left
    (fun acc (u, v, w) -> if Hashtbl.mem chosen u && Hashtbl.mem chosen v then acc + w else acc)
    0 t.edges

let rec k_subsets k lo n =
  if k = 0 then [ [] ]
  else if lo >= n then []
  else
    let with_lo = List.map (fun rest -> lo :: rest) (k_subsets (k - 1) (lo + 1) n) in
    with_lo @ k_subsets k (lo + 1) n

let solve t ~k =
  if k < 0 || k > t.n_vertices then invalid_arg "Mes.solve: k out of range";
  let best = ref ([], -1) in
  List.iter
    (fun subset ->
      let w = subset_weight t subset in
      if w > snd !best then best := (subset, w))
    (k_subsets k 0 t.n_vertices);
  (match !best with
  | _, -1 -> best := ([], 0)  (* k = 0 on an empty choice space *)
  | _ -> ());
  !best

let decision t ~k ~weight =
  let _, w = solve t ~k in
  w >= weight

let random rng ~n_vertices ~edge_prob ~max_weight =
  let open Bionav_util in
  let edges = ref [] in
  for u = 0 to n_vertices - 1 do
    for v = u + 1 to n_vertices - 1 do
      if Rng.bernoulli rng edge_prob then
        edges := (u, v, Rng.int_in rng 1 (max 1 max_weight)) :: !edges
    done
  done;
  make ~n_vertices ~edges:!edges
