(** The TOPDOWN-EXHAUSTIVE Decision problem (TED, paper §V).

    A navigation tree whose nodes hold (multi)sets of result elements; the
    question is whether some valid EdgeCut produces exactly [j] component
    subtrees with at least [d] duplicate elements confined inside the
    components (an element occurring [m] times within one component
    contributes [m - 1] duplicates there). Maximizing within-component
    duplicates is what makes the optimal EdgeCut hard: it is the
    combinatorial core of Theorem 1.

    The brute-force solver enumerates every valid EdgeCut of the given
    size, so instances must stay small (≤ ~20 nodes for stars). *)

type instance = {
  parent : int array;  (** [parent.(0) = -1]; parents precede children. *)
  elements : int list array;  (** Multiset of elements per node. *)
}

val make : parent:int array -> elements:int list array -> instance
(** @raise Invalid_argument on malformed structure. *)

val star : int list array -> instance
(** The reduction's shape: an empty root whose children hold the given
    multisets. *)

val size : instance -> int

val duplicates_within : instance -> int list list -> int
(** [duplicates_within t components]: total duplicates confined within each
    node-group. Groups must partition the nodes (unchecked). *)

val cut_components : instance -> int list -> int list list
(** Components induced by cutting the edges above the given cut children:
    the upper component first, then one per cut child (subtree order). *)

val is_valid_cut : instance -> int list -> bool
(** Non-empty antichain of non-root nodes. *)

val best_duplicates : instance -> components:int -> int option
(** Maximum within-component duplicates over all valid EdgeCuts producing
    exactly [components] subtrees (i.e. cuts of [components - 1] edges);
    [None] if no such cut exists. Exhaustive. *)

val decision : instance -> components:int -> duplicates:int -> bool
(** The TED question proper. *)
