(** Bounded retry with backoff sleeps on the virtual clock.

    [run] calls the thunk up to [max_attempts] times; between failures it
    sleeps the seeded {!Backoff} schedule through the caller's
    {!Clock.t}, so under a simulated clock a whole retry storm executes
    instantly and deterministically. Counts
    [bionav_resilience_retries_total] (re-attempts after a failure) and
    [bionav_resilience_giveups_total] (schedules exhausted). *)

type config = {
  max_attempts : int;  (** Total attempts including the first (>= 1). *)
  backoff : Backoff.policy;
}

val default_config : config
(** 3 attempts over {!Backoff.default}. *)

val run :
  config -> clock:Clock.t -> rng:Bionav_util.Rng.t -> (unit -> ('a, 'e) result) -> ('a, 'e) result
(** First [Ok] wins; otherwise the last [Error] after [max_attempts]
    tries. The thunk must not raise — wrap exception-throwing calls
    yourself (see {!Guard}).
    @raise Invalid_argument on a malformed config. *)
