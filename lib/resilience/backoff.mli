(** Capped exponential backoff with seeded jitter.

    The schedule for attempt [i] (0-based) is
    [min cap_ms (base_ms * multiplier^i * (1 + jitter * u_i))] where
    [u_i] is uniform in [[0, 1)] drawn from the caller's seeded
    {!Bionav_util.Rng.t}. Two invariants hold by construction and are
    property-tested:

    - delays are {e monotone non-decreasing} in the attempt number up to
      the cap (guaranteed because policies require
      [multiplier >= 1 + jitter]: the smallest possible delay of attempt
      [i+1] is at least the largest possible delay of attempt [i]);
    - no delay ever exceeds [cap_ms], and identical seeds yield identical
      schedules (all randomness flows through the explicit [rng]). *)

type policy = {
  base_ms : float;  (** First delay before jitter (> 0). *)
  multiplier : float;  (** Exponential growth factor (>= 1). *)
  cap_ms : float;  (** Upper bound on any delay (>= base_ms). *)
  jitter : float;
      (** Jitter fraction in [0, multiplier - 1]: each delay is scaled by
          a uniform factor in [1, 1 + jitter]. *)
}

val default : policy
(** 10 ms base, doubling, 1 s cap, 0.5 jitter. *)

val validate : policy -> (policy, string) result
(** Check the field constraints above; every schedule-producing function
    validates internally. *)

val delay_ms : policy -> rng:Bionav_util.Rng.t -> attempt:int -> float
(** The delay after failed attempt [attempt] (0-based, >= 0). Draws one
    variate from [rng], so calling with attempts 0, 1, 2, ... in order
    reproduces the schedule of {!schedule}.
    @raise Invalid_argument on a malformed policy or negative attempt. *)

val schedule : policy -> seed:int -> n:int -> float list
(** The first [n] delays of the seeded schedule (a fresh generator from
    [seed]); convenience for tests and diagnostics. *)
