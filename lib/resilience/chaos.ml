open Bionav_util

type config = {
  seed : int;
  error_rate : float;
  delay_rate : float;
  delay_ms : float * float;
  fail_ops : string list;
}

let default_config =
  { seed = 0; error_rate = 0.1; delay_rate = 0.2; delay_ms = (20., 200.); fail_ops = [] }

type verdict = Pass | Fail | Delay of float

type t = { config : config; rng : Rng.t; mutable failures : int; mutable delays : int }

let failures_counter = Metrics.counter "bionav_resilience_chaos_failures_total"
let delays_counter = Metrics.counter "bionav_resilience_chaos_delays_total"

let check_rate name r =
  if r < 0. || r > 1. then invalid_arg (Printf.sprintf "Chaos.create: %s outside [0,1]" name)

let create config =
  check_rate "error_rate" config.error_rate;
  check_rate "delay_rate" config.delay_rate;
  let lo, hi = config.delay_ms in
  if lo < 0. || hi < lo then invalid_arg "Chaos.create: malformed delay_ms range";
  { config; rng = Rng.create config.seed; failures = 0; delays = 0 }

let config t = t.config

exception Injected of string

let eligible t op =
  match t.config.fail_ops with [] -> true | ops -> List.mem op ops

let draw t ~op =
  (* Fixed draw order keeps the stream aligned no matter the outcome. *)
  let fail = Rng.bernoulli t.rng t.config.error_rate in
  let spike = Rng.bernoulli t.rng t.config.delay_rate in
  let lo, hi = t.config.delay_ms in
  let d = if hi > lo then lo +. Rng.float t.rng (hi -. lo) else lo in
  if fail && eligible t op then begin
    t.failures <- t.failures + 1;
    Metrics.incr failures_counter;
    Fail
  end
  else if spike then begin
    t.delays <- t.delays + 1;
    Metrics.incr delays_counter;
    Delay d
  end
  else Pass

let injected_failures t = t.failures
let injected_delays t = t.delays
