open Bionav_util

type t = { clock : Clock.t; expires_at_ms : float; mutable counted : bool }

let expired_counter = Metrics.counter "bionav_resilience_deadline_expired_total"

let start ~clock ~budget_ms =
  if budget_ms < 0. then invalid_arg "Deadline.start: negative budget";
  { clock; expires_at_ms = Clock.now_ms clock +. budget_ms; counted = false }

let expired t =
  let e = Clock.now_ms t.clock >= t.expires_at_ms in
  if e && not t.counted then begin
    t.counted <- true;
    Metrics.incr expired_counter
  end;
  e

let remaining_ms t = Float.max 0. (t.expires_at_ms -. Clock.now_ms t.clock)
