open Bionav_util

type config = { retry : Retry.config; breaker : Breaker.config option }

let default_config = { retry = Retry.default_config; breaker = Some Breaker.default_config }

type error = Circuit_open | Gave_up of string

let error_message = function
  | Circuit_open -> "backend unavailable (circuit open)"
  | Gave_up msg -> Printf.sprintf "backend unavailable (%s)" msg

type t = {
  clock : Clock.t;
  config : config;
  chaos : Chaos.t option;
  breaker : Breaker.t option;
  rng : Rng.t;  (* backoff jitter *)
}

let create ?chaos ?(config = default_config) ?(seed = 0) ~clock () =
  {
    clock;
    config;
    chaos;
    breaker = Option.map (fun bc -> Breaker.create ~config:bc ~clock ()) config.breaker;
    rng = Rng.create seed;
  }

let breaker t = t.breaker
let chaos t = t.chaos

(* One attempt: fault plan first, then the real thunk, exceptions caught. *)
let attempt t ~op f () =
  match
    (match t.chaos with
    | None -> Chaos.Pass
    | Some plan -> Chaos.draw plan ~op)
  with
  | Chaos.Fail -> Error (Chaos.Injected op)
  | (Chaos.Pass | Chaos.Delay _) as verdict -> (
      (match verdict with
      | Chaos.Delay ms -> Clock.sleep_ms t.clock ms
      | Chaos.Pass | Chaos.Fail -> ());
      match f () with v -> Ok v | exception e -> Error e)

let call t ~op f =
  match t.breaker with
  | Some b when not (Breaker.allow b) -> Error Circuit_open
  | _ -> (
      let observed g () =
        let r = g () in
        (match (t.breaker, r) with
        | Some b, Ok _ -> Breaker.record_success b
        | Some b, Error _ -> Breaker.record_failure b
        | None, _ -> ());
        r
      in
      match Retry.run t.config.retry ~clock:t.clock ~rng:t.rng (observed (attempt t ~op f)) with
      | Ok v -> Ok v
      | Error e ->
          Logs.debug (fun m -> m "guard: %s failed: %s" op (Printexc.to_string e));
          Error (Gave_up (Printexc.to_string e)))

let inject t ~op =
  match t.chaos with
  | None -> ()
  | Some plan -> (
      match Chaos.draw plan ~op with
      | Chaos.Delay ms -> Clock.sleep_ms t.clock ms
      | Chaos.Pass | Chaos.Fail -> ())
