(** Deterministic fault-injection plans.

    A plan is a seeded stream of per-operation verdicts: pass, fail (the
    caller raises {!Injected}), or a virtual-latency spike of a sampled
    duration. All randomness flows through one {!Bionav_util.Rng.t}
    created from [seed], and draws happen in call order, so a
    single-threaded workload replayed under the same plan seed produces a
    byte-identical event sequence — the foundation of the chaos suite and
    of [bench chaos].

    Plans know nothing about clocks or backends; {!Guard} turns verdicts
    into injected exceptions and {!Clock.sleep_ms} calls. Injections are
    counted in [bionav_resilience_chaos_failures_total] and
    [bionav_resilience_chaos_delays_total]. *)

type config = {
  seed : int;
  error_rate : float;  (** Probability an eligible op fails, in [0, 1]. *)
  delay_rate : float;  (** Probability of a latency spike, in [0, 1]. *)
  delay_ms : float * float;  (** Spike duration range [lo, hi], 0 <= lo <= hi. *)
  fail_ops : string list;
      (** Ops eligible for failure injection; [[]] means all ops. Delay
          spikes always apply to every op. *)
}

val default_config : config
(** Seed 0, 10% failures on every op, 20% spikes of 20-200 ms. *)

type verdict = Pass | Fail | Delay of float

type t

val create : config -> t
(** @raise Invalid_argument on rates outside [0, 1] or a malformed
    duration range. *)

val config : t -> config

val draw : t -> op:string -> verdict
(** The next verdict for one execution of [op]. A failure draw for an op
    not in [fail_ops] still consumes the same rng variates (the stream
    stays aligned across plans differing only in eligibility) but
    reports [Pass]. *)

exception Injected of string
(** Raised by {!Guard} (and available to any caller) to materialize a
    [Fail] verdict; the payload names the op. *)

val injected_failures : t -> int
val injected_delays : t -> int
(** Verdicts issued by this plan so far ([Fail] / [Delay]). *)
