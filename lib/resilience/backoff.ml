open Bionav_util

type policy = { base_ms : float; multiplier : float; cap_ms : float; jitter : float }

let default = { base_ms = 10.; multiplier = 2.; cap_ms = 1000.; jitter = 0.5 }

let validate p =
  if not (p.base_ms > 0.) then Error "base_ms must be > 0"
  else if p.multiplier < 1. then Error "multiplier must be >= 1"
  else if p.cap_ms < p.base_ms then Error "cap_ms must be >= base_ms"
  else if p.jitter < 0. || p.jitter > p.multiplier -. 1. then
    Error "jitter must be in [0, multiplier - 1]"
  else Ok p

let check p =
  match validate p with Ok p -> p | Error msg -> invalid_arg ("Backoff: " ^ msg)

let delay_ms p ~rng ~attempt =
  let p = check p in
  if attempt < 0 then invalid_arg "Backoff.delay_ms: negative attempt";
  (* Draw even when the raw delay is already capped so the rng stream stays
     aligned with the attempt number. *)
  let u = Rng.float rng 1. in
  let raw = p.base_ms *. (p.multiplier ** float_of_int attempt) in
  Float.min p.cap_ms (raw *. (1. +. (p.jitter *. u)))

let schedule p ~seed ~n =
  let rng = Rng.create seed in
  List.init n (fun attempt -> delay_ms p ~rng ~attempt)
