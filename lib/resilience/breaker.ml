open Bionav_util

type config = { failure_threshold : int; cooldown_ms : float }

let default_config = { failure_threshold = 5; cooldown_ms = 30_000. }

type state = Closed | Open | Half_open

type t = {
  config : config;
  clock : Clock.t;
  mutable state : state;
  mutable streak : int;  (* consecutive failures while closed *)
  mutable opened_at_ms : float;
}

let open_counter = Metrics.counter "bionav_resilience_breaker_open_total"
let rejected_counter = Metrics.counter "bionav_resilience_breaker_rejected_total"

let create ?(config = default_config) ~clock () =
  if config.failure_threshold < 1 then
    invalid_arg "Breaker.create: failure_threshold must be >= 1";
  if config.cooldown_ms < 0. then invalid_arg "Breaker.create: cooldown_ms must be >= 0";
  { config; clock; state = Closed; streak = 0; opened_at_ms = 0. }

(* The only time-based transition: an open circuit becomes half-open once
   the cool-down has elapsed on the (possibly virtual) clock. *)
let refresh t =
  match t.state with
  | Open when Clock.now_ms t.clock -. t.opened_at_ms >= t.config.cooldown_ms ->
      t.state <- Half_open
  | Open | Closed | Half_open -> ()

let state t =
  refresh t;
  t.state

let allow t =
  refresh t;
  match t.state with
  | Closed | Half_open -> true
  | Open ->
      Metrics.incr rejected_counter;
      false

let trip t =
  t.state <- Open;
  t.streak <- 0;
  t.opened_at_ms <- Clock.now_ms t.clock;
  Metrics.incr open_counter;
  Logs.debug (fun m -> m "breaker: open for %.0f ms" t.config.cooldown_ms)

let record_success t =
  refresh t;
  match t.state with
  | Half_open ->
      t.state <- Closed;
      t.streak <- 0
  | Closed -> t.streak <- 0
  | Open -> ()

let record_failure t =
  refresh t;
  match t.state with
  | Half_open -> trip t (* the probe failed: another full cool-down *)
  | Closed ->
      t.streak <- t.streak + 1;
      if t.streak >= t.config.failure_threshold then trip t
  | Open -> ()

let failure_streak t = t.streak
