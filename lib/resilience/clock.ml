open Bionav_util

type t = Real | Simulated of { mutable now_ms : float }

let real = Real

let simulated ?(start_ms = 0.) () = Simulated { now_ms = start_ms }

let now_ms = function Real -> Timing.now_ms () | Simulated s -> s.now_ms

let sleep_ms t ms =
  if ms > 0. then
    match t with
    | Real -> Unix.sleepf (ms /. 1e3)
    | Simulated s -> s.now_ms <- s.now_ms +. ms

let advance t ms =
  match t with
  | Real -> invalid_arg "Clock.advance: the real clock cannot be advanced"
  | Simulated s ->
      if ms < 0. then invalid_arg "Clock.advance: negative delta";
      s.now_ms <- s.now_ms +. ms

let is_simulated = function Real -> false | Simulated _ -> true
