(** The virtual clock: one interface, a real and a simulated implementation.

    Every time-dependent behavior in the serving stack — session TTLs,
    retry backoff sleeps, circuit-breaker cool-downs, speculation job
    expiry, per-EXPAND deadlines — reads time through a [Clock.t] instead
    of [Unix.gettimeofday], so tests and the chaos harness replace the
    wall clock with a simulated one and control time exactly: a "sleep"
    advances the virtual clock instantly, a cool-down elapses when the
    test says so, and a whole fault-injected workload replay is
    deterministic down to the timestamp. *)

type t

val real : t
(** Wall-clock milliseconds ({!Bionav_util.Timing.now_ms}); [sleep_ms]
    blocks the calling thread for real. *)

val simulated : ?start_ms:float -> unit -> t
(** A fresh virtual clock starting at [start_ms] (default 0). Time moves
    only through {!advance} and {!sleep_ms} (which advances instantly
    instead of blocking). Each call returns an independent clock. *)

val now_ms : t -> float
(** Current time in milliseconds. *)

val sleep_ms : t -> float -> unit
(** Wait for the given number of milliseconds: blocks on the real clock,
    advances instantly on a simulated one. Non-positive durations are a
    no-op. *)

val advance : t -> float -> unit
(** Move a simulated clock forward by the given (>= 0) milliseconds.
    @raise Invalid_argument on the real clock or a negative delta. *)

val is_simulated : t -> bool
