(** A circuit breaker over the virtual clock.

    Classic three-state protocol guarding a backend: [Closed] passes
    calls through and counts {e consecutive} failures; at
    [failure_threshold] the circuit trips [Open] and {!allow} rejects
    instantly (no backend pressure, no latency) until [cooldown_ms] of
    {e clock} time — virtual under test, wall in production — has
    elapsed; then one [Half_open] probe is let through, and its outcome
    decides: success re-closes the circuit, failure re-opens it for
    another full cool-down.

    Single-threaded like the rest of the serving stack; state transitions
    happen inside {!allow}, {!record_success} and {!record_failure}.
    Instrumented with [bionav_resilience_breaker_open_total] (trips to
    open) and [bionav_resilience_breaker_rejected_total] (calls rejected
    while open). *)

type config = {
  failure_threshold : int;  (** Consecutive failures that trip the circuit (>= 1). *)
  cooldown_ms : float;  (** Open time before a half-open probe (>= 0). *)
}

val default_config : config
(** 5 consecutive failures, 30 s cool-down. *)

type state = Closed | Open | Half_open

type t

val create : ?config:config -> clock:Clock.t -> unit -> t
(** @raise Invalid_argument if [failure_threshold < 1] or
    [cooldown_ms < 0]. *)

val state : t -> state
(** Current state; reading it performs the time-based [Open] ->
    [Half_open] transition if the cool-down has elapsed. *)

val allow : t -> bool
(** May a call proceed right now? [true] in [Closed] and [Half_open]
    (the probe), [false] in [Open] (counted as rejected). *)

val record_success : t -> unit
(** Report a successful call: resets the failure streak; a half-open
    probe's success closes the circuit. *)

val record_failure : t -> unit
(** Report a failed call: extends the failure streak and trips or
    re-opens the circuit as described above. *)

val failure_streak : t -> int
(** Current consecutive-failure count (diagnostics). *)
