(** The faultable backend facade: chaos injection, retry with backoff,
    and a circuit breaker around one thunk.

    The engine routes every backend call (keyword search against the
    store) through {!call}; the chaos harness and the serving stack share
    the exact same code path, so a fault plan exercises precisely the
    retries, trips and rejections production would take. Per call:

    + if the breaker is open, reject instantly with [Circuit_open];
    + otherwise attempt the thunk under the retry schedule; each attempt
      first consults the fault plan (a [Delay] verdict sleeps virtual or
      real clock time, a [Fail] verdict raises {!Chaos.Injected}), then
      runs the thunk, catching its exceptions;
    + every attempt's outcome feeds the breaker; exhausted schedules
      return [Gave_up].

    {!inject} applies only the {e latency} half of the plan to
    non-backend ops (e.g. ["expand"]), where a failure makes no sense but
    a spike should still eat into deadlines. *)

type config = {
  retry : Retry.config;
  breaker : Breaker.config option;  (** [None]: no circuit breaking. *)
}

val default_config : config

type error =
  | Circuit_open
  | Gave_up of string  (** Retry schedule exhausted; payload describes the last failure. *)

val error_message : error -> string

type t

val create : ?chaos:Chaos.t -> ?config:config -> ?seed:int -> clock:Clock.t -> unit -> t
(** [seed] (default 0) feeds the backoff jitter rng.
    @raise Invalid_argument on malformed retry or breaker configs. *)

val call : t -> op:string -> (unit -> 'a) -> ('a, error) result
(** Run [f] under the full protocol above. [f]'s exceptions are caught
    and treated as failures (retried, counted against the breaker) —
    they never escape. *)

val inject : t -> op:string -> unit
(** Consult the fault plan for [op] and apply a [Delay] verdict ([Fail]
    verdicts are ignored — draws still happen, keeping the plan stream
    aligned). No-op without a chaos plan. *)

val breaker : t -> Breaker.t option
val chaos : t -> Chaos.t option
