(** Deadlines: a budget of clock time, checked cheaply and often.

    A deadline captures "now + budget" on its clock at {!start}; the
    serving path polls {!expired} at degradation points (e.g. before
    running Heuristic-ReducedOpt inside an EXPAND) and falls back to a
    cheaper answer once the budget is gone. On a simulated clock the
    expiry moment is exact and test-controlled. Expiries observed by
    {!expired} are counted once per deadline in
    [bionav_resilience_deadline_expired_total]. *)

type t

val start : clock:Clock.t -> budget_ms:float -> t
(** @raise Invalid_argument on a negative budget (a zero budget is legal
    and expires immediately — "degrade everything"). *)

val expired : t -> bool

val remaining_ms : t -> float
(** Clamped at 0. *)
