open Bionav_util

type config = { max_attempts : int; backoff : Backoff.policy }

let default_config = { max_attempts = 3; backoff = Backoff.default }

let retries_counter = Metrics.counter "bionav_resilience_retries_total"
let giveups_counter = Metrics.counter "bionav_resilience_giveups_total"

let run config ~clock ~rng f =
  if config.max_attempts < 1 then invalid_arg "Retry.run: max_attempts must be >= 1";
  (match Backoff.validate config.backoff with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Retry.run: " ^ msg));
  let rec go attempt =
    match f () with
    | Ok _ as ok -> ok
    | Error _ as err ->
        if attempt + 1 >= config.max_attempts then begin
          Metrics.incr giveups_counter;
          err
        end
        else begin
          Clock.sleep_ms clock (Backoff.delay_ms config.backoff ~rng ~attempt);
          Metrics.incr retries_counter;
          go (attempt + 1)
        end
  in
  go 0
