(** Warm starts: precompute the first-contact state of the workload's top
    queries and carry it across restarts.

    The expensive steps of a fresh query are the result fetch + navigation
    tree construction (paper §VII) and the first root EdgeCut. {!build}
    runs both for a caller-supplied query list (typically the head of a
    Zipf-ranked workload — the caller picks, this layer has no workload
    dependency) and returns {!Bionav_store.Snapshot.entry} values ready
    for {!Bionav_store.Snapshot.save}. {!apply} replays a snapshot into a
    live engine's caches: navigation trees into the {!Bionav_core.Nav_cache}
    (rebuilding each tree from the stored result set, skipping the query),
    root cuts into the {!Plan_cache} keyed exactly as a fresh session's
    first EXPAND will ask for them. *)

val build :
  db:Bionav_store.Database.t ->
  run:(string -> Bionav_util.Docset.t) ->
  ?k:int ->
  ?model:Bionav_core.Probability.model ->
  string list ->
  Bionav_store.Snapshot.entry list
(** [run] executes a query (e.g. an [Eutils.esearch] closure). Queries are
    normalized and deduplicated; order is preserved. [k]/[model] default
    to the paper's Heuristic settings and must match the strategy the
    serving engine will use, or warmed root cuts will never be asked for
    byte-identically. The root cut is computed by driving one EXPAND
    through {!Bionav_core.Navigation} itself, so it is identical to live
    behaviour by construction (empty for single-node trees). *)

val apply :
  db:Bionav_store.Database.t ->
  trees:Bionav_core.Nav_cache.t ->
  ?plans:Plan_cache.t ->
  ?model:Bionav_core.Probability.model ->
  Bionav_store.Snapshot.entry list ->
  int
(** Seed the caches from snapshot entries; returns how many queries were
    warmed. Root cuts are stored under [model]'s fingerprint (default the
    static paper model) — pass the serving engine's model or sessions
    will never be offered the warmed plans. Root cuts are skipped when
    [plans] is absent (prefetch disabled — trees alone are still worth
    warming). Safe to call on a
    warm engine — entries replace. *)
