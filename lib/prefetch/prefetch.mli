(** The prefetch facade: one shared {!Plan_cache} plus one {!Speculator},
    wired into navigation sessions.

    The engine creates one [t] per process and {!attach}es every new
    Heuristic session: the session then consults the plan cache before
    running Heuristic-ReducedOpt, feeds foreground computations back in,
    and after each effective EXPAND enqueues speculation for the revealed
    nodes and ticks the queue by [budget_per_action]. Because the hook
    lives on {!Bionav_core.Navigation} itself, speculation fires no matter
    what drives the session — the web app, the CLI, or a simulated user. *)

type config = {
  plan_capacity : int;  (** Plan-cache LRU capacity (default 512). *)
  top_m : int;  (** Speculation candidates queued per EXPAND (default 2). *)
  max_queue : int;  (** Speculation FIFO bound (default 64). *)
  budget_per_action : int;
      (** Queued jobs run synchronously after each EXPAND (default 1).
          0 means enqueue-only — some external pacer calls {!tick}. *)
  job_ttl_ms : float option;
      (** Queued-job TTL on the creation clock (default [None]: never);
          see {!Speculator.create}. *)
}

val default_config : config

type t

val create : ?config:config -> ?clock:Bionav_resilience.Clock.t -> unit -> t
(** [clock] (default the real clock) stamps and expires speculation jobs.
    @raise Invalid_argument on negative [budget_per_action] or invalid
    speculator bounds. *)

val config : t -> config
val plans : t -> Plan_cache.t
val speculator : t -> Speculator.t

val attach : t -> query:string -> Bionav_core.Navigation.t -> unit
(** Wire a session of [query]: set its plan source and expand observer.
    No-op for non-Heuristic strategies (their cuts are trivial or exact,
    nothing worth memoizing). The speculator inherits the session's own
    [k]/[params], keeping speculated cuts byte-identical to foreground
    ones. *)

val attach_plans : t -> query:string -> Bionav_core.Navigation.t -> unit
(** Like {!attach} but wires only the plan source, not the expand
    observer — for callers (the engine) that drive speculation off
    published snapshots instead: rank with
    {!Speculator.rank_snapshot} outside the shard lock, then
    {!Speculator.enqueue_ranked} and {!tick} inside it. Keeps the
    in-lock portion of each EXPAND to a queue append. *)

val tick : t -> budget:int -> int
(** Run up to [budget] queued speculation jobs (idle-time pacing). *)

val drain : t -> int
(** Run every queued job — benchmarks and tests. *)

val drop_query : t -> string -> int
(** Cancel queued speculation for a query (its last session ended).
    Cached plans survive: they stay correct and serve repeat traffic. *)
