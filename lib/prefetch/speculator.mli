(** Speculative plan precomputation: guess the user's next EXPAND, compute
    its cut before they ask.

    After each effective EXPAND, the newly revealed nodes are ranked by
    the cost model's own signals — a component's selectivity mass (the
    EXPLORE numerator of §IV) times its EXPAND probability — and the top-m
    expandable candidates are queued. Work happens only inside {!tick},
    a cooperative, budget-bounded drain of the FIFO queue: one job is one
    Heuristic-ReducedOpt run, results land in the shared {!Plan_cache}.
    No threads, no wall clock — callers decide when and how much to
    compute, which keeps speculation off the foreground path and makes
    tests deterministic.

    Jobs capture the component (query, root, exact member list) at
    enqueue time, so a job executed after the session moved on still
    memoizes a correct, correctly keyed plan — including the probability
    model's fingerprint, so plans speculated under a superseded learned
    model are never served to a refreshed session. Instrumented with
    [bionav_prefetch_queue_depth], [bionav_prefetch_speculations_total],
    [bionav_prefetch_dropped_total] and
    [bionav_prefetch_precompute_latency_ms]. *)

type t

val create :
  ?top_m:int ->
  ?max_queue:int ->
  ?clock:Bionav_resilience.Clock.t ->
  ?job_ttl_ms:float ->
  Plan_cache.t ->
  t
(** [top_m] (default 2) candidates are queued per EXPAND; the FIFO holds
    at most [max_queue] (default 64) jobs — overflow drops the {e new}
    job (freshest speculation is the least certain). [job_ttl_ms]
    (default [None]: jobs never age out) bounds how long a queued job
    stays runnable: {!tick} discards jobs enqueued more than the TTL ago
    on [clock] (default the real clock) without charging budget — a
    speculation that sat that long is guessing about a session state
    long gone.
    @raise Invalid_argument if [top_m < 0], [max_queue < 1] or
    [job_ttl_ms < 0]. *)

val observe :
  t ->
  query:string ->
  active:Bionav_core.Active_tree.t ->
  k:int ->
  model:Bionav_core.Probability.model ->
  revealed:int list ->
  unit
(** Rank [revealed] (ties broken by ascending node id — deterministic)
    and enqueue the top-m expandable candidates whose plans are not
    already cached under the model's fingerprint. [k] and [model] must
    match the session's strategy, or speculated cuts would diverge from
    foreground ones. Does no cut computation itself. *)

val rank_snapshot :
  model:Bionav_core.Probability.model ->
  Bionav_search.Nav_snapshot.t ->
  int list ->
  Bionav_search.Nav_snapshot.vnode list
(** The snapshot-based half of {!observe}'s ranking, safe with {e no}
    lock held: filter the revealed nodes down to expandable ones and
    order them by selectivity mass × EXPAND probability, all computed
    from the published snapshot (frozen arena + pure navigation-tree
    reads). Ties break by ascending node id. The expensive scoring runs
    off the engine's shard lock; pass the result to {!enqueue_ranked}
    under the lock. *)

val enqueue_ranked :
  t ->
  query:string ->
  Bionav_search.Nav_snapshot.t ->
  k:int ->
  model:Bionav_core.Probability.model ->
  Bionav_search.Nav_snapshot.vnode list ->
  unit
(** Enqueue the top-m of an already-ranked candidate list (from
    {!rank_snapshot}) whose plans are not yet cached. This is the narrow
    mutating half: call it under the lock that serializes this
    speculator. Jobs capture the snapshot's frozen member sets, whose
    content fingerprints match the live components, so cached plans
    serve foreground expands too. *)

val tick : t -> budget:int -> int
(** Run up to [budget] queued jobs now, oldest first; returns the number
    executed. A job whose plan appeared in the cache meanwhile (e.g. the
    user expanded it in the foreground first) is skipped for free but
    still consumes its budget unit. A job past the TTL is discarded and
    consumes {e no} budget (counted in [bionav_prefetch_expired_total]
    and {!expired}). *)

val drop_query : t -> string -> int
(** Cancel every queued job for the (normalized) query — called when its
    last session closes or expires so dead sessions leave no queued work
    behind; returns how many were dropped. Cached plans are {e not}
    touched: they are keyed by exact component and stay correct. *)

val queue_length : t -> int
val executed : t -> int
val dropped : t -> int
(** Per-instance counters: jobs run by {!tick}, jobs lost to overflow or
    {!drop_query}. *)

val expired : t -> int
(** Jobs discarded by {!tick} for outliving [job_ttl_ms]. *)
