open Bionav_core

type config = {
  plan_capacity : int;
  top_m : int;
  max_queue : int;
  budget_per_action : int;
  job_ttl_ms : float option;
}

let default_config =
  {
    plan_capacity = Plan_cache.default_capacity;
    top_m = 2;
    max_queue = 64;
    budget_per_action = 1;
    job_ttl_ms = None;
  }

type t = { config : config; plans : Plan_cache.t; spec : Speculator.t }

let create ?(config = default_config) ?clock () =
  if config.budget_per_action < 0 then
    invalid_arg "Prefetch.create: budget_per_action must be >= 0";
  let plans = Plan_cache.create ~capacity:config.plan_capacity () in
  let spec =
    Speculator.create ~top_m:config.top_m ~max_queue:config.max_queue ?clock
      ?job_ttl_ms:config.job_ttl_ms plans
  in
  { config; plans; spec }

let config t = t.config
let plans t = t.plans
let speculator t = t.spec

let attach t ~query session =
  match Navigation.strategy session with
  | Navigation.Heuristic { k; model; _ } | Navigation.Faceted { k; model; _ } ->
      let fingerprint = model.Probability.fingerprint in
      Navigation.set_plan_source session
        (Some (Plan_cache.plan_source t.plans ~query ~fingerprint));
      Navigation.set_on_expand session
        (Some
           (fun ~node:_ ~revealed ->
             Speculator.observe t.spec ~query ~active:(Navigation.active session) ~k ~model
               ~revealed;
             ignore (Speculator.tick t.spec ~budget:t.config.budget_per_action : int)))
  | Navigation.Optimal _ | Navigation.Static | Navigation.Static_paged _ -> ()

let attach_plans t ~query session =
  match Navigation.strategy session with
  | Navigation.Heuristic { model; _ } | Navigation.Faceted { model; _ } ->
      Navigation.set_plan_source session
        (Some
           (Plan_cache.plan_source t.plans ~query
              ~fingerprint:model.Probability.fingerprint))
  | Navigation.Optimal _ | Navigation.Static | Navigation.Static_paged _ -> ()

let tick t ~budget = Speculator.tick t.spec ~budget
let drop_query t query = Speculator.drop_query t.spec query
let drain t = Speculator.tick t.spec ~budget:max_int
