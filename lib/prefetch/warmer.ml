open Bionav_util
open Bionav_core
module Snapshot = Bionav_store.Snapshot

let warmed_counter = Metrics.counter "bionav_prefetch_warmed_queries_total"

(* The root cut exactly as a fresh Heuristic session would compute it: run
   one EXPAND through Navigation itself and capture what it memoizes, so
   the snapshot stays byte-identical to live behaviour by construction. *)
let root_cut_of ~k ~model nav =
  let session = Navigation.start (Navigation.bionav ~k ~model ()) nav in
  let captured = ref [] in
  Navigation.set_plan_source session
    (Some
       {
         Navigation.find_plan = (fun ~root:_ ~members:_ -> None);
         store_plan = (fun ~root:_ ~members:_ ~cut -> captured := cut);
       });
  ignore (Navigation.expand session (Nav_tree.root nav) : int list);
  !captured

let build ~db ~run ?(k = Heuristic.default_k) ?(model = Probability.default_model) queries =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun query ->
      let query = Nav_cache.normalize query in
      if Hashtbl.mem seen query then None
      else begin
        Hashtbl.add seen query ();
        let results = run query in
        let nav = Nav_tree.of_database db results in
        let root_cut = root_cut_of ~k ~model nav in
        Logs.info (fun m ->
            m "warmer: %S -> %d results, %d nodes, root cut of %d" query
              (Docset.cardinal results) (Nav_tree.size nav) (List.length root_cut));
        Some { Snapshot.query; results = Docset.to_intset results; root_cut }
      end)
    queries

let apply ~db ~trees ?plans ?(model = Probability.default_model) entries =
  List.iter
    (fun e ->
      let nav = Nav_tree.of_database db (Docset.of_intset e.Snapshot.results) in
      Nav_cache.put trees e.query nav;
      Metrics.incr warmed_counter;
      match plans with
      | Some plans when e.root_cut <> [] ->
          (* The full-tree member set, interned in this tree's arena: the
             content fingerprint matches what serving sessions key on. *)
          let members =
            Docset.of_sorted_array_unchecked_in (Nav_tree.arena nav)
              (Array.init (Nav_tree.size nav) Fun.id)
          in
          Plan_cache.store plans ~query:e.query ~fingerprint:model.Probability.fingerprint
            ~root:(Nav_tree.root nav) ~members ~cut:e.root_cut
      | Some _ | None -> ())
    entries;
  List.length entries
