(** Memoized EdgeCut plans: the paper's §VI-B reuse remark lifted from one
    session to the whole process.

    A plan is the cut the Heuristic strategy would compute for a given
    component; the component is identified by (normalized query, the
    probability-model fingerprint that priced the cut, visible root, the
    exact member set [I(n)]). Two sessions of the same query {e and model}
    that expand the same way reach byte-identical components, so a cut
    computed once — in the foreground, by speculation, or warmed from a
    snapshot — serves every later EXPAND of that component at O(1). The
    fingerprint (see {!Bionav_core.Navigation.model_fingerprint}) keeps the
    cache honest across model updates: a cut optimized under yesterday's
    probabilities is a {e stale} plan for today's learned model, and a
    changed fingerprint makes it unreachable instead of served.

    The member set is keyed by its arena fingerprint (O(1), computed at
    intern time) but {e verified} on lookup
    against the stored member list, so hash collisions can only miss,
    never serve a wrong plan — the served cut is always byte-identical to
    what a fresh computation over the same component would feed the active
    tree. Backed by {!Bionav_util.Lru}; instrumented with the
    [bionav_prefetch_plan_*] metrics. *)

type t

val default_capacity : int
(** 512 plans. *)

val create : ?capacity:int -> unit -> t

val find :
  t ->
  query:string ->
  fingerprint:string ->
  root:int ->
  members:Bionav_util.Docset.t ->
  int list option
(** The memoized cut for the component of [root] whose member navigation
    ids are exactly [members], refreshing LRU recency; [None] on miss or
    fingerprint collision. Counts into hits/misses. *)

val mem :
  t -> query:string -> fingerprint:string -> root:int -> members:Bionav_util.Docset.t -> bool
(** Side-effect free: no recency refresh, no hit/miss accounting. For
    speculation probing whether work is already done. *)

val store :
  t ->
  query:string ->
  fingerprint:string ->
  root:int ->
  members:Bionav_util.Docset.t ->
  cut:int list ->
  unit
(** Memoize a computed cut (ignored when [cut] is empty); replaces any
    entry under the same key, evicting LRU-style when full. *)

val length : t -> int
val hits : t -> int
val misses : t -> int
(** Per-instance counters (the process-wide [bionav_prefetch_plan_*]
    metrics aggregate across instances and never reset). *)

val clear : t -> unit
(** Drop every plan and zero the per-instance counters. *)

val plan_source :
  t -> query:string -> fingerprint:string -> Bionav_core.Navigation.plan_source
(** The {!Bionav_core.Navigation.plan_source} wiring a session of [query]
    running under the model identified by [fingerprint] to this cache:
    [find_plan] serves memoized cuts, [store_plan] feeds foreground
    computations back in. *)
