open Bionav_util
open Bionav_core
module Clock = Bionav_resilience.Clock

type job = {
  query : string;  (* normalized *)
  root : int;
  members : Docset.t;  (* component member ids captured at enqueue time *)
  nav : Nav_tree.t;
  k : int;
  model : Probability.model;
  enqueued_at_ms : float;  (* clock time at enqueue, for the job TTL *)
}

type t = {
  cache : Plan_cache.t;
  queue : job Queue.t;
  top_m : int;
  max_queue : int;
  clock : Clock.t;
  job_ttl_ms : float option;
  mutable executed : int;
  mutable dropped : int;
  mutable expired : int;
}

let depth_gauge = Metrics.gauge "bionav_prefetch_queue_depth"
let speculations_counter = Metrics.counter "bionav_prefetch_speculations_total"
let dropped_counter = Metrics.counter "bionav_prefetch_dropped_total"
let expired_counter = Metrics.counter "bionav_prefetch_expired_total"
let precompute_hist = Metrics.histogram "bionav_prefetch_precompute_latency_ms"

let create ?(top_m = 2) ?(max_queue = 64) ?(clock = Clock.real) ?job_ttl_ms cache =
  if top_m < 0 then invalid_arg "Speculator.create: top_m must be >= 0";
  if max_queue < 1 then invalid_arg "Speculator.create: max_queue must be >= 1";
  (match job_ttl_ms with
  | Some ttl when ttl < 0. -> invalid_arg "Speculator.create: job_ttl_ms must be >= 0"
  | Some _ | None -> ());
  {
    cache;
    queue = Queue.create ();
    top_m;
    max_queue;
    clock;
    job_ttl_ms;
    executed = 0;
    dropped = 0;
    expired = 0;
  }

let queue_length t = Queue.length t.queue
let executed t = t.executed
let dropped t = t.dropped
let expired t = t.expired

(* How promising is a follow-up EXPAND of [node]'s component? The cost
   model's own signals: the component's selectivity mass (the unnormalized
   EXPLORE numerator — Σ |L|/|LT| over members) times its EXPAND
   probability. Normalization is skipped: scores only rank siblings of one
   reveal, and the EXPLORE denominator is shared across them. *)
let score ~model active node =
  let nav = Active_tree.nav active in
  let members = Active_tree.component active node in
  let mass =
    List.fold_left
      (fun acc m ->
        let lt = Nav_tree.total nav m in
        if lt = 0 then acc
        else acc +. (float_of_int (Nav_tree.result_count nav m) /. float_of_int lt))
      0. members
  in
  let comp, _map = Active_tree.comp_tree active node in
  let all = List.init (Comp_tree.size comp) Fun.id in
  let px =
    model.Probability.expand comp ~members:all
      ~distinct:(Active_tree.component_distinct active node)
  in
  mass *. px

module Nav_snapshot = Bionav_search.Nav_snapshot

(* The same score computed from a published snapshot instead of the live
   active tree. Everything read here is immutable or domain-safe — the
   snapshot's vnodes, its frozen arena, and pure reads on the pinned
   navigation tree — so ranking runs with no lock held at all. *)
let snapshot_score ~model snap (v : Nav_snapshot.vnode) =
  let comp, _map =
    Nav_tree.comp_tree_of (Nav_snapshot.nav snap) ~root:v.Nav_snapshot.id
      ~members:(Array.to_list v.Nav_snapshot.members)
  in
  let all = List.init (Comp_tree.size comp) Fun.id in
  let px = model.Probability.expand comp ~members:all ~distinct:v.Nav_snapshot.distinct in
  v.Nav_snapshot.weight *. px

let rank_snapshot ~model snap revealed =
  let candidates =
    List.filter_map
      (fun n ->
        match Nav_snapshot.find snap n with
        | Some v when v.Nav_snapshot.expandable -> Some v
        | Some _ | None -> None)
      revealed
  in
  List.map fst
    (List.stable_sort
       (fun ((a : Nav_snapshot.vnode), sa) (b, sb) ->
         match Float.compare sb sa with
         | 0 -> Int.compare a.Nav_snapshot.id b.Nav_snapshot.id
         | c -> c)
       (List.map (fun v -> (v, snapshot_score ~model snap v)) candidates))

let enqueue_ranked t ~query snap ~k ~model ranked =
  let query = Nav_cache.normalize query in
  let nav = Nav_snapshot.nav snap in
  List.iteri
    (fun i (v : Nav_snapshot.vnode) ->
      if i < t.top_m then begin
        (* The member set lives in the snapshot's frozen arena; its
           content fingerprint matches the live component set, so cached
           plans serve both paths. *)
        let members = v.Nav_snapshot.member_set in
        let root = v.Nav_snapshot.id in
        let fingerprint = model.Probability.fingerprint in
        if not (Plan_cache.mem t.cache ~query ~fingerprint ~root ~members) then
          if Queue.length t.queue >= t.max_queue then begin
            t.dropped <- t.dropped + 1;
            Metrics.incr dropped_counter
          end
          else begin
            Queue.add
              { query; root; members; nav; k; model;
                enqueued_at_ms = Clock.now_ms t.clock }
              t.queue;
            Metrics.add depth_gauge 1.
          end
      end)
    ranked

let observe t ~query ~active ~k ~model ~revealed =
  let query = Nav_cache.normalize query in
  let candidates = List.filter (Active_tree.is_expandable active) revealed in
  let ranked =
    List.stable_sort
      (fun (a, sa) (b, sb) ->
        match Float.compare sb sa with 0 -> Int.compare a b | c -> c)
      (List.map (fun n -> (n, score ~model active n)) candidates)
  in
  let nav = Active_tree.nav active in
  let fingerprint = model.Probability.fingerprint in
  List.iteri
    (fun i (node, _score) ->
      if i < t.top_m then begin
        let members = Active_tree.component_set active node in
        if not (Plan_cache.mem t.cache ~query ~fingerprint ~root:node ~members) then
          if Queue.length t.queue >= t.max_queue then begin
            t.dropped <- t.dropped + 1;
            Metrics.incr dropped_counter
          end
          else begin
            Queue.add
              { query; root = node; members; nav; k; model;
                enqueued_at_ms = Clock.now_ms t.clock }
              t.queue;
            Metrics.add depth_gauge 1.
          end
      end)
    ranked

let run_job t job =
  (* Ticks may run on a background prefetch domain (under the engine's
     shard lock): take ownership of the job tree's arena before the cut
     computation mutates its memo tables. *)
  Docset_arena.adopt (Nav_tree.arena job.nav);
  let fingerprint = job.model.Probability.fingerprint in
  if not (Plan_cache.mem t.cache ~query:job.query ~fingerprint ~root:job.root ~members:job.members)
  then begin
    let (), ms =
      Timing.time (fun () ->
          let comp, _map =
            Nav_tree.comp_tree_of job.nav ~root:job.root ~members:(Docset.elements job.members)
          in
          if Comp_tree.size comp >= 2 then begin
            let report = Heuristic.best_cut ~model:job.model ~k:job.k comp in
            let cut = List.map (Comp_tree.tag comp) report.Heuristic.cut_children in
            Plan_cache.store t.cache ~query:job.query ~fingerprint ~root:job.root
              ~members:job.members ~cut
          end)
    in
    Metrics.observe precompute_hist ms;
    Logs.debug (fun m ->
        m "speculator: precomputed plan for node %d of %S (%.2f ms)" job.root job.query ms)
  end

let stale t job =
  match t.job_ttl_ms with
  | None -> false
  | Some ttl -> Clock.now_ms t.clock -. job.enqueued_at_ms > ttl

let tick t ~budget =
  let rec go n =
    if n >= budget || Queue.is_empty t.queue then n
    else begin
      let job = Queue.pop t.queue in
      Metrics.add depth_gauge (-1.);
      if stale t job then begin
        (* A speculation that sat past its TTL is guessing about a session
           state long gone; discarding it is free, so it costs no budget. *)
        t.expired <- t.expired + 1;
        Metrics.incr expired_counter;
        Logs.debug (fun m ->
            m "speculator: expired job for node %d of %S" job.root job.query);
        go n
      end
      else begin
        run_job t job;
        t.executed <- t.executed + 1;
        Metrics.incr speculations_counter;
        go (n + 1)
      end
    end
  in
  go 0

let drop_query t query =
  let query = Nav_cache.normalize query in
  let keep = Queue.create () in
  let n_dropped = ref 0 in
  Queue.iter
    (fun j -> if String.equal j.query query then incr n_dropped else Queue.add j keep)
    t.queue;
  Queue.clear t.queue;
  Queue.transfer keep t.queue;
  if !n_dropped > 0 then begin
    t.dropped <- t.dropped + !n_dropped;
    Metrics.incr ~by:!n_dropped dropped_counter;
    Metrics.add depth_gauge (-.float_of_int !n_dropped)
  end;
  !n_dropped
