open Bionav_util
open Bionav_core

type entry = { members : int array; cut : int list }
type t = { cache : (string, entry) Lru.t }

let hits_counter = Metrics.counter "bionav_prefetch_plan_hits_total"
let misses_counter = Metrics.counter "bionav_prefetch_plan_misses_total"
let insertions_counter = Metrics.counter "bionav_prefetch_plan_insertions_total"
let evictions_counter = Metrics.counter "bionav_prefetch_plan_evictions_total"

let default_capacity = 512

let create ?(capacity = default_capacity) () = { cache = Lru.create ~capacity }

(* The member set arrives as an interned {!Docset.t}, so the key reuses its
   O(1) content fingerprint instead of re-folding the member list on every
   lookup. Collisions are harmless: [find] verifies the stored member
   array before serving a cut. *)
let key query fingerprint root members =
  Printf.sprintf "%s\x00%s\x00%d\x00%x" (Nav_cache.normalize query) fingerprint root
    (Docset.fingerprint members)

let same_members stored members = Docset.equal_array members stored

let find t ~query ~fingerprint ~root ~members =
  match Lru.find t.cache (key query fingerprint root members) with
  | Some e when same_members e.members members ->
      Metrics.incr hits_counter;
      Some e.cut
  | Some _ | None ->
      Metrics.incr misses_counter;
      None

let mem t ~query ~fingerprint ~root ~members =
  match Lru.peek t.cache (key query fingerprint root members) with
  | Some e -> same_members e.members members
  | None -> false

let store t ~query ~fingerprint ~root ~members ~cut =
  match cut with
  | [] -> ()
  | _ :: _ ->
      let evictions_before = Lru.evictions t.cache in
      Lru.add t.cache (key query fingerprint root members)
        { members = Docset.to_array members; cut };
      Metrics.incr insertions_counter;
      if Lru.evictions t.cache > evictions_before then Metrics.incr evictions_counter

let length t = Lru.length t.cache
let hits t = Lru.hits t.cache
let misses t = Lru.misses t.cache
let clear t =
  Lru.clear t.cache;
  Lru.reset_counters t.cache

let plan_source t ~query ~fingerprint =
  {
    Navigation.find_plan = (fun ~root ~members -> find t ~query ~fingerprint ~root ~members);
    store_plan = (fun ~root ~members ~cut -> store t ~query ~fingerprint ~root ~members ~cut);
  }
