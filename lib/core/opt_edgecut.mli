(** Opt-EdgeCut (paper §VI-A): exact minimization of the expected TOPDOWN
    navigation cost.

    The algorithm enumerates, for every reachable component (a subtree of
    the input minus full subtrees removed by cuts), every valid EdgeCut —
    a non-empty antichain of nodes below the component root — and memoizes
    the minimum expected cost per component. This is exponential
    (the paper proves the underlying decision problem NP-complete), so the
    input is guarded to at most {!max_size} nodes; in the full system it
    only ever runs on reduced trees of ≤ k ≈ 10 supernodes. *)

type solution = {
  cost : float;  (** Σ over returned roots of examine + explore cost. *)
  cut_children : int list;
      (** Roots of the lower component subtrees, as component-tree node
          indices (never the root). Non-empty. *)
}

val max_size : int
(** 16: practical bound for exhaustive cut enumeration. *)

val solve :
  ?model:Probability.model -> ?norm:float -> Comp_tree.t -> solution
(** Best first EdgeCut for an EXPAND on the whole tree: minimizes
    [cost(upper) + Σ_{v ∈ cut} (1 + cost(C_v))], under [model] (default
    {!Probability.default_model}). The tree must have ≥ 2 nodes and
    ≤ {!max_size} nodes. @raise Invalid_argument otherwise. *)

val expected_cost :
  ?model:Probability.model -> ?norm:float -> Comp_tree.t -> float
(** The minimum expected navigation cost of the whole tree under the cost
    model (the quantity Opt-EdgeCut computes bottom-up). Defined for any
    size ≤ {!max_size}, including singletons. *)

type state
(** Memo tables (per-component minimum costs and best cuts) attached to one
    cost-model context. Because costs for all sub-components are memoized,
    Opt-EdgeCut effectively runs once per component and later expansions of
    the pieces are lookups — the property the paper notes in §VI-B. *)

val init : Cost_model.t -> state

val context : state -> Cost_model.t

val solve_mask : state -> int -> solution
(** Best cut of an arbitrary connected sub-component (a mask with ≥ 2
    members) of the context's tree. @raise Invalid_argument on a smaller
    mask. *)

val cost_mask : state -> int -> float
(** Expected cost of an arbitrary non-empty connected sub-component. *)

val count_valid_cuts : Comp_tree.t -> int
(** Number of valid EdgeCuts of the full tree (diagnostic; used by tests and
    by the complexity demonstration bench). *)
