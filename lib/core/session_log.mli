(** Recording and replaying navigation sessions.

    The original BioNav is a web application whose user actions arrive as
    EXPAND/SHOWRESULTS requests (paper Fig. 7); a reproducible system wants
    those action streams on disk — to replay a user's session against a new
    algorithm version, to turn an interactive exploration into a regression
    test, to audit what a session cost, or to learn empirical
    EXPLORE/EXPAND probabilities from them (see [Bionav_adaptive]). A
    transcript is a text format, one action per line, in two wire versions:

    {v
      # bionav session transcript v1
      expand <concept-id>
      show <concept-id>
      backtrack
    v}

    {v
      # bionav session transcript v2
      expand <concept-id> <n-revealed> <revealed-concept-id>*
      show <concept-id> <n-listed>
      backtrack
      refine <concept-id>
      unrefine
      facet
    v}

    v2 additionally carries each action's {e outcome} — which concepts the
    EXPAND revealed and how many citations the SHOWRESULTS listed — the
    signals an evidence aggregator needs to tell engaged concepts from
    ignored ones. Both versions parse (a file with no header is v1);
    unknown versions are rejected naming the supported ones, and a
    conflicting second header mid-file is corruption. Actions address
    nodes by {e hierarchy concept id} (stable across navigation-tree
    rebuilds), not by navigation-tree node. *)

type action = Expand of int | Show_results of int | Backtrack | Refine of int | Unrefine | Facet

val pp_action : Format.formatter -> action -> unit

type event =
  | Expanded of { concept : int; revealed : int list }
      (** An effective EXPAND and the concepts it revealed. *)
  | Shown of { concept : int; n_listed : int }
      (** SHOWRESULTS and the number of citations it listed. *)
  | Backtracked
  | Refined of { concept : int }
      (** Query-by-navigation: the session narrowed its result set to the
          subtree of the given concept and re-derived the space. *)
  | Unrefined  (** The session popped the top refinement. *)
  | Faceted  (** The session derived the (descriptor × qualifier) facet space. *)

val action_of_event : event -> action
(** Drop the outcome. *)

type t = action list
(** Chronological. *)

val to_string : t -> string
(** v1 wire format (actions carry no outcomes). @raise Invalid_argument
    on space-changing actions ([Refine]/[Unrefine]/[Facet]) — they are not
    representable in v1; write a v2 transcript instead. *)

val events_to_string : event list -> string
(** v2 wire format. v2 additionally carries [refine <concept>],
    [unrefine] and [facet] lines for navigation-space changes — still
    wire version 2: v2 readers that predate navigation spaces reject the
    new lines loudly, naming the supported action set. *)

val of_string : string -> t
(** Parse either wire version, dropping v2 outcomes. @raise
    Invalid_argument on malformed lines, a reveal list whose length
    contradicts its declared count, an unsupported version header (the
    error names the supported versions), or mixed version headers.
    Comments (['#']) and blank lines are ignored. *)

val events_of_string : string -> event list
(** Like {!of_string} but keeps outcomes; v1 actions parse as events with
    empty outcomes ([revealed = []], [n_listed = 0]). *)

val save : t -> string -> unit
val load : string -> t
val save_events : event list -> string -> unit
val load_events : string -> event list

type recorder

val record : Navigation.t -> recorder
(** Wrap a session; drive it through {!expand}, {!show_results} and
    {!backtrack} below to accumulate a transcript. *)

val expand : recorder -> int -> int list
(** Like {!Navigation.expand} (by navigation node), recording the action by
    concept id together with the revealed concepts. No-op expansions
    (nothing revealed) are not recorded. *)

val show_results : recorder -> int -> Bionav_util.Docset.t
val backtrack : recorder -> bool
(** Failed backtracks (nothing to undo) are not recorded. *)

val transcript : recorder -> t
val events : recorder -> event list
(** The v2 view of the recording: actions with their outcomes. *)

type replay_outcome = {
  applied : int;  (** Actions successfully applied. *)
  skipped : int;
      (** Actions that no longer apply (concept absent from this navigation
          tree, not visible, or not expandable). *)
  stats : Navigation.stats;
}

val replay : Navigation.t -> t -> replay_outcome
(** Apply a transcript to a (fresh or ongoing) session, skipping actions
    that do not apply to this tree — transcripts are portable across query
    re-executions and algorithm changes. Space-changing actions
    ([Refine]/[Unrefine]/[Facet]) always skip: a [Navigation.t] is a single
    navigation space, so they replay only at the engine layer. *)
