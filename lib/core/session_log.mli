(** Recording and replaying navigation sessions.

    The original BioNav is a web application whose user actions arrive as
    EXPAND/SHOWRESULTS requests (paper Fig. 7); a reproducible system wants
    those action streams on disk — to replay a user's session against a new
    algorithm version, to turn an interactive exploration into a regression
    test, or to audit what a session cost. A transcript is a text format,
    one action per line:

    {v
      # bionav session transcript v1
      expand <concept-id>
      show <concept-id>
      backtrack
    v}

    Actions address nodes by {e hierarchy concept id} (stable across
    navigation-tree rebuilds), not by navigation-tree node. *)

type action = Expand of int | Show_results of int | Backtrack

val pp_action : Format.formatter -> action -> unit

type t = action list
(** Chronological. *)

val to_string : t -> string
val of_string : string -> t
(** @raise Invalid_argument on malformed lines. Comments (['#']) and blank
    lines are ignored. *)

val save : t -> string -> unit
val load : string -> t

type recorder

val record : Navigation.t -> recorder
(** Wrap a session; drive it through {!expand}, {!show_results} and
    {!backtrack} below to accumulate a transcript. *)

val expand : recorder -> int -> int list
(** Like {!Navigation.expand} (by navigation node), recording the action by
    concept id. No-op expansions (nothing revealed) are not recorded. *)

val show_results : recorder -> int -> Bionav_util.Docset.t
val backtrack : recorder -> bool
(** Failed backtracks (nothing to undo) are not recorded. *)

val transcript : recorder -> t

type replay_outcome = {
  applied : int;  (** Actions successfully applied. *)
  skipped : int;
      (** Actions that no longer apply (concept absent from this navigation
          tree, not visible, or not expandable). *)
  stats : Navigation.stats;
}

val replay : Navigation.t -> t -> replay_outcome
(** Apply a transcript to a (fresh or ongoing) session, skipping actions
    that do not apply to this tree — transcripts are portable across query
    re-executions and algorithm changes. *)
