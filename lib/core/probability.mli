(** Estimation of the navigation probabilities (paper §IV).

    Two quantities drive the cost model, both defined on component subtrees:

    - {b EXPLORE} [P_e]: how likely the user is to descend into a component.
      Proportional to the component's query selectivity
      [Σ |L(n)| / |LT(n)|] (an IDF-like signal: concepts frequent in the
      query result but rare corpus-wide are discriminating), normalized by
      the same sum over the whole tree being expanded.
    - {b EXPAND} [P_x]: how likely the user is to keep drilling down rather
      than list results. 0 when the component stands for a single concept;
      1 above an upper result-count threshold; 0 below a lower threshold;
      otherwise the normalized entropy of the citation distribution over
      the component's concepts (duplicates can push raw entropy above the
      no-duplicate uniform maximum, hence clamping). The paper operates
      with thresholds 50 and 10.

    On reduced trees a node is a supernode standing for many concepts, so
    both "the component's concepts" and the "singleton" test refer to the
    {e underlying} concepts ({!Comp_tree.multiplicity} /
    {!Comp_tree.sub_weights}), not the supernode count. *)

type params = {
  upper_threshold : int;  (** |L| above this forces [P_x] = 1 (paper: 50). *)
  lower_threshold : int;  (** |L| below this forces [P_x] = 0 (paper: 10). *)
  expand_cost : float;
      (** Model cost charged per future EXPAND action. The paper notes that
          raising it makes each EXPAND reveal more concepts (§III); under
          this implementation's conditional cost recursion (see
          {!Cost_model}) the default 16 reproduces the paper's observed
          reveal widths (3-9 concepts per EXPAND) and cost-improvement
          profile. The {e accounting} cost of an EXPAND in the navigation
          metric stays 1 (see {!Navigation}). *)
  future_fanout : int;
      (** Assumed reveal width of future expansions when estimating the
          navigation cost of an {e unstructured} component (a single
          supernode of a reduced tree, whose internal tree shape has been
          abstracted away): exploring [m] hidden concepts is priced as a
          balanced [future_fanout]-ary drill-down,
          [(future_fanout + 1) · log_fanout m]. Defaults to the reduction
          budget k = 10. *)
}

val default_params : params
(** [{ upper_threshold = 50; lower_threshold = 10; expand_cost = 16.0;
      future_fanout = 10 }] *)

val validate_params : params -> unit
(** Reject parameter records whose formulas would produce silent nonsense:
    requires [upper_threshold >= lower_threshold >= 0], [expand_cost > 0]
    and [future_fanout >= 2]. @raise Invalid_argument naming the offending
    field. Called by every {!model} constructor. *)

val params_fingerprint : params -> string
(** Stable textual identity of a parameter record
    (["upper/lower/expand_cost/fanout"]); the building block of model
    fingerprints. *)

val explore_weight : Comp_tree.t -> int -> float
(** [|L(i)| / |LT(i)|] for one node; 0 when the node has no results. *)

val normalizer : Comp_tree.t -> float
(** Sum of [explore_weight] over all nodes of the tree, floored at a small
    epsilon so division is always defined. *)

val explore : norm:float -> Comp_tree.t -> int list -> float
(** [explore ~norm t members]: the component's EXPLORE probability —
    member weights summed, divided by [norm], clamped to [0, 1]. *)

val expand :
  params -> Comp_tree.t -> members:int list -> distinct:int -> float
(** [expand params t ~members ~distinct]: the component's EXPAND
    probability; [distinct] is the component's distinct result count. The
    entropy runs over the members' underlying concept weights. *)

val future_drilldown_cost : params -> int -> float
(** [future_drilldown_cost params m]: the surrogate navigation cost of
    drilling into [m] hidden concepts ([0.] for [m <= 1]). *)

(** {2 Pluggable models}

    The free functions above are the paper's fixed §IV estimates. A
    {!model} packages the two probability estimators behind a first-class
    value so alternative estimators (e.g. the evidence-smoothed model of
    [Bionav_adaptive]) plug into {!Cost_model}, {!Opt_edgecut},
    {!Heuristic} and {!Navigation} without those layers knowing how the
    probabilities are produced. The [fingerprint] is the model's {e cache
    identity}: two models with the same fingerprint must compute identical
    probabilities, because memoized EdgeCut plans are keyed by it — a model
    update changes the fingerprint and thereby invalidates every stale
    plan instead of serving it. *)

type model = {
  params : params;  (** Thresholds and cost constants the estimators use. *)
  fingerprint : string;
      (** Stable identity for plan/cache keying; see above. *)
  normalizer : Comp_tree.t -> float;
      (** This model's EXPLORE denominator over a whole tree (the model's
          member weights summed, epsilon-floored). *)
  explore : norm:float -> Comp_tree.t -> int list -> float;
      (** EXPLORE probability of a component, clamped to [0, 1]. *)
  expand : Comp_tree.t -> members:int list -> distinct:int -> float;
      (** EXPAND probability of a component.
          @raise Invalid_argument on empty [members]. *)
}

val make_model :
  params:params ->
  fingerprint:string ->
  normalizer:(Comp_tree.t -> float) ->
  explore:(norm:float -> Comp_tree.t -> int list -> float) ->
  expand:(Comp_tree.t -> members:int list -> distinct:int -> float) ->
  model
(** Validates [params] (see {!validate_params}) and packages the record. *)

val static : ?params:params -> unit -> model
(** The paper's §IV model as a [model] value: {!normalizer}, {!explore} and
    {!expand} verbatim, fingerprint ["static/<params>"]. @raise
    Invalid_argument on invalid [params]. *)

val default_model : model
(** [static ()] — the model every strategy uses unless told otherwise. *)

val facet_params : params
(** Cost-model terms tuned for qualifier facet pages (wide, flat, cheap to
    re-cut): higher thresholds, lower expand cost, fanout = the qualifier
    table width. *)

val facet_model : model
(** [static ~params:facet_params ()] — the default model for the
    (descriptor × qualifier) facet dimension. *)

val model_of : ?params:params -> ?model:model -> unit -> model
(** Resolution helper for APIs that accept both spellings: an explicit
    [model] wins, bare [params] wrap into {!static}, neither means
    {!default_model}. *)
