open Bionav_util

type t = { cache : (string, Nav_tree.t) Lru.t; build : string -> Nav_tree.t }

let create ?(capacity = 32) ~build () = { cache = Lru.create ~capacity; build }

let normalize q = String.lowercase_ascii (String.trim q)

let hits_counter = Metrics.counter "bionav_cache_hits_total"
let misses_counter = Metrics.counter "bionav_cache_misses_total"
let evictions_counter = Metrics.counter "bionav_cache_evictions_total"
let build_hist = Metrics.histogram "bionav_nav_tree_build_ms"

let get t query =
  let key = normalize query in
  match Lru.find t.cache key with
  | Some nav ->
      Metrics.incr hits_counter;
      nav
  | None ->
      Metrics.incr misses_counter;
      let nav, build_ms = Timing.time (fun () -> t.build query) in
      Metrics.observe build_hist build_ms;
      let evictions_before = Lru.evictions t.cache in
      Lru.add t.cache key nav;
      if Lru.evictions t.cache > evictions_before then Metrics.incr evictions_counter;
      nav

let hit_rate t =
  let h = Lru.hits t.cache and m = Lru.misses t.cache in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let hits t = Lru.hits t.cache
let misses t = Lru.misses t.cache
let evictions t = Lru.evictions t.cache

let put t query nav = Lru.add t.cache (normalize query) nav

(* Lookup without the build fallback: derived navigation spaces are built
   by the caller (the key embeds a space path, not a runnable query), so
   the [build] closure cannot serve a miss. Keys are used verbatim — the
   caller already normalized the query component. *)
let find t key =
  match Lru.find t.cache key with
  | Some nav ->
      Metrics.incr hits_counter;
      Some nav
  | None ->
      Metrics.incr misses_counter;
      None

let fold_trees t f acc = Lru.fold t.cache f acc

let clear t =
  Lru.clear t.cache;
  Lru.reset_counters t.cache
