open Bionav_util

type t = { cache : (string, Nav_tree.t) Lru.t; build : string -> Nav_tree.t }

let create ?(capacity = 32) ~build () = { cache = Lru.create ~capacity; build }

let normalize q = String.lowercase_ascii (String.trim q)

let get t query =
  let key = normalize query in
  Lru.find_or_add t.cache key (fun () -> t.build query)

let hit_rate t =
  let h = Lru.hits t.cache and m = Lru.misses t.cache in
  if h + m = 0 then 0. else float_of_int h /. float_of_int (h + m)

let clear t = Lru.clear t.cache
