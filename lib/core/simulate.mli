(** Oracle-user navigation simulation (paper §VIII-A).

    "We assume that the user follows a top-down navigation where she always
    chooses the right node to expand in order to finally reveal the target
    concept." The oracle repeatedly expands the visible node whose component
    contains the target navigation node, until the target itself becomes
    visible; optionally it then performs SHOWRESULTS on the target.

    The simulation drives an existing (fresh) {!Navigation.t} session;
    constructing sessions is the engine layer's job
    ([Bionav_engine.Engine.start]). *)

type outcome = {
  expands : int;
  revealed : int;
  navigation_cost : int;  (** [expands + revealed] — the Fig. 8 metric. *)
  results_listed : int;  (** 0 unless [show_results] was requested. *)
  total_cost : int;
  history : Navigation.expand_record list;  (** Chronological order. *)
}

val to_target : ?show_results:bool -> Navigation.t -> target:int -> outcome
(** Navigate the given (fresh) session until the target navigation node is
    visible.
    @raise Invalid_argument if [target] is out of range.
    @raise Failure if navigation stops making progress (cannot happen for
    the shipped strategies; the guard bounds the simulation). *)

val to_concept : ?show_results:bool -> Navigation.t -> concept:int -> outcome
(** Like {!to_target}, addressing the target by hierarchy concept id.
    @raise Invalid_argument if the concept has no node in the navigation
    tree (no attached results). *)
