open Bionav_util

type t = {
  parent : int array;
  children : int list array;
  depth : int array;
  results : Docset.t array;
  totals : int array;
  labels : string array;
  tags : int array;
  concepts : int array;
  multiplicity : int array;
  sub_weights : float array array;
  sub_concepts : int array array;
}

let make ~parent ~results ~totals ?labels ?tags ?concepts ?multiplicity ?sub_weights
    ?sub_concepts () =
  let n = Array.length parent in
  if n = 0 then invalid_arg "Comp_tree.make: empty";
  if Array.length results <> n || Array.length totals <> n then
    invalid_arg "Comp_tree.make: array length mismatch";
  if parent.(0) <> -1 then invalid_arg "Comp_tree.make: node 0 must be the root";
  for i = 1 to n - 1 do
    if not (parent.(i) >= 0 && parent.(i) < i) then
      invalid_arg (Printf.sprintf "Comp_tree.make: node %d has parent %d" i parent.(i))
  done;
  for i = 0 to n - 1 do
    let li = Docset.cardinal results.(i) in
    if totals.(i) < li then
      invalid_arg (Printf.sprintf "Comp_tree.make: node %d has LT %d < L %d" i totals.(i) li);
    if li > 0 && totals.(i) <= 0 then
      invalid_arg (Printf.sprintf "Comp_tree.make: node %d has results but LT 0" i)
  done;
  let labels =
    match labels with
    | Some l ->
        if Array.length l <> n then invalid_arg "Comp_tree.make: labels length mismatch";
        l
    | None -> Array.init n (Printf.sprintf "c%d")
  in
  let tags =
    match tags with
    | Some t ->
        if Array.length t <> n then invalid_arg "Comp_tree.make: tags length mismatch";
        t
    | None -> Array.init n Fun.id
  in
  let concepts =
    match concepts with
    | Some c ->
        if Array.length c <> n then invalid_arg "Comp_tree.make: concepts length mismatch";
        c
    | None -> Array.make n (-1)
  in
  let multiplicity =
    match multiplicity with
    | Some m ->
        if Array.length m <> n then invalid_arg "Comp_tree.make: multiplicity length mismatch";
        Array.iter (fun x -> if x < 1 then invalid_arg "Comp_tree.make: multiplicity < 1") m;
        m
    | None -> Array.make n 1
  in
  let sub_weights =
    match sub_weights with
    | Some w ->
        if Array.length w <> n then invalid_arg "Comp_tree.make: sub_weights length mismatch";
        w
    | None -> Array.init n (fun i -> [| float_of_int (Docset.cardinal results.(i)) |])
  in
  let sub_concepts =
    match sub_concepts with
    | Some c ->
        if Array.length c <> n then invalid_arg "Comp_tree.make: sub_concepts length mismatch";
        Array.iteri
          (fun i ci ->
            if Array.length ci <> Array.length sub_weights.(i) then
              invalid_arg
                (Printf.sprintf
                   "Comp_tree.make: node %d has %d sub_concepts but %d sub_weights" i
                   (Array.length ci)
                   (Array.length sub_weights.(i))))
          c;
        c
    | None -> Array.init n (fun i -> Array.make (Array.length sub_weights.(i)) concepts.(i))
  in
  let children = Array.make n [] in
  for i = n - 1 downto 1 do
    children.(parent.(i)) <- i :: children.(parent.(i))
  done;
  let depth = Array.make n 0 in
  for i = 1 to n - 1 do
    depth.(i) <- depth.(parent.(i)) + 1
  done;
  {
    parent = Array.copy parent;
    children;
    depth;
    (* One shared arena across the component's node sets: distinct-count
       queries over node subsets then memoize in a single place. Results
       extracted from a navigation tree already share its arena, so this
       is a no-op copy on the hot construction path. *)
    results = Docset.consolidate (Array.copy results);
    totals = Array.copy totals;
    labels = Array.copy labels;
    tags = Array.copy tags;
    concepts = Array.copy concepts;
    multiplicity = Array.copy multiplicity;
    sub_weights = Array.copy sub_weights;
    sub_concepts = Array.copy sub_concepts;
  }

let size t = Array.length t.parent
let root _ = 0
let parent t i = t.parent.(i)
let children t i = t.children.(i)
let is_leaf t i = t.children.(i) = []
let depth t i = t.depth.(i)
let results t i = t.results.(i)
let result_count t i = Docset.cardinal t.results.(i)
let total t i = t.totals.(i)
let label t i = t.labels.(i)
let tag t i = t.tags.(i)
let concept t i = t.concepts.(i)
let multiplicity t i = t.multiplicity.(i)
let sub_weights t i = t.sub_weights.(i)
let sub_concepts t i = t.sub_concepts.(i)

let subtree_nodes t n =
  let acc = ref [] in
  let rec go i =
    acc := i :: !acc;
    List.iter go t.children.(i)
  in
  go n;
  List.rev !acc

let distinct_of_nodes t nodes = Docset.union_many (List.map (fun i -> t.results.(i)) nodes)

let all_results t = distinct_of_nodes t (subtree_nodes t 0)

let duplicate_count t =
  let attached = Array.fold_left (fun acc s -> acc + Docset.cardinal s) 0 t.results in
  attached - Docset.cardinal (all_results t)

let singleton ~results ~total ?(label = "c0") ?(tag = 0) ?(concept = -1) () =
  make ~parent:[| -1 |] ~results:[| results |] ~totals:[| total |] ~labels:[| label |]
    ~tags:[| tag |] ~concepts:[| concept |] ()

let pp ppf t =
  let rec go i =
    Format.fprintf ppf "%s%s (L=%d, LT=%d)@\n"
      (String.make (2 * t.depth.(i)) ' ')
      t.labels.(i)
      (result_count t i) t.totals.(i);
    List.iter go t.children.(i)
  in
  go 0
