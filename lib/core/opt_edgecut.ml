type solution = { cost : float; cut_children : int list }

let max_size = 16

(* All valid antichain options within the subtree of [v] restricted to
   [mask], as bitmasks of cut children. The empty antichain (0) is always
   included: it represents "no cut inside this subtree". Cutting at [v]
   itself excludes any deeper cut in the same subtree — exactly the
   validity condition of Definition 3 (no two cut edges on a root-leaf
   path). *)
let rec antichain_options ctx ~mask v =
  let tree = Cost_model.tree ctx in
  let kids =
    List.filter (fun c -> mask land (1 lsl c) <> 0) (Comp_tree.children tree v)
  in
  let per_child = List.map (antichain_options ctx ~mask) kids in
  let combos =
    List.fold_left
      (fun acc opts -> List.concat_map (fun a -> List.map (fun b -> a lor b) opts) acc)
      [ 0 ] per_child
  in
  (1 lsl v) :: combos

(* Valid non-empty cuts of the component [mask] rooted at [r]: combine one
   antichain option per child subtree of the root and drop the empty one. *)
let cuts_of ctx ~mask r =
  let tree = Cost_model.tree ctx in
  let kids = List.filter (fun c -> mask land (1 lsl c) <> 0) (Comp_tree.children tree r) in
  let per_child = List.map (antichain_options ctx ~mask) kids in
  let combos =
    List.fold_left
      (fun acc opts -> List.concat_map (fun a -> List.map (fun b -> a lor b) opts) acc)
      [ 0 ] per_child
  in
  List.filter (fun m -> m <> 0) combos

type state = {
  ctx : Cost_model.t;
  cost_memo : (int, float) Hashtbl.t;
  best_memo : (int, float * int) Hashtbl.t;  (* mask -> (cut term, cut mask) *)
}

let init ctx = { ctx; cost_memo = Hashtbl.create 512; best_memo = Hashtbl.create 512 }

let context st = st.ctx

let popcount = Bionav_util.Bits.popcount

(* cost(C): expected navigation cost of component [mask]. *)
let rec cost_mask st mask =
  match Hashtbl.find_opt st.cost_memo mask with
  | Some c -> c
  | None ->
      let ctx = st.ctx in
      let c =
        if popcount mask <= 1 then Cost_model.cost_unstructured ctx mask
        else begin
          let px = Cost_model.p_expand ctx mask in
          if px <= 0. then Cost_model.cost_leaf ctx mask
          else
            let cut_term, _ = best_cut st mask in
            Cost_model.cost ctx ~mask ~cut_term
        end
      in
      Hashtbl.add st.cost_memo mask c;
      c

(* Minimum over valid cuts of [cost(upper) + Σ_v (1 + cost(lower_v))]. *)
and best_cut st mask =
  match Hashtbl.find_opt st.best_memo mask with
  | Some r -> r
  | None ->
      let ctx = st.ctx in
      let r = Cost_model.root_of ctx mask in
      let cuts = cuts_of ctx ~mask r in
      assert (cuts <> []);
      let evaluate cut_mask =
        let lower_masks =
          List.map
            (fun v -> Cost_model.subtree_mask ctx ~mask v)
            (Cost_model.members ctx cut_mask)
        in
        let lowered = List.fold_left ( lor ) 0 lower_masks in
        let upper = mask land lnot lowered in
        let weighted m =
          Cost_model.branch_probability ctx ~parent_mask:mask ~branch_mask:m
          *. cost_mask st m
        in
        let lower_cost = List.fold_left (fun acc m -> acc +. 1. +. weighted m) 0. lower_masks in
        weighted upper +. lower_cost
      in
      let best =
        List.fold_left
          (fun (best_term, best_mask) cut ->
            let term = evaluate cut in
            if term < best_term then (term, cut) else (best_term, best_mask))
          (infinity, 0) cuts
      in
      Hashtbl.add st.best_memo mask best;
      best

let solve_mask st mask =
  if popcount mask < 2 then invalid_arg "Opt_edgecut.solve_mask: component too small to cut";
  let cut_term, cut_mask = best_cut st mask in
  { cost = cut_term; cut_children = Cost_model.members st.ctx cut_mask }

let check_size tree =
  if Comp_tree.size tree > max_size then
    invalid_arg
      (Printf.sprintf "Opt_edgecut: tree has %d nodes (max %d)" (Comp_tree.size tree) max_size)

let solve_hist = Bionav_util.Metrics.histogram "bionav_opt_edgecut_solve_ms"

let solve ?model ?norm tree =
  check_size tree;
  if Comp_tree.size tree < 2 then invalid_arg "Opt_edgecut.solve: tree must have >= 2 nodes";
  let solution, elapsed_ms =
    Bionav_util.Timing.time (fun () ->
        let ctx = Cost_model.create ?model ?norm tree in
        solve_mask (init ctx) (Cost_model.full_mask ctx))
  in
  Bionav_util.Metrics.observe solve_hist elapsed_ms;
  solution

let expected_cost ?model ?norm tree =
  check_size tree;
  let ctx = Cost_model.create ?model ?norm tree in
  cost_mask (init ctx) (Cost_model.full_mask ctx)

let count_valid_cuts tree =
  check_size tree;
  let ctx = Cost_model.create tree in
  let mask = Cost_model.full_mask ctx in
  List.length (cuts_of ctx ~mask (Comp_tree.root tree))
