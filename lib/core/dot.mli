(** Graphviz DOT export of navigation and active trees.

    The paper illustrates its data structures as node-link diagrams
    (Figs. 1-5); this module regenerates those pictures from live values —
    handy for debugging EdgeCuts and for documentation. Output is plain DOT
    (render with [dot -Tsvg]). *)

val nav_tree : ?max_nodes:int -> Nav_tree.t -> string
(** The navigation tree with subtree-distinct counts (the paper's Fig. 1
    view). Trees larger than [max_nodes] (default 400) are truncated
    breadth-first with an ellipsis marker per cut branch. *)

val active_tree : Active_tree.t -> string
(** The Definition 5 visualization: visible nodes only, component counts,
    expandable nodes marked (the paper's Fig. 2 view). *)

val component : Comp_tree.t -> string
(** A component tree with L/LT per node (the paper's Fig. 3 view). *)
