(** Tree partitioning for Heuristic-ReducedOpt (paper §VI, adapting the
    bottom-up partition algorithm of the paper's reference [11]).

    Nodes are weighted by their attached-citation count [|L(n)|]. The tree
    is processed bottom-up; at each node, the heaviest still-attached child
    clusters are detached one by one (each detached cluster becoming a
    partition) until the node's cluster weight falls below the threshold.
    The root's remaining cluster is the final partition. Every partition is
    connected, and its shallowest node is its {e partition root}.

    [run_k] realizes the paper's calibration loop: start from
    [threshold = total_weight / k] and grow it geometrically until at most
    [k] partitions result. *)

type result = {
  assignment : int array;
      (** [assignment.(v)] = partition root of the partition containing
          [v]; [assignment.(root) = root]. *)
  roots : int list;  (** Partition roots in ascending node order. *)
  threshold : float;  (** The threshold that produced this partitioning. *)
}

val node_weight : Comp_tree.t -> int -> float
(** [|L(n)|]. *)

val total_weight : Comp_tree.t -> float

val run : Comp_tree.t -> threshold:float -> result
(** One bottom-up pass. Requires [threshold > 0]. *)

val run_k : ?growth:float -> Comp_tree.t -> k:int -> result
(** At most [k] partitions ([k >= 1]); the threshold grows by [growth]
    (default 1.3) per attempt. Always terminates: once the threshold
    reaches the total weight, the result is a single partition. *)
