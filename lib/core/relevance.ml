let component_weight active node =
  let nav = Active_tree.nav active in
  List.fold_left
    (fun acc m ->
      let l = Nav_tree.result_count nav m in
      if l = 0 then acc else acc +. (float_of_int l /. float_of_int (Nav_tree.total nav m)))
    0.
    (Active_tree.component active node)

let rank_visible active nodes =
  let weighted = List.map (fun n -> (n, component_weight active n)) nodes in
  List.map fst
    (List.sort
       (fun (na, a) (nb, b) -> if a = b then Int.compare na nb else Float.compare b a)
       weighted)

let ranked_children active node =
  let children =
    List.filter (fun v -> Active_tree.visible_parent active v = node) (Active_tree.visible active)
  in
  rank_visible active children

let render_ranked active =
  let nav = Active_tree.nav active in
  let buf = Buffer.create 1024 in
  let rec go depth node =
    Buffer.add_string buf
      (Printf.sprintf "%s%s (%d)%s\n" (String.make (2 * depth) ' ') (Nav_tree.label nav node)
         (Active_tree.component_distinct active node)
         (if Active_tree.is_expandable active node then " >>>" else ""));
    List.iter (go (depth + 1)) (ranked_children active node)
  in
  go 0 (Nav_tree.root nav);
  Buffer.contents buf
