(** Navigation sessions: the paper's navigation model (§III) with cost
    accounting.

    A session wraps an active tree and a strategy deciding what an EXPAND
    reveals:

    - [Heuristic]: BioNav proper — Heuristic-ReducedOpt picks the EdgeCut;
    - [Optimal]: exact Opt-EdgeCut (only feasible on small trees);
    - [Static]: the baseline — EXPAND reveals all children (GoPubMed,
      Amazon-style; paper §VIII-A);
    - [Static_paged]: the paper's footnote-2 variant — EXPAND reveals the
      [page_size] highest-count children and a repeated EXPAND on the same
      node acts as the "more" button, revealing the next page (each "more"
      costs one EXPAND action, which is exactly why the footnote argues the
      paged interface does not change the static cost much).

    Cost accounting follows §III: 1 per EXPAND action, 1 per concept
    revealed by an EXPAND, 1 per citation listed by SHOWRESULTS. *)

type strategy =
  | Heuristic of { k : int; model : Probability.model; reuse : bool }
      (** [reuse] keeps the Opt-EdgeCut solution of a component across
          follow-up expansions of its upper subtree (paper §VI-B: the costs
          for all possible [I(n)]s are computed by one run). Off by default
          — the paper's own Fig. 11 timings re-run the heuristic per
          EXPAND; [bench ablation-reuse] quantifies the speedup. [model]
          supplies the EXPLORE/EXPAND probabilities — the paper's static
          §IV estimates by default, or a learned model (see
          [Bionav_adaptive]). *)
  | Faceted of { k : int; model : Probability.model; reuse : bool }
      (** Heuristic-ReducedOpt cuts under the facet-tuned cost model —
          the strategy the engine runs on (descriptor × qualifier) facet
          spaces. Shares the [Heuristic] machinery (plans, budget,
          plan-source injection) but carries a distinct model fingerprint
          prefix (["faceted/"]) so facet cuts never leak into descriptor
          plan caches. *)
  | Optimal of { model : Probability.model }
  | Static
  | Static_paged of { page_size : int }

val bionav :
  ?k:int -> ?params:Probability.params -> ?model:Probability.model -> ?reuse:bool -> unit ->
  strategy
(** [Heuristic] with the paper's defaults (k = 10, thresholds 50/10). An
    explicit [model] wins over [params]; bare [params] wrap into
    {!Probability.static}. *)

val faceted :
  ?k:int -> ?params:Probability.params -> ?model:Probability.model -> ?reuse:bool -> unit ->
  strategy
(** [Faceted] with {!Probability.facet_model} by default (an explicit
    [model] wins over [params], as in {!bionav}). *)

val optimal :
  ?params:Probability.params -> ?model:Probability.model -> unit -> strategy
(** [Optimal] with the same [params]/[model] resolution as {!bionav}. *)

val strategy_model : strategy -> Probability.model option
(** The probability model driving a strategy's cuts; [None] for the
    model-free [Static]/[Static_paged] interfaces. *)

val model_fingerprint : strategy -> string
(** Stable cache identity of the strategy's probability assumptions:
    [model.fingerprint] for model-driven strategies, distinct sentinels
    (["static-interface"], ["static-paged/<n>"]) otherwise. Plan caches
    and snapshots key on this so cuts computed under one model are never
    served to a session running another. *)

type expand_record = {
  node : int;  (** The expanded (visible) navigation node. *)
  n_revealed : int;  (** Concepts revealed by this EXPAND. *)
  elapsed_ms : float;  (** Wall-clock time of the cut computation. *)
  reduced_size : int;
      (** Supernodes fed to Opt-EdgeCut (Heuristic), component size
          (Optimal), or 0 (Static) — the Fig. 11 partition count. *)
  degraded : bool;
      (** The EXPAND budget (see {!set_budget}) was exhausted before the
          cut computation started, so a Static_paged-style top-k cut was
          served instead of Heuristic-ReducedOpt. *)
}

type stats = {
  expands : int;  (** Number of EXPAND actions performed. *)
  revealed : int;  (** Total concepts revealed across all EXPANDs. *)
  results_listed : int;  (** Total citations listed by SHOWRESULTS. *)
  history : expand_record list;  (** Most recent first. *)
}

val navigation_cost : stats -> int
(** [expands + revealed]: the Fig. 8 metric. *)

val total_cost : stats -> int
(** [expands + revealed + results_listed]: the full §III cost. *)

type t

val start : strategy -> Nav_tree.t -> t
val active : t -> Active_tree.t
val strategy : t -> strategy
val stats : t -> stats

type plan_source = {
  find_plan : root:int -> members:Bionav_util.Docset.t -> int list option;
      (** Memoized EdgeCut for the component of [root] whose members (the
          current [I(n)] navigation ids, as a set interned in the
          navigation arena — key on its O(1) fingerprint) are exactly
          [members]; [None] (or [Some []]) to fall through to computation.
          The returned cut children must be a valid EdgeCut of that
          component — sources built on exact-key memoization of previously
          computed cuts satisfy this by construction. *)
  store_plan : root:int -> members:Bionav_util.Docset.t -> cut:int list -> unit;
      (** Called after a fresh computation so the source can memoize it. *)
}

val set_plan_source : t -> plan_source option -> unit
(** Inject plans instead of always recomputing: when a source is set, the
    [Heuristic] strategy consults [find_plan] before running
    Heuristic-ReducedOpt and reports every computed cut to [store_plan].
    An injected cut is applied verbatim, with [elapsed_ms = 0] and
    [reduced_size = 0] in the {!expand_record} (no solver ran). Other
    strategies ([Static], [Static_paged], [Optimal]) never consult the
    source — their cuts are either trivial or exact. [None] (the
    {!start} default) restores always-compute. *)

val set_budget : t -> (unit -> unit -> bool) option -> unit
(** Graceful degradation under a time budget. The factory is called once
    at the entry of every EXPAND and returns an over-budget check; when
    the check answers [true] before the cut computation starts, the
    [Heuristic] strategy serves the [k] highest-count hidden children (a
    {!Static_paged}-style cut) instead of running Heuristic-ReducedOpt,
    and the {!expand_record} is tagged [degraded]. A memoized plan (from
    reuse or a {!plan_source}) that answers for free is served even over
    budget and is {e not} degraded; degraded cuts are never reported to
    [store_plan]. Other strategies ignore the budget (their cuts are
    already trivial or explicitly exact). [None] (the {!start} default)
    disables budgeting. *)

val set_on_expand : t -> (node:int -> revealed:int list -> unit) option -> unit
(** Observer called after every {e effective} EXPAND (one that revealed
    at least one concept), with the expanded node and the newly visible
    nodes, after cost accounting. One observer at most; [None] removes
    it. The prefetch layer uses this to speculate on follow-up
    expansions regardless of which entry point drove the session. *)

val expand : t -> int -> int list
(** EXPAND the component rooted at the given visible node; returns the
    newly revealed navigation nodes (empty for a singleton component, in
    which case nothing is charged). @raise Invalid_argument if the node is
    not visible. *)

val show_results : t -> int -> Bionav_util.Docset.t
(** SHOWRESULTS on a visible node's component: returns (and charges for)
    its distinct citations. *)

val backtrack : t -> bool
(** Undo the last EXPAND. Does not refund cost (the user already paid the
    examinations); decrements nothing. *)
