(** The active tree (paper Definitions 4-5): the navigation tree annotated
    with component subtrees, closed under the EdgeCut operation.

    Every navigation-tree node belongs to exactly one component; every
    component is a connected piece of the navigation tree rooted at a
    {e visible} node. Initially one component holds everything, rooted at
    the navigation root. Applying an EdgeCut to a component detaches the
    full subtrees under the cut children as new (visible-rooted) lower
    components; the remainder stays with the upper root. The visualization
    (Definition 5) is the embedded tree of visible nodes with each node
    showing the distinct citation count of its component. *)

type t

val create : Nav_tree.t -> t
(** One component containing every node, rooted at the navigation root;
    only the root is visible. *)

val nav : t -> Nav_tree.t

val is_visible : t -> int -> bool
val visible : t -> int list
(** Visible navigation nodes in preorder (the root is first). *)

val component_root_of : t -> int -> int
(** The visible root of the component containing the given node. *)

val component : t -> int -> int list
(** Members (ascending navigation ids) of the component rooted at a visible
    node. @raise Invalid_argument if the node is not visible. *)

val component_size : t -> int -> int
val component_distinct : t -> int -> int
(** Distinct citations attached to the component — the count displayed next
    to the visible node (paper Fig. 2 shows it shrinking as concepts are
    revealed). *)

val component_results : t -> int -> Bionav_util.Docset.t

val component_set : t -> int -> Bionav_util.Docset.t
(** The member {e navigation ids} as a set interned in the navigation
    tree's arena — plan caches use its O(1) {!Bionav_util.Docset.fingerprint}
    as a key component. *)

val is_expandable : t -> int -> bool
(** Visible with a component of ≥ 2 nodes (the ">>>" affordance). *)

val comp_tree : t -> int -> Comp_tree.t * int array
(** The component as a {!Comp_tree.t} plus the index→navigation-node map
    (equal to the tree's tags). *)

val apply_cut : t -> root:int -> cut_children:int list -> int list
(** Perform the EdgeCut: [cut_children] are navigation nodes, members of the
    component of [root], none equal to [root], pairwise
    non-ancestor-related. Returns the newly visible nodes (the lower roots,
    ascending). The operation is recorded for {!backtrack}.
    @raise Invalid_argument on an invalid cut. *)

val expand_static : t -> int -> int list
(** The static baseline's EXPAND: cut at every child of [root] inside its
    component (reveal all children, GoPubMed-style). Returns newly visible
    nodes; empty for a singleton component. *)

val backtrack : t -> bool
(** Undo the most recent cut (paper's BACKTRACK action); [false] when there
    is nothing to undo. *)

val visible_parent : t -> int -> int
(** Parent in the visualization: nearest visible strict ancestor; -1 for
    the root. *)

val render : t -> string
(** The Definition 5 visualization: indented visible tree, component
    distinct counts, ">>>" markers on expandable nodes. *)
