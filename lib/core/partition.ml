type result = { assignment : int array; roots : int list; threshold : float }

let node_weight tree v = float_of_int (Comp_tree.result_count tree v)

let total_weight tree =
  let acc = ref 0. in
  for v = 0 to Comp_tree.size tree - 1 do
    acc := !acc +. node_weight tree v
  done;
  !acc

let run tree ~threshold =
  if threshold <= 0. then invalid_arg "Partition.run: non-positive threshold";
  let n = Comp_tree.size tree in
  let cluster_weight = Array.make n 0. in
  let detached = Array.make n false in
  (* Node ids are a topological order (parents first), so a reverse scan is
     a bottom-up traversal. *)
  for v = n - 1 downto 0 do
    let attached =
      List.filter (fun c -> not detached.(c)) (Comp_tree.children tree v)
    in
    let weight =
      List.fold_left (fun acc c -> acc +. cluster_weight.(c)) (node_weight tree v) attached
    in
    cluster_weight.(v) <- weight;
    let by_weight_desc =
      List.sort (fun a b -> compare cluster_weight.(b) cluster_weight.(a)) attached
    in
    let rec shed remaining = function
      | [] -> remaining
      | heaviest :: rest ->
          if remaining > threshold then begin
            detached.(heaviest) <- true;
            shed (remaining -. cluster_weight.(heaviest)) rest
          end
          else remaining
    in
    cluster_weight.(v) <- shed weight by_weight_desc
  done;
  let assignment = Array.make n 0 in
  (* Top-down: a node either starts a partition (detached, or the root) or
     inherits its parent's. *)
  for v = 0 to n - 1 do
    if v = 0 || detached.(v) then assignment.(v) <- v
    else assignment.(v) <- assignment.(Comp_tree.parent tree v)
  done;
  let roots =
    List.filter (fun v -> assignment.(v) = v) (List.init n Fun.id)
  in
  { assignment; roots; threshold }

let run_k ?(growth = 1.3) tree ~k =
  if k < 1 then invalid_arg "Partition.run_k: k must be >= 1";
  if growth <= 1.0 then invalid_arg "Partition.run_k: growth must exceed 1";
  let total = Float.max 1.0 (total_weight tree) in
  let rec attempt threshold =
    let res = run tree ~threshold in
    if List.length res.roots <= k || threshold >= total then res
    else attempt (threshold *. growth)
  in
  attempt (total /. float_of_int k)
