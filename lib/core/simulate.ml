type outcome = {
  expands : int;
  revealed : int;
  navigation_cost : int;
  results_listed : int;
  total_cost : int;
  history : Navigation.expand_record list;
}

let max_steps = 100_000

let to_target ?(show_results = false) session ~target =
  let active = Navigation.active session in
  let nav = Active_tree.nav active in
  if target < 0 || target >= Nav_tree.size nav then
    invalid_arg (Printf.sprintf "Simulate.to_target: node %d out of range" target);
  let rec step n =
    if n > max_steps then failwith "Simulate.to_target: no progress";
    if not (Active_tree.is_visible active target) then begin
      let root = Active_tree.component_root_of active target in
      let revealed = Navigation.expand session root in
      if revealed = [] then failwith "Simulate.to_target: expansion revealed nothing";
      step (n + 1)
    end
  in
  step 0;
  if show_results then ignore (Navigation.show_results session target);
  let stats = Navigation.stats session in
  {
    expands = stats.Navigation.expands;
    revealed = stats.Navigation.revealed;
    navigation_cost = Navigation.navigation_cost stats;
    results_listed = stats.Navigation.results_listed;
    total_cost = Navigation.total_cost stats;
    history = List.rev stats.Navigation.history;
  }

let to_concept ?show_results session ~concept =
  let nav = Active_tree.nav (Navigation.active session) in
  match Nav_tree.node_of_concept nav concept with
  | Some node -> to_target ?show_results session ~target:node
  | None ->
      invalid_arg
        (Printf.sprintf "Simulate.to_concept: concept %d has no navigation node" concept)
