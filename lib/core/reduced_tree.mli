(** The reduced tree of supernodes (paper §VI-B).

    Heuristic-ReducedOpt runs the exponential Opt-EdgeCut on a tree of at
    most k supernodes, each supernode being one partition of the real
    component tree. A supernode aggregates its members: results are the
    union of member result lists (duplicates across members collapse, as
    they would within one component), corpus totals are summed, and the
    label/tag come from the partition root. Reduced edges remember the
    original edge between partitions so a cut chosen on the reduced tree can
    be mapped back. *)

type t

val build : Comp_tree.t -> Partition.result -> t
(** @raise Invalid_argument if the partition does not belong to the tree. *)

val tree : t -> Comp_tree.t
(** The reduced component tree; node 0 is the partition containing the
    original root. *)

val original : t -> Comp_tree.t
val size : t -> int
(** Number of supernodes. *)

val partition_root : t -> int -> int
(** [partition_root t s]: the original node that roots supernode [s]. *)

val members : t -> int -> int list
(** Original nodes aggregated by supernode [s]. *)

val map_cut_children : t -> int list -> int list
(** Translate a cut on the reduced tree (supernode indices, root excluded)
    into cut children of the original tree: each supernode maps to its
    partition root, whose incoming original edge is the cut edge. The image
    of a valid reduced cut is a valid original cut. *)
