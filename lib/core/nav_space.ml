open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy
module Qualifiers = Bionav_mesh.Qualifiers
module Database = Bionav_store.Database
module Medline = Bionav_corpus.Medline
module Citation = Bionav_corpus.Citation

type dimension = Descriptor | Qualifier_facet

let dimension_name = function Descriptor -> "descriptor" | Qualifier_facet -> "qualifier"

(* Primary-qualifier assignment: the smallest qualifier id over all of the
   citation's descriptor/qualifier annotations. Deterministic and total, so
   the facet pages partition any result set exactly. *)
let primary_qualifier (c : Citation.t) =
  List.fold_left
    (fun acc (_, quals) ->
      List.fold_left
        (fun acc q -> match acc with Some best when best <= q -> acc | _ -> Some q)
        acc quals)
    None c.Citation.qualified

let unqualified_concept = Qualifiers.count + 1

let page_concept = function Some q -> q + 1 | None -> unqualified_concept

(* Node 0 = root, nodes 1..count = qualifier pages, node count+1 =
   "(unqualified)". One level deep: every page hangs off the root. *)
let build_facet_hierarchy () =
  let n = Qualifiers.count + 2 in
  let parent = Array.make n 0 in
  parent.(0) <- -1;
  let labels i =
    if i = 0 then "qualifiers"
    else if i = unqualified_concept then "(unqualified)"
    else Qualifiers.name (i - 1)
  in
  Hierarchy.of_parents ~labels parent

type facet = {
  fh : Hierarchy.t;
  page_of_citation : int array;  (* citation id -> facet concept *)
  totals : int array;  (* corpus-wide citations per facet concept *)
}

let build_facet medline =
  let fh = build_facet_hierarchy () in
  let n_cit = Medline.size medline in
  let page_of_citation = Array.make n_cit unqualified_concept in
  let totals = Array.make (Qualifiers.count + 2) 0 in
  Array.iter
    (fun c ->
      let page = page_concept (primary_qualifier c) in
      page_of_citation.(Citation.id c) <- page;
      totals.(page) <- totals.(page) + 1)
    (Medline.citations medline);
  (* The root carries no citations directly; its LT is the corpus size. *)
  totals.(0) <- n_cit;
  { fh; page_of_citation; totals }

type deriver = { database : Database.t; facet : facet Lazy.t option }

let deriver ?medline database =
  { database; facet = Option.map (fun m -> lazy (build_facet m)) medline }

let supports t = function Descriptor -> true | Qualifier_facet -> t.facet <> None

let facet_of t =
  match t.facet with
  | Some f -> Lazy.force f
  | None ->
      invalid_arg
        "Nav_space: the qualifier facet dimension needs the corpus citations (deriver ~medline)"

let facet_hierarchy t = (facet_of t).fh

let derive_facet t result =
  let f = facet_of t in
  (* Bucket the result citations by primary-qualifier page. Each citation
     lands in exactly one bucket, so the attachments partition [result]. *)
  let pages = Array.make (Qualifiers.count + 2) [] in
  Docset.fold
    (fun cit () ->
      let page = f.page_of_citation.(cit) in
      pages.(page) <- cit :: pages.(page))
    result ();
  let attachments = ref [] in
  Array.iteri
    (fun page cits ->
      if cits <> [] then
        (* Reversed accumulation of an increasing fold = decreasing; build
           the sorted array directly instead of re-sorting. *)
        let arr = Array.of_list cits in
        let n = Array.length arr in
        let sorted = Array.init n (fun i -> arr.(n - 1 - i)) in
        attachments :=
          (page, Docset.of_sorted_array_unchecked sorted) :: !attachments)
    pages;
  Nav_tree.build ~hierarchy:f.fh ~attachments:!attachments
    ~total_count:(fun c -> f.totals.(c))

let derivation_hist dim = Metrics.histogram ("bionav_space_derivation_ms_" ^ dimension_name dim)

let descriptor_hist = derivation_hist Descriptor
let qualifier_hist = derivation_hist Qualifier_facet

let derive t dim result =
  let hist = match dim with Descriptor -> descriptor_hist | Qualifier_facet -> qualifier_hist in
  let nav, ms =
    Timing.time (fun () ->
        match dim with
        | Descriptor -> Nav_tree.of_database t.database result
        | Qualifier_facet -> derive_facet t result)
  in
  Metrics.observe hist ms;
  nav
