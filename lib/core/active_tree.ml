open Bionav_util

type undo = { root : int; previous_members : int list; cut_children : int list }

type t = {
  nav : Nav_tree.t;
  comp_root : int array;  (* node -> root of its component *)
  visible : bool array;
  members : (int, int list) Hashtbl.t;  (* visible root -> ascending members *)
  mutable history : undo list;
}

let create nav =
  let n = Nav_tree.size nav in
  let comp_root = Array.make n 0 in
  let visible = Array.make n false in
  visible.(0) <- true;
  let members = Hashtbl.create 64 in
  Hashtbl.replace members 0 (List.init n Fun.id);
  { nav; comp_root; visible; members; history = [] }

let nav t = t.nav

let is_visible t i = t.visible.(i)

let visible t =
  let acc = ref [] in
  for i = Nav_tree.size t.nav - 1 downto 0 do
    if t.visible.(i) then acc := i :: !acc
  done;
  !acc

let component_root_of t i = t.comp_root.(i)

let component t r =
  if not t.visible.(r) then invalid_arg (Printf.sprintf "Active_tree.component: %d not visible" r);
  match Hashtbl.find_opt t.members r with
  | Some m -> m
  | None -> assert false

let component_size t r = List.length (component t r)

let component_results t r =
  Docset.union_many (List.map (Nav_tree.results t.nav) (component t r))

let component_distinct t r = Docset.cardinal (component_results t r)

(* The component's member ids as an interned set in the navigation arena:
   plan caches key on its O(1) content fingerprint instead of rehashing
   the member list. *)
let component_set t r =
  Docset.of_sorted_array_unchecked_in (Nav_tree.arena t.nav) (Array.of_list (component t r))

let is_expandable t r = t.visible.(r) && component_size t r > 1

let comp_tree t r = Nav_tree.comp_tree_of t.nav ~root:r ~members:(component t r)

let validate_cut t ~root ~cut_children =
  if not t.visible.(root) then
    invalid_arg (Printf.sprintf "Active_tree.apply_cut: %d not visible" root);
  if cut_children = [] then invalid_arg "Active_tree.apply_cut: empty cut";
  let member_set = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace member_set m ()) (component t root);
  List.iter
    (fun c ->
      if c = root then invalid_arg "Active_tree.apply_cut: cannot cut at the component root";
      if not (Hashtbl.mem member_set c) then
        invalid_arg (Printf.sprintf "Active_tree.apply_cut: %d not in component of %d" c root))
    cut_children;
  let rec check_antichain = function
    | [] -> ()
    | c :: rest ->
        List.iter
          (fun c' ->
            if Nav_tree.in_subtree t.nav ~root:c c' || Nav_tree.in_subtree t.nav ~root:c' c then
              invalid_arg
                (Printf.sprintf "Active_tree.apply_cut: cut children %d and %d overlap" c c'))
          rest;
        check_antichain rest
  in
  check_antichain (List.sort_uniq Int.compare cut_children)

let apply_cut t ~root ~cut_children =
  let cut_children = List.sort_uniq Int.compare cut_children in
  validate_cut t ~root ~cut_children;
  let old_members = component t root in
  (* Route each member to the cut child whose subtree contains it (at most
     one, by the antichain property), or keep it in the upper component. *)
  let buckets = Hashtbl.create 8 in
  List.iter (fun c -> Hashtbl.replace buckets c []) cut_children;
  let upper = ref [] in
  List.iter
    (fun m ->
      match List.find_opt (fun c -> Nav_tree.in_subtree t.nav ~root:c m) cut_children with
      | Some c ->
          Hashtbl.replace buckets c (m :: Hashtbl.find buckets c);
          t.comp_root.(m) <- c
      | None -> upper := m :: !upper)
    old_members;
  Hashtbl.replace t.members root (List.rev !upper);
  List.iter
    (fun c ->
      t.visible.(c) <- true;
      Hashtbl.replace t.members c (List.rev (Hashtbl.find buckets c)))
    cut_children;
  t.history <- { root; previous_members = old_members; cut_children } :: t.history;
  cut_children

let expand_static t root =
  if not t.visible.(root) then
    invalid_arg (Printf.sprintf "Active_tree.expand_static: %d not visible" root);
  let member_set = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace member_set m ()) (component t root);
  let kids = List.filter (Hashtbl.mem member_set) (Nav_tree.children t.nav root) in
  match kids with [] -> [] | _ :: _ -> apply_cut t ~root ~cut_children:kids

let backtrack t =
  match t.history with
  | [] -> false
  | { root; previous_members; cut_children } :: rest ->
      List.iter
        (fun c ->
          t.visible.(c) <- false;
          Hashtbl.remove t.members c)
        cut_children;
      List.iter (fun m -> t.comp_root.(m) <- root) previous_members;
      Hashtbl.replace t.members root previous_members;
      t.history <- rest;
      true

let visible_parent t i =
  let rec up j =
    let p = Nav_tree.parent t.nav j in
    if p = -1 then -1 else if t.visible.(p) then p else up p
  in
  up i

let render t =
  let buf = Buffer.create 1024 in
  (* Visualization depth = number of visible strict ancestors. *)
  let rec vis_depth i =
    match visible_parent t i with -1 -> 0 | p -> 1 + vis_depth p
  in
  List.iter
    (fun v ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s (%d)%s\n"
           (String.make (2 * vis_depth v) ' ')
           (Nav_tree.label t.nav v) (component_distinct t v)
           (if is_expandable t v then " >>>" else "")))
    (visible t);
  Buffer.contents buf
