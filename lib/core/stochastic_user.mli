(** A stochastic TOPDOWN user (the §III navigation model executed, not
    assumed).

    The paper's evaluation uses an oracle who knows the target. The cost
    model itself, however, describes a {e probabilistic} user: explore a
    component with probability proportional to its EXPLORE mass, keep
    expanding with the EXPAND probability, otherwise list results and stop.
    Sampling that user gives an independent measurement of expected
    navigation cost — the very quantity the EdgeCut optimization claims to
    minimize — without fixing a target in advance.

    One walk:
    + start at the root component;
    + while the current component is expandable and a [P_x] coin-flip says
      to continue: EXPAND it, pay 1 per action and 1 per revealed concept,
      then move to one of the resulting components chosen with probability
      proportional to the EXPLORE weights (the user may also stop here with
      the residual probability mass when weights vanish);
    + otherwise SHOWRESULTS: pay the component's distinct citation count.

    Walks are bounded by [max_steps] as a safety net. *)

type outcome = {
  expands : int;
  revealed : int;
  results_listed : int;
  total_cost : int;
  stopped_at : int;  (** The navigation node where the walk ended. *)
}

val walk :
  ?params:Probability.params ->
  ?max_steps:int ->
  rng:Bionav_util.Rng.t ->
  Navigation.t ->
  outcome
(** One sampled walk over the given (fresh) session ([max_steps] defaults
    to 1000). Session construction lives in the engine layer
    ([Bionav_engine.Engine.start]). *)

type summary = {
  walks : int;
  mean_cost : float;
  median_cost : float;
  mean_expands : float;
  mean_results : float;
}

val sample :
  ?params:Probability.params -> ?walks:int -> seed:int -> (unit -> Navigation.t) -> summary
(** Monte-Carlo estimate over [walks] (default 200) independent users;
    the factory supplies one fresh session per walk. *)
