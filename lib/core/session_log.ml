type action = Expand of int | Show_results of int | Backtrack

let pp_action ppf = function
  | Expand c -> Format.fprintf ppf "expand %d" c
  | Show_results c -> Format.fprintf ppf "show %d" c
  | Backtrack -> Format.fprintf ppf "backtrack"

type t = action list

let header = "# bionav session transcript v1"

let to_string actions =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun a ->
      Buffer.add_string buf (Format.asprintf "%a" pp_action a);
      Buffer.add_char buf '\n')
    actions;
  Buffer.contents buf

let parse_line lineno line =
  match String.split_on_char ' ' line with
  | [ "backtrack" ] -> Backtrack
  | [ "expand"; c ] -> (
      match int_of_string_opt c with
      | Some v -> Expand v
      | None -> invalid_arg (Printf.sprintf "Session_log: line %d: bad concept %S" lineno c))
  | [ "show"; c ] -> (
      match int_of_string_opt c with
      | Some v -> Show_results v
      | None -> invalid_arg (Printf.sprintf "Session_log: line %d: bad concept %S" lineno c))
  | _ -> invalid_arg (Printf.sprintf "Session_log: line %d: unknown action %S" lineno line)

let of_string text =
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter (fun (_, line) -> line <> "" && line.[0] <> '#')
  |> List.map (fun (i, line) -> parse_line i line)

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

type recorder = { session : Navigation.t; mutable rev_actions : action list }

let record session = { session; rev_actions = [] }

let concept_of r node = Nav_tree.concept_id (Active_tree.nav (Navigation.active r.session)) node

let expand r node =
  let revealed = Navigation.expand r.session node in
  if revealed <> [] then r.rev_actions <- Expand (concept_of r node) :: r.rev_actions;
  revealed

let show_results r node =
  let results = Navigation.show_results r.session node in
  r.rev_actions <- Show_results (concept_of r node) :: r.rev_actions;
  results

let backtrack r =
  let ok = Navigation.backtrack r.session in
  if ok then r.rev_actions <- Backtrack :: r.rev_actions;
  ok

let transcript r = List.rev r.rev_actions

type replay_outcome = { applied : int; skipped : int; stats : Navigation.stats }

let replay session actions =
  let active = Navigation.active session in
  let nav = Active_tree.nav active in
  let applied = ref 0 and skipped = ref 0 in
  let node_of concept =
    match Nav_tree.node_of_concept nav concept with
    | Some node when Active_tree.is_visible active node -> Some node
    | Some _ | None -> None
  in
  List.iter
    (fun action ->
      let ok =
        match action with
        | Expand concept -> (
            match node_of concept with
            | Some node -> Navigation.expand session node <> []
            | None -> false)
        | Show_results concept -> (
            match node_of concept with
            | Some node ->
                ignore (Navigation.show_results session node);
                true
            | None -> false)
        | Backtrack -> Navigation.backtrack session
      in
      if ok then incr applied else incr skipped)
    actions;
  { applied = !applied; skipped = !skipped; stats = Navigation.stats session }
