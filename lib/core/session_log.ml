type action = Expand of int | Show_results of int | Backtrack | Refine of int | Unrefine | Facet

let pp_action ppf = function
  | Expand c -> Format.fprintf ppf "expand %d" c
  | Show_results c -> Format.fprintf ppf "show %d" c
  | Backtrack -> Format.fprintf ppf "backtrack"
  | Refine c -> Format.fprintf ppf "refine %d" c
  | Unrefine -> Format.fprintf ppf "unrefine"
  | Facet -> Format.fprintf ppf "facet"

type event =
  | Expanded of { concept : int; revealed : int list }
  | Shown of { concept : int; n_listed : int }
  | Backtracked
  | Refined of { concept : int }
  | Unrefined
  | Faceted

let action_of_event = function
  | Expanded { concept; _ } -> Expand concept
  | Shown { concept; _ } -> Show_results concept
  | Backtracked -> Backtrack
  | Refined { concept } -> Refine concept
  | Unrefined -> Unrefine
  | Faceted -> Facet

type t = action list

let header = "# bionav session transcript v1"
let header_v2 = "# bionav session transcript v2"
let supported_versions = [ 1; 2 ]

let to_string actions =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header;
  Buffer.add_char buf '\n';
  List.iter
    (fun a ->
      (* The v1 wire format predates navigation spaces; silently dropping a
         refinement would corrupt the transcript's meaning (every later
         action addresses the wrong space), so refuse loudly. *)
      (match a with
      | Refine _ | Unrefine | Facet ->
          invalid_arg
            (Format.asprintf
               "Session_log.to_string: action %a is not representable in the v1 wire format; \
                write a v2 transcript (events_to_string)"
               pp_action a)
      | Expand _ | Show_results _ | Backtrack -> ());
      Buffer.add_string buf (Format.asprintf "%a" pp_action a);
      Buffer.add_char buf '\n')
    actions;
  Buffer.contents buf

let events_to_string events =
  let buf = Buffer.create 256 in
  Buffer.add_string buf header_v2;
  Buffer.add_char buf '\n';
  List.iter
    (fun e ->
      (match e with
      | Expanded { concept; revealed } ->
          Buffer.add_string buf
            (Printf.sprintf "expand %d %d%s" concept (List.length revealed)
               (String.concat "" (List.map (Printf.sprintf " %d") revealed)))
      | Shown { concept; n_listed } ->
          Buffer.add_string buf (Printf.sprintf "show %d %d" concept n_listed)
      | Backtracked -> Buffer.add_string buf "backtrack"
      | Refined { concept } -> Buffer.add_string buf (Printf.sprintf "refine %d" concept)
      | Unrefined -> Buffer.add_string buf "unrefine"
      | Faceted -> Buffer.add_string buf "facet");
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf

(* --- parsing ------------------------------------------------------------ *)

let int_field lineno what s =
  match int_of_string_opt s with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Session_log: line %d: bad %s %S" lineno what s)

let v1_actions = "expand, show, backtrack"
let v2_actions = "expand, show, backtrack, refine, unrefine, facet"

let parse_line_v1 lineno line =
  match String.split_on_char ' ' line with
  | [ "backtrack" ] -> Backtracked
  | [ "expand"; c ] -> Expanded { concept = int_field lineno "concept" c; revealed = [] }
  | [ "show"; c ] -> Shown { concept = int_field lineno "concept" c; n_listed = 0 }
  | _ ->
      invalid_arg
        (Printf.sprintf "Session_log: line %d: unknown v1 action %S (supported: %s)" lineno line
           v1_actions)

(* v2 lines carry the action's outcome: [expand <c> <n> <id>*] lists the
   [n] concepts the EXPAND revealed (the count must match — a truncated
   line is corruption, not a shorter reveal), [show <c> <n>] the number of
   citations listed. *)
let parse_line_v2 lineno line =
  match String.split_on_char ' ' line with
  | [ "backtrack" ] -> Backtracked
  | "expand" :: c :: n :: ids ->
      let concept = int_field lineno "concept" c in
      let n = int_field lineno "reveal count" n in
      let revealed = List.map (int_field lineno "revealed concept") ids in
      if List.length revealed <> n then
        invalid_arg
          (Printf.sprintf "Session_log: line %d: expand lists %d revealed concepts but declares %d"
             lineno (List.length revealed) n);
      Expanded { concept; revealed }
  | [ "show"; c; n ] ->
      Shown
        { concept = int_field lineno "concept" c; n_listed = int_field lineno "listed count" n }
  | [ "refine"; c ] -> Refined { concept = int_field lineno "concept" c }
  | [ "unrefine" ] -> Unrefined
  | [ "facet" ] -> Faceted
  | _ ->
      invalid_arg
        (Printf.sprintf "Session_log: line %d: unknown v2 action %S (supported: %s)" lineno line
           v2_actions)

let version_prefix = "# bionav session transcript v"

let version_of_header lineno line =
  let tail =
    String.sub line (String.length version_prefix)
      (String.length line - String.length version_prefix)
  in
  match int_of_string_opt tail with
  | Some v when List.mem v supported_versions -> v
  | Some _ | None ->
      invalid_arg
        (Printf.sprintf
           "Session_log: line %d: unsupported transcript version %S (supported: %s)" lineno tail
           (String.concat ", " (List.map (Printf.sprintf "v%d") supported_versions)))

(* A transcript declares its version in the header; files with no header
   parse as v1 (the original wire format). A second, conflicting header
   mid-file is corruption (e.g. two transcripts concatenated), not a
   comment. *)
let events_of_string text =
  let version = ref None in
  String.split_on_char '\n' text
  |> List.mapi (fun i line -> (i + 1, String.trim line))
  |> List.filter_map (fun (lineno, line) ->
         if line = "" then None
         else if String.length line >= String.length version_prefix
                 && String.sub line 0 (String.length version_prefix) = version_prefix then begin
           let v = version_of_header lineno line in
           (match !version with
           | Some seen when seen <> v ->
               invalid_arg
                 (Printf.sprintf
                    "Session_log: line %d: transcript declares v%d after v%d (mixed versions)"
                    lineno v seen)
           | Some _ | None -> version := Some v);
           None
         end
         else if line.[0] = '#' then None
         else
           Some
             (match Option.value !version ~default:1 with
             | 2 -> parse_line_v2 lineno line
             | _ -> parse_line_v1 lineno line))

let of_string text = List.map action_of_event (events_of_string text)

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let save_events events path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (events_to_string events))

let load_string path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load path = of_string (load_string path)
let load_events path = events_of_string (load_string path)

type recorder = { session : Navigation.t; mutable rev_events : event list }

let record session = { session; rev_events = [] }

let concept_of r node = Nav_tree.concept_id (Active_tree.nav (Navigation.active r.session)) node

let expand r node =
  let revealed = Navigation.expand r.session node in
  if revealed <> [] then
    r.rev_events <-
      Expanded { concept = concept_of r node; revealed = List.map (concept_of r) revealed }
      :: r.rev_events;
  revealed

let show_results r node =
  let results = Navigation.show_results r.session node in
  r.rev_events <-
    Shown { concept = concept_of r node; n_listed = Bionav_util.Docset.cardinal results }
    :: r.rev_events;
  results

let backtrack r =
  let ok = Navigation.backtrack r.session in
  if ok then r.rev_events <- Backtracked :: r.rev_events;
  ok

let events r = List.rev r.rev_events
let transcript r = List.map action_of_event (events r)

type replay_outcome = { applied : int; skipped : int; stats : Navigation.stats }

let replay session actions =
  let active = Navigation.active session in
  let nav = Active_tree.nav active in
  let applied = ref 0 and skipped = ref 0 in
  let node_of concept =
    match Nav_tree.node_of_concept nav concept with
    | Some node when Active_tree.is_visible active node -> Some node
    | Some _ | None -> None
  in
  List.iter
    (fun action ->
      let ok =
        match action with
        | Expand concept -> (
            match node_of concept with
            | Some node -> Navigation.expand session node <> []
            | None -> false)
        | Show_results concept -> (
            match node_of concept with
            | Some node ->
                ignore (Navigation.show_results session node);
                true
            | None -> false)
        | Backtrack -> Navigation.backtrack session
        | Refine _ | Unrefine | Facet ->
            (* A [Navigation.t] is a single navigation space; space-changing
               actions replay only at the engine layer, so here they skip. *)
            false
      in
      if ok then incr applied else incr skipped)
    actions;
  { applied = !applied; skipped = !skipped; stats = Navigation.stats session }
