type report = {
  cut_children : int list;
  reduced_size : int;
  reduced_cost : float;
  elapsed_ms : float;
}

let default_k = 10

type plan = {
  plan_tree : Comp_tree.t;  (* the tree the solver ran on *)
  reduced : Reduced_tree.t option;  (* Some when plan_tree is a reduction *)
  state : Opt_edgecut.state;
  mask : int;  (* plan_tree nodes still in the upper component *)
}

let popcount = Bionav_util.Bits.popcount

let plan_usable plan = popcount plan.mask >= 2

(* Translate plan-tree cut children to original-component-tree indices. *)
let to_original plan cut =
  match plan.reduced with
  | None -> cut
  | Some r -> Reduced_tree.map_cut_children r cut

(* One solver round on the plan's current mask; assumes [plan_usable]. *)
let solve_plan plan =
  let ctx = Opt_edgecut.context plan.state in
  let (solution, next_mask), elapsed_ms =
    Bionav_util.Timing.time (fun () ->
        let solution = Opt_edgecut.solve_mask plan.state plan.mask in
        let lowered =
          List.fold_left
            (fun acc v -> acc lor Cost_model.subtree_mask ctx ~mask:plan.mask v)
            0 solution.Opt_edgecut.cut_children
        in
        (solution, plan.mask land lnot lowered))
  in
  let report =
    {
      cut_children = to_original plan solution.Opt_edgecut.cut_children;
      reduced_size = popcount plan.mask;
      reduced_cost = solution.Opt_edgecut.cost;
      elapsed_ms;
    }
  in
  (report, { plan with mask = next_mask })

let original_tree plan =
  match plan.reduced with None -> plan.plan_tree | Some r -> Reduced_tree.original r

let replan plan = if plan_usable plan then Some (solve_plan plan) else None

let fresh_plan ?model ?(k = default_k) tree =
  if Comp_tree.size tree < 2 then invalid_arg "Heuristic.best_cut: tree must have >= 2 nodes";
  if k < 2 then invalid_arg "Heuristic.best_cut: k must be >= 2";
  if k > Opt_edgecut.max_size then
    invalid_arg
      (Printf.sprintf "Heuristic.best_cut: k = %d exceeds Opt-EdgeCut's limit %d" k
         Opt_edgecut.max_size);
  if Comp_tree.size tree <= k then begin
    let ctx = Cost_model.create ?model tree in
    let state = Opt_edgecut.init ctx in
    Some { plan_tree = tree; reduced = None; state; mask = Cost_model.full_mask ctx }
  end
  else begin
    let partition = Partition.run_k tree ~k in
    let reduced = Reduced_tree.build tree partition in
    let rt = Reduced_tree.tree reduced in
    if Comp_tree.size rt < 2 then None
    else begin
      let ctx = Cost_model.create ?model rt in
      let state = Opt_edgecut.init ctx in
      Some { plan_tree = rt; reduced = Some reduced; state; mask = Cost_model.full_mask ctx }
    end
  end

let cut_hist = Bionav_util.Metrics.histogram "bionav_heuristic_cut_ms"

let best_cut_with_plan ?model ?k tree =
  let (report, plan), total_ms =
    Bionav_util.Timing.time (fun () ->
        match fresh_plan ?model ?k tree with
        | Some plan ->
            Logs.debug (fun m ->
                m "heuristic: component of %d nodes reduced to %d supernodes"
                  (Comp_tree.size tree) (Comp_tree.size plan.plan_tree));
            solve_plan plan
        | None ->
            (* Degenerate partitioning (everything merged into one
               supernode): fall back to cutting every child of the root,
               which is always a valid EdgeCut; the returned plan is
               immediately exhausted. *)
            let cut = Comp_tree.children tree (Comp_tree.root tree) in
            let all = Comp_tree.all_results tree in
            let total = max (Comp_tree.total tree 0) (Bionav_util.Docset.cardinal all) in
            let ctx = Cost_model.create ?model (Comp_tree.singleton ~results:all ~total ()) in
            let report =
              {
                cut_children = cut;
                reduced_size = 1;
                reduced_cost = Float.of_int (Comp_tree.size tree);
                elapsed_ms = 0.;
              }
            in
            ( report,
              { plan_tree = tree; reduced = None; state = Opt_edgecut.init ctx; mask = 0 } ))
  in
  (* Report the full wall-clock including partitioning. *)
  Bionav_util.Metrics.observe cut_hist total_ms;
  ({ report with elapsed_ms = total_ms }, plan)

let best_cut ?model ?k tree = fst (best_cut_with_plan ?model ?k tree)
