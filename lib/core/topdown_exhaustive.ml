open Bionav_util

let is_ancestor tree a b =
  let rec climb x =
    let p = Comp_tree.parent tree x in
    if p = -1 then false else p = a || climb p
  in
  a <> b && climb b

let validate_cut tree cut =
  if cut = [] then invalid_arg "Topdown_exhaustive: empty cut";
  List.iter
    (fun v ->
      if v <= 0 || v >= Comp_tree.size tree then
        invalid_arg (Printf.sprintf "Topdown_exhaustive: bad cut child %d" v))
    cut;
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if a <> b && (is_ancestor tree a b || is_ancestor tree b a) then
            invalid_arg "Topdown_exhaustive: cut children overlap")
        cut)
    cut

let components_of_cut tree cut =
  let cut = List.sort_uniq Int.compare cut in
  validate_cut tree cut;
  let owned = Array.make (Comp_tree.size tree) false in
  let lowers =
    List.map
      (fun v ->
        let nodes = Comp_tree.subtree_nodes tree v in
        List.iter (fun x -> owned.(x) <- true) nodes;
        nodes)
      cut
  in
  let upper =
    List.filter (fun x -> not owned.(x)) (List.init (Comp_tree.size tree) Fun.id)
  in
  upper :: lowers

let cost_of_cut tree cut =
  let comps = components_of_cut tree cut in
  let j = List.length comps in
  let total_distinct =
    List.fold_left
      (fun acc comp -> acc + Docset.cardinal (Comp_tree.distinct_of_nodes tree comp))
      0 comps
  in
  float_of_int j +. (float_of_int total_distinct /. float_of_int j)

let duplicates_within tree cut =
  let comps = components_of_cut tree cut in
  let attached =
    List.fold_left
      (fun acc comp ->
        acc + List.fold_left (fun a v -> a + Comp_tree.result_count tree v) 0 comp)
      0 comps
  in
  let distinct =
    List.fold_left
      (fun acc comp -> acc + Docset.cardinal (Comp_tree.distinct_of_nodes tree comp))
      0 comps
  in
  attached - distinct

(* All valid antichains of non-root nodes, as lists; includes the empty
   antichain for internal composition. *)
let antichains tree =
  let rec options v =
    let per_child = List.map options (Comp_tree.children tree v) in
    let combos =
      List.fold_left
        (fun acc opts -> List.concat_map (fun a -> List.map (fun b -> a @ b) opts) acc)
        [ [] ] per_child
    in
    if v = Comp_tree.root tree then combos else [ v ] :: combos
  in
  options (Comp_tree.root tree)

let best_cut tree ~components =
  if components < 2 then invalid_arg "Topdown_exhaustive.best_cut: components must be >= 2";
  let wanted = components - 1 in
  List.fold_left
    (fun best cut ->
      if List.length cut <> wanted then best
      else begin
        let cost = cost_of_cut tree cut in
        match best with
        | Some (_, c) when c <= cost -> best
        | Some _ | None -> Some (cut, cost)
      end)
    None (antichains tree)

let best_cut_any tree =
  if Comp_tree.size tree < 2 then
    invalid_arg "Topdown_exhaustive.best_cut_any: tree must have >= 2 nodes";
  let best = ref None in
  List.iter
    (fun cut ->
      if cut <> [] then begin
        let cost = cost_of_cut tree cut in
        match !best with
        | Some (_, c) when c <= cost -> ()
        | Some _ | None -> best := Some (cut, cost)
      end)
    (antichains tree);
  match !best with Some r -> r | None -> assert false

let max_duplicates tree ~components =
  if components < 2 then
    invalid_arg "Topdown_exhaustive.max_duplicates: components must be >= 2";
  let wanted = components - 1 in
  List.fold_left
    (fun best cut ->
      if List.length cut <> wanted then best
      else begin
        let d = duplicates_within tree cut in
        match best with Some b when b >= d -> best | Some _ | None -> Some d
      end)
    None (antichains tree)
