open Bionav_util

type strategy =
  | Heuristic of { k : int; model : Probability.model; reuse : bool }
  | Faceted of { k : int; model : Probability.model; reuse : bool }
  | Optimal of { model : Probability.model }
  | Static
  | Static_paged of { page_size : int }

let bionav ?(k = Heuristic.default_k) ?params ?model ?(reuse = false) () =
  Heuristic { k; model = Probability.model_of ?params ?model (); reuse }

let faceted ?(k = Heuristic.default_k) ?params ?model ?(reuse = false) () =
  let model =
    match (model, params) with
    | Some m, _ -> m
    | None, Some p -> Probability.static ~params:p ()
    | None, None -> Probability.facet_model
  in
  Faceted { k; model; reuse }

let optimal ?params ?model () = Optimal { model = Probability.model_of ?params ?model () }

let strategy_model = function
  | Heuristic { model; _ } | Faceted { model; _ } | Optimal { model } -> Some model
  | Static | Static_paged _ -> None

let model_fingerprint = function
  | Heuristic { model; _ } | Optimal { model } -> model.Probability.fingerprint
  | Faceted { model; _ } -> "faceted/" ^ model.Probability.fingerprint
  | Static -> "static-interface"
  | Static_paged { page_size } -> Printf.sprintf "static-paged/%d" page_size

type expand_record = {
  node : int;
  n_revealed : int;
  elapsed_ms : float;
  reduced_size : int;
  degraded : bool;
}

type stats = {
  expands : int;
  revealed : int;
  results_listed : int;
  history : expand_record list;
}

let navigation_cost s = s.expands + s.revealed

let total_cost s = s.expands + s.revealed + s.results_listed

type plan_source = {
  find_plan : root:int -> members:Docset.t -> int list option;
  store_plan : root:int -> members:Docset.t -> cut:int list -> unit;
}

type t = {
  active : Active_tree.t;
  strategy : strategy;
  mutable stats : stats;
  plans : (int, Heuristic.plan) Hashtbl.t;
      (* visible node -> reusable solver state for its component *)
  mutable plan_source : plan_source option;
  mutable on_expand : (node:int -> revealed:int list -> unit) option;
  mutable budget : (unit -> unit -> bool) option;
      (* called at EXPAND entry; returns the over-budget check consulted
         before any solver runs (see set_budget) *)
}

let start strategy nav_tree =
  {
    active = Active_tree.create nav_tree;
    strategy;
    stats = { expands = 0; revealed = 0; results_listed = 0; history = [] };
    plans = Hashtbl.create 16;
    plan_source = None;
    on_expand = None;
    budget = None;
  }

let active t = t.active
let strategy t = t.strategy
let stats t = t.stats
let set_plan_source t src = t.plan_source <- src
let set_on_expand t f = t.on_expand <- f
let set_budget t f = t.budget <- f

(* Translate component-tree cut children (indices) back to navigation nodes
   through the component tree's tags. *)
let nav_cut_children comp cut = List.map (Comp_tree.tag comp) cut

(* The footnote-2 "more button" interface: the next [page_size] children of
   [root] still hidden in its component, most results first. *)
let next_page t root page_size =
  let active = t.active in
  let nav = Active_tree.nav active in
  let member_set = Hashtbl.create 64 in
  List.iter (fun m -> Hashtbl.replace member_set m ()) (Active_tree.component active root);
  let hidden_children = List.filter (Hashtbl.mem member_set) (Nav_tree.children nav root) in
  let by_count_desc =
    List.sort
      (fun a b -> Int.compare (Nav_tree.subtree_distinct nav b) (Nav_tree.subtree_distinct nav a))
      hidden_children
  in
  List.filteri (fun i _ -> i < page_size) by_count_desc

let degraded_counter = Metrics.counter "bionav_resilience_degraded_expands_total"

let heuristic_cut t root ~over_budget ~k ~model ~reuse =
  let fresh () =
    let comp, _map = Active_tree.comp_tree t.active root in
    let report, plan = Heuristic.best_cut_with_plan ~model ~k comp in
    if reuse then Hashtbl.replace t.plans root plan;
    ( `Cut (nav_cut_children comp report.Heuristic.cut_children),
      report.Heuristic.elapsed_ms,
      report.Heuristic.reduced_size,
      false )
  in
  let computed () =
    if not reuse then fresh ()
    else
      match Hashtbl.find_opt t.plans root with
      | Some plan -> (
          match Heuristic.replan plan with
          | Some (report, next_plan) ->
              Logs.debug (fun m -> m "navigation: reused plan for node %d" root);
              Hashtbl.replace t.plans root next_plan;
              (* Cut children are indices of the plan's original component
                 tree, whose tags are navigation nodes. *)
              let orig = Heuristic.original_tree plan in
              ( `Cut (nav_cut_children orig report.Heuristic.cut_children),
                report.Heuristic.elapsed_ms,
                report.Heuristic.reduced_size,
                false )
          | None ->
              Hashtbl.remove t.plans root;
              fresh ())
      | None -> fresh ()
  in
  (* Graceful degradation: once the EXPAND budget is exhausted (and no
     memoized plan could answer for free), serve the k highest-count
     children — a Static_paged-style cut — instead of completing
     Heuristic-ReducedOpt. The record is tagged so callers can tell. *)
  let compute_or_degrade () =
    if over_budget () then begin
      Metrics.incr degraded_counter;
      Logs.debug (fun m -> m "navigation: budget exhausted, degraded cut for node %d" root);
      (`Cut (next_page t root k), 0., 0, true)
    end
    else computed ()
  in
  match t.plan_source with
  | None -> compute_or_degrade ()
  | Some src -> (
      let members = Active_tree.component_set t.active root in
      match src.find_plan ~root ~members with
      | Some (_ :: _ as cut) ->
          Logs.debug (fun m -> m "navigation: injected plan for node %d" root);
          (`Cut cut, 0., 0, false)
      | Some [] | None ->
          let ((action, _, _, degraded) as result) = compute_or_degrade () in
          (* A degraded cut is not a Heuristic-ReducedOpt solution; caching
             it would poison future sessions with static-quality plans. *)
          (match action with
          | `Cut (_ :: _ as cut) when not degraded -> src.store_plan ~root ~members ~cut
          | `Cut _ | `Static -> ());
          result)

let compute_cut t ~over_budget root =
  match t.strategy with
  | Static -> (`Static, 0., 0, false)
  | Static_paged { page_size } ->
      if page_size < 1 then invalid_arg "Navigation: page_size must be >= 1";
      (`Cut (next_page t root page_size), 0., 0, false)
  | Heuristic { k; model; reuse } | Faceted { k; model; reuse } ->
      heuristic_cut t root ~over_budget ~k ~model ~reuse
  | Optimal { model } ->
      let comp, _map = Active_tree.comp_tree t.active root in
      let (solution : Opt_edgecut.solution), elapsed =
        Timing.time (fun () -> Opt_edgecut.solve ~model comp)
      in
      ( `Cut (nav_cut_children comp solution.Opt_edgecut.cut_children),
        elapsed,
        Comp_tree.size comp,
        false )

let expand_hist = Metrics.histogram "bionav_expand_latency_ms"
let expands_counter = Metrics.counter "bionav_expands_total"
let revealed_counter = Metrics.counter "bionav_concepts_revealed_total"

let expand t root =
  if not (Active_tree.is_expandable t.active root) then []
  else begin
    let over_budget =
      match t.budget with None -> fun () -> false | Some start -> start ()
    in
    let (revealed, elapsed, reduced_size, degraded), total_ms =
      Timing.time (fun () ->
          let action, elapsed, reduced_size, degraded = compute_cut t ~over_budget root in
          let revealed =
            match action with
            | `Static -> Active_tree.expand_static t.active root
            | `Cut [] -> []
            | `Cut (_ :: _ as cut_children) -> Active_tree.apply_cut t.active ~root ~cut_children
          in
          (revealed, elapsed, reduced_size, degraded))
    in
    if revealed = [] then []
    else begin
    let record =
      {
        node = root;
        n_revealed = List.length revealed;
        elapsed_ms = elapsed;
        reduced_size;
        degraded;
      }
    in
    Metrics.observe expand_hist total_ms;
    Metrics.incr expands_counter;
    Metrics.incr ~by:record.n_revealed revealed_counter;
    t.stats <-
      {
        t.stats with
        expands = t.stats.expands + 1;
        revealed = t.stats.revealed + record.n_revealed;
        history = record :: t.stats.history;
      };
    (match t.on_expand with None -> () | Some f -> f ~node:root ~revealed);
    revealed
    end
  end

let show_results t root =
  let results = Active_tree.component_results t.active root in
  t.stats <- { t.stats with results_listed = t.stats.results_listed + Docset.cardinal results };
  results

let backtrack t = Active_tree.backtrack t.active
