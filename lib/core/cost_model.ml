type t = {
  tree : Comp_tree.t;
  model : Probability.model;
  norm : float;
  distinct_memo : (int, int) Hashtbl.t;
  expand_memo : (int, float) Hashtbl.t;
}

let max_size = 30

let create ?(model = Probability.default_model) ?norm tree =
  if Comp_tree.size tree > max_size then
    invalid_arg
      (Printf.sprintf "Cost_model.create: tree has %d nodes (max %d)" (Comp_tree.size tree)
         max_size);
  let norm = match norm with Some n -> n | None -> model.Probability.normalizer tree in
  { tree; model; norm; distinct_memo = Hashtbl.create 256; expand_memo = Hashtbl.create 256 }

let tree t = t.tree
let model t = t.model
let params t = t.model.Probability.params
let norm t = t.norm

let full_mask t = (1 lsl Comp_tree.size t.tree) - 1

let members t mask =
  let n = Comp_tree.size t.tree in
  let rec go i acc =
    if i < 0 then acc
    else if mask land (1 lsl i) <> 0 then go (i - 1) (i :: acc)
    else go (i - 1) acc
  in
  go (n - 1) []

let mask_of nodes =
  List.fold_left
    (fun m i ->
      if i < 0 || i >= max_size then
        invalid_arg
          (Printf.sprintf "Cost_model.mask_of: node index %d outside [0, %d)" i max_size);
      m lor (1 lsl i))
    0 nodes

let root_of _t mask =
  if mask = 0 then invalid_arg "Cost_model.root_of: empty mask";
  (* Node indexing puts parents before children, so the smallest index in a
     connected component is its root. *)
  Bionav_util.Bits.lowest_bit mask

let subtree_mask t ~mask v =
  let rec go v acc =
    let acc = acc lor (1 lsl v) in
    List.fold_left
      (fun acc c -> if mask land (1 lsl c) <> 0 then go c acc else acc)
      acc (Comp_tree.children t.tree v)
  in
  go v 0

let distinct t mask =
  match Hashtbl.find_opt t.distinct_memo mask with
  | Some d -> d
  | None ->
      let d =
        Bionav_util.Docset.cardinal (Comp_tree.distinct_of_nodes t.tree (members t mask))
      in
      Hashtbl.add t.distinct_memo mask d;
      d

let p_explore t mask = t.model.Probability.explore ~norm:t.norm t.tree (members t mask)

let p_expand t mask =
  match Hashtbl.find_opt t.expand_memo mask with
  | Some p -> p
  | None ->
      let p =
        t.model.Probability.expand t.tree ~members:(members t mask) ~distinct:(distinct t mask)
      in
      Hashtbl.add t.expand_memo mask p;
      p

let underlying t mask =
  List.fold_left (fun acc i -> acc + Comp_tree.multiplicity t.tree i) 0 (members t mask)

let cost_leaf t mask = float_of_int (distinct t mask)

let cost_unstructured t mask =
  let px = p_expand t mask in
  if px <= 0. then cost_leaf t mask
  else begin
    let p = params t in
    let future = Probability.future_drilldown_cost p (underlying t mask) in
    let show = (1. -. px) *. float_of_int (distinct t mask) in
    show +. (px *. (p.Probability.expand_cost +. future))
  end

let cost t ~mask ~cut_term =
  let px = p_expand t mask in
  let show = (1. -. px) *. float_of_int (distinct t mask) in
  let expand = px *. ((params t).Probability.expand_cost +. cut_term) in
  show +. expand

let branch_probability t ~parent_mask ~branch_mask =
  let pe_parent = p_explore t parent_mask in
  if pe_parent <= 0. then 0.
  else Float.min 1.0 (p_explore t branch_mask /. pe_parent)

let expand_cost t = (params t).Probability.expand_cost
