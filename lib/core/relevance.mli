(** Relevance ranking of revealed concepts.

    "The concepts are ranked by their relevance to the user query" (paper
    §I, describing the BioNav interface). The natural relevance signal the
    system already computes is the EXPLORE mass: the query selectivity
    [Σ |L(n)| / |LT(n)|] of a visible node's component, normalized over the
    nodes being ranked. This module orders visible nodes (or arbitrary
    components) by that signal for display purposes — it does not affect
    the EdgeCut choice, which already optimizes over the same quantities. *)

val component_weight : Active_tree.t -> int -> float
(** Raw explore mass of a visible node's component: [Σ |L| / |LT|] over its
    members. @raise Invalid_argument if the node is not visible. *)

val rank_visible : Active_tree.t -> int list -> int list
(** Order visible nodes by descending component weight (ties by ascending
    node id). *)

val ranked_children : Active_tree.t -> int -> int list
(** The visible children (in the Definition 5 embedding) of a visible node,
    relevance-ranked — what one row of the interface displays. *)

val render_ranked : Active_tree.t -> string
(** The Definition 5 visualization with each sibling group ordered by
    relevance instead of hierarchy order. *)
