(** The navigation tree (paper Definitions 1-2).

    Query results are attached to the concepts of the hierarchy (the Initial
    Navigation Tree); the navigation tree is its {e maximum embedding} with
    every empty-result node removed except the root: an empty internal node
    is replaced by its (kept) children, an empty leaf disappears, and
    ancestor/descendant relationships are preserved. Nodes get dense ids
    [0 .. size-1] in preorder, node 0 being the root. *)

type t

val build :
  hierarchy:Bionav_mesh.Hierarchy.t ->
  attachments:(int * Bionav_util.Docset.t) list ->
  total_count:(int -> int) ->
  t
(** [attachments] maps hierarchy concept ids to the result citations
    attached to them (empty sets allowed, they are dropped); [total_count]
    supplies corpus-wide counts [LT]. @raise Invalid_argument on an unknown
    concept id, a duplicate, or [total_count c < |L(c)|]. *)

val of_database : Bionav_store.Database.t -> Bionav_util.Docset.t -> t
(** The on-line construction path: look up the concepts of every result
    citation in the BioNav database and embed. *)

val arena : t -> Bionav_util.Docset_arena.t
(** The arena owning every set this tree (and component trees extracted
    from it) hands out; observability reads its {!Bionav_util.Docset_arena.stats}. *)

val size : t -> int
val root : t -> int
val parent : t -> int -> int
(** -1 for the root. *)

val children : t -> int -> int list
val depth : t -> int -> int
val is_leaf : t -> int -> bool
val concept_id : t -> int -> int
(** The hierarchy concept behind a navigation node. *)

val label : t -> int -> string
val results : t -> int -> Bionav_util.Docset.t
(** [L(n)]: citations attached directly to the node. Non-empty for every
    node except possibly the root. *)

val result_count : t -> int -> int
val total : t -> int -> int
(** [LT(n)]. *)

val subtree_distinct : t -> int -> int
(** Distinct citations in the subtree rooted at the node — the count a
    static interface shows next to each label (paper Fig. 1). *)

val subtree_results : t -> int -> Bionav_util.Docset.t
(** The distinct citations of the subtree rooted at the node, as a set —
    the result universe a query-by-navigation refinement on the node
    narrows to. Already computed (and interned) by [build]; O(1). *)

val node_of_concept : t -> int -> int option
(** Navigation node carrying the given hierarchy concept, if any. *)

val distinct_results : t -> int
(** Distinct citations in the whole tree = the query result size. *)

val total_attached : t -> int
(** Σ |L(n)| — the "citations with duplicates" count of Table I. *)

val height : t -> int
val max_width : t -> int

val in_subtree : t -> root:int -> int -> bool
(** O(1) preorder-interval test, root-inclusive. *)

val comp_tree_of : t -> root:int -> members:int list -> Comp_tree.t * int array
(** Extracts a component tree from a connected member set containing
    [root]: returns the component tree (tags = navigation node ids) and the
    index-to-navigation-node mapping. [members] may be in any order.
    @raise Invalid_argument if the set is not connected at [root]. *)

val pp : Format.formatter -> t -> unit
(** Indented rendering with subtree-distinct counts (the Fig. 1 view). *)
