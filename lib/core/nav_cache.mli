(** A bounded cache of navigation trees, keyed by query string.

    Paper §VII: the navigation tree "is done once for each user query" —
    the expensive on-line step (attachment lookup over every result citation
    plus the maximum embedding). Exploratory users reissue queries, so the
    navigation subsystem memoizes trees behind an LRU. *)

type t

val create : ?capacity:int -> build:(string -> Nav_tree.t) -> unit -> t
(** [capacity] defaults to 32. [build] runs the query and constructs the
    tree (typically [esearch] + {!Nav_tree.of_database}). Queries are
    normalized (trimmed, lowercased) before keying. *)

val normalize : string -> string
(** The key normalization {!get} applies: trim, then lowercase. Exposed so
    sibling caches keyed by query (e.g. the prefetch plan cache) agree on
    what "the same query" means. *)

val get : t -> string -> Nav_tree.t
(** Cached or freshly built. *)

val put : t -> string -> Nav_tree.t -> unit
(** Seed the cache with an externally built tree under the normalized
    query key (warm start); replaces any existing entry. Counts neither as
    a hit nor a miss. *)

val find : t -> string -> Nav_tree.t option
(** Lookup under a caller-composed key (used verbatim, {e not}
    normalized), with no build fallback — the path derived navigation
    spaces take: their keys embed a space path the [build] closure could
    not run as a query. Counts as a hit or miss like {!get}. *)

val fold_trees : t -> (Nav_tree.t -> 'a -> 'a) -> 'a -> 'a
(** Fold over the cached trees in unspecified order without touching
    recency or hit/miss statistics — for observability walks such as the
    engine's docset-arena gauges. *)

val hit_rate : t -> float
(** Hits / lookups since creation or the last {!clear}; 0 before the
    first lookup. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
(** Per-instance counters, zeroed by {!clear} (lookups also feed the
    process-wide, never-reset [bionav_cache_*] metrics, see
    {!Bionav_util.Metrics}). *)

val clear : t -> unit
(** Drop every entry {e and} reset the per-instance hit/miss/eviction
    counters, so {!hit_rate} reflects the post-clear regime. *)
