(** A bounded cache of navigation trees, keyed by query string.

    Paper §VII: the navigation tree "is done once for each user query" —
    the expensive on-line step (attachment lookup over every result citation
    plus the maximum embedding). Exploratory users reissue queries, so the
    navigation subsystem memoizes trees behind an LRU. *)

type t

val create : ?capacity:int -> build:(string -> Nav_tree.t) -> unit -> t
(** [capacity] defaults to 32. [build] runs the query and constructs the
    tree (typically [esearch] + {!Nav_tree.of_database}). Queries are
    normalized (trimmed, lowercased) before keying. *)

val get : t -> string -> Nav_tree.t
(** Cached or freshly built. *)

val hit_rate : t -> float
(** Hits / lookups since creation; 0 before the first lookup. *)

val hits : t -> int
val misses : t -> int
val evictions : t -> int
(** Per-instance counters (lookups also feed the process-wide
    [bionav_cache_*] metrics, see {!Bionav_util.Metrics}). *)

val clear : t -> unit
