open Bionav_util

type outcome = {
  expands : int;
  revealed : int;
  results_listed : int;
  total_cost : int;
  stopped_at : int;
}

(* P_x of a visible node's component, per the §IV estimate. *)
let p_expand params active node =
  let nav = Active_tree.nav active in
  let members = Active_tree.component active node in
  let distinct = Active_tree.component_distinct active node in
  if List.length members <= 1 then 0.
  else if distinct > params.Probability.upper_threshold then 1.0
  else if distinct < params.Probability.lower_threshold then 0.0
  else begin
    let weights =
      Array.of_list (List.map (fun m -> float_of_int (Nav_tree.result_count nav m)) members)
    in
    (* Entropy with the distinct count as denominator, clamped (see
       Probability.expand; duplicated here over active-tree components). *)
    let h = ref 0. and positive = ref 0 in
    Array.iter
      (fun w ->
        if w > 0. then begin
          incr positive;
          let p = w /. float_of_int (max 1 distinct) in
          if p < 1.0 then h := !h -. (p *. log p)
        end)
      weights;
    if !positive < 2 then 0.
    else Float.max 0. (Float.min 1.0 (!h /. log (float_of_int !positive)))
  end

(* Choose among weighted alternatives; [None] with the residual probability
   when the total weight is zero. *)
let pick_weighted rng choices =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. choices in
  if total <= 0. then None
  else begin
    let u = Rng.float rng total in
    let rec go acc = function
      | [] -> None
      | (x, w) :: rest -> if acc +. w >= u then Some x else go (acc +. w) rest
    in
    go 0. choices
  end

let walk ?(params = Probability.default_params) ?(max_steps = 1000) ~rng session =
  let active = Navigation.active session in
  let nav = Active_tree.nav active in
  let current = ref (Nav_tree.root nav) in
  let finished = ref false in
  let steps = ref 0 in
  while (not !finished) && !steps < max_steps do
    incr steps;
    let node = !current in
    let px = p_expand params active node in
    if Active_tree.is_expandable active node && Rng.bernoulli rng px then begin
      let revealed = Navigation.expand session node in
      if revealed = [] then finished := true
      else begin
        (* Continue into the upper component or one of the new ones,
           proportionally to EXPLORE mass. *)
        let choices =
          List.map
            (fun v -> (v, Relevance.component_weight active v))
            (node :: revealed)
        in
        match pick_weighted rng choices with
        | Some next -> current := next
        | None -> finished := true
      end
    end
    else begin
      ignore (Navigation.show_results session node);
      finished := true
    end
  done;
  let stats = Navigation.stats session in
  {
    expands = stats.Navigation.expands;
    revealed = stats.Navigation.revealed;
    results_listed = stats.Navigation.results_listed;
    total_cost = Navigation.total_cost stats;
    stopped_at = !current;
  }

type summary = {
  walks : int;
  mean_cost : float;
  median_cost : float;
  mean_expands : float;
  mean_results : float;
}

let sample ?params ?(walks = 200) ~seed make_session =
  if walks < 1 then invalid_arg "Stochastic_user.sample: walks must be >= 1";
  let rng = Rng.create seed in
  let outcomes = Array.init walks (fun _ -> walk ?params ~rng (make_session ())) in
  let costs = Array.map (fun o -> float_of_int o.total_cost) outcomes in
  {
    walks;
    mean_cost = Stats.mean costs;
    median_cost = Stats.median costs;
    mean_expands = Stats.mean (Array.map (fun o -> float_of_int o.expands) outcomes);
    mean_results = Stats.mean (Array.map (fun o -> float_of_int o.results_listed) outcomes);
  }
