open Bionav_util

type t = {
  reduced : Comp_tree.t;
  original : Comp_tree.t;
  roots : int array;  (* supernode -> original partition root *)
  members : int list array;  (* supernode -> original nodes *)
}

let build orig (partition : Partition.result) =
  let n = Comp_tree.size orig in
  if Array.length partition.assignment <> n then
    invalid_arg "Reduced_tree.build: partition does not match tree";
  (* Partition roots in ascending original order: the partition containing
     the original root comes first, and (because original ids are a
     topological order and a partition root's parent lies in an
     ancestor-side partition) parents precede children among supernodes. *)
  let roots = Array.of_list partition.roots in
  let k = Array.length roots in
  if k = 0 || roots.(0) <> 0 then invalid_arg "Reduced_tree.build: malformed partition roots";
  let super_of_root = Hashtbl.create k in
  Array.iteri (fun s r -> Hashtbl.add super_of_root r s) roots;
  let members = Array.make k [] in
  for v = n - 1 downto 0 do
    let s = Hashtbl.find super_of_root partition.assignment.(v) in
    members.(s) <- v :: members.(s)
  done;
  let parent =
    Array.mapi
      (fun s r ->
        if s = 0 then -1
        else
          let p = Comp_tree.parent orig r in
          Hashtbl.find super_of_root partition.assignment.(p))
      roots
  in
  let results = Array.map (fun ms -> Docset.union_many (List.map (Comp_tree.results orig) ms)) members in
  let totals =
    Array.map (fun ms -> List.fold_left (fun acc v -> acc + Comp_tree.total orig v) 0 ms) members
  in
  (* A supernode's union can exceed a member-wise total sum only if totals
     undercount; clamp defensively so Comp_tree.make's invariant holds. *)
  let totals = Array.mapi (fun s t -> max t (Docset.cardinal results.(s))) totals in
  let labels = Array.map (Comp_tree.label orig) roots in
  let concepts = Array.map (Comp_tree.concept orig) roots in
  let multiplicity = Array.map List.length members in
  let sub_weights =
    Array.map
      (fun ms ->
        Array.of_list (List.map (fun v -> float_of_int (Comp_tree.result_count orig v)) ms))
      members
  in
  let sub_concepts =
    Array.map (fun ms -> Array.of_list (List.map (Comp_tree.concept orig) ms)) members
  in
  let reduced =
    Comp_tree.make ~parent ~results ~totals ~labels ~tags:(Array.copy roots) ~concepts
      ~multiplicity ~sub_weights ~sub_concepts ()
  in
  { reduced; original = orig; roots; members }

let tree t = t.reduced
let original t = t.original
let size t = Array.length t.roots
let partition_root t s = t.roots.(s)
let members t s = t.members.(s)

let map_cut_children t cut =
  List.map
    (fun s ->
      if s <= 0 || s >= size t then
        invalid_arg (Printf.sprintf "Reduced_tree.map_cut_children: supernode %d" s);
      t.roots.(s))
    cut
