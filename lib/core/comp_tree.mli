(** Component subtrees: the tree-shaped value the EdgeCut algorithms operate
    on.

    A component subtree (paper §II) is a connected piece of the navigation
    tree — the invisible subtree [I(n)] behind a visible node. Both
    [Opt-EdgeCut] and [Heuristic-ReducedOpt] take one as input, and the
    reduced tree of supernodes is itself one. Nodes are indexed densely
    [0 .. size-1] with node 0 the component root and parents preceding
    children; each node carries its result list [L], its corpus-wide count
    [LT], a display label, and an opaque [tag] linking it back to whatever it
    stands for (a navigation-tree node, or a partition root). *)

type t

val make :
  parent:int array ->
  results:Bionav_util.Docset.t array ->
  totals:int array ->
  ?labels:string array ->
  ?tags:int array ->
  ?concepts:int array ->
  ?multiplicity:int array ->
  ?sub_weights:float array array ->
  ?sub_concepts:int array array ->
  unit ->
  t
(** [parent.(0) = -1] and [0 <= parent.(i) < i] for [i > 0]. [totals.(i)]
    must be at least [cardinal results.(i)] and positive whenever the node
    has results. [tags] defaults to the identity.
    @raise Invalid_argument on violations. *)

val size : t -> int
val root : t -> int
val parent : t -> int -> int
val children : t -> int -> int list
val is_leaf : t -> int -> bool
val depth : t -> int -> int

val results : t -> int -> Bionav_util.Docset.t
(** [L(i)]: results attached directly to node [i]. *)

val result_count : t -> int -> int
val total : t -> int -> int
(** [LT(i)]: corpus-wide citation count of the concept behind [i]. *)

val label : t -> int -> string
val tag : t -> int -> int

val concept : t -> int -> int
(** The stable hierarchy concept id behind node [i], or [-1] when unknown
    (synthetic trees, supernodes aggregating several concepts report their
    partition root's concept). Stable across navigation-tree rebuilds —
    the join key adaptive probability models use to look up per-concept
    evidence. Defaults to [-1]. *)

val multiplicity : t -> int -> int
(** Number of underlying hierarchy concepts this node stands for: 1 for a
    plain navigation-tree node, the member count for a supernode of a
    reduced tree. Drives the EXPAND probability of components — a single
    supernode is still expandable when it aggregates many concepts. *)

val sub_weights : t -> int -> float array
(** Per-underlying-concept citation masses (the [|L|] values of the
    aggregated concepts); the entropy term of the EXPAND probability is
    computed over these. Defaults to [[| L(node) |]]. *)

val sub_concepts : t -> int -> int array
(** Hierarchy concept ids parallel to {!sub_weights} — one per underlying
    concept, [-1] when unknown. Adaptive models aggregate per-concept
    evidence over these. Defaults to [concept] repeated to the
    [sub_weights] width. @raise Invalid_argument from [make] when lengths
    diverge from [sub_weights]. *)

val subtree_nodes : t -> int -> int list
(** Preorder, argument included. *)

val all_results : t -> Bionav_util.Docset.t
(** Distinct results over the whole component. *)

val distinct_of_nodes : t -> int list -> Bionav_util.Docset.t
(** Distinct results over an arbitrary node subset. *)

val duplicate_count : t -> int
(** Total attached minus distinct over the whole component: the quantity the
    TED objective maximizes within components. *)

val singleton :
  results:Bionav_util.Docset.t ->
  total:int ->
  ?label:string ->
  ?tag:int ->
  ?concept:int ->
  unit ->
  t

val pp : Format.formatter -> t -> unit
(** Indented tree rendering with counts (diagnostic). *)
