let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let digraph body = Printf.sprintf "digraph bionav {\n  rankdir=TB;\n  node [shape=box];\n%s}\n"
    body

let nav_tree ?(max_nodes = 400) nav =
  let buf = Buffer.create 4096 in
  let included = Array.make (Nav_tree.size nav) false in
  (* Breadth-first inclusion up to the budget keeps the upper structure. *)
  let queue = Queue.create () in
  Queue.add (Nav_tree.root nav) queue;
  let count = ref 0 in
  while (not (Queue.is_empty queue)) && !count < max_nodes do
    let n = Queue.pop queue in
    included.(n) <- true;
    incr count;
    List.iter (fun c -> Queue.add c queue) (Nav_tree.children nav n)
  done;
  for n = 0 to Nav_tree.size nav - 1 do
    if included.(n) then begin
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s (%d)\"];\n" n
           (escape (Nav_tree.label nav n))
           (Nav_tree.subtree_distinct nav n));
      let hidden_children = List.filter (fun c -> not included.(c)) (Nav_tree.children nav n) in
      List.iter
        (fun c -> if included.(c) then Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" n c))
        (Nav_tree.children nav n);
      if hidden_children <> [] then begin
        Buffer.add_string buf
          (Printf.sprintf "  e%d [label=\"%d more...\", shape=plaintext];\n" n
             (List.length hidden_children));
        Buffer.add_string buf (Printf.sprintf "  n%d -> e%d [style=dashed];\n" n n)
      end
    end
  done;
  digraph (Buffer.contents buf)

let active_tree active =
  let nav = Active_tree.nav active in
  let buf = Buffer.create 2048 in
  List.iter
    (fun v ->
      let expandable = Active_tree.is_expandable active v in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s (%d)%s\"%s];\n" v
           (escape (Nav_tree.label nav v))
           (Active_tree.component_distinct active v)
           (if expandable then " >>>" else "")
           (if expandable then ", style=bold" else ""));
      match Active_tree.visible_parent active v with
      | -1 -> ()
      | p -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" p v))
    (Active_tree.visible active);
  digraph (Buffer.contents buf)

let component tree =
  let buf = Buffer.create 2048 in
  for i = 0 to Comp_tree.size tree - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%s\\nL=%d LT=%d\"];\n" i
         (escape (Comp_tree.label tree i))
         (Comp_tree.result_count tree i) (Comp_tree.total tree i));
    if Comp_tree.parent tree i <> -1 then
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" (Comp_tree.parent tree i) i)
  done;
  digraph (Buffer.contents buf)
