open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy
module Database = Bionav_store.Database

type t = {
  arena : Docset_arena.t;  (* owns every set this tree hands out *)
  concept_ids : int array;
  parent : int array;
  children : int list array;
  depth : int array;
  results : Docset.t array;
  totals : int array;
  labels : string array;
  subtree_distinct : int array;
  subtree_sets : Docset.t array;
  tin : int array;  (* preorder entry = node id itself, kept for clarity *)
  tout : int array;  (* preorder exit: last descendant id *)
  node_of_concept : (int, int) Hashtbl.t;
}

(* Intermediate rose tree used while computing the maximum embedding. *)
type rose = Rose of int * rose list

let build ~hierarchy ~attachments ~total_count =
  let n_concepts = Hierarchy.size hierarchy in
  (* Every set the tree retains is interned into one fresh arena: nodes
     sharing a citation list share one physical copy, and the bottom-up
     subtree unions below seed the arena's op memo for the cost model. *)
  let arena = Docset_arena.create () in
  let attached = Array.make n_concepts (Docset.in_arena arena Docset.empty) in
  List.iter
    (fun (c, set) ->
      if c < 0 || c >= n_concepts then
        invalid_arg (Printf.sprintf "Nav_tree.build: unknown concept %d" c);
      if not (Docset.is_empty attached.(c)) then
        invalid_arg (Printf.sprintf "Nav_tree.build: duplicate attachment for concept %d" c);
      attached.(c) <- Docset.in_arena arena set)
    attachments;
  (* Maximum embedding (Definition 2), one depth-first pass: an empty
     internal node is replaced by its kept children, an empty leaf vanishes,
     the root survives unconditionally. *)
  let rec embed c =
    let kept = List.concat_map embed (Hierarchy.children hierarchy c) in
    if Docset.is_empty attached.(c) then kept else [ Rose (c, kept) ]
  in
  let hroot = Hierarchy.root hierarchy in
  let top = Rose (hroot, List.concat_map embed (Hierarchy.children hierarchy hroot)) in
  (* Flatten in preorder: ids are assigned parents-first. *)
  let count =
    let rec sz (Rose (_, kids)) = 1 + List.fold_left (fun a k -> a + sz k) 0 kids in
    sz top
  in
  let concept_ids = Array.make count 0 in
  let parent = Array.make count (-1) in
  let next = ref 0 in
  let rec assign p (Rose (c, kids)) =
    let id = !next in
    incr next;
    concept_ids.(id) <- c;
    parent.(id) <- p;
    List.iter (assign id) kids
  in
  assign (-1) top;
  let children = Array.make count [] in
  for i = count - 1 downto 1 do
    children.(parent.(i)) <- i :: children.(parent.(i))
  done;
  let depth = Array.make count 0 in
  for i = 1 to count - 1 do
    depth.(i) <- depth.(parent.(i)) + 1
  done;
  let results = Array.init count (fun i -> attached.(concept_ids.(i))) in
  let totals =
    Array.init count (fun i ->
        let c = concept_ids.(i) in
        let tc = total_count c in
        let lc = Docset.cardinal results.(i) in
        if tc < lc then
          invalid_arg
            (Printf.sprintf "Nav_tree.build: concept %d has total %d < attached %d" c tc lc);
        (* The root may legitimately have no results and a zero total. *)
        max tc lc)
    in
  let labels = Array.init count (fun i -> Hierarchy.label hierarchy concept_ids.(i)) in
  (* Bottom-up union for subtree-distinct counts. The intermediate unions
     are interned, not dropped: later distinct-of-subtree queries from the
     cost model hit the arena memo instead of recomputing. *)
  let subtree_sets = Array.make count (Docset.in_arena arena Docset.empty) in
  for i = count - 1 downto 0 do
    let union =
      Docset.union_many (results.(i) :: List.map (fun c -> subtree_sets.(c)) children.(i))
    in
    subtree_sets.(i) <- union
  done;
  let subtree_distinct = Array.map Docset.cardinal subtree_sets in
  let tin = Array.init count Fun.id in
  let tout = Array.make count 0 in
  for i = count - 1 downto 0 do
    tout.(i) <- List.fold_left (fun acc c -> max acc tout.(c)) i children.(i)
  done;
  let node_of_concept = Hashtbl.create count in
  Array.iteri (fun i c -> Hashtbl.replace node_of_concept c i) concept_ids;
  {
    arena;
    concept_ids;
    parent;
    children;
    depth;
    results;
    totals;
    labels;
    subtree_distinct;
    subtree_sets;
    tin;
    tout;
    node_of_concept;
  }

let of_database db result =
  let attachments = Database.concepts_of_result_ds db result in
  build ~hierarchy:(Database.hierarchy db) ~attachments ~total_count:(Database.total_count db)

let arena t = t.arena
let size t = Array.length t.parent
let root _ = 0
let parent t i = t.parent.(i)
let children t i = t.children.(i)
let depth t i = t.depth.(i)
let is_leaf t i = t.children.(i) = []
let concept_id t i = t.concept_ids.(i)
let label t i = t.labels.(i)
let results t i = t.results.(i)
let result_count t i = Docset.cardinal t.results.(i)
let total t i = t.totals.(i)
let subtree_distinct t i = t.subtree_distinct.(i)
let subtree_results t i = t.subtree_sets.(i)
let node_of_concept t c = Hashtbl.find_opt t.node_of_concept c
let distinct_results t = t.subtree_distinct.(0)
let total_attached t = Array.fold_left (fun acc s -> acc + Docset.cardinal s) 0 t.results

let height t = Array.fold_left max 0 t.depth

let max_width t =
  let counts = Array.make (height t + 1) 0 in
  Array.iter (fun d -> counts.(d) <- counts.(d) + 1) t.depth;
  Array.fold_left max 0 counts

let in_subtree t ~root i = t.tin.(i) >= t.tin.(root) && t.tin.(i) <= t.tout.(root)

let comp_tree_of t ~root ~members =
  let sorted = List.sort_uniq Int.compare members in
  (match sorted with
  | r :: _ when r = root -> ()
  | _ -> invalid_arg "Nav_tree.comp_tree_of: members must contain the root as minimum");
  let nodes = Array.of_list sorted in
  let k = Array.length nodes in
  let index_of = Hashtbl.create k in
  Array.iteri (fun idx nav -> Hashtbl.add index_of nav idx) nodes;
  let parent =
    Array.mapi
      (fun idx nav ->
        if idx = 0 then -1
        else
          match Hashtbl.find_opt index_of t.parent.(nav) with
          | Some p -> p
          | None ->
              invalid_arg
                (Printf.sprintf "Nav_tree.comp_tree_of: member %d disconnected from root %d" nav
                   root))
      nodes
  in
  let results = Array.map (fun nav -> t.results.(nav)) nodes in
  let totals = Array.map (fun nav -> t.totals.(nav)) nodes in
  let labels = Array.map (fun nav -> t.labels.(nav)) nodes in
  let concepts = Array.map (fun nav -> t.concept_ids.(nav)) nodes in
  (Comp_tree.make ~parent ~results ~totals ~labels ~tags:(Array.copy nodes) ~concepts (), nodes)

let pp ppf t =
  let rec go i =
    Format.fprintf ppf "%s%s (%d)@\n" (String.make (2 * t.depth.(i)) ' ') t.labels.(i)
      t.subtree_distinct.(i);
    List.iter go t.children.(i)
  in
  go 0
