type params = {
  upper_threshold : int;
  lower_threshold : int;
  expand_cost : float;
  future_fanout : int;
}

let default_params =
  { upper_threshold = 50; lower_threshold = 10; expand_cost = 16.0; future_fanout = 10 }

let validate_params p =
  if p.lower_threshold < 0 then
    invalid_arg
      (Printf.sprintf "Probability.params: lower_threshold must be >= 0 (got %d)"
         p.lower_threshold);
  if p.upper_threshold < p.lower_threshold then
    invalid_arg
      (Printf.sprintf
         "Probability.params: upper_threshold %d is below lower_threshold %d"
         p.upper_threshold p.lower_threshold);
  if not (p.expand_cost > 0.) then
    invalid_arg
      (Printf.sprintf "Probability.params: expand_cost must be > 0 (got %g)" p.expand_cost);
  if p.future_fanout < 2 then
    invalid_arg
      (Printf.sprintf "Probability.params: future_fanout must be >= 2 (got %d)"
         p.future_fanout)

let params_fingerprint p =
  Printf.sprintf "%d/%d/%g/%d" p.upper_threshold p.lower_threshold p.expand_cost
    p.future_fanout

let explore_weight t i =
  let l = Comp_tree.result_count t i in
  if l = 0 then 0. else float_of_int l /. float_of_int (Comp_tree.total t i)

let epsilon = 1e-12

let normalizer t =
  let acc = ref 0. in
  for i = 0 to Comp_tree.size t - 1 do
    acc := !acc +. explore_weight t i
  done;
  max epsilon !acc

let explore ~norm t members =
  let w = List.fold_left (fun acc i -> acc +. explore_weight t i) 0. members in
  Float.min 1.0 (w /. max epsilon norm)

let underlying_count t members =
  List.fold_left (fun acc i -> acc + Comp_tree.multiplicity t i) 0 members

let expand params t ~members ~distinct =
  if members = [] then invalid_arg "Probability.expand: empty component";
  if underlying_count t members <= 1 then 0.
  else if distinct > params.upper_threshold then 1.0
  else if distinct < params.lower_threshold then 0.0
  else begin
    (* Normalized entropy of the per-concept citation mass over the
       underlying concepts. The p_i use the distinct count as denominator,
       so duplicates can push the raw entropy above the uniform no-duplicate
       maximum; clamp per the paper. *)
    let n_positive = ref 0 in
    let h = ref 0. in
    let visit w =
      if w > 0. then begin
        incr n_positive;
        let p = w /. float_of_int (max 1 distinct) in
        (* A concept holding every distinct citation has p >= 1; its
           -p log p term is <= 0 and is dropped. *)
        if p < 1.0 then h := !h -. (p *. log p)
      end
    in
    List.iter (fun i -> Array.iter visit (Comp_tree.sub_weights t i)) members;
    if !n_positive < 2 then 0.
    else begin
      let hmax = log (float_of_int !n_positive) in
      if hmax <= 0. then 0. else Float.max 0. (Float.min 1.0 (!h /. hmax))
    end
  end

let future_drilldown_cost params m =
  if m <= 1 then 0.
  else
    let k = float_of_int (max 2 params.future_fanout) in
    (k +. 1.) *. (log (float_of_int m) /. log k)

(* --- pluggable models --------------------------------------------------- *)

type model = {
  params : params;
  fingerprint : string;
  normalizer : Comp_tree.t -> float;
  explore : norm:float -> Comp_tree.t -> int list -> float;
  expand : Comp_tree.t -> members:int list -> distinct:int -> float;
}

let make_model ~params ~fingerprint ~normalizer ~explore ~expand =
  validate_params params;
  { params; fingerprint; normalizer; explore; expand }

let static ?(params = default_params) () =
  make_model ~params
    ~fingerprint:("static/" ^ params_fingerprint params)
    ~normalizer ~explore
    ~expand:(fun t ~members ~distinct -> expand params t ~members ~distinct)

let default_model = static ()

(* Qualifier facet pages behave differently from descriptor subtrees: the
   facet tree is one level deep with at most |qualifiers|+1 wide fanout, a
   page holds many citations before drilling further helps, and "expanding"
   a page is cheap (no recursive EdgeCut below it). Shift the thresholds and
   costs accordingly; future_fanout = the qualifier-table width so the
   future-drilldown term reflects one flat re-cut, not a deep descent. *)
let facet_params =
  { upper_threshold = 100; lower_threshold = 20; expand_cost = 8.0; future_fanout = 34 }

let facet_model = static ~params:facet_params ()

let model_of ?params ?model () =
  match model with
  | Some m -> m
  | None -> ( match params with None -> default_model | Some p -> static ~params:p ())
