(** The TOPDOWN navigation cost model (paper §III) evaluated over
    sub-components of a component tree.

    During EdgeCut optimization, the algorithm reasons about components that
    are not full subtrees: a subtree minus the full subtrees removed by
    earlier cuts. With component trees capped at a few dozen nodes (the
    optimal algorithm is exponential; the heuristic feeds it reduced trees
    of ≤ k supernodes), a component is represented as a bitmask over node
    indices. This module owns that representation and the probability /
    cost formulas on it; {!Opt_edgecut} adds the minimizing recursion.

    Costs are {e conditional on the user exploring the component}: the
    EXPLORE probabilities enter as branch weights when an EdgeCut splits a
    component, not as a compounding discount —

    {v
      cost(C) = (1 - P_x(C)) * |L(C)|
              + P_x(C) * (expand_cost + cut_term(C))
      cut_term(C) = min over valid cuts V of
          Σ_{v ∈ V} 1                                  (examine new labels)
        + Σ_{C' ∈ comps(C,V)} P(C'|C) * cost(C')       (continue into one)
      P(C'|C) = P_e(C') / P_e(C)
    v}

    After an EXPAND the user examines every newly revealed label with
    certainty, then continues into exactly one resulting component, with
    probability proportional to its EXPLORE mass (the paper's selectivity
    signal). Conditioning keeps the examine-now vs. examine-later
    comparison honest: a pure expected-cost reading would discount every
    deferred examination by the absolute [P_e] of the upper component and
    always prefer revealing a single concept per EXPAND, which contradicts
    the multi-concept reveals of the paper's Figs. 2 and 11. A component
    that cannot be cut and will not be expanded costs [|L(C)|]
    (SHOWRESULTS). *)

type t

val create : ?model:Probability.model -> ?norm:float -> Comp_tree.t -> t
(** [model] defaults to {!Probability.default_model} (the paper's static
    estimates); [norm] defaults to the model's [normalizer] of the tree —
    appropriate when the tree is the whole structure being expanded. *)

val tree : t -> Comp_tree.t

val model : t -> Probability.model

val params : t -> Probability.params
(** The model's parameter record ([model.params]). *)

val norm : t -> float

val full_mask : t -> int
(** All nodes of the tree. The tree size must be ≤ {!max_size}. *)

val max_size : int
(** Bitmask width guard (30). [create] rejects bigger trees. *)

val members : t -> int -> int list
(** Node indices of a mask, ascending. *)

val mask_of : int list -> int
(** @raise Invalid_argument on a node index outside [\[0, max_size)] —
    such an index would silently shift out of the mask. *)

val root_of : t -> int -> int
(** Shallowest member — the component root. The mask must be non-empty and
    connected for this to be meaningful. *)

val subtree_mask : t -> mask:int -> int -> int
(** [subtree_mask t ~mask v]: members of [mask] in the subtree of [v],
    walking only children that are themselves in [mask]. *)

val distinct : t -> int -> int
(** Distinct result count of a mask's members (memoized). *)

val p_explore : t -> int -> float
val p_expand : t -> int -> float

val underlying : t -> int -> int
(** Total number of underlying hierarchy concepts behind a mask's members
    (Σ multiplicity). *)

val cost_leaf : t -> int -> float
(** [|L(C)|]: the conditional cost when no expansion can or will happen
    ([P_x = 0] — the user lists the results). *)

val cost_unstructured : t -> int -> float
(** Expected cost of a component that cannot be cut {e in this tree} (a
    single node), priced with the future-drilldown surrogate when the node
    stands for several underlying concepts: a single supernode of a reduced
    tree is still expandable in reality, and charging it a full SHOWRESULTS
    would bias the optimizer against revealing anything (see
    {!Probability.params.future_fanout}). Reduces to [cost_leaf] when the
    node is a genuine single concept. *)

val cost : t -> mask:int -> cut_term:float -> float
(** The full formula above, [cut_term] supplied by the caller. *)

val branch_probability : t -> parent_mask:int -> branch_mask:int -> float
(** [P(C'|C) = P_e(C') / P_e(C)], clamped to [0, 1]; 0 when the parent has
    no explore mass. *)

val expand_cost : t -> float
