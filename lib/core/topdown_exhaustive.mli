(** The TOPDOWN-EXHAUSTIVE navigation model (paper §V).

    The simplified model behind the NP-completeness proof: BioNav performs a
    single EXPAND (EdgeCut) on the root, the user reads the labels of all
    [j] resulting component subtrees, picks one uniformly at random, and
    performs SHOWRESULTS on it. Expected cost of a cut producing components
    [C_1 .. C_j]:

    {v cost = j + (Σ_i |L(C_i)|) / j v}

    Because [Σ_i |L(C_i)| = (total attached) - (duplicates confined within
    components)], minimizing the cost for a fixed [j] is exactly maximizing
    within-component duplicates — the TED objective of Theorem 1, which is
    why even this one-shot model is NP-complete. The exhaustive solvers here
    are usable on small trees and serve as the executable bridge between
    the cost model (§III) and the complexity result (§V). *)

val components_of_cut : Comp_tree.t -> int list -> int list list
(** [components_of_cut t cut]: the node groups induced by cutting above each
    (valid) cut child — the upper component first, then one per cut child in
    ascending order. @raise Invalid_argument on an invalid cut. *)

val cost_of_cut : Comp_tree.t -> int list -> float
(** The §V expected cost of one explicit cut. *)

val duplicates_within : Comp_tree.t -> int list -> int
(** Within-component duplicates of a cut: total attached citations minus the
    sum of per-component distinct counts. *)

val best_cut : Comp_tree.t -> components:int -> (int list * float) option
(** Exhaustive minimum-cost cut producing exactly [components] subtrees
    ([components >= 2]); [None] when no valid cut yields that many.
    Exponential — guard trees to ≲ 20 nodes. *)

val best_cut_any : Comp_tree.t -> int list * float
(** Exhaustive minimum over every valid cut (any [j]). The tree must have
    ≥ 2 nodes. @raise Invalid_argument otherwise. *)

val max_duplicates : Comp_tree.t -> components:int -> int option
(** The TED objective: maximum within-component duplicates over cuts with
    exactly [components] subtrees. *)
