(** Heuristic-ReducedOpt (paper §VI-B): the practical best-EdgeCut
    algorithm.

    Given a component tree of arbitrary size:
    + partition it into at most [k] connected parts (weights = attached
      citation counts, threshold grown from [total/k] until ≤ k parts);
    + build the reduced tree of supernodes;
    + run the exact {!Opt_edgecut} on the reduced tree;
    + map the chosen cut back to edges of the original component tree.

    Trees that already fit within [k] nodes skip the reduction and get the
    optimal cut directly. The paper operates with [k = 10]. *)

type report = {
  cut_children : int list;
      (** Cut children in the original component tree (indices ≥ 1);
          non-empty whenever the tree has ≥ 2 nodes. *)
  reduced_size : int;  (** Supernodes fed to Opt-EdgeCut. *)
  reduced_cost : float;  (** Opt-EdgeCut's expected-cost objective value. *)
  elapsed_ms : float;  (** Wall-clock time of the whole computation. *)
}

val default_k : int
(** 10, as in the paper's experiments. *)

val best_cut :
  ?model:Probability.model -> ?k:int -> Comp_tree.t -> report
(** Best cut under [model] (default {!Probability.default_model}).
    @raise Invalid_argument if the tree has < 2 nodes or [k < 2]. *)

type plan
(** The solver state behind a cut: the (possibly reduced) tree, its cost
    context and Opt-EdgeCut memo tables, and the mask of the component the
    upper subtree still covers. Paper §VI-B: "once Opt-EdgeCut is executed
    for [T], the costs (and optimal EdgeCuts) for all possible [I(n)]s are
    also computed and hence there is no need to call the algorithm again
    for subsequent expansions" — a plan is exactly that reuse handle for
    follow-up expansions of the {e upper} component (lower components
    collapse to single supernodes, whose internal structure the reduced
    tree no longer sees, so they take a fresh plan). *)

val best_cut_with_plan :
  ?model:Probability.model -> ?k:int -> Comp_tree.t -> report * plan
(** Like {!best_cut} but also returns the reuse handle. The plan's mask is
    already advanced past the returned cut. @raise Invalid_argument as
    {!best_cut}; additionally the degenerate-partition fallback yields a
    plan that immediately reports itself exhausted. *)

val plan_usable : plan -> bool
(** The plan's upper component still covers at least two (super)nodes. *)

val original_tree : plan -> Comp_tree.t
(** The component tree the plan was created for; its tags resolve cut
    children back to navigation nodes. *)

val replan : plan -> (report * plan) option
(** Best cut for the current upper component using the memoized solver
    state — no partitioning, no re-reduction; [None] when the plan is
    exhausted ({!plan_usable} is false). The report's cut children are
    indices of the {e original} component tree, as in {!best_cut}. *)
