(** Dimension-generic navigation spaces.

    The original pipeline derived exactly one tree per query: the maximum
    embedding of the MeSH descriptor hierarchy over the result set. A
    {e navigation space} generalizes that step: a space is a navigation
    tree derived from a result set along a {e cut dimension}. Two
    dimensions exist today:

    - {!Descriptor} — the paper's TOPDOWN axis: {!Nav_tree.of_database}
      over the MeSH hierarchy (unchanged behaviour);
    - {!Qualifier_facet} — the (descriptor × qualifier) facet axis: a
      flat synthetic hierarchy with one page per MeSH qualifier
      (subheading) plus an "(unqualified)" page, fed from the corpus'
      {!Bionav_corpus.Citation.qualified} annotations.

    Facet pages {e partition} the result set exactly: each citation is
    assigned to the single page of its {e primary qualifier} — the
    smallest qualifier id over all of its descriptor/qualifier
    annotations — or to the unqualified page when it carries none. No
    citation is lost or duplicated across pages, so SHOWRESULTS over the
    cut of a facet space enumerates the result set exactly once.

    Derivation is timed into per-dimension
    [bionav_space_derivation_ms_<dimension>] histograms. *)

type dimension = Descriptor | Qualifier_facet

val dimension_name : dimension -> string
(** Stable lowercase identifier (["descriptor"], ["qualifier"]) — used in
    space ids, metric names and wire formats. *)

type deriver
(** Everything needed to derive a space along any dimension for one
    corpus: the database (descriptor dimension) plus the corpus citations
    (qualifier annotations), with the facet hierarchy and its corpus-wide
    page totals built lazily on first facet derivation. *)

val deriver :
  ?medline:Bionav_corpus.Medline.t -> Bionav_store.Database.t -> deriver
(** Without [medline] the {!Qualifier_facet} dimension is unavailable
    (the database alone does not carry qualifier annotations) and
    {!derive} raises [Invalid_argument] for it. *)

val supports : deriver -> dimension -> bool

val derive : deriver -> dimension -> Bionav_util.Docset.t -> Nav_tree.t
(** Derive the navigation space of a result set along a dimension.
    @raise Invalid_argument on an unsupported dimension (facet without
    [medline]). *)

(* --- facet structure (exposed for rendering and tests) ----------------- *)

val primary_qualifier : Bionav_corpus.Citation.t -> Bionav_mesh.Qualifiers.t option
(** The single qualifier page a citation belongs to: the smallest
    qualifier id over all its annotations, [None] when it has none. *)

val page_concept : Bionav_mesh.Qualifiers.t option -> int
(** Facet-hierarchy concept id of a qualifier page: qualifier [q] maps to
    [q + 1] (node 0 is the root), [None] (unqualified) to
    [Qualifiers.count + 1]. *)

val facet_hierarchy : deriver -> Bionav_mesh.Hierarchy.t
(** The synthetic facet hierarchy: root, one child per qualifier, one
    "(unqualified)" child. @raise Invalid_argument without [medline]. *)
