open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy
module Concept = Bionav_mesh.Concept
module Tree_number = Bionav_mesh.Tree_number

let magic = "BIONAVDB1"

module Wire = struct
  (* --- primitive writers -------------------------------------------- *)

  let write_i32 buf v =
    if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
      invalid_arg "Codec: value exceeds 32 bits";
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b

  let write_i64 buf v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    Buffer.add_bytes buf b

  let write_string buf s =
    write_i32 buf (String.length s);
    Buffer.add_string buf s

  (* LEB128 unsigned: 7 value bits per byte, high bit = continuation.
     Sorted posting lists delta-encode into mostly-1-byte gaps, which is
     what makes the segment store's blocks compact. *)
  let write_varint buf v =
    if v < 0 then invalid_arg "Codec: negative varint";
    let rec go v =
      if v < 0x80 then Buffer.add_char buf (Char.chr v)
      else begin
        Buffer.add_char buf (Char.chr (0x80 lor (v land 0x7f)));
        go (v lsr 7)
      end
    in
    go v

  (* --- primitive readers --------------------------------------------- *)

  type cursor = { data : string; mutable pos : int }

  let cursor ?(pos = 0) data = { data; pos }
  let pos cur = cur.pos
  let remaining cur = String.length cur.data - cur.pos

  let fail msg = invalid_arg ("Codec.decode: " ^ msg)

  let read_i32 cur =
    if cur.pos + 4 > String.length cur.data then fail "truncated integer";
    let v = Int32.to_int (String.get_int32_le cur.data cur.pos) in
    cur.pos <- cur.pos + 4;
    v

  let read_i64 cur =
    if cur.pos + 8 > String.length cur.data then fail "truncated 64-bit integer";
    let v = String.get_int64_le cur.data cur.pos in
    cur.pos <- cur.pos + 8;
    v

  let read_varint cur =
    let len = String.length cur.data in
    let rec go shift acc =
      if shift > 62 then fail "varint too long";
      if cur.pos >= len then fail "truncated varint";
      let b = Char.code cur.data.[cur.pos] in
      cur.pos <- cur.pos + 1;
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if acc < 0 then fail "varint overflows 63 bits";
      if b < 0x80 then acc else go (shift + 7) acc
    in
    go 0 0

  let read_string cur =
    let len = read_i32 cur in
    if len < 0 || cur.pos + len > String.length cur.data then fail "truncated string";
    let s = String.sub cur.data cur.pos len in
    cur.pos <- cur.pos + len;
    s

  (* FNV-1a over the native 63-bit int space, folded to int64 for the
     wire: cheap, dependency-free, and plenty for corruption detection
     (not cryptographic). *)
  let fnv1a64 ?(init = 0xcbf29ce484222325L) s =
    let prime = 0x100000001b3L in
    let h = ref init in
    String.iter
      (fun c ->
        h := Int64.logxor !h (Int64.of_int (Char.code c));
        h := Int64.mul !h prime)
      s;
    !h
end

open Wire

(* --- database layout -------------------------------------------------- *)

let encode db =
  let h = Database.hierarchy db in
  let n = Hierarchy.size h in
  let buf = Buffer.create (1 lsl 20) in
  Buffer.add_string buf magic;
  write_i32 buf n;
  for i = 0 to n - 1 do
    let c = Hierarchy.concept h i in
    write_i32 buf (Hierarchy.parent h i);
    write_string buf (Tree_number.to_string (Concept.tree_number c));
    write_string buf (Concept.label c)
  done;
  write_i32 buf (Database.n_citations db);
  (* Database-level accessors, not [Database.assoc]: an external
     (segment-store) backend streams each concept's postings through
     here one at a time, so exporting never materializes the whole
     association table. *)
  for concept = 0 to n - 1 do
    write_i32 buf (Database.total_count db concept);
    Database.iter_citations_of_concept db concept (fun cit -> write_i32 buf cit)
  done;
  Buffer.contents buf

let decode data =
  if String.length data < String.length magic || String.sub data 0 (String.length magic) <> magic
  then fail "bad magic";
  let cur = { data; pos = String.length magic } in
  let n = read_i32 cur in
  if n <= 0 then fail "non-positive concept count";
  (* Every count is checked against the bytes actually left before any
     allocation sized by it: a corrupted length high byte must fail as
     "truncated", not attempt a multi-gigabyte Array.make. Each concept
     occupies at least 12 bytes (parent + two string lengths). *)
  if n > remaining cur / 12 then fail "concept count exceeds input";
  let parent = Array.make n (-1) in
  let concepts =
    Array.init n (fun i ->
        let p = read_i32 cur in
        parent.(i) <- p;
        let tn = Tree_number.of_string (read_string cur) in
        let label = read_string cur in
        Concept.make ~id:i ~label ~tree_number:tn)
  in
  let hierarchy = Hierarchy.build concepts ~parent in
  let n_citations = read_i32 cur in
  if n_citations < 0 then fail "negative citation count";
  let postings =
    Array.init n (fun _ ->
        let k = read_i32 cur in
        if k < 0 || k > remaining cur / 4 then fail "posting length exceeds input";
        let arr = Array.init k (fun _ -> read_i32 cur) in
        Intset.of_array arr)
  in
  if cur.pos <> String.length data then fail "trailing bytes";
  let assoc = Assoc_table.of_postings ~n_citations postings in
  Database.make ~hierarchy ~assoc

let save db path =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (encode db))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode (really_input_string ic (in_channel_length ic)))
