(** The BioNav database (paper Fig. 7, off-line part): the MeSH hierarchy,
    the concept-citation associations, and the corpus-wide per-concept
    citation counts [LT(n)] recorded during the crawl ("when executing the
    queries using the concepts as keywords, we also store the number of
    citations in the query result, since it is needed for the computation
    of [P_explore]").

    Two backends serve the association queries behind one interface:

    - {b Memory}: the {!Assoc_table} reference implementation — both
      orientations fully resident, built by {!of_medline} / {!make}.
    - {b External}: a record of iterator closures over an out-of-core
      store (the segment store, [Bionav_segstore]), installed by
      {!make_external}. Association lists are materialized lazily by the
      backend; only the [LT(n)] count array is resident here.

    Everything downstream (navigation-tree construction, codecs,
    snapshots) goes through the accessors below, so the backends are
    interchangeable — the metamorphic equivalence suite in
    [test_segstore] holds them to identical answers. *)

type t

type external_backend = {
  x_n_concepts : int;
  x_n_citations : int;
  x_n_associations : int;
  x_total_count : int -> int;
      (** [LT(concept)] from backend metadata; called once per concept at
          {!make_external} time. *)
  x_iter_citations_of_concept : int -> (int -> unit) -> unit;
      (** Visit the concept's citations in increasing id order. *)
  x_iter_concepts_of_citation : int -> (int -> unit) -> unit;
      (** Visit the citation's concepts in increasing id order. *)
}

val of_medline : Bionav_corpus.Medline.t -> t
(** The off-line pre-processing step: extract associations and counts from
    the corpus. *)

val make :
  hierarchy:Bionav_mesh.Hierarchy.t ->
  assoc:Assoc_table.t ->
  t
(** Assembles an in-memory database directly (used by the codec). Total
    counts are derived from the association table.
    @raise Invalid_argument if the table's concept count differs from the
    hierarchy size. *)

val make_external :
  hierarchy:Bionav_mesh.Hierarchy.t -> external_backend -> t
(** Assembles a database over an out-of-core backend.
    @raise Invalid_argument if [x_n_concepts] differs from the hierarchy
    size. *)

val hierarchy : t -> Bionav_mesh.Hierarchy.t

val assoc : t -> Assoc_table.t
(** The in-memory association table.
    @raise Invalid_argument on an external backend — callers that only
    need counts should use {!n_citations} / {!n_associations}, which work
    on both. *)

val is_external : t -> bool

val total_count : t -> int -> int
(** [total_count t concept] = corpus-wide citation count [LT(concept)].
    O(1) on both backends. *)

val n_citations : t -> int
val n_associations : t -> int

val citations_of_concept : t -> int -> Bionav_util.Intset.t
(** The concept's full posting list (materialized on an external
    backend). *)

val iter_citations_of_concept : t -> int -> (int -> unit) -> unit
val iter_concepts_of_citation : t -> int -> (int -> unit) -> unit
(** Streaming accessors (increasing id order) — no intermediate set is
    materialized on an external backend. *)

val concepts_of_result : t -> Bionav_util.Intset.t -> (int * Bionav_util.Intset.t) list
(** [concepts_of_result t result] is the on-line navigation-tree input: for
    each concept associated with at least one citation of [result], the
    subset of [result] attached to it. Implemented through the denormalized
    orientation, one lookup per result citation, as in the paper. *)

val concepts_of_result_ds : t -> Bionav_util.Docset.t -> (int * Bionav_util.Docset.t) list
(** {!concepts_of_result} without the [Intset] round-trip: the result
    arrives and the attachments leave as {!Bionav_util.Docset} handles,
    which is what {!Bionav_core.Nav_tree} actually consumes. *)
