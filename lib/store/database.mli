(** The BioNav database (paper Fig. 7, off-line part): the MeSH hierarchy,
    the concept-citation associations, and the corpus-wide per-concept
    citation counts [LT(n)] recorded during the crawl ("when executing the
    queries using the concepts as keywords, we also store the number of
    citations in the query result, since it is needed for the computation
    of [P_explore]"). *)

type t

val of_medline : Bionav_corpus.Medline.t -> t
(** The off-line pre-processing step: extract associations and counts from
    the corpus. *)

val make :
  hierarchy:Bionav_mesh.Hierarchy.t ->
  assoc:Assoc_table.t ->
  t
(** Assembles a database directly (used by the codec). Total counts are
    derived from the association table.
    @raise Invalid_argument if the table's concept count differs from the
    hierarchy size. *)

val hierarchy : t -> Bionav_mesh.Hierarchy.t
val assoc : t -> Assoc_table.t

val total_count : t -> int -> int
(** [total_count t concept] = corpus-wide citation count [LT(concept)]. *)

val n_citations : t -> int

val concepts_of_result : t -> Bionav_util.Intset.t -> (int * Bionav_util.Intset.t) list
(** [concepts_of_result t result] is the on-line navigation-tree input: for
    each concept associated with at least one citation of [result], the
    subset of [result] attached to it. Implemented through the denormalized
    orientation, one lookup per result citation, as in the paper. *)
