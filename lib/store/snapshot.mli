(** Warm-start snapshots: the per-query state the engine would otherwise
    recompute at first contact, persisted across restarts.

    A snapshot holds, for each warmed query, its result-citation set (so
    the navigation tree rebuilds from the database without re-running the
    query) and the root EdgeCut of a fresh session (so the first EXPAND
    is served without running Heuristic-ReducedOpt). The format is a
    versioned little-endian layout on {!Codec.Wire} primitives — magic
    ["BIONAVSNAP"], a format version, an FNV-1a-64 body checksum, and the
    source database's dimensions so a snapshot is never applied against a
    hierarchy or corpus other than the one it was built from.

    Version 2 writes a deduplicated set table — structurally equal result
    sets (interned arena-style) are stored once and referenced by index —
    while version-1 snapshots (inline per-entry result arrays) still
    decode. Unknown versions fail with an error naming the supported
    ones. *)

val version : int
(** The version {!encode} writes (2). *)

val supported_versions : int list
(** Versions {!decode} accepts. *)

type entry = {
  query : string;  (** Normalized ({!Nav_cache.normalize}-style) query. *)
  results : Bionav_util.Intset.t;  (** Citations the query matched. *)
  root_cut : int list;
      (** Navigation-node children of the root EdgeCut in a fresh session;
          [[]] when the tree is too small to cut (static reveal). *)
}

val encode : db:Database.t -> entry list -> string
val decode : db:Database.t -> string -> entry list
(** @raise Invalid_argument on corruption (bad magic, wrong version,
    checksum mismatch, truncation) or when the snapshot was built against
    a database of different dimensions than [db]. *)

val save : db:Database.t -> entry list -> string -> unit
val load : db:Database.t -> string -> entry list
(** @raise Sys_error on I/O failure, [Invalid_argument] as {!decode}. *)
