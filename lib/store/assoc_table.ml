open Bionav_util

type t = {
  by_concept : Intset.t array;
  by_citation : Intset.t array;
  n_associations : int;
}

let of_postings ~n_citations postings =
  let buckets = Array.make n_citations [] in
  let n_assoc = ref 0 in
  Array.iteri
    (fun concept citations ->
      Intset.iter
        (fun cit ->
          if cit < 0 || cit >= n_citations then
            invalid_arg
              (Printf.sprintf "Assoc_table: concept %d references citation %d (max %d)" concept
                 cit (n_citations - 1));
          buckets.(cit) <- concept :: buckets.(cit);
          incr n_assoc)
        citations)
    postings;
  (* Concepts were visited in increasing order, so each bucket is sorted
     descending; reversing restores the Intset invariant without a sort. *)
  let by_citation =
    Array.map (fun b -> Intset.of_sorted_array_unchecked (Array.of_list (List.rev b))) buckets
  in
  { by_concept = Array.map Fun.id postings; by_citation; n_associations = !n_assoc }

(* Streaming construction from the normalized pair stream — the same
   shape the segment-store ingest merge emits — without requiring the
   caller to materialize per-concept Intsets first. *)
let of_sorted_pairs ~n_concepts ~n_citations pairs =
  let postings = Array.make n_concepts Intset.empty in
  let current = ref (-1) in
  let acc = ref [] in
  let flush () =
    if !current >= 0 then
      postings.(!current) <- Intset.of_sorted_array_unchecked (Array.of_list (List.rev !acc))
  in
  Seq.iter
    (fun (concept, cit) ->
      if concept < 0 || concept >= n_concepts then
        invalid_arg
          (Printf.sprintf "Assoc_table.of_sorted_pairs: concept %d out of range" concept);
      if cit < 0 || cit >= n_citations then
        invalid_arg
          (Printf.sprintf "Assoc_table.of_sorted_pairs: citation %d out of range" cit);
      if concept < !current then
        invalid_arg "Assoc_table.of_sorted_pairs: pairs not sorted by concept";
      if concept > !current then begin
        flush ();
        current := concept;
        acc := []
      end;
      (match !acc with
      | prev :: _ when prev >= cit ->
          invalid_arg "Assoc_table.of_sorted_pairs: citations not strictly increasing"
      | _ -> ());
      acc := cit :: !acc)
    pairs;
  flush ();
  of_postings ~n_citations postings

let n_concepts t = Array.length t.by_concept
let n_citations t = Array.length t.by_citation
let n_associations t = t.n_associations

let citations_of_concept t c = t.by_concept.(c)
let concepts_of_citation t c = t.by_citation.(c)

let iter_pairs t f =
  Array.iteri
    (fun concept citations -> Intset.iter (fun cit -> f concept cit) citations)
    t.by_concept

let fold_concepts t ~init ~f =
  let acc = ref init in
  Array.iteri
    (fun concept citations ->
      if not (Intset.is_empty citations) then acc := f !acc concept citations)
    t.by_concept;
  !acc
