open Bionav_util

type t = {
  by_concept : Intset.t array;
  by_citation : Intset.t array;
  n_associations : int;
}

let of_postings ~n_citations postings =
  let buckets = Array.make n_citations [] in
  let n_assoc = ref 0 in
  Array.iteri
    (fun concept citations ->
      Intset.iter
        (fun cit ->
          if cit < 0 || cit >= n_citations then
            invalid_arg
              (Printf.sprintf "Assoc_table: concept %d references citation %d (max %d)" concept
                 cit (n_citations - 1));
          buckets.(cit) <- concept :: buckets.(cit);
          incr n_assoc)
        citations)
    postings;
  (* Concepts were visited in increasing order, so each bucket is sorted
     descending; reversing restores the Intset invariant without a sort. *)
  let by_citation =
    Array.map (fun b -> Intset.of_sorted_array_unchecked (Array.of_list (List.rev b))) buckets
  in
  { by_concept = Array.map Fun.id postings; by_citation; n_associations = !n_assoc }

let n_concepts t = Array.length t.by_concept
let n_citations t = Array.length t.by_citation
let n_associations t = t.n_associations

let citations_of_concept t c = t.by_concept.(c)
let concepts_of_citation t c = t.by_citation.(c)

let fold_concepts t ~init ~f =
  let acc = ref init in
  Array.iteri
    (fun concept citations ->
      if not (Intset.is_empty citations) then acc := f !acc concept citations)
    t.by_concept;
  !acc
