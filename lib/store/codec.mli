(** Binary persistence for the BioNav database.

    The real system keeps the crawled associations in Oracle because
    rebuilding them takes ~20 days; our corpus is synthetic but still costly
    to regenerate at full scale, so the database can be saved once and
    reloaded by the CLI and benchmarks. The format is a versioned,
    little-endian binary layout (magic ["BIONAVDB1"]) — self-contained and
    independent of OCaml's [Marshal]. *)

module Wire : sig
  (** The little-endian primitives the database layout is written in,
      exposed so sibling formats (e.g. {!Snapshot}) stay byte-compatible
      in style and share one corruption-reporting convention. *)

  val write_i32 : Buffer.t -> int -> unit
  (** @raise Invalid_argument if the value exceeds 32 bits. *)

  val write_i64 : Buffer.t -> int64 -> unit
  val write_string : Buffer.t -> string -> unit

  val write_varint : Buffer.t -> int -> unit
  (** LEB128 unsigned (7 value bits per byte, high bit continues) — the
      encoding the segment store's delta blocks and ingest run files use.
      @raise Invalid_argument on a negative value. *)

  type cursor

  val cursor : ?pos:int -> string -> cursor
  (** A read position over [data], starting at [pos] (default 0). *)

  val pos : cursor -> int
  val remaining : cursor -> int

  val fail : string -> 'a
  (** @raise Invalid_argument prefixed with ["Codec.decode: "] — the
      uniform corruption error every reader raises. *)

  val read_i32 : cursor -> int
  val read_i64 : cursor -> int64
  val read_varint : cursor -> int
  val read_string : cursor -> string
  (** @raise Invalid_argument (via {!fail}) on truncation ([read_varint]
      additionally on a value exceeding 63 bits). *)

  val fnv1a64 : ?init:int64 -> string -> int64
  (** FNV-1a 64-bit checksum (corruption detection, not cryptographic).
      [init] defaults to the standard offset basis; pass a previous
      digest to chain over several fragments. *)
end

val encode : Database.t -> string
val decode : string -> Database.t
(** @raise Invalid_argument on a malformed or wrong-version payload. *)

val save : Database.t -> string -> unit
val load : string -> Database.t
(** @raise Sys_error on I/O failure, [Invalid_argument] on corruption. *)
