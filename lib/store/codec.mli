(** Binary persistence for the BioNav database.

    The real system keeps the crawled associations in Oracle because
    rebuilding them takes ~20 days; our corpus is synthetic but still costly
    to regenerate at full scale, so the database can be saved once and
    reloaded by the CLI and benchmarks. The format is a versioned,
    little-endian binary layout (magic ["BIONAVDB1"]) — self-contained and
    independent of OCaml's [Marshal]. *)

val encode : Database.t -> string
val decode : string -> Database.t
(** @raise Invalid_argument on a malformed or wrong-version payload. *)

val save : Database.t -> string -> unit
val load : string -> Database.t
(** @raise Sys_error on I/O failure, [Invalid_argument] on corruption. *)
