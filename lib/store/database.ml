open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy
module Medline = Bionav_corpus.Medline

type t = {
  hierarchy : Hierarchy.t;
  assoc : Assoc_table.t;
  total_counts : int array;
}

let make ~hierarchy ~assoc =
  if Assoc_table.n_concepts assoc <> Hierarchy.size hierarchy then
    invalid_arg
      (Printf.sprintf "Database.make: %d concepts in table, %d in hierarchy"
         (Assoc_table.n_concepts assoc) (Hierarchy.size hierarchy));
  let total_counts =
    Array.init (Hierarchy.size hierarchy) (fun c ->
        Intset.cardinal (Assoc_table.citations_of_concept assoc c))
  in
  { hierarchy; assoc; total_counts }

let of_medline medline =
  let hierarchy = Medline.hierarchy medline in
  let postings = Array.init (Hierarchy.size hierarchy) (Medline.postings medline) in
  let assoc = Assoc_table.of_postings ~n_citations:(Medline.size medline) postings in
  make ~hierarchy ~assoc

let hierarchy t = t.hierarchy
let assoc t = t.assoc
let total_count t c = t.total_counts.(c)
let n_citations t = Assoc_table.n_citations t.assoc

let concepts_of_result t result =
  let buckets = Hashtbl.create 256 in
  Intset.iter
    (fun cit ->
      Intset.iter
        (fun concept ->
          let prev = match Hashtbl.find_opt buckets concept with Some l -> l | None -> [] in
          Hashtbl.replace buckets concept (cit :: prev))
        (Assoc_table.concepts_of_citation t.assoc cit))
    result;
  Hashtbl.fold
    (fun concept cits acc ->
      (* Citations were visited in increasing id order, so each list is
         sorted descending. *)
      (concept, Intset.of_sorted_array_unchecked (Array.of_list (List.rev cits))) :: acc)
    buckets []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
