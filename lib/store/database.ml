open Bionav_util
module Hierarchy = Bionav_mesh.Hierarchy
module Medline = Bionav_corpus.Medline

type external_backend = {
  x_n_concepts : int;
  x_n_citations : int;
  x_n_associations : int;
  x_total_count : int -> int;
  x_iter_citations_of_concept : int -> (int -> unit) -> unit;
  x_iter_concepts_of_citation : int -> (int -> unit) -> unit;
}

type backend = Memory of Assoc_table.t | External of external_backend

type t = {
  hierarchy : Hierarchy.t;
  backend : backend;
  total_counts : int array;
}

let make ~hierarchy ~assoc =
  if Assoc_table.n_concepts assoc <> Hierarchy.size hierarchy then
    invalid_arg
      (Printf.sprintf "Database.make: %d concepts in table, %d in hierarchy"
         (Assoc_table.n_concepts assoc) (Hierarchy.size hierarchy));
  let total_counts =
    Array.init (Hierarchy.size hierarchy) (fun c ->
        Intset.cardinal (Assoc_table.citations_of_concept assoc c))
  in
  { hierarchy; backend = Memory assoc; total_counts }

let make_external ~hierarchy backend =
  if backend.x_n_concepts <> Hierarchy.size hierarchy then
    invalid_arg
      (Printf.sprintf "Database.make_external: %d concepts in backend, %d in hierarchy"
         backend.x_n_concepts (Hierarchy.size hierarchy));
  (* LT(n) is metadata on an external backend (per-key counts from the
     segment directories) — precomputing the array keeps [total_count]
     an O(1) array read on both backends without decoding anything. *)
  let total_counts = Array.init backend.x_n_concepts backend.x_total_count in
  { hierarchy; backend = External backend; total_counts }

let of_medline medline =
  let hierarchy = Medline.hierarchy medline in
  let postings = Array.init (Hierarchy.size hierarchy) (Medline.postings medline) in
  let assoc = Assoc_table.of_postings ~n_citations:(Medline.size medline) postings in
  make ~hierarchy ~assoc

let hierarchy t = t.hierarchy

let assoc t =
  match t.backend with
  | Memory a -> a
  | External _ ->
      invalid_arg
        "Database.assoc: external (segment-store) backend has no in-memory association table"

let is_external t = match t.backend with Memory _ -> false | External _ -> true
let total_count t c = t.total_counts.(c)

let n_citations t =
  match t.backend with
  | Memory a -> Assoc_table.n_citations a
  | External b -> b.x_n_citations

let n_associations t =
  match t.backend with
  | Memory a -> Assoc_table.n_associations a
  | External b -> b.x_n_associations

let iter_citations_of_concept t concept f =
  match t.backend with
  | Memory a -> Intset.iter f (Assoc_table.citations_of_concept a concept)
  | External b -> b.x_iter_citations_of_concept concept f

let iter_concepts_of_citation t cit f =
  match t.backend with
  | Memory a -> Intset.iter f (Assoc_table.concepts_of_citation a cit)
  | External b -> b.x_iter_concepts_of_citation cit f

let citations_of_concept t concept =
  match t.backend with
  | Memory a -> Assoc_table.citations_of_concept a concept
  | External b ->
      let acc = ref [] in
      b.x_iter_citations_of_concept concept (fun cit -> acc := cit :: !acc);
      Intset.of_sorted_array_unchecked (Array.of_list (List.rev !acc))

(* The shared core of the on-line tree input: bucket the result's
   citations under each concept that annotates them, through whichever
   backend orientation is live. [iter] must visit citations in
   increasing id order so each bucket comes out sorted (descending,
   reversed once at the end). *)
let bucket_result t iter =
  let buckets = Hashtbl.create 256 in
  iter (fun cit ->
      iter_concepts_of_citation t cit (fun concept ->
          let prev = match Hashtbl.find_opt buckets concept with Some l -> l | None -> [] in
          Hashtbl.replace buckets concept (cit :: prev)));
  Hashtbl.fold
    (fun concept cits acc ->
      (concept, Array.of_list (List.rev cits)) :: acc)
    buckets []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let concepts_of_result t result =
  List.map
    (fun (c, arr) -> (c, Intset.of_sorted_array_unchecked arr))
    (bucket_result t (fun f -> Intset.iter f result))

let concepts_of_result_ds t result =
  List.map
    (fun (c, arr) -> (c, Docset.of_sorted_array_unchecked arr))
    (bucket_result t (fun f -> Docset.iter f result))
