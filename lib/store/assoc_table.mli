(** The concept-citation association table.

    Paper §VII stores one (concept, citationId) tuple per association —
    747 million of them — and then denormalizes into one row per citation
    holding its whole concept list, because navigation-tree construction is
    driven by citation id ("the navigation tree is constructed by retrieving
    the MeSH concepts associated with each citation in the query result").
    We keep both orientations:

    - normalized: concept -> citation set (drives corpus-wide counts), and
    - denormalized: citation -> concept set (drives per-query tree building),

    mirroring the paper's schema at in-memory scale. *)

type t

val of_postings :
  n_citations:int -> Bionav_util.Intset.t array -> t
(** [of_postings ~n_citations postings] builds the table from the normalized
    orientation ([postings.(c)] = citations of concept [c]).
    @raise Invalid_argument on a citation id outside [0, n_citations). *)

val of_sorted_pairs :
  n_concepts:int -> n_citations:int -> (int * int) Seq.t -> t
(** [of_sorted_pairs ~n_concepts ~n_citations pairs] builds the table from
    a (concept, citation) pair stream sorted by concept then citation,
    duplicate-free — the shape a sorted-run merge emits — without the
    caller materializing per-concept sets.
    @raise Invalid_argument on an out-of-range id or an out-of-order
    pair. *)

val n_concepts : t -> int
val n_citations : t -> int
val n_associations : t -> int
(** Total number of (concept, citation) pairs. *)

val citations_of_concept : t -> int -> Bionav_util.Intset.t
val concepts_of_citation : t -> int -> Bionav_util.Intset.t

val iter_pairs : t -> (int -> int -> unit) -> unit
(** [iter_pairs t f] calls [f concept citation] for every association, in
    (concept, citation) order — the streaming boundary the segment-store
    ingest consumes, inverse of {!of_sorted_pairs}. *)

val fold_concepts :
  t -> init:'a -> f:('a -> int -> Bionav_util.Intset.t -> 'a) -> 'a
(** Folds over concepts with non-empty citation sets. *)
