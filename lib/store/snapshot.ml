open Bionav_util
open Codec.Wire

let magic = "BIONAVSNAP"

(* Version history:
   1 — each entry carried its own inline result array.
   2 — results are a deduplicated set table (the interned-arena layout):
       structurally equal result sets are written once and entries
       reference them by index. v1 snapshots still decode. *)
let version = 2

let supported_versions = [ 1; 2 ]

type entry = { query : string; results : Intset.t; root_cut : int list }

let encode ~db entries =
  let body = Buffer.create (1 lsl 16) in
  write_i32 body (Bionav_mesh.Hierarchy.size (Database.hierarchy db));
  write_i32 body (Database.n_citations db);
  (* Set table: one interning arena over the entries' result sets. *)
  let arena = Docset_arena.create () in
  let set_ids =
    List.map (fun e -> Docset_arena.intern arena (Intset.to_array e.results)) entries
  in
  let n_sets = (Docset_arena.stats arena).Docset_arena.sets in
  write_i32 body n_sets;
  for id = 0 to n_sets - 1 do
    write_i32 body (Docset_arena.cardinal arena id);
    Docset_arena.iter arena id (fun cit -> write_i32 body cit)
  done;
  write_i32 body (List.length entries);
  List.iter2
    (fun e set_id ->
      write_string body e.query;
      write_i32 body set_id;
      write_i32 body (List.length e.root_cut);
      List.iter (fun n -> write_i32 body n) e.root_cut)
    entries set_ids;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length body + 32) in
  Buffer.add_string out magic;
  write_i32 out version;
  write_i64 out (fnv1a64 body);
  Buffer.add_string out body;
  Buffer.contents out

(* Counts are bounded by the bytes actually left before any allocation
   sized by them — a corrupted length must fail as truncation, never
   attempt a huge Array.init. *)
let read_sorted_set cur =
  let k = read_i32 cur in
  if k < 0 || k > remaining cur / 4 then fail "snapshot: result count exceeds input";
  let a = Array.init k (fun _ -> read_i32 cur) in
  for i = 1 to k - 1 do
    if a.(i - 1) >= a.(i) then fail "snapshot: result set not sorted strictly increasing"
  done;
  Intset.of_sorted_array_unchecked a

let read_cut cur =
  let c = read_i32 cur in
  if c < 0 || c > remaining cur / 4 then fail "snapshot: cut length exceeds input";
  List.init c (fun _ -> read_i32 cur)

(* v1 body: entries carry inline result arrays. Kept as the migration
   path for pre-set-table snapshots. *)
let decode_v1_body cur =
  let n = read_i32 cur in
  if n < 0 || n > remaining cur / 12 then fail "snapshot: entry count exceeds input";
  List.init n (fun _ ->
      let query = read_string cur in
      let results = read_sorted_set cur in
      let root_cut = read_cut cur in
      { query; results; root_cut })

let decode_v2_body cur =
  let n_sets = read_i32 cur in
  if n_sets < 0 || n_sets > remaining cur / 4 then fail "snapshot: set count exceeds input";
  let sets = Array.init n_sets (fun _ -> read_sorted_set cur) in
  let n = read_i32 cur in
  if n < 0 || n > remaining cur / 12 then fail "snapshot: entry count exceeds input";
  List.init n (fun _ ->
      let query = read_string cur in
      let set_id = read_i32 cur in
      if set_id < 0 || set_id >= n_sets then
        fail (Printf.sprintf "snapshot: entry references set %d of %d" set_id n_sets);
      let root_cut = read_cut cur in
      { query; results = sets.(set_id); root_cut })

let decode ~db data =
  let mlen = String.length magic in
  if String.length data < mlen || String.sub data 0 mlen <> magic then
    fail "snapshot: bad magic";
  let cur = cursor ~pos:mlen data in
  let v = read_i32 cur in
  if not (List.mem v supported_versions) then
    fail
      (Printf.sprintf "snapshot: version %d not supported (supported: %s)" v
         (String.concat ", " (List.map string_of_int supported_versions)));
  let stored_sum = read_i64 cur in
  let body = String.sub data (pos cur) (remaining cur) in
  if fnv1a64 body <> stored_sum then fail "snapshot: checksum mismatch";
  let cur = cursor body in
  let hsize = read_i32 cur in
  let ncit = read_i32 cur in
  if hsize <> Bionav_mesh.Hierarchy.size (Database.hierarchy db) then
    fail "snapshot: built against a different hierarchy";
  if ncit <> Database.n_citations db then
    fail "snapshot: built against a different corpus";
  let entries = if v = 1 then decode_v1_body cur else decode_v2_body cur in
  if remaining cur <> 0 then fail "snapshot: trailing bytes";
  entries

let save ~db entries path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode ~db entries))

let load ~db path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode ~db (really_input_string ic (in_channel_length ic)))
