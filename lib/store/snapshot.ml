open Bionav_util
open Codec.Wire

let magic = "BIONAVSNAP"
let version = 1

type entry = { query : string; results : Intset.t; root_cut : int list }

let encode ~db entries =
  let body = Buffer.create (1 lsl 16) in
  write_i32 body (Bionav_mesh.Hierarchy.size (Database.hierarchy db));
  write_i32 body (Assoc_table.n_citations (Database.assoc db));
  write_i32 body (List.length entries);
  List.iter
    (fun e ->
      write_string body e.query;
      write_i32 body (Intset.cardinal e.results);
      Intset.iter (fun cit -> write_i32 body cit) e.results;
      write_i32 body (List.length e.root_cut);
      List.iter (fun n -> write_i32 body n) e.root_cut)
    entries;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length body + 32) in
  Buffer.add_string out magic;
  write_i32 out version;
  write_i64 out (fnv1a64 body);
  Buffer.add_string out body;
  Buffer.contents out

let decode ~db data =
  let mlen = String.length magic in
  if String.length data < mlen || String.sub data 0 mlen <> magic then
    fail "snapshot: bad magic";
  let cur = cursor ~pos:mlen data in
  let v = read_i32 cur in
  if v <> version then fail (Printf.sprintf "snapshot: version %d, expected %d" v version);
  let stored_sum = read_i64 cur in
  let body = String.sub data (pos cur) (remaining cur) in
  if fnv1a64 body <> stored_sum then fail "snapshot: checksum mismatch";
  let cur = cursor body in
  let hsize = read_i32 cur in
  let ncit = read_i32 cur in
  if hsize <> Bionav_mesh.Hierarchy.size (Database.hierarchy db) then
    fail "snapshot: built against a different hierarchy";
  if ncit <> Assoc_table.n_citations (Database.assoc db) then
    fail "snapshot: built against a different corpus";
  let n = read_i32 cur in
  if n < 0 then fail "snapshot: negative entry count";
  let entries =
    List.init n (fun _ ->
        let query = read_string cur in
        let k = read_i32 cur in
        if k < 0 then fail "snapshot: negative result count";
        let results = Intset.of_array (Array.init k (fun _ -> read_i32 cur)) in
        let c = read_i32 cur in
        if c < 0 then fail "snapshot: negative cut length";
        let root_cut = List.init c (fun _ -> read_i32 cur) in
        { query; results; root_cut })
  in
  if remaining cur <> 0 then fail "snapshot: trailing bytes";
  entries

let save ~db entries path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (encode ~db entries))

let load ~db path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> decode ~db (really_input_string ic (in_channel_length ic)))
