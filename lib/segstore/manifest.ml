type entry = {
  orientation : Segment.orientation;
  file : string;
  first_key : int;
  last_key : int;
  n_keys : int;
  n_postings : int;
  bytes : int;
  checksum : int64;
}

type t = {
  n_concepts : int;
  n_citations : int;
  n_associations : int;
  segments : entry list;
}

let filename = "MANIFEST"
let version_line = "BIONAV-SEGSTORE 1"
let fail msg = invalid_arg ("Segstore.manifest: " ^ msg)

let entry_of_summary (s : Segment.summary) =
  {
    orientation = s.Segment.orientation;
    file = Filename.basename s.Segment.path;
    first_key = s.Segment.first_key;
    last_key = s.Segment.last_key;
    n_keys = s.Segment.n_keys;
    n_postings = s.Segment.n_postings;
    bytes = s.Segment.bytes;
    checksum = s.Segment.data_checksum;
  }

let write ~dir t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf version_line;
  Buffer.add_char buf '\n';
  Printf.bprintf buf "n_concepts %d\n" t.n_concepts;
  Printf.bprintf buf "n_citations %d\n" t.n_citations;
  Printf.bprintf buf "n_associations %d\n" t.n_associations;
  List.iter
    (fun e ->
      let o = match e.orientation with Segment.Inverted -> 'I' | Segment.Forward -> 'F' in
      Printf.bprintf buf "segment %c %s %d %d %d %d %d %016Lx\n" o e.file
        e.first_key e.last_key e.n_keys e.n_postings e.bytes e.checksum)
    t.segments;
  Buffer.add_string buf "end\n";
  let tmp = Filename.concat dir (filename ^ ".tmp") in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf));
  Sys.rename tmp (Filename.concat dir filename)

let int_field what s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> v
  | _ -> fail (Printf.sprintf "bad %s %S" what s)

let read ~dir =
  let ic = open_in (Filename.concat dir filename) in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let line () =
        match In_channel.input_line ic with
        | Some l -> l
        | None -> fail "truncated manifest"
      in
      if line () <> version_line then fail "bad version line";
      let count name =
        match String.split_on_char ' ' (line ()) with
        | [ n; v ] when n = name -> int_field name v
        | _ -> fail (Printf.sprintf "expected %s line" name)
      in
      let n_concepts = count "n_concepts" in
      let n_citations = count "n_citations" in
      let n_associations = count "n_associations" in
      let segments = ref [] in
      let rec loop () =
        match String.split_on_char ' ' (line ()) with
        | [ "end" ] -> ()
        | [ "segment"; o; file; first; last; keys; postings; bytes; sum ] ->
            let orientation =
              match o with
              | "I" -> Segment.Inverted
              | "F" -> Segment.Forward
              | _ -> fail (Printf.sprintf "bad orientation %S" o)
            in
            if Filename.basename file <> file || file = "" then
              fail (Printf.sprintf "bad segment file %S" file)
            else begin
              let checksum =
                try Scanf.sscanf sum "%Lx%!" Fun.id
                with Scanf.Scan_failure _ | Failure _ | End_of_file ->
                  fail (Printf.sprintf "bad checksum %S" sum)
              in
              segments :=
                {
                  orientation;
                  file;
                  first_key = int_field "first_key" first;
                  last_key = int_field "last_key" last;
                  n_keys = int_field "n_keys" keys;
                  n_postings = int_field "n_postings" postings;
                  bytes = int_field "bytes" bytes;
                  checksum;
                }
                :: !segments;
              loop ()
            end
        | _ -> fail "malformed segment line"
      in
      loop ();
      { n_concepts; n_citations; n_associations; segments = List.rev !segments })
