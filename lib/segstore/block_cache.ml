open Bionav_util

type t = {
  lru : (int * int * int, Docset.t) Lru.t;
  capacity_blocks : int;
}

let hits = Metrics.counter "bionav_segstore_block_cache_hits_total"
let misses = Metrics.counter "bionav_segstore_block_cache_misses_total"
let decoded = Metrics.counter "bionav_segstore_blocks_decoded_total"
let decode_ms = Metrics.histogram "bionav_segstore_block_decode_ms"
let resident_blocks_g = Metrics.gauge "bionav_segstore_blocks_resident"
let resident_bytes_g = Metrics.gauge "bionav_segstore_resident_bytes"

let create ~budget_bytes =
  let block_bytes = Block_codec.block_size * (Sys.word_size / 8) in
  let capacity_blocks = max 8 (budget_bytes / block_bytes) in
  { lru = Lru.create ~capacity:capacity_blocks; capacity_blocks }

let capacity_blocks t = t.capacity_blocks

let block t seg kidx bidx =
  let key = (Segment.uid seg, kidx, bidx) in
  match Lru.find t.lru key with
  | Some ds ->
      Metrics.incr hits;
      ds
  | None ->
      Metrics.incr misses;
      let t0 = Unix.gettimeofday () in
      let arr = Segment.decode_block seg kidx bidx in
      let ds = Docset.of_sorted_array_unchecked arr in
      Metrics.observe decode_ms ((Unix.gettimeofday () -. t0) *. 1000.);
      Metrics.incr decoded;
      Lru.add t.lru key ds;
      ds

let resident_blocks t = Lru.length t.lru
let resident_postings t = Lru.fold t.lru (fun ds acc -> acc + Docset.cardinal ds) 0

let publish t =
  Metrics.set resident_blocks_g (float_of_int (resident_blocks t));
  Metrics.set resident_bytes_g
    (float_of_int (resident_postings t * (Sys.word_size / 8)))
