(** The segment-store directory manifest: one small text file naming every
    sealed segment with its key range, sizes and data checksum, plus the
    corpus-level counts.

    Written atomically (tmp + rename) as the last step of {!Ingest.seal},
    so a crash mid-ingest leaves either no manifest (store unreadable,
    ingest retried) or a complete one over fully sealed segments — never
    a manifest pointing at a half-written segment. *)

type entry = {
  orientation : Segment.orientation;
  file : string;  (** Basename, relative to the store directory. *)
  first_key : int;
  last_key : int;
  n_keys : int;
  n_postings : int;
  bytes : int;
  checksum : int64;
}

type t = {
  n_concepts : int;
  n_citations : int;
  n_associations : int;
  segments : entry list;  (** In orientation-then-key order. *)
}

val filename : string
(** ["MANIFEST"]. *)

val entry_of_summary : Segment.summary -> entry

val write : dir:string -> t -> unit
(** Atomic: writes [MANIFEST.tmp], then renames over {!filename}. *)

val read : dir:string -> t
(** @raise Invalid_argument (prefixed ["Segstore.manifest: "]) on a
    malformed manifest, [Sys_error] if absent. *)
