(** Immutable on-disk segments: sorted keys, each owning a posting list
    stored as delta+varint blocks ({!Block_codec}).

    Layout (little-endian, magic ["BIONAVSEG1"]):

    {v
      header     magic (10 bytes) | orientation ('I' inverted / 'F' forward)
      data       concatenated encoded blocks, in key then block order
      directory  n_keys i32 | total_postings i64
                 per key:   key i32 | count i32 | n_blocks i32
                            per block: first_docid i32 | count i32 | len i32
      footer     dir_offset i64 | data_checksum i64 | dir_checksum i64 | magic
    v}

    Block byte offsets are implicit (cumulative from the header end), so
    the directory alone answers [count]/[first]/[cardinality] queries —
    counts never touch the data region. Readers memory-map the file and
    verify the directory checksum eagerly; the data checksum is verified
    on demand ([verify_data]) or implicitly, block by block, as decoding
    validates counts and monotonicity. *)

type orientation = Inverted | Forward

(* --- writing ------------------------------------------------------------ *)

type writer

val create_writer : path:string -> orientation:orientation -> writer

val begin_key : writer -> int -> unit
(** Keys must arrive strictly increasing. @raise Invalid_argument
    otherwise, or if a key is already open. *)

val add : writer -> int -> unit
(** Append one posting to the open key; postings must arrive strictly
    increasing and non-negative. Full blocks are flushed to disk
    immediately, so writer memory is one block. *)

val end_key : writer -> unit
(** Close the open key. Keys with zero postings are rejected — absent
    keys read back as empty. *)

val bytes_written : writer -> int
(** Data bytes flushed so far (for rolling segment cut decisions). *)

val n_keys_written : writer -> int

type summary = {
  path : string;
  orientation : orientation;
  n_keys : int;
  n_postings : int;
  bytes : int;  (** Total file size. *)
  first_key : int;
  last_key : int;
  data_checksum : int64;
}

val seal : writer -> summary
(** Write directory and footer, close the file. The writer is dead
    afterwards. @raise Invalid_argument if no key was ever written. *)

(* --- reading ------------------------------------------------------------ *)

type t

val openfile : ?verify_data:bool -> string -> t
(** Map the file and parse the directory (checksummed). [verify_data]
    additionally scans the whole data region against the footer checksum.
    @raise Invalid_argument (via {!Block_codec.fail}) on corruption,
    [Sys_error]/[Unix.Unix_error] on I/O failure. *)

val uid : t -> int
(** Process-unique id (block-cache key component). *)

val path : t -> string
val orientation : t -> orientation
val n_keys : t -> int
val n_postings : t -> int
val first_key : t -> int
val last_key : t -> int
val file_bytes : t -> int
val data_checksum : t -> int64

val find : t -> int -> int option
(** Binary-search a key; returns its index. *)

val key_at : t -> int -> int
val count_at : t -> int -> int
val count : t -> int -> int
(** Postings under a key, 0 if absent — pure directory metadata. *)

val n_blocks_at : t -> int -> int
val block_first : t -> int -> int -> int
val block_count : t -> int -> int -> int

val decode_block : t -> int -> int -> int array
(** [decode_block t kidx bidx] — validated against the directory's first
    docid and count for that block. *)

val decode_block_into : t -> int -> int -> int array -> dst_off:int -> unit

val iter : t -> int -> (int -> unit) -> unit
(** [iter t key f] streams the key's postings in increasing order,
    decoding block by block from the mapping — no cache, no shared
    mutable state, safe from any domain. Absent keys visit nothing. *)

val verify_data : t -> unit
(** Full data-region checksum scan. @raise Invalid_argument on mismatch. *)
