(** An opened segment store: the out-of-core association backend.

    Both orientations of the association table live in sealed, mmap-backed
    segments ({!Segment}); this module routes a key to its segment and
    materializes posting lists on demand through a bounded {!Block_cache}.

    Concurrency: metadata reads ([concept_count], [n_*]) and the streaming
    [iter_*] accessors decode straight off the immutable mapping and are
    safe from any domain with no locking; the {!Docset}-returning
    accessors go through the shared block cache and are serialized by an
    internal mutex. *)

type config = {
  cache_budget_bytes : int;
      (** Decoded-block LRU budget (default 4 MiB). This — not the corpus
          size — bounds resident decoded postings. *)
  verify_data : bool;
      (** Full data-checksum scan of every segment at open (default
          false; the directory checksum is always verified). *)
}

val default_config : config

type spec = { dir : string; spec_config : config }
(** How callers (engine config, CLI flags) name a store to open. *)

val spec : ?config:config -> string -> spec

type t

val open_dir : ?config:config -> string -> t
(** Open a directory sealed by {!Ingest}. Reads the manifest, maps every
    segment, and cross-checks manifest metadata (key ranges, counts,
    checksums) against each segment's own directory.
    @raise Invalid_argument on corruption or mismatch, [Sys_error] if the
    manifest is missing. *)

val dir : t -> string
val n_concepts : t -> int
val n_citations : t -> int
val n_associations : t -> int
val n_segments : t -> int
val file_bytes : t -> int
(** Total on-disk segment bytes (the denominator of the out-of-core
    ratio: corpus bytes over [cache_budget_bytes]). *)

val config : t -> config

val concept_count : t -> int -> int
(** [LT(concept)] from segment directory metadata — no block decode. *)

val iter_postings : t -> int -> (int -> unit) -> unit
(** Stream a concept's citations in increasing order, bypassing the
    cache. Lock-free. *)

val iter_concepts_of_citation : t -> int -> (int -> unit) -> unit

val postings : t -> int -> Bionav_util.Docset.t
(** Materialize a concept's posting list through the block cache. *)

val concepts_of_citation : t -> int -> Bionav_util.Docset.t

val publish_metrics : t -> unit
(** Refresh cache gauges (and per-store segment/byte gauges). *)
