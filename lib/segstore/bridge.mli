(** Install a segment store as the association backend of a
    {!Bionav_store.Database}.

    The resulting database answers counts from segment metadata, streams
    posting lists off the mappings, and materializes a citation's concept
    list through the block cache — so the navigation stack's expand path
    (which looks up concepts per result citation) is exactly the cached
    out-of-core path the cold-expand benchmark measures. *)

val database :
  Store.t -> Bionav_mesh.Hierarchy.t -> Bionav_store.Database.t
(** @raise Invalid_argument if the store's concept space does not match
    the hierarchy size. *)
