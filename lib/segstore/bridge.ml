module Database = Bionav_store.Database
module Hierarchy = Bionav_mesh.Hierarchy

let database store hierarchy =
  if Store.n_concepts store <> Hierarchy.size hierarchy then
    invalid_arg
      (Printf.sprintf
         "Segstore.Bridge: store has %d concepts but the hierarchy has %d"
         (Store.n_concepts store) (Hierarchy.size hierarchy));
  Database.make_external ~hierarchy
    {
      Database.x_n_concepts = Store.n_concepts store;
      x_n_citations = Store.n_citations store;
      x_n_associations = Store.n_associations store;
      x_total_count = Store.concept_count store;
      x_iter_citations_of_concept = Store.iter_postings store;
      x_iter_concepts_of_citation =
        (fun cit f -> Bionav_util.Docset.iter f (Store.concepts_of_citation store cit));
    }
