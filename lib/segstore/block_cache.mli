(** Bounded LRU cache of decoded posting blocks.

    Keys are (segment uid, key index, block index); values are
    {!Bionav_util.Docset} handles, each interned in its own private
    mini-arena so that LRU eviction actually releases the decoded memory
    to the GC (a shared arena would grow forever under churn).

    Not domain-safe by itself — {!Store} serializes access behind its
    mutex; the streaming [iter_*] paths bypass the cache entirely. *)

type t

val create : budget_bytes:int -> t
(** Capacity is [budget_bytes] divided by the nominal decoded block size
    ({!Block_codec.block_size} postings at one word each), floored at 8
    blocks. *)

val capacity_blocks : t -> int

val block : t -> Segment.t -> int -> int -> Bionav_util.Docset.t
(** [block t seg kidx bidx] — cached decode. Misses decode from the
    mapping, record latency in [bionav_segstore_block_decode_ms] and bump
    [bionav_segstore_block_cache_misses_total]; hits bump
    [bionav_segstore_block_cache_hits_total]. *)

val resident_blocks : t -> int
val resident_postings : t -> int

val publish : t -> unit
(** Refresh the [bionav_segstore_blocks_resident] /
    [bionav_segstore_resident_bytes] gauges from the live cache. *)
