module Wire = Bionav_store.Codec.Wire

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let block_size = 128
let fail msg = invalid_arg ("Segstore.decode: " ^ msg)

(* --- bounded cursor over a mapped segment ------------------------------- *)

type cursor = { data : bigstring; mutable pos : int; limit : int }

let cursor data ~pos ~limit =
  if pos < 0 || limit < pos || limit > Bigarray.Array1.dim data then
    fail "cursor window out of range";
  { data; pos; limit }

let pos c = c.pos
let remaining c = c.limit - c.pos

let read_u8 c =
  if c.pos >= c.limit then fail "truncated input";
  let b = Char.code (Bigarray.Array1.get c.data c.pos) in
  c.pos <- c.pos + 1;
  b

let read_i32 c =
  if remaining c < 4 then fail "truncated i32";
  let b i = Char.code (Bigarray.Array1.get c.data (c.pos + i)) in
  let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
  c.pos <- c.pos + 4;
  (* sign-extend bit 31 so the value round-trips Wire.write_i32 *)
  (v lsl (Sys.int_size - 32)) asr (Sys.int_size - 32)

let read_i64 c =
  if remaining c < 8 then fail "truncated i64";
  let b i = Int64.of_int (Char.code (Bigarray.Array1.get c.data (c.pos + i))) in
  let v = ref 0L in
  for i = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8) (b i)
  done;
  c.pos <- c.pos + 8;
  !v

let read_varint c =
  let acc = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !shift > 62 then fail "varint too long";
    let b = read_u8 c in
    acc := !acc lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue := false
  done;
  if !acc < 0 then fail "varint overflow";
  !acc

(* --- blocks ------------------------------------------------------------- *)

let encode_block buf values ~off ~len =
  if len < 1 || len > block_size then
    invalid_arg "Segstore.encode_block: bad block length";
  if off < 0 || off + len > Array.length values then
    invalid_arg "Segstore.encode_block: window out of range";
  if values.(off) < 0 then invalid_arg "Segstore.encode_block: negative posting";
  Wire.write_varint buf values.(off);
  for i = off + 1 to off + len - 1 do
    let gap = values.(i) - values.(i - 1) in
    if gap <= 0 then invalid_arg "Segstore.encode_block: postings not increasing";
    Wire.write_varint buf gap
  done

let decode_block_into data ~pos ~len ~count dst ~dst_off =
  (* Each posting costs at least one varint byte, so a count claiming more
     postings than [len] bytes is corrupt before we read anything. *)
  if count < 1 || count > len then fail "block count exceeds payload";
  if dst_off < 0 || dst_off + count > Array.length dst then
    fail "block destination out of range";
  let c = cursor data ~pos ~limit:(pos + len) in
  let v = ref (read_varint c) in
  dst.(dst_off) <- !v;
  for i = dst_off + 1 to dst_off + count - 1 do
    let gap = read_varint c in
    if gap <= 0 then fail "block gap not positive";
    let next = !v + gap in
    if next < 0 then fail "block posting overflow";
    v := next;
    dst.(i) <- next
  done;
  if remaining c <> 0 then fail "block has trailing bytes"

let decode_block data ~pos ~len ~count =
  if count < 1 || count > len then fail "block count exceeds payload";
  let dst = Array.make count 0 in
  decode_block_into data ~pos ~len ~count dst ~dst_off:0;
  dst

(* --- checksums ---------------------------------------------------------- *)

let fnv1a64 ?(init = 0xcbf29ce484222325L) data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim data then
    fail "checksum window out of range";
  let prime = 0x100000001b3L in
  let h = ref init in
  for i = pos to pos + len - 1 do
    h := Int64.logxor !h (Int64.of_int (Char.code (Bigarray.Array1.get data i)));
    h := Int64.mul !h prime
  done;
  !h
