module Wire = Bionav_store.Codec.Wire

type orientation = Inverted | Forward

let magic = "BIONAVSEG1"
let header_bytes = String.length magic + 1
let footer_bytes = (3 * 8) + String.length magic

let orientation_char = function Inverted -> 'I' | Forward -> 'F'

let orientation_of_char = function
  | 'I' -> Inverted
  | 'F' -> Forward
  | c -> Block_codec.fail (Printf.sprintf "unknown orientation %C" c)

(* --- writing ------------------------------------------------------------ *)

type writer = {
  w_path : string;
  w_orientation : orientation;
  oc : out_channel;
  block : int array;  (* pending postings of the open key *)
  scratch : Buffer.t;
  mutable block_fill : int;
  mutable key_open : bool;
  mutable cur_key : int;
  mutable last_posting : int;
  mutable key_count : int;
  mutable key_blocks : (int * int * int) list;  (* first, count, len; reversed *)
  dir_body : Buffer.t;  (* per-key directory entries, serialized as sealed *)
  mutable w_n_keys : int;
  mutable w_n_postings : int;
  mutable w_first_key : int;
  mutable w_last_key : int;
  mutable data_bytes : int;
  mutable checksum : int64;
}

type summary = {
  path : string;
  orientation : orientation;
  n_keys : int;
  n_postings : int;
  bytes : int;
  first_key : int;
  last_key : int;
  data_checksum : int64;
}

let create_writer ~path ~orientation =
  let oc = open_out_bin path in
  output_string oc magic;
  output_char oc (orientation_char orientation);
  {
    w_path = path;
    w_orientation = orientation;
    oc;
    block = Array.make Block_codec.block_size 0;
    scratch = Buffer.create 512;
    block_fill = 0;
    key_open = false;
    cur_key = -1;
    last_posting = -1;
    key_count = 0;
    key_blocks = [];
    dir_body = Buffer.create 4096;
    w_n_keys = 0;
    w_n_postings = 0;
    w_first_key = -1;
    w_last_key = -1;
    data_bytes = 0;
    checksum = Wire.fnv1a64 "";
  }

let flush_block w =
  if w.block_fill > 0 then begin
    Buffer.clear w.scratch;
    Block_codec.encode_block w.scratch w.block ~off:0 ~len:w.block_fill;
    let s = Buffer.contents w.scratch in
    w.checksum <- Wire.fnv1a64 ~init:w.checksum s;
    output_string w.oc s;
    w.key_blocks <- (w.block.(0), w.block_fill, String.length s) :: w.key_blocks;
    w.data_bytes <- w.data_bytes + String.length s;
    w.block_fill <- 0
  end

let begin_key w key =
  if w.key_open then invalid_arg "Segstore.Segment: key already open";
  if key < 0 then invalid_arg "Segstore.Segment: negative key";
  if w.w_n_keys > 0 && key <= w.w_last_key then
    invalid_arg "Segstore.Segment: keys not strictly increasing";
  w.cur_key <- key;
  w.key_open <- true;
  w.key_count <- 0;
  w.key_blocks <- [];
  w.last_posting <- -1

let add w v =
  if not w.key_open then invalid_arg "Segstore.Segment: no open key";
  if v < 0 || v <= w.last_posting then
    invalid_arg "Segstore.Segment: postings not strictly increasing";
  w.block.(w.block_fill) <- v;
  w.block_fill <- w.block_fill + 1;
  w.last_posting <- v;
  w.key_count <- w.key_count + 1;
  if w.block_fill = Block_codec.block_size then flush_block w

(* Serialize the key's directory entry now, in the sealed wire layout:
   the writer's resident footprint must not grow with the key count (the
   forward orientation has one key per citation). *)
let end_key w =
  if not w.key_open then invalid_arg "Segstore.Segment: no open key";
  flush_block w;
  if w.key_count = 0 then invalid_arg "Segstore.Segment: empty key";
  let blocks = List.rev w.key_blocks in
  Wire.write_i32 w.dir_body w.cur_key;
  Wire.write_i32 w.dir_body w.key_count;
  Wire.write_i32 w.dir_body (List.length blocks);
  List.iter
    (fun (first, bcount, len) ->
      Wire.write_i32 w.dir_body first;
      Wire.write_i32 w.dir_body bcount;
      Wire.write_i32 w.dir_body len)
    blocks;
  w.key_blocks <- [];
  if w.w_n_keys = 0 then w.w_first_key <- w.cur_key;
  w.w_last_key <- w.cur_key;
  w.w_n_keys <- w.w_n_keys + 1;
  w.w_n_postings <- w.w_n_postings + w.key_count;
  w.key_open <- false

let bytes_written w = w.data_bytes
let n_keys_written w = w.w_n_keys

let seal w =
  if w.key_open then invalid_arg "Segstore.Segment: seal with open key";
  if w.w_n_keys = 0 then invalid_arg "Segstore.Segment: seal with no keys";
  let dir_head = Buffer.create 16 in
  Wire.write_i32 dir_head w.w_n_keys;
  Wire.write_i64 dir_head (Int64.of_int w.w_n_postings);
  let head = Buffer.contents dir_head in
  let body = Buffer.contents w.dir_body in
  let dir_offset = header_bytes + w.data_bytes in
  let footer = Buffer.create footer_bytes in
  Wire.write_i64 footer (Int64.of_int dir_offset);
  Wire.write_i64 footer w.checksum;
  Wire.write_i64 footer (Wire.fnv1a64 ~init:(Wire.fnv1a64 head) body);
  Buffer.add_string footer magic;
  output_string w.oc head;
  output_string w.oc body;
  output_string w.oc (Buffer.contents footer);
  close_out w.oc;
  {
    path = w.w_path;
    orientation = w.w_orientation;
    n_keys = w.w_n_keys;
    n_postings = w.w_n_postings;
    bytes = dir_offset + String.length head + String.length body + footer_bytes;
    first_key = w.w_first_key;
    last_key = w.w_last_key;
    data_checksum = w.checksum;
  }

(* --- reading ------------------------------------------------------------ *)

type t = {
  r_uid : int;
  r_path : string;
  r_orientation : orientation;
  data : Block_codec.bigstring;
  dim : int;
  dir_offset : int;
  r_data_checksum : int64;
  keys : int array;
  counts : int array;
  key_block_start : int array;  (* n_keys + 1 prefix into the blk_* arrays *)
  blk_first : int array;
  blk_count : int array;
  blk_off : int array;
  blk_len : int array;
  r_n_postings : int;
}

let next_uid = Atomic.make 0

let check_magic data pos what =
  for i = 0 to String.length magic - 1 do
    if Bigarray.Array1.get data (pos + i) <> magic.[i] then
      Block_codec.fail (what ^ " magic mismatch")
  done

let openfile ?(verify_data = false) path =
  let fd = Unix.openfile path [ Unix.O_RDONLY ] 0 in
  let data, dim =
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        if size < header_bytes + footer_bytes then
          Block_codec.fail "segment file too small";
        let g = Unix.map_file fd Bigarray.char Bigarray.c_layout false [| -1 |] in
        (Bigarray.array1_of_genarray g, size))
  in
  check_magic data 0 "header";
  let r_orientation =
    orientation_of_char (Bigarray.Array1.get data (String.length magic))
  in
  check_magic data (dim - String.length magic) "footer";
  let footer = Block_codec.cursor data ~pos:(dim - footer_bytes) ~limit:dim in
  let dir_offset = Int64.to_int (Block_codec.read_i64 footer) in
  let r_data_checksum = Block_codec.read_i64 footer in
  let dir_checksum = Block_codec.read_i64 footer in
  if dir_offset < header_bytes || dir_offset > dim - footer_bytes then
    Block_codec.fail "directory offset out of range";
  let dir_len = dim - footer_bytes - dir_offset in
  if Block_codec.fnv1a64 data ~pos:dir_offset ~len:dir_len <> dir_checksum then
    Block_codec.fail "directory checksum mismatch";
  let c = Block_codec.cursor data ~pos:dir_offset ~limit:(dir_offset + dir_len) in
  let n_keys = Block_codec.read_i32 c in
  (* every key costs >= 24 directory bytes (key/count/n_blocks + one block) *)
  if n_keys < 1 || n_keys > Block_codec.remaining c / 24 then
    Block_codec.fail "key count exceeds directory";
  let total_postings = Int64.to_int (Block_codec.read_i64 c) in
  if total_postings < n_keys then Block_codec.fail "posting total below key count";
  let keys = Array.make n_keys 0 in
  let counts = Array.make n_keys 0 in
  let key_block_start = Array.make (n_keys + 1) 0 in
  let blks = ref [] (* (first, bcount, off, len), reversed *) in
  let n_blks = ref 0 in
  let off = ref header_bytes in
  let postings_seen = ref 0 in
  for k = 0 to n_keys - 1 do
    let key = Block_codec.read_i32 c in
    if key < 0 then Block_codec.fail "negative key";
    if k > 0 && key <= keys.(k - 1) then
      Block_codec.fail "keys not strictly increasing";
    let count = Block_codec.read_i32 c in
    let n_blocks = Block_codec.read_i32 c in
    if count < 1 || n_blocks < 1 || n_blocks > count then
      Block_codec.fail "bad key block count";
    if n_blocks > Block_codec.remaining c / 12 then
      Block_codec.fail "block count exceeds directory";
    keys.(k) <- key;
    counts.(k) <- count;
    key_block_start.(k) <- !n_blks;
    let seen = ref 0 and prev_first = ref (-1) in
    for _ = 1 to n_blocks do
      let first = Block_codec.read_i32 c in
      let bcount = Block_codec.read_i32 c in
      let len = Block_codec.read_i32 c in
      if first < 0 || first <= !prev_first then
        Block_codec.fail "block firsts not increasing";
      if bcount < 1 || bcount > Block_codec.block_size || bcount > len then
        Block_codec.fail "bad block cardinality";
      if len < 1 || !off + len > dir_offset then
        Block_codec.fail "block overruns data region";
      prev_first := first;
      seen := !seen + bcount;
      blks := (first, bcount, !off, len) :: !blks;
      incr n_blks;
      off := !off + len
    done;
    if !seen <> count then Block_codec.fail "key cardinality mismatch";
    postings_seen := !postings_seen + count
  done;
  key_block_start.(n_keys) <- !n_blks;
  if Block_codec.remaining c <> 0 then Block_codec.fail "directory has trailing bytes";
  if !off <> dir_offset then Block_codec.fail "data region size mismatch";
  if !postings_seen <> total_postings then Block_codec.fail "posting total mismatch";
  let blk_first = Array.make !n_blks 0 in
  let blk_count = Array.make !n_blks 0 in
  let blk_off = Array.make !n_blks 0 in
  let blk_len = Array.make !n_blks 0 in
  List.iteri
    (fun i (first, bcount, boff, len) ->
      let b = !n_blks - 1 - i in
      blk_first.(b) <- first;
      blk_count.(b) <- bcount;
      blk_off.(b) <- boff;
      blk_len.(b) <- len)
    !blks;
  let t =
    {
      r_uid = Atomic.fetch_and_add next_uid 1;
      r_path = path;
      r_orientation;
      data;
      dim;
      dir_offset;
      r_data_checksum;
      keys;
      counts;
      key_block_start;
      blk_first;
      blk_count;
      blk_off;
      blk_len;
      r_n_postings = total_postings;
    }
  in
  if verify_data then begin
    let sum =
      Block_codec.fnv1a64 data ~pos:header_bytes ~len:(dir_offset - header_bytes)
    in
    if sum <> r_data_checksum then Block_codec.fail "data checksum mismatch"
  end;
  t

let uid t = t.r_uid
let path t = t.r_path
let orientation t = t.r_orientation
let n_keys t = Array.length t.keys
let n_postings t = t.r_n_postings
let first_key t = t.keys.(0)
let last_key t = t.keys.(Array.length t.keys - 1)
let file_bytes t = t.dim
let data_checksum t = t.r_data_checksum

let find t key =
  let lo = ref 0 and hi = ref (Array.length t.keys - 1) and found = ref None in
  while !found = None && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let k = t.keys.(mid) in
    if k = key then found := Some mid
    else if k < key then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let key_at t k = t.keys.(k)
let count_at t k = t.counts.(k)
let count t key = match find t key with None -> 0 | Some k -> t.counts.(k)
let n_blocks_at t k = t.key_block_start.(k + 1) - t.key_block_start.(k)

let block_index t kidx bidx =
  if bidx < 0 || bidx >= n_blocks_at t kidx then
    invalid_arg "Segstore.Segment: block index out of range";
  t.key_block_start.(kidx) + bidx

let block_first t kidx bidx = t.blk_first.(block_index t kidx bidx)
let block_count t kidx bidx = t.blk_count.(block_index t kidx bidx)

let check_block_bounds t kidx bidx dst dst_off =
  let b = block_index t kidx bidx in
  let count = t.blk_count.(b) in
  if dst.(dst_off) <> t.blk_first.(b) then
    Block_codec.fail "block first docid mismatch";
  (* a corrupt block must not bleed into its successor's range *)
  if b + 1 < t.key_block_start.(kidx + 1)
     && dst.(dst_off + count - 1) >= t.blk_first.(b + 1)
  then Block_codec.fail "block overlaps successor"

let decode_block_into t kidx bidx dst ~dst_off =
  let b = block_index t kidx bidx in
  Block_codec.decode_block_into t.data ~pos:t.blk_off.(b) ~len:t.blk_len.(b)
    ~count:t.blk_count.(b) dst ~dst_off;
  check_block_bounds t kidx bidx dst dst_off

let decode_block t kidx bidx =
  let b = block_index t kidx bidx in
  let dst =
    Block_codec.decode_block t.data ~pos:t.blk_off.(b) ~len:t.blk_len.(b)
      ~count:t.blk_count.(b)
  in
  check_block_bounds t kidx bidx dst 0;
  dst

let iter t key f =
  match find t key with
  | None -> ()
  | Some kidx ->
      let prev = ref (-1) in
      for b = t.key_block_start.(kidx) to t.key_block_start.(kidx + 1) - 1 do
        let c =
          Block_codec.cursor t.data ~pos:t.blk_off.(b)
            ~limit:(t.blk_off.(b) + t.blk_len.(b))
        in
        let v = ref (Block_codec.read_varint c) in
        if !v <> t.blk_first.(b) then Block_codec.fail "block first docid mismatch";
        if !v <= !prev then Block_codec.fail "blocks not increasing";
        f !v;
        for _ = 2 to t.blk_count.(b) do
          let gap = Block_codec.read_varint c in
          if gap <= 0 then Block_codec.fail "block gap not positive";
          let next = !v + gap in
          if next < 0 then Block_codec.fail "block posting overflow";
          v := next;
          f next
        done;
        if Block_codec.remaining c <> 0 then Block_codec.fail "block has trailing bytes";
        prev := !v
      done

let verify_data t =
  let sum =
    Block_codec.fnv1a64 t.data ~pos:header_bytes ~len:(t.dir_offset - header_bytes)
  in
  if sum <> t.r_data_checksum then Block_codec.fail "data checksum mismatch"
