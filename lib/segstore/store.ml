open Bionav_util

type config = { cache_budget_bytes : int; verify_data : bool }

let default_config = { cache_budget_bytes = 4 * 1024 * 1024; verify_data = false }

type spec = { dir : string; spec_config : config }

let spec ?(config = default_config) dir = { dir; spec_config = config }

type t = {
  t_dir : string;
  t_config : config;
  manifest : Manifest.t;
  inverted : Segment.t array;  (* sorted by first_key, disjoint ranges *)
  forward : Segment.t array;
  cache : Block_cache.t;
  lock : Mutex.t;
}

let segments_g = Metrics.gauge "bionav_segstore_segments"
let file_bytes_g = Metrics.gauge "bionav_segstore_file_bytes"

let fail msg = invalid_arg ("Segstore.open_dir: " ^ msg)

let check_entry (e : Manifest.entry) seg =
  let ok =
    Segment.orientation seg = e.Manifest.orientation
    && Segment.first_key seg = e.Manifest.first_key
    && Segment.last_key seg = e.Manifest.last_key
    && Segment.n_keys seg = e.Manifest.n_keys
    && Segment.n_postings seg = e.Manifest.n_postings
    && Segment.file_bytes seg = e.Manifest.bytes
    && Segment.data_checksum seg = e.Manifest.checksum
  in
  if not ok then
    fail (Printf.sprintf "segment %s does not match its manifest entry" e.Manifest.file)

let ordered what segs =
  Array.iteri
    (fun i seg ->
      if i > 0 && Segment.first_key seg <= Segment.last_key segs.(i - 1) then
        fail (Printf.sprintf "%s segments have overlapping key ranges" what))
    segs;
  segs

let open_dir ?(config = default_config) dir =
  let manifest = Manifest.read ~dir in
  let open_entry (e : Manifest.entry) =
    let seg =
      Segment.openfile ~verify_data:config.verify_data
        (Filename.concat dir e.Manifest.file)
    in
    check_entry e seg;
    seg
  in
  let part o =
    List.filter (fun (e : Manifest.entry) -> e.Manifest.orientation = o)
      manifest.Manifest.segments
  in
  let inverted =
    ordered "inverted" (Array.of_list (List.map open_entry (part Segment.Inverted)))
  in
  let forward =
    ordered "forward" (Array.of_list (List.map open_entry (part Segment.Forward)))
  in
  let total o =
    List.fold_left (fun acc (e : Manifest.entry) -> acc + e.Manifest.n_postings) 0 (part o)
  in
  if total Segment.Inverted <> manifest.Manifest.n_associations then
    fail "inverted posting total does not match n_associations";
  if total Segment.Forward <> manifest.Manifest.n_associations then
    fail "forward posting total does not match n_associations";
  {
    t_dir = dir;
    t_config = config;
    manifest;
    inverted;
    forward;
    cache = Block_cache.create ~budget_bytes:config.cache_budget_bytes;
    lock = Mutex.create ();
  }

let dir t = t.t_dir
let n_concepts t = t.manifest.Manifest.n_concepts
let n_citations t = t.manifest.Manifest.n_citations
let n_associations t = t.manifest.Manifest.n_associations
let n_segments t = Array.length t.inverted + Array.length t.forward
let config t = t.t_config

let file_bytes t =
  List.fold_left
    (fun acc (e : Manifest.entry) -> acc + e.Manifest.bytes)
    0 t.manifest.Manifest.segments

(* Last segment whose first_key <= key; ranges are disjoint and sorted. *)
let segment_for segs key =
  let lo = ref 0 and hi = ref (Array.length segs - 1) and best = ref None in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if Segment.first_key segs.(mid) <= key then begin
      best := Some segs.(mid);
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  match !best with
  | Some seg when key <= Segment.last_key seg -> Some seg
  | _ -> None

let locate segs key =
  match segment_for segs key with
  | None -> None
  | Some seg -> (
      match Segment.find seg key with None -> None | Some kidx -> Some (seg, kidx))

let check_concept t concept =
  if concept < 0 || concept >= n_concepts t then
    invalid_arg (Printf.sprintf "Segstore: concept %d out of range" concept)

let check_citation t cit =
  if cit < 0 || cit >= n_citations t then
    invalid_arg (Printf.sprintf "Segstore: citation %d out of range" cit)

let concept_count t concept =
  check_concept t concept;
  match segment_for t.inverted concept with
  | None -> 0
  | Some seg -> Segment.count seg concept

let iter_postings t concept f =
  check_concept t concept;
  match segment_for t.inverted concept with
  | None -> ()
  | Some seg -> Segment.iter seg concept f

let iter_concepts_of_citation t cit f =
  check_citation t cit;
  match segment_for t.forward cit with
  | None -> ()
  | Some seg -> Segment.iter seg cit f

(* Materialize through the cache. A single-block key returns the cached
   block's docset directly; a multi-block key assembles the cached blocks
   into one fresh sorted array. *)
let materialize t segs key =
  match locate segs key with
  | None -> Docset.empty
  | Some (seg, kidx) ->
      Mutex.protect t.lock (fun () ->
          if Segment.n_blocks_at seg kidx = 1 then Block_cache.block t.cache seg kidx 0
          else begin
            let total = Segment.count_at seg kidx in
            let dst = Array.make total 0 in
            let off = ref 0 in
            for bidx = 0 to Segment.n_blocks_at seg kidx - 1 do
              let ds = Block_cache.block t.cache seg kidx bidx in
              Docset.iter
                (fun v ->
                  dst.(!off) <- v;
                  incr off)
                ds
            done;
            Docset.of_sorted_array_unchecked dst
          end)

let postings t concept =
  check_concept t concept;
  materialize t t.inverted concept

let concepts_of_citation t cit =
  check_citation t cit;
  materialize t t.forward cit

let publish_metrics t =
  Mutex.protect t.lock (fun () -> Block_cache.publish t.cache);
  Metrics.set segments_g (float_of_int (n_segments t));
  Metrics.set file_bytes_g (float_of_int (file_bytes t))
