(** Streaming bulk ingest: build a segment store without ever holding the
    corpus in memory.

    The pipeline is the classic external sort:

    + Citations arrive one at a time in id order. Each one's association
      list is appended directly to a rolling {e forward} segment (keys =
      citation ids, already sorted), and every (concept, citation) pair is
      packed into a bounded in-memory run buffer.
    + When the buffer fills it is sorted and spilled to a varint-delta run
      file, so peak memory is [run_budget_pairs] words regardless of
      corpus size.
    + {!seal} k-way-merges the spilled runs with the residual buffer into
      rolling {e inverted} segments (keys = concepts), writes the
      {!Manifest} atomically, and deletes the run files.

    Segments are cut at key boundaries once they pass
    [segment_max_bytes]. *)

type config = {
  run_budget_pairs : int;
      (** In-memory run buffer capacity, in (concept, citation) pairs —
          the ingest memory bound (default [2^20], 8 MiB of words). *)
  segment_max_bytes : int;  (** Rolling segment cut threshold (default 64 MiB). *)
}

val default_config : config

type t

val create : ?config:config -> n_concepts:int -> string -> t
(** [create ~n_concepts dir] — [dir] is created if absent.
    @raise Invalid_argument if [n_concepts] is out of the packable
    range. *)

val add_citation : t -> id:int -> ((int -> unit) -> unit) -> unit
(** [add_citation t ~id iter_concepts] — [iter_concepts f] must visit the
    citation's concepts strictly increasing; ids must arrive sequentially
    from 0. A citation with no concepts is counted but stores nothing. *)

type summary = {
  n_citations : int;
  n_associations : int;
  runs_spilled : int;
  n_segments : int;
  bytes : int;  (** Total sealed segment bytes. *)
}

val seal : t -> summary
(** Merge, write segments + manifest, clean up run files. The ingester is
    dead afterwards. *)

(* --- conveniences over the corpus sources ------------------------------- *)

val ingest_medline : ?config:config -> dir:string -> Bionav_corpus.Medline.t -> summary

val ingest_generated :
  ?config:config ->
  dir:string ->
  params:Bionav_corpus.Generator.params ->
  seed:int ->
  Bionav_mesh.Hierarchy.t ->
  summary
(** Streams {!Bionav_corpus.Generator.iter} straight into the ingester —
    the full out-of-core path: the corpus never exists in memory. *)

val ingest_nbib :
  ?config:config ->
  ?on_unknown_mh:[ `Skip | `Fail ] ->
  dir:string ->
  hierarchy:Bionav_mesh.Hierarchy.t ->
  string ->
  summary
(** Streams an nbib export file via {!Bionav_corpus.Nbib.fold_file}. *)
