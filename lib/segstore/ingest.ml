open Bionav_util
module Wire = Bionav_store.Codec.Wire

type config = { run_budget_pairs : int; segment_max_bytes : int }

let default_config =
  { run_budget_pairs = 1 lsl 20; segment_max_bytes = 64 * 1024 * 1024 }

let citations_total = Metrics.counter "bionav_segstore_ingest_citations_total"
let runs_spilled_total = Metrics.counter "bionav_segstore_ingest_runs_spilled_total"

(* Pairs are packed (concept lsl 31) lor citation, so sorting packed words
   is (concept, citation) lexicographic order — exactly inverted-segment
   write order. Both components must fit 31 bits. *)
let max_component = 1 lsl 31

let pack ~concept ~cit = (concept lsl 31) lor cit
let pair_concept p = p lsr 31
let pair_cit p = p land (max_component - 1)

(* --- rolling segment writers ------------------------------------------- *)

type rolling = {
  r_dir : string;
  prefix : string;
  r_orientation : Segment.orientation;
  max_bytes : int;
  mutable writer : Segment.writer option;
  mutable next_idx : int;
  mutable summaries : Segment.summary list;  (* reversed *)
}

let rolling ~dir ~prefix ~orientation ~max_bytes =
  { r_dir = dir; prefix; r_orientation = orientation; max_bytes;
    writer = None; next_idx = 0; summaries = [] }

let rolling_writer r =
  match r.writer with
  | Some w -> w
  | None ->
      let path =
        Filename.concat r.r_dir (Printf.sprintf "%s-%04d.seg" r.prefix r.next_idx)
      in
      r.next_idx <- r.next_idx + 1;
      let w = Segment.create_writer ~path ~orientation:r.r_orientation in
      r.writer <- Some w;
      w

let rolling_begin_key r key = Segment.begin_key (rolling_writer r) key
let rolling_add r v = Segment.add (rolling_writer r) v

(* Cut only at key boundaries, so a key's blocks never span segments. *)
let rolling_end_key r =
  match r.writer with
  | None -> invalid_arg "Segstore.Ingest: no open key"
  | Some w ->
      Segment.end_key w;
      if Segment.bytes_written w > r.max_bytes then begin
        r.summaries <- Segment.seal w :: r.summaries;
        r.writer <- None
      end

let rolling_finish r =
  (match r.writer with
  | Some w when Segment.n_keys_written w > 0 ->
      r.summaries <- Segment.seal w :: r.summaries
  | Some _ | None -> ());
  r.writer <- None;
  List.rev r.summaries

(* --- run files ---------------------------------------------------------- *)

(* A run file is: pair count (i64), then each packed pair as a varint
   delta from its predecessor (from -1 for the first, so deltas are
   always >= 1: pairs are unique). *)

let run_path dir idx = Filename.concat dir (Printf.sprintf "run-%04d.tmp" idx)

let write_run path pairs ~len =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create 65536 in
      Wire.write_i64 buf (Int64.of_int len);
      let prev = ref (-1) in
      for i = 0 to len - 1 do
        Wire.write_varint buf (pairs.(i) - !prev);
        prev := pairs.(i);
        if Buffer.length buf >= 65536 then begin
          Buffer.output_buffer oc buf;
          Buffer.clear buf
        end
      done;
      Buffer.output_buffer oc buf)

let fail_run msg = invalid_arg ("Segstore.Ingest: run file " ^ msg)

let read_run_i64 ic =
  let v = ref 0L in
  for i = 0 to 7 do
    match In_channel.input_byte ic with
    | None -> fail_run "truncated header"
    | Some b -> v := Int64.logor !v (Int64.shift_left (Int64.of_int b) (8 * i))
  done;
  !v

let read_run_varint ic =
  let acc = ref 0 and shift = ref 0 and continue = ref true in
  while !continue do
    if !shift > 62 then fail_run "varint too long";
    match In_channel.input_byte ic with
    | None -> fail_run "truncated varint"
    | Some b ->
        acc := !acc lor ((b land 0x7f) lsl !shift);
        shift := !shift + 7;
        if b land 0x80 = 0 then continue := false
  done;
  if !acc < 0 then fail_run "varint overflow";
  !acc

(* --- k-way merge streams ------------------------------------------------ *)

type stream = { mutable cur : int; next : unit -> int option }

let stream_of_run path =
  let ic = open_in_bin path in
  let remaining = ref (Int64.to_int (read_run_i64 ic)) in
  if !remaining < 0 then fail_run "bad pair count";
  let prev = ref (-1) in
  let next () =
    if !remaining = 0 then begin
      close_in ic;
      None
    end
    else begin
      decr remaining;
      let v = !prev + read_run_varint ic in
      if v <= !prev then fail_run "pairs not increasing";
      prev := v;
      Some v
    end
  in
  next

let stream_of_array pairs ~len =
  let i = ref 0 in
  fun () ->
    if !i >= len then None
    else begin
      let v = pairs.(!i) in
      incr i;
      Some v
    end

(* Array min-heap on [cur]; exhausted streams are removed. *)
let merge nexts ~f =
  let heap =
    Array.of_list
      (List.filter_map
         (fun next -> match next () with Some v -> Some { cur = v; next } | None -> None)
         nexts)
  in
  let size = ref (Array.length heap) in
  let swap i j =
    let tmp = heap.(i) in
    heap.(i) <- heap.(j);
    heap.(j) <- tmp
  in
  let rec sift_down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < !size && heap.(l).cur < heap.(!m).cur then m := l;
    if r < !size && heap.(r).cur < heap.(!m).cur then m := r;
    if !m <> i then begin
      swap i !m;
      sift_down !m
    end
  in
  for i = (!size / 2) - 1 downto 0 do
    sift_down i
  done;
  let last = ref (-1) in
  while !size > 0 do
    let s = heap.(0) in
    (* pairs are globally unique, but stay safe under replayed runs *)
    if s.cur > !last then begin
      f s.cur;
      last := s.cur
    end;
    (match s.next () with
    | Some v ->
        if v <= s.cur then fail_run "stream not increasing";
        s.cur <- v
    | None ->
        decr size;
        swap 0 !size);
    if !size > 0 then sift_down 0
  done

(* --- the ingester ------------------------------------------------------- *)

type t = {
  dir : string;
  t_config : config;
  n_concepts : int;
  forward : rolling;
  pairs : int array;  (* run buffer *)
  mutable fill : int;
  mutable runs : int;
  mutable n_citations : int;
  mutable n_associations : int;
  concepts_buf : int array;  (* one citation's concepts, reused *)
  mutable sealed : bool;
}

type summary = {
  n_citations : int;
  n_associations : int;
  runs_spilled : int;
  n_segments : int;
  bytes : int;
}

let ensure_dir dir =
  try Unix.mkdir dir 0o755
  with Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let create ?(config = default_config) ~n_concepts dir =
  if n_concepts < 0 || n_concepts >= max_component then
    invalid_arg "Segstore.Ingest: concept space exceeds 31 bits";
  if config.run_budget_pairs < 1 then
    invalid_arg "Segstore.Ingest: run budget must be positive";
  ensure_dir dir;
  {
    dir;
    t_config = config;
    n_concepts;
    forward =
      rolling ~dir ~prefix:"fwd" ~orientation:Segment.Forward
        ~max_bytes:config.segment_max_bytes;
    pairs = Array.make config.run_budget_pairs 0;
    fill = 0;
    runs = 0;
    n_citations = 0;
    n_associations = 0;
    concepts_buf = Array.make 4096 0;
    sealed = false;
  }

(* Sort the filled prefix in place: pad the tail with max_int (sorts
   last), sort the whole array. No transient copy — the run buffer is the
   ingest memory bound and must stay the only big allocation. *)
let sort_prefix pairs ~fill =
  Array.fill pairs fill (Array.length pairs - fill) max_int;
  Array.sort Int.compare pairs

let spill t =
  if t.fill > 0 then begin
    sort_prefix t.pairs ~fill:t.fill;
    write_run (run_path t.dir t.runs) t.pairs ~len:t.fill;
    t.runs <- t.runs + 1;
    t.fill <- 0;
    Metrics.incr runs_spilled_total
  end

let add_citation t ~id iter_concepts =
  if t.sealed then invalid_arg "Segstore.Ingest: sealed";
  if id <> t.n_citations then
    invalid_arg
      (Printf.sprintf "Segstore.Ingest: citation %d out of order (expected %d)" id
         t.n_citations);
  if id >= max_component then invalid_arg "Segstore.Ingest: citation id exceeds 31 bits";
  let n = ref 0 in
  iter_concepts (fun concept ->
      if concept < 0 || concept >= t.n_concepts then
        invalid_arg (Printf.sprintf "Segstore.Ingest: concept %d out of range" concept);
      if !n >= Array.length t.concepts_buf then
        invalid_arg "Segstore.Ingest: citation has too many concepts";
      t.concepts_buf.(!n) <- concept;
      incr n);
  if !n > 0 then begin
    rolling_begin_key t.forward id;
    for i = 0 to !n - 1 do
      rolling_add t.forward t.concepts_buf.(i);
      if t.fill = Array.length t.pairs then spill t;
      t.pairs.(t.fill) <- pack ~concept:t.concepts_buf.(i) ~cit:id;
      t.fill <- t.fill + 1
    done;
    rolling_end_key t.forward
  end;
  t.n_citations <- t.n_citations + 1;
  t.n_associations <- t.n_associations + !n;
  Metrics.incr citations_total

let seal t =
  if t.sealed then invalid_arg "Segstore.Ingest: sealed";
  t.sealed <- true;
  let forward_summaries = rolling_finish t.forward in
  (* residual buffer joins the merge in place — no extra spill *)
  sort_prefix t.pairs ~fill:t.fill;
  let streams =
    stream_of_array t.pairs ~len:t.fill
    :: List.init t.runs (fun i -> stream_of_run (run_path t.dir i))
  in
  let inverted =
    rolling ~dir:t.dir ~prefix:"inv" ~orientation:Segment.Inverted
      ~max_bytes:t.t_config.segment_max_bytes
  in
  let cur_concept = ref (-1) in
  let merged = ref 0 in
  merge streams ~f:(fun pair ->
      let concept = pair_concept pair and cit = pair_cit pair in
      if concept <> !cur_concept then begin
        if !cur_concept >= 0 then rolling_end_key inverted;
        rolling_begin_key inverted concept;
        cur_concept := concept
      end;
      rolling_add inverted cit;
      incr merged);
  if !cur_concept >= 0 then rolling_end_key inverted;
  let inverted_summaries = rolling_finish inverted in
  if !merged <> t.n_associations then
    invalid_arg "Segstore.Ingest: merge lost associations";
  let segments = inverted_summaries @ forward_summaries in
  Manifest.write ~dir:t.dir
    {
      Manifest.n_concepts = t.n_concepts;
      n_citations = t.n_citations;
      n_associations = t.n_associations;
      segments = List.map Manifest.entry_of_summary segments;
    };
  for i = 0 to t.runs - 1 do
    try Sys.remove (run_path t.dir i) with Sys_error _ -> ()
  done;
  {
    n_citations = t.n_citations;
    n_associations = t.n_associations;
    runs_spilled = t.runs;
    n_segments = List.length segments;
    bytes = List.fold_left (fun acc (s : Segment.summary) -> acc + s.Segment.bytes) 0 segments;
  }

(* --- conveniences ------------------------------------------------------- *)

module Medline = Bionav_corpus.Medline
module Generator = Bionav_corpus.Generator
module Nbib = Bionav_corpus.Nbib
module Citation = Bionav_corpus.Citation

let ingest_medline ?config ~dir medline =
  let hierarchy = Medline.hierarchy medline in
  let t =
    create ?config ~n_concepts:(Bionav_mesh.Hierarchy.size hierarchy) dir
  in
  for id = 0 to Medline.size medline - 1 do
    add_citation t ~id (fun f -> Medline.iter_citation_concepts medline id f)
  done;
  seal t

let ingest_generated ?config ~dir ~params ~seed hierarchy =
  let t = create ?config ~n_concepts:(Bionav_mesh.Hierarchy.size hierarchy) dir in
  Generator.iter ~params ~seed hierarchy ~f:(fun c ->
      add_citation t ~id:(Citation.id c) (fun f ->
          Intset.iter f (Citation.concepts c)));
  seal t

let ingest_nbib ?config ?on_unknown_mh ~dir ~hierarchy path =
  let t = create ?config ~n_concepts:(Bionav_mesh.Hierarchy.size hierarchy) dir in
  Nbib.fold_file ?on_unknown_mh ~hierarchy path ~init:() ~f:(fun () c ->
      add_citation t ~id:(Citation.id c) (fun f ->
          Intset.iter f (Citation.concepts c)));
  seal t
