(** Delta + varint block encoding of sorted posting lists, and the bounded
    bigstring readers every segment-store decoder goes through.

    A posting list is cut into blocks of at most {!block_size} strictly
    increasing non-negative ints. A block is encoded as the first value
    followed by the gaps to each successor, all LEB128 varints — the same
    wire varint {!Bionav_store.Codec.Wire} writes, so ingest run files and
    segment blocks share one number format.

    Decoders follow the store's decode-DoS discipline: every count is
    checked against the bytes actually remaining {e before} any allocation
    or loop trusts it, and corruption raises [Invalid_argument] prefixed
    ["Segstore.decode: "] — never a crash, never an unbounded
    allocation. *)

type bigstring =
  (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val block_size : int
(** Maximum postings per block (128). *)

val fail : string -> 'a
(** @raise Invalid_argument prefixed with ["Segstore.decode: "]. *)

(* --- bounded cursor over a mapped segment ------------------------------- *)

type cursor

val cursor : bigstring -> pos:int -> limit:int -> cursor
(** A read position over [data.(pos .. limit-1)].
    @raise Invalid_argument (via {!fail}) if the window is out of range. *)

val pos : cursor -> int
val remaining : cursor -> int

val read_u8 : cursor -> int
val read_i32 : cursor -> int
val read_i64 : cursor -> int64

val read_varint : cursor -> int
(** LEB128; fails on truncation or a value exceeding 63 bits. *)

(* --- blocks ------------------------------------------------------------- *)

val encode_block : Buffer.t -> int array -> off:int -> len:int -> unit
(** Append the encoding of [values.(off .. off+len-1)] (sorted strictly
    increasing, non-negative, [1 <= len <= block_size]).
    @raise Invalid_argument on a violation. *)

val decode_block : bigstring -> pos:int -> len:int -> count:int -> int array
(** Decode a block of exactly [count] postings from exactly [len] bytes.
    Validates [1 <= count <= len <= remaining input] before allocating,
    strict monotonicity, and exact consumption. *)

val decode_block_into :
  bigstring -> pos:int -> len:int -> count:int -> int array -> dst_off:int -> unit
(** {!decode_block} writing into [dst.(dst_off ..)] (for multi-block
    assembly without intermediate arrays). *)

(* --- checksums ---------------------------------------------------------- *)

val fnv1a64 : ?init:int64 -> bigstring -> pos:int -> len:int -> int64
(** FNV-1a 64 over a mapped range; byte-compatible with
    {!Bionav_store.Codec.Wire.fnv1a64} so checksums written through a
    [Buffer] verify against the mapped file. *)
