(* The BioNav command-line interface.

   The on-line system of the paper is a web application; this CLI drives the
   same stack interactively: a deterministic synthetic PubMed (hierarchy,
   corpus, associations, keyword index) with the paper's query workload
   planted in it, BioNav navigation sessions, and import/export of the
   MeSH-like hierarchy and the BioNav database. *)

open Cmdliner
open Bionav_util
open Bionav_core
module H = Bionav_mesh.Hierarchy
module FF = Bionav_mesh.Flat_file
module Medline = Bionav_corpus.Medline
module DB = Bionav_store.Database
module Codec = Bionav_store.Codec
module Eutils = Bionav_search.Eutils
module Engine = Bionav_engine.Engine
module Adaptive = Bionav_adaptive.Adaptive
module Seg = Bionav_segstore
module Q = Bionav_workload.Queries
module E = Bionav_workload.Experiment
module R = Bionav_workload.Report

(* --- shared options -------------------------------------------------- *)

let seed_arg =
  let doc = "Random seed for the deterministic synthetic corpus." in
  Arg.(value & opt int 11 & info [ "seed" ] ~docv:"SEED" ~doc)

let scale_arg =
  let doc = "Corpus scale: $(b,small) (fast, ~6k concepts) or $(b,full) (paper scale, ~48k)." in
  Arg.(value & opt (enum [ ("small", `Small); ("full", `Full) ]) `Small
       & info [ "scale" ] ~docv:"SCALE" ~doc)

let config_of = function `Small -> Q.small_config | `Full -> Q.default_config

let metrics_arg =
  let doc = "Dump the process metrics registry (counters, latency histograms) on exit." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let prefetch_arg =
  let doc =
    "Enable the prefetch subsystem: memoize EdgeCut plans across sessions and \
     speculatively precompute cuts for the most promising follow-up expansions."
  in
  Arg.(value & flag & info [ "prefetch" ] ~doc)

let engine_config ~prefetch base =
  { base with
    Engine.prefetch =
      (if prefetch then Some Bionav_prefetch.Prefetch.default_config else None) }

let adaptive_arg =
  let doc =
    "Learn EXPLORE/EXPAND probabilities from navigation behaviour instead of the      paper's static estimates: sessions feed per-concept evidence and new sessions      are planned with the learned model."
  in
  Arg.(value & flag & info [ "adaptive" ] ~doc)

let half_life_arg =
  let doc =
    "Evidence half-life in milliseconds for $(b,--adaptive) (old behaviour decays      exponentially; omit for no decay)."
  in
  Arg.(value & opt (some float) None & info [ "adaptive-half-life-ms" ] ~docv:"MS" ~doc)

let with_adaptive ~adaptive ~half_life_ms base =
  if not adaptive then base
  else
    { base with
      Engine.adaptive =
        Some { Adaptive.default_config with Adaptive.half_life_ms } }

let segstore_arg =
  let doc =
    "Serve concept-citation associations from the out-of-core segment store in \
     $(docv) (built with the $(b,ingest) command over the same scale and seed) \
     instead of the in-memory table."
  in
  Arg.(value & opt (some string) None & info [ "segstore" ] ~docv:"DIR" ~doc)

let with_segstore segstore base =
  { base with Engine.segstore = Option.map Seg.Store.spec segstore }

let dump_metrics flag = if flag then print_string (Bionav_util.Metrics.dump ())

(* When an engine exists, dump through it so the engine-owned gauges (live
   sessions, docset arenas) are refreshed first. *)
let dump_engine_metrics flag engine =
  if flag then print_string (Engine.metrics_text engine)

let build_workload scale seed =
  Printf.printf "building the synthetic corpus (scale=%s, seed=%d)...\n%!"
    (match scale with `Small -> "small" | `Full -> "full")
    seed;
  Q.build ~config:(config_of scale) ~seed ()

(* --- stats ------------------------------------------------------------ *)

let stats_cmd =
  let run scale seed =
    let w = build_workload scale seed in
    let h = w.Q.hierarchy in
    let m = w.Q.medline in
    Printf.printf "hierarchy: %d concepts, height %d, max width %d\n" (H.size h) (H.height h)
      (H.max_width h);
    Printf.printf "corpus:    %d citations, %.1f concepts/citation, %d concepts populated\n"
      (Medline.size m) (Medline.mean_annotations m) (Medline.concepts_with_citations m);
    Printf.printf "database:  %d associations\n" (DB.n_associations w.Q.database);
    Printf.printf "queries:   %s\n"
      (String.concat ", " (List.map (fun q -> q.Q.spec.Q.name) w.Q.queries))
  in
  let doc = "Print statistics of the synthetic corpus and its seeded queries." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run $ scale_arg $ seed_arg)

(* --- queries (Table I) ------------------------------------------------ *)

let queries_cmd =
  let run scale seed =
    let w = build_workload scale seed in
    print_string (R.table1 w)
  in
  let doc = "Print the seeded query workload (the paper's Table I)." in
  Cmd.v (Cmd.info "queries" ~doc) Term.(const run $ scale_arg $ seed_arg)

(* --- search ------------------------------------------------------------ *)

let search_cmd =
  let query_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Keyword query.")
  in
  let limit_arg =
    Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Summaries to print.")
  in
  let run scale seed query limit =
    let w = build_workload scale seed in
    let ranked = Bionav_search.Ranked.build w.Q.medline in
    let result = Eutils.esearch w.Q.eutils query in
    Printf.printf "%d citations match %S (TF-IDF ranked)\n" (Docset.cardinal result) query;
    List.iter
      (fun (id, score) ->
        Printf.printf "  %5.2f [%d] %s\n" score id (List.hd (Eutils.esummary w.Q.eutils [ id ])))
      (Bionav_search.Ranked.search ~limit ranked query)
  in
  let doc = "Run a keyword query against the synthetic PubMed (ESearch + ESummary)." in
  Cmd.v (Cmd.info "search" ~doc) Term.(const run $ scale_arg $ seed_arg $ query_arg $ limit_arg)

(* --- navigate ---------------------------------------------------------- *)

let strategy_arg =
  let doc =
    "Navigation strategy: $(b,bionav), $(b,static), $(b,paged) (static with a 10-entry \
     'more' button), $(b,optimal), or $(b,faceted) (start in the qualifier-facet space)."
  in
  Arg.(value
       & opt
           (enum
              [ ("bionav", `Bionav); ("static", `Static); ("paged", `Paged);
                ("optimal", `Optimal); ("faceted", `Faceted) ])
           `Bionav
       & info [ "strategy" ] ~docv:"STRATEGY" ~doc)

let strategy_of = function
  | `Bionav -> Navigation.bionav ()
  | `Static -> Navigation.Static
  | `Paged -> Navigation.Static_paged { page_size = 10 }
  | `Optimal -> Navigation.optimal ()
  | `Faceted -> Navigation.faceted ()

let render_numbered active nav =
  let visible = Active_tree.visible active in
  List.iteri
    (fun i v ->
      let rec vis_depth j =
        match Active_tree.visible_parent active j with -1 -> 0 | p -> 1 + vis_depth p
      in
      Printf.printf "%3d %s%s (%d)%s\n" i
        (String.make (2 * vis_depth v) ' ')
        (Nav_tree.label nav v)
        (Active_tree.component_distinct active v)
        (if Active_tree.is_expandable active v then " >>>" else ""))
    visible;
  visible

(* The loop drives the engine session, not a bare [Navigation.t]: refine,
   unrefine and facet swap the live navigation space under us, so every
   iteration re-reads the top frame's tree. Events are accumulated by hand
   (a [Session_log.record]er is bound to one space). *)
let interactive_loop ?record s eutils =
  let rev_events = ref [] in
  let log e = rev_events := e :: !rev_events in
  let help () =
    print_string
      "commands: x <i> = EXPAND node i | s <i> = SHOWRESULTS | b = BACKTRACK\n\
      \          r <i> = REFINE to node i's subtree | u = undo refine\n\
      \          f = qualifier facets of the current space | q = quit\n"
  in
  help ();
  let quit = ref false in
  while not !quit do
    print_string "\n";
    let nav = Engine.session_nav s in
    let active = Navigation.active (Engine.navigation s) in
    Printf.printf "space: %s (depth %d, %d results)\n" (Engine.space_id s)
      (Engine.refine_depth s)
      (Nav_tree.distinct_results nav);
    let visible = render_numbered active nav in
    let with_node i f =
      match int_of_string_opt i with
      | Some i when i >= 0 && i < List.length visible -> f (List.nth visible i)
      | Some _ | None -> print_string "no such node\n"
    in
    print_string "> ";
    match In_channel.input_line stdin with
    | None -> quit := true
    | Some line -> (
        match String.split_on_char ' ' (String.trim line) with
        | [ "q" ] -> quit := true
        | [ "b" ] ->
            if Engine.backtrack s then log Session_log.Backtracked
            else print_string "nothing to undo\n"
        | [ "u" ] ->
            if Engine.unrefine s then begin
              log Session_log.Unrefined;
              Printf.printf "back to space %s\n" (Engine.space_id s)
            end
            else print_string "no refinement to undo\n"
        | [ "f" ] -> (
            match Engine.facet s with
            | pages ->
                log Session_log.Faceted;
                Printf.printf "faceted into %d qualifier page(s)\n" pages
            | exception Invalid_argument msg -> Printf.printf "error: %s\n" msg)
        | [ "x"; i ] ->
            with_node i (fun node ->
                let revealed = Engine.expand s node in
                if revealed <> [] then
                  log
                    (Session_log.Expanded
                       { concept = Nav_tree.concept_id nav node;
                         revealed = List.map (Nav_tree.concept_id nav) revealed });
                Printf.printf "revealed %d concept(s)\n" (List.length revealed))
        | [ "r"; i ] ->
            with_node i (fun node ->
                let concept = Nav_tree.concept_id nav node in
                match Engine.refine s node with
                | n ->
                    log (Session_log.Refined { concept });
                    Printf.printf "refined to %d result(s) in space %s\n" n
                      (Engine.space_id s)
                | exception Invalid_argument msg -> Printf.printf "error: %s\n" msg)
        | [ "s"; i ] ->
            with_node i (fun node ->
                let citations = Engine.show_results s node in
                log
                  (Session_log.Shown
                     { concept = Nav_tree.concept_id nav node;
                       n_listed = Docset.cardinal citations });
                Printf.printf "%d citations:\n" (Docset.cardinal citations);
                List.iteri
                  (fun j id ->
                    if j < 10 then
                      Printf.printf "  %s\n" (List.hd (Eutils.esummary eutils [ id ])))
                  (Docset.elements citations))
        | _ -> help ())
  done;
  (match record with
  | None -> ()
  | Some path ->
      (* v2: per-action outcomes, the format [bionav learn] feeds on.
         [--replay] reads either version. *)
      Session_log.save_events (List.rev !rev_events) path;
      Printf.printf "transcript written to %s\n" path);
  let stats = Navigation.stats (Engine.navigation s) in
  Printf.printf "session cost in space %s: %d (EXPANDs %d, concepts %d, citations %d)\n"
    (Engine.space_id s) (Navigation.total_cost stats) stats.Navigation.expands
    stats.Navigation.revealed stats.Navigation.results_listed

let navigate_cmd =
  let query_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"QUERY" ~doc:"Keyword query.")
  in
  let auto_arg =
    let doc = "Navigate automatically (oracle user) to the concept with this exact label." in
    Arg.(value & opt (some string) None & info [ "auto" ] ~docv:"LABEL" ~doc)
  in
  let record_arg =
    let doc = "Write the session transcript to this file on quit." in
    Arg.(value & opt (some string) None & info [ "record" ] ~docv:"FILE" ~doc)
  in
  let replay_arg =
    let doc = "Apply a recorded transcript before the interactive loop." in
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let rec run scale seed query strategy auto record replay prefetch segstore adaptive
      half_life_ms metrics =
    (* The Optimal strategy is exponential and guarded to tiny components;
       surface its Invalid_argument as a clean error instead of a crash. *)
    try
      run_navigate scale seed query strategy auto record replay prefetch segstore adaptive
        half_life_ms metrics
    with Invalid_argument msg ->
      Printf.printf "error: %s\n" msg;
      Printf.printf "(the 'optimal' strategy only handles components of <= %d nodes;\n"
        Bionav_core.Opt_edgecut.max_size;
      Printf.printf " use --strategy bionav for real queries)\n";
      exit 1
  and run_navigate scale seed query strategy auto record replay prefetch segstore adaptive
      half_life_ms metrics =
    let w = build_workload scale seed in
    let engine =
      Engine.create
        ~config:
          (with_adaptive ~adaptive ~half_life_ms
             (with_segstore segstore (engine_config ~prefetch Engine.default_config)))
        ~database:w.Q.database ~eutils:w.Q.eutils ()
    in
    match Engine.search engine ~strategy:(strategy_of strategy) query with
    | Error msg ->
        Printf.printf "error: %s\n" msg;
        exit 1
    | Ok Engine.No_results ->
        Printf.printf "no results for %S\n" query;
        exit 1
    | Ok (Engine.Session s) -> (
        let nav = Engine.session_nav s in
        Printf.printf "%d citations; navigation tree: %d concept nodes\n\n"
          (Nav_tree.distinct_results nav)
          (Nav_tree.size nav - 1);
        (match auto with
        | None ->
            (match replay with
            | None -> ()
            | Some path ->
                let outcome =
                  Session_log.replay (Engine.navigation s) (Session_log.load path)
                in
                Printf.printf "replayed %s: %d applied, %d skipped\n" path
                  outcome.Session_log.applied outcome.Session_log.skipped);
            interactive_loop ?record s w.Q.eutils
        | Some label -> (
            match H.find_by_label w.Q.hierarchy label with
            | None ->
                Printf.printf "no concept labelled %S\n" label;
                exit 1
            | Some concept -> (
                match Nav_tree.node_of_concept nav concept with
                | None ->
                    Printf.printf "concept %S holds no results of this query\n" label;
                    exit 1
                | Some target ->
                    let outcome = Simulate.to_target (Engine.navigation s) ~target in
                    List.iter
                      (fun (r : Navigation.expand_record) ->
                        Printf.printf "EXPAND on %S: %d revealed (%.2f ms)\n"
                          (Nav_tree.label nav r.Navigation.node)
                          r.Navigation.n_revealed r.Navigation.elapsed_ms)
                      outcome.Simulate.history;
                    Printf.printf
                      "\nreached %S: cost %d (%d EXPANDs + %d concepts examined)\n" label
                      outcome.Simulate.navigation_cost outcome.Simulate.expands
                      outcome.Simulate.revealed)));
        dump_engine_metrics metrics engine)
  in
  let doc = "Navigate the results of a query (interactively, or --auto to a target)." in
  Cmd.v
    (Cmd.info "navigate" ~doc)
    Term.(
      const run $ scale_arg $ seed_arg $ query_arg $ strategy_arg $ auto_arg $ record_arg
      $ replay_arg $ prefetch_arg $ segstore_arg $ adaptive_arg $ half_life_arg
      $ metrics_arg)

(* --- experiment --------------------------------------------------------- *)

let experiment_cmd =
  let run scale seed metrics =
    let w = build_workload scale seed in
    let runs = E.run_all w in
    print_string (R.table1 w);
    print_string (R.fig8 runs);
    print_string (R.fig9 runs);
    print_string (R.fig10 runs);
    print_string (R.fig11 (List.hd runs));
    print_string (R.space_table (E.refinement_vs_topdown w));
    dump_metrics metrics
  in
  let doc =
    "Run the full evaluation (Table I, Figs. 8-11, navigation spaces) on the seeded \
     workload."
  in
  Cmd.v (Cmd.info "experiment" ~doc) Term.(const run $ scale_arg $ seed_arg $ metrics_arg)

(* --- serve --------------------------------------------------------------- *)

let serve_cmd =
  let port_arg =
    Arg.(value & opt int 8080 & info [ "port" ] ~docv:"PORT" ~doc:"TCP port to listen on.")
  in
  let max_sessions_arg =
    let doc = "Bound on live navigation sessions (LRU-evicted beyond it)." in
    Arg.(value & opt int Engine.default_config.Engine.max_sessions
         & info [ "max-sessions" ] ~docv:"N" ~doc)
  in
  let snapshot_arg =
    let doc = "Warm-start from this snapshot file (see the $(b,warm) command)." in
    Arg.(value & opt (some string) None & info [ "snapshot" ] ~docv:"FILE" ~doc)
  in
  let backlog_arg =
    let doc = "Listen backlog passed to the kernel accept queue." in
    Arg.(value & opt int Bionav_web.Http.default_server_config.Bionav_web.Http.backlog
         & info [ "backlog" ] ~docv:"N" ~doc)
  in
  let max_connections_arg =
    let doc = "Cap on concurrently open connections; accepts beyond it are shed with a 503." in
    Arg.(value
         & opt int Bionav_web.Http.default_server_config.Bionav_web.Http.max_connections
         & info [ "max-connections" ] ~docv:"N" ~doc)
  in
  let keep_alive_arg =
    let doc =
      "Allow HTTP keep-alive connection reuse. $(b,--keep-alive=false) forces \
       Connection: close on every response."
    in
    Arg.(value
         & opt bool Bionav_web.Http.default_server_config.Bionav_web.Http.keep_alive
         & info [ "keep-alive" ] ~docv:"BOOL" ~doc)
  in
  let idle_timeout_arg =
    let doc =
      "Close a keep-alive connection after this many milliseconds with no request in \
       progress (0 disables)."
    in
    Arg.(value
         & opt float Bionav_web.Http.default_server_config.Bionav_web.Http.idle_timeout_ms
         & info [ "idle-timeout-ms" ] ~docv:"MS" ~doc)
  in
  let max_requests_per_conn_arg =
    let doc = "Requests served on one connection before the server forces a close." in
    Arg.(value
         & opt int
             Bionav_web.Http.default_server_config.Bionav_web.Http.max_requests_per_conn
         & info [ "max-requests-per-conn" ] ~docv:"N" ~doc)
  in
  let rate_limit_arg =
    let doc =
      "Per-client admission rate in requests/second (token bucket per remote address; \
       excess answered 503). 0 disables."
    in
    Arg.(value
         & opt float Bionav_web.Http.default_server_config.Bionav_web.Http.rate_limit
         & info [ "rate-limit" ] ~docv:"RPS" ~doc)
  in
  let expand_budget_arg =
    let doc =
      "Per-EXPAND time budget in milliseconds; once exhausted, sessions degrade to a \
       static-style cut instead of running the solver."
    in
    Arg.(value & opt (some float) None & info [ "expand-budget-ms" ] ~docv:"MS" ~doc)
  in
  let domains_arg =
    let doc =
      "Worker domains serving requests in parallel (the session store is sharded to \
       match). 1 serves sequentially in the accept loop."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let run scale seed port max_sessions prefetch snapshot backlog max_connections
      expand_budget_ms domains segstore adaptive half_life_ms keep_alive idle_timeout_ms
      max_requests_per_conn rate_limit =
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info);
    if domains < 1 then begin
      Printf.printf "error: --domains must be >= 1\n";
      exit 1
    end;
    let w = build_workload scale seed in
    let app =
      (* A corrupt, mismatched, or missing snapshot (or segment store) is
         a clean startup error, not a crash. *)
      try
        Bionav_web.App.create
          ~suggestions:(List.map (fun q -> q.Q.spec.Q.name) w.Q.queries)
          ~config:
            (with_adaptive ~adaptive ~half_life_ms
               (with_segstore segstore
                  (engine_config ~prefetch
                     { Engine.default_config with
                       Engine.max_sessions;
                       expand_budget_ms;
                       shards = domains;
                     })))
          ?snapshot ~database:w.Q.database ~eutils:w.Q.eutils ()
      with (Invalid_argument msg | Sys_error msg) ->
        Printf.printf "error: %s\n" msg;
        Printf.printf "(rebuild the snapshot with: bionav warm <FILE>;\n";
        Printf.printf " rebuild the segment store with: bionav ingest <DIR>)\n";
        exit 1
    in
    Printf.printf "serving on http://127.0.0.1:%d with %d domain%s (Ctrl-C to stop)\n%!"
      port domains (if domains = 1 then "" else "s");
    Printf.printf "metrics at http://127.0.0.1:%d/metrics\n%!" port;
    if prefetch then
      Printf.printf "prefetch status at http://127.0.0.1:%d/prefetch\n%!" port;
    if adaptive then
      Printf.printf "adaptive-model status at http://127.0.0.1:%d/adaptive\n%!" port;
    let config =
      { Bionav_web.Http.default_server_config with Bionav_web.Http.backlog;
        max_connections; domains; keep_alive; idle_timeout_ms; max_requests_per_conn;
        rate_limit }
    in
    (* With multiple serving domains, speculation moves off the request
       path onto its own background domain (each tick takes the shard
       locks, so it never races the workers). *)
    let pd =
      if prefetch && domains > 1 then
        Some (Engine.spawn_prefetch_domain (Bionav_web.App.engine app) ~budget:4)
      else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Engine.stop_prefetch_domain pd)
      (fun () -> Bionav_web.Http.serve ~config ~port (Bionav_web.App.handle app))
  in
  let doc = "Serve the BioNav web interface over the synthetic corpus." in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run $ scale_arg $ seed_arg $ port_arg $ max_sessions_arg $ prefetch_arg
      $ snapshot_arg $ backlog_arg $ max_connections_arg $ expand_budget_arg $ domains_arg
      $ segstore_arg $ adaptive_arg $ half_life_arg $ keep_alive_arg $ idle_timeout_arg
      $ max_requests_per_conn_arg $ rate_limit_arg)

(* --- ingest -------------------------------------------------------------- *)

let ingest_cmd =
  let dir_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"Segment-store output directory (created if absent).")
  in
  let run_budget_arg =
    let doc = "In-memory run buffer capacity in (concept, citation) pairs — the ingest \
               memory bound." in
    Arg.(value & opt int Seg.Ingest.default_config.Seg.Ingest.run_budget_pairs
         & info [ "run-budget" ] ~docv:"PAIRS" ~doc)
  in
  let segment_max_arg =
    let doc = "Rolling segment cut threshold in bytes." in
    Arg.(value & opt int Seg.Ingest.default_config.Seg.Ingest.segment_max_bytes
         & info [ "segment-max-bytes" ] ~docv:"BYTES" ~doc)
  in
  let run scale seed dir run_budget_pairs segment_max_bytes =
    let w = build_workload scale seed in
    let config = { Seg.Ingest.run_budget_pairs; segment_max_bytes } in
    let t0 = Unix.gettimeofday () in
    let s = Seg.Ingest.ingest_medline ~config ~dir w.Q.medline in
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf
      "ingested %d citations (%d associations) into %s in %.2fs\n"
      s.Seg.Ingest.n_citations s.Seg.Ingest.n_associations dir dt;
    Printf.printf "  %d segment(s), %.1f MiB on disk, %d sorted run(s) spilled\n"
      s.Seg.Ingest.n_segments
      (float_of_int s.Seg.Ingest.bytes /. 1048576.)
      s.Seg.Ingest.runs_spilled;
    Printf.printf "serve it with: bionav serve --scale %s --seed %d --segstore %s\n"
      (match scale with `Small -> "small" | `Full -> "full")
      seed dir
  in
  let doc =
    "Bulk-ingest the synthetic corpus into an out-of-core segment store (compressed, \
     mmap-backed posting lists; bounded-memory external sort). Use the same scale and \
     seed when serving from it."
  in
  Cmd.v
    (Cmd.info "ingest" ~doc)
    Term.(const run $ scale_arg $ seed_arg $ dir_arg $ run_budget_arg $ segment_max_arg)

(* --- warm ---------------------------------------------------------------- *)

let warm_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Snapshot output path.")
  in
  let top_arg =
    let doc = "Warm the top $(docv) workload queries (most popular first)." in
    Arg.(value & opt int 5 & info [ "top" ] ~docv:"N" ~doc)
  in
  let run scale seed path top =
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info);
    let w = build_workload scale seed in
    let engine =
      Engine.create
        ~config:(engine_config ~prefetch:true Engine.default_config)
        ~database:w.Q.database ~eutils:w.Q.eutils ()
    in
    (* The workload list is popularity-ordered (the bench draws from it
       Zipf-style), so its head is exactly what repeat traffic hits. *)
    let queries =
      List.filteri (fun i _ -> i < top) (List.map (fun q -> q.Q.keyword) w.Q.queries)
    in
    let entries = Engine.warm engine queries in
    Engine.save_snapshot engine entries path;
    Printf.printf "warmed %d quer%s; snapshot written to %s\n" (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      path
  in
  let doc =
    "Precompute navigation trees and root EdgeCuts for the top workload queries and save \
     them as a warm-start snapshot (load with $(b,serve --snapshot))."
  in
  Cmd.v (Cmd.info "warm" ~doc) Term.(const run $ scale_arg $ seed_arg $ path_arg $ top_arg)

(* --- learn --------------------------------------------------------------- *)

let learn_cmd =
  let logs_arg =
    Arg.(non_empty & pos_all string []
         & info [] ~docv:"LOG" ~doc:"Session transcript file(s) (see navigate --record).")
  in
  let run half_life_ms paths =
    let ad = Adaptive.create ~config:{ Adaptive.default_config with Adaptive.half_life_ms } () in
    let failed = ref false in
    List.iter
      (fun path ->
        match Session_log.load_events path with
        | events ->
            Adaptive.learn ad events;
            Printf.printf "learned from %s: %d event(s)\n" path (List.length events)
        | exception (Invalid_argument msg | Sys_error msg) ->
            Printf.printf "error: %s: %s\n" path msg;
            failed := true)
      paths;
    print_newline ();
    print_string (Adaptive.status_text ad);
    if !failed then exit 1
  in
  let doc =
    "Bulk-learn EXPLORE/EXPAND evidence from recorded session transcripts and print the      resulting model (per-concept evidence and EXPLORE lifts)."
  in
  Cmd.v (Cmd.info "learn" ~doc) Term.(const run $ half_life_arg $ logs_arg)

(* --- export / import ---------------------------------------------------- *)

let mesh_export_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Output path.")
  in
  let run scale seed path =
    let w = build_workload scale seed in
    FF.save w.Q.hierarchy path;
    Printf.printf "wrote %d concepts to %s\n" (H.size w.Q.hierarchy - 1) path
  in
  let doc = "Export the hierarchy in the MeSH-flat-file-like text format." in
  Cmd.v (Cmd.info "mesh-export" ~doc) Term.(const run $ scale_arg $ seed_arg $ path_arg)

let db_export_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Output path.")
  in
  let run scale seed path =
    let w = build_workload scale seed in
    Codec.save w.Q.database path;
    Printf.printf "wrote the BioNav database to %s\n" path
  in
  let doc = "Export the BioNav database (hierarchy + associations) as binary." in
  Cmd.v (Cmd.info "db-export" ~doc) Term.(const run $ scale_arg $ seed_arg $ path_arg)

let db_info_cmd =
  let path_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"Database file.")
  in
  let run path =
    let db = Codec.load path in
    let h = DB.hierarchy db in
    Printf.printf "hierarchy: %d concepts, height %d\n" (H.size h) (H.height h);
    Printf.printf "citations: %d\n" (DB.n_citations db);
    Printf.printf "associations: %d\n" (DB.n_associations db)
  in
  let doc = "Inspect an exported BioNav database file." in
  Cmd.v (Cmd.info "db-info" ~doc) Term.(const run $ path_arg)

(* ------------------------------------------------------------------------ *)

let () =
  let doc = "BioNav: cost-optimized navigation of query results over a concept hierarchy" in
  let info = Cmd.info "bionav" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            stats_cmd; queries_cmd; search_cmd; navigate_cmd; experiment_cmd; serve_cmd;
            ingest_cmd; warm_cmd; learn_cmd; mesh_export_cmd; db_export_cmd; db_info_cmd;
          ]))
