(* Domain transfer: cost-aware navigation of an e-commerce catalog.

   The paper notes that the static navigation it improves on "is used by
   e-commerce sites, like Amazon and eBay". Nothing in the core library is
   biomedical-specific: any labelled concept hierarchy plus per-node result
   lists makes a navigation tree. Here a product-category tree is written in
   the MeSH-flat-file format, search results for "wireless headphones" are
   attached to categories, and BioNav picks which categories to reveal.

   Run with: dune exec examples/product_catalog.exe *)

open Bionav_util
open Bionav_core
module H = Bionav_mesh.Hierarchy
module FF = Bionav_mesh.Flat_file

let catalog =
  String.concat "\n"
    [
      "A|Electronics";
      "A.000|Audio";
      "A.000.000|Headphones";
      "A.000.001|Speakers";
      "A.000.002|Home Theater";
      "A.001|Phones & Accessories";
      "A.001.000|Phone Cases";
      "A.001.001|Chargers";
      "A.002|Computers";
      "A.002.000|Laptops";
      "A.002.001|Keyboards & Mice";
      "B|Sports & Outdoors";
      "B.000|Running";
      "B.001|Cycling";
      "C|Home & Kitchen";
      "C.000|Small Appliances";
    ]

(* Matching products per category for the query "wireless headphones":
   heavy overlap between Audio subcategories (the same product is listed in
   several), a few accessory and sports hits. Product ids are arbitrary. *)
let matches =
  [
    ("Headphones", List.init 40 (fun i -> i));
    ("Speakers", [ 2; 3; 41; 42 ]);
    ("Home Theater", [ 3; 43 ]);
    ("Audio", [ 0; 1; 44 ]);
    ("Phone Cases", [ 45; 46 ]);
    ("Chargers", [ 47 ]);
    ("Keyboards & Mice", [ 48 ]);
    ("Running", List.init 12 (fun i -> 20 + i) (* sport headphones overlap *));
    ("Cycling", [ 25; 49 ]);
  ]

(* Catalogue-wide product counts per category (the LT analogue: how many
   products live under each label, query-independent). *)
let totals =
  [
    ("Electronics", 120_000); ("Audio", 15_000); ("Headphones", 4_000);
    ("Speakers", 5_000); ("Home Theater", 3_000); ("Phones & Accessories", 30_000);
    ("Phone Cases", 18_000); ("Chargers", 9_000); ("Computers", 40_000);
    ("Laptops", 12_000); ("Keyboards & Mice", 8_000); ("Sports & Outdoors", 90_000);
    ("Running", 20_000); ("Cycling", 25_000); ("Home & Kitchen", 150_000);
    ("Small Appliances", 30_000);
  ]

let () =
  let hierarchy = FF.of_string ~root_label:"All Departments" catalog in
  let node label =
    match H.find_by_label hierarchy label with
    | Some c -> c
    | None -> failwith ("unknown category " ^ label)
  in
  let attachments = List.map (fun (l, ids) -> (node l, Docset.of_list ids)) matches in
  let total_count c =
    let label = H.label hierarchy c in
    match List.assoc_opt label totals with Some n -> n | None -> 0
  in
  let nav = Nav_tree.build ~hierarchy ~attachments ~total_count in
  Printf.printf "\"wireless headphones\": %d matching products across %d categories\n\n"
    (Nav_tree.distinct_results nav) (Nav_tree.size nav - 1);

  print_string "--- static interface (all subcategories, Amazon-style) ---\n";
  let s = Bionav_engine.Engine.start Navigation.Static nav in
  ignore (Navigation.expand s (Nav_tree.root nav));
  print_string (Active_tree.render (Navigation.active s));

  print_string "\n--- BioNav (cost-optimized reveal) ---\n";
  let b = Bionav_engine.Engine.start (Navigation.bionav ()) nav in
  ignore (Navigation.expand b (Nav_tree.root nav));
  print_string (Active_tree.render (Navigation.active b));
  print_string "\n";

  (* Drill into whatever BioNav considered most load-bearing. *)
  let active = Navigation.active b in
  (match List.find_opt (Active_tree.is_expandable active) (Active_tree.visible active) with
  | Some n when n <> Nav_tree.root nav ->
      let revealed = Navigation.expand b n in
      Printf.printf "--- after expanding %S (%d revealed) ---\n" (Nav_tree.label nav n)
        (List.length revealed);
      print_string (Active_tree.render active)
  | Some _ | None -> ());

  let st = Navigation.stats b in
  Printf.printf "\nBioNav session: %d EXPANDs, %d categories examined\n" st.Navigation.expands
    st.Navigation.revealed
