(* Exploratory search: the paper's prothymosin walk-through (SI, Fig. 2).

   A biologist issues a broad query, gets a few hundred citations spread over
   several independent lines of research, and navigates to a target concept
   ("Histones"-like) with both interfaces:

   - the static interface (Fig. 1): every EXPAND shows all children;
   - BioNav (Fig. 2): every EXPAND is a cost-optimized EdgeCut.

   Run with: dune exec examples/exploratory_search.exe *)

open Bionav_core
module Engine = Bionav_engine.Engine
module Q = Bionav_workload.Queries
module H = Bionav_mesh.Hierarchy

let () =
  (* The small workload contains a prothymosin-shaped query: ~120 results
     about 3 research lines, target at depth 4 holding ~15% of the result. *)
  let w = Q.build ~config:Q.small_config ~seed:3 () in
  let q = List.hd w.Q.queries in
  let nav = q.Q.nav in
  Printf.printf "query %S: %d citations, %d tree nodes, target %S (depth %d, L=%d, LT=%d)\n\n"
    q.Q.spec.Q.name (Q.result_count q) (Q.tree_size q)
    (H.label w.Q.hierarchy q.Q.target_concept)
    (Q.target_level q) (Q.target_l q) (Q.target_lt q);

  (* Watch BioNav navigate step by step. *)
  let session = Engine.start (Navigation.bionav ()) nav in
  let active = Navigation.active session in
  let step = ref 0 in
  while not (Active_tree.is_visible active q.Q.target_node) do
    incr step;
    let root = Active_tree.component_root_of active q.Q.target_node in
    let revealed = Navigation.expand session root in
    Printf.printf "EXPAND %d on %S reveals %d concept(s):\n" !step (Nav_tree.label nav root)
      (List.length revealed);
    List.iter
      (fun v ->
        Printf.printf "    %s (%d)%s\n" (Nav_tree.label nav v)
          (Active_tree.component_distinct active v)
          (if v = q.Q.target_node then "   <- target!" else ""))
      revealed
  done;
  let bionav_stats = Navigation.stats session in
  Printf.printf "\nBioNav reached the target: %d EXPANDs, %d concepts examined (cost %d)\n\n"
    bionav_stats.Navigation.expands bionav_stats.Navigation.revealed
    (Navigation.navigation_cost bionav_stats);

  (* The same navigation under the static interface. *)
  let static =
    Simulate.to_target (Engine.start Navigation.Static nav) ~target:q.Q.target_node
  in
  Printf.printf "static interface on the same query: %d EXPANDs, %d concepts examined (cost %d)\n"
    static.Simulate.expands static.Simulate.revealed static.Simulate.navigation_cost;
  Printf.printf "improvement: %.0f%% (the paper reports 85%% on average)\n\n"
    (100.
    *. (1.
       -. float_of_int (Navigation.navigation_cost bionav_stats)
          /. float_of_int static.Simulate.navigation_cost));

  (* BACKTRACK works too: undo the last expansion and show the tree. *)
  ignore (Navigation.backtrack session);
  print_string "--- active tree after one BACKTRACK ---\n";
  print_string (Active_tree.render active)
