(* Interop with real data formats: build a hierarchy from an NLM-style MeSH
   d-file, a corpus from a MEDLINE nbib export, and navigate the result.
   This is the path a user with real exported PubMed data would take.

   Run with: dune exec examples/import_export.exe *)

open Bionav_util
open Bionav_core
module H = Bionav_mesh.Hierarchy
module MA = Bionav_mesh.Mesh_ascii
module Nbib = Bionav_corpus.Nbib
module DB = Bionav_store.Database
module Eu = Bionav_search.Eutils

(* A miniature MeSH d-file: chemicals and cell-biology branches. *)
let d_file =
  String.concat "\n"
    [
      "*NEWRECORD"; "RECTYPE = D"; "MH = Chemicals and Drugs"; "MN = D01"; "";
      "*NEWRECORD"; "RECTYPE = D"; "MH = Nucleoproteins"; "MN = D01.100"; "";
      "*NEWRECORD"; "RECTYPE = D"; "MH = Histones"; "MN = D01.100.200"; "";
      "*NEWRECORD"; "RECTYPE = D"; "MH = Biological Phenomena"; "MN = G01"; "";
      "*NEWRECORD"; "RECTYPE = D"; "MH = Cell Physiology"; "MN = G01.100"; "";
      "*NEWRECORD"; "RECTYPE = D"; "MH = Cell Death"; "MN = G01.100.100"; "";
      "*NEWRECORD"; "RECTYPE = D"; "MH = Apoptosis"; "MN = G01.100.100.050"; "";
      "*NEWRECORD"; "RECTYPE = D"; "MH = Cell Proliferation"; "MN = G01.100.200"; "";
      "*NEWRECORD"; "RECTYPE = Q"; "SH = metabolism"; "";
    ]

(* A hand-written MEDLINE export: five prothymosin papers. *)
let nbib =
  String.concat "\n"
    [
      "PMID- 1001";
      "TI  - Prothymosin alpha promotes cell proliferation.";
      "AB  - We show proliferation effects of prothymosin alpha.";
      "AU  - Garcia M";
      "JT  - Cell";
      "DP  - 2006";
      "MH  - *Cell Proliferation";
      "MH  - Nucleoproteins/metabolism";
      "";
      "PMID- 1002";
      "TI  - Prothymosin alpha binds histones in chromatin.";
      "AB  - Binding of prothymosin to histones is characterized.";
      "AU  - Chen K";
      "JT  - J Biol Chem";
      "DP  - 2004";
      "MH  - *Histones/chemistry";
      "MH  - Nucleoproteins";
      "";
      "PMID- 1003";
      "TI  - Prothymosin alpha inhibits apoptosis.";
      "AB  - Anti-apoptotic role of prothymosin alpha.";
      "AU  - Novak H";
      "JT  - Nature";
      "DP  - 2003";
      "MH  - *Apoptosis";
      "MH  - Cell Death";
      "";
      "PMID- 1004";
      "TI  - Prothymosin alpha in cell death pathways.";
      "AB  - Cell death regulation via prothymosin.";
      "AU  - Patel K";
      "JT  - Science";
      "DP  - 2001";
      "MH  - Cell Death/pathology";
      "MH  - *Apoptosis/genetics";
      "";
      "PMID- 1005";
      "TI  - Chromatin remodeling and histones, a review.";
      "AB  - A review of histone biology and chromatin remodeling.";
      "AU  - Smith J";
      "JT  - Annu Rev";
      "DP  - 2007";
      "MH  - *Histones";
    ]

let () =
  let hierarchy = MA.of_string d_file in
  Printf.printf "imported hierarchy: %d concepts (d-file records, qualifier skipped)\n"
    (H.size hierarchy - 1);
  let medline = Nbib.of_string ~hierarchy nbib in
  Printf.printf "imported corpus: %d citations\n\n" (Bionav_corpus.Medline.size medline);

  let eutils = Eu.create medline in
  let database = DB.of_medline medline in
  let result = Eu.esearch eutils "prothymosin" in
  Printf.printf "query \"prothymosin\": %d of 5 citations match (the review does not)\n"
    (Docset.cardinal result);
  let nav = Nav_tree.of_database database result in
  let session = Bionav_engine.Engine.start (Navigation.bionav ()) nav in
  ignore (Navigation.expand session (Nav_tree.root nav));
  print_string "\n--- BioNav view of the imported literature ---\n";
  print_string (Active_tree.render (Navigation.active session));

  (* Round-trip: write the corpus back out and the DOT picture of the tree. *)
  let out = Filename.temp_file "bionav_export" ".nbib" in
  Nbib.save medline out;
  Printf.printf "\nre-exported the corpus to %s (%d bytes)\n" out
    (let st = open_in out in
     let n = in_channel_length st in
     close_in st;
     n);
  let dot = Dot.active_tree (Navigation.active session) in
  Printf.printf "DOT rendering of the active tree (%d bytes):\n\n%s" (String.length dot)
    dot
