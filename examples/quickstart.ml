(* Quickstart: the whole BioNav pipeline in ~60 lines.

   1. generate a MeSH-like hierarchy and a MEDLINE-like corpus;
   2. build the BioNav database (off-line phase, paper Fig. 7);
   3. run a keyword query through the eutils stand-in;
   4. build the navigation tree and start a BioNav session;
   5. EXPAND twice and SHOWRESULTS.

   Run with: dune exec examples/quickstart.exe *)

open Bionav_util
open Bionav_core
module Hierarchy = Bionav_mesh.Hierarchy
module Synthetic = Bionav_mesh.Synthetic
module Generator = Bionav_corpus.Generator
module Database = Bionav_store.Database
module Eutils = Bionav_search.Eutils

let () =
  (* Off-line: hierarchy + corpus + database. A seeded group plants a small
     literature about two related concepts, tagged with the fictional
     substance name "examplase" so we can search for it. *)
  let hierarchy = Synthetic.generate ~params:Synthetic.small_params ~seed:1 () in
  let deep_concepts =
    List.filter (fun c -> Hierarchy.depth hierarchy c >= 4) (List.init (Hierarchy.size hierarchy) Fun.id)
  in
  let cluster = [ List.nth deep_concepts 0; List.nth deep_concepts 7 ] in
  let params =
    {
      Generator.small_params with
      Generator.n_citations = 1_200;
      seeded_groups =
        [
          { Generator.tag = Some "examplase"; cluster; count = 80; topics_per_citation = (1, 2) };
          { Generator.tag = None; cluster; count = 240; topics_per_citation = (1, 2) };
        ];
    }
  in
  let medline = Generator.generate ~params ~seed:2 hierarchy in
  let database = Database.of_medline medline in
  let eutils = Eutils.create medline in
  Printf.printf "corpus: %d citations over %d concepts (%.1f concepts/citation)\n\n"
    (Bionav_corpus.Medline.size medline)
    (Hierarchy.size hierarchy)
    (Bionav_corpus.Medline.mean_annotations medline);

  (* On-line: query -> navigation tree -> session. *)
  let query = "examplase" in
  let result = Eutils.esearch eutils query in
  Printf.printf "query %S -> %d citations\n" query (Docset.cardinal result);
  let nav = Nav_tree.of_database database result in
  Printf.printf "navigation tree: %d concept nodes, height %d, %d attached (with duplicates)\n\n"
    (Nav_tree.size nav - 1)
    (Nav_tree.height nav) (Nav_tree.total_attached nav);

  let session = Bionav_engine.Engine.start (Navigation.bionav ()) nav in
  let active = Navigation.active session in
  print_string "--- initial active tree ---\n";
  print_string (Active_tree.render active);

  let revealed = Navigation.expand session (Nav_tree.root nav) in
  Printf.printf "\n--- after EXPAND on the root (%d concepts revealed) ---\n"
    (List.length revealed);
  print_string (Active_tree.render active);

  (* Expand the first revealed concept that is still expandable. *)
  (match List.find_opt (Active_tree.is_expandable active) revealed with
  | None -> ()
  | Some node ->
      let more = Navigation.expand session node in
      Printf.printf "\n--- after EXPAND on %S (%d more revealed) ---\n"
        (Nav_tree.label nav node) (List.length more);
      print_string (Active_tree.render active);
      (* SHOWRESULTS on one of its pieces. *)
      let target = match more with m :: _ -> m | [] -> node in
      let citations = Navigation.show_results session target in
      Printf.printf "\n--- SHOWRESULTS on %S: %d citations ---\n"
        (Nav_tree.label nav target) (Docset.cardinal citations);
      List.iteri
        (fun i id -> if i < 5 then Printf.printf "  %s\n" (List.hd (Eutils.esummary eutils [ id ])))
        (Docset.elements citations));

  let stats = Navigation.stats session in
  Printf.printf "\nsession cost: %d EXPANDs + %d concepts examined + %d citations listed = %d\n"
    stats.Navigation.expands stats.Navigation.revealed stats.Navigation.results_listed
    (Navigation.total_cost stats)
