(* Theorem 1, executably: why picking the optimal EdgeCut is NP-complete.

   The paper reduces MAXIMUM EDGE SUBGRAPH (MES) to the TOPDOWN-EXHAUSTIVE
   Decision problem (TED): pick k graph vertices maximizing internal edge
   weight  <=>  cut a star-shaped navigation tree into n-k+1 components
   maximizing the duplicates confined within components. This example builds
   the reduction for a concrete graph and shows the correspondence.

   Run with: dune exec examples/npc_reduction.exe *)

open Bionav_npc

let () =
  (* A 5-vertex graph: a heavy triangle {0,1,2} plus light spokes. *)
  let g =
    Mes.make ~n_vertices:5
      ~edges:[ (0, 1, 4); (1, 2, 5); (0, 2, 3); (2, 3, 1); (3, 4, 2); (1, 4, 1) ]
  in
  print_string "graph: 5 vertices\n";
  List.iter (fun (u, v, w) -> Printf.printf "  %d -- %d  (weight %d)\n" u v w) g.Mes.edges;
  print_newline ();

  List.iter
    (fun k ->
      let subset, weight = Mes.solve g ~k in
      let ted, j = Reduction.reduce g ~k in
      let dup = Option.get (Ted.best_duplicates ted ~components:j) in
      Printf.printf "k = %d: MES optimum {%s} with weight %d\n" k
        (String.concat "," (List.map string_of_int subset))
        weight;
      Printf.printf "        TED: star of %d nodes, %d components -> %d duplicates %s\n" (Ted.size ted)
        j dup
        (if dup = weight then "(= MES, as Theorem 1 predicts)" else "(MISMATCH!)"))
    [ 1; 2; 3; 4 ];
  print_newline ();

  (* Inspect the k = 3 instance: the star's multisets and the optimal cut. *)
  let k = 3 in
  let ted, j = Reduction.reduce g ~k in
  Printf.printf "TED instance for k = %d (%d components required):\n" k j;
  for v = 1 to Ted.size ted - 1 do
    (* Count elements per child to show the shared-element structure. *)
    Printf.printf "  star child %d (vertex %d): %d elements\n" v (v - 1)
      (List.length
         (let t = ted in
          t.Ted.elements.(v)))
  done;
  (* Exhaustively find a best cut and translate it back to vertices. *)
  let best = ref None in
  let children = List.init (Ted.size ted - 1) (fun i -> i + 1) in
  let rec subsets = function
    | [] -> [ [] ]
    | x :: rest ->
        let r = subsets rest in
        r @ List.map (fun s -> x :: s) r
  in
  List.iter
    (fun cut ->
      if List.length cut = j - 1 then begin
        let d = Ted.duplicates_within ted (Ted.cut_components ted cut) in
        match !best with
        | Some (_, bd) when bd >= d -> ()
        | _ -> best := Some (cut, d)
      end)
    (subsets children);
  match !best with
  | None -> print_string "no cut exists\n"
  | Some (cut, d) ->
      Printf.printf "optimal TED cut removes star children {%s} (%d duplicates kept)\n"
        (String.concat "," (List.map string_of_int cut))
        d;
      Printf.printf "translated back: MES keeps vertices {%s}\n"
        (String.concat ","
           (List.map string_of_int (Reduction.mes_of_ted_cut g ted cut)))
