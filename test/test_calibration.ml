module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module Cal = Bionav_corpus.Calibration

let report =
  lazy
    (let h = S.generate ~params:S.small_params ~seed:111 () in
     let m = G.generate ~params:{ G.small_params with G.n_citations = 500 } ~seed:112 h in
     Cal.compute m)

let test_shapes () =
  let r = Lazy.force report in
  Alcotest.(check int) "citations" 500 r.Cal.n_citations;
  Alcotest.(check bool) "concepts populated" true (r.Cal.concepts_with_citations > 0);
  Alcotest.(check bool) "annotations positive" true (r.Cal.mean_annotations > 0.);
  Alcotest.(check bool) "median <= plausible" true
    (r.Cal.median_annotations <= 2. *. r.Cal.mean_annotations);
  Alcotest.(check bool) "majors within bounds" true
    (r.Cal.mean_major_topics >= 1. && r.Cal.mean_major_topics <= 3.)

let test_gini_bounds () =
  let r = Lazy.force report in
  Alcotest.(check bool) "gini in [0,1]" true
    (r.Cal.gini_citation_counts >= 0. && r.Cal.gini_citation_counts <= 1.)

let test_gini_known_values () =
  (* Equal masses -> 0; all mass on one -> (n-1)/n. Accessed through compute
     is awkward, so check the reported value on constructed corpora is
     consistent with concentration: the generated corpus must be far from
     uniform. *)
  let r = Lazy.force report in
  Alcotest.(check bool) "concentrated" true (r.Cal.gini_citation_counts > 0.3)

let test_depth_bias () =
  let r = Lazy.force report in
  Alcotest.(check bool) "associations shallower than leaves" true
    (r.Cal.depth_mean_annotation < float_of_int r.Cal.hierarchy_height)

let test_bands_report_names () =
  let checks = Cal.within_paper_bands (Lazy.force report) in
  Alcotest.(check int) "six checks" 6 (List.length checks);
  List.iter
    (fun (name, _) -> Alcotest.(check bool) "named" true (String.length name > 5))
    checks

let test_full_scale_bands () =
  (* The headline claim: the default-scale corpus passes every band. Slow-ish
     (~10 s) but this is the quantitative backing of DESIGN.md's
     substitution table. *)
  let w = Bionav_workload.Queries.build ~seed:11 () in
  let r = Cal.compute w.Bionav_workload.Queries.medline in
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    (Cal.within_paper_bands r)

let () =
  Alcotest.run "calibration"
    [
      ( "unit",
        [
          Alcotest.test_case "shapes" `Quick test_shapes;
          Alcotest.test_case "gini bounds" `Quick test_gini_bounds;
          Alcotest.test_case "gini concentration" `Quick test_gini_known_values;
          Alcotest.test_case "depth bias" `Quick test_depth_bias;
          Alcotest.test_case "band names" `Quick test_bands_report_names;
        ] );
      ("full-scale", [ Alcotest.test_case "paper bands" `Slow test_full_scale_bands ]);
    ]
