(* The serving tier: keep-alive protocol semantics over socketpairs,
   the incremental parser (including the fragmentation property), the
   admission controller on a simulated clock, and the readiness-loop
   server end to end over TCP — under both --domains 1 and multicore. *)

module Http = Bionav_web.Http
module Admission = Bionav_web.Admission
module Metrics = Bionav_util.Metrics
module Clock = Bionav_resilience.Clock

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let count_sub ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i acc =
    if i + m > n then acc
    else if String.sub s i m = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  if m = 0 then 0 else go 0 0

let hello_handler ~path ~query:_ = Http.ok ("hello " ^ path)

let with_socketpair f =
  let client, server = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) [ client; server ])
    (fun () -> f client server)

let write_str fd s = ignore (Unix.write_substring fd s 0 (String.length s))

let read_all fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    match Unix.read fd chunk 0 1024 with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
  in
  loop ();
  Buffer.contents buf

(* Read one framed response (headers + Content-Length body) off a
   keep-alive descriptor; bytes past it stay in [pending]. Returns
   (status, raw response bytes). *)
let read_response fd pending =
  let chunk = Bytes.create 4096 in
  let fill () =
    let n = Unix.read fd chunk 0 4096 in
    if n = 0 then failwith "connection closed mid-response";
    Buffer.add_subbytes pending chunk 0 n
  in
  let find sub s =
    let n = String.length s and m = String.length sub in
    let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
    go 0
  in
  let rec header_end () =
    match find "\r\n\r\n" (Buffer.contents pending) with
    | Some i -> i
    | None ->
        fill ();
        header_end ()
  in
  let hdr_end = header_end () in
  let head = String.sub (Buffer.contents pending) 0 hdr_end in
  let status = Scanf.sscanf head "HTTP/1.1 %d" Fun.id in
  let clen =
    match find "content-length:" (String.lowercase_ascii head) with
    | None -> 0
    | Some i ->
        let rest = String.sub head (i + 15) (String.length head - i - 15) in
        Scanf.sscanf (String.trim rest) "%d" Fun.id
  in
  let total = hdr_end + 4 + clen in
  while Buffer.length pending < total do
    fill ()
  done;
  let all = Buffer.contents pending in
  let raw = String.sub all 0 total in
  let leftover = String.sub all total (String.length all - total) in
  Buffer.clear pending;
  Buffer.add_string pending leftover;
  (status, raw)

(* --- socketpair protocol tests (serve_connection) -------------------- *)

let fast_config =
  { Http.default_server_config with Http.read_timeout_ms = 2000.; idle_timeout_ms = 2000. }

(* Two complete requests in a single write: both answered, in order. *)
let test_pipelined_pair () =
  let reply =
    with_socketpair (fun client server ->
        write_str client "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n";
        Unix.shutdown client Unix.SHUTDOWN_SEND;
        Http.serve_connection ~config:fast_config hello_handler server;
        Unix.shutdown server Unix.SHUTDOWN_SEND;
        read_all client)
  in
  Alcotest.(check int) "two responses" 2 (count_sub ~sub:"HTTP/1.1 200 OK" reply);
  Alcotest.(check bool) "first body" true (contains ~sub:"hello /a" reply);
  Alcotest.(check bool) "second body" true (contains ~sub:"hello /b" reply);
  let pos sub =
    let n = String.length reply and m = String.length sub in
    let rec go i = if i + m > n then max_int else if String.sub reply i m = sub then i else go (i + 1) in
    go 0
  in
  Alcotest.(check bool) "in order" true (pos "hello /a" < pos "hello /b")

(* One byte per write across every parser boundary. *)
let test_split_byte_by_byte () =
  with_socketpair (fun client server ->
      let t =
        Thread.create
          (fun () ->
            Http.serve_connection ~config:fast_config hello_handler server;
            Unix.shutdown server Unix.SHUTDOWN_SEND)
          ()
      in
      let req = "GET /drip HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n" in
      String.iter (fun ch -> write_str client (String.make 1 ch)) req;
      let pending = Buffer.create 64 in
      let status, raw = read_response client pending in
      Thread.join t;
      Alcotest.(check int) "200 despite fragmentation" 200 status;
      Alcotest.(check bool) "body" true (contains ~sub:"hello /drip" raw))

(* Keep-alive reuse: five sequential request/response exchanges on one
   connection, reuse counted. *)
let test_keepalive_reuse () =
  let reuse = Metrics.counter "bionav_serve_keepalive_reuses_total" in
  let before = Metrics.value reuse in
  with_socketpair (fun client server ->
      let t =
        Thread.create (fun () -> Http.serve_connection ~config:fast_config hello_handler server) ()
      in
      let pending = Buffer.create 256 in
      for i = 1 to 5 do
        write_str client (Printf.sprintf "GET /r%d HTTP/1.1\r\n\r\n" i);
        let status, raw = read_response client pending in
        Alcotest.(check int) (Printf.sprintf "request %d status" i) 200 status;
        Alcotest.(check bool)
          (Printf.sprintf "request %d keep-alive" i)
          true
          (contains ~sub:"Connection: keep-alive" raw);
        Alcotest.(check bool)
          (Printf.sprintf "request %d body" i)
          true
          (contains ~sub:(Printf.sprintf "hello /r%d" i) raw)
      done;
      Unix.shutdown client Unix.SHUTDOWN_SEND;
      Thread.join t);
  Alcotest.(check bool) "reuses counted" true (Metrics.value reuse >= before + 4)

(* A silent client is closed after idle_timeout_ms without any bytes. *)
let test_idle_timeout_closes_silently () =
  let idle_closed = Metrics.counter "bionav_serve_idle_closed_total" in
  let before = Metrics.value idle_closed in
  let config = { fast_config with Http.idle_timeout_ms = 60. } in
  let reply =
    with_socketpair (fun client server ->
        Http.serve_connection ~config hello_handler server;
        Unix.shutdown server Unix.SHUTDOWN_SEND;
        read_all client)
  in
  Alcotest.(check string) "no bytes sent" "" reply;
  Alcotest.(check int) "idle close counted" (before + 1) (Metrics.value idle_closed)

(* Connection: close is honored — and a pipelined request after it is
   never answered. *)
let test_connection_close_honored () =
  let reply =
    with_socketpair (fun client server ->
        write_str client "GET /one HTTP/1.1\r\nConnection: close\r\n\r\nGET /two HTTP/1.1\r\n\r\n";
        Unix.shutdown client Unix.SHUTDOWN_SEND;
        Http.serve_connection ~config:fast_config hello_handler server;
        Unix.shutdown server Unix.SHUTDOWN_SEND;
        read_all client)
  in
  Alcotest.(check int) "exactly one response" 1 (count_sub ~sub:"HTTP/1.1 200 OK" reply);
  Alcotest.(check bool) "close header" true (contains ~sub:"Connection: close" reply);
  Alcotest.(check bool) "second request unanswered" false (contains ~sub:"hello /two" reply)

(* An HTTP/1.0 request defaults to close; keep_alive=false config forces
   close even on HTTP/1.1. *)
let test_close_defaults () =
  let reply =
    with_socketpair (fun client server ->
        write_str client "GET /old HTTP/1.0\r\n\r\n";
        Unix.shutdown client Unix.SHUTDOWN_SEND;
        Http.serve_connection ~config:fast_config hello_handler server;
        Unix.shutdown server Unix.SHUTDOWN_SEND;
        read_all client)
  in
  Alcotest.(check bool) "1.0 closes" true (contains ~sub:"Connection: close" reply);
  let config = { fast_config with Http.keep_alive = false } in
  let reply =
    with_socketpair (fun client server ->
        write_str client "GET /new HTTP/1.1\r\n\r\n";
        Unix.shutdown client Unix.SHUTDOWN_SEND;
        Http.serve_connection ~config hello_handler server;
        Unix.shutdown server Unix.SHUTDOWN_SEND;
        read_all client)
  in
  Alcotest.(check bool) "keep_alive=false closes" true (contains ~sub:"Connection: close" reply)

(* Oversized header line is still a 400, even while incomplete. *)
let test_oversized_header_line () =
  let oversized = Metrics.counter "bionav_resilience_oversized_requests_total" in
  let before = Metrics.value oversized in
  let config = { fast_config with Http.max_request_line = 64 } in
  let reply =
    with_socketpair (fun client server ->
        write_str client ("GET /x HTTP/1.1\r\nX-Pad: " ^ String.make 200 'p' ^ "\r\n\r\n");
        Unix.shutdown client Unix.SHUTDOWN_SEND;
        Http.serve_connection ~config hello_handler server;
        Unix.shutdown server Unix.SHUTDOWN_SEND;
        read_all client)
  in
  Alcotest.(check bool) "400 over the wire" true (contains ~sub:"HTTP/1.1 400" reply);
  Alcotest.(check bool) "reason" true (contains ~sub:"request too long" reply);
  Alcotest.(check bool) "counted" true (Metrics.value oversized > before)

(* Slow loris: a partial request followed by silence answers 408 after
   read_timeout_ms. *)
let test_slow_loris_408 () =
  let timeouts = Metrics.counter "bionav_resilience_request_timeouts_total" in
  let before = Metrics.value timeouts in
  let config = { fast_config with Http.read_timeout_ms = 60. } in
  let reply =
    with_socketpair (fun client server ->
        write_str client "GET /x HTT";
        Http.serve_connection ~config hello_handler server;
        Unix.shutdown server Unix.SHUTDOWN_SEND;
        read_all client)
  in
  Alcotest.(check bool) "408 over the wire" true (contains ~sub:"HTTP/1.1 408" reply);
  Alcotest.(check int) "timeout counted" (before + 1) (Metrics.value timeouts)

(* max_requests_per_conn: the budget-exhausting response carries
   Connection: close. *)
let test_max_requests_per_conn () =
  let config = { fast_config with Http.max_requests_per_conn = 2 } in
  let reply =
    with_socketpair (fun client server ->
        write_str client "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n";
        Unix.shutdown client Unix.SHUTDOWN_SEND;
        Http.serve_connection ~config hello_handler server;
        Unix.shutdown server Unix.SHUTDOWN_SEND;
        read_all client)
  in
  Alcotest.(check int) "two served" 2 (count_sub ~sub:"HTTP/1.1 200 OK" reply);
  Alcotest.(check int) "one keep-alive" 1 (count_sub ~sub:"Connection: keep-alive" reply);
  Alcotest.(check int) "then close" 1 (count_sub ~sub:"Connection: close" reply);
  Alcotest.(check bool) "third unanswered" false (contains ~sub:"hello /c" reply)

(* --- parser unit tests ------------------------------------------------ *)

let buf_of s =
  let b = Bytes.create (max 1 (String.length s)) in
  Bytes.blit_string s 0 b 0 (String.length s);
  (b, String.length s)

let test_parser_resumable () =
  let partials = [ "GE"; "GET /x HT"; "GET /x HTTP/1.1\r\n"; "GET /x HTTP/1.1\r\nHost: a\r\n" ] in
  List.iter
    (fun p ->
      let b, len = buf_of p in
      match Http.Parser.parse b ~len with
      | Http.Parser.Incomplete -> ()
      | _ -> Alcotest.fail (Printf.sprintf "%S should be Incomplete" p))
    partials;
  let full = "GET /x HTTP/1.1\r\nHost: a\r\n\r\ntrailing" in
  let b, len = buf_of full in
  match Http.Parser.parse b ~len with
  | Http.Parser.Complete (req, consumed) ->
      Alcotest.(check string) "meth" "GET" req.Http.Parser.meth;
      Alcotest.(check string) "target" "/x" req.Http.Parser.target;
      Alcotest.(check int) "consumed up to body" (String.length full - 8) consumed
  | _ -> Alcotest.fail "full request should be Complete"

let keep_of s =
  let b, len = buf_of s in
  match Http.Parser.parse b ~len with
  | Http.Parser.Complete (req, _) -> req.Http.Parser.keep_alive
  | _ -> Alcotest.fail (Printf.sprintf "%S should parse" s)

let test_parser_keep_alive_semantics () =
  Alcotest.(check bool) "1.1 defaults keep" true (keep_of "GET / HTTP/1.1\r\n\r\n");
  Alcotest.(check bool) "1.0 defaults close" false (keep_of "GET / HTTP/1.0\r\n\r\n");
  Alcotest.(check bool) "1.0 + keep-alive keeps" true
    (keep_of "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
  Alcotest.(check bool) "1.1 + close closes" false
    (keep_of "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  Alcotest.(check bool) "token list honors close" false
    (keep_of "GET / HTTP/1.1\r\nConnection: foo, Close\r\n\r\n");
  Alcotest.(check bool) "unknown version closes" false (keep_of "GET / HTTP/0.9\r\n\r\n")

let test_parser_bounds_on_incomplete () =
  let b, len = buf_of (String.make 100 'a') in
  (match Http.Parser.parse ~max_line:32 b ~len with
  | Http.Parser.Error Http.Parser.Line_too_long -> ()
  | _ -> Alcotest.fail "newline-less oversized line must error now");
  let many = "GET / HTTP/1.1\r\n" ^ String.concat "" (List.init 40 (fun i -> Printf.sprintf "H%d: v\r\n" i)) in
  let b, len = buf_of many in
  (match Http.Parser.parse ~max_headers:16 b ~len with
  | Http.Parser.Error Http.Parser.Too_many_headers -> ()
  | _ -> Alcotest.fail "header flood must error even while incomplete");
  let b, len = buf_of "FOO\r\n\r\n" in
  match Http.Parser.parse b ~len with
  | Http.Parser.Error Http.Parser.Bad_request_line -> ()
  | _ -> Alcotest.fail "malformed request line must error"

(* --- fragmentation property ------------------------------------------- *)

(* Drive the parser the way a connection does: accumulate, parse,
   consume on Complete, repeat. *)
let parse_stream chunks =
  let buf = Bytes.create 65536 in
  let len = ref 0 in
  let out = ref [] in
  List.iter
    (fun chunk ->
      Bytes.blit_string chunk 0 buf !len (String.length chunk);
      len := !len + String.length chunk;
      let rec drain () =
        match Http.Parser.parse buf ~len:!len with
        | Http.Parser.Complete (req, consumed) ->
            out := req :: !out;
            let rest = !len - consumed in
            if rest > 0 then Bytes.blit buf consumed buf 0 rest;
            len := rest;
            drain ()
        | Http.Parser.Incomplete | Http.Parser.Error _ -> ()
      in
      drain ())
    chunks;
  List.rev !out

let request_gen =
  QCheck.Gen.(
    let token = oneofl [ "/"; "/a"; "/search?q=x"; "/session?sid=s0"; "/p/q" ] in
    let meth = oneofl [ "GET"; "POST"; "HEAD" ] in
    let header =
      oneofl
        [ "Host: bench"; "Connection: close"; "Connection: keep-alive"; "Accept: */*";
          "X-Pad: pppppp" ]
    in
    let* m = meth in
    let* t = token in
    let* hs = list_size (int_bound 4) header in
    return (m ^ " " ^ t ^ " HTTP/1.1\r\n" ^ String.concat "" (List.map (fun h -> h ^ "\r\n") hs) ^ "\r\n"))

let fragmentation_prop =
  QCheck.Test.make ~name:"any fragmentation parses to the same request list" ~count:300
    QCheck.(
      make
        Gen.(
          let* reqs = list_size (int_range 1 4) request_gen in
          let stream = String.concat "" reqs in
          let* cuts = list_size (int_bound 20) (int_bound (max 1 (String.length stream))) in
          return (stream, List.sort_uniq compare cuts)))
    (fun (stream, cuts) ->
      let n = String.length stream in
      let cuts = List.filter (fun c -> c > 0 && c < n) cuts in
      let bounds = (0 :: cuts) @ [ n ] in
      let rec chunks = function
        | a :: (b :: _ as rest) -> String.sub stream a (b - a) :: chunks rest
        | _ -> []
      in
      parse_stream (chunks bounds) = parse_stream [ stream ])

(* --- admission control on the simulated clock ------------------------- *)

let test_token_bucket_refill () =
  let clock = Clock.simulated ~start_ms:0. () in
  let adm = Admission.create ~clock { Admission.rate = 2.; burst = 4; max_inflight = 100 } in
  let admit () =
    match Admission.admit adm ~peer:"a" with
    | Admission.Admit ->
        Admission.release adm;
        true
    | Admission.Shed_rate_limited | Admission.Shed_overload -> false
  in
  for i = 1 to 4 do
    Alcotest.(check bool) (Printf.sprintf "burst admit %d" i) true (admit ())
  done;
  Alcotest.(check bool) "burst exhausted" false (admit ());
  Clock.advance clock 1000.;
  Alcotest.(check (float 0.0001)) "refill math: 2 tokens after 1s at 2/s" 2.
    (Admission.peek_tokens adm ~peer:"a");
  Alcotest.(check bool) "refilled admit 1" true (admit ());
  Alcotest.(check bool) "refilled admit 2" true (admit ());
  Alcotest.(check bool) "refill bounded" false (admit ());
  Clock.advance clock 60_000.;
  Alcotest.(check (float 0.0001)) "refill capped at burst" 4.
    (Admission.peek_tokens adm ~peer:"a")

(* One greedy peer hammering every tick cannot starve a polite peer
   arriving at its fair rate. *)
let test_greedy_cannot_starve_polite () =
  let clock = Clock.simulated ~start_ms:0. () in
  let adm = Admission.create ~clock { Admission.rate = 10.; burst = 5; max_inflight = 1000 } in
  let served = Hashtbl.create 4 in
  let attempt peer =
    match Admission.admit adm ~peer with
    | Admission.Admit ->
        Admission.release adm;
        Hashtbl.replace served peer (1 + Option.value ~default:0 (Hashtbl.find_opt served peer))
    | Admission.Shed_rate_limited | Admission.Shed_overload -> ()
  in
  let polite_attempts = ref 0 in
  for tick = 1 to 1000 do
    (* greedy: every 10 ms; polite: every 100 ms — exactly its fair 10/s. *)
    attempt "greedy";
    if tick mod 10 = 0 then begin
      incr polite_attempts;
      attempt "polite"
    end;
    Clock.advance clock 10.
  done;
  let count p = Option.value ~default:0 (Hashtbl.find_opt served p) in
  Alcotest.(check int) "polite fully served" !polite_attempts (count "polite");
  Alcotest.(check bool) "greedy bounded by its bucket" true (count "greedy" <= 5 + 101);
  Alcotest.(check bool) "greedy not starved either" true (count "greedy" >= 90)

let test_global_limit_sheds () =
  let clock = Clock.simulated ~start_ms:0. () in
  let shed = Metrics.counter Admission.shed_overload_total in
  let before = Metrics.value shed in
  let adm = Admission.create ~clock { Admission.rate = 0.; burst = 1; max_inflight = 2 } in
  Alcotest.(check bool) "slot 1" true (Admission.admit adm ~peer:"x" = Admission.Admit);
  Alcotest.(check bool) "slot 2" true (Admission.admit adm ~peer:"y" = Admission.Admit);
  Alcotest.(check bool) "over cap sheds" true
    (Admission.admit adm ~peer:"z" = Admission.Shed_overload);
  Alcotest.(check int) "policy counter incremented" (before + 1) (Metrics.value shed);
  Alcotest.(check int) "inflight tracks admits" 2 (Admission.inflight adm);
  Admission.release adm;
  Alcotest.(check bool) "slot freed" true (Admission.admit adm ~peer:"z" = Admission.Admit)

(* --- end-to-end over TCP (readiness loop) ----------------------------- *)

let spawn_serve ~config ~max_requests handler =
  let port_box = Atomic.make 0 in
  let d =
    Domain.spawn (fun () ->
        Http.serve ~config ~on_ready:(fun ~port -> Atomic.set port_box port) ~max_requests
          ~port:0 handler)
  in
  while Atomic.get port_box = 0 do
    Unix.sleepf 0.002
  done;
  (d, Atomic.get port_box)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  fd

(* --domains 1 with keep_alive=false: responses are byte-for-byte the
   output of render_response — the sequential pre-keep-alive contract. *)
let test_domains1_bytes_preserved () =
  let config =
    { Http.default_server_config with Http.domains = 1; keep_alive = false }
  in
  let server, port = spawn_serve ~config ~max_requests:1 hello_handler in
  let fd = connect port in
  write_str fd "GET /legacy HTTP/1.1\r\n\r\n";
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let reply = read_all fd in
  Unix.close fd;
  Domain.join server;
  Alcotest.(check string) "byte-for-byte render_response"
    (Http.render_response (Http.ok "hello /legacy"))
    reply

let test_serve_keepalive_e2e () =
  let config = { Http.default_server_config with Http.domains = 1 } in
  let server, port = spawn_serve ~config ~max_requests:3 hello_handler in
  let fd = connect port in
  let pending = Buffer.create 256 in
  for i = 1 to 3 do
    write_str fd (Printf.sprintf "GET /k%d HTTP/1.1\r\n\r\n" i);
    let status, raw = read_response fd pending in
    Alcotest.(check int) (Printf.sprintf "e2e status %d" i) 200 status;
    Alcotest.(check bool)
      (Printf.sprintf "e2e body %d" i)
      true
      (contains ~sub:(Printf.sprintf "hello /k%d" i) raw)
  done;
  Unix.close fd;
  Domain.join server

let test_serve_multicore_keepalive () =
  let config = { Http.default_server_config with Http.domains = 2 } in
  let server, port = spawn_serve ~config ~max_requests:4 hello_handler in
  let run_conn tag =
    let fd = connect port in
    let pending = Buffer.create 256 in
    for i = 1 to 2 do
      write_str fd (Printf.sprintf "GET /%s%d HTTP/1.1\r\n\r\n" tag i);
      let status, raw = read_response fd pending in
      Alcotest.(check int) (Printf.sprintf "%s%d status" tag i) 200 status;
      Alcotest.(check bool)
        (Printf.sprintf "%s%d body" tag i)
        true
        (contains ~sub:(Printf.sprintf "hello /%s%d" tag i) raw)
    done;
    Unix.close fd
  in
  run_conn "ma";
  run_conn "mb";
  Domain.join server

(* Per-peer rate limiting through the full server: burst of 2, third
   pipelined request answered 503 without reaching a worker. *)
let test_serve_rate_limit_503 () =
  let shed = Metrics.counter Admission.shed_rate_limited_total in
  let before = Metrics.value shed in
  let config =
    { Http.default_server_config with Http.domains = 1; rate_limit = 1.; rate_burst = 2 }
  in
  let server, port = spawn_serve ~config ~max_requests:2 hello_handler in
  let fd = connect port in
  write_str fd "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\nGET /c HTTP/1.1\r\n\r\n";
  let pending = Buffer.create 256 in
  let s1, _ = read_response fd pending in
  let s2, _ = read_response fd pending in
  let s3, raw3 = read_response fd pending in
  Unix.close fd;
  Domain.join server;
  Alcotest.(check (list int)) "two admitted, one shed" [ 200; 200; 503 ] [ s1; s2; s3 ];
  Alcotest.(check bool) "rate-limit body" true (contains ~sub:"rate limited" raw3);
  Alcotest.(check bool) "policy counter" true (Metrics.value shed > before)

let () =
  Alcotest.run "serve"
    [
      ( "protocol",
        [
          Alcotest.test_case "pipelined pair in one write" `Quick test_pipelined_pair;
          Alcotest.test_case "request split byte by byte" `Quick test_split_byte_by_byte;
          Alcotest.test_case "keep-alive reuse across 5 requests" `Quick test_keepalive_reuse;
          Alcotest.test_case "idle timeout closes silently" `Quick
            test_idle_timeout_closes_silently;
          Alcotest.test_case "Connection: close honored" `Quick test_connection_close_honored;
          Alcotest.test_case "close defaults (1.0, keep_alive=false)" `Quick
            test_close_defaults;
          Alcotest.test_case "oversized header line still 400" `Quick
            test_oversized_header_line;
          Alcotest.test_case "slow loris still 408" `Quick test_slow_loris_408;
          Alcotest.test_case "max_requests_per_conn forces close" `Quick
            test_max_requests_per_conn;
        ] );
      ( "parser",
        [
          Alcotest.test_case "incremental parse is resumable" `Quick test_parser_resumable;
          Alcotest.test_case "keep-alive header semantics" `Quick
            test_parser_keep_alive_semantics;
          Alcotest.test_case "bounds enforced on incomplete input" `Quick
            test_parser_bounds_on_incomplete;
          QCheck_alcotest.to_alcotest fragmentation_prop;
        ] );
      ( "admission",
        [
          Alcotest.test_case "token-bucket refill math" `Quick test_token_bucket_refill;
          Alcotest.test_case "greedy cannot starve polite" `Quick
            test_greedy_cannot_starve_polite;
          Alcotest.test_case "global limit sheds with counter" `Quick test_global_limit_sheds;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "domains=1 bytes preserved" `Quick test_domains1_bytes_preserved;
          Alcotest.test_case "keep-alive over TCP (domains=1)" `Quick test_serve_keepalive_e2e;
          Alcotest.test_case "keep-alive over TCP (multicore)" `Quick
            test_serve_multicore_keepalive;
          Alcotest.test_case "per-peer rate limit sheds 503" `Quick test_serve_rate_limit_503;
        ] );
    ]
