open Bionav_util
module H = Bionav_mesh.Hierarchy
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module M = Bionav_corpus.Medline
module Cit = Bionav_corpus.Citation
module AT = Bionav_store.Assoc_table
module DB = Bionav_store.Database
module Codec = Bionav_store.Codec

let hierarchy = lazy (S.generate ~params:S.small_params ~seed:41 ())

let medline =
  lazy (G.generate ~params:{ G.small_params with G.n_citations = 300 } ~seed:42 (Lazy.force hierarchy))

let database = lazy (DB.of_medline (Lazy.force medline))

(* --- Assoc_table --- *)

let small_table () =
  let postings =
    [| Intset.empty; Intset.of_list [ 0; 2 ]; Intset.of_list [ 1 ]; Intset.of_list [ 0; 1; 2 ] |]
  in
  AT.of_postings ~n_citations:3 postings

let test_table_shapes () =
  let t = small_table () in
  Alcotest.(check int) "concepts" 4 (AT.n_concepts t);
  Alcotest.(check int) "citations" 3 (AT.n_citations t);
  Alcotest.(check int) "associations" 6 (AT.n_associations t)

let test_table_orientations_agree () =
  let t = small_table () in
  Alcotest.(check (list int)) "citation 0" [ 1; 3 ] (Intset.elements (AT.concepts_of_citation t 0));
  Alcotest.(check (list int)) "citation 1" [ 2; 3 ] (Intset.elements (AT.concepts_of_citation t 1));
  Alcotest.(check (list int)) "citation 2" [ 1; 3 ] (Intset.elements (AT.concepts_of_citation t 2));
  Alcotest.(check (list int)) "concept 1" [ 0; 2 ] (Intset.elements (AT.citations_of_concept t 1))

let test_table_rejects_out_of_range () =
  Alcotest.(check bool) "bad citation id" true
    (try
       ignore (AT.of_postings ~n_citations:2 [| Intset.of_list [ 5 ] |]);
       false
     with Invalid_argument _ -> true)

let test_fold_concepts_skips_empty () =
  let t = small_table () in
  let visited = AT.fold_concepts t ~init:[] ~f:(fun acc c _ -> c :: acc) in
  Alcotest.(check (list int)) "non-empty concepts" [ 3; 2; 1 ] visited

let test_orientations_agree_bulk () =
  let db = Lazy.force database in
  let t = DB.assoc db in
  (* Every (concept, citation) pair visible one way is visible the other. *)
  for concept = 0 to AT.n_concepts t - 1 do
    Intset.iter
      (fun cit ->
        Alcotest.(check bool) "reverse link" true (Intset.mem concept (AT.concepts_of_citation t cit)))
      (AT.citations_of_concept t concept)
  done

(* --- Database --- *)

let test_total_counts_match_corpus () =
  let db = Lazy.force database in
  let m = Lazy.force medline in
  for concept = 0 to H.size (DB.hierarchy db) - 1 do
    Alcotest.(check int) "LT matches corpus" (M.concept_count m concept) (DB.total_count db concept)
  done

let test_concepts_of_result_correct () =
  let db = Lazy.force database in
  let m = Lazy.force medline in
  let result = Intset.of_list [ 0; 5; 17; 100 ] in
  let by_concept = DB.concepts_of_result db result in
  (* Model: recompute naively from citations. *)
  let expected = Hashtbl.create 64 in
  Intset.iter
    (fun cit ->
      Intset.iter
        (fun concept ->
          Hashtbl.replace expected concept
            (Intset.add cit (Option.value ~default:Intset.empty (Hashtbl.find_opt expected concept))))
        (Cit.concepts (M.citation m cit)))
    result;
  Alcotest.(check int) "concept count" (Hashtbl.length expected) (List.length by_concept);
  List.iter
    (fun (concept, cits) ->
      match Hashtbl.find_opt expected concept with
      | None -> Alcotest.fail (Printf.sprintf "unexpected concept %d" concept)
      | Some s ->
          Alcotest.(check bool) (Printf.sprintf "citations of %d" concept) true (Intset.equal s cits))
    by_concept

let test_concepts_of_result_sorted () =
  let db = Lazy.force database in
  let result = Intset.of_list [ 1; 2; 3 ] in
  let concepts = List.map fst (DB.concepts_of_result db result) in
  Alcotest.(check (list int)) "ascending" (List.sort Int.compare concepts) concepts

let test_make_rejects_mismatch () =
  let db = Lazy.force database in
  let small = AT.of_postings ~n_citations:1 [| Intset.empty |] in
  Alcotest.(check bool) "size mismatch" true
    (try
       ignore (DB.make ~hierarchy:(DB.hierarchy db) ~assoc:small);
       false
     with Invalid_argument _ -> true)

(* --- Codec --- *)

let databases_equal a b =
  H.size (DB.hierarchy a) = H.size (DB.hierarchy b)
  && DB.n_citations a = DB.n_citations b
  &&
  let ha = DB.hierarchy a in
  let ok = ref true in
  for i = 0 to H.size ha - 1 do
    if H.label ha i <> H.label (DB.hierarchy b) i then ok := false;
    if DB.total_count a i <> DB.total_count b i then ok := false;
    if
      not
        (Intset.equal
           (AT.citations_of_concept (DB.assoc a) i)
           (AT.citations_of_concept (DB.assoc b) i))
    then ok := false
  done;
  !ok

let test_codec_roundtrip () =
  let db = Lazy.force database in
  let db' = Codec.decode (Codec.encode db) in
  Alcotest.(check bool) "roundtrip" true (databases_equal db db')

let test_codec_save_load () =
  let db = Lazy.force database in
  let path = Filename.temp_file "bionav_db" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save db path;
      Alcotest.(check bool) "disk roundtrip" true (databases_equal db (Codec.load path)))

let decode_fails data =
  try
    ignore (Codec.decode data);
    false
  with Invalid_argument _ -> true

let test_codec_rejects_bad_magic () =
  Alcotest.(check bool) "bad magic" true (decode_fails "NOTBIONAV000000000")

let test_codec_rejects_truncation () =
  let db = Lazy.force database in
  let full = Codec.encode db in
  Alcotest.(check bool) "truncated" true
    (decode_fails (String.sub full 0 (String.length full / 2)))

let test_codec_rejects_trailing_garbage () =
  let db = Lazy.force database in
  Alcotest.(check bool) "trailing" true (decode_fails (Codec.encode db ^ "x"))

(* --- Snapshot version compatibility --- *)

module Snapshot = Bionav_store.Snapshot

(* Hand-built version-1 bytes (the pre-set-table layout: inline result
   arrays per entry), byte-for-byte what the v1 encoder produced. *)
let v1_snapshot_bytes db entries =
  let open Codec.Wire in
  let body = Buffer.create 256 in
  write_i32 body (H.size (DB.hierarchy db));
  write_i32 body (AT.n_citations (DB.assoc db));
  write_i32 body (List.length entries);
  List.iter
    (fun (query, results, root_cut) ->
      write_string body query;
      write_i32 body (List.length results);
      List.iter (fun cit -> write_i32 body cit) results;
      write_i32 body (List.length root_cut);
      List.iter (fun n -> write_i32 body n) root_cut)
    entries;
  let body = Buffer.contents body in
  let out = Buffer.create (String.length body + 32) in
  Buffer.add_string out "BIONAVSNAP";
  write_i32 out 1;
  write_i64 out (fnv1a64 body);
  Buffer.add_string out body;
  Buffer.contents out

let test_snapshot_decodes_v1 () =
  let db = Lazy.force database in
  let data = v1_snapshot_bytes db [ ("cancer", [ 1; 5; 9 ], [ 2; 3 ]); ("histones", [], []) ] in
  let entries = Snapshot.decode ~db data in
  Alcotest.(check int) "entries" 2 (List.length entries);
  let e = List.hd entries in
  Alcotest.(check string) "query" "cancer" e.Snapshot.query;
  Alcotest.(check (list int)) "results" [ 1; 5; 9 ] (Intset.elements e.Snapshot.results);
  Alcotest.(check (list int)) "cut" [ 2; 3 ] e.Snapshot.root_cut;
  let e2 = List.nth entries 1 in
  Alcotest.(check bool) "empty results" true (Intset.is_empty e2.Snapshot.results)

let test_snapshot_v1_v2_agree () =
  (* A migrated v1 snapshot and a fresh v2 encode of the same entries
     must decode identically. *)
  let db = Lazy.force database in
  let raw = [ ("alpha", [ 0; 3; 7 ], [ 1 ]); ("beta", [ 0; 3; 7 ], [ 2 ]) ] in
  let v1 = Snapshot.decode ~db (v1_snapshot_bytes db raw) in
  let v2 =
    Snapshot.decode ~db
      (Snapshot.encode ~db
         (List.map
            (fun (query, results, root_cut) ->
              { Snapshot.query; results = Intset.of_list results; root_cut })
            raw))
  in
  List.iter2
    (fun a b ->
      Alcotest.(check string) "query" a.Snapshot.query b.Snapshot.query;
      Alcotest.(check bool) "results" true (Intset.equal a.Snapshot.results b.Snapshot.results);
      Alcotest.(check (list int)) "cut" a.Snapshot.root_cut b.Snapshot.root_cut)
    v1 v2

let test_snapshot_unknown_version_message () =
  let db = Lazy.force database in
  let data = Bytes.of_string (v1_snapshot_bytes db [ ("q", [ 1 ], []) ]) in
  Bytes.set data 10 '\x63';  (* version byte -> 99 *)
  match Snapshot.decode ~db (Bytes.to_string data) with
  | _ -> Alcotest.fail "expected rejection of version 99"
  | exception Invalid_argument msg ->
      let mentions needle =
        let nl = String.length needle and ml = String.length msg in
        let rec at i = i + nl <= ml && (String.sub msg i nl = needle || at (i + 1)) in
        at 0
      in
      Alcotest.(check bool) "names the bad version" true (mentions "99");
      Alcotest.(check bool) "names supported versions" true
        (mentions "1" && mentions "2")

let () =
  Alcotest.run "store"
    [
      ( "assoc_table",
        [
          Alcotest.test_case "shapes" `Quick test_table_shapes;
          Alcotest.test_case "orientations agree" `Quick test_table_orientations_agree;
          Alcotest.test_case "rejects out of range" `Quick test_table_rejects_out_of_range;
          Alcotest.test_case "fold skips empty" `Quick test_fold_concepts_skips_empty;
          Alcotest.test_case "orientations agree (bulk)" `Quick test_orientations_agree_bulk;
        ] );
      ( "database",
        [
          Alcotest.test_case "total counts" `Quick test_total_counts_match_corpus;
          Alcotest.test_case "concepts_of_result" `Quick test_concepts_of_result_correct;
          Alcotest.test_case "concepts_of_result sorted" `Quick test_concepts_of_result_sorted;
          Alcotest.test_case "make rejects mismatch" `Quick test_make_rejects_mismatch;
        ] );
      ( "snapshot_compat",
        [
          Alcotest.test_case "decodes v1" `Quick test_snapshot_decodes_v1;
          Alcotest.test_case "v1 and v2 agree" `Quick test_snapshot_v1_v2_agree;
          Alcotest.test_case "unknown version error" `Quick test_snapshot_unknown_version_message;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "save/load" `Quick test_codec_save_load;
          Alcotest.test_case "rejects bad magic" `Quick test_codec_rejects_bad_magic;
          Alcotest.test_case "rejects truncation" `Quick test_codec_rejects_truncation;
          Alcotest.test_case "rejects trailing garbage" `Quick test_codec_rejects_trailing_garbage;
        ] );
    ]
