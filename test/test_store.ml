open Bionav_util
module H = Bionav_mesh.Hierarchy
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module M = Bionav_corpus.Medline
module Cit = Bionav_corpus.Citation
module AT = Bionav_store.Assoc_table
module DB = Bionav_store.Database
module Codec = Bionav_store.Codec

let hierarchy = lazy (S.generate ~params:S.small_params ~seed:41 ())

let medline =
  lazy (G.generate ~params:{ G.small_params with G.n_citations = 300 } ~seed:42 (Lazy.force hierarchy))

let database = lazy (DB.of_medline (Lazy.force medline))

(* --- Assoc_table --- *)

let small_table () =
  let postings =
    [| Intset.empty; Intset.of_list [ 0; 2 ]; Intset.of_list [ 1 ]; Intset.of_list [ 0; 1; 2 ] |]
  in
  AT.of_postings ~n_citations:3 postings

let test_table_shapes () =
  let t = small_table () in
  Alcotest.(check int) "concepts" 4 (AT.n_concepts t);
  Alcotest.(check int) "citations" 3 (AT.n_citations t);
  Alcotest.(check int) "associations" 6 (AT.n_associations t)

let test_table_orientations_agree () =
  let t = small_table () in
  Alcotest.(check (list int)) "citation 0" [ 1; 3 ] (Intset.elements (AT.concepts_of_citation t 0));
  Alcotest.(check (list int)) "citation 1" [ 2; 3 ] (Intset.elements (AT.concepts_of_citation t 1));
  Alcotest.(check (list int)) "citation 2" [ 1; 3 ] (Intset.elements (AT.concepts_of_citation t 2));
  Alcotest.(check (list int)) "concept 1" [ 0; 2 ] (Intset.elements (AT.citations_of_concept t 1))

let test_table_rejects_out_of_range () =
  Alcotest.(check bool) "bad citation id" true
    (try
       ignore (AT.of_postings ~n_citations:2 [| Intset.of_list [ 5 ] |]);
       false
     with Invalid_argument _ -> true)

let test_fold_concepts_skips_empty () =
  let t = small_table () in
  let visited = AT.fold_concepts t ~init:[] ~f:(fun acc c _ -> c :: acc) in
  Alcotest.(check (list int)) "non-empty concepts" [ 3; 2; 1 ] visited

let test_orientations_agree_bulk () =
  let db = Lazy.force database in
  let t = DB.assoc db in
  (* Every (concept, citation) pair visible one way is visible the other. *)
  for concept = 0 to AT.n_concepts t - 1 do
    Intset.iter
      (fun cit ->
        Alcotest.(check bool) "reverse link" true (Intset.mem concept (AT.concepts_of_citation t cit)))
      (AT.citations_of_concept t concept)
  done

(* --- Database --- *)

let test_total_counts_match_corpus () =
  let db = Lazy.force database in
  let m = Lazy.force medline in
  for concept = 0 to H.size (DB.hierarchy db) - 1 do
    Alcotest.(check int) "LT matches corpus" (M.concept_count m concept) (DB.total_count db concept)
  done

let test_concepts_of_result_correct () =
  let db = Lazy.force database in
  let m = Lazy.force medline in
  let result = Intset.of_list [ 0; 5; 17; 100 ] in
  let by_concept = DB.concepts_of_result db result in
  (* Model: recompute naively from citations. *)
  let expected = Hashtbl.create 64 in
  Intset.iter
    (fun cit ->
      Intset.iter
        (fun concept ->
          Hashtbl.replace expected concept
            (Intset.add cit (Option.value ~default:Intset.empty (Hashtbl.find_opt expected concept))))
        (Cit.concepts (M.citation m cit)))
    result;
  Alcotest.(check int) "concept count" (Hashtbl.length expected) (List.length by_concept);
  List.iter
    (fun (concept, cits) ->
      match Hashtbl.find_opt expected concept with
      | None -> Alcotest.fail (Printf.sprintf "unexpected concept %d" concept)
      | Some s ->
          Alcotest.(check bool) (Printf.sprintf "citations of %d" concept) true (Intset.equal s cits))
    by_concept

let test_concepts_of_result_sorted () =
  let db = Lazy.force database in
  let result = Intset.of_list [ 1; 2; 3 ] in
  let concepts = List.map fst (DB.concepts_of_result db result) in
  Alcotest.(check (list int)) "ascending" (List.sort Int.compare concepts) concepts

let test_make_rejects_mismatch () =
  let db = Lazy.force database in
  let small = AT.of_postings ~n_citations:1 [| Intset.empty |] in
  Alcotest.(check bool) "size mismatch" true
    (try
       ignore (DB.make ~hierarchy:(DB.hierarchy db) ~assoc:small);
       false
     with Invalid_argument _ -> true)

(* --- Codec --- *)

let databases_equal a b =
  H.size (DB.hierarchy a) = H.size (DB.hierarchy b)
  && DB.n_citations a = DB.n_citations b
  &&
  let ha = DB.hierarchy a in
  let ok = ref true in
  for i = 0 to H.size ha - 1 do
    if H.label ha i <> H.label (DB.hierarchy b) i then ok := false;
    if DB.total_count a i <> DB.total_count b i then ok := false;
    if
      not
        (Intset.equal
           (AT.citations_of_concept (DB.assoc a) i)
           (AT.citations_of_concept (DB.assoc b) i))
    then ok := false
  done;
  !ok

let test_codec_roundtrip () =
  let db = Lazy.force database in
  let db' = Codec.decode (Codec.encode db) in
  Alcotest.(check bool) "roundtrip" true (databases_equal db db')

let test_codec_save_load () =
  let db = Lazy.force database in
  let path = Filename.temp_file "bionav_db" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save db path;
      Alcotest.(check bool) "disk roundtrip" true (databases_equal db (Codec.load path)))

let decode_fails data =
  try
    ignore (Codec.decode data);
    false
  with Invalid_argument _ -> true

let test_codec_rejects_bad_magic () =
  Alcotest.(check bool) "bad magic" true (decode_fails "NOTBIONAV000000000")

let test_codec_rejects_truncation () =
  let db = Lazy.force database in
  let full = Codec.encode db in
  Alcotest.(check bool) "truncated" true
    (decode_fails (String.sub full 0 (String.length full / 2)))

let test_codec_rejects_trailing_garbage () =
  let db = Lazy.force database in
  Alcotest.(check bool) "trailing" true (decode_fails (Codec.encode db ^ "x"))

let () =
  Alcotest.run "store"
    [
      ( "assoc_table",
        [
          Alcotest.test_case "shapes" `Quick test_table_shapes;
          Alcotest.test_case "orientations agree" `Quick test_table_orientations_agree;
          Alcotest.test_case "rejects out of range" `Quick test_table_rejects_out_of_range;
          Alcotest.test_case "fold skips empty" `Quick test_fold_concepts_skips_empty;
          Alcotest.test_case "orientations agree (bulk)" `Quick test_orientations_agree_bulk;
        ] );
      ( "database",
        [
          Alcotest.test_case "total counts" `Quick test_total_counts_match_corpus;
          Alcotest.test_case "concepts_of_result" `Quick test_concepts_of_result_correct;
          Alcotest.test_case "concepts_of_result sorted" `Quick test_concepts_of_result_sorted;
          Alcotest.test_case "make rejects mismatch" `Quick test_make_rejects_mismatch;
        ] );
      ( "codec",
        [
          Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip;
          Alcotest.test_case "save/load" `Quick test_codec_save_load;
          Alcotest.test_case "rejects bad magic" `Quick test_codec_rejects_bad_magic;
          Alcotest.test_case "rejects truncation" `Quick test_codec_rejects_truncation;
          Alcotest.test_case "rejects trailing garbage" `Quick test_codec_rejects_trailing_garbage;
        ] );
    ]
