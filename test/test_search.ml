open Bionav_util
module S = Bionav_mesh.Synthetic
module G = Bionav_corpus.Generator
module M = Bionav_corpus.Medline
module Cit = Bionav_corpus.Citation
module Tok = Bionav_search.Tokenizer
module Idx = Bionav_search.Inverted_index
module Eu = Bionav_search.Eutils

(* --- Tokenizer --- *)

let test_tokens_basic () =
  Alcotest.(check (list string)) "split and lowercase" [ "cell"; "proliferation" ]
    (Tok.tokens "Cell Proliferation")

let test_tokens_punctuation () =
  Alcotest.(check (list string)) "commas and parens" [ "histones"; "chromatin" ]
    (Tok.tokens "Histones, (chromatin)")

let test_tokens_keeps_plus_minus () =
  Alcotest.(check (list string)) "ion channel names" [ "na+"; "i-"; "symporter" ]
    (Tok.tokens "Na+/I- symporter")

let test_tokens_drops_short_and_stopwords () =
  Alcotest.(check (list string)) "filtered" [ "role"; "gene" ] (Tok.tokens "the role of a gene");
  Alcotest.(check (list string)) "short dropped" [ "xy" ] (Tok.tokens "x xy")

let test_tokens_duplicates_preserved () =
  Alcotest.(check (list string)) "dups kept" [ "cell"; "cell" ] (Tok.tokens "cell cell")

let test_unique_tokens () =
  Alcotest.(check (list string)) "sorted unique" [ "alpha"; "beta" ]
    (Tok.unique_tokens "beta alpha beta")

let test_is_stop_word () =
  Alcotest.(check bool) "the" true (Tok.is_stop_word "the");
  Alcotest.(check bool) "protein" false (Tok.is_stop_word "protein")

(* --- Index over a tiny hand-built corpus --- *)

let tiny_medline () =
  let h = Bionav_mesh.Hierarchy.of_parents [| -1; 0; 0 |] in
  let mk id title abstract =
    {
      Cit.id;
      title;
      abstract;
      authors = [ "A B" ];
      journal = "J";
      year = 2000;
      major_topics = [ 1 ];
      concepts = Intset.of_list [ 1 ];
      qualified = [];
    }
  in
  M.make h
    [|
      mk 0 "prothymosin alpha in apoptosis" "study of apoptosis pathways";
      mk 1 "histone chromatin remodeling" "prothymosin binds histones";
      mk 2 "unrelated cardiology paper" "heart ventricle function";
    |]

let test_index_postings () =
  let idx = Idx.build (tiny_medline ()) in
  Alcotest.(check (list int)) "prothymosin" [ 0; 1 ] (Docset.elements (Idx.postings idx "prothymosin"));
  Alcotest.(check (list int)) "apoptosis" [ 0 ] (Docset.elements (Idx.postings idx "apoptosis"));
  Alcotest.(check (list int)) "unknown" [] (Docset.elements (Idx.postings idx "zzz"))

let test_index_case_insensitive () =
  let idx = Idx.build (tiny_medline ()) in
  Alcotest.(check (list int)) "uppercase query" [ 0; 1 ]
    (Docset.elements (Idx.postings idx "PROTHYMOSIN"))

let test_query_and () =
  let idx = Idx.build (tiny_medline ()) in
  Alcotest.(check (list int)) "conjunction" [ 1 ]
    (Docset.elements (Idx.query_and idx "prothymosin histone"));
  Alcotest.(check (list int)) "no match" [] (Docset.elements (Idx.query_and idx "apoptosis heart"));
  Alcotest.(check (list int)) "empty query" [] (Docset.elements (Idx.query_and idx ""))

let test_query_or () =
  let idx = Idx.build (tiny_medline ()) in
  Alcotest.(check (list int)) "disjunction" [ 0; 1; 2 ]
    (Docset.elements (Idx.query_or idx "apoptosis heart histone"))

let test_no_duplicate_postings () =
  (* "apoptosis" appears twice in citation 0; the posting must list it once. *)
  let idx = Idx.build (tiny_medline ()) in
  Alcotest.(check int) "document frequency" 1 (Idx.document_frequency idx "apoptosis")

let test_stop_words_not_indexed () =
  let idx = Idx.build (tiny_medline ()) in
  Alcotest.(check (list int)) "stop word" [] (Docset.elements (Idx.postings idx "of"))

(* --- Eutils over a generated corpus --- *)

let generated =
  lazy
    (let h = S.generate ~params:S.small_params ~seed:51 () in
     let params =
       {
         G.small_params with
         G.n_citations = 300;
         seeded_groups =
           [
             {
               G.tag = Some "grueltag";
               cluster = [ Bionav_mesh.Hierarchy.size h - 1 ];
               count = 25;
               topics_per_citation = (1, 1);
             };
           ];
       }
     in
     G.generate ~params ~seed:52 h)

let test_esearch_finds_tagged () =
  let eu = Eu.create (Lazy.force generated) in
  Alcotest.(check int) "tagged result size" 25 (Docset.cardinal (Eu.esearch eu "grueltag"))

let test_esearch_count () =
  let eu = Eu.create (Lazy.force generated) in
  Alcotest.(check int) "count matches" 25 (Eu.esearch_count eu "grueltag")

let test_esearch_empty_for_unknown () =
  let eu = Eu.create (Lazy.force generated) in
  Alcotest.(check int) "no results" 0 (Eu.esearch_count eu "nonexistentterm123")

let test_esummary () =
  let eu = Eu.create (Lazy.force generated) in
  let summaries = Eu.esummary eu [ 0; 1; 2 ] in
  Alcotest.(check int) "one line per id" 3 (List.length summaries);
  List.iter (fun s -> Alcotest.(check bool) "non-empty" true (String.length s > 0)) summaries

let test_unknown_id_rejected () =
  let eu = Eu.create (Lazy.force generated) in
  Alcotest.(check bool) "esummary rejects" true
    (try
       ignore (Eu.esummary eu [ 999999 ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "concepts_of rejects" true
    (try
       ignore (Eu.concepts_of eu (-1));
       false
     with Invalid_argument _ -> true)

let test_esearch_paged () =
  let eu = Eu.create (Lazy.force generated) in
  let all = Eu.esearch_paged ~retmax:1000 eu "grueltag" in
  Alcotest.(check int) "all ids" 25 (List.length all);
  Alcotest.(check (list int)) "ascending by default" (List.sort Int.compare all) all;
  let page1 = Eu.esearch_paged ~retmax:10 eu "grueltag" in
  let page2 = Eu.esearch_paged ~retstart:10 ~retmax:10 eu "grueltag" in
  let page3 = Eu.esearch_paged ~retstart:20 ~retmax:10 eu "grueltag" in
  Alcotest.(check int) "page sizes" 25
    (List.length page1 + List.length page2 + List.length page3);
  Alcotest.(check (list int)) "pages concatenate" all (page1 @ page2 @ page3);
  let by_rel = Eu.esearch_paged ~retmax:1000 ~sort:`Relevance eu "grueltag" in
  Alcotest.(check (list int)) "same set under relevance sort"
    (List.sort Int.compare all) (List.sort Int.compare by_rel);
  Alcotest.(check bool) "rejects negative" true
    (try
       ignore (Eu.esearch_paged ~retstart:(-1) eu "grueltag");
       false
     with Invalid_argument _ -> true)

let test_esearch_paged_boundaries () =
  let eu = Eu.create (Lazy.force generated) in
  let all = Eu.esearch_paged ~retmax:1000 eu "grueltag" in
  let n = List.length all in
  Alcotest.(check (list int)) "retmax 0 is an empty page" []
    (Eu.esearch_paged ~retmax:0 eu "grueltag");
  Alcotest.(check (list int)) "retstart 0 is the first page"
    (List.filteri (fun i _ -> i < 5) all)
    (Eu.esearch_paged ~retstart:0 ~retmax:5 eu "grueltag");
  Alcotest.(check (list int)) "retstart exactly at the end" []
    (Eu.esearch_paged ~retstart:n ~retmax:10 eu "grueltag");
  Alcotest.(check (list int)) "retstart past the end" []
    (Eu.esearch_paged ~retstart:(n + 7) ~retmax:10 eu "grueltag");
  Alcotest.(check (list int)) "last page stops exactly at the end"
    (List.filteri (fun i _ -> i >= n - 5) all)
    (Eu.esearch_paged ~retstart:(n - 5) ~retmax:10 eu "grueltag");
  Alcotest.(check bool) "negative retmax rejected" true
    (try
       ignore (Eu.esearch_paged ~retmax:(-1) eu "grueltag");
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative retstart rejected" true
    (try
       ignore (Eu.esearch_paged ~retstart:(-5) ~retmax:10 eu "grueltag");
       false
     with Invalid_argument _ -> true)

let test_esearch_mh () =
  let m = Lazy.force generated in
  let eu = Eu.create m in
  let h = M.hierarchy m in
  (* A concept that certainly has citations: the one with the largest
     posting list. *)
  let best = ref 0 in
  for c = 1 to Bionav_mesh.Hierarchy.size h - 1 do
    if M.concept_count m c > M.concept_count m !best then best := c
  done;
  let label = Bionav_mesh.Hierarchy.label h !best in
  let hits = Eu.esearch_mh eu label in
  Alcotest.(check int) "matches postings" (M.concept_count m !best) (Docset.cardinal hits);
  Alcotest.(check int) "unknown label empty" 0
    (Docset.cardinal (Eu.esearch_mh eu "No Such Concept Xyz"));
  (* Qualifier-restricted search returns a subset. *)
  let me = "metabolism" in
  let restricted = Eu.esearch_mh ~qualifier:me eu label in
  Alcotest.(check bool) "subset" true (Docset.subset restricted hits);
  Alcotest.(check bool) "bad qualifier rejected" true
    (try
       ignore (Eu.esearch_mh ~qualifier:"flavour" eu label);
       false
     with Invalid_argument _ -> true)

let test_concepts_of_matches_citation () =
  let eu = Eu.create (Lazy.force generated) in
  let m = Eu.medline eu in
  for id = 0 to 20 do
    Alcotest.(check bool) "matches record" true
      (Docset.equal (Eu.concepts_of eu id) (Docset.of_intset (Cit.concepts (M.citation m id))))
  done

let () =
  Alcotest.run "search"
    [
      ( "tokenizer",
        [
          Alcotest.test_case "basic" `Quick test_tokens_basic;
          Alcotest.test_case "punctuation" `Quick test_tokens_punctuation;
          Alcotest.test_case "keeps +/-" `Quick test_tokens_keeps_plus_minus;
          Alcotest.test_case "stopwords/short" `Quick test_tokens_drops_short_and_stopwords;
          Alcotest.test_case "duplicates preserved" `Quick test_tokens_duplicates_preserved;
          Alcotest.test_case "unique tokens" `Quick test_unique_tokens;
          Alcotest.test_case "is_stop_word" `Quick test_is_stop_word;
        ] );
      ( "index",
        [
          Alcotest.test_case "postings" `Quick test_index_postings;
          Alcotest.test_case "case insensitive" `Quick test_index_case_insensitive;
          Alcotest.test_case "AND" `Quick test_query_and;
          Alcotest.test_case "OR" `Quick test_query_or;
          Alcotest.test_case "no duplicate postings" `Quick test_no_duplicate_postings;
          Alcotest.test_case "stop words not indexed" `Quick test_stop_words_not_indexed;
        ] );
      ( "eutils",
        [
          Alcotest.test_case "esearch tagged" `Quick test_esearch_finds_tagged;
          Alcotest.test_case "esearch count" `Quick test_esearch_count;
          Alcotest.test_case "esearch unknown" `Quick test_esearch_empty_for_unknown;
          Alcotest.test_case "esummary" `Quick test_esummary;
          Alcotest.test_case "esearch paged" `Quick test_esearch_paged;
          Alcotest.test_case "esearch paged boundaries" `Quick test_esearch_paged_boundaries;
          Alcotest.test_case "esearch mh field" `Quick test_esearch_mh;
          Alcotest.test_case "unknown id rejected" `Quick test_unknown_id_rejected;
          Alcotest.test_case "concepts_of" `Quick test_concepts_of_matches_citation;
        ] );
    ]
