open Bionav_util
module H = Bionav_mesh.Hierarchy
module S = Bionav_mesh.Synthetic
module Cit = Bionav_corpus.Citation
module TG = Bionav_corpus.Text_gen
module A = Bionav_corpus.Annotator
module G = Bionav_corpus.Generator
module M = Bionav_corpus.Medline

let hierarchy = lazy (S.generate ~params:S.small_params ~seed:21 ())

let small_gen_params =
  { G.small_params with G.n_citations = 400 }

let medline = lazy (G.generate ~params:small_gen_params ~seed:22 (Lazy.force hierarchy))

(* Case-insensitive: sentence capitalization may upcase an embedded label's
   first letter. *)
let contains ~sub s =
  let s = String.lowercase_ascii s and sub = String.lowercase_ascii sub in
  let n = String.length s and m = String.length sub in
  let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
  m = 0 || at 0

(* --- Text generation --- *)

let test_title_embeds_topics () =
  let tg = TG.create (Rng.create 1) in
  let title = TG.title tg ~topic_labels:[ "Zyxglobulin" ] in
  Alcotest.(check bool) "embedded" true (contains ~sub:"Zyxglobulin" title)

let test_abstract_embeds_topics () =
  let tg = TG.create (Rng.create 2) in
  let ab = TG.abstract tg ~topic_labels:[ "Qwertase"; "Plumbase" ] in
  Alcotest.(check bool) "first topic" true (contains ~sub:"Qwertase" ab);
  Alcotest.(check bool) "second topic" true (contains ~sub:"Plumbase" ab)

let test_authors_bounds () =
  let tg = TG.create (Rng.create 3) in
  for _ = 1 to 50 do
    let n = List.length (TG.authors tg) in
    Alcotest.(check bool) "1-6 authors" true (n >= 1 && n <= 6)
  done

let test_year_bounds () =
  let tg = TG.create (Rng.create 4) in
  for _ = 1 to 200 do
    let y = TG.year tg in
    Alcotest.(check bool) "1975-2008" true (y >= 1975 && y <= 2008)
  done

(* --- Annotator --- *)

let test_annotation_contains_topics_and_ancestors () =
  let h = Lazy.force hierarchy in
  let ann = A.create ~params:A.light_params h (Rng.create 5) in
  let topic = H.size h - 1 in
  let set = A.annotate ann ~major_topics:[ topic ] in
  Alcotest.(check bool) "topic present" true (Intset.mem topic set);
  List.iter
    (fun a ->
      if a <> H.root h then
        Alcotest.(check bool) (Printf.sprintf "ancestor %d present" a) true (Intset.mem a set))
    (H.ancestors h topic)

let test_annotation_excludes_root () =
  let h = Lazy.force hierarchy in
  let ann = A.create ~params:A.light_params h (Rng.create 6) in
  for topic = 1 to 20 do
    let set = A.annotate ann ~major_topics:[ topic ] in
    Alcotest.(check bool) "no root" false (Intset.mem (H.root h) set)
  done

let test_annotation_closed_under_ancestors () =
  let h = Lazy.force hierarchy in
  let ann = A.create ~params:A.light_params h (Rng.create 7) in
  let set = A.annotate ann ~major_topics:[ H.size h / 2; H.size h - 3 ] in
  Intset.iter
    (fun c ->
      List.iter
        (fun a ->
          if a <> H.root h then
            Alcotest.(check bool) "ancestor closure" true (Intset.mem a set))
        (H.ancestors h c))
    set

let test_background_draw_range () =
  let h = Lazy.force hierarchy in
  let ann = A.create ~params:A.light_params h (Rng.create 8) in
  for _ = 1 to 500 do
    let c = A.draw_background ann in
    Alcotest.(check bool) "non-root concept" true (c > 0 && c < H.size h)
  done

let test_background_depth_bias () =
  let h = Lazy.force hierarchy in
  let ann = A.create ~params:A.light_params h (Rng.create 9) in
  let shallow = ref 0 and total = 2000 in
  for _ = 1 to total do
    if H.depth h (A.draw_background ann) <= 2 then incr shallow
  done;
  (* decay 0.6 concentrates well over half the mass at depths 1-2. *)
  Alcotest.(check bool) "shallow-biased" true (float_of_int !shallow /. float_of_int total > 0.4)

(* --- Generator / Medline --- *)

let test_corpus_size () =
  let m = Lazy.force medline in
  Alcotest.(check int) "citations" 400 (M.size m)

let test_citation_ids_dense () =
  let m = Lazy.force medline in
  Array.iteri (fun i c -> Alcotest.(check int) "id = index" i (Cit.id c)) (M.citations m)

let test_major_topics_in_concepts () =
  let m = Lazy.force medline in
  Array.iter
    (fun c ->
      List.iter
        (fun t ->
          Alcotest.(check bool) "major topic annotated" true (Intset.mem t (Cit.concepts c)))
        c.Cit.major_topics)
    (M.citations m)

let test_postings_consistency () =
  let m = Lazy.force medline in
  (* postings(concept) contains citation <-> citation's concepts contain concept *)
  Array.iter
    (fun c ->
      Intset.iter
        (fun concept ->
          Alcotest.(check bool) "posting back-link" true
            (Intset.mem (Cit.id c) (M.postings m concept)))
        (Cit.concepts c))
    (M.citations m);
  let h = M.hierarchy m in
  for concept = 0 to H.size h - 1 do
    Intset.iter
      (fun cit ->
        Alcotest.(check bool) "posting forward-link" true
          (Intset.mem concept (Cit.concepts (M.citation m cit))))
      (M.postings m concept)
  done

let test_concept_count_matches_postings () =
  let m = Lazy.force medline in
  for concept = 0 to H.size (M.hierarchy m) - 1 do
    Alcotest.(check int) "count" (Intset.cardinal (M.postings m concept))
      (M.concept_count m concept)
  done

let test_mean_annotations_positive () =
  let m = Lazy.force medline in
  let mean = M.mean_annotations m in
  Alcotest.(check bool) "in plausible band" true (mean > 5. && mean < 120.)

let test_deterministic_generation () =
  let h = Lazy.force hierarchy in
  let a = G.generate ~params:small_gen_params ~seed:30 h in
  let b = G.generate ~params:small_gen_params ~seed:30 h in
  Alcotest.(check int) "sizes" (M.size a) (M.size b);
  for i = 0 to M.size a - 1 do
    let ca = M.citation a i and cb = M.citation b i in
    if ca.Cit.title <> cb.Cit.title || not (Intset.equal (Cit.concepts ca) (Cit.concepts cb))
    then Alcotest.fail "non-deterministic corpus"
  done

let test_seeded_group_counts () =
  let h = Lazy.force hierarchy in
  let cluster = [ H.size h - 1; H.size h - 2 ] in
  let params =
    {
      small_gen_params with
      G.seeded_groups =
        [ { G.tag = Some "xyzzytag"; cluster; count = 40; topics_per_citation = (1, 2) } ];
    }
  in
  let m = G.generate ~params ~seed:31 h in
  let tagged =
    Array.fold_left
      (fun acc c -> if contains ~sub:"xyzzytag" c.Cit.title then acc + 1 else acc)
      0 (M.citations m)
  in
  Alcotest.(check int) "tagged citations" 40 tagged

let test_seeded_group_topics_from_cluster () =
  let h = Lazy.force hierarchy in
  let cluster = [ H.size h - 1; H.size h - 2; H.size h - 4 ] in
  let params =
    {
      small_gen_params with
      G.seeded_groups =
        [ { G.tag = Some "plughtag"; cluster; count = 30; topics_per_citation = (1, 2) } ];
    }
  in
  let m = G.generate ~params ~seed:32 h in
  Array.iter
    (fun c ->
      if contains ~sub:"plughtag" c.Cit.title then
        Alcotest.(check bool) "has a cluster topic" true
          (List.exists (fun t -> List.mem t cluster) c.Cit.major_topics))
    (M.citations m)

let test_rejects_oversized_groups () =
  let h = Lazy.force hierarchy in
  let params =
    {
      small_gen_params with
      G.seeded_groups =
        [ { G.tag = None; cluster = [ 1 ]; count = 10_000; topics_per_citation = (1, 1) } ];
    }
  in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (G.generate ~params ~seed:33 h);
       false
     with Invalid_argument _ -> true)

let test_rejects_bad_cluster () =
  let h = Lazy.force hierarchy in
  let params =
    {
      small_gen_params with
      G.seeded_groups =
        [ { G.tag = None; cluster = [ 0 ]; count = 1; topics_per_citation = (1, 1) } ];
    }
  in
  Alcotest.(check bool) "root rejected" true
    (try
       ignore (G.generate ~params ~seed:34 h);
       false
     with Invalid_argument _ -> true)

let test_summary_format () =
  let m = Lazy.force medline in
  let s = Cit.summary (M.citation m 0) in
  Alcotest.(check bool) "non-empty" true (String.length s > 10)

let () =
  Alcotest.run "corpus"
    [
      ( "text",
        [
          Alcotest.test_case "title embeds topics" `Quick test_title_embeds_topics;
          Alcotest.test_case "abstract embeds topics" `Quick test_abstract_embeds_topics;
          Alcotest.test_case "authors bounds" `Quick test_authors_bounds;
          Alcotest.test_case "year bounds" `Quick test_year_bounds;
        ] );
      ( "annotator",
        [
          Alcotest.test_case "topics and ancestors" `Quick
            test_annotation_contains_topics_and_ancestors;
          Alcotest.test_case "excludes root" `Quick test_annotation_excludes_root;
          Alcotest.test_case "ancestor closure" `Quick test_annotation_closed_under_ancestors;
          Alcotest.test_case "background range" `Quick test_background_draw_range;
          Alcotest.test_case "background depth bias" `Quick test_background_depth_bias;
        ] );
      ( "generator",
        [
          Alcotest.test_case "corpus size" `Quick test_corpus_size;
          Alcotest.test_case "dense ids" `Quick test_citation_ids_dense;
          Alcotest.test_case "major topics annotated" `Quick test_major_topics_in_concepts;
          Alcotest.test_case "postings consistency" `Quick test_postings_consistency;
          Alcotest.test_case "concept counts" `Quick test_concept_count_matches_postings;
          Alcotest.test_case "mean annotations" `Quick test_mean_annotations_positive;
          Alcotest.test_case "deterministic" `Quick test_deterministic_generation;
          Alcotest.test_case "seeded group counts" `Quick test_seeded_group_counts;
          Alcotest.test_case "seeded topics from cluster" `Quick
            test_seeded_group_topics_from_cluster;
          Alcotest.test_case "rejects oversized groups" `Quick test_rejects_oversized_groups;
          Alcotest.test_case "rejects bad cluster" `Quick test_rejects_bad_cluster;
          Alcotest.test_case "summary format" `Quick test_summary_format;
        ] );
    ]
