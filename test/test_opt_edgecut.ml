open Bionav_util
open Bionav_core

let mk parent results totals =
  Comp_tree.make ~parent ~results:(Array.map Docset.of_list results) ~totals ()

let path n =
  (* 0 - 1 - 2 - ... each node holding a few overlapping citations. *)
  mk
    (Array.init n (fun i -> i - 1))
    (Array.init n (fun i -> [ i; i + 1; i + 2 ]))
    (Array.make n 50)

let star k =
  mk
    (Array.init (k + 1) (fun i -> if i = 0 then -1 else 0))
    (Array.init (k + 1) (fun i -> [ i; (i + 1) mod (k + 1); 100 ]))
    (Array.make (k + 1) 50)

let test_count_cuts_path () =
  (* On a path, a valid cut is a single edge: n - 1 cuts. *)
  for n = 2 to 8 do
    Alcotest.(check int) (Printf.sprintf "path %d" n) (n - 1)
      (Opt_edgecut.count_valid_cuts (path n))
  done

let test_count_cuts_star () =
  (* Any non-empty subset of the k leaves. *)
  for k = 1 to 8 do
    Alcotest.(check int) (Printf.sprintf "star %d" k) ((1 lsl k) - 1)
      (Opt_edgecut.count_valid_cuts (star k))
  done

let test_count_cuts_two_level () =
  (* Root -> {1, 2}, 1 -> {3}, 2 -> {4}: options per branch = cut at child,
     cut at grandchild, or nothing = 3; total 3*3 - 1 = 8. *)
  let t = mk [| -1; 0; 0; 1; 2 |] [| [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] |] [| 9; 9; 9; 9; 9 |] in
  Alcotest.(check int) "two-level" 8 (Opt_edgecut.count_valid_cuts t)

let is_antichain tree cut =
  let rec ancestor a b =
    let p = Comp_tree.parent tree b in
    if p = -1 then false else p = a || ancestor a p
  in
  List.for_all (fun a -> List.for_all (fun b -> a = b || not (ancestor a b)) cut) cut

let test_solution_is_valid_cut () =
  List.iter
    (fun tree ->
      let sol = Opt_edgecut.solve tree in
      Alcotest.(check bool) "non-empty" true (sol.Opt_edgecut.cut_children <> []);
      Alcotest.(check bool) "no root" true (not (List.mem 0 sol.Opt_edgecut.cut_children));
      Alcotest.(check bool) "antichain" true (is_antichain tree sol.Opt_edgecut.cut_children))
    [ path 6; star 6; path 2 ]

let test_two_node_tree () =
  let t = mk [| -1; 0 |] [| [ 1 ]; [ 2 ] |] [| 5; 5 |] in
  let sol = Opt_edgecut.solve t in
  Alcotest.(check (list int)) "only cut" [ 1 ] sol.Opt_edgecut.cut_children

(* Cross-check the minimizing recursion against plain enumeration: for every
   subset of non-root nodes that forms a valid antichain, evaluate the cut
   objective with the shared cost function and confirm the solver found the
   minimum. *)
let brute_force_best st ctx =
  let tree = Cost_model.tree ctx in
  let full = Cost_model.full_mask ctx in
  let best = ref infinity in
  for cut_mask = 1 to full do
    if cut_mask land 1 = 0 then begin
      let cut = Cost_model.members ctx cut_mask in
      if is_antichain tree cut then begin
        let lower = List.map (fun v -> Cost_model.subtree_mask ctx ~mask:full v) cut in
        let lowered = List.fold_left ( lor ) 0 lower in
        (* Antichain implies the subtree masks are disjoint. *)
        let upper = full land lnot lowered in
        let cost =
          List.fold_left
            (fun acc m ->
              acc +. 1.
              +. Cost_model.branch_probability ctx ~parent_mask:full ~branch_mask:m
                 *. Opt_edgecut.cost_mask st m)
            (Cost_model.branch_probability ctx ~parent_mask:full ~branch_mask:upper
            *. Opt_edgecut.cost_mask st upper)
            lower
        in
        if cost < !best then best := cost
      end
    end
  done;
  !best

let test_solver_matches_enumeration () =
  let trees =
    [
      path 5;
      star 5;
      mk [| -1; 0; 0; 1; 2; 2 |]
        [| [ 0; 1 ]; [ 1; 2; 3 ]; [ 4; 5 ]; [ 2 ]; [ 5; 6 ]; [ 7 ] |]
        [| 30; 12; 9; 4; 11; 3 |];
      mk [| -1; 0; 1; 2; 0; 4 |]
        [| List.init 20 Fun.id; [ 1; 21 ]; [ 2; 22 ]; [ 3 ]; List.init 15 (fun i -> 30 + i); [ 31 ] |]
        [| 100; 40; 30; 10; 60; 20 |];
    ]
  in
  List.iter
    (fun tree ->
      let ctx = Cost_model.create tree in
      let st = Opt_edgecut.init ctx in
      let sol = Opt_edgecut.solve_mask st (Cost_model.full_mask ctx) in
      let brute = brute_force_best st ctx in
      Alcotest.(check (float 1e-9)) "minimum matches enumeration" brute sol.Opt_edgecut.cost)
    trees

let test_memoized_stable () =
  let tree = star 6 in
  let ctx = Cost_model.create tree in
  let st = Opt_edgecut.init ctx in
  let a = Opt_edgecut.solve_mask st (Cost_model.full_mask ctx) in
  let b = Opt_edgecut.solve_mask st (Cost_model.full_mask ctx) in
  Alcotest.(check (float 1e-12)) "same cost" a.Opt_edgecut.cost b.Opt_edgecut.cost;
  Alcotest.(check (list int)) "same cut" a.Opt_edgecut.cut_children b.Opt_edgecut.cut_children

let test_expected_cost_defined_for_singleton () =
  let t = mk [| -1 |] [| [ 1; 2; 3 ] |] [| 9 |] in
  Alcotest.(check (float 1e-9)) "showresults" 3. (Opt_edgecut.expected_cost t)

let test_expected_cost_small_result_is_show () =
  (* distinct < lower threshold: the user lists results, cost = |L|. *)
  let t = mk [| -1; 0; 0 |] [| [ 0 ]; [ 1 ]; [ 2 ] |] [| 9; 9; 9 |] in
  Alcotest.(check (float 1e-9)) "px = 0" 3. (Opt_edgecut.expected_cost t)

let test_solve_rejects_singleton () =
  let t = mk [| -1 |] [| [ 1 ] |] [| 1 |] in
  Alcotest.(check bool) "singleton rejected" true
    (try
       ignore (Opt_edgecut.solve t);
       false
     with Invalid_argument _ -> true)

let test_solve_rejects_oversize () =
  let n = Opt_edgecut.max_size + 1 in
  let t =
    mk (Array.init n (fun i -> i - 1)) (Array.init n (fun i -> [ i ])) (Array.make n 50)
  in
  Alcotest.(check bool) "oversize rejected" true
    (try
       ignore (Opt_edgecut.solve t);
       false
     with Invalid_argument _ -> true)

let test_expand_cost_monotone () =
  (* Raising the model's EXPAND cost can only raise the expected cost. *)
  let t =
    mk
      [| -1; 0; 0; 0 |]
      [|
        List.init 20 Fun.id;
        List.init 15 (fun i -> 20 + i);
        List.init 15 (fun i -> 35 + i);
        List.init 15 (fun i -> 50 + i);
      |]
      [| 200; 60; 60; 60 |]
  in
  let cost_at e =
    Opt_edgecut.expected_cost
      ~model:
        (Probability.static
           ~params:{ Probability.default_params with Probability.expand_cost = e }
           ())
      t
  in
  Alcotest.(check bool) "monotone in expand cost" true (cost_at 1.0 <= cost_at 16.0)

let () =
  Alcotest.run "opt_edgecut"
    [
      ( "cuts",
        [
          Alcotest.test_case "count path" `Quick test_count_cuts_path;
          Alcotest.test_case "count star" `Quick test_count_cuts_star;
          Alcotest.test_case "count two-level" `Quick test_count_cuts_two_level;
          Alcotest.test_case "solution valid" `Quick test_solution_is_valid_cut;
          Alcotest.test_case "two-node tree" `Quick test_two_node_tree;
        ] );
      ( "optimality",
        [
          Alcotest.test_case "matches enumeration" `Quick test_solver_matches_enumeration;
          Alcotest.test_case "memo stable" `Quick test_memoized_stable;
          Alcotest.test_case "singleton expected cost" `Quick test_expected_cost_defined_for_singleton;
          Alcotest.test_case "small result shows" `Quick test_expected_cost_small_result_is_show;
          Alcotest.test_case "expand cost monotone" `Quick test_expand_cost_monotone;
        ] );
      ( "guards",
        [
          Alcotest.test_case "rejects singleton" `Quick test_solve_rejects_singleton;
          Alcotest.test_case "rejects oversize" `Quick test_solve_rejects_oversize;
        ] );
    ]
